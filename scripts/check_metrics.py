#!/usr/bin/env python3
"""Cross-check omega-serve telemetry: accounting invariants + format lint.

Takes a metrics-op response document (JSONL, one line) and/or a Prometheus
text exposition written by --metrics-file, and enforces the accounting
discipline the server promises (the paper's Figure-6 spirit: counters that
sum exactly):

  * per-op request counters sum to omega_serve_requests_total;
  * per-code response counters sum to omega_serve_requests_total;
  * solve/serialize histogram counts == omega_serve_analyze_ok_total;
  * queue-wait/parse/request histogram counts == analyze_ok + analysis_error;
  * every histogram's buckets sum to its count;
  * the coalescing witness: every ok analyze response is either the
    leader's own engine run or a coalesced follower, so
    omega_engine_analyses_total + omega_serve_requests_coalesced_total
    == omega_serve_analyze_ok_total at quiescence (exact when no
    analysis errors occurred; followers of a failed leader count as
    coalesced but not analyze_ok);
  * the result-store registry counters equal the store's own lifetime
    counters, and the omega_result_store_entries gauge equals the
    store's entry count (JSON document only);
  * the JSON document validates against schema/metrics_response.schema.json.

The metrics op's {"reset": true} variant is covered by the serve smoke
test and tests/ServeTest.cpp. Snapshots taken AFTER a reset stay
internally consistent (every invariant above still holds within the
snapshot), but the registry counters restart at zero while the live
QueryCache/ResultStore objects keep their lifetime counters — pass
--post-reset to relax the registry-vs-live-object equalities to <=
for such snapshots (the gauge check stays exact: gauges survive reset).

The Prometheus lint checks exposition-format well-formedness: HELP/TYPE
comments precede their samples, TYPE is counter/gauge/histogram, counter
names end in _total, le labels increase strictly and end with +Inf,
cumulative bucket counts are non-decreasing, and the +Inf bucket equals
_count.

Usage:
    check_metrics.py [--metrics-json FILE] [--prom FILE]
                     [--expect-analyze-ok N] [--post-reset]

Exit status 0 when every check passes, 1 otherwise.
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from check_schema import Validator  # noqa: E402

METRICS_SCHEMA_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "schema",
    "metrics_response.schema.json",
)

OP_COUNTERS = [
    "omega_serve_requests_analyze_total",
    "omega_serve_requests_health_total",
    "omega_serve_requests_metrics_total",
    "omega_serve_requests_shutdown_total",
    "omega_serve_requests_invalid_total",
]
CODE_COUNTERS = [
    "omega_serve_responses_ok_total",
    "omega_serve_responses_parse_error_total",
    "omega_serve_responses_bad_request_total",
    "omega_serve_responses_analysis_error_total",
    "omega_serve_responses_overloaded_total",
    "omega_serve_responses_deadline_exceeded_total",
    "omega_serve_responses_shutdown_total",
]


class Checker:
    def __init__(self):
        self.failures = 0

    def check(self, ok, message):
        if not ok:
            print(f"FAIL: {message}")
            self.failures += 1
        return ok


def check_accounting(c, counters, hist_counts, expect_ok, where):
    """Invariants over name->value counters and name->count histograms."""
    total = counters["omega_serve_requests_total"]
    per_op = sum(counters[k] for k in OP_COUNTERS)
    c.check(per_op == total,
            f"{where}: per-op sum {per_op} != requests_total {total}")
    per_code = sum(counters[k] for k in CODE_COUNTERS)
    c.check(per_code == total,
            f"{where}: per-code sum {per_code} != requests_total {total}")

    ok = counters["omega_serve_analyze_ok_total"]
    ran = ok + counters["omega_serve_responses_analysis_error_total"]
    for name, want in [
        ("omega_serve_solve_us", ok),
        ("omega_serve_serialize_us", ok),
        ("omega_serve_queue_wait_us", ran),
        ("omega_serve_parse_us", ran),
        ("omega_serve_request_us", ran),
    ]:
        c.check(hist_counts[name] == want,
                f"{where}: {name} count {hist_counts[name]} != {want}")

    # Coalescing witness: leaders run the engine, followers are stamped
    # coalesced, and both produce an ok analyze response -- except the
    # followers of a leader that failed, which are coalesced but answer
    # analysis_error.
    analyses = counters["omega_engine_analyses_total"]
    coalesced = counters["omega_serve_requests_coalesced_total"]
    errors = counters["omega_serve_responses_analysis_error_total"]
    c.check(analyses <= ok,
            f"{where}: engine analyses {analyses} > analyze_ok {ok}")
    if errors == 0:
        c.check(analyses + coalesced == ok,
                f"{where}: analyses {analyses} + coalesced {coalesced} "
                f"!= analyze_ok {ok}")
    else:
        c.check(analyses + coalesced >= ok,
                f"{where}: analyses {analyses} + coalesced {coalesced} "
                f"< analyze_ok {ok}")

    if expect_ok is not None:
        c.check(ok == expect_ok,
                f"{where}: analyze_ok {ok} != expected {expect_ok}")


def check_metrics_json(c, path, expect_ok, post_reset=False):
    with open(path) as f:
        lines = [ln.strip() for ln in f if ln.strip()]
    if not c.check(len(lines) == 1,
                   f"{path}: want exactly 1 JSONL document, got {len(lines)}"):
        return
    doc = json.loads(lines[0])
    validator = Validator(json.load(open(METRICS_SCHEMA_PATH)))
    errs = validator.validate(doc, validator.root)
    if not c.check(not errs, f"{path}: schema violation: {errs[:3]}"):
        return
    body = doc["metrics"]
    counters = body["counters"]
    hists = body["histograms"]
    for name, h in hists.items():
        c.check(sum(h["buckets"]) == h["count"],
                f"{path}: {name} buckets sum {sum(h['buckets'])} "
                f"!= count {h['count']}")
        c.check(len(h["buckets"]) == len(h["boundsUs"]) + 1,
                f"{path}: {name} has {len(h['buckets'])} buckets for "
                f"{len(h['boundsUs'])} bounds")
        c.check(h["boundsUs"] == sorted(set(h["boundsUs"])),
                f"{path}: {name} bounds not strictly increasing")
    check_accounting(c, counters,
                     {k: h["count"] for k, h in hists.items()},
                     expect_ok, path)
    # The registry's engine attribution equals the shared cache's own
    # global counters at quiescence (nothing else feeds that cache).
    # After a metrics reset the registry restarts at zero while the live
    # cache keeps its lifetime counters, so --post-reset relaxes to <=.
    cache = body["cache"]
    for reg, glob in [
        ("omega_engine_sat_cache_hits_total", "satHits"),
        ("omega_engine_sat_cache_misses_total", "satMisses"),
        ("omega_engine_gist_cache_hits_total", "gistHits"),
        ("omega_engine_gist_cache_misses_total", "gistMisses"),
    ]:
        if post_reset:
            c.check(counters[reg] <= cache[glob],
                    f"{path}: {reg} {counters[reg]} > cache.{glob} "
                    f"{cache[glob]}")
        else:
            c.check(counters[reg] == cache[glob],
                    f"{path}: {reg} {counters[reg]} != cache.{glob} "
                    f"{cache[glob]}")
    # Same discipline for the global result store: only this server's
    # engines feed it, every analysis runs to completion, and serve never
    # resizes it after startup, so the engine-attributed registry totals
    # equal the store's own lookup-level counters at quiescence.
    store = body["resultStore"]
    c.check(body["gauges"]["omega_result_store_entries"] == store["entries"],
            f"{path}: omega_result_store_entries gauge "
            f"{body['gauges']['omega_result_store_entries']} != "
            f"resultStore.entries {store['entries']}")
    for reg, glob in [
        ("omega_result_store_hits_total", "hits"),
        ("omega_result_store_misses_total", "misses"),
        ("omega_result_store_evictions_total", "evictions"),
    ]:
        if post_reset:
            c.check(counters[reg] <= store[glob],
                    f"{path}: {reg} {counters[reg]} > resultStore.{glob} "
                    f"{store[glob]}")
        else:
            c.check(counters[reg] == store[glob],
                    f"{path}: {reg} {counters[reg]} != resultStore.{glob} "
                    f"{store[glob]}")


def parse_prometheus(c, path):
    """Lints the exposition; returns (samples, types) on success."""
    samples = {}  # full sample name (with labels stripped) -> [(labels, val)]
    types = {}
    helps = set()
    declared_before = {}
    with open(path) as f:
        lines = f.read().splitlines()
    for i, line in enumerate(lines, 1):
        where = f"{path}:{i}"
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            c.check(len(parts) == 4, f"{where}: malformed HELP line")
            helps.add(parts[2])
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if not c.check(len(parts) == 4, f"{where}: malformed TYPE line"):
                continue
            name, kind = parts[2], parts[3]
            c.check(kind in ("counter", "gauge", "histogram"),
                    f"{where}: TYPE {kind!r} is not "
                    "counter/gauge/histogram")
            c.check(name in helps,
                    f"{where}: TYPE {name} has no preceding HELP")
            c.check(name not in types, f"{where}: duplicate TYPE {name}")
            if kind == "counter":
                c.check(name.endswith("_total"),
                        f"{where}: counter {name} does not end in _total")
            types[name] = kind
            declared_before[name] = True
            continue
        if line.startswith("#"):
            c.check(False, f"{where}: unknown comment {line!r}")
            continue
        # A sample: name[{labels}] value
        body, _, value = line.rpartition(" ")
        if not c.check(bool(body), f"{where}: malformed sample {line!r}"):
            continue
        name, labels = body, ""
        if "{" in body:
            name, _, rest = body.partition("{")
            labels = rest.rstrip("}")
        base = name
        for suffix in ("_bucket", "_sum", "_count"):
            if name.endswith(suffix) and name[: -len(suffix)] in types:
                base = name[: -len(suffix)]
                break
        c.check(base in types,
                f"{where}: sample {name} has no TYPE declaration")
        try:
            val = float(value)
        except ValueError:
            if not c.check(value == "+Inf",
                           f"{where}: non-numeric value {value!r}"):
                continue
            val = float("inf")
        samples.setdefault(name, []).append((labels, val))
    return samples, types


def check_prometheus(c, path, expect_ok):
    samples, types = parse_prometheus(c, path)

    counters = {}
    hist_counts = {}
    for name, kind in types.items():
        if kind == "counter":
            vals = samples.get(name, [])
            if c.check(len(vals) == 1,
                       f"{path}: counter {name} has {len(vals)} samples"):
                c.check(vals[0][1] >= 0, f"{path}: counter {name} negative")
                counters[name] = int(vals[0][1])
        elif kind == "gauge":
            c.check(len(samples.get(name, [])) == 1,
                    f"{path}: gauge {name} has "
                    f"{len(samples.get(name, []))} samples")
        elif kind == "histogram":
            buckets = samples.get(name + "_bucket", [])
            if not c.check(bool(buckets), f"{path}: {name} has no buckets"):
                continue
            les = []
            for labels, val in buckets:
                if not c.check(labels.startswith('le="') and
                               labels.endswith('"'),
                               f"{path}: {name} bucket label {labels!r}"):
                    continue
                le = labels[4:-1]
                les.append(float("inf") if le == "+Inf" else float(le))
            c.check(les == sorted(set(les)),
                    f"{path}: {name} le labels not strictly increasing")
            c.check(les and les[-1] == float("inf"),
                    f"{path}: {name} le labels do not end with +Inf")
            cum = [val for _, val in buckets]
            c.check(cum == sorted(cum),
                    f"{path}: {name} cumulative buckets decrease")
            count = samples.get(name + "_count", [("", -1.0)])[0][1]
            c.check(len(samples.get(name + "_count", [])) == 1,
                    f"{path}: {name}_count missing")
            c.check(len(samples.get(name + "_sum", [])) == 1,
                    f"{path}: {name}_sum missing")
            c.check(cum and cum[-1] == count,
                    f"{path}: {name} +Inf bucket {cum[-1] if cum else '?'} "
                    f"!= _count {count}")
            hist_counts[name] = int(count)

    missing = [k for k in ["omega_serve_requests_total",
                           "omega_serve_analyze_ok_total",
                           "omega_engine_analyses_total",
                           "omega_serve_requests_coalesced_total",
                           "omega_result_store_hits_total",
                           "omega_result_store_misses_total",
                           "omega_result_store_evictions_total"] +
               OP_COUNTERS + CODE_COUNTERS if k not in counters]
    if c.check(not missing, f"{path}: missing counters {missing}"):
        check_accounting(c, counters, hist_counts, expect_ok, path)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--metrics-json", help="metrics-op response (one JSONL line)")
    ap.add_argument("--prom", help="Prometheus text exposition file")
    ap.add_argument("--expect-analyze-ok", type=int, default=None,
                    help="exact expected omega_serve_analyze_ok_total")
    ap.add_argument("--post-reset", action="store_true",
                    help="snapshot was taken after a metrics reset: relax "
                         "registry-vs-live-object equalities to <=")
    args = ap.parse_args()
    if not args.metrics_json and not args.prom:
        ap.error("need --metrics-json and/or --prom")

    c = Checker()
    if args.metrics_json:
        check_metrics_json(c, args.metrics_json, args.expect_analyze_ok,
                           args.post_reset)
    if args.prom:
        check_prometheus(c, args.prom, args.expect_analyze_ok)
    print("check_metrics:",
          "OK" if not c.failures else f"{c.failures} FAILURES")
    return 1 if c.failures else 0


if __name__ == "__main__":
    sys.exit(main())
