#!/usr/bin/env python3
"""End-to-end smoke test for omega-serve.

Starts the daemon on a Unix socket, drives it with several concurrent
clients over every example program, and checks the serving contract:

 1. every response validates against schema/analysis_response.schema.json;
 2. every response's "result" section is byte-identical to a one-shot
    `omega-analyze --json` run of the same program (warm cache, concurrent
    clients, and request interleaving must be invisible in results);
 3. the shutdown op stops the daemon cleanly.

With --telemetry-dir DIR the daemon also runs with --metrics-file and
--access-log pointing into DIR, and the driver scrapes the health and
metrics ops mid-run: both documents must validate against
schema/metrics_response.schema.json, and the metrics response, the final
Prometheus exposition, and the access log are left in DIR for
check_metrics.py to cross-check (DIR/metrics_response.jsonl,
DIR/metrics.prom, DIR/access.jsonl).

Usage:
    server_smoke.py --serve build/tools/omega-serve \
                    --analyze build/tools/omega-analyze \
                    [--programs examples/programs] [--clients 4] [--rounds 2] \
                    [--telemetry-dir DIR]

Exit status 0 on success, 1 on any violation.
"""

import argparse
import glob
import json
import os
import socket
import subprocess
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from check_schema import SCHEMA_PATH, Validator  # noqa: E402


def result_bytes(line):
    """The raw bytes of the "result" value in a response line."""
    marker = '"result": '
    at = line.find(marker)
    if at < 0:
        return None
    start = at + len(marker)
    depth = 0
    in_string = False
    i = start
    while i < len(line):
        c = line[i]
        if in_string:
            if c == "\\":
                i += 1
            elif c == '"':
                in_string = False
        elif c == '"':
            in_string = True
        elif c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return line[start : i + 1]
        i += 1
    return None


def one_request(sock_path, req):
    """Sends one request on a fresh connection; returns the response line."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.connect(sock_path)
    sock.sendall((json.dumps(req) + "\n").encode())
    buf = b""
    while b"\n" not in buf:
        chunk = sock.recv(65536)
        if not chunk:
            raise RuntimeError("connection closed mid-request")
        buf += chunk
    sock.close()
    return buf.split(b"\n", 1)[0].decode()


def client(sock_path, requests, responses, errors, tag):
    """One closed-loop client: send each request, wait for its response."""
    try:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(sock_path)
        buf = b""
        for req in requests:
            sock.sendall((json.dumps(req) + "\n").encode())
            while b"\n" not in buf:
                chunk = sock.recv(65536)
                if not chunk:
                    raise RuntimeError("connection closed mid-request")
                buf += chunk
            line, buf = buf.split(b"\n", 1)
            responses.append((req["id"], line.decode()))
        sock.close()
    except Exception as e:  # noqa: BLE001 - report, don't crash the driver
        errors.append(f"{tag}: {e}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--serve", required=True)
    ap.add_argument("--analyze", required=True)
    ap.add_argument("--programs", default="examples/programs")
    ap.add_argument("--clients", type=int, default=4)
    ap.add_argument("--rounds", type=int, default=2)
    ap.add_argument("--telemetry-dir",
                    help="scrape health/metrics ops and leave the metrics "
                         "response, Prometheus exposition, and access log "
                         "here for check_metrics.py")
    args = ap.parse_args()

    programs = sorted(glob.glob(os.path.join(args.programs, "*.tiny")))
    if not programs:
        print(f"no .tiny programs under {args.programs}")
        return 1

    # One-shot expectations: path -> exact result bytes.
    expected = {}
    for path in programs:
        out = subprocess.run(
            [args.analyze, "--json", path],
            capture_output=True, text=True, check=True,
        ).stdout
        expected[path] = result_bytes(out)
        if expected[path] is None:
            print(f"one-shot {path}: no result section in CLI output")
            return 1

    failures = 0
    with tempfile.TemporaryDirectory() as tmp:
        sock_path = os.path.join(tmp, "omega.sock")
        cmd = [args.serve, "--socket", sock_path, "--workers", "4"]
        if args.telemetry_dir:
            os.makedirs(args.telemetry_dir, exist_ok=True)
            cmd += ["--metrics-file",
                    os.path.join(args.telemetry_dir, "metrics.prom"),
                    "--access-log",
                    os.path.join(args.telemetry_dir, "access.jsonl")]
        daemon = subprocess.Popen(
            cmd,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            for _ in range(200):
                if os.path.exists(sock_path):
                    break
                if daemon.poll() is not None:
                    print("daemon exited early:", daemon.stderr.read())
                    return 1
                time.sleep(0.05)
            else:
                print("daemon never created its socket")
                return 1

            # Concurrent clients, each sending every program per round
            # (offset per client so interleavings differ between clients).
            id_to_path = {}
            threads = []
            all_responses = []
            errors = []
            next_id = 1
            for c in range(args.clients):
                requests = []
                for r in range(args.rounds):
                    for i in range(len(programs)):
                        path = programs[(i + c) % len(programs)]
                        with open(path) as f:
                            source = f.read()
                        requests.append(
                            {"id": next_id, "source": source,
                             "options": {"jobs": 1 + (c % 3)}})
                        id_to_path[next_id] = path
                        next_id += 1
                responses = []
                all_responses.append(responses)
                threads.append(threading.Thread(
                    target=client,
                    args=(sock_path, requests, responses, errors,
                          f"client{c}")))
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for err in errors:
                print("client error:", err)
                failures += 1

            validator = Validator(json.load(open(SCHEMA_PATH)))
            total = 0
            for responses in all_responses:
                for rid, line in responses:
                    total += 1
                    doc = json.loads(line)
                    errs = validator.validate(doc, validator.root)
                    if errs:
                        print(f"id {rid}: schema violation: {errs[0]}")
                        failures += 1
                        continue
                    if doc.get("id") != rid:
                        print(f"id {rid}: response carries id {doc.get('id')}")
                        failures += 1
                        continue
                    got = result_bytes(line)
                    want = expected[id_to_path[rid]]
                    if got != want:
                        print(f"id {rid} ({id_to_path[rid]}): result section "
                              "differs from one-shot omega-analyze --json")
                        failures += 1
            want_total = args.clients * args.rounds * len(programs)
            if total != want_total:
                print(f"got {total} responses, want {want_total}")
                failures += 1

            # Telemetry scrape: the health and metrics ops must answer and
            # validate while the server is live.
            if args.telemetry_dir:
                metrics_schema = os.path.join(
                    os.path.dirname(SCHEMA_PATH),
                    "metrics_response.schema.json")
                tele_validator = Validator(json.load(open(metrics_schema)))
                for op in ("health", "metrics"):
                    line = one_request(sock_path,
                                       {"id": 1000000, "op": op})
                    errs = tele_validator.validate(
                        json.loads(line), tele_validator.root)
                    if errs:
                        print(f"{op} op: schema violation: {errs[0]}")
                        failures += 1
                    if op == "metrics":
                        out = os.path.join(args.telemetry_dir,
                                           "metrics_response.jsonl")
                        with open(out, "w") as f:
                            f.write(line + "\n")

            # Clean shutdown through the protocol.
            fin = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            fin.connect(sock_path)
            fin.sendall(b'{"id": 0, "op": "shutdown"}\n')
            fin.close()
            try:
                daemon.wait(timeout=30)
            except subprocess.TimeoutExpired:
                print("daemon ignored the shutdown op")
                failures += 1
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()

    print(f"{total} responses from {args.clients} clients over "
          f"{len(programs)} programs: "
          f"{'OK' if not failures else f'{failures} FAILURES'}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
