#!/usr/bin/env python3
"""End-to-end smoke test for omega-serve.

Starts the daemon on a Unix socket, drives it with several concurrent
clients over every example program, and checks the serving contract:

 1. every response validates against schema/analysis_response.schema.json;
 2. every response's "result" section is byte-identical to a one-shot
    `omega-analyze --json` run of the same program (warm cache, concurrent
    clients, and request interleaving must be invisible in results);
 3. in-flight coalescing: a burst of identical concurrent requests on an
    otherwise idle server performs exactly ONE engine solve -- the engine
    analyses counter moves by 1, the coalesced counter by K-1, and every
    client's result section is byte-identical to the one-shot run;
 4. the shutdown op stops the daemon cleanly.

With --telemetry-dir DIR the daemon also runs with --metrics-file and
--access-log pointing into DIR, and the driver scrapes the health and
metrics ops mid-run: both documents must validate against
schema/metrics_response.schema.json, and the metrics response, the
Prometheus expositions, and the access log are left in DIR for
check_metrics.py to cross-check (DIR/metrics_response.jsonl,
DIR/metrics_prereset.prom, DIR/metrics.prom, DIR/access.jsonl). The
driver then exercises {"op": "metrics", "reset": true}: the reset
response must carry the pre-reset totals, and a follow-up plain metrics
op must see a fresh window in which it is the only request
(DIR/metrics_after_reset.jsonl, for check_metrics.py with
--expect-analyze-ok 0).

Usage:
    server_smoke.py --serve build/tools/omega-serve \
                    --analyze build/tools/omega-analyze \
                    [--programs examples/programs] [--clients 4] [--rounds 2] \
                    [--telemetry-dir DIR]

Exit status 0 on success, 1 on any violation.
"""

import argparse
import glob
import json
import os
import socket
import subprocess
import sys
import tempfile
import threading
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from check_schema import SCHEMA_PATH, Validator  # noqa: E402


def result_bytes(line):
    """The raw bytes of the "result" value in a response line."""
    marker = '"result": '
    at = line.find(marker)
    if at < 0:
        return None
    start = at + len(marker)
    depth = 0
    in_string = False
    i = start
    while i < len(line):
        c = line[i]
        if in_string:
            if c == "\\":
                i += 1
            elif c == '"':
                in_string = False
        elif c == '"':
            in_string = True
        elif c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            if depth == 0:
                return line[start : i + 1]
        i += 1
    return None


def one_request(sock_path, req):
    """Sends one request on a fresh connection; returns the response line."""
    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    sock.connect(sock_path)
    sock.sendall((json.dumps(req) + "\n").encode())
    buf = b""
    while b"\n" not in buf:
        chunk = sock.recv(65536)
        if not chunk:
            raise RuntimeError("connection closed mid-request")
        buf += chunk
    sock.close()
    return buf.split(b"\n", 1)[0].decode()


def heavy_program():
    """The coalescing burst program: four 3-D nests whose solve (with the
    pair quick tests disabled per request) takes tens of milliseconds, so
    a burst of identical requests against an idle server parks on the
    first request's solve instead of each running its own."""
    text = "symbolic n, m, p;\n"
    for k in range(4):
        s = str(k)
        text += (
            f"for i := 2 to n do\n"
            f"  for j := 2 to m do\n"
            f"    for k := 2 to p do\n"
            f"      a{s}(i,j,k) := a{s}(i-1,j,k) + a{s}(i,j-1,k)"
            f" + b{s}(i-1,j-1,k) + c{s}(i,j,k-1);\n"
            f"      b{s}(i,j,k) := a{s}(i,j,k) + b{s}(i-1,j,k-1)"
            f" + c{s}(i,j-1,k);\n"
            f"      c{s}(i,j,k) := b{s}(i,j-1,k) + c{s}(i-1,j,k)"
            f" + a{s}(i-1,j,k-1);\n"
            f"      d{s}(i,j,k) := d{s}(i-1,j-1,k-1) + c{s}(i,j,k)"
            f" + b{s}(i,j,k);\n"
            f"    endfor\n"
            f"  endfor\n"
            f"endfor\n"
        )
    return text


def scrape_counters(sock_path, rid):
    line = one_request(sock_path, {"id": rid, "op": "metrics"})
    return json.loads(line)["metrics"]["counters"]


def burst_client(sock_path, barrier, req_line, responses, errors, tag):
    """Connects, then sends one pre-encoded request on the barrier."""
    try:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(sock_path)
        barrier.wait()
        sock.sendall(req_line)
        buf = b""
        while b"\n" not in buf:
            chunk = sock.recv(65536)
            if not chunk:
                raise RuntimeError("connection closed mid-request")
            buf += chunk
        responses.append(buf.split(b"\n", 1)[0].decode())
        sock.close()
    except Exception as e:  # noqa: BLE001 - report, don't crash the driver
        errors.append(f"{tag}: {e}")


def check_coalescing(sock_path, analyze, tmp, k=8):
    """Returns the number of failed checks for the coalescing contract."""
    failures = 0
    heavy = heavy_program()
    heavy_path = os.path.join(tmp, "heavy.tiny")
    with open(heavy_path, "w") as f:
        f.write(heavy)
    out = subprocess.run(
        [analyze, "--json", "--no-quicktests", heavy_path],
        capture_output=True, text=True, check=True,
    ).stdout
    expected = result_bytes(out)
    if expected is None:
        print("coalescing: one-shot run of the burst program has no result")
        return 1

    before = scrape_counters(sock_path, 2000000)
    barrier = threading.Barrier(k)
    responses = []
    errors = []
    threads = []
    for i in range(k):
        req = (json.dumps({"id": 2000001 + i, "source": heavy,
                           "options": {"quicktests": False}}) + "\n").encode()
        threads.append(threading.Thread(
            target=burst_client,
            args=(sock_path, barrier, req, responses, errors, f"burst{i}")))
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    for err in errors:
        print("coalescing client error:", err)
        failures += 1
    after = scrape_counters(sock_path, 2000100)

    for i, line in enumerate(responses):
        if result_bytes(line) != expected:
            print(f"coalescing: response {i} differs from the one-shot run")
            failures += 1
    analyses = (after["omega_engine_analyses_total"] -
                before["omega_engine_analyses_total"])
    coalesced = (after["omega_serve_requests_coalesced_total"] -
                 before["omega_serve_requests_coalesced_total"])
    if analyses != 1:
        print(f"coalescing: burst of {k} ran {analyses} engine solves, "
              "want exactly 1")
        failures += 1
    if coalesced != k - 1:
        print(f"coalescing: burst of {k} coalesced {coalesced} requests, "
              f"want {k - 1}")
        failures += 1
    if not failures:
        print(f"coalescing: {k} identical concurrent requests shared "
              "1 engine solve, results byte-identical")
    return failures


def client(sock_path, requests, responses, errors, tag):
    """One closed-loop client: send each request, wait for its response."""
    try:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        sock.connect(sock_path)
        buf = b""
        for req in requests:
            sock.sendall((json.dumps(req) + "\n").encode())
            while b"\n" not in buf:
                chunk = sock.recv(65536)
                if not chunk:
                    raise RuntimeError("connection closed mid-request")
                buf += chunk
            line, buf = buf.split(b"\n", 1)
            responses.append((req["id"], line.decode()))
        sock.close()
    except Exception as e:  # noqa: BLE001 - report, don't crash the driver
        errors.append(f"{tag}: {e}")


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--serve", required=True)
    ap.add_argument("--analyze", required=True)
    ap.add_argument("--programs", default="examples/programs")
    ap.add_argument("--clients", type=int, default=4)
    ap.add_argument("--rounds", type=int, default=2)
    ap.add_argument("--telemetry-dir",
                    help="scrape health/metrics ops and leave the metrics "
                         "response, Prometheus exposition, and access log "
                         "here for check_metrics.py")
    args = ap.parse_args()

    programs = sorted(glob.glob(os.path.join(args.programs, "*.tiny")))
    if not programs:
        print(f"no .tiny programs under {args.programs}")
        return 1

    # One-shot expectations: path -> exact result bytes.
    expected = {}
    for path in programs:
        out = subprocess.run(
            [args.analyze, "--json", path],
            capture_output=True, text=True, check=True,
        ).stdout
        expected[path] = result_bytes(out)
        if expected[path] is None:
            print(f"one-shot {path}: no result section in CLI output")
            return 1

    failures = 0
    with tempfile.TemporaryDirectory() as tmp:
        sock_path = os.path.join(tmp, "omega.sock")
        cmd = [args.serve, "--socket", sock_path, "--workers", "4"]
        if args.telemetry_dir:
            os.makedirs(args.telemetry_dir, exist_ok=True)
            cmd += ["--metrics-file",
                    os.path.join(args.telemetry_dir, "metrics.prom"),
                    "--access-log",
                    os.path.join(args.telemetry_dir, "access.jsonl")]
        daemon = subprocess.Popen(
            cmd,
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            for _ in range(200):
                if os.path.exists(sock_path):
                    break
                if daemon.poll() is not None:
                    print("daemon exited early:", daemon.stderr.read())
                    return 1
                time.sleep(0.05)
            else:
                print("daemon never created its socket")
                return 1

            # Concurrent clients, each sending every program per round
            # (offset per client so interleavings differ between clients).
            id_to_path = {}
            threads = []
            all_responses = []
            errors = []
            next_id = 1
            for c in range(args.clients):
                requests = []
                for r in range(args.rounds):
                    for i in range(len(programs)):
                        path = programs[(i + c) % len(programs)]
                        with open(path) as f:
                            source = f.read()
                        requests.append(
                            {"id": next_id, "source": source,
                             "options": {"jobs": 1 + (c % 3)}})
                        id_to_path[next_id] = path
                        next_id += 1
                responses = []
                all_responses.append(responses)
                threads.append(threading.Thread(
                    target=client,
                    args=(sock_path, requests, responses, errors,
                          f"client{c}")))
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            for err in errors:
                print("client error:", err)
                failures += 1

            validator = Validator(json.load(open(SCHEMA_PATH)))
            total = 0
            for responses in all_responses:
                for rid, line in responses:
                    total += 1
                    doc = json.loads(line)
                    errs = validator.validate(doc, validator.root)
                    if errs:
                        print(f"id {rid}: schema violation: {errs[0]}")
                        failures += 1
                        continue
                    if doc.get("id") != rid:
                        print(f"id {rid}: response carries id {doc.get('id')}")
                        failures += 1
                        continue
                    got = result_bytes(line)
                    want = expected[id_to_path[rid]]
                    if got != want:
                        print(f"id {rid} ({id_to_path[rid]}): result section "
                              "differs from one-shot omega-analyze --json")
                        failures += 1
            want_total = args.clients * args.rounds * len(programs)
            if total != want_total:
                print(f"got {total} responses, want {want_total}")
                failures += 1

            # In-flight coalescing: with the main phase drained, a burst
            # of identical heavy requests must share one engine solve.
            failures += check_coalescing(sock_path, args.analyze, tmp)

            # Telemetry scrape: the health and metrics ops must answer and
            # validate while the server is live.
            if args.telemetry_dir:
                metrics_schema = os.path.join(
                    os.path.dirname(SCHEMA_PATH),
                    "metrics_response.schema.json")
                tele_validator = Validator(json.load(open(metrics_schema)))
                for op in ("health", "metrics"):
                    line = one_request(sock_path,
                                       {"id": 1000000, "op": op})
                    errs = tele_validator.validate(
                        json.loads(line), tele_validator.root)
                    if errs:
                        print(f"{op} op: schema violation: {errs[0]}")
                        failures += 1
                    if op == "metrics":
                        out = os.path.join(args.telemetry_dir,
                                           "metrics_response.jsonl")
                        with open(out, "w") as f:
                            f.write(line + "\n")
                        scrape_total = json.loads(line)["metrics"][
                            "counters"]["omega_serve_requests_total"]

                # The metrics op rewrites --metrics-file (atomically)
                # after answering; wait for that rewrite to land, then
                # keep a copy so the reset below cannot erase the
                # full-run exposition from the checked artifacts.
                prom = os.path.join(args.telemetry_dir, "metrics.prom")
                needle = f"omega_serve_requests_total {scrape_total}"
                text = ""
                for _ in range(200):
                    if os.path.exists(prom):
                        with open(prom) as f:
                            text = f.read()
                        if needle in text:
                            break
                    time.sleep(0.05)
                else:
                    print(f"metrics.prom never showed {needle!r}")
                    failures += 1
                with open(os.path.join(args.telemetry_dir,
                                       "metrics_prereset.prom"), "w") as f:
                    f.write(text)

                # Metrics reset: the reset response carries the pre-reset
                # snapshot (including its own request), and the next plain
                # metrics op sees a fresh window in which it is the only
                # request ever counted.
                line = one_request(sock_path, {"id": 1000001,
                                               "op": "metrics",
                                               "reset": True})
                doc = json.loads(line)
                errs = tele_validator.validate(doc, tele_validator.root)
                if errs:
                    print(f"metrics reset op: schema violation: {errs[0]}")
                    failures += 1
                pre = doc["metrics"]["counters"]
                if pre["omega_serve_requests_total"] != scrape_total + 1:
                    print("metrics reset op: pre-reset requests_total "
                          f"{pre['omega_serve_requests_total']} != "
                          f"{scrape_total + 1}")
                    failures += 1
                line = one_request(sock_path, {"id": 1000002,
                                               "op": "metrics"})
                doc = json.loads(line)
                errs = tele_validator.validate(doc, tele_validator.root)
                if errs:
                    print(f"post-reset metrics: schema violation: {errs[0]}")
                    failures += 1
                post = doc["metrics"]["counters"]
                if (post["omega_serve_requests_total"] != 1 or
                        post["omega_serve_analyze_ok_total"] != 0):
                    print("post-reset metrics: window not fresh: "
                          f"requests_total "
                          f"{post['omega_serve_requests_total']}, "
                          f"analyze_ok "
                          f"{post['omega_serve_analyze_ok_total']}")
                    failures += 1
                out = os.path.join(args.telemetry_dir,
                                   "metrics_after_reset.jsonl")
                with open(out, "w") as f:
                    f.write(line + "\n")

            # Clean shutdown through the protocol.
            fin = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            fin.connect(sock_path)
            fin.sendall(b'{"id": 0, "op": "shutdown"}\n')
            fin.close()
            try:
                daemon.wait(timeout=30)
            except subprocess.TimeoutExpired:
                print("daemon ignored the shutdown op")
                failures += 1
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()

    print(f"{total} responses from {args.clients} clients over "
          f"{len(programs)} programs: "
          f"{'OK' if not failures else f'{failures} FAILURES'}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
