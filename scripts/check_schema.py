#!/usr/bin/env python3
"""Validate analysis response documents against the checked-in schema.

Dependency-free validator for the subset of JSON Schema draft-07 that
schema/analysis_response.schema.json uses: type, const, enum, required,
properties, additionalProperties, items, oneOf, minimum, $ref (local
"#/definitions/..." pointers only).

Usage:
    check_schema.py FILE...      # each FILE holds one JSON document per line
    check_schema.py -            # read JSONL from stdin
    check_schema.py --schema schema/metrics_response.schema.json FILE...

Every non-empty line of every input must parse as JSON and validate.
--schema selects a different schema file (default: the analysis response
schema). Exit status 0 when all documents validate, 1 otherwise.
"""

import json
import os
import sys

SCHEMA_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "schema",
    "analysis_response.schema.json",
)

TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    # bool is an int subclass in Python; keep the kinds distinct.
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
    "boolean": lambda v: isinstance(v, bool),
    "null": lambda v: v is None,
}


class Validator:
    def __init__(self, schema):
        self.root = schema

    def resolve(self, ref):
        if not ref.startswith("#/"):
            raise ValueError(f"unsupported $ref {ref!r}")
        node = self.root
        for part in ref[2:].split("/"):
            node = node[part]
        return node

    def validate(self, value, schema, path="$"):
        """Returns a list of error strings (empty when valid)."""
        if "$ref" in schema:
            return self.validate(value, self.resolve(schema["$ref"]), path)

        if "oneOf" in schema:
            fails = []
            matches = 0
            for i, sub in enumerate(schema["oneOf"]):
                errs = self.validate(value, sub, path)
                if errs:
                    fails.append(f"  variant {i}: {errs[0]}")
                else:
                    matches += 1
            if matches != 1:
                return [
                    f"{path}: matched {matches} oneOf variants (want 1)\n"
                    + "\n".join(fails)
                ]
            return []

        if "const" in schema:
            if value != schema["const"] or isinstance(value, bool) != isinstance(
                schema["const"], bool
            ):
                return [f"{path}: expected const {schema['const']!r}, "
                        f"got {value!r}"]
            return []

        if "enum" in schema:
            if value not in schema["enum"]:
                return [f"{path}: {value!r} not in enum {schema['enum']}"]
            return []

        errors = []
        if "type" in schema:
            types = schema["type"]
            if isinstance(types, str):
                types = [types]
            if not any(TYPE_CHECKS[t](value) for t in types):
                return [f"{path}: expected type {'/'.join(types)}, "
                        f"got {type(value).__name__}"]

        if "minimum" in schema and isinstance(value, (int, float)) \
                and not isinstance(value, bool):
            if value < schema["minimum"]:
                errors.append(f"{path}: {value} < minimum {schema['minimum']}")

        if isinstance(value, dict):
            for key in schema.get("required", []):
                if key not in value:
                    errors.append(f"{path}: missing required key {key!r}")
            props = schema.get("properties", {})
            for key, sub in props.items():
                if key in value:
                    errors.extend(
                        self.validate(value[key], sub, f"{path}.{key}"))
            if schema.get("additionalProperties") is False:
                for key in value:
                    if key not in props:
                        errors.append(f"{path}: unexpected key {key!r}")

        if isinstance(value, list) and "items" in schema:
            for i, item in enumerate(value):
                errors.extend(
                    self.validate(item, schema["items"], f"{path}[{i}]"))

        return errors


def main(argv):
    schema_path = SCHEMA_PATH
    inputs = []
    args = argv[1:]
    while args:
        arg = args.pop(0)
        if arg == "--schema":
            if not args:
                print("--schema requires a path", file=sys.stderr)
                return 2
            schema_path = args.pop(0)
        else:
            inputs.append(arg)
    if not inputs:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    with open(schema_path) as f:
        validator = Validator(json.load(f))

    checked = 0
    failed = 0
    for name in inputs:
        stream = sys.stdin if name == "-" else open(name)
        label = "<stdin>" if name == "-" else name
        with stream:
            for lineno, line in enumerate(stream, 1):
                line = line.strip()
                if not line:
                    continue
                where = f"{label}:{lineno}"
                try:
                    doc = json.loads(line)
                except json.JSONDecodeError as e:
                    print(f"{where}: not JSON: {e}")
                    failed += 1
                    continue
                errors = validator.validate(doc, validator.root)
                checked += 1
                if errors:
                    failed += 1
                    print(f"{where}: schema violation")
                    for err in errors[:10]:
                        print(f"  {err}")

    print(f"checked {checked} documents, {failed} invalid")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
