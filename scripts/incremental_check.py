#!/usr/bin/env python3
"""End-to-end gate for edit-incremental re-analysis.

Replays the edit corpus (tests/corpus/edits) through both incremental
surfaces and checks the contract:

 1. `omega-analyze --baseline`: a baseline recorded on base.tiny is
    replayed over every edited program; the response's "result" section
    must be byte-identical to a from-scratch `omega-analyze --json` run
    of the same program, and the delta classification must account for
    every pair (pairsReused + pairsResolved + pairsNew == len(pairs)).
 2. A live omega-serve session: the base program then every edit are
    submitted with the same "session" id; each response must be
    byte-identical to the from-scratch run, validate against the JSON
    schema, and (after the base request) report pair reuse.
 3. Baseline-file robustness: a truncated and a bit-flipped baseline
    file must degrade to a from-scratch run (same bytes out), never to
    an error or a different result.

Usage:
    incremental_check.py --serve build/tools/omega-serve \
                         --analyze build/tools/omega-analyze \
                         [--edits tests/corpus/edits]

Exit status 0 on success, 1 on any violation.
"""

import argparse
import json
import os
import socket
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
from check_schema import SCHEMA_PATH, Validator  # noqa: E402
from server_smoke import result_bytes  # noqa: E402

EDITS = ["rename", "bound", "stmt-new", "stmt-edit", "loop-del",
         "interchange", "rename-reorder"]


def run_analyze(analyze, path, extra=()):
    """One omega-analyze --json run; returns (stdout, stderr)."""
    proc = subprocess.run(
        [analyze, "--json", *extra, path],
        capture_output=True, text=True, check=True,
    )
    return proc.stdout, proc.stderr


def check_accounting(tag, doc, total, failures):
    """pairsReused + pairsResolved + pairsNew must equal the program's
    access-pair group count (measured by a baseline-less delta run, where
    every group classifies "new")."""
    delta = doc["metrics"].get("delta")
    if delta is None:
        print(f"{tag}: no metrics.delta in incremental response")
        return failures + 1
    got = delta["pairsReused"] + delta["pairsResolved"] + delta["pairsNew"]
    if got != total:
        print(f"{tag}: delta accounts for {got} pairs, program has {total}")
        return failures + 1
    return failures


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--serve", required=True)
    ap.add_argument("--analyze", required=True)
    ap.add_argument("--edits", default="tests/corpus/edits")
    args = ap.parse_args()

    base = os.path.join(args.edits, "base.tiny")
    edits = [os.path.join(args.edits, e + ".tiny") for e in EDITS]
    for path in [base] + edits:
        if not os.path.exists(path):
            print(f"missing corpus file {path}")
            return 1

    validator = Validator(json.load(open(SCHEMA_PATH)))
    failures = 0

    # From-scratch expectations, schema validity of the CLI documents, and
    # each program's pair-group total (a delta run with no baseline to
    # consult classifies every group "new").
    expected = {}
    totals = {}
    for path in [base] + edits:
        out, _ = run_analyze(args.analyze, path)
        doc = json.loads(out)
        errs = validator.validate(doc, validator.root)
        if errs:
            print(f"scratch {path}: schema violation: {errs[0]}")
            failures += 1
        expected[path] = result_bytes(out)
        out, _ = run_analyze(args.analyze, path,
                             ["--save-baseline", os.devnull])
        delta = json.loads(out)["metrics"].get("delta") or {}
        totals[path] = delta.get("pairsNew", -1)
        if totals[path] < 0 or delta.get("pairsReused") or \
                delta.get("pairsResolved"):
            print(f"{path}: baseline-less delta should be all-new, "
                  f"got {delta}")
            failures += 1

    with tempfile.TemporaryDirectory() as tmp:
        # -- CLI surface: --save-baseline then --baseline per edit --------
        baseline = os.path.join(tmp, "base.baseline")
        run_analyze(args.analyze, base, ["--save-baseline", baseline])
        if not os.path.exists(baseline):
            print("omega-analyze --save-baseline wrote no baseline file")
            return 1
        for path in edits:
            out, _ = run_analyze(args.analyze, path, ["--baseline", baseline])
            doc = json.loads(out)
            errs = validator.validate(doc, validator.root)
            if errs:
                print(f"incremental {path}: schema violation: {errs[0]}")
                failures += 1
            if result_bytes(out) != expected[path]:
                print(f"incremental {path}: result differs from scratch run")
                failures += 1
            failures = check_accounting(f"incremental {path}", doc,
                                        totals[path], failures)

        # -- corrupt baselines must degrade to scratch, bit-identically ---
        blob = open(baseline, "rb").read()
        corrupt = {
            "truncated.baseline": blob[: len(blob) // 2],
            "bitflip.baseline": blob[:-1] + bytes([blob[-1] ^ 0x40]),
        }
        for name, data in corrupt.items():
            bad = os.path.join(tmp, name)
            with open(bad, "wb") as f:
                f.write(data)
            out, err = run_analyze(args.analyze, edits[0],
                                   ["--baseline", bad])
            if "warning" not in err:
                print(f"{name}: expected a load warning on stderr")
                failures += 1
            if result_bytes(out) != expected[edits[0]]:
                print(f"{name}: corrupt baseline changed the result")
                failures += 1

        # -- serve surface: one session across base + every edit ----------
        sock_path = os.path.join(tmp, "omega.sock")
        daemon = subprocess.Popen(
            [args.serve, "--socket", sock_path, "--workers", "2"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        )
        try:
            for _ in range(200):
                if os.path.exists(sock_path):
                    break
                if daemon.poll() is not None:
                    print("daemon exited early:", daemon.stderr.read())
                    return 1
                time.sleep(0.05)
            else:
                print("daemon never created its socket")
                return 1

            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.connect(sock_path)
            buf = b""

            def ask(rid, path):
                nonlocal buf
                req = {"id": rid, "source": open(path).read(),
                       "session": "edit-corpus"}
                sock.sendall((json.dumps(req) + "\n").encode())
                while b"\n" not in buf:
                    chunk = sock.recv(65536)
                    if not chunk:
                        raise RuntimeError("connection closed mid-request")
                    buf += chunk
                line, buf = buf.split(b"\n", 1)
                return line.decode()

            line = ask(1, base)
            doc = json.loads(line)
            errs = validator.validate(doc, validator.root)
            if errs:
                print(f"session base: schema violation: {errs[0]}")
                failures += 1
            if result_bytes(line) != expected[base]:
                print("session base: result differs from scratch run")
                failures += 1
            for rid, path in enumerate(edits, start=2):
                line = ask(rid, path)
                doc = json.loads(line)
                errs = validator.validate(doc, validator.root)
                if errs:
                    print(f"session {path}: schema violation: {errs[0]}")
                    failures += 1
                if result_bytes(line) != expected[path]:
                    print(f"session {path}: result differs from scratch run")
                    failures += 1
                failures = check_accounting(f"session {path}", doc,
                                            totals[path], failures)
                delta = doc["metrics"].get("delta") or {}
                if not delta.get("pairsReused"):
                    print(f"session {path}: expected pair reuse, got {delta}")
                    failures += 1
            sock.sendall(b'{"id": 99, "op": "shutdown"}\n')
            sock.close()
            try:
                daemon.wait(timeout=30)
            except subprocess.TimeoutExpired:
                print("daemon ignored the shutdown op")
                failures += 1
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait()

    print(f"{len(edits)} edits via CLI baseline + serve session + corrupt "
          f"baselines: {'OK' if not failures else f'{failures} FAILURES'}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
