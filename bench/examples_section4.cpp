//===- bench/examples_section4.cpp - Experiment E6 ------------------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
// Regenerates the Section 4 example table: for each of Examples 1-6 the
// unrefined dependence, the analyzed result, and the paper's expectation,
// with a PASS/FAIL verdict per example.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"
#include "deps/DependenceAnalysis.h"

#include <cstdio>
#include <functional>
#include <string>

using namespace omega;

namespace {

std::string liveDirs(const analysis::AnalysisResult &R, unsigned Src,
                     unsigned Dst) {
  std::string Out;
  for (const deps::Dependence &D : R.Flow) {
    if (D.Src->StmtLabel != Src || D.Dst->StmtLabel != Dst)
      continue;
    for (const deps::DepSplit &S : D.Splits) {
      if (S.Dead)
        continue;
      if (!Out.empty())
        Out += " ";
      std::string Dir = S.dirToString();
      Out += Dir.empty() ? "()" : Dir; // no common loops
    }
  }
  return Out.empty() ? "dead" : Out;
}

bool report(const char *Name, const char *Source,
            const std::function<bool(const analysis::AnalysisResult &)>
                &Check,
            const char *Expect) {
  ir::AnalyzedProgram AP = ir::analyzeSource(Source);
  if (!AP.ok()) {
    std::printf("%-40s FAIL (did not lower)\n", Name);
    return false;
  }
  analysis::AnalysisResult R = analysis::analyzeProgram(AP);
  bool OK = Check(R);
  std::printf("%-40s %-30s %s\n", Name, Expect, OK ? "PASS" : "FAIL");
  return OK;
}

} // namespace

int main() {
  std::printf("== Experiment E6: Section 4 Examples 1-6 ==\n\n");
  std::printf("%-40s %-30s %s\n", "example", "paper expectation", "verdict");

  bool AllOK = true;
  AllOK &= report("Example 1: killed flow dep", kernels::example1(),
                  [](const analysis::AnalysisResult &R) {
                    return liveDirs(R, 1, 3) == "dead" &&
                           liveDirs(R, 2, 3) != "dead";
                  },
                  "a(n) flow killed");
  AllOK &= report("Example 2: covering and killed dep", kernels::example2(),
                  [](const analysis::AnalysisResult &R) {
                    return liveDirs(R, 1, 5) == "dead" &&
                           liveDirs(R, 2, 5) == "dead" &&
                           liveDirs(R, 3, 5) == "dead" &&
                           liveDirs(R, 4, 5) != "dead";
                  },
                  "only a(L2-1) flow survives");
  AllOK &= report("Example 3: refinement", kernels::example3(),
                  [](const analysis::AnalysisResult &R) {
                    return liveDirs(R, 1, 1) == "(0,1)";
                  },
                  "(0+,1) -> (0,1)");
  AllOK &= report("Example 4: trapezoidal refinement", kernels::example4(),
                  [](const analysis::AnalysisResult &R) {
                    return liveDirs(R, 1, 1) == "(0,1)";
                  },
                  "(0+,1) -> (0,1)");
  AllOK &= report("Example 5: partial refinement", kernels::example5(),
                  [](const analysis::AnalysisResult &R) {
                    return liveDirs(R, 1, 1) == "(1,1) (0,1)";
                  },
                  "(0+,1) -> (0:1,1)");
  AllOK &= report("Example 6: coupled refinement", kernels::example6(),
                  [](const analysis::AnalysisResult &R) {
                    return liveDirs(R, 1, 1) == "(1,1)";
                  },
                  "(a,a),a>=1 -> (1,1)");

  std::printf("\n%s\n", AllOK ? "all Section 4 examples reproduce"
                              : "SOME EXAMPLES FAILED");
  return AllOK ? 0 : 1;
}
