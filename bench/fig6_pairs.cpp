//===- bench/fig6_pairs.cpp - Experiments E3/E4 ----------------------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
// Regenerates the data behind Figure 6 on the kernel corpus:
//
//  * left graph: extended (refinement + covering) analysis time vs.
//    standard analysis time per write/read array pair, with the paper's
//    three cost classes -- no-Omega-needed ('.'), one general test ('*'),
//    and split-into-several-vectors ('<>');
//  * right graph: per kill candidate, the kill-test time vs. the time
//    spent generating and refining/covering the dependence being killed,
//    split into quick-test-resolved vs. Omega-consulted.
//
// The paper reports 417 pairs with classes 264/81/72 and most kill tests
// resolved without the Omega test; the *shape* (class separation, ratio
// bands y=x..4x) is the reproduction target.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include <cstdio>
#include <map>
#include <string>

using namespace omega;
using namespace omega::analysis;
using namespace omega::bench;

int main() {
  std::vector<KernelRun> Runs = runCorpus();

  std::printf("== Experiment E3: Figure 6 left (per-pair analysis times) "
              "==\n\n");
  std::printf("%-20s%-26s%-26s%12s%12s%10s\n", "kernel", "write", "read",
              "std_usec", "ext_usec", "class");
  std::map<std::string, unsigned> ClassCounts;
  unsigned Pairs = 0;
  double SumRatio = 0;
  unsigned RatioCount = 0;
  for (const KernelRun &Run : Runs) {
    for (const PairRecord &P : Run.Result.Pairs) {
      const char *Class = pairClass(P);
      ++ClassCounts[Class];
      ++Pairs;
      if (P.StandardSecs > 0) {
        SumRatio += P.ExtendedSecs / P.StandardSecs;
        ++RatioCount;
      }
      std::printf("%-20s%-26s%-26s%12.1f%12.1f%10s\n", Run.Name.c_str(),
                  P.Write->Text.c_str(), P.Read->Text.c_str(),
                  P.StandardSecs * 1e6, P.ExtendedSecs * 1e6, Class);
    }
  }
  std::printf("\npairs: %u   classes: fast=%u general=%u split=%u   "
              "mean ext/std ratio: %.2f\n",
              Pairs, ClassCounts["fast"], ClassCounts["general"],
              ClassCounts["split"],
              RatioCount ? SumRatio / RatioCount : 0.0);
  std::printf("paper: 417 pairs, classes 264/81/72, general tests cost "
              "2-3x standard analysis\n");

  std::printf("\n== Experiment E4: Figure 6 right (kill tests) ==\n\n");
  std::printf("%-20s%-20s%-20s%-20s%12s%10s%8s\n", "kernel", "from",
              "killer", "to", "kill_usec", "omega", "killed");
  unsigned Quick = 0, Omega = 0;
  for (const KernelRun &Run : Runs)
    for (const KillRecord &K : Run.Result.Kills) {
      (K.UsedOmega ? Omega : Quick)++;
      std::printf("%-20s%-20s%-20s%-20s%12.1f%10s%8s\n", Run.Name.c_str(),
                  K.From->Text.c_str(), K.Killer->Text.c_str(),
                  K.To->Text.c_str(), K.Secs * 1e6,
                  K.UsedOmega ? "yes" : "no", K.Killed ? "yes" : "no");
    }
  std::printf("\nkill candidates: %u quick-resolved, %u consulted the "
              "Omega test\n",
              Quick, Omega);
  std::printf("paper: 284 quick (< 0.3 msec), 54 consulted the Omega "
              "test\n");
  return 0;
}
