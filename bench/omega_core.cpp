//===- bench/omega_core.cpp - Experiment A3 (google-benchmark micros) -----===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
// Micro-benchmarks of the Omega test core operations: satisfiability on
// exact and dark-shadow paths, equality elimination via mod-hat,
// projection, gist computation, and one end-to-end CHOLSKY dependence
// pair.
//
//===----------------------------------------------------------------------===//

#include "analysis/Driver.h"
#include "deps/DependenceAnalysis.h"
#include "kernels/Kernels.h"
#include "omega/Gist.h"
#include "omega/Projection.h"
#include "omega/Satisfiability.h"

#include <benchmark/benchmark.h>

using namespace omega;

namespace {

Problem darkShadowClassic() {
  Problem P;
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  P.addGEQ({{X, 11}, {Y, 13}}, -27);
  P.addGEQ({{X, -11}, {Y, -13}}, 45);
  P.addGEQ({{X, 7}, {Y, -9}}, 10);
  P.addGEQ({{X, -7}, {Y, 9}}, 4);
  return P;
}

Problem boxed4D() {
  Problem P;
  std::vector<VarId> V;
  for (int I = 0; I != 4; ++I)
    V.push_back(P.addVar("v" + std::to_string(I)));
  for (VarId X : V) {
    P.addGEQ({{X, 1}}, 100);
    P.addGEQ({{X, -1}}, 100);
  }
  P.addGEQ({{V[0], 2}, {V[1], 3}, {V[2], -1}}, -7);
  P.addGEQ({{V[1], -2}, {V[3], 5}}, 11);
  P.addEQ({{V[0], 1}, {V[2], 1}, {V[3], -2}}, -1);
  return P;
}

void BM_SatisfiabilityExactPath(benchmark::State &State) {
  Problem P = boxed4D();
  for (auto _ : State)
    benchmark::DoNotOptimize(isSatisfiable(P));
}
BENCHMARK(BM_SatisfiabilityExactPath);

void BM_SatisfiabilityDarkShadow(benchmark::State &State) {
  Problem P = darkShadowClassic();
  for (auto _ : State)
    benchmark::DoNotOptimize(isSatisfiable(P));
}
BENCHMARK(BM_SatisfiabilityDarkShadow);

void BM_EqualityModHatChain(benchmark::State &State) {
  for (auto _ : State) {
    Problem P;
    VarId X = P.addVar("x");
    VarId Y = P.addVar("y");
    VarId Z = P.addVar("z");
    P.addEQ({{X, 7}, {Y, 12}, {Z, 31}}, -17);
    P.addGEQ({{X, 1}}, 100);
    P.addGEQ({{X, -1}}, 100);
    P.addGEQ({{Y, 1}}, 100);
    P.addGEQ({{Z, -1}}, 100);
    benchmark::DoNotOptimize(isSatisfiable(std::move(P)));
  }
}
BENCHMARK(BM_EqualityModHatChain);

void BM_ProjectionPaperExample(benchmark::State &State) {
  Problem P;
  VarId A = P.addVar("a");
  VarId B = P.addVar("b");
  P.addGEQ({{A, 1}}, 0);
  P.addGEQ({{A, -1}}, 5);
  P.addGEQ({{A, 1}, {B, -1}}, -1);
  P.addGEQ({{A, -1}, {B, 5}}, 0);
  for (auto _ : State)
    benchmark::DoNotOptimize(projectOnto(P, {A}));
}
BENCHMARK(BM_ProjectionPaperExample);

void BM_ProjectionWithSplinters(benchmark::State &State) {
  Problem P;
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  P.addGEQ({{Y, 3}, {X, -1}}, -5);
  P.addGEQ({{Y, -3}, {X, 1}}, 6);
  for (auto _ : State)
    benchmark::DoNotOptimize(projectOnto(P, {X}));
}
BENCHMARK(BM_ProjectionWithSplinters);

void BM_GistWithFastChecks(benchmark::State &State) {
  Problem Layout;
  VarId X = Layout.addVar("x");
  VarId Y = Layout.addVar("y");
  Problem P = Layout.cloneLayout();
  P.addGEQ({{X, 1}}, 0);
  P.addGEQ({{X, 1}, {Y, 1}}, -2);
  P.addGEQ({{X, -1}, {Y, 2}}, 30);
  Problem Q = Layout.cloneLayout();
  Q.addGEQ({{X, 1}}, -1);
  Q.addGEQ({{Y, 1}}, -1);
  Q.addGEQ({{X, -1}}, 40);
  Q.addGEQ({{Y, -1}}, 40);
  for (auto _ : State)
    benchmark::DoNotOptimize(gist(P, Q));
}
BENCHMARK(BM_GistWithFastChecks);

void BM_CholskyOnePairStandard(benchmark::State &State) {
  static ir::AnalyzedProgram AP = ir::analyzeSource(kernels::cholsky());
  const ir::Access *W = nullptr, *R = nullptr;
  for (const ir::Access &A : AP.Accesses) {
    if (A.StmtLabel == 1 && A.IsWrite)
      W = &A;
    if (A.StmtLabel == 1 && !A.IsWrite && A.Text == "A(L,I,J)")
      R = &A;
  }
  deps::DependenceAnalysis DA(AP);
  for (auto _ : State)
    benchmark::DoNotOptimize(
        DA.computeDependence(*W, *R, deps::DepKind::Flow));
}
BENCHMARK(BM_CholskyOnePairStandard);

void BM_CholskyWholeProgram(benchmark::State &State) {
  static ir::AnalyzedProgram AP = ir::analyzeSource(kernels::cholsky());
  for (auto _ : State)
    benchmark::DoNotOptimize(analysis::analyzeProgram(AP));
}
BENCHMARK(BM_CholskyWholeProgram);

} // namespace

BENCHMARK_MAIN();
