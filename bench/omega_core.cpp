//===- bench/omega_core.cpp - Experiment A3 (Omega core micros) -----------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
// Micro-benchmarks of the Omega test core operations: satisfiability on
// exact and dark-shadow paths, equality elimination via mod-hat,
// projection, gist computation, and one end-to-end CHOLSKY dependence
// pair.
//
// Two modes:
//  * default: the google-benchmark micro suite (BM_* below);
//  * --json <path>: a fixed-iteration, deterministic run of the core
//    operations (sat + gist + projection) over synthetic problems and the
//    whole kernel corpus, emitting a machine-readable record
//    (BENCH_omega_core.json) with wall times, peak RSS, and the OmegaStats
//    counters. The committed baseline at the repo root tracks the perf
//    trajectory; CI fails on >25% regression of core_ops.wall_ms.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include "analysis/Driver.h"
#include "api/Json.h"
#include "api/Response.h"
#include "api/Serve.h"
#include "deps/DependenceAnalysis.h"
#include "kernels/Kernels.h"
#include "transform/Pipeline.h"
#include "omega/Gist.h"
#include "omega/Projection.h"
#include "omega/Satisfiability.h"

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

using namespace omega;

namespace {

Problem darkShadowClassic() {
  Problem P;
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  P.addGEQ({{X, 11}, {Y, 13}}, -27);
  P.addGEQ({{X, -11}, {Y, -13}}, 45);
  P.addGEQ({{X, 7}, {Y, -9}}, 10);
  P.addGEQ({{X, -7}, {Y, 9}}, 4);
  return P;
}

Problem boxed4D() {
  Problem P;
  std::vector<VarId> V;
  for (int I = 0; I != 4; ++I)
    V.push_back(P.addVar("v" + std::to_string(I)));
  for (VarId X : V) {
    P.addGEQ({{X, 1}}, 100);
    P.addGEQ({{X, -1}}, 100);
  }
  P.addGEQ({{V[0], 2}, {V[1], 3}, {V[2], -1}}, -7);
  P.addGEQ({{V[1], -2}, {V[3], 5}}, 11);
  P.addEQ({{V[0], 1}, {V[2], 1}, {V[3], -2}}, -1);
  return P;
}

/// An 8-variable dependence-shaped system: two 4-deep triangular
/// iteration-space copies coupled by subscript equalities, the shape the
/// engine feeds the core thousands of times.
Problem triangularPair8D() {
  Problem P;
  std::vector<VarId> I, J;
  for (int D = 0; D != 4; ++D)
    I.push_back(P.addVar("i" + std::to_string(D)));
  for (int D = 0; D != 4; ++D)
    J.push_back(P.addVar("j" + std::to_string(D)));
  for (int D = 0; D != 4; ++D) {
    P.addGEQ({{I[D], 1}}, -1);   // i_d >= 1
    P.addGEQ({{I[D], -1}}, 40);  // i_d <= 40
    P.addGEQ({{J[D], 1}}, -1);
    P.addGEQ({{J[D], -1}}, 40);
    if (D) {
      P.addGEQ({{I[D], 1}, {I[D - 1], -1}}, 0); // i_d >= i_{d-1}
      P.addGEQ({{J[D], 1}, {J[D - 1], -1}}, 0);
    }
  }
  P.addEQ({{I[0], 1}, {J[0], -1}}, -1); // subscript: i0 == j0 + 1
  P.addEQ({{I[1], 1}, {J[2], -1}}, 0);  // coupled subscript
  P.addGEQ({{J[3], 1}, {I[3], -1}}, -1); // ordering
  return P;
}

//===--------------------------------------------------------------------===//
// google-benchmark micro suite
//===--------------------------------------------------------------------===//

void BM_SatisfiabilityExactPath(benchmark::State &State) {
  Problem P = boxed4D();
  for (auto _ : State)
    benchmark::DoNotOptimize(isSatisfiable(P));
}
BENCHMARK(BM_SatisfiabilityExactPath);

void BM_SatisfiabilityDarkShadow(benchmark::State &State) {
  Problem P = darkShadowClassic();
  for (auto _ : State)
    benchmark::DoNotOptimize(isSatisfiable(P));
}
BENCHMARK(BM_SatisfiabilityDarkShadow);

void BM_EqualityModHatChain(benchmark::State &State) {
  for (auto _ : State) {
    Problem P;
    VarId X = P.addVar("x");
    VarId Y = P.addVar("y");
    VarId Z = P.addVar("z");
    P.addEQ({{X, 7}, {Y, 12}, {Z, 31}}, -17);
    P.addGEQ({{X, 1}}, 100);
    P.addGEQ({{X, -1}}, 100);
    P.addGEQ({{Y, 1}}, 100);
    P.addGEQ({{Z, -1}}, 100);
    benchmark::DoNotOptimize(isSatisfiable(std::move(P)));
  }
}
BENCHMARK(BM_EqualityModHatChain);

void BM_ProjectionPaperExample(benchmark::State &State) {
  Problem P;
  VarId A = P.addVar("a");
  VarId B = P.addVar("b");
  P.addGEQ({{A, 1}}, 0);
  P.addGEQ({{A, -1}}, 5);
  P.addGEQ({{A, 1}, {B, -1}}, -1);
  P.addGEQ({{A, -1}, {B, 5}}, 0);
  for (auto _ : State)
    benchmark::DoNotOptimize(projectOnto(P, {A}));
}
BENCHMARK(BM_ProjectionPaperExample);

void BM_ProjectionWithSplinters(benchmark::State &State) {
  Problem P;
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  P.addGEQ({{Y, 3}, {X, -1}}, -5);
  P.addGEQ({{Y, -3}, {X, 1}}, 6);
  for (auto _ : State)
    benchmark::DoNotOptimize(projectOnto(P, {X}));
}
BENCHMARK(BM_ProjectionWithSplinters);

void BM_GistWithFastChecks(benchmark::State &State) {
  Problem Layout;
  VarId X = Layout.addVar("x");
  VarId Y = Layout.addVar("y");
  Problem P = Layout.cloneLayout();
  P.addGEQ({{X, 1}}, 0);
  P.addGEQ({{X, 1}, {Y, 1}}, -2);
  P.addGEQ({{X, -1}, {Y, 2}}, 30);
  Problem Q = Layout.cloneLayout();
  Q.addGEQ({{X, 1}}, -1);
  Q.addGEQ({{Y, 1}}, -1);
  Q.addGEQ({{X, -1}}, 40);
  Q.addGEQ({{Y, -1}}, 40);
  for (auto _ : State)
    benchmark::DoNotOptimize(gist(P, Q));
}
BENCHMARK(BM_GistWithFastChecks);

void BM_CholskyOnePairStandard(benchmark::State &State) {
  static ir::AnalyzedProgram AP = ir::analyzeSource(kernels::cholsky());
  const ir::Access *W = nullptr, *R = nullptr;
  for (const ir::Access &A : AP.Accesses) {
    if (A.StmtLabel == 1 && A.IsWrite)
      W = &A;
    if (A.StmtLabel == 1 && !A.IsWrite && A.Text == "A(L,I,J)")
      R = &A;
  }
  deps::DependenceAnalysis DA(AP);
  for (auto _ : State)
    benchmark::DoNotOptimize(
        DA.computeDependence(*W, *R, deps::DepKind::Flow));
}
BENCHMARK(BM_CholskyOnePairStandard);

void BM_CholskyWholeProgram(benchmark::State &State) {
  static ir::AnalyzedProgram AP = ir::analyzeSource(kernels::cholsky());
  for (auto _ : State)
    benchmark::DoNotOptimize(analysis::analyzeProgram(AP));
}
BENCHMARK(BM_CholskyWholeProgram);

//===--------------------------------------------------------------------===//
// --json mode: deterministic fixed-iteration runs
//===--------------------------------------------------------------------===//

using Clock = std::chrono::steady_clock;

double msSince(Clock::time_point Start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - Start)
      .count();
}

/// One rep of the pure-core workload: satisfiability, projection, and gist
/// over the fixed problem suite. Everything runs through \p Ctx (no cache)
/// so the counters record exactly the work done.
void coreOpsRep(const std::vector<Problem> &SatSuite,
                const Problem &ProjPaper, const Problem &ProjSplinter,
                const Problem &Tri, const Problem &GistP,
                const Problem &GistQ, OmegaContext &Ctx) {
  for (const Problem &P : SatSuite)
    benchmark::DoNotOptimize(isSatisfiable(P, SatOptions(), Ctx));
  benchmark::DoNotOptimize(
      projectOnto(ProjPaper, {0}, ProjectOptions(), Ctx));
  benchmark::DoNotOptimize(
      projectOnto(ProjSplinter, {0}, ProjectOptions(), Ctx));
  benchmark::DoNotOptimize(projectOnto(Tri, {0, 1, 2, 3}, ProjectOptions(),
                                       Ctx));
  benchmark::DoNotOptimize(gist(GistP, GistQ, GistOptions(), Ctx));
}

/// Deterministic rendering of every dependence an analysis produced, for
/// the pair_solver equality check: the incremental tiers must be invisible
/// in the results.
std::string renderDeps(const std::vector<deps::Dependence> &Deps) {
  std::string Out;
  for (const deps::Dependence &D : Deps) {
    Out += D.Src->Text;
    Out += "->";
    Out += D.Dst->Text;
    Out += ':';
    Out += deps::depKindName(D.Kind);
    if (D.Covers)
      Out += "[C]";
    if (D.CoverLoopIndependent)
      Out += "[CI]";
    for (const deps::DepSplit &S : D.Splits) {
      Out += " L" + std::to_string(S.Level) + "(" + S.dirToString() + ")";
      if (S.Dead) {
        Out += '!';
        Out += S.DeadReason;
      }
      if (S.Refined)
        Out += 'r';
    }
    Out += '\n';
  }
  return Out;
}

std::string renderResult(const engine::AnalysisResult &R) {
  return renderDeps(R.Flow) + "|" + renderDeps(R.Anti) + "|" +
         renderDeps(R.Output);
}

//===--------------------------------------------------------------------===//
// server section: omega-serve throughput over the corpus
//===--------------------------------------------------------------------===//

/// Extracts the bytes of the "result" value from one server response line
/// (brace-balanced, string-aware), so the bit-identity gate can compare it
/// against the one-shot renderer's output.
std::string serverResultBytes(const std::string &Line) {
  const std::string Marker = "\"result\": ";
  std::size_t At = Line.find(Marker);
  if (At == std::string::npos)
    return {};
  std::size_t Start = At + Marker.size();
  int Depth = 0;
  bool InString = false;
  for (std::size_t I = Start; I != Line.size(); ++I) {
    char C = Line[I];
    if (InString) {
      if (C == '\\')
        ++I;
      else if (C == '"')
        InString = false;
      continue;
    }
    if (C == '"')
      InString = true;
    else if (C == '{')
      ++Depth;
    else if (C == '}' && --Depth == 0)
      return Line.substr(Start, I + 1 - Start);
  }
  return {};
}

struct ServerLegNumbers {
  uint64_t Requests = 0;
  double WallMs = 0;
  double Rps = 0;
  double P50Ms = 0;
  double P99Ms = 0;
  bool Identical = true;
};

/// One closed-loop leg: \p Clients threads each submit every request line
/// in \p Lines once (offset per client so interleavings differ), waiting
/// for each response before sending the next. Latency is submit-to-response
/// per request; identity is the response's result bytes against
/// \p Expected.
ServerLegNumbers runServerLeg(api::Server &Server, unsigned Clients,
                              const std::vector<std::string> &Lines,
                              const std::vector<std::string> &Expected) {
  std::vector<std::vector<double>> Latencies(Clients);
  std::vector<char> Ok(Clients, 1);
  Clock::time_point LegStart = Clock::now();
  std::vector<std::thread> Threads;
  for (unsigned C = 0; C != Clients; ++C) {
    Threads.emplace_back([&, C] {
      for (std::size_t I = 0; I != Lines.size(); ++I) {
        std::size_t Pick = (I + C) % Lines.size();
        std::mutex Mu;
        std::condition_variable CV;
        bool Done = false;
        std::string Response;
        Clock::time_point Start = Clock::now();
        Server.submit(Lines[Pick], [&](std::string Line) {
          std::lock_guard<std::mutex> Lock(Mu);
          Response = std::move(Line);
          Done = true;
          CV.notify_one();
        });
        std::unique_lock<std::mutex> Lock(Mu);
        CV.wait(Lock, [&] { return Done; });
        Latencies[C].push_back(msSince(Start));
        if (serverResultBytes(Response) != Expected[Pick])
          Ok[C] = 0;
      }
    });
  }
  for (std::thread &T : Threads)
    T.join();

  ServerLegNumbers N;
  N.WallMs = msSince(LegStart);
  std::vector<double> All;
  for (unsigned C = 0; C != Clients; ++C) {
    All.insert(All.end(), Latencies[C].begin(), Latencies[C].end());
    N.Identical = N.Identical && Ok[C];
  }
  std::sort(All.begin(), All.end());
  N.Requests = All.size();
  N.Rps = N.WallMs > 0 ? 1000.0 * static_cast<double>(All.size()) / N.WallMs
                       : 0.0;
  if (!All.empty()) {
    N.P50Ms = All[All.size() / 2];
    N.P99Ms = All[std::min(All.size() - 1, All.size() * 99 / 100)];
  }
  return N;
}

void writeServerLeg(bench::JsonWriter &W, const char *K,
                    const ServerLegNumbers &N) {
  W.beginObject(K);
  W.field("requests", N.Requests);
  W.field("wall_ms", N.WallMs);
  W.field("requests_per_sec", N.Rps);
  W.field("p50_ms", N.P50Ms);
  W.field("p99_ms", N.P99Ms);
  W.endObject();
}

/// Submits one request line and blocks for its response.
std::string submitAndWait(api::Server &Server, const std::string &Line) {
  std::mutex Mu;
  std::condition_variable CV;
  bool Done = false;
  std::string Response;
  Server.submit(Line, [&](std::string R) {
    std::lock_guard<std::mutex> Lock(Mu);
    Response = std::move(R);
    Done = true;
    CV.notify_one();
  });
  std::unique_lock<std::mutex> Lock(Mu);
  CV.wait(Lock, [&] { return Done; });
  return Response;
}

/// Reads an integer stats counter (e.g. resultStoreHits) out of a
/// response line; the stats keys are unique within a document.
uint64_t statCounter(const std::string &Line, const std::string &Name) {
  std::string Marker = "\"" + Name + "\": ";
  std::size_t At = Line.find(Marker);
  if (At == std::string::npos)
    return 0;
  return std::strtoull(Line.c_str() + At + Marker.size(), nullptr, 10);
}

/// The cross-session pair: four 3-D nests whose solve (with the pair
/// quick tests disabled per request) takes tens of milliseconds. Gen-2 is
/// gen-1 under a rename that also REORDERS first mentions -- the symbolic
/// declaration order flips and every variable and array gets a name whose
/// lexical order reverses -- the hardest rename for a result store keyed
/// on canonical, name-free fingerprints.
std::string crossSessionProgram(bool Renamed) {
  const char *N = Renamed ? "zz" : "n";
  const char *M = Renamed ? "yy" : "m";
  const char *P = Renamed ? "xx" : "p";
  const char *I = Renamed ? "w" : "i";
  const char *J = Renamed ? "v" : "j";
  const char *K = Renamed ? "u" : "k";
  const char *A = Renamed ? "h" : "a";
  const char *B = Renamed ? "g" : "b";
  const char *C = Renamed ? "f" : "c";
  const char *D = Renamed ? "e" : "d";
  std::string Text =
      Renamed ? "symbolic xx, yy, zz;\n" : "symbolic n, m, p;\n";
  for (int Nest = 0; Nest != 4; ++Nest) {
    std::string S = std::to_string(Nest);
    std::string AN = A + S, BN = B + S, CN = C + S, DN = D + S;
    std::string IJK = std::string(I) + "," + J + "," + K;
    Text += std::string("for ") + I + " := 2 to " + N + " do\n" +
            "  for " + J + " := 2 to " + M + " do\n" +
            "    for " + K + " := 2 to " + P + " do\n" +
            "      " + AN + "(" + IJK + ") := " + AN + "(" + I + "-1," + J +
            "," + K + ") + " + AN + "(" + I + "," + J + "-1," + K + ") + " +
            BN + "(" + I + "-1," + J + "-1," + K + ") + " + CN + "(" + I +
            "," + J + "," + K + "-1);\n" +
            "      " + BN + "(" + IJK + ") := " + AN + "(" + IJK + ") + " +
            BN + "(" + I + "-1," + J + "," + K + "-1) + " + CN + "(" + I +
            "," + J + "-1," + K + ");\n" +
            "      " + CN + "(" + IJK + ") := " + BN + "(" + I + "," + J +
            "-1," + K + ") + " + CN + "(" + I + "-1," + J + "," + K +
            ") + " + AN + "(" + I + "-1," + J + "," + K + "-1);\n" +
            "      " + DN + "(" + IJK + ") := " + DN + "(" + I + "-1," + J +
            "-1," + K + "-1) + " + CN + "(" + IJK + ") + " + BN + "(" +
            IJK + ");\n" +
            "    endfor\n  endfor\nendfor\n";
  }
  return Text;
}

int runJsonMode(const char *Path, unsigned CoreReps, unsigned CorpusReps) {
  // -- core_ops: sat + gist + projection on the synthetic suite ----------
  std::vector<Problem> SatSuite;
  SatSuite.push_back(boxed4D());
  SatSuite.push_back(darkShadowClassic());
  SatSuite.push_back(triangularPair8D());
  {
    Problem P;
    VarId X = P.addVar("x");
    VarId Y = P.addVar("y");
    VarId Z = P.addVar("z");
    P.addEQ({{X, 7}, {Y, 12}, {Z, 31}}, -17);
    P.addGEQ({{X, 1}}, 100);
    P.addGEQ({{X, -1}}, 100);
    P.addGEQ({{Y, 1}}, 100);
    P.addGEQ({{Z, -1}}, 100);
    SatSuite.push_back(std::move(P));
  }

  Problem ProjPaper;
  {
    VarId A = ProjPaper.addVar("a");
    VarId B = ProjPaper.addVar("b");
    ProjPaper.addGEQ({{A, 1}}, 0);
    ProjPaper.addGEQ({{A, -1}}, 5);
    ProjPaper.addGEQ({{A, 1}, {B, -1}}, -1);
    ProjPaper.addGEQ({{A, -1}, {B, 5}}, 0);
  }
  Problem ProjSplinter;
  {
    VarId X = ProjSplinter.addVar("x");
    VarId Y = ProjSplinter.addVar("y");
    ProjSplinter.addGEQ({{Y, 3}, {X, -1}}, -5);
    ProjSplinter.addGEQ({{Y, -3}, {X, 1}}, 6);
  }
  Problem Tri = triangularPair8D();

  Problem GistLayout;
  VarId GX = GistLayout.addVar("x");
  VarId GY = GistLayout.addVar("y");
  Problem GistP = GistLayout.cloneLayout();
  GistP.addGEQ({{GX, 1}}, 0);
  GistP.addGEQ({{GX, 1}, {GY, 1}}, -2);
  GistP.addGEQ({{GX, -1}, {GY, 2}}, 30);
  Problem GistQ = GistLayout.cloneLayout();
  GistQ.addGEQ({{GX, 1}}, -1);
  GistQ.addGEQ({{GY, 1}}, -1);
  GistQ.addGEQ({{GX, -1}}, 40);
  GistQ.addGEQ({{GY, -1}}, 40);

  OmegaContext CoreCtx; // no cache: measure the solver, not memoization
  Clock::time_point CoreStart = Clock::now();
  for (unsigned R = 0; R != CoreReps; ++R)
    coreOpsRep(SatSuite, ProjPaper, ProjSplinter, Tri, GistP, GistQ,
               CoreCtx);
  double CoreMs = msSince(CoreStart);

  // -- corpus: the whole Section 4 pipeline, serial and uncached ---------
  std::vector<std::unique_ptr<ir::AnalyzedProgram>> Programs;
  for (const kernels::Kernel &K : kernels::corpus()) {
    auto AP = std::make_unique<ir::AnalyzedProgram>(
        ir::analyzeSource(K.Source));
    if (AP->ok())
      Programs.push_back(std::move(AP));
  }
  engine::AnalysisRequest Req;
  Req.Jobs = 1;
  Req.UseQueryCache = false;
  OmegaStats CorpusStats;
  Clock::time_point CorpusStart = Clock::now();
  for (unsigned R = 0; R != CorpusReps; ++R) {
    engine::DependenceEngine Engine(Req);
    for (const auto &AP : Programs) {
      engine::AnalysisResult Result = Engine.analyze(*AP);
      CorpusStats.merge(Result.Stats);
    }
  }
  double CorpusMs = msSince(CorpusStart);

  // -- pair_solver: the incremental tiers against the from-scratch path --
  // Same corpus pipeline twice: once with snapshots and quick tests off
  // (every query builds and reduces its own pair system) and once with the
  // defaults on. The rendered dependence sets must be identical; the
  // speedup is what ISSUE/EXPERIMENTS report.
  auto runLeg = [&](bool Incremental, bool QuickTests, OmegaStats &Stats,
                    std::string &Render) {
    engine::AnalysisRequest LegReq;
    LegReq.Jobs = 1;
    LegReq.UseQueryCache = false;
    LegReq.Incremental = Incremental;
    LegReq.PairQuickTests = QuickTests;
    Clock::time_point Start = Clock::now();
    for (unsigned R = 0; R != CorpusReps; ++R) {
      engine::DependenceEngine Engine(LegReq);
      for (const auto &AP : Programs) {
        engine::AnalysisResult Result = Engine.analyze(*AP);
        Stats.merge(Result.Stats);
        if (R == 0)
          Render += renderResult(Result);
      }
    }
    return msSince(Start);
  };
  OmegaStats ScratchStats, IncStats;
  std::string ScratchRender, IncRender;
  double ScratchMs = runLeg(false, false, ScratchStats, ScratchRender);
  double IncMs = runLeg(true, true, IncStats, IncRender);
  bool Identical = ScratchRender == IncRender;

  // -- server: omega-serve closed-loop throughput over the corpus --------
  // For each client count, a fresh daemon runs a cold pass (empty shared
  // cache) and a warm pass (same requests again); every response's result
  // section must match the one-shot renderer byte for byte.
  std::vector<std::string> ServeLines, ServeExpected;
  {
    engine::AnalysisRequest OneShot;
    OneShot.Jobs = 1;
    OneShot.UseQueryCache = false;
    engine::DependenceEngine OneShotEngine(OneShot);
    for (const kernels::Kernel &K : kernels::corpus()) {
      ir::AnalyzedProgram AP = ir::analyzeSource(K.Source);
      if (!AP.ok())
        continue;
      ServeExpected.push_back(api::renderResult(OneShotEngine.analyze(AP)));
      ServeLines.push_back(
          "{\"id\": " + std::to_string(ServeLines.size() + 1) +
          ", \"source\": \"" + api::json::escape(K.Source) + "\"}");
    }
  }
  const unsigned ClientCounts[] = {1, 4, 16};
  ServerLegNumbers ServerCold[3], ServerWarm[3];
  bool ServerIdentical = true;
  for (int I = 0; I != 3; ++I) {
    api::Server::Config Cfg;
    Cfg.Workers = 4;
    Cfg.MaxQueue = 1024; // closed-loop clients: never shed
    api::Server Server(Cfg);
    ServerCold[I] = runServerLeg(Server, ClientCounts[I], ServeLines,
                                 ServeExpected);
    ServerWarm[I] = runServerLeg(Server, ClientCounts[I], ServeLines,
                                 ServeExpected);
    Server.stop();
    ServerIdentical = ServerIdentical && ServerCold[I].Identical &&
                      ServerWarm[I].Identical;
  }

  // -- server telemetry overhead: the same warm 4-client leg with the
  // access log and Prometheus exposition on versus off. Recording is a
  // few relaxed atomics plus one log line per request, so the wall-clock
  // delta must stay inside the CI gate's few-percent bound, and results
  // stay byte-identical either way.
  ServerLegNumbers TeleOff, TeleOn;
  bool TeleIdentical = true;
  {
    auto RunTelemetryLeg = [&](bool On) {
      api::Server::Config Cfg;
      Cfg.Workers = 4;
      Cfg.MaxQueue = 1024;
      std::string AccessPath = "omega_core_bench.access.jsonl";
      std::string PromPath = "omega_core_bench.metrics.prom";
      if (On) {
        Cfg.AccessLog = AccessPath;
        Cfg.MetricsFile = PromPath;
      }
      api::Server Server(Cfg);
      ServerLegNumbers Cold =
          runServerLeg(Server, 4, ServeLines, ServeExpected); // warm the cache
      TeleIdentical = TeleIdentical && Cold.Identical;
      // Best of three warm passes: the overhead gate compares a few
      // percent, which single runs of a sub-second leg cannot resolve.
      ServerLegNumbers Best;
      for (int Rep = 0; Rep != 3; ++Rep) {
        ServerLegNumbers N =
            runServerLeg(Server, 4, ServeLines, ServeExpected);
        TeleIdentical = TeleIdentical && N.Identical;
        if (Rep == 0 || N.WallMs < Best.WallMs)
          Best = N;
      }
      Server.stop();
      if (On) {
        std::remove(AccessPath.c_str());
        std::remove(PromPath.c_str());
      }
      return Best;
    };
    TeleOff = RunTelemetryLeg(false);
    TeleOn = RunTelemetryLeg(true);
  }

  // -- server.cross_session: the global result store across "restarts" --
  // Cold solves gen-2 on a fresh server (empty store); warm feeds gen-1
  // into a fresh server's store first, then gen-2 -- a rename of gen-1
  // that reorders first mentions -- arrives sessionless and must
  // materialize every pair and kill group from the store. The hit/miss
  // counters come from the responses themselves and are exact,
  // machine-independent gates.
  struct CrossSessionNumbers {
    double ColdMs = 0, WarmMs = 0;
    uint64_t ColdHits = 0, ColdMisses = 0, WarmHits = 0, WarmMisses = 0;
    bool Identical = true;
  } Cross;
  const unsigned CrossReps = 5;
  {
    std::string Gen1 = crossSessionProgram(/*Renamed=*/false);
    std::string Gen2 = crossSessionProgram(/*Renamed=*/true);
    auto Line = [](const std::string &Src, int Id) {
      return "{\"id\": " + std::to_string(Id) + ", \"source\": \"" +
             api::json::escape(Src) +
             "\", \"options\": {\"quicktests\": false}}";
    };
    std::string Expected;
    {
      engine::AnalysisRequest OneShot;
      OneShot.Jobs = 1;
      OneShot.UseQueryCache = false;
      OneShot.PairQuickTests = false;
      engine::DependenceEngine OneShotEngine(OneShot);
      ir::AnalyzedProgram AP = ir::analyzeSource(Gen2);
      Expected = api::renderResult(OneShotEngine.analyze(AP));
    }
    for (unsigned R = 0; R != CrossReps; ++R) {
      {
        api::Server::Config Cfg;
        Cfg.Workers = 1;
        api::Server Server(Cfg);
        Clock::time_point Start = Clock::now();
        std::string Resp = submitAndWait(Server, Line(Gen2, 1));
        Cross.ColdMs += msSince(Start);
        Server.stop();
        Cross.Identical =
            Cross.Identical && serverResultBytes(Resp) == Expected;
        if (R == 0) {
          Cross.ColdHits = statCounter(Resp, "resultStoreHits");
          Cross.ColdMisses = statCounter(Resp, "resultStoreMisses");
        }
      }
      {
        api::Server::Config Cfg;
        Cfg.Workers = 1;
        api::Server Server(Cfg);
        submitAndWait(Server, Line(Gen1, 2)); // feed the store, untimed
        Clock::time_point Start = Clock::now();
        std::string Resp = submitAndWait(Server, Line(Gen2, 3));
        Cross.WarmMs += msSince(Start);
        Server.stop();
        Cross.Identical =
            Cross.Identical && serverResultBytes(Resp) == Expected;
        if (R == 0) {
          Cross.WarmHits = statCounter(Resp, "resultStoreHits");
          Cross.WarmMisses = statCounter(Resp, "resultStoreMisses");
        }
      }
    }
  }

  // -- incremental: edit-corpus replay against a recorded baseline -------
  // For each edited program, three legs re-analyze it EditReps times with
  // the cache state a fresh edit would see: cold (no cache at all), warm
  // (the PR 6 path: a query cache populated by analyzing the base
  // program), and incremental (the same warm cache plus the baseline
  // recorded on the base program). Every leg's rendered result must match
  // the cold one; the single-statement edits carry the >=5x target of
  // incremental over warm.
  struct EditLeg {
    std::string Name;
    bool SingleStmt;
    double ColdMs = 0, WarmMs = 0, IncMs = 0;
    engine::DeltaMetrics Delta;
  };
  std::vector<EditLeg> EditLegs;
  bool IncIdentical = true;
  double IncSectionMs = 0;
  unsigned EditReps = std::max(1u, CorpusReps * 10);
  {
    auto ReadEdit = [](const char *Name) {
      std::ifstream In(std::string(OMEGA_EDITS_DIR) + "/" + Name + ".tiny");
      std::ostringstream SS;
      SS << In.rdbuf();
      return SS.str();
    };
    ir::AnalyzedProgram BaseAP = ir::analyzeSource(ReadEdit("base"));
    const struct {
      const char *Name;
      bool SingleStmt;
    } Edits[] = {{"rename", false},
                 {"bound", false},
                 {"stmt-new", true},
                 {"stmt-edit", true},
                 {"loop-del", false},
                 {"interchange", false},
                 {"rename-reorder", false}};
    for (const auto &E : Edits) {
      ir::AnalyzedProgram EditAP = ir::analyzeSource(ReadEdit(E.Name));
      if (!BaseAP.ok() || !EditAP.ok())
        continue;
      EditLeg Leg;
      Leg.Name = E.Name;
      Leg.SingleStmt = E.SingleStmt;

      engine::AnalysisRequest ColdReq;
      ColdReq.Jobs = 1;
      ColdReq.UseQueryCache = false;
      engine::DependenceEngine ColdEngine(ColdReq);
      std::string ColdRender;
      Clock::time_point Start = Clock::now();
      for (unsigned R = 0; R != EditReps; ++R) {
        engine::AnalysisResult Result = ColdEngine.analyze(EditAP);
        if (R == 0)
          ColdRender = renderResult(Result);
      }
      Leg.ColdMs = msSince(Start);

      // Warm and incremental legs share a setup: a fresh engine whose
      // query cache was populated by one analysis of the base program
      // (the state a long-lived server is in when the edit arrives). The
      // cache is reset each rep by rebuilding the engine, so rep N never
      // rides on rep N-1's own queries.
      auto RunLeg = [&](bool UseBaseline, double &OutMs) {
        std::string Render;
        double Total = 0;
        for (unsigned R = 0; R != EditReps; ++R) {
          engine::AnalysisRequest WReq;
          WReq.Jobs = 1;
          WReq.BuildBaseline = UseBaseline;
          engine::DependenceEngine Engine(WReq);
          engine::AnalysisResult BaseRes = Engine.analyze(BaseAP);
          engine::AnalysisRequest EReq = WReq;
          EReq.Baseline = UseBaseline ? BaseRes.Baseline.get() : nullptr;
          Engine.applyOptions(EReq);
          Clock::time_point LegStart = Clock::now();
          engine::AnalysisResult Result = Engine.analyze(EditAP);
          Total += msSince(LegStart);
          if (R == 0) {
            Render = renderResult(Result);
            if (UseBaseline)
              Leg.Delta = Result.Delta;
          }
        }
        OutMs = Total;
        IncIdentical = IncIdentical && Render == ColdRender;
      };
      RunLeg(/*UseBaseline=*/false, Leg.WarmMs);
      RunLeg(/*UseBaseline=*/true, Leg.IncMs);
      IncSectionMs += Leg.ColdMs + Leg.WarmMs + Leg.IncMs;
      EditLegs.push_back(std::move(Leg));
    }
  }
  double SingleStmtSpeedup = 0;
  {
    bool First = true;
    for (const EditLeg &L : EditLegs)
      if (L.SingleStmt && L.IncMs > 0) {
        double S = L.WarmMs / L.IncMs;
        SingleStmtSpeedup = First ? S : std::min(SingleStmtSpeedup, S);
        First = false;
      }
  }

  // -- transform.pipeline: statement PDGs + PS-DSWP stage partitioning ---
  // Planning runs over the kernel corpus plus the shipped pipeline4
  // showcase. The per-loop stage counts and parallel flags are exact,
  // machine-independent gates; the schema-4 documents with the pipeline
  // block must be byte-identical for jobs 1 and jobs 4.
  struct PipelineLoopNumbers {
    std::string Key; ///< "<kernel>/<ordinal>:<loop var>@<depth>"
    uint64_t Stages = 0;
    bool Parallel = false;
  };
  std::vector<PipelineLoopNumbers> PipeLoops;
  bool PipeIdentical = true;
  double PipeMs = 0;
  unsigned PipeReps = std::max(1u, CorpusReps * 10);
  {
    std::vector<std::pair<std::string, ir::AnalyzedProgram>> Named;
    for (const kernels::Kernel &K : kernels::corpus()) {
      ir::AnalyzedProgram AP = ir::analyzeSource(K.Source);
      if (AP.ok())
        Named.emplace_back(K.Name, std::move(AP));
    }
    {
      std::ifstream In(std::string(OMEGA_EXAMPLES_DIR) + "/pipeline4.tiny");
      std::ostringstream SS;
      SS << In.rdbuf();
      ir::AnalyzedProgram AP = ir::analyzeSource(SS.str());
      if (AP.ok())
        Named.emplace_back("pipeline4", std::move(AP));
    }

    engine::AnalysisRequest P1;
    P1.Jobs = 1;
    P1.UseQueryCache = false;
    engine::AnalysisRequest P4 = P1;
    P4.Jobs = 4;
    std::vector<engine::AnalysisResult> Analyses;
    for (auto &[Name, AP] : Named) {
      engine::DependenceEngine E1(P1), E4(P4);
      engine::AnalysisResult R1 = E1.analyze(AP);
      engine::AnalysisResult R4 = E4.analyze(AP);
      PipeIdentical = PipeIdentical && api::renderResult(R1, &AP) ==
                                           api::renderResult(R4, &AP);
      unsigned Ordinal = 0;
      for (const transform::PipelineFacts &F :
           transform::analyzePipelines(AP, R1)) {
        PipelineLoopNumbers N;
        N.Key = Name + "/" + std::to_string(Ordinal++) + ":" +
                F.Loop->SourceVar + "@" + std::to_string(F.Loop->Depth + 1);
        N.Stages = F.Plan.valid() ? F.Plan.Stages.size() : 0;
        N.Parallel = F.Plan.hasParallelStage();
        PipeLoops.push_back(std::move(N));
      }
      Analyses.push_back(std::move(R1));
    }

    Clock::time_point Start = Clock::now();
    for (unsigned R = 0; R != PipeReps; ++R)
      for (unsigned I = 0; I != Named.size(); ++I)
        transform::analyzePipelines(Named[I].second, Analyses[I]);
    PipeMs = msSince(Start);
  }

  std::FILE *Out = std::fopen(Path, "w");
  if (!Out) {
    std::fprintf(stderr, "cannot open %s for writing\n", Path);
    return 1;
  }
  bench::JsonWriter W(Out);
  W.field("bench", "omega_core");
  W.field("schema", static_cast<uint64_t>(1));
#ifdef NDEBUG
  W.field("asserts", "off");
#else
  W.field("asserts", "on");
#endif
  W.beginObject("core_ops");
  W.field("reps", static_cast<uint64_t>(CoreReps));
  W.field("wall_ms", CoreMs);
  bench::writeStatsJson(W, "stats", CoreCtx.Stats);
  W.endObject();
  W.beginObject("corpus");
  W.field("reps", static_cast<uint64_t>(CorpusReps));
  W.field("kernels", static_cast<uint64_t>(Programs.size()));
  W.field("wall_ms", CorpusMs);
  bench::writeStatsJson(W, "stats", CorpusStats);
  W.endObject();
  W.beginObject("pair_solver");
  W.field("reps", static_cast<uint64_t>(CorpusReps));
  W.field("kernels", static_cast<uint64_t>(Programs.size()));
  W.field("scratch_wall_ms", ScratchMs);
  W.field("incremental_wall_ms", IncMs);
  W.field("speedup", IncMs > 0 ? ScratchMs / IncMs : 0.0);
  W.field("results_identical", Identical);
  bench::writeStatsJson(W, "scratch_stats", ScratchStats);
  bench::writeStatsJson(W, "incremental_stats", IncStats);
  W.endObject();
  W.beginObject("server");
  W.field("requests_per_leg", static_cast<uint64_t>(ServeLines.size()));
  W.field("workers", static_cast<uint64_t>(4));
  for (int I = 0; I != 3; ++I) {
    std::string K = "clients_" + std::to_string(ClientCounts[I]);
    W.beginObject(K.c_str());
    writeServerLeg(W, "cold", ServerCold[I]);
    writeServerLeg(W, "warm", ServerWarm[I]);
    W.endObject();
  }
  W.beginObject("telemetry");
  writeServerLeg(W, "off", TeleOff);
  writeServerLeg(W, "on", TeleOn);
  W.field("overhead_pct",
          TeleOff.WallMs > 0
              ? (TeleOn.WallMs / TeleOff.WallMs - 1.0) * 100.0
              : 0.0);
  W.field("results_identical", TeleIdentical);
  W.endObject();
  W.beginObject("cross_session");
  W.field("reps", static_cast<uint64_t>(CrossReps));
  W.field("cold_wall_ms", Cross.ColdMs);
  W.field("warm_wall_ms", Cross.WarmMs);
  W.field("speedup", Cross.WarmMs > 0 ? Cross.ColdMs / Cross.WarmMs : 0.0);
  W.field("cold_store_hits", Cross.ColdHits);
  W.field("cold_store_misses", Cross.ColdMisses);
  W.field("warm_store_hits", Cross.WarmHits);
  W.field("warm_store_misses", Cross.WarmMisses);
  W.field("results_identical", Cross.Identical);
  W.endObject();
  W.field("results_identical", ServerIdentical);
  W.endObject();
  W.beginObject("incremental");
  W.field("reps", static_cast<uint64_t>(EditReps));
  for (const EditLeg &L : EditLegs) {
    W.beginObject(L.Name.c_str());
    W.field("single_stmt", L.SingleStmt);
    W.field("cold_wall_ms", L.ColdMs);
    W.field("warm_wall_ms", L.WarmMs);
    W.field("incremental_wall_ms", L.IncMs);
    W.field("speedup_vs_warm", L.IncMs > 0 ? L.WarmMs / L.IncMs : 0.0);
    W.field("pairs_reused", L.Delta.PairsReused);
    W.field("pairs_resolved", L.Delta.PairsResolved);
    W.field("pairs_new", L.Delta.PairsNew);
    W.field("pairs_removed", L.Delta.PairsRemoved);
    W.field("kill_groups_reused", L.Delta.KillGroupsReused);
    W.field("kill_groups_total", L.Delta.KillGroupsTotal);
    W.endObject();
  }
  W.field("single_stmt_speedup", SingleStmtSpeedup);
  W.field("results_identical", IncIdentical);
  W.endObject();
  W.beginObject("transform.pipeline");
  W.field("reps", static_cast<uint64_t>(PipeReps));
  W.field("wall_ms", PipeMs);
  W.field("results_identical", PipeIdentical);
  W.beginObject("loops");
  for (const PipelineLoopNumbers &N : PipeLoops) {
    W.beginObject(N.Key.c_str());
    W.field("stages", N.Stages);
    W.field("parallel", N.Parallel);
    W.endObject();
  }
  W.endObject();
  W.endObject();
  W.field("total_wall_ms", CoreMs + CorpusMs + ScratchMs + IncMs);
  W.field("peak_rss_kb", bench::peakRSSKB());
  W.finish();
  std::fclose(Out);
  std::printf("core_ops %.1f ms, corpus %.1f ms, pair_solver %.1f/%.1f ms "
              "(%.2fx, results %s) -> %s\n",
              CoreMs, CorpusMs, ScratchMs, IncMs,
              IncMs > 0 ? ScratchMs / IncMs : 0.0,
              Identical ? "identical" : "DIFFER", Path);
  std::printf("server: 1/4/16 clients warm %.0f/%.0f/%.0f req/s "
              "(results %s)\n",
              ServerWarm[0].Rps, ServerWarm[1].Rps, ServerWarm[2].Rps,
              ServerIdentical ? "identical" : "DIFFER");
  std::printf("telemetry: off %.1f ms, on %.1f ms (%+.1f%%, results %s)\n",
              TeleOff.WallMs, TeleOn.WallMs,
              TeleOff.WallMs > 0
                  ? (TeleOn.WallMs / TeleOff.WallMs - 1.0) * 100.0
                  : 0.0,
              TeleIdentical ? "identical" : "DIFFER");
  std::printf("cross_session: cold %.1f ms, warm-renamed %.1f ms (%.2fx), "
              "store %llu/%llu warm hits/misses (results %s)\n",
              Cross.ColdMs, Cross.WarmMs,
              Cross.WarmMs > 0 ? Cross.ColdMs / Cross.WarmMs : 0.0,
              static_cast<unsigned long long>(Cross.WarmHits),
              static_cast<unsigned long long>(Cross.WarmMisses),
              Cross.Identical ? "identical" : "DIFFER");
  std::printf("incremental: %.1f ms over %zu edits, single-statement "
              "speedup %.2fx vs warm (results %s)\n",
              IncSectionMs, EditLegs.size(), SingleStmtSpeedup,
              IncIdentical ? "identical" : "DIFFER");
  {
    unsigned Planned = 0, ParallelLoops = 0;
    for (const PipelineLoopNumbers &N : PipeLoops) {
      Planned += N.Stages >= 2;
      ParallelLoops += N.Parallel;
    }
    std::printf("transform.pipeline: %.1f ms, %u/%zu loops planned, "
                "%u with a parallel stage (jobs 1 vs 4 results %s)\n",
                PipeMs, Planned, PipeLoops.size(), ParallelLoops,
                PipeIdentical ? "identical" : "DIFFER");
  }
  return 0;
}

} // namespace

int main(int argc, char **argv) {
  const char *JsonPath = nullptr;
  unsigned CoreReps = 400, CorpusReps = 3;
  for (int I = 1; I < argc; ++I) {
    if (!std::strcmp(argv[I], "--json") && I + 1 < argc)
      JsonPath = argv[++I];
    else if (!std::strcmp(argv[I], "--core-reps") && I + 1 < argc)
      CoreReps = static_cast<unsigned>(std::atoi(argv[++I]));
    else if (!std::strcmp(argv[I], "--corpus-reps") && I + 1 < argc)
      CorpusReps = static_cast<unsigned>(std::atoi(argv[++I]));
  }
  if (JsonPath)
    return runJsonMode(JsonPath, CoreReps, CorpusReps);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
