//===- bench/ablation_quicktests.cpp - Experiment A4 -----------------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
// Ablation: the Section 4.5 quick tests on vs. off, over the kernel
// corpus. The quick screens must change only cost, never outcomes; this
// harness verifies outcome equality and reports the whole-program
// analysis time and the number of general kill tests with and without.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include <chrono>
#include <cstdio>

using namespace omega;
using namespace omega::analysis;

int main() {
  std::printf("== Experiment A4: Section 4.5 quick tests on vs. off ==\n\n");
  std::printf("%-20s%12s%12s%14s%14s%10s\n", "kernel", "kills_on",
              "kills_off", "on_msec", "off_msec", "same");

  DriverOptions On, Off;
  Off.QuickTests = false;

  double TotalOn = 0, TotalOff = 0;
  bool AllSame = true;
  for (const kernels::Kernel &K : kernels::corpus()) {
    ir::AnalyzedProgram AP = ir::analyzeSource(K.Source);
    if (!AP.ok())
      continue;

    auto T0 = std::chrono::steady_clock::now();
    AnalysisResult ROn = analyzeProgram(AP, On);
    auto T1 = std::chrono::steady_clock::now();
    AnalysisResult ROff = analyzeProgram(AP, Off);
    auto T2 = std::chrono::steady_clock::now();

    double SecsOn = std::chrono::duration<double>(T1 - T0).count();
    double SecsOff = std::chrono::duration<double>(T2 - T1).count();
    TotalOn += SecsOn;
    TotalOff += SecsOff;

    unsigned GeneralOn = 0, GeneralOff = 0;
    for (const KillRecord &R : ROn.Kills)
      GeneralOn += R.UsedOmega;
    for (const KillRecord &R : ROff.Kills)
      GeneralOff += R.UsedOmega;

    bool Same = ROn.Flow.size() == ROff.Flow.size();
    for (unsigned I = 0; Same && I != ROn.Flow.size(); ++I)
      Same = ROn.Flow[I].allDead() == ROff.Flow[I].allDead();
    AllSame &= Same;

    std::printf("%-20s%12u%12u%14.2f%14.2f%10s\n", K.Name, GeneralOn,
                GeneralOff, SecsOn * 1e3, SecsOff * 1e3,
                Same ? "yes" : "NO!");
  }
  std::printf("\ntotals: %.1f ms with quick tests, %.1f ms without "
              "(%.2fx); outcomes %s\n",
              TotalOn * 1e3, TotalOff * 1e3,
              TotalOn > 0 ? TotalOff / TotalOn : 0.0,
              AllSame ? "identical" : "DIFFER (bug!)");
  return AllSame ? 0 : 1;
}
