//===- bench/BenchUtils.h - Shared harness for the paper's figures --------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the figure-reproduction benchmarks: run the Section 4
/// pipeline over the kernel corpus and collect the per-array-pair and
/// per-kill timing records that Figures 6 and 7 plot.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_BENCH_BENCHUTILS_H
#define OMEGA_BENCH_BENCHUTILS_H

#include "engine/DependenceEngine.h"
#include "kernels/Kernels.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

namespace omega {
namespace bench {

struct KernelRun {
  std::string Name;
  /// Owns the program the Result's Access pointers refer into.
  std::unique_ptr<ir::AnalyzedProgram> AP;
  engine::AnalysisResult Result;
};

/// Analyzes every kernel in the corpus (skipping any that fail to lower,
/// which only happens if a kernel uses unsupported syntax). One engine --
/// and so one query cache -- serves the whole corpus. Timing benchmarks
/// should keep the default serial, uncached request so their figures
/// measure the solver, not the cache.
inline std::vector<KernelRun> runCorpus(engine::AnalysisRequest Req = [] {
  engine::AnalysisRequest R;
  R.Jobs = 1;
  R.UseQueryCache = false;
  return R;
}()) {
  engine::DependenceEngine Engine(Req);
  std::vector<KernelRun> Runs;
  for (const kernels::Kernel &K : kernels::corpus()) {
    auto AP = std::make_unique<ir::AnalyzedProgram>(
        ir::analyzeSource(K.Source));
    if (!AP->ok()) {
      std::fprintf(stderr, "skipping %s:\n", K.Name);
      for (const ir::Diagnostic &D : AP->Diags)
        std::fprintf(stderr, "  %s\n", D.toString().c_str());
      continue;
    }
    KernelRun Run;
    Run.Name = K.Name;
    Run.Result = Engine.analyze(*AP);
    Run.AP = std::move(AP);
    Runs.push_back(std::move(Run));
  }
  return Runs;
}

/// The Figure 6 cost classes for one (write, read) pair.
inline const char *pairClass(const analysis::PairRecord &P) {
  if (!P.UsedGeneralTest)
    return "fast"; // refinement/coverage decided without the Omega test
  if (P.SplitVectors)
    return "split"; // the dependence split into several vectors
  return "general";
}

} // namespace bench
} // namespace omega

#endif // OMEGA_BENCH_BENCHUTILS_H
