//===- bench/BenchUtils.h - Shared harness for the paper's figures --------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the figure-reproduction benchmarks: run the Section 4
/// pipeline over the kernel corpus and collect the per-array-pair and
/// per-kill timing records that Figures 6 and 7 plot.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_BENCH_BENCHUTILS_H
#define OMEGA_BENCH_BENCHUTILS_H

#include "engine/DependenceEngine.h"
#include "kernels/Kernels.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace omega {
namespace bench {

struct KernelRun {
  std::string Name;
  /// Owns the program the Result's Access pointers refer into.
  std::unique_ptr<ir::AnalyzedProgram> AP;
  engine::AnalysisResult Result;
};

/// Analyzes every kernel in the corpus (skipping any that fail to lower,
/// which only happens if a kernel uses unsupported syntax). One engine --
/// and so one query cache -- serves the whole corpus. Timing benchmarks
/// should keep the default serial, uncached request so their figures
/// measure the solver, not the cache.
inline std::vector<KernelRun> runCorpus(engine::AnalysisRequest Req = [] {
  engine::AnalysisRequest R;
  R.Jobs = 1;
  R.UseQueryCache = false;
  return R;
}()) {
  engine::DependenceEngine Engine(Req);
  std::vector<KernelRun> Runs;
  for (const kernels::Kernel &K : kernels::corpus()) {
    auto AP = std::make_unique<ir::AnalyzedProgram>(
        ir::analyzeSource(K.Source));
    if (!AP->ok()) {
      std::fprintf(stderr, "skipping %s:\n", K.Name);
      for (const ir::Diagnostic &D : AP->Diags)
        std::fprintf(stderr, "  %s\n", D.toString().c_str());
      continue;
    }
    KernelRun Run;
    Run.Name = K.Name;
    Run.Result = Engine.analyze(*AP);
    Run.AP = std::move(AP);
    Runs.push_back(std::move(Run));
  }
  return Runs;
}

/// Peak resident set size of the process in kilobytes (0 when the platform
/// offers no getrusage).
inline long peakRSSKB() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage RU;
  if (getrusage(RUSAGE_SELF, &RU) == 0) {
#if defined(__APPLE__)
    return static_cast<long>(RU.ru_maxrss / 1024); // bytes on Darwin
#else
    return static_cast<long>(RU.ru_maxrss); // kilobytes on Linux
#endif
  }
#endif
  return 0;
}

/// Minimal streaming JSON object writer for the machine-readable benchmark
/// records (BENCH_*.json). Keys are emitted in insertion order so diffs of
/// committed baselines stay readable.
class JsonWriter {
public:
  explicit JsonWriter(std::FILE *Out) : Out(Out) { std::fputc('{', Out); }

  void key(const char *K) {
    if (!First)
      std::fputc(',', Out);
    First = false;
    std::fprintf(Out, "\n%*s\"%s\": ", Indent + 2, "", K);
  }

  void field(const char *K, double V) {
    key(K);
    std::fprintf(Out, "%.3f", V);
  }
  void field(const char *K, uint64_t V) {
    key(K);
    std::fprintf(Out, "%llu", static_cast<unsigned long long>(V));
  }
  void field(const char *K, long V) {
    key(K);
    std::fprintf(Out, "%ld", V);
  }
  void field(const char *K, const char *V) {
    key(K);
    std::fprintf(Out, "\"%s\"", V);
  }
  void field(const char *K, bool V) {
    key(K);
    std::fputs(V ? "true" : "false", Out);
  }

  /// Opens a nested object under \p K; close it with endObject().
  void beginObject(const char *K) {
    key(K);
    std::fputc('{', Out);
    Indent += 2;
    First = true;
  }
  void endObject() {
    Indent -= 2;
    std::fprintf(Out, "\n%*s}", Indent + 2, "");
    First = false;
  }

  void finish() { std::fprintf(Out, "\n}\n"); }

private:
  std::FILE *Out;
  int Indent = 0;
  bool First = true;
};

/// Writes every OmegaStats counter as one nested JSON object.
inline void writeStatsJson(JsonWriter &W, const char *K,
                           const OmegaStats &S) {
  W.beginObject(K);
  W.field("sat_calls", S.SatisfiabilityCalls);
  W.field("projection_calls", S.ProjectionCalls);
  W.field("gist_calls", S.GistCalls);
  W.field("exact_eliminations", S.ExactEliminations);
  W.field("inexact_eliminations", S.InexactEliminations);
  W.field("splinters_explored", S.SplintersExplored);
  W.field("dark_shadow_decided", S.DarkShadowDecided);
  W.field("real_shadow_decided", S.RealShadowDecided);
  W.field("mod_hat_substitutions", S.ModHatSubstitutions);
  W.field("gist_fast_drops", S.GistFastDrops);
  W.field("gist_fast_keeps", S.GistFastKeeps);
  W.field("gist_sat_tests", S.GistSatTests);
  W.field("sat_cache_hits", S.SatCacheHits);
  W.field("sat_cache_misses", S.SatCacheMisses);
  W.field("gist_cache_hits", S.GistCacheHits);
  W.field("gist_cache_misses", S.GistCacheMisses);
  W.field("snapshot_builds", S.SnapshotBuilds);
  W.field("snapshot_reuses", S.SnapshotReuses);
  W.field("snapshot_fallbacks", S.SnapshotFallbacks);
  W.field("snapshot_cache_hits", S.SnapshotCacheHits);
  W.field("snapshot_cache_misses", S.SnapshotCacheMisses);
  W.field("quicktest_ziv", S.QuickTestZIV);
  W.field("quicktest_gcd", S.QuickTestGCD);
  W.field("quicktest_bounds", S.QuickTestBounds);
  W.field("quicktest_trivial_dep", S.QuickTestTrivialDep);
  W.field("quicktest_decided", S.QuickTestDecided);
  W.endObject();
}

/// The Figure 6 cost classes for one (write, read) pair.
inline const char *pairClass(const analysis::PairRecord &P) {
  if (!P.UsedGeneralTest)
    return "fast"; // refinement/coverage decided without the Omega test
  if (P.SplitVectors)
    return "split"; // the dependence split into several vectors
  return "general";
}

} // namespace bench
} // namespace omega

#endif // OMEGA_BENCH_BENCHUTILS_H
