//===- bench/fig7_sorted.cpp - Experiment E5 -------------------------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
// Regenerates Figure 7: per-array-pair analysis time with and without the
// extended analysis, sorted by extended-analysis time. The two series and
// their widening gap in the expensive tail are the reproduction target.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include <algorithm>
#include <cstdio>

using namespace omega;
using namespace omega::analysis;
using namespace omega::bench;

int main() {
  std::vector<KernelRun> Runs = runCorpus();

  std::vector<const PairRecord *> Pairs;
  for (const KernelRun &Run : Runs)
    for (const PairRecord &P : Run.Result.Pairs)
      Pairs.push_back(&P);
  std::sort(Pairs.begin(), Pairs.end(),
            [](const PairRecord *A, const PairRecord *B) {
              return A->ExtendedSecs < B->ExtendedSecs;
            });

  std::printf("== Experiment E5: Figure 7 (sorted per-pair times) ==\n\n");
  std::printf("%8s%14s%14s\n", "rank", "std_usec", "ext_usec");
  double StdTotal = 0, ExtTotal = 0;
  for (unsigned I = 0; I != Pairs.size(); ++I) {
    StdTotal += Pairs[I]->StandardSecs;
    ExtTotal += Pairs[I]->ExtendedSecs;
    std::printf("%8u%14.1f%14.1f\n", I + 1, Pairs[I]->StandardSecs * 1e6,
                Pairs[I]->ExtendedSecs * 1e6);
  }
  std::printf("\ntotals over %zu pairs: standard %.2f ms, extended %.2f ms "
              "(%.2fx)\n",
              Pairs.size(), StdTotal * 1e3, ExtTotal * 1e3,
              StdTotal > 0 ? ExtTotal / StdTotal : 0.0);
  std::printf("paper shape: both series span ~2 orders of magnitude; the "
              "extended curve\nseparates from the standard one in the "
              "expensive tail\n");
  return 0;
}
