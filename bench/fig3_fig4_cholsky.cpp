//===- bench/fig3_fig4_cholsky.cpp - Experiments E1/E2 --------------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
// Regenerates Figures 3 and 4: the live and dead flow dependences of the
// CHOLSKY NAS kernel, with analysis wall-clock time. The row sets are the
// reproduction target; absolute times are host-dependent.
//
//===----------------------------------------------------------------------===//

#include "BenchUtils.h"

#include <chrono>
#include <cstdio>

using namespace omega;
using namespace omega::analysis;

static void printFigure(const AnalysisResult &R, bool Dead) {
  std::printf("%-22s%-22s%-14s%s\n", "FROM", "TO", "dir/dist", "status");
  for (const deps::Dependence &D : R.Flow)
    for (const deps::DepSplit &S : D.Splits) {
      if (S.Dead != Dead)
        continue;
      std::string From =
          std::to_string(kernels::cholskyPaperLabel(D.Src->StmtLabel)) +
          ": " + D.Src->Text;
      std::string To =
          std::to_string(kernels::cholskyPaperLabel(D.Dst->StmtLabel)) +
          ": " + D.Dst->Text;
      std::string Status;
      if (D.Covers)
        Status += 'C';
      if (S.DeadReason == 'c')
        Status += 'c';
      if (S.DeadReason == 'k')
        Status += 'k';
      if (S.Refined)
        Status += 'r';
      std::printf("%-22s%-22s%-14s%s\n", From.c_str(), To.c_str(),
                  S.dirToString().c_str(),
                  Status.empty() ? "" : ("[" + Status + "]").c_str());
    }
}

int main() {
  ir::AnalyzedProgram AP = ir::analyzeSource(kernels::cholsky());
  if (!AP.ok())
    return 1;

  auto Start = std::chrono::steady_clock::now();
  AnalysisResult R = analyzeProgram(AP);
  double Secs =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - Start)
          .count();

  std::printf("== Experiment E1: Figure 3 (live flow dependences, "
              "CHOLSKY) ==\n\n");
  printFigure(R, /*Dead=*/false);
  std::printf("\n== Experiment E2: Figure 4 (dead flow dependences, "
              "CHOLSKY) ==\n\n");
  printFigure(R, /*Dead=*/true);

  unsigned Live = 0, Dead = 0;
  for (const deps::Dependence &D : R.Flow)
    for (const deps::DepSplit &S : D.Splits)
      (S.Dead ? Dead : Live)++;
  std::printf("\nsummary: %u live rows, %u dead rows, %zu write/read pairs, "
              "%.1f ms total analysis\n",
              Live, Dead, R.Pairs.size(), Secs * 1e3);
  std::printf("paper:   21 live rows, 14 dead rows (our A(L,JJ,J)**2 "
              "expansion adds one row to each)\n");
  return 0;
}
