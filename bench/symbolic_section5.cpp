//===- bench/symbolic_section5.cpp - Experiment E7 -------------------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
// Regenerates the Section 5 worked results: Example 7's symbolic
// conditions and Example 8's index-array verdicts, each checked against
// the paper's stated answer.
//
//===----------------------------------------------------------------------===//

#include "kernels/Kernels.h"
#include "omega/Satisfiability.h"
#include "symbolic/SymbolicAnalysis.h"

#include <cstdio>

using namespace omega;
using namespace omega::symbolic;

namespace {

const ir::Access *find(const ir::AnalyzedProgram &AP, const char *Array,
                       bool IsWrite, const char *Text = nullptr) {
  for (const ir::Access &A : AP.Accesses)
    if (A.Array == Array && A.IsWrite == IsWrite &&
        (!Text || A.Text == Text))
      return &A;
  return nullptr;
}

bool allows(const SymbolicCondition &C,
            std::vector<std::pair<std::string, int64_t>> Pins) {
  if (C.Impossible)
    return false;
  Problem P = C.Condition;
  for (const auto &[Name, Value] : Pins)
    for (VarId V = 0; V != static_cast<VarId>(P.getNumVars()); ++V)
      if (P.getVarName(V) == Name)
        P.addEQ({{V, 1}}, -Value);
  return isSatisfiable(P);
}

unsigned Passed = 0, Total = 0;
void verdict(const char *What, bool OK) {
  ++Total;
  Passed += OK;
  std::printf("  %-58s %s\n", What, OK ? "PASS" : "FAIL");
}

} // namespace

int main() {
  std::printf("== Experiment E7: Section 5 symbolic analysis ==\n");

  {
    std::printf("\nExample 7 (conditions over x, y, m; asserted "
                "50 <= n <= 100):\n");
    ir::AnalyzedProgram AP = ir::analyzeSource(kernels::example7());
    const ir::Access *W = find(AP, "A", true);
    const ir::Access *R = find(AP, "A", false);
    AssertionDB DB;
    DB.assumeInBounds();
    ArrayBounds AB;
    AB.Dims = {{SymExpr::constant(1), SymExpr::name("n")},
               {SymExpr::constant(1), SymExpr::name("m")}};
    DB.declareArrayBounds("A", AB);
    DB.declareArrayBounds("C", AB);
    DB.assertRelation(SymExpr::constant(50), SymRelation::Rel::LE,
                      SymExpr::name("n"));
    DB.assertRelation(SymExpr::name("n"), SymRelation::Rel::LE,
                      SymExpr::constant(100));

    SymbolicCondition C1 =
        dependenceCondition(AP, *W, *R, 1, DB, {"x", "y", "m"});
    std::printf("  outer-carried (+,*): %s\n", C1.Text.c_str());
    verdict("paper: 1 <= x <= 50",
            allows(C1, {{"x", 1}}) && allows(C1, {{"x", 50}}) &&
                !allows(C1, {{"x", 0}}) && !allows(C1, {{"x", 51}}));

    SymbolicCondition C2 =
        dependenceCondition(AP, *W, *R, 2, DB, {"x", "y", "m"});
    std::printf("  inner-carried (0,+): %s\n", C2.Text.c_str());
    verdict("paper: x = 0 and y < m",
            allows(C2, {{"x", 0}, {"y", 1}, {"m", 2}}) &&
                !allows(C2, {{"x", 1}}) &&
                !allows(C2, {{"x", 0}, {"y", 2}, {"m", 2}}));
  }

  {
    std::printf("\nExample 8 (index array Q):\n");
    ir::AnalyzedProgram AP = ir::analyzeSource(kernels::example8());
    const ir::Access *W = find(AP, "A", true);
    const ir::Access *R = find(AP, "A", false, "A(Q(L1+1)-1)");
    AssertionDB DB;
    DB.assumeInBounds();
    ArrayBounds AB;
    AB.Dims = {{SymExpr::constant(1), SymExpr::name("n")}};
    DB.declareArrayBounds("A", AB);
    DB.declareArrayBounds("Q", AB);
    DB.declareArrayBounds("C", AB);

    std::vector<UserQuery> OutQ = generateQueries(AP, *W, *W, 1, DB);
    for (const UserQuery &Q : OutQ)
      std::printf("  output-dep query: never %s given %s\n",
                  Q.Offending.c_str(), Q.Condition.c_str());
    verdict("paper: asks whether Q[a] = Q[b] can happen",
            OutQ.size() == 1 &&
                OutQ.front().Offending.find("Q[a]") != std::string::npos);

    std::vector<UserQuery> FlowQ = generateQueries(AP, *W, *R, 1, DB);
    for (const UserQuery &Q : FlowQ)
      std::printf("  flow-dep query:   never %s given %s\n",
                  Q.Offending.c_str(), Q.Condition.c_str());
    verdict("paper: asks whether Q[a] = Q[b] - 1 can happen",
            FlowQ.size() == 1 &&
                FlowQ.front().Offending.find("Q[") != std::string::npos);

    AssertionDB Perm = DB;
    Perm.assertPermutation("Q");
    verdict("permutation assertion kills the output dependence",
            !dependencePossible(AP, *W, *W, 1, Perm));

    AssertionDB Incr = DB;
    Incr.assertStrictlyIncreasing("Q");
    verdict("strictly-increasing assertion kills the carried flow",
            !dependencePossible(AP, *W, *R, 1, Incr));
    verdict("without assertions both dependences assumed",
            dependencePossible(AP, *W, *W, 1, DB) &&
                dependencePossible(AP, *W, *R, 1, DB));
  }

  std::printf("\n%u/%u Section 5 checks pass\n", Passed, Total);
  return Passed == Total ? 0 : 1;
}
