//===- bench/ablation_darkshadow.cpp - Experiment A1 -----------------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
// Ablation: the exact Omega test (dark shadow + splinters) vs. the classic
// Fourier-Motzkin real relaxation that pre-Omega dependence tests
// effectively used. Measures, over random constraint systems of increasing
// coefficient size, how often the relaxation wrongly reports "satisfiable"
// (a false dependence) and what the exactness costs in time.
//
//===----------------------------------------------------------------------===//

#include "omega/Satisfiability.h"

#include <chrono>
#include <cstdio>
#include <random>

using namespace omega;

namespace {

Problem randomSystem(std::mt19937 &Rng, unsigned NumVars, unsigned NumGEQs,
                     int64_t CoeffRange, int64_t Box) {
  Problem P;
  std::vector<VarId> Vars;
  for (unsigned I = 0; I != NumVars; ++I)
    Vars.push_back(P.addVar("x" + std::to_string(I)));
  std::uniform_int_distribution<int64_t> Coeff(-CoeffRange, CoeffRange);
  std::uniform_int_distribution<int64_t> Const(-3 * CoeffRange,
                                               3 * CoeffRange);
  for (unsigned I = 0; I != NumGEQs; ++I) {
    Constraint &Row = P.addRow(ConstraintKind::GEQ);
    for (VarId V : Vars)
      Row.setCoeff(V, Coeff(Rng));
    Row.setConstant(Const(Rng));
  }
  for (VarId V : Vars) {
    P.addGEQ({{V, 1}}, Box);
    P.addGEQ({{V, -1}}, Box);
  }
  return P;
}

} // namespace

int main() {
  std::printf("== Experiment A1: dark shadow + splinters vs. real-shadow "
              "relaxation ==\n\n");
  std::printf("%8s%8s%10s%12s%12s%14s%14s\n", "coeff", "vars", "systems",
              "sat", "false-sat", "exact_usec", "relax_usec");

  std::mt19937 Rng(12345);
  for (int64_t CoeffRange : {2, 4, 8, 16, 32}) {
    for (unsigned NumVars : {2u, 3u}) {
      const unsigned Systems = 400;
      unsigned Sat = 0, FalseSat = 0;
      double ExactSecs = 0, RelaxSecs = 0;
      for (unsigned I = 0; I != Systems; ++I) {
        Problem P = randomSystem(Rng, NumVars, NumVars + 2, CoeffRange,
                                 4 * CoeffRange);

        auto T0 = std::chrono::steady_clock::now();
        bool Exact = isSatisfiable(P);
        auto T1 = std::chrono::steady_clock::now();
        SatOptions Relax;
        Relax.Mode = SatMode::RealShadowOnly;
        bool Relaxed = isSatisfiable(P, Relax);
        auto T2 = std::chrono::steady_clock::now();

        ExactSecs += std::chrono::duration<double>(T1 - T0).count();
        RelaxSecs += std::chrono::duration<double>(T2 - T1).count();
        Sat += Exact;
        // The relaxation is an over-approximation: Exact => Relaxed.
        if (Relaxed && !Exact)
          ++FalseSat;
      }
      std::printf("%8lld%8u%10u%12u%12u%14.2f%14.2f\n",
                  static_cast<long long>(CoeffRange), NumVars, Systems, Sat,
                  FalseSat, ExactSecs / Systems * 1e6,
                  RelaxSecs / Systems * 1e6);
    }
  }
  std::printf("\nshape: false-sat (spurious dependences) grows with "
              "coefficient size while the\nexact test stays within a small "
              "constant factor of the relaxation's cost\n");
  return 0;
}
