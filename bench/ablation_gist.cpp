//===- bench/ablation_gist.cpp - Experiment A2 ------------------------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
// Ablation: the Section 3.3 fast checks (single-constraint implication,
// normal-direction screening, two-constraint implication) on vs. off.
// Measures gist computation time and the number of satisfiability tests
// the naive loop needs, over random problem pairs.
//
//===----------------------------------------------------------------------===//

#include "omega/Gist.h"
#include "omega/OmegaContext.h"
#include "omega/Satisfiability.h"

#include <chrono>
#include <cstdio>
#include <random>

using namespace omega;

namespace {

Problem randomConjunction(std::mt19937 &Rng, const Problem &Layout,
                          unsigned NumGEQs, int64_t CoeffRange,
                          int64_t ConstRange) {
  Problem P = Layout.cloneLayout();
  std::uniform_int_distribution<int64_t> Coeff(-CoeffRange, CoeffRange);
  std::uniform_int_distribution<int64_t> Const(-ConstRange, ConstRange);
  for (unsigned I = 0; I != NumGEQs; ++I) {
    Constraint &Row = P.addRow(ConstraintKind::GEQ);
    for (VarId V = 0; V != static_cast<VarId>(P.getNumVars()); ++V)
      Row.setCoeff(V, Coeff(Rng));
    Row.setConstant(Const(Rng));
  }
  return P;
}

} // namespace

int main() {
  std::printf("== Experiment A2: gist fast checks on vs. off ==\n\n");
  std::printf("%8s%8s%10s%16s%16s%14s%14s\n", "rows", "vars", "pairs",
              "sat_tests_on", "sat_tests_off", "on_usec", "off_usec");

  std::mt19937 Rng(777);
  OmegaContext Ctx; // experiment-local stats; never the process default
  for (unsigned NumVars : {2u, 3u}) {
    for (unsigned Rows : {3u, 5u, 8u}) {
      Problem Layout;
      for (unsigned I = 0; I != NumVars; ++I)
        Layout.addVar("x" + std::to_string(I));

      const unsigned Pairs = 200;
      uint64_t TestsOn = 0, TestsOff = 0;
      double SecsOn = 0, SecsOff = 0;
      unsigned Disagreements = 0;
      for (unsigned I = 0; I != Pairs; ++I) {
        Problem P = randomConjunction(Rng, Layout, Rows, 3, 12);
        Problem Q = randomConjunction(Rng, Layout, Rows, 3, 12);
        // Bound the space through q so the pair is usually consistent.
        for (VarId V = 0; V != static_cast<VarId>(NumVars); ++V) {
          Q.addGEQ({{V, 1}}, 20);
          Q.addGEQ({{V, -1}}, 20);
        }

        GistOptions On, Off;
        Off.UseFastChecks = false;

        Ctx.Stats.reset();
        auto T0 = std::chrono::steady_clock::now();
        Problem GOn = gist(P, Q, On, Ctx);
        auto T1 = std::chrono::steady_clock::now();
        TestsOn += Ctx.Stats.GistSatTests;

        Ctx.Stats.reset();
        auto T2 = std::chrono::steady_clock::now();
        Problem GOff = gist(P, Q, Off, Ctx);
        auto T3 = std::chrono::steady_clock::now();
        TestsOff += Ctx.Stats.GistSatTests;

        SecsOn += std::chrono::duration<double>(T1 - T0).count();
        SecsOff += std::chrono::duration<double>(T3 - T2).count();

        // Both must satisfy the gist equation; check semantic agreement
        // via mutual implication under q.
        Problem QGOn = Q, QGOff = Q;
        for (const Constraint &Row : GOn.constraints())
          QGOn.addConstraint(Row);
        for (const Constraint &Row : GOff.constraints())
          QGOff.addConstraint(Row);
        if (implies(QGOn, GOff) != implies(QGOff, GOn))
          ++Disagreements;
      }
      std::printf("%8u%8u%10u%16.1f%16.1f%14.2f%14.2f\n", Rows, NumVars,
                  Pairs, double(TestsOn) / Pairs, double(TestsOff) / Pairs,
                  SecsOn / Pairs * 1e6, SecsOff / Pairs * 1e6);
      if (Disagreements)
        std::printf("  SEMANTIC DISAGREEMENTS: %u\n", Disagreements);
    }
  }
  std::printf("\nshape: the fast checks settle most constraints before the "
              "naive loop,\ncutting its satisfiability tests\n");
  return 0;
}
