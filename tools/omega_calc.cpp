//===- tools/omega_calc.cpp - Interactive Omega calculator ---------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
// An interactive (or scripted) calculator over integer constraint sets,
// in the spirit of the Omega Calculator:
//
//   $ omega-calc
//   > P := {[i,j] : 1 <= i <= n && i < j && j <= 10};
//   > sat P;
//   P is satisfiable
//   > project P onto [i];
//   projection: { i >= 1; -i >= -9; ... }
//
// With a file argument (or piped stdin) the whole script runs at once.
// The ablation toggles are the shared api option surface (--help); the
// matching script directives (`quicktests off;`, `incremental off;`)
// steer the same context switches mid-script.
//
//===----------------------------------------------------------------------===//

#include "api/Options.h"
#include "calc/Calc.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <unistd.h>

using namespace omega;

namespace {

int usage(FILE *To) {
  std::fprintf(To, "usage: omega-calc [options] [script]\n"
                   "\nShared analysis options:\n%s",
               api::optionsHelp(api::ToolCalc).c_str());
  return To == stderr ? 2 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> Args(Argv + 1, Argv + Argc);
  api::ParsedArgs Parsed;
  std::string Err;
  if (!api::parseArgs(Args, api::ToolCalc, Parsed, Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return usage(stderr);
  }
  if (Parsed.Help)
    return usage(stdout);

  std::string Script;
  for (const std::string &Arg : Parsed.Rest) {
    if (!Arg.empty() && Arg[0] == '-' && Arg != "-") {
      std::fprintf(stderr, "error: unknown option %s\n", Arg.c_str());
      return usage(stderr);
    }
    if (!Script.empty())
      return usage(stderr);
    Script = Arg;
  }

  calc::Calculator Calc;
  Calc.context().PairQuickTests = Parsed.Options.PairQuickTests;
  Calc.context().IncrementalSnapshots = Parsed.Options.Incremental;

  if (!Script.empty() && Script != "-") {
    std::ifstream In(Script);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", Script.c_str());
      return 1;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    std::fputs(Calc.run(SS.str()).c_str(), stdout);
    return Calc.hadError() ? 1 : 0;
  }

  bool Interactive = isatty(STDIN_FILENO);
  if (Interactive)
    std::fputs("omega-calc (sat / solution / project / gist / simplify / "
               "print / trace on|off; ctrl-d quits)\n",
               stdout);
  std::string Line;
  std::string Pending;
  while (true) {
    if (Interactive)
      std::fputs("> ", stdout), std::fflush(stdout);
    if (!std::getline(std::cin, Line))
      break;
    Pending += Line + "\n";
    // Execute once the statement is closed by a ';'.
    if (Line.find(';') == std::string::npos)
      continue;
    std::fputs(Calc.run(Pending).c_str(), stdout);
    Pending.clear();
  }
  if (!Pending.empty())
    std::fputs(Calc.run(Pending).c_str(), stdout);
  return Calc.hadError() ? 1 : 0;
}
