//===- tools/omega_calc.cpp - Interactive Omega calculator ---------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
// An interactive (or scripted) calculator over integer constraint sets,
// in the spirit of the Omega Calculator:
//
//   $ omega-calc
//   > P := {[i,j] : 1 <= i <= n && i < j && j <= 10};
//   > sat P;
//   P is satisfiable
//   > project P onto [i];
//   projection: { i >= 1; -i >= -9; ... }
//
// With a file argument (or piped stdin) the whole script runs at once.
//
//===----------------------------------------------------------------------===//

#include "calc/Calc.h"

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <unistd.h>

using namespace omega;

int main(int Argc, char **Argv) {
  calc::Calculator Calc;

  if (Argc > 2) {
    std::fprintf(stderr, "usage: %s [script]\n", Argv[0]);
    return 2;
  }
  if (Argc == 2) {
    std::ifstream In(Argv[1]);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", Argv[1]);
      return 1;
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    std::fputs(Calc.run(SS.str()).c_str(), stdout);
    return Calc.hadError() ? 1 : 0;
  }

  bool Interactive = isatty(STDIN_FILENO);
  if (Interactive)
    std::fputs("omega-calc (sat / solution / project / gist / simplify / "
               "print / trace on|off; ctrl-d quits)\n",
               stdout);
  std::string Line;
  std::string Pending;
  while (true) {
    if (Interactive)
      std::fputs("> ", stdout), std::fflush(stdout);
    if (!std::getline(std::cin, Line))
      break;
    Pending += Line + "\n";
    // Execute once the statement is closed by a ';'.
    if (Line.find(';') == std::string::npos)
      continue;
    std::fputs(Calc.run(Pending).c_str(), stdout);
    Pending.clear();
  }
  if (!Pending.empty())
    std::fputs(Calc.run(Pending).c_str(), stdout);
  return Calc.hadError() ? 1 : 0;
}
