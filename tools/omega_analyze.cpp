//===- tools/omega_analyze.cpp - Command-line dependence analyzer ---------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
// A command-line front door to the analysis, in the spirit of the
// augmented `tiny` tool the paper describes:
//
//   omega-analyze [options] [file.tiny]     (stdin when no file)
//
//   --all          also print anti and output dependences
//   --compress     compress split rows into the paper's display vectors
//   --no-refine / --no-cover / --no-kill / --no-quick
//                  disable parts of the Section 4 pipeline
//   --terminate    enable the terminating-write extension
//   --stats        per-pair cost classes and timings (Figure 6 style)
//   --run          interpret the program (needs every symbol bound)
//   --sym name=v   bind a symbolic constant (repeatable; with --run)
//
//===----------------------------------------------------------------------===//

#include "analysis/Driver.h"
#include "analysis/Transforms.h"
#include "deps/DepSpace.h"
#include "ir/Interp.h"
#include "transform/Apply.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <sstream>
#include <string>

using namespace omega;

namespace {

struct Options {
  bool All = false;
  bool Compress = false;
  bool Stats = false;
  bool Run = false;
  bool Transforms = false;
  bool Restraints = false;
  bool Schedule = false;
  analysis::DriverOptions Driver;
  std::map<std::string, int64_t> Symbols;
  std::string File;
};

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--all] [--compress] [--stats] [--transforms] [--schedule] "
               "[--restraints]\n"
               "          [--no-refine] [--no-cover] [--no-kill] "
               "[--no-quick] [--terminate]\n"
               "          [--run] [--sym name=value]... [file]\n",
               Argv0);
  return 2;
}

bool parseArgs(int Argc, char **Argv, Options &Opts) {
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--all")
      Opts.All = true;
    else if (Arg == "--compress")
      Opts.Compress = true;
    else if (Arg == "--stats")
      Opts.Stats = true;
    else if (Arg == "--run")
      Opts.Run = true;
    else if (Arg == "--transforms")
      Opts.Transforms = true;
    else if (Arg == "--restraints")
      Opts.Restraints = true;
    else if (Arg == "--schedule")
      Opts.Schedule = true;
    else if (Arg == "--no-refine")
      Opts.Driver.Refine = false;
    else if (Arg == "--no-cover")
      Opts.Driver.Cover = false;
    else if (Arg == "--no-kill")
      Opts.Driver.Kill = false;
    else if (Arg == "--no-quick")
      Opts.Driver.QuickTests = false;
    else if (Arg == "--terminate")
      Opts.Driver.Terminate = true;
    else if (Arg == "--sym") {
      if (I + 1 == Argc)
        return false;
      std::string Binding = Argv[++I];
      size_t Eq = Binding.find('=');
      if (Eq == std::string::npos)
        return false;
      Opts.Symbols[Binding.substr(0, Eq)] =
          std::stoll(Binding.substr(Eq + 1));
    } else if (Arg != "-" && !Arg.empty() && Arg[0] == '-') {
      return false;
    } else if (Opts.File.empty()) {
      Opts.File = Arg;
    } else {
      return false;
    }
  }
  return true;
}

void printDeps(const std::vector<deps::Dependence> &Deps, const char *Title,
               bool Dead, bool Compress) {
  std::printf("\n%s:\n%-24s%-24s%-14s%s\n", Title, "FROM", "TO", "dir/dist",
              "status");
  for (const deps::Dependence &D : Deps) {
    std::vector<deps::DepSplit> Rows =
        Compress ? deps::compressSplits(D.Splits) : D.Splits;
    for (const deps::DepSplit &S : Rows) {
      if (S.Dead != Dead)
        continue;
      std::string From =
          std::to_string(D.Src->StmtLabel) + ": " + D.Src->Text;
      std::string To = std::to_string(D.Dst->StmtLabel) + ": " + D.Dst->Text;
      std::string Status;
      if (D.Covers)
        Status += 'C';
      if (S.DeadReason)
        Status += S.DeadReason;
      if (S.Refined)
        Status += 'r';
      std::printf("%-24s%-24s%-14s%s\n", From.c_str(), To.c_str(),
                  S.dirToString().c_str(),
                  Status.empty() ? "" : ("[" + Status + "]").c_str());
    }
  }
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return usage(Argv[0]);

  std::string Source;
  if (Opts.File.empty() || Opts.File == "-") {
    std::ostringstream SS;
    SS << std::cin.rdbuf();
    Source = SS.str();
  } else {
    std::ifstream In(Opts.File);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", Opts.File.c_str());
      return 1;
    }
    Source.assign(std::istreambuf_iterator<char>(In),
                  std::istreambuf_iterator<char>());
  }

  ir::AnalyzedProgram AP = ir::analyzeSource(Source);
  if (!AP.ok()) {
    for (const ir::Diagnostic &D : AP.Diags)
      std::fprintf(stderr, "error: %s\n", D.toString().c_str());
    return 1;
  }

  if (Opts.Run) {
    ir::ExecConfig Config;
    Config.Symbols = Opts.Symbols;
    ir::ExecResult R = ir::interpret(AP.Source, Config);
    if (R.Failed) {
      std::fprintf(stderr, "run error: %s (bind symbols with --sym)\n",
                   R.Error.c_str());
      return 1;
    }
    std::printf("executed %zu accesses%s\n", R.Trace.size(),
                R.Truncated ? " (truncated)" : "");
    for (const ir::TraceEntry &T : R.Trace) {
      std::printf("  %u: %-6s %s(", T.StmtLabel,
                  T.IsWrite ? "write" : "read", T.Array.c_str());
      for (unsigned I = 0; I != T.Location.size(); ++I)
        std::printf("%s%lld", I ? "," : "",
                    static_cast<long long>(T.Location[I]));
      std::printf(")\n");
    }
    return 0;
  }

  std::printf("%s", AP.Source.toString().c_str());
  analysis::AnalysisResult R = analysis::analyzeProgram(AP, Opts.Driver);

  printDeps(R.Flow, "live flow dependences", /*Dead=*/false, Opts.Compress);
  printDeps(R.Flow, "dead flow dependences", /*Dead=*/true, Opts.Compress);
  if (Opts.All) {
    printDeps(R.Anti, "anti dependences", false, Opts.Compress);
    printDeps(R.Output, "output dependences", false, Opts.Compress);
  }

  if (Opts.Transforms)
    std::printf("\ntransformation opportunities:\n%s",
                analysis::transformReport(AP, R).c_str());

  if (Opts.Schedule)
    std::printf("\nparallel schedule:\n%s",
                transform::renderParallelSchedule(AP, R).c_str());

  if (Opts.Restraints) {
    std::printf("\nrestraint vectors (Section 2.1.2):\n");
    for (const deps::Dependence &D : R.Flow) {
      deps::DepSpace Space(AP, {D.Src, D.Dst});
      Problem Pair = deps::buildPairProblem(Space);
      std::string Vectors;
      for (const deps::DepSpace::RestraintVector &V :
           Space.computeRestraintVectors(Pair, 0, 1)) {
        if (!Vectors.empty())
          Vectors += " ";
        Vectors += V.toString();
      }
      std::printf("  %s -> %s: %s\n", D.Src->Text.c_str(),
                  D.Dst->Text.c_str(),
                  Vectors.empty() ? "(none)" : Vectors.c_str());
    }
  }

  if (Opts.Stats) {
    std::printf("\nper-pair analysis costs:\n%-24s%-24s%12s%12s%10s\n",
                "write", "read", "std_usec", "ext_usec", "class");
    for (const analysis::PairRecord &P : R.Pairs) {
      const char *Class = !P.UsedGeneralTest ? "fast"
                          : P.SplitVectors    ? "split"
                                              : "general";
      std::printf("%-24s%-24s%12.1f%12.1f%10s\n", P.Write->Text.c_str(),
                  P.Read->Text.c_str(), P.StandardSecs * 1e6,
                  P.ExtendedSecs * 1e6, Class);
    }
  }
  return 0;
}
