//===- tools/omega_analyze.cpp - Command-line dependence analyzer ---------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
// A command-line front door to the analysis, in the spirit of the
// augmented `tiny` tool the paper describes:
//
//   omega-analyze [options] [file.tiny]     (stdin when no file)
//
// Options are the shared api::AnalysisOptions surface (see --help; the
// same table drives omega-calc and omega-serve), plus two tool-specific
// arguments: the input file positional and `--sym name=value` symbol
// bindings for --run. Machine-readable output (--json) is the schema-4
// response document of api/Response.h, byte-identical in its "result"
// section to an omega-serve response for the same program.
//
//===----------------------------------------------------------------------===//

#include "analysis/Transforms.h"
#include "api/Options.h"
#include "api/Response.h"
#include "deps/DepSpace.h"
#include "engine/DependenceEngine.h"
#include "engine/ResultStore.h"
#include "ir/Interp.h"
#include "obs/Trace.h"
#include "transform/Apply.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <iterator>
#include <map>
#include <memory>
#include <sstream>
#include <string>

using namespace omega;

namespace {

int usage(FILE *To) {
  std::fprintf(To, "usage: omega-analyze [options] [file.tiny]\n"
                   "\nShared analysis options:\n%s"
                   "\nTool arguments:\n"
                   "  --sym NAME=VALUE          bind a symbolic constant "
                   "(repeatable; with --run)\n"
                   "  file.tiny                 input program (stdin when "
                   "omitted or \"-\")\n",
               api::optionsHelp(api::ToolAnalyze).c_str());
  return To == stderr ? 2 : 0;
}

void printDeps(const std::vector<deps::Dependence> &Deps, const char *Title,
               bool Dead, bool Compress) {
  std::printf("\n%s:\n%-24s%-24s%-14s%s\n", Title, "FROM", "TO", "dir/dist",
              "status");
  for (const deps::Dependence &D : Deps) {
    std::vector<deps::DepSplit> Rows =
        Compress ? deps::compressSplits(D.Splits) : D.Splits;
    for (const deps::DepSplit &S : Rows) {
      if (S.Dead != Dead)
        continue;
      std::string From =
          std::to_string(D.Src->StmtLabel) + ": " + D.Src->Text;
      std::string To = std::to_string(D.Dst->StmtLabel) + ": " + D.Dst->Text;
      std::string Status;
      if (D.Covers)
        Status += 'C';
      if (S.DeadReason)
        Status += S.DeadReason;
      if (S.Refined)
        Status += 'r';
      std::printf("%-24s%-24s%-14s%s\n", From.c_str(), To.c_str(),
                  S.dirToString().c_str(),
                  Status.empty() ? "" : ("[" + Status + "]").c_str());
    }
  }
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> Args(Argv + 1, Argv + Argc);
  api::ParsedArgs Parsed;
  std::string Err;
  if (!api::parseArgs(Args, api::ToolAnalyze, Parsed, Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return usage(stderr);
  }
  if (Parsed.Help)
    return usage(stdout);
  api::AnalysisOptions &Opts = Parsed.Options;

  // Tool-specific leftovers: --sym bindings and the input file.
  std::map<std::string, int64_t> Symbols;
  std::string File;
  for (std::size_t I = 0; I != Parsed.Rest.size(); ++I) {
    const std::string &Arg = Parsed.Rest[I];
    if (Arg == "--sym") {
      if (I + 1 == Parsed.Rest.size())
        return usage(stderr);
      std::string Binding = Parsed.Rest[++I];
      std::size_t Eq = Binding.find('=');
      if (Eq == std::string::npos)
        return usage(stderr);
      try {
        Symbols[Binding.substr(0, Eq)] = std::stoll(Binding.substr(Eq + 1));
      } catch (...) {
        return usage(stderr);
      }
    } else if (Arg != "-" && !Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "error: unknown option %s\n", Arg.c_str());
      return usage(stderr);
    } else if (File.empty()) {
      File = Arg;
    } else {
      return usage(stderr);
    }
  }

  std::string Source;
  if (File.empty() || File == "-") {
    std::ostringstream SS;
    SS << std::cin.rdbuf();
    Source = SS.str();
  } else {
    std::ifstream In(File);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", File.c_str());
      return 1;
    }
    Source.assign(std::istreambuf_iterator<char>(In),
                  std::istreambuf_iterator<char>());
  }

  ir::AnalyzedProgram AP = ir::analyzeSource(Source);
  if (!AP.ok()) {
    for (const ir::Diagnostic &D : AP.Diags)
      std::fprintf(stderr, "error: %s\n", D.toString().c_str());
    return 1;
  }

  if (Opts.Run) {
    ir::ExecConfig Config;
    Config.Symbols = Symbols;
    ir::ExecResult R = ir::interpret(AP.Source, Config);
    if (R.Failed) {
      std::fprintf(stderr, "run error: %s (bind symbols with --sym)\n",
                   R.Error.c_str());
      return 1;
    }
    std::printf("executed %zu accesses%s\n", R.Trace.size(),
                R.Truncated ? " (truncated)" : "");
    for (const ir::TraceEntry &T : R.Trace) {
      std::printf("  %u: %-6s %s(", T.StmtLabel,
                  T.IsWrite ? "write" : "read", T.Array.c_str());
      for (unsigned I = 0; I != T.Location.size(); ++I)
        std::printf("%s%lld", I ? "," : "",
                    static_cast<long long>(T.Location[I]));
      std::printf(")\n");
    }
    return 0;
  }

  std::unique_ptr<obs::Tracer> Tracer;
  engine::AnalysisRequest Req = Opts.toEngineRequest();
  if (!Opts.TraceFile.empty() ||
      Opts.Profile != api::AnalysisOptions::ProfileOff || Opts.Explain) {
    Tracer = std::make_unique<obs::Tracer>();
    Req.Trace = Tracer.get();
  }

  // --baseline replays the recorded pair outcomes of a previous run over
  // this (possibly edited) program; --save-baseline records this run's.
  // A missing or invalid baseline file degrades to a from-scratch run --
  // the result is byte-identical either way, only the work differs.
  engine::BaselineResult Baseline;
  if (!Opts.BaselineFile.empty()) {
    std::string LoadErr;
    if (engine::BaselineResult::loadFile(Opts.BaselineFile, &Baseline,
                                         &LoadErr)) {
      Req.Baseline = &Baseline;
    } else {
      std::fprintf(stderr, "warning: ignoring baseline: %s\n",
                   LoadErr.c_str());
    }
  }
  if (!Opts.BaselineFile.empty() || !Opts.SaveBaselineFile.empty())
    Req.BuildBaseline = true;

  // --result-cache-file attaches the cross-request result store the way
  // omega-serve does: load (missing or corrupt files cold-start with a
  // warning), consult and feed during the run, save back after. Reuse is
  // result-invisible; only "stats" reports the store traffic.
  engine::ResultStore Store(
      static_cast<std::size_t>(Opts.ResultStoreCap));
  if (!Opts.ResultCacheFile.empty()) {
    std::ifstream Probe(Opts.ResultCacheFile, std::ios::binary);
    if (Probe.is_open()) {
      Probe.close();
      std::string LoadErr;
      if (!Store.loadFile(Opts.ResultCacheFile, &LoadErr))
        std::fprintf(stderr, "warning: result store cold start: %s\n",
                     LoadErr.c_str());
    }
    Req.Store = &Store;
  }

  engine::DependenceEngine Engine(Req);
  if (Engine.cache())
    Engine.cache()->setSnapshotCapacity(Opts.SnapshotCacheCap);
  // --cache-file warm-starts the engine's cache the way omega-serve does;
  // a missing or invalid file is simply a cold start.
  if (!Opts.CacheFile.empty() && Engine.cache()) {
    std::ifstream CacheIn(Opts.CacheFile, std::ios::binary);
    std::string LoadErr;
    if (CacheIn.is_open() && !Engine.cache()->load(CacheIn, LoadErr))
      std::fprintf(stderr, "warning: %s\n", LoadErr.c_str());
  }

  auto WallStart = std::chrono::steady_clock::now();
  engine::AnalysisResult R = Engine.analyze(AP);
  double WallMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - WallStart)
                      .count();

  if (!Opts.CacheFile.empty() && Engine.cache()) {
    std::ofstream CacheOut(Opts.CacheFile,
                           std::ios::binary | std::ios::trunc);
    if (!CacheOut.is_open() || !Engine.cache()->save(CacheOut))
      std::fprintf(stderr, "warning: cannot write %s\n",
                   Opts.CacheFile.c_str());
  }

  if (!Opts.ResultCacheFile.empty()) {
    std::string Tmp = Opts.ResultCacheFile + ".tmp";
    std::string SaveErr;
    if (Store.saveFile(Tmp, &SaveErr)) {
      std::rename(Tmp.c_str(), Opts.ResultCacheFile.c_str());
    } else {
      std::remove(Tmp.c_str());
      std::fprintf(stderr, "warning: cannot write %s: %s\n",
                   Opts.ResultCacheFile.c_str(), SaveErr.c_str());
    }
  }

  if (!Opts.SaveBaselineFile.empty()) {
    std::string SaveErr;
    if (!R.Baseline || !R.Baseline->saveFile(Opts.SaveBaselineFile, &SaveErr))
      std::fprintf(stderr, "warning: cannot write %s: %s\n",
                   Opts.SaveBaselineFile.c_str(),
                   SaveErr.empty() ? "no baseline recorded" : SaveErr.c_str());
  }

  if (!Opts.TraceFile.empty()) {
    std::ofstream TraceOut(Opts.TraceFile);
    if (!TraceOut) {
      std::fprintf(stderr, "error: cannot write %s\n", Opts.TraceFile.c_str());
      return 1;
    }
    TraceOut << Tracer->chromeTraceJson();
  }

  if (Opts.Json) {
    std::string ProfileJson;
    if (Opts.Profile != api::AnalysisOptions::ProfileOff)
      ProfileJson = Tracer->profileReport(/*Json=*/true, WallMs, Engine.jobs());
    std::string Explain;
    if (Opts.Explain)
      Explain = Tracer->explainLog();
    std::fputs(api::renderDocument(api::renderResult(
                                       R, Opts.Pipeline ? &AP : nullptr),
                                   api::renderMetrics(R, Engine.jobs(), WallMs,
                                                      ProfileJson, Explain))
                   .c_str(),
               stdout);
    return 0;
  }

  std::printf("%s", AP.Source.toString().c_str());

  printDeps(R.Flow, "live flow dependences", /*Dead=*/false, Opts.Compress);
  printDeps(R.Flow, "dead flow dependences", /*Dead=*/true, Opts.Compress);
  if (Opts.All) {
    printDeps(R.Anti, "anti dependences", false, Opts.Compress);
    printDeps(R.Output, "output dependences", false, Opts.Compress);
  }

  if (Opts.Transforms)
    std::printf("\ntransformation opportunities:\n%s",
                analysis::transformReport(AP, R).c_str());

  if (Opts.Schedule)
    std::printf("\nparallel schedule:\n%s",
                transform::renderParallelSchedule(AP, R).c_str());

  if (Opts.Pipeline)
    std::printf("\npipeline partition:\n%s",
                transform::renderPipelineSchedule(AP, R).c_str());

  if (Opts.Restraints) {
    std::printf("\nrestraint vectors (Section 2.1.2):\n");
    for (const deps::Dependence &D : R.Flow) {
      deps::DepSpace Space(AP, {D.Src, D.Dst});
      Problem Pair = deps::buildPairProblem(Space);
      std::string Vectors;
      for (const deps::DepSpace::RestraintVector &V :
           Space.computeRestraintVectors(Pair, 0, 1)) {
        if (!Vectors.empty())
          Vectors += " ";
        Vectors += V.toString();
      }
      std::printf("  %s -> %s: %s\n", D.Src->Text.c_str(),
                  D.Dst->Text.c_str(),
                  Vectors.empty() ? "(none)" : Vectors.c_str());
    }
  }

  if (Opts.Stats) {
    std::printf("\nper-pair analysis costs:\n%-24s%-24s%12s%12s%10s\n",
                "write", "read", "std_usec", "ext_usec", "class");
    for (const analysis::PairRecord &P : R.Pairs) {
      const char *Class = !P.UsedGeneralTest ? "fast"
                          : P.SplitVectors    ? "split"
                                              : "general";
      std::printf("%-24s%-24s%12.1f%12.1f%10s\n", P.Write->Text.c_str(),
                  P.Read->Text.c_str(), P.StandardSecs * 1e6,
                  P.ExtendedSecs * 1e6, Class);
    }
    std::printf("\nomega test work: %llu sat calls, %llu exact / %llu "
                "inexact eliminations, %llu splinters\n",
                static_cast<unsigned long long>(R.Stats.SatisfiabilityCalls),
                static_cast<unsigned long long>(R.Stats.ExactEliminations),
                static_cast<unsigned long long>(R.Stats.InexactEliminations),
                static_cast<unsigned long long>(R.Stats.SplintersExplored));
    std::printf("pair tiers: %llu decided by quick tests (%llu ziv, %llu "
                "gcd, %llu bounds, %llu trivial), %llu snapshot reuses / "
                "%llu builds (%llu fallbacks)\n",
                static_cast<unsigned long long>(R.Stats.QuickTestDecided),
                static_cast<unsigned long long>(R.Stats.QuickTestZIV),
                static_cast<unsigned long long>(R.Stats.QuickTestGCD),
                static_cast<unsigned long long>(R.Stats.QuickTestBounds),
                static_cast<unsigned long long>(R.Stats.QuickTestTrivialDep),
                static_cast<unsigned long long>(R.Stats.SnapshotReuses),
                static_cast<unsigned long long>(R.Stats.SnapshotBuilds),
                static_cast<unsigned long long>(R.Stats.SnapshotFallbacks));
    std::printf("query cache: %llu/%llu sat hits, %llu/%llu gist hits, "
                "%llu entries\n",
                static_cast<unsigned long long>(R.Cache.SatHits),
                static_cast<unsigned long long>(R.Cache.SatHits +
                                                R.Cache.SatMisses),
                static_cast<unsigned long long>(R.Cache.GistHits),
                static_cast<unsigned long long>(R.Cache.GistHits +
                                                R.Cache.GistMisses),
                static_cast<unsigned long long>(R.CacheEntries));
    if (R.Delta.Active)
      std::printf("incremental: %llu pairs reused, %llu re-solved, %llu "
                  "new, %llu removed; %llu/%llu kill groups reused\n",
                  static_cast<unsigned long long>(R.Delta.PairsReused),
                  static_cast<unsigned long long>(R.Delta.PairsResolved),
                  static_cast<unsigned long long>(R.Delta.PairsNew),
                  static_cast<unsigned long long>(R.Delta.PairsRemoved),
                  static_cast<unsigned long long>(R.Delta.KillGroupsReused),
                  static_cast<unsigned long long>(R.Delta.KillGroupsTotal));
  }

  if (Opts.Profile != api::AnalysisOptions::ProfileOff) {
    std::printf("\n");
    std::fputs(
        Tracer
            ->profileReport(Opts.Profile == api::AnalysisOptions::ProfileJson,
                            WallMs, Engine.jobs())
            .c_str(),
        stdout);
  }
  if (Opts.Explain) {
    std::printf("\ndecision explain log:\n");
    std::fputs(Tracer->explainLog().c_str(), stdout);
  }
  return 0;
}
