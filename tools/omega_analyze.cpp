//===- tools/omega_analyze.cpp - Command-line dependence analyzer ---------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
// A command-line front door to the analysis, in the spirit of the
// augmented `tiny` tool the paper describes:
//
//   omega-analyze [options] [file.tiny]     (stdin when no file)
//
//   --all          also print anti and output dependences
//   --compress     compress split rows into the paper's display vectors
//   --no-refine / --no-cover / --no-kill / --no-quick
//                  disable parts of the Section 4 pipeline
//   --terminate    enable the terminating-write extension
//   --jobs N       shard the analysis over N worker threads (0 = auto);
//                  results are identical for every N
//   --json         machine-readable output (dependences, pair/kill
//                  records, stats, cache counters) instead of tables
//   --stats        per-pair cost classes and timings (Figure 6 style)
//   --trace=FILE   record a Chrome trace_event JSON of the run (one track
//                  per worker; load in chrome://tracing or Perfetto)
//   --profile[=json]
//                  aggregated profile: per-phase wall time, call counts,
//                  cache hit rates, Figure-6-style query classes (embedded
//                  under "profile" with --json)
//   --explain      per array pair, which mechanism decided the outcome
//   --run          interpret the program (needs every symbol bound)
//   --sym name=v   bind a symbolic constant (repeatable; with --run)
//
//===----------------------------------------------------------------------===//

#include "analysis/Transforms.h"
#include "deps/DepSpace.h"
#include "engine/DependenceEngine.h"
#include "ir/Interp.h"
#include "obs/Trace.h"
#include "transform/Apply.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <iterator>
#include <memory>
#include <sstream>
#include <string>

using namespace omega;

namespace {

struct Options {
  bool All = false;
  bool Compress = false;
  bool Stats = false;
  bool Json = false;
  bool Run = false;
  bool Transforms = false;
  bool Restraints = false;
  bool Schedule = false;
  std::string TraceFile;
  enum { ProfileOff, ProfileText, ProfileJson } Profile = ProfileOff;
  bool Explain = false;
  engine::AnalysisRequest Req;
  std::map<std::string, int64_t> Symbols;
  std::string File;
};

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [--all] [--compress] [--stats] [--json] "
               "[--transforms] [--schedule] [--restraints]\n"
               "          [--no-refine] [--no-cover] [--no-kill] "
               "[--no-quick] [--terminate] [--jobs N]\n"
               "          [--no-quicktests] [--no-incremental]\n"
               "          [--trace=FILE] [--profile[=json]] [--explain]\n"
               "          [--run] [--sym name=value]... [file]\n",
               Argv0);
  return 2;
}

bool parseArgs(int Argc, char **Argv, Options &Opts) {
  for (int I = 1; I != Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--all")
      Opts.All = true;
    else if (Arg == "--compress")
      Opts.Compress = true;
    else if (Arg == "--stats")
      Opts.Stats = true;
    else if (Arg == "--json")
      Opts.Json = true;
    else if (Arg == "--run")
      Opts.Run = true;
    else if (Arg == "--transforms")
      Opts.Transforms = true;
    else if (Arg == "--restraints")
      Opts.Restraints = true;
    else if (Arg == "--schedule")
      Opts.Schedule = true;
    else if (Arg == "--no-refine")
      Opts.Req.Refine = false;
    else if (Arg == "--no-cover")
      Opts.Req.Cover = false;
    else if (Arg == "--no-kill")
      Opts.Req.Kill = false;
    else if (Arg == "--no-quick")
      Opts.Req.QuickTests = false;
    else if (Arg == "--no-quicktests")
      Opts.Req.PairQuickTests = false; // ZIV/GCD/bounds pre-filter ablation
    else if (Arg == "--no-incremental")
      Opts.Req.Incremental = false; // per-pair snapshot ablation
    else if (Arg == "--terminate")
      Opts.Req.Terminate = true;
    else if (Arg.rfind("--trace=", 0) == 0)
      Opts.TraceFile = Arg.substr(8);
    else if (Arg == "--profile")
      Opts.Profile = Options::ProfileText;
    else if (Arg == "--profile=json")
      Opts.Profile = Options::ProfileJson;
    else if (Arg == "--explain")
      Opts.Explain = true;
    else if (Arg == "--jobs") {
      if (I + 1 == Argc)
        return false;
      try {
        Opts.Req.Jobs = static_cast<unsigned>(std::stoul(Argv[++I]));
      } catch (...) {
        return false;
      }
    } else if (Arg == "--sym") {
      if (I + 1 == Argc)
        return false;
      std::string Binding = Argv[++I];
      size_t Eq = Binding.find('=');
      if (Eq == std::string::npos)
        return false;
      Opts.Symbols[Binding.substr(0, Eq)] =
          std::stoll(Binding.substr(Eq + 1));
    } else if (Arg != "-" && !Arg.empty() && Arg[0] == '-') {
      return false;
    } else if (Opts.File.empty()) {
      Opts.File = Arg;
    } else {
      return false;
    }
  }
  return true;
}

void printDeps(const std::vector<deps::Dependence> &Deps, const char *Title,
               bool Dead, bool Compress) {
  std::printf("\n%s:\n%-24s%-24s%-14s%s\n", Title, "FROM", "TO", "dir/dist",
              "status");
  for (const deps::Dependence &D : Deps) {
    std::vector<deps::DepSplit> Rows =
        Compress ? deps::compressSplits(D.Splits) : D.Splits;
    for (const deps::DepSplit &S : Rows) {
      if (S.Dead != Dead)
        continue;
      std::string From =
          std::to_string(D.Src->StmtLabel) + ": " + D.Src->Text;
      std::string To = std::to_string(D.Dst->StmtLabel) + ": " + D.Dst->Text;
      std::string Status;
      if (D.Covers)
        Status += 'C';
      if (S.DeadReason)
        Status += S.DeadReason;
      if (S.Refined)
        Status += 'r';
      std::printf("%-24s%-24s%-14s%s\n", From.c_str(), To.c_str(),
                  S.dirToString().c_str(),
                  Status.empty() ? "" : ("[" + Status + "]").c_str());
    }
  }
}

//===--------------------------------------------------------------------===//
// --json rendering
//===--------------------------------------------------------------------===//

std::string jsonEscape(const std::string &S) {
  std::string Out;
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string jsonAccess(const ir::Access &A) {
  return "{\"stmt\": " + std::to_string(A.StmtLabel) + ", \"text\": \"" +
         jsonEscape(A.Text) + "\"}";
}

void jsonDeps(std::string &Out, const std::vector<deps::Dependence> &Deps) {
  Out += "[";
  bool FirstDep = true;
  for (const deps::Dependence &D : Deps) {
    if (!FirstDep)
      Out += ", ";
    FirstDep = false;
    Out += "{\"from\": " + jsonAccess(*D.Src) +
           ", \"to\": " + jsonAccess(*D.Dst) +
           ", \"covers\": " + (D.Covers ? "true" : "false") +
           ", \"splits\": [";
    bool FirstSplit = true;
    for (const deps::DepSplit &S : D.Splits) {
      if (!FirstSplit)
        Out += ", ";
      FirstSplit = false;
      Out += "{\"level\": " + std::to_string(S.Level) + ", \"dir\": \"" +
             jsonEscape(S.dirToString()) + "\", \"dead\": " +
             (S.Dead ? "true" : "false");
      if (S.DeadReason)
        Out += std::string(", \"reason\": \"") + S.DeadReason + "\"";
      if (S.Refined)
        Out += ", \"refined\": true";
      Out += "}";
    }
    Out += "]}";
  }
  Out += "]";
}

std::string jsonResult(const engine::AnalysisResult &R, unsigned Jobs,
                       const std::string &ProfileJson,
                       const std::string &Explain) {
  std::string Out = "{\n  \"jobs\": " + std::to_string(Jobs) + ",\n";

  Out += "  \"flow\": ";
  jsonDeps(Out, R.Flow);
  Out += ",\n  \"anti\": ";
  jsonDeps(Out, R.Anti);
  Out += ",\n  \"output\": ";
  jsonDeps(Out, R.Output);

  Out += ",\n  \"pairs\": [";
  bool First = true;
  for (const analysis::PairRecord &P : R.Pairs) {
    if (!First)
      Out += ", ";
    First = false;
    char Buf[64];
    Out += "{\"write\": " + jsonAccess(*P.Write) +
           ", \"read\": " + jsonAccess(*P.Read) +
           ", \"hasFlow\": " + (P.HasFlow ? "true" : "false") +
           ", \"usedGeneralTest\": " + (P.UsedGeneralTest ? "true" : "false") +
           ", \"splitVectors\": " + (P.SplitVectors ? "true" : "false");
    std::snprintf(Buf, sizeof(Buf), ", \"stdSecs\": %.9f, \"extSecs\": %.9f}",
                  P.StandardSecs, P.ExtendedSecs);
    Out += Buf;
  }
  Out += "],\n  \"kills\": [";
  First = true;
  for (const analysis::KillRecord &K : R.Kills) {
    if (!First)
      Out += ", ";
    First = false;
    char Buf[32];
    Out += "{\"from\": " + jsonAccess(*K.From) +
           ", \"killer\": " + jsonAccess(*K.Killer) +
           ", \"to\": " + jsonAccess(*K.To) +
           ", \"usedOmega\": " + (K.UsedOmega ? "true" : "false") +
           ", \"killed\": " + (K.Killed ? "true" : "false");
    std::snprintf(Buf, sizeof(Buf), ", \"secs\": %.9f}", K.Secs);
    Out += Buf;
  }
  Out += "],\n";

  // The complete merged per-worker OmegaStats: every counter, including
  // the per-context cache traffic.
  const OmegaStats &S = R.Stats;
  Out += "  \"stats\": {\"satisfiabilityCalls\": " +
         std::to_string(S.SatisfiabilityCalls) +
         ", \"projectionCalls\": " + std::to_string(S.ProjectionCalls) +
         ", \"gistCalls\": " + std::to_string(S.GistCalls) +
         ", \"exactEliminations\": " + std::to_string(S.ExactEliminations) +
         ", \"inexactEliminations\": " +
         std::to_string(S.InexactEliminations) +
         ", \"splintersExplored\": " + std::to_string(S.SplintersExplored) +
         ", \"darkShadowDecided\": " + std::to_string(S.DarkShadowDecided) +
         ", \"realShadowDecided\": " + std::to_string(S.RealShadowDecided) +
         ", \"modHatSubstitutions\": " +
         std::to_string(S.ModHatSubstitutions) +
         ", \"gistFastDrops\": " + std::to_string(S.GistFastDrops) +
         ", \"gistFastKeeps\": " + std::to_string(S.GistFastKeeps) +
         ", \"gistSatTests\": " + std::to_string(S.GistSatTests) +
         ", \"satCacheHits\": " + std::to_string(S.SatCacheHits) +
         ", \"satCacheMisses\": " + std::to_string(S.SatCacheMisses) +
         ", \"gistCacheHits\": " + std::to_string(S.GistCacheHits) +
         ", \"gistCacheMisses\": " + std::to_string(S.GistCacheMisses) +
         ", \"snapshotBuilds\": " + std::to_string(S.SnapshotBuilds) +
         ", \"snapshotReuses\": " + std::to_string(S.SnapshotReuses) +
         ", \"snapshotFallbacks\": " + std::to_string(S.SnapshotFallbacks) +
         ", \"quicktestZiv\": " + std::to_string(S.QuickTestZIV) +
         ", \"quicktestGcd\": " + std::to_string(S.QuickTestGCD) +
         ", \"quicktestBounds\": " + std::to_string(S.QuickTestBounds) +
         ", \"quicktestTrivialDep\": " + std::to_string(S.QuickTestTrivialDep) +
         ", \"quicktestDecided\": " + std::to_string(S.QuickTestDecided) +
         "},\n";

  Out += "  \"cache\": {\"satHits\": " + std::to_string(R.Cache.SatHits) +
         ", \"satMisses\": " + std::to_string(R.Cache.SatMisses) +
         ", \"gistHits\": " + std::to_string(R.Cache.GistHits) +
         ", \"gistMisses\": " + std::to_string(R.Cache.GistMisses) +
         ", \"entries\": " + std::to_string(R.CacheEntries) + "}";
  if (!ProfileJson.empty()) {
    Out += ",\n  \"profile\": ";
    Out += ProfileJson;
    while (!Out.empty() && Out.back() == '\n')
      Out.pop_back();
  }
  if (!Explain.empty())
    Out += ",\n  \"explain\": \"" + jsonEscape(Explain) + "\"";
  Out += "\n}\n";
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  if (!parseArgs(Argc, Argv, Opts))
    return usage(Argv[0]);

  std::string Source;
  if (Opts.File.empty() || Opts.File == "-") {
    std::ostringstream SS;
    SS << std::cin.rdbuf();
    Source = SS.str();
  } else {
    std::ifstream In(Opts.File);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", Opts.File.c_str());
      return 1;
    }
    Source.assign(std::istreambuf_iterator<char>(In),
                  std::istreambuf_iterator<char>());
  }

  ir::AnalyzedProgram AP = ir::analyzeSource(Source);
  if (!AP.ok()) {
    for (const ir::Diagnostic &D : AP.Diags)
      std::fprintf(stderr, "error: %s\n", D.toString().c_str());
    return 1;
  }

  if (Opts.Run) {
    ir::ExecConfig Config;
    Config.Symbols = Opts.Symbols;
    ir::ExecResult R = ir::interpret(AP.Source, Config);
    if (R.Failed) {
      std::fprintf(stderr, "run error: %s (bind symbols with --sym)\n",
                   R.Error.c_str());
      return 1;
    }
    std::printf("executed %zu accesses%s\n", R.Trace.size(),
                R.Truncated ? " (truncated)" : "");
    for (const ir::TraceEntry &T : R.Trace) {
      std::printf("  %u: %-6s %s(", T.StmtLabel,
                  T.IsWrite ? "write" : "read", T.Array.c_str());
      for (unsigned I = 0; I != T.Location.size(); ++I)
        std::printf("%s%lld", I ? "," : "",
                    static_cast<long long>(T.Location[I]));
      std::printf(")\n");
    }
    return 0;
  }

  std::unique_ptr<obs::Tracer> Tracer;
  if (!Opts.TraceFile.empty() || Opts.Profile != Options::ProfileOff ||
      Opts.Explain) {
    Tracer = std::make_unique<obs::Tracer>();
    Opts.Req.Trace = Tracer.get();
  }

  auto WallStart = std::chrono::steady_clock::now();
  engine::DependenceEngine Engine(Opts.Req);
  engine::AnalysisResult R = Engine.analyze(AP);
  double WallMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - WallStart)
                      .count();

  if (!Opts.TraceFile.empty()) {
    std::ofstream TraceOut(Opts.TraceFile);
    if (!TraceOut) {
      std::fprintf(stderr, "error: cannot write %s\n", Opts.TraceFile.c_str());
      return 1;
    }
    TraceOut << Tracer->chromeTraceJson();
  }

  if (Opts.Json) {
    std::string ProfileJson;
    if (Opts.Profile != Options::ProfileOff)
      ProfileJson = Tracer->profileReport(/*Json=*/true, WallMs, Engine.jobs());
    std::string Explain;
    if (Opts.Explain)
      Explain = Tracer->explainLog();
    std::fputs(jsonResult(R, Engine.jobs(), ProfileJson, Explain).c_str(),
               stdout);
    return 0;
  }

  std::printf("%s", AP.Source.toString().c_str());

  printDeps(R.Flow, "live flow dependences", /*Dead=*/false, Opts.Compress);
  printDeps(R.Flow, "dead flow dependences", /*Dead=*/true, Opts.Compress);
  if (Opts.All) {
    printDeps(R.Anti, "anti dependences", false, Opts.Compress);
    printDeps(R.Output, "output dependences", false, Opts.Compress);
  }

  if (Opts.Transforms)
    std::printf("\ntransformation opportunities:\n%s",
                analysis::transformReport(AP, R).c_str());

  if (Opts.Schedule)
    std::printf("\nparallel schedule:\n%s",
                transform::renderParallelSchedule(AP, R).c_str());

  if (Opts.Restraints) {
    std::printf("\nrestraint vectors (Section 2.1.2):\n");
    for (const deps::Dependence &D : R.Flow) {
      deps::DepSpace Space(AP, {D.Src, D.Dst});
      Problem Pair = deps::buildPairProblem(Space);
      std::string Vectors;
      for (const deps::DepSpace::RestraintVector &V :
           Space.computeRestraintVectors(Pair, 0, 1)) {
        if (!Vectors.empty())
          Vectors += " ";
        Vectors += V.toString();
      }
      std::printf("  %s -> %s: %s\n", D.Src->Text.c_str(),
                  D.Dst->Text.c_str(),
                  Vectors.empty() ? "(none)" : Vectors.c_str());
    }
  }

  if (Opts.Stats) {
    std::printf("\nper-pair analysis costs:\n%-24s%-24s%12s%12s%10s\n",
                "write", "read", "std_usec", "ext_usec", "class");
    for (const analysis::PairRecord &P : R.Pairs) {
      const char *Class = !P.UsedGeneralTest ? "fast"
                          : P.SplitVectors    ? "split"
                                              : "general";
      std::printf("%-24s%-24s%12.1f%12.1f%10s\n", P.Write->Text.c_str(),
                  P.Read->Text.c_str(), P.StandardSecs * 1e6,
                  P.ExtendedSecs * 1e6, Class);
    }
    std::printf("\nomega test work: %llu sat calls, %llu exact / %llu "
                "inexact eliminations, %llu splinters\n",
                static_cast<unsigned long long>(R.Stats.SatisfiabilityCalls),
                static_cast<unsigned long long>(R.Stats.ExactEliminations),
                static_cast<unsigned long long>(R.Stats.InexactEliminations),
                static_cast<unsigned long long>(R.Stats.SplintersExplored));
    std::printf("pair tiers: %llu decided by quick tests (%llu ziv, %llu "
                "gcd, %llu bounds, %llu trivial), %llu snapshot reuses / "
                "%llu builds (%llu fallbacks)\n",
                static_cast<unsigned long long>(R.Stats.QuickTestDecided),
                static_cast<unsigned long long>(R.Stats.QuickTestZIV),
                static_cast<unsigned long long>(R.Stats.QuickTestGCD),
                static_cast<unsigned long long>(R.Stats.QuickTestBounds),
                static_cast<unsigned long long>(R.Stats.QuickTestTrivialDep),
                static_cast<unsigned long long>(R.Stats.SnapshotReuses),
                static_cast<unsigned long long>(R.Stats.SnapshotBuilds),
                static_cast<unsigned long long>(R.Stats.SnapshotFallbacks));
    std::printf("query cache: %llu/%llu sat hits, %llu/%llu gist hits, "
                "%llu entries\n",
                static_cast<unsigned long long>(R.Cache.SatHits),
                static_cast<unsigned long long>(R.Cache.SatHits +
                                                R.Cache.SatMisses),
                static_cast<unsigned long long>(R.Cache.GistHits),
                static_cast<unsigned long long>(R.Cache.GistHits +
                                                R.Cache.GistMisses),
                static_cast<unsigned long long>(R.CacheEntries));
  }

  if (Opts.Profile != Options::ProfileOff) {
    std::printf("\n");
    std::fputs(Tracer
                   ->profileReport(Opts.Profile == Options::ProfileJson,
                                   WallMs, Engine.jobs())
                   .c_str(),
               stdout);
  }
  if (Opts.Explain) {
    std::printf("\ndecision explain log:\n");
    std::fputs(Tracer->explainLog().c_str(), stdout);
  }
  return 0;
}
