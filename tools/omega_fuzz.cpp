//===- tools/omega_fuzz.cpp - Oracle-backed fuzzer for the Omega stack ----===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
//
// Drives seeded random generation of constraint Problems, Presburger
// formulas, and tiny-language programs through the three ground-truth
// oracles in src/oracle/:
//
//  * Problems: bounded-model satisfiability / projection / gist /
//    implication cross-checks plus metamorphic invariance.
//  * Formulas: the Presburger decision procedure against brute-force
//    evaluation over the generated box guards.
//  * Programs: the trace oracle (memory- and value-based witnesses from
//    real execution) against the Section 4 engine, run under every
//    ablation combination (pair quick tests on/off, incremental snapshots
//    on/off, jobs 1 vs N) with structural results required identical;
//    plus loop-bound-widening monotonicity.
//
// Any mismatch is delta-debugged to a minimal reproducer (a calc script
// for Problems, tiny source for programs) written into --out, which the
// RegressionReplay ctest replays.
//
//===----------------------------------------------------------------------===//

#include "engine/DependenceEngine.h"
#include "ir/Sema.h"
#include "oracle/CrossCheck.h"
#include "oracle/Generate.h"
#include "oracle/Metamorphic.h"
#include "oracle/ModelOracle.h"
#include "oracle/ScheduleOracle.h"
#include "oracle/Shrink.h"
#include "oracle/TraceOracle.h"

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

using namespace omega;

namespace {

struct Options {
  unsigned Problems = 2000;
  unsigned Programs = 100;
  unsigned Formulas = 500;
  unsigned Pipelines = 0;
  unsigned Seed = 0;
  bool SeedSet = false;
  std::string OutDir = "tests/corpus/regressions";
  double MaxSeconds = 0; // 0 == unlimited
  bool InjectKillBug = false;
  bool InjectPipelineBug = false;
};

void usage() {
  std::fprintf(
      stderr,
      "usage: omega-fuzz [options]\n"
      "  --problems N     random constraint problems to check (default "
      "2000)\n"
      "  --programs N     random tiny programs to check (default 100)\n"
      "  --formulas N     random Presburger formulas to check (default "
      "500)\n"
      "  --seed S         base seed (default: OMEGA_FUZZ_SEED or 12345)\n"
      "  --out DIR        directory for shrunk reproducers\n"
      "                   (default tests/corpus/regressions)\n"
      "  --max-seconds S  stop generating new inputs after S seconds\n"
      "  --pipelines N    random tiny programs whose pipelined schedules to\n"
      "                   execute against the original (default 0)\n"
      "  --inject-kill-bug  demonstrate the oracle: simulate a kill-analysis\n"
      "                   bug, require the trace oracle to catch it and\n"
      "                   shrink it to a <=10-line reproducer\n"
      "  --inject-pipeline-bug  demonstrate the schedule oracle: drop one\n"
      "                   loop-carried dependence before pipeline planning,\n"
      "                   require the interpreter-backed oracle to catch the\n"
      "                   unsound schedule and shrink it to <=10 lines\n");
}

bool parseArgs(int Argc, char **Argv, Options &Opt) {
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Next = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (A == "--problems") {
      const char *V = Next();
      if (!V)
        return false;
      Opt.Problems = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (A == "--programs") {
      const char *V = Next();
      if (!V)
        return false;
      Opt.Programs = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (A == "--formulas") {
      const char *V = Next();
      if (!V)
        return false;
      Opt.Formulas = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (A == "--seed") {
      const char *V = Next();
      if (!V)
        return false;
      Opt.Seed = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
      Opt.SeedSet = true;
    } else if (A == "--out") {
      const char *V = Next();
      if (!V)
        return false;
      Opt.OutDir = V;
    } else if (A == "--max-seconds") {
      const char *V = Next();
      if (!V)
        return false;
      Opt.MaxSeconds = std::strtod(V, nullptr);
    } else if (A == "--pipelines") {
      const char *V = Next();
      if (!V)
        return false;
      Opt.Pipelines = static_cast<unsigned>(std::strtoul(V, nullptr, 10));
    } else if (A == "--inject-kill-bug") {
      Opt.InjectKillBug = true;
    } else if (A == "--inject-pipeline-bug") {
      Opt.InjectPipelineBug = true;
    } else if (A == "-h" || A == "--help") {
      usage();
      std::exit(0);
    } else {
      std::fprintf(stderr, "omega-fuzz: unknown option '%s'\n", A.c_str());
      return false;
    }
  }
  return true;
}

struct Clock {
  std::chrono::steady_clock::time_point Start =
      std::chrono::steady_clock::now();
  double MaxSeconds;

  explicit Clock(double MaxSeconds) : MaxSeconds(MaxSeconds) {}
  bool expired() const {
    if (MaxSeconds <= 0)
      return false;
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         Start)
               .count() >= MaxSeconds;
  }
};

void writeReproducer(const std::string &Dir, const std::string &Name,
                     const std::string &Contents) {
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  std::string Path = Dir + "/" + Name;
  std::ofstream OS(Path);
  OS << Contents;
  std::fprintf(stderr, "omega-fuzz: wrote reproducer %s\n", Path.c_str());
}

//===----------------------------------------------------------------------===//
// Problem + formula fuzzing
//===----------------------------------------------------------------------===//

/// Every model-oracle check on one problem (gist/implication get a second
/// problem generated over the same layout from the same stream).
oracle::ModelReport checkOneProblem(const Problem &P, const Problem &Given,
                                    int64_t Box, std::mt19937 &Rng) {
  oracle::ModelReport Report;
  OmegaContext Ctx; // fresh stats, no cache: each check independent
  OmegaContextScope Scope(Ctx);
  oracle::checkSatisfiability(P, Box, Report, Ctx);
  if (P.getNumVars() > 1)
    oracle::checkProjection(P, P.getNumVars() - 1, Box, Report, Ctx);
  oracle::checkGist(P, Given, Box, Report, Ctx);
  oracle::checkImplication(Given, P, Box, Report, Ctx);
  oracle::checkProblemMetamorphic(P, Rng, Report, Ctx);
  return Report;
}

unsigned fuzzProblems(const Options &Opt, const Clock &Clock,
                      unsigned &Checked) {
  oracle::RandomProblemConfig Cfg;
  unsigned Failures = 0;
  for (unsigned I = 0; I != Opt.Problems && !Clock.expired(); ++I) {
    std::mt19937 Rng(Opt.Seed + I);
    Problem P = oracle::randomProblem(Rng, Cfg);
    Problem Given = oracle::randomProblem(Rng, Cfg);
    oracle::ModelReport Report = checkOneProblem(P, Given, Cfg.Box, Rng);
    Checked += Report.Checked;
    if (Report.ok())
      continue;

    ++Failures;
    std::fprintf(stderr, "omega-fuzz: problem %u FAILED (%s):\n%s\n", I,
                 oracle::seedMessage(Opt.Seed).c_str(),
                 Report.summary().c_str());
    // Shrink against "this problem alone still fails some oracle check".
    Problem Small = oracle::shrinkProblem(P, [&](const Problem &Cand) {
      std::mt19937 R2(Opt.Seed + I);
      oracle::randomProblem(R2, Cfg); // advance the stream identically
      Problem G2 = oracle::randomProblem(R2, Cfg);
      return !checkOneProblem(Cand, G2, Cfg.Box, R2).ok();
    });
    writeReproducer(Opt.OutDir,
                    "problem_seed" + std::to_string(Opt.Seed) + "_" +
                        std::to_string(I) + ".calc",
                    oracle::problemToCalcScript(Small));
  }
  return Failures;
}

unsigned fuzzFormulas(const Options &Opt, const Clock &Clock,
                      unsigned &Checked) {
  oracle::RandomFormulaConfig Cfg;
  unsigned Failures = 0;
  for (unsigned I = 0; I != Opt.Formulas && !Clock.expired(); ++I) {
    std::mt19937 Rng(Opt.Seed + 1000000 + I);
    pres::FormulaContext Ctx;
    pres::Formula F = oracle::randomFormula(Rng, Ctx, Cfg);
    oracle::ModelReport Report;
    oracle::checkFormula(F, Ctx, Cfg.Box, Report);
    Checked += Report.Checked;
    if (Report.ok())
      continue;
    ++Failures;
    std::fprintf(stderr, "omega-fuzz: formula %u FAILED (%s):\n%s\n%s\n", I,
                 oracle::seedMessage(Opt.Seed).c_str(),
                 F.toString(Ctx).c_str(), Report.summary().c_str());
  }
  return Failures;
}

//===----------------------------------------------------------------------===//
// Program fuzzing
//===----------------------------------------------------------------------===//

/// All oracle checks for one program source. Returns mismatch strings.
std::vector<std::string> checkOneProgram(const std::string &Source) {
  return oracle::crossCheckProgram(Source);
}

unsigned fuzzPrograms(const Options &Opt, const Clock &Clock,
                      unsigned &Checked) {
  unsigned Failures = 0;
  for (unsigned I = 0; I != Opt.Programs && !Clock.expired(); ++I) {
    oracle::ProgramGenerator Gen(Opt.Seed + 2000000 + I);
    std::string Source = Gen.generate();
    std::vector<std::string> Mismatches = checkOneProgram(Source);
    ++Checked;
    if (Mismatches.empty())
      continue;

    ++Failures;
    std::fprintf(stderr, "omega-fuzz: program %u FAILED (%s):\n%s\n", I,
                 oracle::seedMessage(Opt.Seed).c_str(), Source.c_str());
    for (const std::string &M : Mismatches)
      std::fprintf(stderr, "  %s\n", M.c_str());
    std::string Small = oracle::shrinkProgramSource(
        Source,
        [](const std::string &Cand) { return !checkOneProgram(Cand).empty(); });
    writeReproducer(Opt.OutDir,
                    "program_seed" + std::to_string(Opt.Seed) + "_" +
                        std::to_string(I) + ".tiny",
                    Small);
  }
  return Failures;
}

//===----------------------------------------------------------------------===//
// Pipeline-schedule fuzzing
//===----------------------------------------------------------------------===//

unsigned fuzzPipelines(const Options &Opt, const Clock &Clock,
                       unsigned &Checked) {
  unsigned Failures = 0;
  for (unsigned I = 0; I != Opt.Pipelines && !Clock.expired(); ++I) {
    oracle::ProgramGenerator Gen(Opt.Seed + 4000000 + I);
    std::string Source = Gen.generate();
    oracle::ScheduleReport Report = oracle::checkPipelineSchedules(Source);
    Checked += Report.PlansChecked;
    if (Report.ok())
      continue;

    ++Failures;
    std::fprintf(stderr, "omega-fuzz: pipeline %u FAILED (%s):\n%s\n", I,
                 oracle::seedMessage(Opt.Seed).c_str(), Source.c_str());
    for (const std::string &M : Report.Mismatches)
      std::fprintf(stderr, "  %s\n", M.c_str());
    std::string Small =
        oracle::shrinkProgramSource(Source, [](const std::string &Cand) {
          return !oracle::checkPipelineSchedules(Cand).ok();
        });
    writeReproducer(Opt.OutDir,
                    "pipeline_seed" + std::to_string(Opt.Seed) + "_" +
                        std::to_string(I) + ".tiny",
                    Small);
  }
  return Failures;
}

//===----------------------------------------------------------------------===//
// Injected-bug demonstration
//===----------------------------------------------------------------------===//

/// Simulates the kill-analysis bug documented in TESTING.md: mark every
/// live flow split dead as "killed", exactly what an over-eager Section 4.1
/// kill pass would do. Returns true when the trace oracle flags a false
/// kill for \p Source.
bool buggyAnalysisCaught(const std::string &Source) {
  ir::AnalyzedProgram AP = ir::analyzeSource(Source);
  if (!AP.ok())
    return false;
  analysis::AnalysisResult R = analysis::analyzeProgram(AP);
  for (deps::Dependence &D : R.Flow)
    for (deps::DepSplit &S : D.Splits)
      if (!S.Dead) {
        S.Dead = true;
        S.DeadReason = 'k';
      }
  deps::DependenceAnalysis DA(AP);
  std::vector<deps::Dependence> UnrefinedFlow =
      DA.computeDependences(deps::DepKind::Flow);
  oracle::TraceReport Trace = oracle::checkTraceWitnesses(AP, R, UnrefinedFlow);
  // A genuine catch: the program executed and a value witness was refused.
  return !Trace.ExecFailed && !Trace.Truncated && !Trace.Mismatches.empty();
}

int demonstrateInjectedKillBug(const Options &Opt) {
  // Find a random program whose execution actually reuses a written value,
  // so the injected bug is observable.
  for (unsigned I = 0; I != 200; ++I) {
    oracle::ProgramGenerator Gen(Opt.Seed + 3000000 + I);
    std::string Source = Gen.generate();
    if (!buggyAnalysisCaught(Source))
      continue;

    std::fprintf(stderr,
                 "omega-fuzz: injected kill bug caught on program %u (%s)\n",
                 I, oracle::seedMessage(Opt.Seed).c_str());
    std::string Small =
        oracle::shrinkProgramSource(Source, buggyAnalysisCaught);
    unsigned Lines = oracle::lineCount(Small);
    std::fprintf(stderr,
                 "omega-fuzz: shrunk reproducer (%u lines):\n%s", Lines,
                 Small.c_str());
    if (Lines > 10) {
      std::fprintf(stderr,
                   "omega-fuzz: FAILED: reproducer larger than 10 lines\n");
      return 1;
    }
    std::printf("injected kill bug: caught and shrunk to %u lines\n", Lines);
    return 0;
  }
  std::fprintf(stderr,
               "omega-fuzz: FAILED: no program exposed the injected bug\n");
  return 1;
}

/// True when dropping some live loop-carried PDG edge of \p Source yields
/// a pipeline plan the interpreter refutes. The shrink predicate for the
/// pipeline canary.
bool injectedPipelineBugCaught(const std::string &Source) {
  std::vector<std::string> Mismatches;
  return oracle::injectPipelineBug(Source, oracle::TraceOracleOptions(),
                                   Mismatches);
}

int demonstrateInjectedPipelineBug(const Options &Opt) {
  // Find a random program where deleting one carried edge actually reorders
  // dependent statements (not every program pipelines, and dropping a
  // forward edge that fission preserves anyway is harmless).
  for (unsigned I = 0; I != 200; ++I) {
    oracle::ProgramGenerator Gen(Opt.Seed + 5000000 + I);
    std::string Source = Gen.generate();
    std::vector<std::string> Mismatches;
    if (!oracle::injectPipelineBug(Source, oracle::TraceOracleOptions(),
                                   Mismatches))
      continue;

    std::fprintf(
        stderr,
        "omega-fuzz: injected pipeline bug caught on program %u (%s)\n", I,
        oracle::seedMessage(Opt.Seed).c_str());
    for (const std::string &M : Mismatches)
      std::fprintf(stderr, "  %s\n", M.c_str());
    std::string Small =
        oracle::shrinkProgramSource(Source, injectedPipelineBugCaught);
    unsigned Lines = oracle::lineCount(Small);
    std::fprintf(stderr, "omega-fuzz: shrunk reproducer (%u lines):\n%s",
                 Lines, Small.c_str());
    if (Lines > 10) {
      std::fprintf(stderr,
                   "omega-fuzz: FAILED: reproducer larger than 10 lines\n");
      return 1;
    }
    std::printf("injected pipeline bug: caught and shrunk to %u lines\n",
                Lines);
    return 0;
  }
  std::fprintf(stderr,
               "omega-fuzz: FAILED: no program exposed the injected bug\n");
  return 1;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opt;
  if (!parseArgs(Argc, Argv, Opt)) {
    usage();
    return 2;
  }
  if (!Opt.SeedSet)
    Opt.Seed = oracle::fuzzSeed(12345);

  if (Opt.InjectKillBug)
    return demonstrateInjectedKillBug(Opt);
  if (Opt.InjectPipelineBug)
    return demonstrateInjectedPipelineBug(Opt);

  Clock Clock(Opt.MaxSeconds);
  unsigned Checked = 0;
  unsigned Failures = 0;
  Failures += fuzzProblems(Opt, Clock, Checked);
  Failures += fuzzFormulas(Opt, Clock, Checked);
  Failures += fuzzPrograms(Opt, Clock, Checked);
  Failures += fuzzPipelines(Opt, Clock, Checked);

  std::printf("omega-fuzz: %s: %u checks, %u failures%s\n",
              oracle::seedMessage(Opt.Seed).c_str(), Checked, Failures,
              Clock.expired() ? " (time box hit)" : "");
  return Failures == 0 ? 0 : 1;
}
