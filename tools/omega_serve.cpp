//===- tools/omega_serve.cpp - Warm-cache analysis daemon -----------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
// A long-running dependence-analysis service. Requests are JSONL -- one
// JSON object per line -- over stdin/stdout (the default) or a Unix
// domain socket (--socket PATH):
//
//   $ omega-serve --workers 4 --cache-file /tmp/omega.qc
//   {"id": 1, "source": "for i = 1 to n { a[i] = a[i-1]; }"}
//   {"schema": 4, "id": 1, "ok": true, "result": {...}, "metrics": {...}}
//
// Every response's "result" section is byte-identical to a one-shot
// `omega-analyze --json` run of the same program: the engine's structural
// output is deterministic for every jobs value and cache state, so only
// "metrics" (timings, cache traffic) varies between a cold and a warm
// serve. See api/Serve.h for the protocol and architecture.
//
//===----------------------------------------------------------------------===//

#include "api/Options.h"
#include "api/Serve.h"

#include <cstdio>
#include <iostream>

using namespace omega;

namespace {

int usage(FILE *To) {
  std::fprintf(To,
               "usage: omega-serve [options]\n"
               "\nJSONL protocol, one request per line:\n"
               "  {\"id\": N, \"source\": \"...\", \"options\": {...}, "
               "\"deadlineMs\": M}\n"
               "  {\"id\": N, \"op\": \"health\"}     liveness/readiness "
               "probe\n"
               "  {\"id\": N, \"op\": \"metrics\"}    telemetry snapshot "
               "(and exposition rewrite)\n"
               "  {\"id\": N, \"op\": \"metrics\", \"reset\": true}\n"
               "                               ...then zero counters/"
               "histograms (gauges stay)\n"
               "  {\"id\": N, \"op\": \"shutdown\"}   stop; the ack carries "
               "the final metrics\n"
               "\nShared analysis options (request \"options\" keys use the "
               "same table):\n%s",
               api::optionsHelp(api::ToolServe).c_str());
  return To == stderr ? 2 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  std::vector<std::string> Args(Argv + 1, Argv + Argc);
  api::ParsedArgs Parsed;
  std::string Err;
  if (!api::parseArgs(Args, api::ToolServe, Parsed, Err)) {
    std::fprintf(stderr, "error: %s\n", Err.c_str());
    return usage(stderr);
  }
  if (Parsed.Help)
    return usage(stdout);
  for (const std::string &Arg : Parsed.Rest) {
    std::fprintf(stderr, "error: unexpected argument %s\n", Arg.c_str());
    return usage(stderr);
  }

  api::Server::Config Cfg;
  Cfg.Defaults = Parsed.Options;
  Cfg.Workers = Parsed.Options.ServeWorkers;
  Cfg.MaxQueue = Parsed.Options.MaxQueue;
  Cfg.DeadlineMs = Parsed.Options.DeadlineMs;
  Cfg.CacheFile = Parsed.Options.CacheFile;
  Cfg.MaxSessions = Parsed.Options.MaxSessions;
  Cfg.ResultCacheFile = Parsed.Options.ResultCacheFile;
  Cfg.ResultStoreCap =
      static_cast<std::size_t>(Parsed.Options.ResultStoreCap);
  Cfg.Coalesce = Parsed.Options.Coalesce;
  Cfg.MetricsFile = Parsed.Options.MetricsFile;
  Cfg.AccessLog = Parsed.Options.AccessLogFile;
  Cfg.SlowMs = Parsed.Options.SlowMs;
  Cfg.SlowTraceDir = Parsed.Options.SlowTraceDir;
  Cfg.AccessLogMaxMB = Parsed.Options.AccessLogMaxMB;
  Cfg.LatencyBoundsUs = Parsed.Options.LatencyBucketsUs;

  api::Server Server(Cfg);
  if (!Server.startupNote().empty())
    std::fprintf(stderr, "omega-serve: %s\n", Server.startupNote().c_str());

  if (!Parsed.Options.SocketPath.empty())
    return Server.runSocket(Parsed.Options.SocketPath, std::cerr);
  return Server.runStdin(std::cin, std::cout);
}
