//===- examples/quickstart.cpp - Tour of the public API -------------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
// A guided tour: build constraint systems with the Omega test core, check
// satisfiability, project, compute gists; then parse a small loop nest and
// run the full dependence analysis on it.
//
//===----------------------------------------------------------------------===//

#include "analysis/Driver.h"
#include "omega/Gist.h"
#include "omega/Projection.h"
#include "omega/Satisfiability.h"

#include <cstdio>

using namespace omega;

static void banner(const char *Title) {
  std::printf("\n== %s ==\n", Title);
}

int main() {
  // ----------------------------------------------------------------- //
  banner("1. Integer satisfiability (the Omega test)");
  {
    // 27 <= 11x + 13y <= 45, -10 <= 7x - 9y <= 4: real solutions exist,
    // integer ones do not -- the classic dark-shadow example.
    Problem P;
    VarId X = P.addVar("x");
    VarId Y = P.addVar("y");
    P.addGEQ({{X, 11}, {Y, 13}}, -27);
    P.addGEQ({{X, -11}, {Y, -13}}, 45);
    P.addGEQ({{X, 7}, {Y, -9}}, 10);
    P.addGEQ({{X, -7}, {Y, 9}}, 4);
    std::printf("system: %s\n", P.toString().c_str());
    std::printf("integer satisfiable: %s\n",
                isSatisfiable(P) ? "yes" : "no");
    SatOptions Real;
    Real.Mode = SatMode::RealShadowOnly;
    std::printf("real relaxation says: %s\n",
                isSatisfiable(P, Real) ? "yes (too optimistic!)" : "no");
  }

  // ----------------------------------------------------------------- //
  banner("2. Projection (the paper's Section 3 example)");
  {
    // Projecting {0 <= a <= 5; b < a <= 5b} onto a gives {2 <= a <= 5}.
    Problem P;
    VarId A = P.addVar("a");
    VarId B = P.addVar("b");
    P.addGEQ({{A, 1}}, 0);
    P.addGEQ({{A, -1}}, 5);
    P.addGEQ({{A, 1}, {B, -1}}, -1);
    P.addGEQ({{A, -1}, {B, 5}}, 0);
    std::printf("system: %s\n", P.toString().c_str());
    ProjectionResult R = projectOnto(P, {A});
    std::printf("projected onto a: %s\n",
                R.Pieces.front().toString().c_str());
  }

  // ----------------------------------------------------------------- //
  banner("3. Gist: 'the new information in p, given q'");
  {
    Problem Layout;
    VarId X = Layout.addVar("x");
    Problem P = Layout.cloneLayout();
    P.addGEQ({{X, 1}}, 0);   // x >= 0
    P.addGEQ({{X, -1}}, 50); // x <= 50
    Problem Q = Layout.cloneLayout();
    Q.addGEQ({{X, 1}}, -10); // x >= 10 (already known)
    Problem G = gist(P, Q);
    std::printf("gist %s given %s  =  %s\n", P.toString().c_str(),
                Q.toString().c_str(), G.toString().c_str());
  }

  // ----------------------------------------------------------------- //
  banner("4. Dependence analysis on a loop nest");
  {
    const char *Source = "symbolic n, m;\n"
                         "for L1 := 1 to n do\n"
                         "  for L2 := 2 to m do\n"
                         "    a(L2) := a(L2-1);\n"
                         "  endfor\n"
                         "endfor\n";
    std::printf("%s", Source);
    ir::AnalyzedProgram AP = ir::analyzeSource(Source);
    if (!AP.ok()) {
      for (const ir::Diagnostic &D : AP.Diags)
        std::printf("error: %s\n", D.toString().c_str());
      return 1;
    }
    analysis::AnalysisResult R = analysis::analyzeProgram(AP);
    std::printf("\nLive flow dependences (note the refined (0,1) -- most "
                "tools report (0+,1)):\n%s",
                R.liveFlowTable().c_str());
  }
  return 0;
}
