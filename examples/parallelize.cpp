//===- examples/parallelize.cpp - Transformation legality demo ------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
// What the analysis buys a compiler: for several kernels, show which
// loops parallelize (and which only parallelize once false dependences
// are eliminated), which adjacent loops may be interchanged, and which
// arrays are privatizable.
//
//===----------------------------------------------------------------------===//

#include "analysis/Transforms.h"
#include "kernels/Kernels.h"

#include <cstdio>

using namespace omega;
using namespace omega::analysis;

namespace {

void demo(const char *Title, const char *Source,
          const std::vector<std::string> &PrivatizationCandidates = {}) {
  std::printf("==== %s ====\n%s\n", Title, Source);
  ir::AnalyzedProgram AP = ir::analyzeSource(Source);
  if (!AP.ok()) {
    for (const ir::Diagnostic &D : AP.Diags)
      std::printf("error: %s\n", D.toString().c_str());
    return;
  }
  AnalysisResult R = analyzeProgram(AP);
  std::printf("%s", transformReport(AP, R).c_str());
  for (const std::string &Array : PrivatizationCandidates)
    for (const auto &L : AP.Loops)
      std::printf("privatize %s over %s: %s\n", Array.c_str(),
                  L->SourceVar.c_str(),
                  isPrivatizable(AP, R, Array, L.get()) ? "yes" : "no");
  std::printf("\n");
}

} // namespace

int main() {
  demo("Example 3: refinement shows the outer loop carries no value flow",
       kernels::example3());

  demo("Wavefront: serial both ways, but interchange is legal",
       "symbolic n, m;\n"
       "for i := 2 to n do\n"
       "  for j := 2 to m do\n"
       "    a(i,j) := a(i-1,j) + a(i,j-1);\n"
       "  endfor\n"
       "endfor\n");

  demo("Privatizable temporary (the paper's motivating pattern)",
       "symbolic n;\n"
       "for i := 1 to n do\n"
       "  t(0) := a(i) + 1;\n"
       "  b(i) := t(0) + t(0);\n"
       "endfor\n",
       {"t"});

  demo("Anti-diagonal stencil: interchange would reverse a dependence",
       "symbolic n, m;\n"
       "for i := 2 to n do\n"
       "  for j := 2 to m do\n"
       "    a(i,j) := a(i-1,j+1);\n"
       "  endfor\n"
       "endfor\n");

  return 0;
}
