//===- examples/symbolic_dialog.cpp - The Section 5 dialog ----------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
// Demonstrates symbolic dependence analysis: conditions under which a
// dependence exists (Example 7), index arrays with generated user queries
// and property assertions (Example 8), and non-linear terms (Example 10).
//
//===----------------------------------------------------------------------===//

#include "kernels/Kernels.h"
#include "symbolic/SymbolicAnalysis.h"

#include <cstdio>

using namespace omega;
using namespace omega::symbolic;

namespace {

const ir::Access *find(const ir::AnalyzedProgram &AP, const char *Array,
                       bool IsWrite, const char *Text = nullptr) {
  for (const ir::Access &A : AP.Accesses)
    if (A.Array == Array && A.IsWrite == IsWrite &&
        (!Text || A.Text == Text))
      return &A;
  return nullptr;
}

} // namespace

int main() {
  // ----------------------------------------------------------------- //
  std::printf("==== Example 7: symbolic conditions ====\n%s\n",
              kernels::example7());
  {
    ir::AnalyzedProgram AP = ir::analyzeSource(kernels::example7());
    const ir::Access *W = find(AP, "A", true);
    const ir::Access *R = find(AP, "A", false);

    AssertionDB DB;
    DB.assumeInBounds();
    ArrayBounds AB;
    AB.Dims = {{SymExpr::constant(1), SymExpr::name("n")},
               {SymExpr::constant(1), SymExpr::name("m")}};
    DB.declareArrayBounds("A", AB);
    DB.declareArrayBounds("C", AB);
    DB.assertRelation(SymExpr::constant(50), SymRelation::Rel::LE,
                      SymExpr::name("n"));
    DB.assertRelation(SymExpr::name("n"), SymRelation::Rel::LE,
                      SymExpr::constant(100));
    std::printf("asserted: all references in bounds, 50 <= n <= 100\n\n");

    SymbolicCondition C1 =
        dependenceCondition(AP, *W, *R, 1, DB, {"x", "y", "m"});
    std::printf("outer-carried dependence (+,*) exists iff:  %s\n",
                C1.Text.c_str());
    SymbolicCondition C2 =
        dependenceCondition(AP, *W, *R, 2, DB, {"x", "y", "m"});
    std::printf("inner-carried dependence (0,+) exists iff:  %s\n",
                C2.Text.c_str());
    std::printf("(paper: 1 <= x <= 50, and x = 0 && y < m)\n\n");
  }

  // ----------------------------------------------------------------- //
  std::printf("==== Example 8: index arrays ====\n%s\n",
              kernels::example8());
  {
    ir::AnalyzedProgram AP = ir::analyzeSource(kernels::example8());
    const ir::Access *W = find(AP, "A", true);
    const ir::Access *R = find(AP, "A", false, "A(Q(L1+1)-1)");

    AssertionDB DB;
    DB.assumeInBounds();
    ArrayBounds AB;
    AB.Dims = {{SymExpr::constant(1), SymExpr::name("n")}};
    DB.declareArrayBounds("A", AB);
    DB.declareArrayBounds("Q", AB);
    DB.declareArrayBounds("C", AB);

    std::printf("checking for an output dependence of A(Q(L1)):\n");
    for (const UserQuery &Q : generateQueries(AP, *W, *W, 1, DB))
      std::printf("  query> %s\n", Q.Text.c_str());
    std::printf("\nchecking for a carried flow dependence:\n");
    for (const UserQuery &Q : generateQueries(AP, *W, *R, 1, DB))
      std::printf("  query> %s\n", Q.Text.c_str());

    std::printf("\nuser answers: \"Q is a permutation array\"\n");
    DB.assertPermutation("Q");
    std::printf("  output dependence possible now: %s\n",
                dependencePossible(AP, *W, *W, 1, DB) ? "yes" : "no");
    std::printf("\nuser answers: \"Q is strictly increasing\"\n");
    DB.assertStrictlyIncreasing("Q");
    std::printf("  carried flow dependence possible now: %s\n",
                dependencePossible(AP, *W, *R, 1, DB) ? "yes" : "no");
  }

  // ----------------------------------------------------------------- //
  std::printf("\n==== Example 10: non-linear terms ====\n%s\n",
              kernels::example10());
  {
    ir::AnalyzedProgram AP = ir::analyzeSource(kernels::example10());
    const ir::Access *W = find(AP, "A", true);
    AssertionDB DB;
    std::printf("i*j is handled as an uninterpreted term; without further "
                "knowledge the\ncarried output dependence must be "
                "assumed: %s\n",
                dependencePossible(AP, *W, *W, 1, DB) ? "assumed" : "none");
  }

  // ----------------------------------------------------------------- //
  std::printf("\n==== Example 11: scalar recurrences (s141 of [LCD91]) "
              "====\n%s\n",
              kernels::example11());
  {
    ir::AnalyzedProgram AP = ir::analyzeSource(kernels::example11());
    const ir::Access *W = find(AP, "a", true);
    AssertionDB DB;
    std::printf("k := k + j is recognized as a strictly increasing "
                "recurrence, so a(k)\nnever revisits a location:\n");
    std::printf("  carried output dependence at level 1: %s\n",
                dependencePossible(AP, *W, *W, 1, DB) ? "assumed"
                                                      : "impossible");
    std::printf("  carried output dependence at level 2: %s\n",
                dependencePossible(AP, *W, *W, 2, DB) ? "assumed"
                                                      : "impossible");
    std::printf("(no compiler in the [LCD91] study vectorized this "
                "loop)\n");
  }
  return 0;
}
