//===- examples/refine_examples.cpp - The paper's Examples 1-6 ------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
// Walks through the six Section 4 examples -- killing, covering, and the
// rectangular / trapezoidal / partial / coupled refinement cases -- and
// prints the unrefined and analyzed dependences side by side.
//
//===----------------------------------------------------------------------===//

#include "analysis/Driver.h"
#include "deps/DependenceAnalysis.h"
#include "kernels/Kernels.h"

#include <cstdio>

using namespace omega;

namespace {

void show(const char *Title, const char *Source, const char *PaperNote) {
  std::printf("==== %s ====\n%s\n", Title, Source);
  ir::AnalyzedProgram AP = ir::analyzeSource(Source);
  if (!AP.ok()) {
    for (const ir::Diagnostic &D : AP.Diags)
      std::printf("error: %s\n", D.toString().c_str());
    return;
  }

  // Unrefined flow dependences first (what a standard analysis reports).
  deps::DependenceAnalysis DA(AP);
  std::printf("standard analysis:\n");
  for (const deps::Dependence &D :
       DA.computeDependences(deps::DepKind::Flow))
    for (const deps::DepSplit &S : D.Splits)
      std::printf("  %u: %-12s -> %u: %-12s %s\n", D.Src->StmtLabel,
                  D.Src->Text.c_str(), D.Dst->StmtLabel,
                  D.Dst->Text.c_str(), S.dirToString().c_str());

  // Then the extended analysis.
  analysis::AnalysisResult R = analysis::analyzeProgram(AP);
  std::printf("extended analysis:\n");
  for (const deps::Dependence &D : R.Flow)
    for (const deps::DepSplit &S : D.Splits) {
      std::string Status;
      if (D.Covers)
        Status += 'C';
      if (S.DeadReason)
        Status += S.DeadReason;
      if (S.Refined)
        Status += 'r';
      std::printf("  %u: %-12s -> %u: %-12s %-10s %s%s\n", D.Src->StmtLabel,
                  D.Src->Text.c_str(), D.Dst->StmtLabel,
                  D.Dst->Text.c_str(), S.dirToString().c_str(),
                  S.Dead ? "DEAD " : "live ",
                  Status.empty() ? "" : ("[" + Status + "]").c_str());
    }
  std::printf("paper: %s\n\n", PaperNote);
}

} // namespace

int main() {
  show("Example 1: killed flow dependence", kernels::example1(),
       "the flow from a(n) is killed by the write loop");
  show("Example 2: covering and killed dependences", kernels::example2(),
       "a(L2-1) covers the read; earlier writes die covered/killed");
  show("Example 3: refinement", kernels::example3(),
       "unrefined (0+,1) refines to (0,1)");
  show("Example 4: trapezoidal refinement", kernels::example4(),
       "unrefined (0+,1) refines to (0,1) despite the triangular bound");
  show("Example 5: partial refinement", kernels::example5(),
       "refines only to (0:1,1): diagonal iterations flow from (1,1)");
  show("Example 6: coupled refinement", kernels::example6(),
       "coupled distances (a,a), a>=1 refine to (1,1)");
  return 0;
}
