//===- examples/cholsky_kills.cpp - Figures 3 and 4 on CHOLSKY ------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
// Runs the Section 4 pipeline on the NAS CHOLSKY kernel (the paper's
// Figure 2) and prints the live and dead flow dependences exactly in the
// format of Figures 3 and 4, using the paper's FORTRAN statement labels.
//
//===----------------------------------------------------------------------===//

#include "analysis/Driver.h"
#include "kernels/Kernels.h"

#include <cstdio>

using namespace omega;
using namespace omega::analysis;

static void printRows(const AnalysisResult &R, bool Dead) {
  std::printf("%-22s%-22s%-14s%s\n", "FROM", "TO", "dir/dist", "status");
  for (const deps::Dependence &D : R.Flow) {
    for (const deps::DepSplit &S : D.Splits) {
      if (S.Dead != Dead)
        continue;
      std::string From =
          std::to_string(kernels::cholskyPaperLabel(D.Src->StmtLabel)) +
          ": " + D.Src->Text;
      std::string To =
          std::to_string(kernels::cholskyPaperLabel(D.Dst->StmtLabel)) +
          ": " + D.Dst->Text;
      std::string Status;
      if (D.Covers)
        Status += 'C';
      if (S.DeadReason == 'c')
        Status += 'c';
      if (S.DeadReason == 'k')
        Status += 'k';
      if (S.Refined)
        Status += 'r';
      std::printf("%-22s%-22s%-14s%s\n", From.c_str(), To.c_str(),
                  S.dirToString().c_str(),
                  Status.empty() ? "" : ("[" + Status + "]").c_str());
    }
  }
}

int main() {
  ir::AnalyzedProgram AP = ir::analyzeSource(kernels::cholsky());
  if (!AP.ok()) {
    for (const ir::Diagnostic &D : AP.Diags)
      std::fprintf(stderr, "error: %s\n", D.toString().c_str());
    return 1;
  }

  std::printf("CHOLSKY (Figure 2), %zu accesses in %zu loops\n",
              AP.Accesses.size(), AP.Loops.size());

  AnalysisResult R = analyzeProgram(AP);

  std::printf("\nLive flow dependences (paper Figure 3):\n\n");
  printRows(R, /*Dead=*/false);
  std::printf("\nDead flow dependences (paper Figure 4):\n\n");
  printRows(R, /*Dead=*/true);

  std::printf("\nStatement labels are the FORTRAN DO-labels of Figure 2.\n"
              "[C]=covers its read, [c]=covered, [k]=killed, [r]=refined.\n"
              "A(L,JJ,J)**2 is expressed as a product, so its rows appear "
              "twice.\n");
  return 0;
}
