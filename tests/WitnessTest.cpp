//===- tests/WitnessTest.cpp ----------------------------------------------===//
//
// Tests for solution extraction (findSolution) and direction-vector
// compression (compressSplits).
//
//===----------------------------------------------------------------------===//

#include "deps/Dependence.h"
#include "omega/Satisfiability.h"

#include "TestUtils.h"

#include <gtest/gtest.h>

using namespace omega;
using namespace omega::testutil;

TEST(FindSolution, SimpleBox) {
  Problem P;
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  P.addGEQ({{X, 1}}, -2);
  P.addGEQ({{X, -1}}, 7);
  P.addGEQ({{Y, 1}, {X, -1}}, 0); // y >= x
  auto Sol = findSolution(P);
  ASSERT_TRUE(Sol.has_value());
  EXPECT_TRUE(evalProblem(P, *Sol));
  EXPECT_EQ((*Sol)[X], 2); // pinned to the minimum
}

TEST(FindSolution, UnsatisfiableReturnsNothing) {
  Problem P;
  VarId X = P.addVar("x");
  P.addGEQ({{X, 1}}, -5);
  P.addGEQ({{X, -1}}, 2);
  EXPECT_FALSE(findSolution(P).has_value());
}

TEST(FindSolution, RespectsStrides) {
  // 3x == y, 7 <= y <= 8: only y == ... 3x in [7,8] has no multiple of
  // 3... adjust: 6 <= y <= 8 gives y == 6, x == 2.
  Problem P;
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  P.addEQ({{X, 3}, {Y, -1}}, 0);
  P.addGEQ({{Y, 1}}, -6);
  P.addGEQ({{Y, -1}}, 8);
  auto Sol = findSolution(P);
  ASSERT_TRUE(Sol.has_value());
  EXPECT_TRUE(evalProblem(P, *Sol));
  EXPECT_EQ((*Sol)[Y] % 3, 0);
}

TEST(FindSolution, UnboundedDirections) {
  Problem P;
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  P.addEQ({{X, 1}, {Y, -2}}, -1); // x == 2y + 1: no finite bounds at all
  auto Sol = findSolution(P);
  ASSERT_TRUE(Sol.has_value());
  EXPECT_TRUE(evalProblem(P, *Sol));
}

TEST(FindSolution, EqualityChain) {
  Problem P;
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  VarId Z = P.addVar("z");
  P.addEQ({{X, 1}, {Y, 1}, {Z, 1}}, -10);
  P.addGEQ({{X, 1}}, 0);
  P.addGEQ({{Y, 1}}, 0);
  P.addGEQ({{Z, 1}}, 0);
  P.addGEQ({{X, -1}}, 4);
  P.addGEQ({{Y, -1}}, 4);
  P.addGEQ({{Z, -1}}, 4);
  auto Sol = findSolution(P);
  ASSERT_TRUE(Sol.has_value());
  EXPECT_TRUE(evalProblem(P, *Sol));
  EXPECT_EQ((*Sol)[X] + (*Sol)[Y] + (*Sol)[Z], 10);
}

TEST(FindSolution, DarkShadowOnlyElimination) {
  // exists x: 2y <= 3x <= 2y + 5 with y in [0, 10]. Both variables carry
  // coefficient >= 2 in the coupled rows, so no elimination is exact; the
  // cheapest (x, a single pair) combines to slack 15 >= (3-1)*(3-1), so
  // the dark shadow decides SAT without splintering. The witness path
  // must still surface a concrete point through the inexact elimination.
  OmegaContext Ctx;
  OmegaContextScope Scope(Ctx);
  Problem P;
  VarId Y = P.addVar("y");
  VarId X = P.addVar("x", /*Protected=*/false);
  P.addGEQ({{X, 3}, {Y, -2}}, 0);     // 3x >= 2y
  P.addGEQ({{Y, 2}, {X, -3}}, 5);     // 2y + 5 >= 3x
  P.addGEQ({{Y, 1}}, 0);              // y >= 0
  P.addGEQ({{Y, -1}}, 10);            // y <= 10
  EXPECT_TRUE(isSatisfiable(P, SatOptions(), Ctx));
  EXPECT_GT(Ctx.Stats.DarkShadowDecided, 0u)
      << "expected the dark-shadow test to decide this elimination";
  auto Sol = findSolution(P, Ctx);
  ASSERT_TRUE(Sol.has_value());
  EXPECT_TRUE(evalProblem(P, *Sol));
}

TEST(FindSolution, SplinteredElimination) {
  // A widened variant of the classic dense system (27 <= 11x + 13y <= 45,
  // -10 <= 7x - 9y <= 6): every elimination pair has both coefficients
  // large. The top-level sat query squeaks through on the dark shadow,
  // but extracting a concrete point pins variables into subproblems whose
  // dark shadows are empty, so the witness path must survive splinter
  // exploration -- and the point it returns must check out.
  OmegaContext Ctx;
  OmegaContextScope Scope(Ctx);
  Problem P;
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  P.addGEQ({{X, 11}, {Y, 13}}, -27);
  P.addGEQ({{X, -11}, {Y, -13}}, 45);
  P.addGEQ({{X, 7}, {Y, -9}}, 10);
  P.addGEQ({{X, -7}, {Y, 9}}, 6);
  EXPECT_TRUE(isSatisfiable(P, SatOptions(), Ctx));
  auto Sol = findSolution(P, Ctx);
  ASSERT_TRUE(Sol.has_value());
  EXPECT_TRUE(evalProblem(P, *Sol));
  EXPECT_GT(Ctx.Stats.SplintersExplored, 0u)
      << "expected splinter exploration while pinning the witness";
}

TEST(FindSolution, SplinteredUnsatHasNoWitness) {
  // The paper's hard case verbatim: 27 <= 11x + 13y <= 45 and
  // -10 <= 7x - 9y <= 4 is satisfiable over the rationals but has no
  // integer point. Every splinter comes up empty and no witness may be
  // fabricated.
  OmegaContext Ctx;
  OmegaContextScope Scope(Ctx);
  Problem P;
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  P.addGEQ({{X, 11}, {Y, 13}}, -27);
  P.addGEQ({{X, -11}, {Y, -13}}, 45);
  P.addGEQ({{X, 7}, {Y, -9}}, 10);
  P.addGEQ({{X, -7}, {Y, 9}}, 4);
  EXPECT_FALSE(isSatisfiable(P, SatOptions(), Ctx));
  EXPECT_GT(Ctx.Stats.SplintersExplored, 0u);
  EXPECT_FALSE(findSolution(P, Ctx).has_value());
}

TEST(FindSolutionProperty, AgreesWithEvaluation) {
  std::mt19937 Rng(404);
  RandomProblemConfig Cfg;
  Cfg.NumVars = 3;
  Cfg.NumEQs = 1;
  Cfg.NumGEQs = 3;
  for (unsigned T = 0; T != 150; ++T) {
    Problem P = randomProblem(Rng, Cfg);
    auto Sol = findSolution(P);
    bool Sat = isSatisfiable(P);
    ASSERT_EQ(Sol.has_value(), Sat) << P.toString();
    if (Sol)
      EXPECT_TRUE(evalProblem(P, *Sol)) << P.toString();
  }
}

//===----------------------------------------------------------------------===//
// compressSplits
//===----------------------------------------------------------------------===//

namespace {

deps::DepSplit makeSplit(unsigned Level,
                         std::vector<std::pair<int64_t, int64_t>> Ranges) {
  deps::DepSplit S;
  S.Level = Level;
  for (auto [Lo, Hi] : Ranges) {
    deps::DirectionElem E;
    E.Range.Empty = false;
    E.Range.HasMin = Lo != INT64_MIN;
    E.Range.HasMax = Hi != INT64_MAX;
    E.Range.Min = Lo;
    E.Range.Max = Hi;
    S.Dir.push_back(E);
  }
  return S;
}

} // namespace

TEST(CompressSplits, PaperExampleZeroPlusOne) {
  // {(+,1), (0,1)} compresses to (0+,1).
  auto Out = deps::compressSplits(
      {makeSplit(1, {{1, INT64_MAX}, {1, 1}}),
       makeSplit(2, {{0, 0}, {1, 1}})});
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].dirToString(), "(0+,1)");
}

TEST(CompressSplits, CoupledVectorsStayApart) {
  // {(+,+), (0,0)}: compressing to (0+,0+) would invent (0,+) and (+,0).
  auto Out = deps::compressSplits(
      {makeSplit(1, {{1, INT64_MAX}, {1, INT64_MAX}}),
       makeSplit(0, {{0, 0}, {0, 0}})});
  EXPECT_EQ(Out.size(), 2u);
}

TEST(CompressSplits, NonAdjacentRangesStayApart) {
  // {(0,1), (3,1)}: a gap at 1..2 blocks the merge.
  auto Out = deps::compressSplits(
      {makeSplit(1, {{0, 0}, {1, 1}}), makeSplit(1, {{3, 3}, {1, 1}})});
  EXPECT_EQ(Out.size(), 2u);
}

TEST(CompressSplits, AdjacentRangesMerge) {
  // {(0:1,1), (2:4,1)} -> (0:4,1).
  auto Out = deps::compressSplits(
      {makeSplit(1, {{0, 1}, {1, 1}}), makeSplit(1, {{2, 4}, {1, 1}})});
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].dirToString(), "(0:4,1)");
}

TEST(CompressSplits, MixedFlagsDoNotMerge) {
  deps::DepSplit Dead = makeSplit(1, {{1, 1}});
  Dead.Dead = true;
  Dead.DeadReason = 'k';
  auto Out = deps::compressSplits({makeSplit(2, {{0, 0}}), Dead});
  EXPECT_EQ(Out.size(), 2u);
}

TEST(CompressSplits, TransitiveMerging) {
  // Three unit ranges chain into one.
  auto Out = deps::compressSplits({makeSplit(1, {{0, 0}}),
                                   makeSplit(1, {{1, 1}}),
                                   makeSplit(1, {{2, 2}})});
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_EQ(Out[0].dirToString(), "(0:2)");
}
