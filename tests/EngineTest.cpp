//===- tests/EngineTest.cpp - DependenceEngine behavior -------------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
// The engine's contract: parallel, cached analysis returns structurally
// identical results to the serial, uncached pipeline; repeat analyses hit
// the query cache; and concurrent OmegaContexts never share counters.
//
//===----------------------------------------------------------------------===//

#include "engine/DependenceEngine.h"
#include "kernels/Kernels.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

using namespace omega;

namespace {

std::string signatureOf(const std::vector<deps::Dependence> &Deps) {
  std::string Out;
  for (const deps::Dependence &D : Deps) {
    Out += std::to_string(D.Src->Id) + "->" + std::to_string(D.Dst->Id);
    Out += std::string("/") + deps::depKindName(D.Kind);
    if (D.Covers)
      Out += " C";
    if (D.CoverLoopIndependent)
      Out += "Li";
    for (const deps::DepSplit &S : D.Splits) {
      Out += " [L" + std::to_string(S.Level) + " " + S.dirToString();
      if (S.Dead)
        Out += std::string(" dead:") + (S.DeadReason ? S.DeadReason : '?');
      if (S.Refined)
        Out += " r";
      Out += "]";
    }
    Out += ";";
  }
  return Out;
}

/// Every structural (non-timing) field of an analysis result.
std::string signatureOf(const analysis::AnalysisResult &R) {
  std::string Out = "flow: " + signatureOf(R.Flow);
  Out += "\nanti: " + signatureOf(R.Anti);
  Out += "\noutput: " + signatureOf(R.Output);
  Out += "\npairs:";
  for (const analysis::PairRecord &P : R.Pairs) {
    Out += " (" + std::to_string(P.Write->Id) + "," +
           std::to_string(P.Read->Id) + (P.HasFlow ? " flow" : "") +
           (P.UsedGeneralTest ? " gen" : "") + (P.SplitVectors ? " split" : "") +
           ")";
  }
  Out += "\nkills:";
  for (const analysis::KillRecord &K : R.Kills) {
    Out += " (" + std::to_string(K.From->Id) + "," +
           std::to_string(K.Killer->Id) + "," + std::to_string(K.To->Id) +
           (K.UsedOmega ? " omega" : "") + (K.Killed ? " killed" : "") + ")";
  }
  return Out;
}

engine::AnalysisRequest makeRequest(unsigned Jobs, bool Cache,
                                    bool Terminate = false) {
  engine::AnalysisRequest Req;
  Req.Jobs = Jobs;
  Req.UseQueryCache = Cache;
  Req.Terminate = Terminate;
  return Req;
}

} // namespace

// Four workers with a shared cache must be byte-identical (structurally)
// to one worker with no cache, over the whole paper corpus.
TEST(Engine, ParallelCachedMatchesSerialUncached) {
  engine::DependenceEngine Serial(makeRequest(1, /*Cache=*/false));
  engine::DependenceEngine Parallel(makeRequest(4, /*Cache=*/true));
  EXPECT_EQ(Serial.jobs(), 1u);
  EXPECT_EQ(Parallel.jobs(), 4u);

  unsigned Analyzed = 0;
  for (const kernels::Kernel &K : kernels::corpus()) {
    ir::AnalyzedProgram AP = ir::analyzeSource(K.Source);
    if (!AP.ok())
      continue;
    engine::AnalysisResult RS = Serial.analyze(AP);
    engine::AnalysisResult RP = Parallel.analyze(AP);
    EXPECT_EQ(signatureOf(RS), signatureOf(RP)) << "kernel " << K.Name;
    EXPECT_EQ(RS.liveFlowTable(), RP.liveFlowTable()) << "kernel " << K.Name;
    EXPECT_EQ(RS.deadFlowTable(), RP.deadFlowTable()) << "kernel " << K.Name;
    ++Analyzed;
  }
  EXPECT_GT(Analyzed, 0u);
  // The uncached engine reports no cache traffic at all.
  EXPECT_EQ(Serial.cache(), nullptr);
}

// The terminating extension must shard identically too (it is the one
// phase that mutates dependences outside the per-read kill groups).
TEST(Engine, TerminatePhaseIsDeterministic) {
  engine::DependenceEngine Serial(makeRequest(1, false, /*Terminate=*/true));
  engine::DependenceEngine Parallel(makeRequest(4, true, /*Terminate=*/true));
  for (const kernels::Kernel &K : kernels::corpus()) {
    ir::AnalyzedProgram AP = ir::analyzeSource(K.Source);
    if (!AP.ok())
      continue;
    EXPECT_EQ(signatureOf(Serial.analyze(AP)),
              signatureOf(Parallel.analyze(AP)))
        << "kernel " << K.Name;
  }
}

// Re-analyzing the same program must hit the memoized Omega answers and
// still return the same result.
TEST(Engine, RepeatedAnalysisHitsCache) {
  engine::DependenceEngine Engine(makeRequest(1, /*Cache=*/true));
  ir::AnalyzedProgram AP = ir::analyzeSource(kernels::example1());
  ASSERT_TRUE(AP.ok());

  engine::AnalysisResult First = Engine.analyze(AP);
  EXPECT_GT(First.Cache.SatMisses, 0u);
  EXPECT_GT(First.CacheEntries, 0u);

  engine::AnalysisResult Second = Engine.analyze(AP);
  EXPECT_GT(Second.Cache.SatHits, 0u);
  // Every satisfiability answer the second run needed was already
  // memoized: no new entries appear.
  EXPECT_EQ(Second.CacheEntries, First.CacheEntries);
  EXPECT_EQ(signatureOf(First), signatureOf(Second));
}

// The canonical cache key is variable-order independent, so even a single
// analysis sees hits when structurally-equal problems recur across pairs
// and levels (this is where the cache pays off on first contact).
TEST(Engine, FirstAnalysisAlreadyHitsCache) {
  engine::DependenceEngine Engine(makeRequest(1, /*Cache=*/true));
  ir::AnalyzedProgram AP = ir::analyzeSource(kernels::example1());
  ASSERT_TRUE(AP.ok());
  engine::AnalysisResult R = Engine.analyze(AP);
  EXPECT_GT(R.Cache.SatHits, 0u);
}

// Two concurrent contexts on different threads must not bleed counters
// into each other or into the process default.
TEST(Engine, ConcurrentContextStatsAreIsolated) {
  ir::AnalyzedProgram AP1 = ir::analyzeSource(kernels::example1());
  ir::AnalyzedProgram AP3 = ir::analyzeSource(kernels::example3());
  ASSERT_TRUE(AP1.ok());
  ASSERT_TRUE(AP3.ok());

  // Serial baselines: what each program costs in its own fresh context.
  auto baseline = [](const ir::AnalyzedProgram &AP) {
    OmegaContext Ctx;
    OmegaContextScope Scope(Ctx);
    (void)analysis::analyzeProgram(AP);
    return Ctx.Stats;
  };
  OmegaStats Base1 = baseline(AP1);
  OmegaStats Base3 = baseline(AP3);
  ASSERT_GT(Base1.SatisfiabilityCalls, 0u);
  ASSERT_GT(Base3.SatisfiabilityCalls, 0u);
  ASSERT_NE(Base1.SatisfiabilityCalls, Base3.SatisfiabilityCalls);

  uint64_t DefaultBefore =
      OmegaContext::defaultContext().Stats.SatisfiabilityCalls;

  OmegaStats Got1, Got3;
  std::thread T1([&] {
    OmegaContext Ctx;
    OmegaContextScope Scope(Ctx);
    for (int I = 0; I != 3; ++I)
      (void)analysis::analyzeProgram(AP1);
    Got1 = Ctx.Stats;
  });
  std::thread T3([&] {
    OmegaContext Ctx;
    OmegaContextScope Scope(Ctx);
    for (int I = 0; I != 3; ++I)
      (void)analysis::analyzeProgram(AP3);
    Got3 = Ctx.Stats;
  });
  T1.join();
  T3.join();

  // Each thread saw exactly three times its own baseline -- nothing from
  // the sibling thread leaked in.
  EXPECT_EQ(Got1.SatisfiabilityCalls, 3 * Base1.SatisfiabilityCalls);
  EXPECT_EQ(Got3.SatisfiabilityCalls, 3 * Base3.SatisfiabilityCalls);
  EXPECT_EQ(Got1.ExactEliminations, 3 * Base1.ExactEliminations);
  EXPECT_EQ(Got3.ExactEliminations, 3 * Base3.ExactEliminations);

  // And none of it landed on the process-default context.
  EXPECT_EQ(OmegaContext::defaultContext().Stats.SatisfiabilityCalls,
            DefaultBefore);
}

// Jobs = 0 resolves to the hardware concurrency (at least one worker).
TEST(Engine, AutoJobsResolves) {
  engine::DependenceEngine Engine(makeRequest(0, false));
  EXPECT_GE(Engine.jobs(), 1u);
  ir::AnalyzedProgram AP = ir::analyzeSource(kernels::example1());
  ASSERT_TRUE(AP.ok());
  engine::DependenceEngine Serial(makeRequest(1, false));
  EXPECT_EQ(signatureOf(Engine.analyze(AP)), signatureOf(Serial.analyze(AP)));
}

// Several engines sharing ONE QueryCache -- the omega-serve topology --
// with interleaved concurrent clients: each request's reported cache
// traffic must be exactly its own (the merged per-context counters), not
// a smeared slice of the global movement, and the per-request numbers
// must add up to the shared cache's global counters.
TEST(Engine, SharedCacheStatsAreAttributedPerRequest) {
  QueryCache Shared;
  const std::vector<kernels::Kernel> &Corpus = kernels::corpus();
  ASSERT_GE(Corpus.size(), 4u);

  // Serial baselines for structural comparison.
  std::vector<std::string> Baselines;
  std::vector<ir::AnalyzedProgram> Programs;
  for (const kernels::Kernel &K : Corpus) {
    ir::AnalyzedProgram AP = ir::analyzeSource(K.Source);
    if (!AP.ok())
      continue;
    engine::DependenceEngine Fresh(makeRequest(1, /*Cache=*/false));
    Baselines.push_back(signatureOf(Fresh.analyze(AP)));
    Programs.push_back(std::move(AP));
    if (Programs.size() == 6)
      break;
  }
  ASSERT_GE(Programs.size(), 4u);

  constexpr unsigned Clients = 4;
  constexpr unsigned Rounds = 3;
  struct RequestRecord {
    QueryCacheStats Cache;
    OmegaStats Stats;
    bool SignatureOk = false;
  };
  std::vector<std::vector<RequestRecord>> Records(Clients);
  std::vector<std::thread> Threads;
  for (unsigned C = 0; C != Clients; ++C) {
    Threads.emplace_back([&, C] {
      engine::AnalysisRequest Req;
      Req.Jobs = 2;
      Req.SharedCache = &Shared;
      engine::DependenceEngine Engine(Req);
      for (unsigned R = 0; R != Rounds; ++R)
        for (std::size_t I = 0; I != Programs.size(); ++I) {
          std::size_t Pick = (I + C) % Programs.size();
          engine::AnalysisResult Result = Engine.analyze(Programs[Pick]);
          RequestRecord Rec;
          Rec.Cache = Result.Cache;
          Rec.Stats = Result.Stats;
          Rec.SignatureOk = signatureOf(Result) == Baselines[Pick];
          Records[C].push_back(Rec);
        }
    });
  }
  for (std::thread &T : Threads)
    T.join();

  QueryCacheStats Sum;
  for (const std::vector<RequestRecord> &Client : Records)
    for (const RequestRecord &Rec : Client) {
      // Warm or cold, interleaved or not: structure never changes.
      EXPECT_TRUE(Rec.SignatureOk);
      // Per-request cache traffic IS the request's own counter movement.
      EXPECT_EQ(Rec.Cache.SatHits, Rec.Stats.SatCacheHits);
      EXPECT_EQ(Rec.Cache.SatMisses, Rec.Stats.SatCacheMisses);
      EXPECT_EQ(Rec.Cache.GistHits, Rec.Stats.GistCacheHits);
      EXPECT_EQ(Rec.Cache.GistMisses, Rec.Stats.GistCacheMisses);
      Sum.SatHits += Rec.Cache.SatHits;
      Sum.SatMisses += Rec.Cache.SatMisses;
      Sum.GistHits += Rec.Cache.GistHits;
      Sum.GistMisses += Rec.Cache.GistMisses;
    }

  // Every lookup any engine made is accounted to exactly one request.
  QueryCacheStats Global = Shared.stats();
  EXPECT_EQ(Sum.SatHits, Global.SatHits);
  EXPECT_EQ(Sum.SatMisses, Global.SatMisses);
  EXPECT_EQ(Sum.GistHits, Global.GistHits);
  EXPECT_EQ(Sum.GistMisses, Global.GistMisses);
  EXPECT_GT(Sum.SatHits, 0u);
}

// Snapshot sharing through the cache is an optimization, never a result
// change; a warm engine adopts snapshots instead of rebuilding them.
TEST(Engine, SnapshotSharingIsResultIdenticalAndWarms) {
  engine::AnalysisRequest On = makeRequest(1, /*Cache=*/true);
  engine::AnalysisRequest Off = makeRequest(1, /*Cache=*/true);
  Off.ShareSnapshots = false;
  engine::DependenceEngine Sharing(On), Isolated(Off);

  uint64_t TotalAdoptions = 0;
  for (const kernels::Kernel &K : kernels::corpus()) {
    ir::AnalyzedProgram AP = ir::analyzeSource(K.Source);
    if (!AP.ok())
      continue;
    engine::AnalysisResult First = Sharing.analyze(AP);
    engine::AnalysisResult Warm = Sharing.analyze(AP);
    engine::AnalysisResult Plain = Isolated.analyze(AP);
    EXPECT_EQ(signatureOf(Warm), signatureOf(Plain)) << "kernel " << K.Name;
    EXPECT_EQ(signatureOf(First), signatureOf(Warm)) << "kernel " << K.Name;
    // A warm re-analysis adopts every snapshot it would have rebuilt.
    EXPECT_EQ(Warm.Stats.SnapshotBuilds, 0u) << "kernel " << K.Name;
    EXPECT_EQ(Plain.Stats.SnapshotCacheHits, 0u) << "kernel " << K.Name;
    EXPECT_EQ(Plain.Stats.SnapshotCacheMisses, 0u) << "kernel " << K.Name;
    TotalAdoptions += Warm.Stats.SnapshotCacheHits;
  }
  EXPECT_GT(TotalAdoptions, 0u);
}
