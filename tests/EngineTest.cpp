//===- tests/EngineTest.cpp - DependenceEngine behavior -------------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
// The engine's contract: parallel, cached analysis returns structurally
// identical results to the serial, uncached pipeline; repeat analyses hit
// the query cache; and concurrent OmegaContexts never share counters.
//
//===----------------------------------------------------------------------===//

#include "engine/DependenceEngine.h"
#include "kernels/Kernels.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

using namespace omega;

namespace {

std::string signatureOf(const std::vector<deps::Dependence> &Deps) {
  std::string Out;
  for (const deps::Dependence &D : Deps) {
    Out += std::to_string(D.Src->Id) + "->" + std::to_string(D.Dst->Id);
    Out += std::string("/") + deps::depKindName(D.Kind);
    if (D.Covers)
      Out += " C";
    if (D.CoverLoopIndependent)
      Out += "Li";
    for (const deps::DepSplit &S : D.Splits) {
      Out += " [L" + std::to_string(S.Level) + " " + S.dirToString();
      if (S.Dead)
        Out += std::string(" dead:") + (S.DeadReason ? S.DeadReason : '?');
      if (S.Refined)
        Out += " r";
      Out += "]";
    }
    Out += ";";
  }
  return Out;
}

/// Every structural (non-timing) field of an analysis result.
std::string signatureOf(const analysis::AnalysisResult &R) {
  std::string Out = "flow: " + signatureOf(R.Flow);
  Out += "\nanti: " + signatureOf(R.Anti);
  Out += "\noutput: " + signatureOf(R.Output);
  Out += "\npairs:";
  for (const analysis::PairRecord &P : R.Pairs) {
    Out += " (" + std::to_string(P.Write->Id) + "," +
           std::to_string(P.Read->Id) + (P.HasFlow ? " flow" : "") +
           (P.UsedGeneralTest ? " gen" : "") + (P.SplitVectors ? " split" : "") +
           ")";
  }
  Out += "\nkills:";
  for (const analysis::KillRecord &K : R.Kills) {
    Out += " (" + std::to_string(K.From->Id) + "," +
           std::to_string(K.Killer->Id) + "," + std::to_string(K.To->Id) +
           (K.UsedOmega ? " omega" : "") + (K.Killed ? " killed" : "") + ")";
  }
  return Out;
}

engine::AnalysisRequest makeRequest(unsigned Jobs, bool Cache,
                                    bool Terminate = false) {
  engine::AnalysisRequest Req;
  Req.Jobs = Jobs;
  Req.UseQueryCache = Cache;
  Req.Terminate = Terminate;
  return Req;
}

} // namespace

// Four workers with a shared cache must be byte-identical (structurally)
// to one worker with no cache, over the whole paper corpus.
TEST(Engine, ParallelCachedMatchesSerialUncached) {
  engine::DependenceEngine Serial(makeRequest(1, /*Cache=*/false));
  engine::DependenceEngine Parallel(makeRequest(4, /*Cache=*/true));
  EXPECT_EQ(Serial.jobs(), 1u);
  EXPECT_EQ(Parallel.jobs(), 4u);

  unsigned Analyzed = 0;
  for (const kernels::Kernel &K : kernels::corpus()) {
    ir::AnalyzedProgram AP = ir::analyzeSource(K.Source);
    if (!AP.ok())
      continue;
    engine::AnalysisResult RS = Serial.analyze(AP);
    engine::AnalysisResult RP = Parallel.analyze(AP);
    EXPECT_EQ(signatureOf(RS), signatureOf(RP)) << "kernel " << K.Name;
    EXPECT_EQ(RS.liveFlowTable(), RP.liveFlowTable()) << "kernel " << K.Name;
    EXPECT_EQ(RS.deadFlowTable(), RP.deadFlowTable()) << "kernel " << K.Name;
    ++Analyzed;
  }
  EXPECT_GT(Analyzed, 0u);
  // The uncached engine reports no cache traffic at all.
  EXPECT_EQ(Serial.cache(), nullptr);
}

// The terminating extension must shard identically too (it is the one
// phase that mutates dependences outside the per-read kill groups).
TEST(Engine, TerminatePhaseIsDeterministic) {
  engine::DependenceEngine Serial(makeRequest(1, false, /*Terminate=*/true));
  engine::DependenceEngine Parallel(makeRequest(4, true, /*Terminate=*/true));
  for (const kernels::Kernel &K : kernels::corpus()) {
    ir::AnalyzedProgram AP = ir::analyzeSource(K.Source);
    if (!AP.ok())
      continue;
    EXPECT_EQ(signatureOf(Serial.analyze(AP)),
              signatureOf(Parallel.analyze(AP)))
        << "kernel " << K.Name;
  }
}

// Re-analyzing the same program must hit the memoized Omega answers and
// still return the same result.
TEST(Engine, RepeatedAnalysisHitsCache) {
  engine::DependenceEngine Engine(makeRequest(1, /*Cache=*/true));
  ir::AnalyzedProgram AP = ir::analyzeSource(kernels::example1());
  ASSERT_TRUE(AP.ok());

  engine::AnalysisResult First = Engine.analyze(AP);
  EXPECT_GT(First.Cache.SatMisses, 0u);
  EXPECT_GT(First.CacheEntries, 0u);

  engine::AnalysisResult Second = Engine.analyze(AP);
  EXPECT_GT(Second.Cache.SatHits, 0u);
  // Every satisfiability answer the second run needed was already
  // memoized: no new entries appear.
  EXPECT_EQ(Second.CacheEntries, First.CacheEntries);
  EXPECT_EQ(signatureOf(First), signatureOf(Second));
}

// The canonical cache key is variable-order independent, so even a single
// analysis sees hits when structurally-equal problems recur across pairs
// and levels (this is where the cache pays off on first contact).
TEST(Engine, FirstAnalysisAlreadyHitsCache) {
  engine::DependenceEngine Engine(makeRequest(1, /*Cache=*/true));
  ir::AnalyzedProgram AP = ir::analyzeSource(kernels::example1());
  ASSERT_TRUE(AP.ok());
  engine::AnalysisResult R = Engine.analyze(AP);
  EXPECT_GT(R.Cache.SatHits, 0u);
}

// Two concurrent contexts on different threads must not bleed counters
// into each other or into the process default.
TEST(Engine, ConcurrentContextStatsAreIsolated) {
  ir::AnalyzedProgram AP1 = ir::analyzeSource(kernels::example1());
  ir::AnalyzedProgram AP3 = ir::analyzeSource(kernels::example3());
  ASSERT_TRUE(AP1.ok());
  ASSERT_TRUE(AP3.ok());

  // Serial baselines: what each program costs in its own fresh context.
  auto baseline = [](const ir::AnalyzedProgram &AP) {
    OmegaContext Ctx;
    OmegaContextScope Scope(Ctx);
    (void)analysis::analyzeProgram(AP);
    return Ctx.Stats;
  };
  OmegaStats Base1 = baseline(AP1);
  OmegaStats Base3 = baseline(AP3);
  ASSERT_GT(Base1.SatisfiabilityCalls, 0u);
  ASSERT_GT(Base3.SatisfiabilityCalls, 0u);
  ASSERT_NE(Base1.SatisfiabilityCalls, Base3.SatisfiabilityCalls);

  uint64_t DefaultBefore =
      OmegaContext::defaultContext().Stats.SatisfiabilityCalls;

  OmegaStats Got1, Got3;
  std::thread T1([&] {
    OmegaContext Ctx;
    OmegaContextScope Scope(Ctx);
    for (int I = 0; I != 3; ++I)
      (void)analysis::analyzeProgram(AP1);
    Got1 = Ctx.Stats;
  });
  std::thread T3([&] {
    OmegaContext Ctx;
    OmegaContextScope Scope(Ctx);
    for (int I = 0; I != 3; ++I)
      (void)analysis::analyzeProgram(AP3);
    Got3 = Ctx.Stats;
  });
  T1.join();
  T3.join();

  // Each thread saw exactly three times its own baseline -- nothing from
  // the sibling thread leaked in.
  EXPECT_EQ(Got1.SatisfiabilityCalls, 3 * Base1.SatisfiabilityCalls);
  EXPECT_EQ(Got3.SatisfiabilityCalls, 3 * Base3.SatisfiabilityCalls);
  EXPECT_EQ(Got1.ExactEliminations, 3 * Base1.ExactEliminations);
  EXPECT_EQ(Got3.ExactEliminations, 3 * Base3.ExactEliminations);

  // And none of it landed on the process-default context.
  EXPECT_EQ(OmegaContext::defaultContext().Stats.SatisfiabilityCalls,
            DefaultBefore);
}

// Jobs = 0 resolves to the hardware concurrency (at least one worker).
TEST(Engine, AutoJobsResolves) {
  engine::DependenceEngine Engine(makeRequest(0, false));
  EXPECT_GE(Engine.jobs(), 1u);
  ir::AnalyzedProgram AP = ir::analyzeSource(kernels::example1());
  ASSERT_TRUE(AP.ok());
  engine::DependenceEngine Serial(makeRequest(1, false));
  EXPECT_EQ(signatureOf(Engine.analyze(AP)), signatureOf(Serial.analyze(AP)));
}
