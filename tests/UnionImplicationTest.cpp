//===- tests/UnionImplicationTest.cpp -------------------------------------===//
//
// Property tests for the disjunctive-implication machinery the Section 4
// analyses ride on: negateProblem and impliesUnion, checked against
// brute-force enumeration.
//
//===----------------------------------------------------------------------===//

#include "omega/Gist.h"

#include "omega/Projection.h"
#include "omega/Satisfiability.h"
#include "TestUtils.h"

#include <gtest/gtest.h>

using namespace omega;
using namespace omega::testutil;

namespace {

/// Membership of a full point in a problem with existential wildcards:
/// pin the protected variables, leave the rest to the solver.
bool containsPoint(const Problem &P, const std::vector<int64_t> &Point) {
  Problem Pinned = P;
  for (VarId V = 0; V != static_cast<VarId>(Point.size()); ++V) {
    if (static_cast<unsigned>(V) >= P.getNumVars() || !P.isProtected(V))
      continue;
    Pinned.addEQ({{V, 1}}, -Point[V]);
  }
  return isSatisfiable(std::move(Pinned));
}

} // namespace

TEST(NegateProblem, PlainRows) {
  Problem P;
  VarId X = P.addVar("x");
  P.addGEQ({{X, 1}}, -2); // x >= 2
  P.addGEQ({{X, -1}}, 5); // x <= 5
  auto Neg = negateProblem(P);
  ASSERT_TRUE(Neg.has_value());
  // not (2 <= x <= 5) == (x <= 1) or (x >= 6).
  for (int64_t V = -3; V <= 9; ++V) {
    bool In = false;
    for (const Problem &Piece : *Neg)
      In |= containsPoint(Piece, {V});
    EXPECT_EQ(In, V < 2 || V > 5) << "x = " << V;
  }
}

TEST(NegateProblem, StrideRow) {
  // exists w: x == 3w  --> negation: x % 3 != 0.
  Problem P;
  VarId X = P.addVar("x");
  VarId W = P.addVar("w", /*Protected=*/false);
  P.addEQ({{X, 1}, {W, -3}}, 0);
  auto Neg = negateProblem(P);
  ASSERT_TRUE(Neg.has_value());
  for (int64_t V = -7; V <= 7; ++V) {
    bool In = false;
    for (const Problem &Piece : *Neg)
      In |= containsPoint(Piece, {V});
    EXPECT_EQ(In, ((V % 3) + 3) % 3 != 0) << "x = " << V;
  }
}

TEST(NegateProblem, UnsupportedWildcardShape) {
  // The wildcard appears in an inequality: not a simple stride.
  Problem P;
  VarId X = P.addVar("x");
  VarId W = P.addVar("w", /*Protected=*/false);
  P.addGEQ({{X, 1}, {W, -2}}, 0);
  EXPECT_FALSE(negateProblem(P).has_value());
}

TEST(NegateProblem, UnitWildcardEqualityIsVacuous) {
  // exists w: x + w == 0 is always true; its negation is empty (False).
  Problem P;
  VarId X = P.addVar("x");
  VarId W = P.addVar("w", /*Protected=*/false);
  P.addEQ({{X, 1}, {W, 1}}, 0);
  auto Neg = negateProblem(P);
  ASSERT_TRUE(Neg.has_value());
  EXPECT_TRUE(Neg->empty());
}

//===----------------------------------------------------------------------===//
// impliesUnion property: agreement with pointwise evaluation.
//===----------------------------------------------------------------------===//

namespace {

struct UnionParam {
  unsigned Trials;
  unsigned Seed;
  unsigned NumDisjuncts;
};

class UnionImplicationProperty
    : public ::testing::TestWithParam<UnionParam> {};

} // namespace

TEST_P(UnionImplicationProperty, AgreesWithBruteForce) {
  const UnionParam &Param = GetParam();
  std::mt19937 Rng(Param.Seed);
  RandomProblemConfig Cfg;
  Cfg.NumVars = 2;
  Cfg.NumEQs = 0;
  Cfg.NumGEQs = 2;
  Cfg.Box = 5;

  for (unsigned T = 0; T != Param.Trials; ++T) {
    Problem P = randomProblem(Rng, Cfg);
    std::vector<Problem> Qs;
    for (unsigned I = 0; I != Param.NumDisjuncts; ++I) {
      // Build each disjunct in P's layout from random rows (without the
      // box bounds so the union is usually a strict subset).
      Problem Raw = randomProblem(Rng, Cfg);
      Problem Q = P.cloneLayout();
      unsigned Count = 0;
      for (const Constraint &Row : Raw.constraints())
        if (Count++ < Cfg.NumGEQs)
          Q.addConstraint(Row);
      Qs.push_back(std::move(Q));
    }

    bool Actual = impliesUnion(P, Qs);
    bool Expected = true;
    for (int64_t X = -Cfg.Box; X <= Cfg.Box && Expected; ++X)
      for (int64_t Y = -Cfg.Box; Y <= Cfg.Box && Expected; ++Y) {
        std::vector<int64_t> Pt = {X, Y};
        if (!evalProblem(P, Pt))
          continue;
        bool InUnion = false;
        for (const Problem &Q : Qs)
          InUnion |= evalProblem(Q, Pt);
        Expected = InUnion;
      }
    ASSERT_EQ(Actual, Expected) << "trial " << T << " p=" << P.toString();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomUnions, UnionImplicationProperty,
                         ::testing::Values(UnionParam{120, 51, 1},
                                           UnionParam{120, 52, 2},
                                           UnionParam{80, 53, 3}));

//===----------------------------------------------------------------------===//
// conjoinExtending
//===----------------------------------------------------------------------===//

TEST(ConjoinExtending, RemapsWildcardsApart) {
  Problem Layout;
  VarId X = Layout.addVar("x");

  // A: exists w: x == 2w (x even). B: exists w: x == 2w + 1 (x odd).
  Problem A = Layout.cloneLayout();
  {
    VarId W = A.addWildcard();
    A.addEQ({{X, 1}, {W, -2}}, 0);
  }
  Problem B = Layout.cloneLayout();
  {
    VarId W = B.addWildcard();
    B.addEQ({{X, 1}, {W, -2}}, -1);
  }
  // Without remapping the two wildcards would conflate and the result
  // would wrongly be satisfiable.
  Problem Both = conjoinExtending(A, B, Layout.getNumVars());
  EXPECT_FALSE(isSatisfiable(Both));
}

TEST(ConjoinExtending, SharedProtectedColumnsJoin) {
  Problem Layout;
  VarId X = Layout.addVar("x");
  Problem A = Layout.cloneLayout();
  A.addGEQ({{X, 1}}, -3); // x >= 3
  Problem B = Layout.cloneLayout();
  B.addGEQ({{X, -1}}, 2); // x <= 2
  EXPECT_FALSE(isSatisfiable(conjoinExtending(A, B, 1)));

  Problem C = Layout.cloneLayout();
  C.addGEQ({{X, -1}}, 9); // x <= 9
  EXPECT_TRUE(isSatisfiable(conjoinExtending(A, C, 1)));
}
