//===- tests/DiffHarness.h - Shared ground-truth differential checker ----===//
//
// Interprets a program and checks every executed dependence witness
// against the analysis: memory-based witnesses against the unrefined
// dependences, value-based flow witnesses against the live splits of the
// Section 4 result. Shared by the corpus differential test and the
// random-program fuzzer.
//
//===----------------------------------------------------------------------===//

#ifndef OMEGA_TESTS_DIFFHARNESS_H
#define OMEGA_TESTS_DIFFHARNESS_H

#include "analysis/Driver.h"
#include "ir/Interp.h"

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

namespace omega {
namespace testutil {

/// Identifies one access site: statement, read/write, read ordinal.
using AccessKey = std::tuple<unsigned, bool, unsigned>;

inline std::map<AccessKey, const ir::Access *>
buildAccessMap(const ir::AnalyzedProgram &AP) {
  std::map<AccessKey, const ir::Access *> Map;
  std::map<unsigned, unsigned> NextOrdinal;
  for (const ir::Access &A : AP.Accesses) {
    unsigned Ordinal = A.IsWrite ? 0 : NextOrdinal[A.StmtLabel]++;
    Map[{A.StmtLabel, A.IsWrite, Ordinal}] = &A;
  }
  return Map;
}

inline const ir::Access *
accessOf(const std::map<AccessKey, const ir::Access *> &Map,
         const ir::TraceEntry &T) {
  auto It =
      Map.find({T.StmtLabel, T.IsWrite, T.IsWrite ? 0 : T.ReadOrdinal});
  return It == Map.end() ? nullptr : It->second;
}

/// Does some split of the dependence (Src -> Dst) admit the observed
/// distance vector? With RequireLive only living splits count.
inline bool witnessAdmitted(const std::vector<deps::Dependence> &Deps,
                            const ir::Access *Src, const ir::Access *Dst,
                            const std::vector<int64_t> &Dist, unsigned Level,
                            bool RequireLive) {
  for (const deps::Dependence &D : Deps) {
    if (D.Src != Src || D.Dst != Dst)
      continue;
    for (const deps::DepSplit &S : D.Splits) {
      if (S.Level != Level || (RequireLive && S.Dead))
        continue;
      bool Fits = S.Dir.size() == Dist.size();
      for (unsigned K = 0; Fits && K != Dist.size(); ++K) {
        const IntRange &R = S.Dir[K].Range;
        Fits = !R.Empty && (!R.HasMin || Dist[K] >= R.Min) &&
               (!R.HasMax || Dist[K] <= R.Max);
      }
      if (Fits)
        return true;
    }
  }
  return false;
}

/// Witness distance vector over the common loops, and its carried level
/// (0 == loop-independent).
inline void witnessShape(const ir::Access *Src, const ir::Access *Dst,
                         const ir::TraceEntry &A, const ir::TraceEntry &B,
                         std::vector<int64_t> &Dist, unsigned &Level) {
  unsigned Common = ir::AnalyzedProgram::numCommonLoops(*Src, *Dst);
  Dist.clear();
  Level = 0;
  for (unsigned K = 0; K != Common; ++K) {
    Dist.push_back(B.Iters[K] - A.Iters[K]);
    if (Level == 0 && Dist.back() != 0)
      Level = K + 1;
  }
}

/// Runs the full differential check. Returns the number of witnesses
/// checked (0 means the trace was trivial).
inline unsigned checkTraceWitnesses(
    const ir::AnalyzedProgram &AP,
    const std::map<std::string, int64_t> &Symbols, const char *Name) {
  ir::ExecConfig Config;
  Config.Symbols = Symbols;
  ir::ExecResult Exec = interpret(AP.Source, Config);
  EXPECT_FALSE(Exec.Failed) << Name << ": " << Exec.Error;
  EXPECT_FALSE(Exec.Truncated) << Name;
  if (Exec.Failed || Exec.Truncated)
    return 0;

  analysis::AnalysisResult R = analysis::analyzeProgram(AP);
  deps::DependenceAnalysis DA(AP);
  std::vector<deps::Dependence> UnrefinedFlow =
      DA.computeDependences(deps::DepKind::Flow);
  std::map<AccessKey, const ir::Access *> Map = buildAccessMap(AP);

  std::map<std::pair<std::string, std::vector<int64_t>>,
           std::vector<const ir::TraceEntry *>>
      ByLoc;
  for (const ir::TraceEntry &T : Exec.Trace)
    ByLoc[{T.Array, T.Location}].push_back(&T);

  unsigned Checked = 0;
  for (const auto &[Loc, Entries] : ByLoc) {
    (void)Loc;
    const ir::TraceEntry *LastWrite = nullptr;
    for (unsigned J = 0; J != Entries.size(); ++J) {
      const ir::TraceEntry &B = *Entries[J];
      const ir::Access *DstAcc = accessOf(Map, B);
      EXPECT_NE(DstAcc, nullptr);
      if (!DstAcc)
        return Checked;

      for (unsigned I = 0; I != J; ++I) {
        const ir::TraceEntry &A = *Entries[I];
        if (!A.IsWrite && !B.IsWrite)
          continue;
        const ir::Access *SrcAcc = accessOf(Map, A);
        EXPECT_NE(SrcAcc, nullptr);
        if (!SrcAcc)
          return Checked;

        std::vector<int64_t> Dist;
        unsigned Level;
        witnessShape(SrcAcc, DstAcc, A, B, Dist, Level);
        const std::vector<deps::Dependence> *Deps =
            (A.IsWrite && !B.IsWrite) ? &UnrefinedFlow
            : (!A.IsWrite && B.IsWrite) ? &R.Anti
                                        : &R.Output;
        ++Checked;
        EXPECT_TRUE(witnessAdmitted(*Deps, SrcAcc, DstAcc, Dist, Level,
                                    /*RequireLive=*/false))
            << Name << ": memory witness " << SrcAcc->Text << " -> "
            << DstAcc->Text << " at level " << Level << " not admitted\n"
            << AP.Source.toString();
      }

      if (!B.IsWrite && LastWrite) {
        const ir::Access *SrcAcc = accessOf(Map, *LastWrite);
        std::vector<int64_t> Dist;
        unsigned Level;
        witnessShape(SrcAcc, DstAcc, *LastWrite, B, Dist, Level);
        ++Checked;
        EXPECT_TRUE(witnessAdmitted(R.Flow, SrcAcc, DstAcc, Dist, Level,
                                    /*RequireLive=*/true))
            << Name << ": VALUE witness " << SrcAcc->Text << " -> "
            << DstAcc->Text << " at level " << Level
            << " only admitted by dead splits (false kill!)\n"
            << AP.Source.toString();
      }
      if (B.IsWrite)
        LastWrite = &B;
    }
  }
  return Checked;
}

} // namespace testutil
} // namespace omega

#endif // OMEGA_TESTS_DIFFHARNESS_H
