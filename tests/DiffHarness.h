//===- tests/DiffHarness.h - Shared ground-truth differential checker ----===//
//
// GTest adapter over the trace oracle (src/oracle/TraceOracle.h): runs a
// program through the interpreter, reconstructs every memory- and
// value-based dependence witness from the trace, and turns each refused
// witness into a test failure. The checking itself lives in the oracle
// library so the omega-fuzz driver and the regression-replay test apply
// exactly the same judgement.
//
//===----------------------------------------------------------------------===//

#ifndef OMEGA_TESTS_DIFFHARNESS_H
#define OMEGA_TESTS_DIFFHARNESS_H

#include "oracle/TraceOracle.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

namespace omega {
namespace testutil {

using oracle::AccessKey;
using oracle::accessOf;
using oracle::buildAccessMap;
using oracle::witnessAdmitted;
using oracle::witnessShape;

/// Runs the full differential check and reports every mismatch as a test
/// failure. Returns the number of witnesses checked (0 means the trace
/// was trivial or the program did not execute).
inline unsigned checkTraceWitnesses(
    const ir::AnalyzedProgram &AP,
    const std::map<std::string, int64_t> &Symbols, const char *Name) {
  oracle::TraceOracleOptions Opts;
  Opts.Symbols = Symbols;
  oracle::TraceReport R = oracle::checkProgram(AP, Opts);
  EXPECT_FALSE(R.ExecFailed) << Name << ": " << R.ExecError;
  EXPECT_FALSE(R.Truncated) << Name;
  for (const std::string &M : R.Mismatches)
    ADD_FAILURE() << Name << ": " << M << "\n" << AP.Source.toString();
  return R.WitnessesChecked;
}

} // namespace testutil
} // namespace omega

#endif // OMEGA_TESTS_DIFFHARNESS_H
