//===- tests/ApplyTest.cpp ------------------------------------------------===//
//
// Tests for applied transformations. The strongest checks run the
// interpreter before and after the rewrite and compare final memory --
// a legal interchange must preserve semantics; an illegal one (per the
// dependence analysis) visibly breaks them.
//
//===----------------------------------------------------------------------===//

#include "transform/Apply.h"

#include "analysis/Transforms.h"
#include "ir/Interp.h"
#include "ir/Parser.h"
#include "transform/Pipeline.h"

#include <gtest/gtest.h>

using namespace omega;
using namespace omega::transform;

namespace {

ir::ExecResult runProgram(const ir::Program &P,
                          std::map<std::string, int64_t> Symbols) {
  ir::ExecConfig Config;
  Config.Symbols = std::move(Symbols);
  return interpret(P, Config);
}

const ir::LoopInfo *loopNamed(const ir::AnalyzedProgram &AP,
                              const std::string &V) {
  for (const auto &L : AP.Loops)
    if (L->SourceVar == V)
      return L.get();
  return nullptr;
}

} // namespace

TEST(Apply, InterchangeSwapsHeaders) {
  ir::ParseResult PR = ir::parseProgram("for i := 1 to 3 do\n"
                                        "  for j := 5 to 9 do\n"
                                        "    a(i,j) := 0;\n"
                                        "  endfor\n"
                                        "endfor\n");
  ASSERT_TRUE(PR.ok());
  ASSERT_EQ(interchange(PR.Prog, "i", "j"), ApplyResult::Applied);
  const ir::ForStmt &Outer = PR.Prog.Body[0].asFor();
  EXPECT_EQ(Outer.Var, "j");
  EXPECT_EQ(Outer.Lo.toString(), "5");
  EXPECT_EQ(Outer.Body[0].asFor().Var, "i");
}

TEST(Apply, InterchangeRejectsImperfectNest) {
  ir::ParseResult PR = ir::parseProgram("for i := 1 to 3 do\n"
                                        "  x(i) := 0;\n"
                                        "  for j := 1 to 3 do\n"
                                        "    a(i,j) := 0;\n"
                                        "  endfor\n"
                                        "endfor\n");
  ASSERT_TRUE(PR.ok());
  EXPECT_EQ(interchange(PR.Prog, "i", "j"),
            ApplyResult::NotPerfectlyNested);
}

TEST(Apply, InterchangeRejectsTriangular) {
  ir::ParseResult PR = ir::parseProgram("for i := 1 to 5 do\n"
                                        "  for j := i to 5 do\n"
                                        "    a(i,j) := 0;\n"
                                        "  endfor\n"
                                        "endfor\n");
  ASSERT_TRUE(PR.ok());
  EXPECT_EQ(interchange(PR.Prog, "i", "j"),
            ApplyResult::BoundsDependOnOuter);
}

TEST(Apply, LegalInterchangePreservesSemantics) {
  // Wavefront: interchange is legal per the analysis; the final array
  // contents must be identical.
  const char *Src = "for i := 2 to 6 do\n"
                    "  for j := 2 to 6 do\n"
                    "    a(i,j) := a(i-1,j) + a(i,j-1) + 1;\n"
                    "  endfor\n"
                    "endfor\n";
  ir::AnalyzedProgram AP = ir::analyzeSource(Src);
  ASSERT_TRUE(AP.ok());
  analysis::AnalysisResult R = analysis::analyzeProgram(AP);
  ASSERT_TRUE(analysis::canInterchange(R, loopNamed(AP, "i"),
                                       loopNamed(AP, "j")));

  ir::ParseResult Before = ir::parseProgram(Src);
  ir::ParseResult After = ir::parseProgram(Src);
  ASSERT_EQ(interchange(After.Prog, "i", "j"), ApplyResult::Applied);

  ir::ExecResult RB = runProgram(Before.Prog, {});
  ir::ExecResult RA = runProgram(After.Prog, {});
  ASSERT_FALSE(RB.Failed);
  ASSERT_FALSE(RA.Failed);
  EXPECT_EQ(RB.FinalState, RA.FinalState);
}

TEST(Apply, IllegalInterchangeChangesSemantics) {
  // Anti-diagonal: (1,-1) dependence; the analysis rejects interchange,
  // and indeed swapping changes the final values.
  const char *Src = "for i := 2 to 6 do\n"
                    "  for j := 2 to 6 do\n"
                    "    a(i,j) := a(i-1,j+1) + 1;\n"
                    "  endfor\n"
                    "endfor\n";
  ir::AnalyzedProgram AP = ir::analyzeSource(Src);
  ASSERT_TRUE(AP.ok());
  analysis::AnalysisResult R = analysis::analyzeProgram(AP);
  EXPECT_FALSE(analysis::canInterchange(R, loopNamed(AP, "i"),
                                        loopNamed(AP, "j")));

  ir::ParseResult Before = ir::parseProgram(Src);
  ir::ParseResult After = ir::parseProgram(Src);
  ASSERT_EQ(interchange(After.Prog, "i", "j"), ApplyResult::Applied);

  ir::ExecResult RB = runProgram(Before.Prog, {});
  ir::ExecResult RA = runProgram(After.Prog, {});
  EXPECT_NE(RB.FinalState, RA.FinalState);
}

TEST(Apply, InterchangeAgreesWithAnalysisOnCorpusShapes) {
  // For a batch of rectangular 2-deep kernels: whenever the analysis says
  // interchange is legal and the shape admits a header swap, semantics
  // are preserved.
  const char *Sources[] = {
      "for i := 1 to 5 do\n  for j := 1 to 5 do\n"
      "    a(i,j) := a(i,j) + 1;\n  endfor\nendfor\n",
      "for i := 2 to 6 do\n  for j := 1 to 6 do\n"
      "    a(i,j) := a(i-1,j) + 2;\n  endfor\nendfor\n",
      "for i := 1 to 6 do\n  for j := 2 to 6 do\n"
      "    a(i,j) := a(i,j-1) + 3;\n  endfor\nendfor\n",
      "for i := 1 to 4 do\n  for j := 1 to 4 do\n"
      "    b(j,i) := a(i,j);\n  endfor\nendfor\n",
  };
  for (const char *Src : Sources) {
    ir::AnalyzedProgram AP = ir::analyzeSource(Src);
    ASSERT_TRUE(AP.ok()) << Src;
    analysis::AnalysisResult R = analysis::analyzeProgram(AP);
    if (!analysis::canInterchange(R, AP.Loops[0].get(), AP.Loops[1].get()))
      continue;
    ir::ParseResult Before = ir::parseProgram(Src);
    ir::ParseResult After = ir::parseProgram(Src);
    std::string OuterVar = After.Prog.Body[0].asFor().Var;
    std::string InnerVar =
        After.Prog.Body[0].asFor().Body[0].asFor().Var;
    if (interchange(After.Prog, OuterVar, InnerVar) != ApplyResult::Applied)
      continue;
    EXPECT_EQ(runProgram(Before.Prog, {}).FinalState,
              runProgram(After.Prog, {}).FinalState)
        << Src;
  }
}

TEST(Apply, ParallelScheduleAnnotatesDoallLoops) {
  ir::AnalyzedProgram AP = ir::analyzeSource("symbolic n, m;\n"
                                             "for L1 := 1 to n do\n"
                                             "  for L2 := 2 to m do\n"
                                             "    a(L2) := a(L2-1);\n"
                                             "  endfor\n"
                                             "endfor\n");
  ASSERT_TRUE(AP.ok());
  analysis::AnalysisResult R = analysis::analyzeProgram(AP);
  std::string Schedule = transform::renderParallelSchedule(AP, R);
  // Refinement leaves only storage traffic carried by L1: it runs in
  // parallel once the array is renamed; L2 stays serial.
  EXPECT_NE(Schedule.find("parallel(after renaming) for L1"),
            std::string::npos);
  EXPECT_EQ(Schedule.find("parallel for L2"), std::string::npos);
  EXPECT_EQ(Schedule.find("parallel(after renaming) for L2"),
            std::string::npos);
}

TEST(Apply, ParallelScheduleDistinguishesSameNameLoops) {
  // Two sibling loops named i: one parallel, one serial.
  ir::AnalyzedProgram AP = ir::analyzeSource("symbolic n;\n"
                                             "for i := 1 to n do\n"
                                             "  b(i) := a(i);\n"
                                             "endfor\n"
                                             "for i := 2 to n do\n"
                                             "  c(i) := c(i-1);\n"
                                             "endfor\n");
  ASSERT_TRUE(AP.ok());
  analysis::AnalysisResult R = analysis::analyzeProgram(AP);
  std::string Schedule = transform::renderParallelSchedule(AP, R);
  size_t First = Schedule.find("for i := 1");
  size_t Second = Schedule.find("for i := 2");
  ASSERT_NE(First, std::string::npos);
  ASSERT_NE(Second, std::string::npos);
  EXPECT_NE(Schedule.find("parallel for i := 1"), std::string::npos);
  EXPECT_EQ(Schedule.find("parallel for i := 2"), std::string::npos);
}

namespace {

/// Final memory minus the "@p" scratch arrays privatization introduces.
std::map<std::string, std::map<std::vector<int64_t>, int64_t>>
visibleState(const ir::ExecResult &R) {
  std::map<std::string, std::map<std::vector<int64_t>, int64_t>> Out;
  for (const auto &[Array, Cells] : R.FinalState)
    if (!isPipelineTempArray(Array))
      Out[Array] = Cells;
  return Out;
}

/// Applies every valid pipeline plan of \p Src and interprets original
/// vs staged, requiring identical visible final state. Returns the number
/// of plans executed.
unsigned checkPipelinedExecution(const std::string &Src,
                                 std::map<std::string, int64_t> Symbols,
                                 const analysis::DriverOptions &DOpts =
                                     analysis::DriverOptions()) {
  ir::AnalyzedProgram AP = ir::analyzeSource(Src);
  EXPECT_TRUE(AP.ok()) << Src;
  if (!AP.ok())
    return 0;
  analysis::AnalysisResult R = analysis::analyzeProgram(AP, DOpts);
  ir::ExecResult Base = runProgram(AP.Source, Symbols);
  EXPECT_FALSE(Base.Failed) << Base.Error;
  unsigned Applied = 0;
  for (const PipelineFacts &F : analyzePipelines(AP, R)) {
    if (!F.Plan.valid())
      continue;
    ir::Program Staged = AP.Source;
    EXPECT_EQ(applyPipeline(Staged, F.Plan), ApplyResult::Applied) << Src;
    ir::ExecResult After = runProgram(Staged, Symbols);
    EXPECT_FALSE(After.Failed) << After.Error;
    EXPECT_EQ(visibleState(Base), visibleState(After))
        << "staged schedule for loop " << F.Plan.Loop->SourceVar
        << " diverges:\n"
        << Src;
    ++Applied;
  }
  return Applied;
}

} // namespace

TEST(Apply, PipelineSchedulePreservesSemantics) {
  unsigned Plans =
      checkPipelinedExecution("symbolic n;\n"
                              "for i := 1 to n do\n"
                              "  s(0) := s(0) + a(i);\n"
                              "  t(0) := a(i-1) + a(i+1);\n"
                              "  b(i) := t(0) * t(0);\n"
                              "  d(0) := d(0) + b(i);\n"
                              "endfor\n",
                              {{"n", 6}});
  EXPECT_EQ(Plans, 1u);
}

TEST(Apply, PipelineLegalOnlyAfterKills) {
  // The staged schedule fissions reads of t away from its writes: legal
  // only because the Section 4 cover analysis proves the carried flow on
  // t dead and licenses privatization. The applied plan must both carry a
  // parallel stage and preserve semantics; the --no-cover world plans no
  // parallel stage at all.
  const char *Src = "symbolic n;\n"
                    "for i := 1 to n do\n"
                    "  t(0) := a(i-1) + a(i+1);\n"
                    "  b(i) := t(0) * t(0);\n"
                    "  d(0) := d(0) + b(i);\n"
                    "endfor\n";
  ir::AnalyzedProgram AP = ir::analyzeSource(Src);
  ASSERT_TRUE(AP.ok());
  analysis::AnalysisResult R = analysis::analyzeProgram(AP);
  std::vector<PipelineFacts> Facts = analyzePipelines(AP, R);
  ASSERT_EQ(Facts.size(), 1u);
  ASSERT_TRUE(Facts[0].Plan.valid());
  EXPECT_TRUE(Facts[0].Plan.hasParallelStage());
  EXPECT_EQ(Facts[0].Plan.PrivatizedArrays, std::vector<std::string>{"t"});
  EXPECT_EQ(checkPipelinedExecution(Src, {{"n", 5}}), 1u);

  analysis::DriverOptions NoCover;
  NoCover.Cover = false;
  NoCover.Kill = false;
  analysis::AnalysisResult RNC = analysis::analyzeProgram(AP, NoCover);
  for (const PipelineFacts &F : analyzePipelines(AP, RNC))
    EXPECT_FALSE(F.Plan.hasParallelStage());
  // Whatever the ablated world still plans must also execute correctly.
  checkPipelinedExecution(Src, {{"n", 5}}, NoCover);
}

TEST(Apply, PipelineStagedProgramUsesScratchArrays) {
  const char *Src = "symbolic n;\n"
                    "for i := 1 to n do\n"
                    "  t(0) := a(i-1) + a(i+1);\n"
                    "  b(i) := t(0) * t(0);\n"
                    "endfor\n";
  ir::AnalyzedProgram AP = ir::analyzeSource(Src);
  ASSERT_TRUE(AP.ok());
  analysis::AnalysisResult R = analysis::analyzeProgram(AP);
  std::vector<PipelineFacts> Facts = analyzePipelines(AP, R);
  ASSERT_EQ(Facts.size(), 1u);
  ASSERT_TRUE(Facts[0].Plan.valid());
  ir::Program Staged = AP.Source;
  ASSERT_EQ(applyPipeline(Staged, Facts[0].Plan), ApplyResult::Applied);
  std::string Text = Staged.toString();
  // The producer writes the renamed copy AND keeps the original store;
  // the consumer reads the renamed copy, indexed by the loop variable.
  EXPECT_NE(Text.find(std::string("t") + PipelineTempSuffix + "(i,0) :="),
            std::string::npos)
      << Text;
  EXPECT_NE(Text.find("t(0) :="), std::string::npos) << Text;
  EXPECT_NE(Text.find(std::string("t") + PipelineTempSuffix + "(i,0)*"),
            std::string::npos)
      << Text;
  EXPECT_TRUE(isPipelineTempArray(std::string("t") + PipelineTempSuffix));
  EXPECT_FALSE(isPipelineTempArray("t"));
}

TEST(Apply, PipelineRejectsBadPlans) {
  ir::AnalyzedProgram AP = ir::analyzeSource("symbolic n;\n"
                                             "for i := 1 to n do\n"
                                             "  a(i) := a(i-1);\n"
                                             "endfor\n");
  ASSERT_TRUE(AP.ok());
  PipelinePlan Empty;
  ir::Program P = AP.Source;
  EXPECT_EQ(applyPipeline(P, Empty), ApplyResult::BadPlan);
}
