//===- tests/SymbolicTest.cpp ---------------------------------------------===//
//
// Integration tests for the Section 5 symbolic analysis, validated
// against the paper's Examples 7 and 8.
//
//===----------------------------------------------------------------------===//

#include "symbolic/SymbolicAnalysis.h"

#include "kernels/Kernels.h"
#include "omega/Satisfiability.h"

#include <gtest/gtest.h>

using namespace omega;
using namespace omega::symbolic;
using omega::ir::Access;
using omega::ir::AnalyzedProgram;
using omega::ir::analyzeSource;

namespace {

const Access *findAccess(const AnalyzedProgram &AP, const std::string &Array,
                         bool IsWrite, const std::string &Text = "") {
  for (const Access &A : AP.Accesses)
    if (A.Array == Array && A.IsWrite == IsWrite &&
        (Text.empty() || A.Text == Text))
      return &A;
  return nullptr;
}

/// Does the condition admit an assignment pinning the named variables?
bool conditionAllows(const SymbolicCondition &C,
                     const std::vector<std::pair<std::string, int64_t>> &Pins) {
  if (C.Impossible)
    return false;
  Problem P = C.Condition;
  for (const auto &[Name, Value] : Pins) {
    VarId V = -1;
    for (VarId I = 0; I != static_cast<VarId>(P.getNumVars()); ++I)
      if (P.getVarName(I) == Name) {
        V = I;
        break;
      }
    if (V < 0)
      continue; // unconstrained symbol: any value fits
    P.addEQ({{V, 1}}, -Value);
  }
  return isSatisfiable(P);
}

AnalyzedProgram makeExample7() {
  return analyzeSource("symbolic n, m, x, y;\n"
                       "for L1 := x to n do\n"
                       "  for L2 := 1 to m do\n"
                       "    A(L1, L2) := A(L1 - x, y) + C(L1, L2);\n"
                       "  endfor\n"
                       "endfor\n");
}

AssertionDB makeExample7DB() {
  AssertionDB DB;
  DB.assumeInBounds();
  ArrayBounds AB;
  AB.Dims = {{SymExpr::constant(1), SymExpr::name("n")},
             {SymExpr::constant(1), SymExpr::name("m")}};
  DB.declareArrayBounds("A", AB);
  DB.declareArrayBounds("C", AB);
  DB.assertRelation(SymExpr::constant(50), SymRelation::Rel::LE,
                    SymExpr::name("n"));
  DB.assertRelation(SymExpr::name("n"), SymRelation::Rel::LE,
                    SymExpr::constant(100));
  return DB;
}

} // namespace

//===----------------------------------------------------------------------===//
// Example 7: conditions over scalar symbolic variables.
//===----------------------------------------------------------------------===//

TEST(Section5, Example7OuterCarriedCondition) {
  AnalyzedProgram AP = makeExample7();
  ASSERT_TRUE(AP.ok());
  const Access *W = findAccess(AP, "A", true);
  const Access *R = findAccess(AP, "A", false);
  ASSERT_TRUE(W && R);
  AssertionDB DB = makeExample7DB();

  // Restraint (+,*): carried by the outer loop. The paper's result:
  // the dependence exists iff 1 <= x <= 50.
  SymbolicCondition C =
      dependenceCondition(AP, *W, *R, /*Level=*/1, DB, {"x", "y", "m"});
  ASSERT_FALSE(C.Impossible);
  EXPECT_TRUE(conditionAllows(C, {{"x", 1}}));
  EXPECT_TRUE(conditionAllows(C, {{"x", 30}}));
  EXPECT_TRUE(conditionAllows(C, {{"x", 50}}));
  EXPECT_FALSE(conditionAllows(C, {{"x", 0}}));
  EXPECT_FALSE(conditionAllows(C, {{"x", 51}}));
  EXPECT_FALSE(conditionAllows(C, {{"x", -3}}));
}

TEST(Section5, Example7InnerCarriedCondition) {
  AnalyzedProgram AP = makeExample7();
  ASSERT_TRUE(AP.ok());
  const Access *W = findAccess(AP, "A", true);
  const Access *R = findAccess(AP, "A", false);
  AssertionDB DB = makeExample7DB();

  // Restraint (0,+): exists iff x == 0 and y < m.
  SymbolicCondition C =
      dependenceCondition(AP, *W, *R, /*Level=*/2, DB, {"x", "y", "m"});
  ASSERT_FALSE(C.Impossible);
  EXPECT_TRUE(conditionAllows(C, {{"x", 0}, {"y", 3}, {"m", 9}}));
  EXPECT_FALSE(conditionAllows(C, {{"x", 1}}));
  EXPECT_FALSE(conditionAllows(C, {{"x", 0}, {"y", 9}, {"m", 9}}));
}

TEST(Section5, Example7AssertionChangesAnswer) {
  AnalyzedProgram AP = makeExample7();
  const Access *W = findAccess(AP, "A", true);
  const Access *R = findAccess(AP, "A", false);
  AssertionDB DB = makeExample7DB();

  // Assert x > 50: the outer-carried dependence becomes impossible.
  DB.assertRelation(SymExpr::name("x"), SymRelation::Rel::GT,
                    SymExpr::constant(50));
  EXPECT_FALSE(dependencePossible(AP, *W, *R, 1, DB));

  // Assert 1 <= x <= 10 instead: it stays possible.
  AssertionDB DB2 = makeExample7DB();
  DB2.assertRelation(SymExpr::constant(1), SymRelation::Rel::LE,
                     SymExpr::name("x"));
  DB2.assertRelation(SymExpr::name("x"), SymRelation::Rel::LE,
                     SymExpr::constant(10));
  EXPECT_TRUE(dependencePossible(AP, *W, *R, 1, DB2));
}

//===----------------------------------------------------------------------===//
// Example 8: index arrays.
//===----------------------------------------------------------------------===//

namespace {

AnalyzedProgram makeExample8() {
  return analyzeSource("symbolic n;\n"
                       "for L1 := 1 to n do\n"
                       "  A(Q(L1)) := A(Q(L1 + 1) - 1) + C(L1);\n"
                       "endfor\n");
}

AssertionDB makeExample8DB() {
  AssertionDB DB;
  DB.assumeInBounds();
  ArrayBounds AB;
  AB.Dims = {{SymExpr::constant(1), SymExpr::name("n")}};
  DB.declareArrayBounds("A", AB);
  DB.declareArrayBounds("Q", AB);
  DB.declareArrayBounds("C", AB);
  return DB;
}

} // namespace

TEST(Section5, Example8OutputDepWithoutAssertions) {
  AnalyzedProgram AP = makeExample8();
  ASSERT_TRUE(AP.ok());
  const Access *W = findAccess(AP, "A", true);
  ASSERT_NE(W, nullptr);
  AssertionDB DB = makeExample8DB();
  // Nothing known about Q: the output dependence must be assumed.
  EXPECT_TRUE(dependencePossible(AP, *W, *W, 1, DB));
}

TEST(Section5, Example8PermutationKillsOutputDep) {
  AnalyzedProgram AP = makeExample8();
  const Access *W = findAccess(AP, "A", true);
  AssertionDB DB = makeExample8DB();
  DB.assertPermutation("Q");
  EXPECT_FALSE(dependencePossible(AP, *W, *W, 1, DB));
}

TEST(Section5, Example8QueryGenerated) {
  AnalyzedProgram AP = makeExample8();
  const Access *W = findAccess(AP, "A", true);
  AssertionDB DB = makeExample8DB();
  std::vector<UserQuery> Qs = generateQueries(AP, *W, *W, 1, DB);
  ASSERT_EQ(Qs.size(), 1u);
  EXPECT_EQ(Qs.front().Array, "Q");
  // The offending relation is Q[a] == Q[b] (up to orientation).
  EXPECT_NE(Qs.front().Offending.find("Q[a]"), std::string::npos);
  EXPECT_NE(Qs.front().Offending.find("Q[b]"), std::string::npos);
  EXPECT_NE(Qs.front().Text.find("never happens"), std::string::npos);
}

TEST(Section5, Example8FlowQueryGenerated) {
  AnalyzedProgram AP = makeExample8();
  const Access *W = findAccess(AP, "A", true);
  const Access *R = findAccess(AP, "A", false, "A(Q(L1+1)-1)");
  ASSERT_TRUE(W && R);
  AssertionDB DB = makeExample8DB();
  // Checking for a carried flow dependence produces the paper's second
  // query: can Q[a] == Q[b] - 1 happen?
  std::vector<UserQuery> Qs = generateQueries(AP, *W, *R, 1, DB);
  ASSERT_EQ(Qs.size(), 1u);
  EXPECT_NE(Qs.front().Offending.find("Q["), std::string::npos);
}

TEST(Section5, Example8IncreasingKillsFlowDep) {
  AnalyzedProgram AP = makeExample8();
  const Access *W = findAccess(AP, "A", true);
  const Access *R = findAccess(AP, "A", false, "A(Q(L1+1)-1)");
  ASSERT_TRUE(W && R);
  AssertionDB DB = makeExample8DB();
  EXPECT_TRUE(dependencePossible(AP, *W, *R, 1, DB));
  // "The user might tell us that the array is strictly increasing":
  // Q[a] == Q[b] - 1 needs b == a + 1, but the carried dependence has
  // b >= a + 2 and increasing arrays then give Q[b] - Q[a] >= 2.
  DB.assertStrictlyIncreasing("Q");
  EXPECT_FALSE(dependencePossible(AP, *W, *R, 1, DB));
}

TEST(Section5, Example8LoopIndependentFlowSurvivesIncreasing) {
  // The loop-independent "flow" from the write to the read of the same
  // statement instance does not exist (the read precedes the write), but
  // the anti direction does; sanity-check that symbolic analysis agrees
  // a loop-independent *anti* dependence is possible. Here Src must be
  // textually before Dst: read before write within the statement.
  AnalyzedProgram AP = makeExample8();
  const Access *W = findAccess(AP, "A", true);
  const Access *R = findAccess(AP, "A", false, "A(Q(L1+1)-1)");
  AssertionDB DB = makeExample8DB();
  // Write -> read loop-independent: textually impossible.
  EXPECT_FALSE(dependencePossible(AP, *W, *R, 0, DB));
  // Read -> write loop-independent (anti direction): Q[a]-1 == Q[a],
  // impossible regardless of assertions... actually requires
  // Q(L1+1)-1 == Q(L1) for the same L1, which unconstrained Q allows.
  EXPECT_TRUE(dependencePossible(AP, *R, *W, 0, DB));
  // With Q strictly increasing it stays possible: Q[b] - Q[a] >= b - a
  // gives Q[b]-1 >= Q[a] + b - a - 1 = Q[a] (b == a+1 here), and equality
  // Q[b]-1 == Q[a] is consistent.
  DB.assertStrictlyIncreasing("Q");
  EXPECT_TRUE(dependencePossible(AP, *R, *W, 0, DB));
}

//===----------------------------------------------------------------------===//
// Non-linear terms (Example 10 flavor).
//===----------------------------------------------------------------------===//

TEST(Section5, NonLinearTermTreatedAsOpaque) {
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := 1 to n do\n"
                                     "  for j := i to n do\n"
                                     "    A(i*j) := A(i*j) + 1;\n"
                                     "  endfor\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  const Access *W = findAccess(AP, "A", true);
  const Access *R = findAccess(AP, "A", false);
  AssertionDB DB;
  // Without any knowledge the dependence must be assumed possible.
  EXPECT_TRUE(dependencePossible(AP, *W, *R, 1, DB));
}

//===----------------------------------------------------------------------===//
// Example 9: array values in loop bounds.
//===----------------------------------------------------------------------===//

TEST(Section5, Example9IndexArrayBounds) {
  // for j := B(i) to B(i+1)-1 with body A(i,j) := 0: the bounds are
  // uninterpreted terms, yet the iteration space remains analyzable.
  // The subscript (i, j) includes both loop variables, so the write
  // never repeats a location: no self output dependence at any level,
  // regardless of B.
  AnalyzedProgram AP = analyzeSource(kernels::exampleIndexBounds());
  ASSERT_TRUE(AP.ok());
  const Access *W = findAccess(AP, "A", true);
  ASSERT_NE(W, nullptr);
  AssertionDB DB;
  EXPECT_FALSE(dependencePossible(AP, *W, *W, 1, DB));
  EXPECT_FALSE(dependencePossible(AP, *W, *W, 2, DB));
}

TEST(Section5, Example9FlattenedBoundsAssumeOverlap) {
  // With a 1-D (flattened) subscript A(j) the rows CAN overlap unless B
  // partitions them: the outer-carried output dependence is assumed.
  AnalyzedProgram AP = analyzeSource("symbolic maxB;\n"
                                     "for i := 1 to maxB do\n"
                                     "  for j := B(i) to B(i+1)-1 do\n"
                                     "    A(j) := 0;\n"
                                     "  endfor\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  const Access *W = findAccess(AP, "A", true);
  ASSERT_NE(W, nullptr);
  AssertionDB DB;
  EXPECT_TRUE(dependencePossible(AP, *W, *W, 1, DB));
  // Within one i the j loop never repeats a value:
  EXPECT_FALSE(dependencePossible(AP, *W, *W, 2, DB));
}

TEST(Section5, ScalarReadsNeverShareAcrossInstances) {
  // Regression for the mutable-term sharing bug: two instances of a read
  // of a written scalar must use distinct variables, so the dependence
  // cannot be disproven by accidental value sharing -- nor invented.
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := 1 to n do\n"
                                     "  a(k) := a(k) + 1;\n"
                                     "  k := a(i);\n" // not a recurrence
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  const Access *W = findAccess(AP, "a", true, "a(k)");
  ASSERT_NE(W, nullptr);
  AssertionDB DB;
  // k is arbitrary per iteration: the carried output dependence must be
  // assumed.
  EXPECT_TRUE(dependencePossible(AP, *W, *W, 1, DB));
}

TEST(Section5, ConditionIsTrueWhenUnconditional) {
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := 2 to n do\n"
                                     "  a(i) := a(i - 1);\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  const Access *W = findAccess(AP, "a", true);
  const Access *R = findAccess(AP, "a", false);
  AssertionDB DB;
  SymbolicCondition C = dependenceCondition(AP, *W, *R, 1, DB, {"n"});
  ASSERT_FALSE(C.Impossible);
  // Relative to the restraint's own context ("the loop iterates at least
  // twice", which already forces n >= 3), the dependence adds no new
  // condition: the gist is True.
  EXPECT_TRUE(C.isAlways());
}
