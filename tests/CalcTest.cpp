//===- tests/CalcTest.cpp -------------------------------------------------===//
//
// Tests for the omega-calc scripting surface.
//
//===----------------------------------------------------------------------===//

#include "calc/Calc.h"

#include "omega/Satisfiability.h"

#include <gtest/gtest.h>

using namespace omega;
using namespace omega::calc;

TEST(Calc, SatAndUnsat) {
  Calculator C;
  std::string Out = C.run("P := {[x] : 2 <= x && x <= 5};\n"
                          "sat P;\n"
                          "Q := {[x] : x <= 1 && x >= 3};\n"
                          "sat Q;\n");
  EXPECT_FALSE(C.hadError());
  EXPECT_NE(Out.find("P is satisfiable"), std::string::npos);
  EXPECT_NE(Out.find("Q is unsatisfiable"), std::string::npos);
}

TEST(Calc, IntegerExactness) {
  Calculator C;
  std::string Out = C.run("P := {[x] : 4 <= 3x && 3x <= 5};\n"
                          "sat P;\n");
  // 3x in [4,5] has no integer solution.
  EXPECT_NE(Out.find("P is unsatisfiable"), std::string::npos);
}

TEST(Calc, RelationChains) {
  Calculator C;
  C.run("P := {[i,j] : 1 <= i < j <= 4};");
  const NamedSet *P = C.lookup("P");
  ASSERT_NE(P, nullptr);
  // Chain lowers to 1<=i, i<j, j<=4.
  EXPECT_EQ(P->P.getNumConstraints(), 3u);
  EXPECT_TRUE(isSatisfiable(P->P));
}

TEST(Calc, ProjectionMatchesPaperExample) {
  Calculator C;
  std::string Out =
      C.run("S := {[a,b] : 0 <= a <= 5 && b < a && a <= 5b};\n"
            "project S onto [a];\n");
  EXPECT_FALSE(C.hadError());
  EXPECT_NE(Out.find("a >= 2"), std::string::npos);
  EXPECT_NE(Out.find("-a >= -5"), std::string::npos);
}

TEST(Calc, ExistsIntroducesStride) {
  Calculator C;
  std::string Out = C.run("E := {[x] : exists w : (x = 2w) && 1 <= x <= 8};\n"
                          "sat E;\n"
                          "O := {[x] : exists w : (x = 2w + 1) && x = 4};\n"
                          "sat O;\n");
  EXPECT_NE(Out.find("E is satisfiable"), std::string::npos);
  EXPECT_NE(Out.find("O is unsatisfiable"), std::string::npos);
}

TEST(Calc, IntersectionSharesSymbolics) {
  Calculator C;
  std::string Out = C.run("P := {[i] : 1 <= i <= n};\n"
                          "Q := {[i] : i >= n + 1};\n"
                          "R := P && Q;\n"
                          "sat R;\n");
  EXPECT_NE(Out.find("R is unsatisfiable"), std::string::npos);
}

TEST(Calc, GistDropsKnownInformation) {
  Calculator C;
  std::string Out = C.run("P := {[x] : 0 <= x <= 50};\n"
                          "Q := {[x] : 10 <= x};\n"
                          "gist P given Q;\n");
  EXPECT_EQ(Out.find("x >= 0"), std::string::npos);
  EXPECT_NE(Out.find("-x >= -50"), std::string::npos);
}

TEST(Calc, SolutionSatisfiesSet) {
  Calculator C;
  std::string Out = C.run("P := {[x,y] : x + y = 7 && 2 <= x <= 3};\n"
                          "solution P;\n");
  EXPECT_NE(Out.find("x=2"), std::string::npos);
  EXPECT_NE(Out.find("y=5"), std::string::npos);
}

TEST(Calc, SimplifyRemovesRedundancy) {
  Calculator C;
  std::string Out = C.run("P := {[x] : x >= 0 && x >= 2 && x <= 9};\n"
                          "simplify P;\n");
  EXPECT_EQ(Out.find("x >= 0"), std::string::npos);
  EXPECT_NE(Out.find("x >= 2"), std::string::npos);
}

TEST(Calc, ErrorsAreReportedAndRecovered) {
  Calculator C;
  std::string Out = C.run("sat NoSuchSet;\n"
                          "P := {[x] : x >= 1};\n"
                          "sat P;\n");
  EXPECT_TRUE(C.hadError());
  EXPECT_NE(Out.find("unknown set"), std::string::npos);
  EXPECT_NE(Out.find("P is satisfiable"), std::string::npos);
}

TEST(Calc, SyntaxErrorRecovery) {
  Calculator C;
  std::string Out = C.run("P := {[x] x >= 1};\n" // missing ':'
                          "Q := {[x] : x >= 1};\n"
                          "sat Q;\n");
  EXPECT_TRUE(C.hadError());
  EXPECT_NE(Out.find("Q is satisfiable"), std::string::npos);
}

TEST(Calc, IncompatibleTuplesRejected) {
  Calculator C;
  std::string Out = C.run("P := {[i] : i >= 0};\n"
                          "Q := {[i,j] : i >= 0};\n"
                          "R := P && Q;\n");
  EXPECT_TRUE(C.hadError());
  EXPECT_NE(Out.find("different tuples"), std::string::npos);
}

TEST(Calc, ApproxProjection) {
  Calculator C;
  std::string Out = C.run("S := {[x,y] : 3y <= x + 6 && x + 5 <= 3y};\n"
                          "approx S onto [x];\n");
  EXPECT_NE(Out.find("approx:"), std::string::npos);
  EXPECT_NE(Out.find("over-approximate"), std::string::npos);
}

TEST(Calc, CommentsIgnored) {
  Calculator C;
  std::string Out = C.run("# a comment\n"
                          "P := {[x] : x = 3}; # trailing\n"
                          "sat P;\n");
  EXPECT_FALSE(C.hadError());
  EXPECT_NE(Out.find("P is satisfiable"), std::string::npos);
}

TEST(Calc, NegativeCoefficients) {
  Calculator C;
  C.run("P := {[x,y] : -2x + 3y = 1 && -4 <= x <= 4 && -4 <= y <= 4};");
  const NamedSet *P = C.lookup("P");
  ASSERT_NE(P, nullptr);
  EXPECT_TRUE(isSatisfiable(P->P)); // x=1, y=1
}

TEST(Calc, RangeCommand) {
  Calculator C;
  std::string Out = C.run("P := {[x,y] : 2 <= x <= 9 && y = 2x};\n"
                          "range P [y];\n");
  EXPECT_FALSE(C.hadError());
  EXPECT_NE(Out.find("y in [4, 18]"), std::string::npos);
}

TEST(Calc, RangeUnboundedEnds) {
  Calculator C;
  std::string Out = C.run("P := {[x] : x >= 5};\n"
                          "range P [x];\n");
  EXPECT_NE(Out.find("x in [5, +inf]"), std::string::npos);
}

TEST(Calc, ToggleDirectives) {
  Calculator C;
  EXPECT_TRUE(C.context().PairQuickTests);
  EXPECT_TRUE(C.context().IncrementalSnapshots);
  std::string Out = C.run("quicktests off;\n"
                          "incremental off;\n");
  EXPECT_FALSE(C.hadError());
  EXPECT_NE(Out.find("quicktests off"), std::string::npos);
  EXPECT_NE(Out.find("incremental off"), std::string::npos);
  EXPECT_FALSE(C.context().PairQuickTests);
  EXPECT_FALSE(C.context().IncrementalSnapshots);
  C.run("quicktests on;\n"
        "incremental on;\n");
  EXPECT_TRUE(C.context().PairQuickTests);
  EXPECT_TRUE(C.context().IncrementalSnapshots);
}

TEST(Calc, ToggleDirectiveBadArgRecovers) {
  Calculator C;
  std::string Out = C.run("quicktests maybe;\n"
                          "P := {[x] : x = 1};\n"
                          "sat P;\n");
  EXPECT_TRUE(C.hadError());
  EXPECT_TRUE(C.context().PairQuickTests); // unchanged on error
  EXPECT_NE(Out.find("P is satisfiable"), std::string::npos);
}
