//===- tests/PairSolverDifferentialTest.cpp -------------------------------===//
//
// The incremental tiers (quick tests + elimination snapshots) must be
// invisible in the analysis results: for every program, the engine with
// both tiers on produces bit-identical dependence sets, distance ranges,
// liveness decisions, pair records, and kill records to the from-scratch
// engine with both tiers off. Checked over the whole kernel corpus and a
// batch of random programs (the RandomProgramTest generator's shapes:
// triangular bounds, strides, coupled subscripts).
//
//===----------------------------------------------------------------------===//

#include "engine/DependenceEngine.h"
#include "kernels/Kernels.h"

#include <gtest/gtest.h>

#include <random>
#include <string>

using namespace omega;

namespace {

std::string renderDeps(const std::vector<deps::Dependence> &Deps) {
  std::string Out;
  for (const deps::Dependence &D : Deps) {
    Out += D.Src->Text + " -> " + D.Dst->Text + " [" +
           deps::depKindName(D.Kind) + "]";
    if (D.Covers)
      Out += " covers";
    if (D.CoverLoopIndependent)
      Out += " li-cover";
    for (const deps::DepSplit &S : D.Splits) {
      Out += " L" + std::to_string(S.Level) + "(" + S.dirToString() + ")";
      if (S.Dead) {
        Out += "!";
        Out += S.DeadReason;
      }
      if (S.Refined)
        Out += "r";
    }
    Out += "\n";
  }
  return Out;
}

/// Everything the analysis decided, minus timings.
std::string renderResult(const engine::AnalysisResult &R) {
  std::string Out = renderDeps(R.Flow) + "--\n" + renderDeps(R.Anti) +
                    "--\n" + renderDeps(R.Output) + "--\n";
  for (const analysis::PairRecord &P : R.Pairs)
    Out += P.Write->Text + "/" + P.Read->Text + " flow=" +
           (P.HasFlow ? "1" : "0") + " general=" +
           (P.UsedGeneralTest ? "1" : "0") + " split=" +
           (P.SplitVectors ? "1" : "0") + "\n";
  Out += "--\n";
  for (const analysis::KillRecord &K : R.Kills)
    Out += K.From->Text + "/" + K.Killer->Text + "/" + K.To->Text +
           " omega=" + (K.UsedOmega ? "1" : "0") + " killed=" +
           (K.Killed ? "1" : "0") + "\n";
  return Out;
}

std::string analyzeAndRender(const ir::AnalyzedProgram &AP, bool Tiers) {
  engine::AnalysisRequest Req;
  Req.Jobs = 1;
  Req.UseQueryCache = false;
  Req.PairQuickTests = Tiers;
  Req.Incremental = Tiers;
  engine::DependenceEngine Engine(Req);
  return renderResult(Engine.analyze(AP));
}

/// Same program shapes as RandomProgramTest's generator, kept local so the
/// two fuzzers can drift independently.
class ProgramGenerator {
public:
  explicit ProgramGenerator(unsigned Seed) : Rng(Seed) {}

  std::string generate() {
    Src.clear();
    Loops.clear();
    NumArrays = pick(1, 2);
    openLoops(pick(1, 3));
    unsigned Stmts = pick(1, 3);
    for (unsigned I = 0; I != Stmts; ++I)
      emitAssignment();
    closeLoops();
    if (chance(2)) {
      openLoops(pick(1, 2));
      emitAssignment();
      closeLoops();
    }
    return Src;
  }

private:
  int64_t pick(int64_t Lo, int64_t Hi) {
    return std::uniform_int_distribution<int64_t>(Lo, Hi)(Rng);
  }
  bool chance(int OneIn) { return pick(1, OneIn) == 1; }

  void indent() { Src.append(Loops.size() * 2, ' '); }

  void openLoops(unsigned Depth) {
    for (unsigned D = 0; D != Depth; ++D) {
      std::string Var(1, static_cast<char>('i' + Loops.size()));
      indent();
      std::string Lo = std::to_string(pick(0, 2));
      if (!Loops.empty() && chance(3))
        Lo = Loops.back();
      std::string Hi = std::to_string(pick(4, 7));
      std::string Step = chance(4) ? " step 2" : "";
      Src += "for " + Var + " := " + Lo + " to " + Hi + Step + " do\n";
      Loops.push_back(Var);
    }
  }

  void closeLoops() {
    while (!Loops.empty()) {
      Loops.pop_back();
      indent();
      Src += "endfor\n";
    }
  }

  std::string affineSubscript() {
    std::string Out;
    bool Any = false;
    for (const std::string &Var : Loops) {
      int64_t C = pick(-1, 2);
      if (C == 0)
        continue;
      if (Any)
        Out += C < 0 ? " - " : " + ";
      else if (C < 0)
        Out += "-";
      if (C != 1 && C != -1)
        Out += std::to_string(C < 0 ? -C : C) + "*";
      Out += Var;
      Any = true;
    }
    int64_t K = pick(-2, 2);
    if (!Any)
      return std::to_string(K);
    if (K != 0)
      Out += (K < 0 ? " - " : " + ") + std::to_string(K < 0 ? -K : K);
    return Out;
  }

  std::string arrayRef(bool TwoDims) {
    std::string Name(1, static_cast<char>('a' + pick(0, NumArrays - 1)));
    std::string Out = Name + "(" + affineSubscript();
    if (TwoDims)
      Out += ", " + affineSubscript();
    Out += ")";
    return Out;
  }

  void emitAssignment() {
    indent();
    bool TwoDims = chance(3);
    Src += arrayRef(TwoDims) + " := ";
    unsigned Reads = pick(0, 2);
    for (unsigned I = 0; I != Reads; ++I)
      Src += arrayRef(TwoDims) + " + ";
    Src += std::to_string(pick(0, 9)) + ";\n";
  }

  std::mt19937 Rng;
  std::string Src;
  std::vector<std::string> Loops;
  unsigned NumArrays = 1;
};

} // namespace

TEST(PairSolverDifferential, CorpusResultsIdentical) {
  for (const kernels::Kernel &K : kernels::corpus()) {
    ir::AnalyzedProgram AP = ir::analyzeSource(K.Source);
    ASSERT_TRUE(AP.ok()) << K.Name;
    EXPECT_EQ(analyzeAndRender(AP, /*Tiers=*/true),
              analyzeAndRender(AP, /*Tiers=*/false))
        << K.Name;
  }
}

TEST(PairSolverDifferential, EachTierAloneIsInvisible) {
  auto render = [](const ir::AnalyzedProgram &AP, bool Quick, bool Inc) {
    engine::AnalysisRequest Req;
    Req.Jobs = 1;
    Req.UseQueryCache = false;
    Req.PairQuickTests = Quick;
    Req.Incremental = Inc;
    engine::DependenceEngine Engine(Req);
    return renderResult(Engine.analyze(AP));
  };
  for (const kernels::Kernel &K : kernels::corpus()) {
    ir::AnalyzedProgram AP = ir::analyzeSource(K.Source);
    ASSERT_TRUE(AP.ok()) << K.Name;
    std::string Base = render(AP, false, false);
    EXPECT_EQ(render(AP, true, false), Base) << K.Name << " (quick only)";
    EXPECT_EQ(render(AP, false, true), Base) << K.Name << " (snap only)";
  }
}

class PairSolverRandomDifferential
    : public ::testing::TestWithParam<unsigned> {};

TEST_P(PairSolverRandomDifferential, ResultsIdentical) {
  ProgramGenerator Gen(GetParam());
  for (unsigned T = 0; T != 10; ++T) {
    std::string Source = Gen.generate();
    ir::AnalyzedProgram AP = ir::analyzeSource(Source);
    ASSERT_TRUE(AP.ok()) << Source;
    ASSERT_EQ(analyzeAndRender(AP, /*Tiers=*/true),
              analyzeAndRender(AP, /*Tiers=*/false))
        << "failing program:\n"
        << Source;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PairSolverRandomDifferential,
                         ::testing::Values(21u, 22u, 23u, 24u, 25u, 26u, 27u,
                                           28u));
