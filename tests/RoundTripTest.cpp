//===- tests/RoundTripTest.cpp --------------------------------------------===//
//
// Printer/parser round-trip properties over the whole kernel corpus, and
// negative syntax coverage.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"

#include "ir/Sema.h"
#include "kernels/Kernels.h"

#include <gtest/gtest.h>

using namespace omega;
using namespace omega::ir;

TEST(RoundTrip, CorpusPrintParseFixpoint) {
  // parse -> print -> parse -> print must reach a fixpoint after one
  // round (the printer's output is canonical).
  for (const kernels::Kernel &K : kernels::corpus()) {
    ParseResult First = parseProgram(K.Source);
    ASSERT_TRUE(First.ok()) << K.Name;
    std::string Printed = First.Prog.toString();
    ParseResult Second = parseProgram(Printed);
    ASSERT_TRUE(Second.ok()) << K.Name << "\n" << Printed;
    EXPECT_EQ(Second.Prog.toString(), Printed) << K.Name;
  }
}

TEST(RoundTrip, ReparsedProgramsAnalyzeIdentically) {
  // The canonical form must carry the same accesses and loops.
  for (const kernels::Kernel &K : kernels::corpus()) {
    AnalyzedProgram A = analyzeSource(K.Source);
    ASSERT_TRUE(A.ok()) << K.Name;
    AnalyzedProgram B = analyzeSource(A.Source.toString());
    ASSERT_TRUE(B.ok()) << K.Name;
    ASSERT_EQ(A.Accesses.size(), B.Accesses.size()) << K.Name;
    ASSERT_EQ(A.Loops.size(), B.Loops.size()) << K.Name;
    for (unsigned I = 0; I != A.Accesses.size(); ++I) {
      EXPECT_EQ(A.Accesses[I].Array, B.Accesses[I].Array) << K.Name;
      EXPECT_EQ(A.Accesses[I].IsWrite, B.Accesses[I].IsWrite) << K.Name;
      EXPECT_EQ(A.Accesses[I].StmtLabel, B.Accesses[I].StmtLabel) << K.Name;
      EXPECT_EQ(A.Accesses[I].Subscripts.size(),
                B.Accesses[I].Subscripts.size())
          << K.Name;
    }
  }
}

//===----------------------------------------------------------------------===//
// Negative syntax coverage.
//===----------------------------------------------------------------------===//

namespace {

bool parses(const char *Src) { return parseProgram(Src).ok(); }

} // namespace

TEST(RoundTrip, RejectsMalformedSyntax) {
  EXPECT_FALSE(parses("for := 1 to 2 do a(1) := 0; endfor"));
  EXPECT_FALSE(parses("for i = 1 to 2 do a(1) := 0; endfor")); // '=' not ':='
  EXPECT_FALSE(parses("for i := 1 2 do a(1) := 0; endfor"));   // missing to
  EXPECT_FALSE(parses("a(1) := ;"));
  EXPECT_FALSE(parses("a(1) := 0"));    // missing ';'
  EXPECT_FALSE(parses("a(1 := 0;"));    // unclosed subscripts
  EXPECT_FALSE(parses("symbolic ;"));
  EXPECT_FALSE(parses("a(1) := (2 + ;"));
  EXPECT_FALSE(parses("for i := 1 to 2 step 0 do a(i) := 0; endfor"));
  EXPECT_FALSE(parses("endfor"));
  EXPECT_FALSE(parses("a(1) := 0; ?"));
}

TEST(RoundTrip, AcceptsEdgeSyntax) {
  EXPECT_TRUE(parses(""));
  EXPECT_TRUE(parses("# just a comment\n"));
  EXPECT_TRUE(parses("symbolic a, b, c;"));
  EXPECT_TRUE(parses("x := 1;")); // scalar, no parens
  EXPECT_TRUE(parses("a(0-1) := 0-2;"));
  EXPECT_TRUE(parses("a(-1) := -2;")); // unary minus
  EXPECT_TRUE(parses("for i := -3 to -1 do a(i) := 0; endfor"));
  EXPECT_TRUE(parses("a(((1))) := ((2));"));
  EXPECT_TRUE(parses("for i := min(1, 2) to max(3, n, m) do\n"
                     "  a(i) := 0;\nendfor"));
}

TEST(RoundTrip, SemaDiagnosticsCarryLocations) {
  AnalyzedProgram AP = analyzeSource("for i := 1 to 3 do\n"
                                     "  for i := 1 to 3 do\n"
                                     "    a(i) := 0;\n"
                                     "  endfor\n"
                                     "endfor\n");
  ASSERT_FALSE(AP.ok());
  EXPECT_EQ(AP.Diags.front().Loc.Line, 2u);
  EXPECT_NE(AP.Diags.front().toString().find("2:"), std::string::npos);
}
