//===- tests/CholskyTest.cpp ----------------------------------------------===//
//
// The paper's headline experiment: the live (Figure 3) and dead
// (Figure 4) flow dependences of the CHOLSKY NAS kernel. Every row of
// both figures must reproduce.
//
// Notes on representation differences:
//  * The paper squares A(L,JJ,J) with **2; our language reads it twice,
//    so rows mentioning that reference appear twice.
//  * Where the paper prints '*' our interval ranges are sometimes tighter
//    (e.g. 0+ instead of * in the killed (0,1,*,0) rows).
//  * A dependence that covers its read keeps its [C] tag even on rows
//    that die for another reason ([Cc] where the paper prints [c]).
//
//===----------------------------------------------------------------------===//

#include "analysis/Driver.h"

#include "kernels/Kernels.h"

#include <algorithm>
#include <gtest/gtest.h>

using namespace omega;
using namespace omega::analysis;

namespace {

struct Row {
  unsigned From;
  std::string FromText;
  unsigned To;
  std::string ToText;
  std::string Dir;
  std::string Status;

  bool operator<(const Row &O) const {
    return std::tie(From, FromText, To, ToText, Dir, Status) <
           std::tie(O.From, O.FromText, O.To, O.ToText, O.Dir, O.Status);
  }
  bool operator==(const Row &O) const {
    return std::tie(From, FromText, To, ToText, Dir, Status) ==
           std::tie(O.From, O.FromText, O.To, O.ToText, O.Dir, O.Status);
  }
};

std::vector<Row> collectRows(const AnalysisResult &R, bool Dead) {
  std::vector<Row> Rows;
  for (const deps::Dependence &D : R.Flow)
    for (const deps::DepSplit &S : D.Splits) {
      if (S.Dead != Dead)
        continue;
      std::string Status;
      if (D.Covers)
        Status += 'C';
      if (S.DeadReason == 'c')
        Status += 'c';
      if (S.DeadReason == 'k')
        Status += 'k';
      if (S.Refined)
        Status += 'r';
      Rows.push_back(Row{kernels::cholskyPaperLabel(D.Src->StmtLabel),
                         D.Src->Text,
                         kernels::cholskyPaperLabel(D.Dst->StmtLabel),
                         D.Dst->Text, S.dirToString(), Status});
    }
  std::sort(Rows.begin(), Rows.end());
  return Rows;
}

std::string renderRows(const std::vector<Row> &Rows) {
  std::string Out;
  for (const Row &R : Rows)
    Out += std::to_string(R.From) + ": " + R.FromText + " -> " +
           std::to_string(R.To) + ": " + R.ToText + " " + R.Dir + " [" +
           R.Status + "]\n";
  return Out;
}

class CholskyAnalysis : public ::testing::Test {
protected:
  static const AnalysisResult &result() {
    static ir::AnalyzedProgram AP = ir::analyzeSource(kernels::cholsky());
    static AnalysisResult R = analyzeProgram(AP);
    EXPECT_TRUE(AP.ok());
    return R;
  }
};

} // namespace

TEST_F(CholskyAnalysis, Figure3LiveFlowDependences) {
  std::vector<Row> Expected = {
      {3, "A(L,I,J)", 3, "A(L,I,J)", "(0,0,1,0)", "r"},
      {3, "A(L,I,J)", 2, "A(L,I,J)", "(0,0)", ""},
      {2, "A(L,I,J)", 3, "A(L,I+JJ,J)", "(0,+)", ""},
      {2, "A(L,I,J)", 3, "A(L,JJ,I+J)", "(+,*)", ""},
      {2, "A(L,I,J)", 5, "A(L,JJ,J)", "(0)", "C"},
      {2, "A(L,I,J)", 5, "A(L,JJ,J)", "(0)", "C"}, // **2 reads twice
      {2, "A(L,I,J)", 7, "A(L,-JJ,K+JJ)", "", "C"},
      {2, "A(L,I,J)", 6, "A(L,-JJ,N-K)", "", "C"},
      {4, "EPSS(L)", 1, "EPSS(L)", "(0)", "Cr"},
      {5, "A(L,0,J)", 5, "A(L,0,J)", "(0,1,0)", "r"},
      {5, "A(L,0,J)", 1, "A(L,0,J)", "(0)", ""},
      {1, "A(L,0,J)", 2, "A(L,0,I+J)", "(+)", ""},
      {1, "A(L,0,J)", 8, "A(L,0,K)", "", "C"},
      {1, "A(L,0,J)", 9, "A(L,0,N-K)", "", "C"},
      {8, "B(I,L,K)", 7, "B(I,L,K)", "(0,0)", "C"},
      {8, "B(I,L,K)", 9, "B(I,L,N-K)", "(0)", "C"},
      {8, "B(I,L,K)", 6, "B(I,L,N-K-JJ)", "(0)", "C"},
      {7, "B(I,L,K+JJ)", 8, "B(I,L,K)", "(0,1)", "r"},
      {7, "B(I,L,K+JJ)", 7, "B(I,L,K+JJ)", "(0,1,-1,0)", "r"},
      {9, "B(I,L,N-K)", 6, "B(I,L,N-K)", "(0,0)", "C"},
      {6, "B(I,L,N-K-JJ)", 9, "B(I,L,N-K)", "(0,1)", "r"},
      {6, "B(I,L,N-K-JJ)", 6, "B(I,L,N-K-JJ)", "(0,1,-1,0)", "r"},
  };
  std::sort(Expected.begin(), Expected.end());
  std::vector<Row> Actual = collectRows(result(), /*Dead=*/false);
  EXPECT_EQ(Actual, Expected) << "live rows:\n" << renderRows(Actual);
}

TEST_F(CholskyAnalysis, Figure4DeadFlowDependences) {
  std::vector<Row> Expected = {
      {3, "A(L,I,J)", 3, "A(L,I+JJ,J)", "(0,+,*,0)", "k"},
      {3, "A(L,I,J)", 3, "A(L,JJ,I+J)", "(+,*,*,0)", "k"},
      {3, "A(L,I,J)", 5, "A(L,JJ,J)", "(0)", "k"},
      {3, "A(L,I,J)", 5, "A(L,JJ,J)", "(0)", "k"}, // **2 reads twice
      {3, "A(L,I,J)", 7, "A(L,-JJ,K+JJ)", "", "k"},
      {3, "A(L,I,J)", 6, "A(L,-JJ,N-K)", "", "k"},
      {5, "A(L,0,J)", 2, "A(L,0,I+J)", "(+)", "k"},
      {5, "A(L,0,J)", 8, "A(L,0,K)", "", "k"},
      {5, "A(L,0,J)", 9, "A(L,0,N-K)", "", "k"},
      {8, "B(I,L,K)", 6, "B(I,L,N-K)", "(0)", "Cc"},
      // The paper prints (0,1,*,0); our range analysis tightens * to 0+.
      {7, "B(I,L,K+JJ)", 7, "B(I,L,K)", "(0,1,0+,0)", "kr"},
      {7, "B(I,L,K+JJ)", 9, "B(I,L,N-K)", "(0)", "k"},
      {7, "B(I,L,K+JJ)", 6, "B(I,L,N-K)", "(0)", "Cc"},
      {7, "B(I,L,K+JJ)", 6, "B(I,L,N-K-JJ)", "(0)", "k"},
      {6, "B(I,L,N-K-JJ)", 6, "B(I,L,N-K)", "(0,1,0+,0)", "kr"},
  };
  std::sort(Expected.begin(), Expected.end());
  std::vector<Row> Actual = collectRows(result(), /*Dead=*/true);
  EXPECT_EQ(Actual, Expected) << "dead rows:\n" << renderRows(Actual);
}

TEST_F(CholskyAnalysis, EveryKillResolvedOrRecorded) {
  const AnalysisResult &R = result();
  EXPECT_FALSE(R.Kills.empty());
  unsigned Quick = 0, General = 0;
  for (const KillRecord &K : R.Kills)
    (K.UsedOmega ? General : Quick)++;
  // The Section 4.5 quick tests resolve a good share of kill candidates
  // without consulting the Omega test.
  EXPECT_GT(Quick, 0u);
  EXPECT_GT(General, 0u);
}

TEST_F(CholskyAnalysis, PairRecordsCoverAllWriteReadPairs) {
  const AnalysisResult &R = result();
  // CHOLSKY has 10 writes (9 statements; EPSS, A, B arrays) and reads on
  // the same arrays; every same-array (write, read) pair is recorded.
  unsigned WithFlow = 0;
  for (const PairRecord &P : R.Pairs) {
    EXPECT_EQ(P.Write->Array, P.Read->Array);
    WithFlow += P.HasFlow;
  }
  EXPECT_EQ(R.Pairs.size(), 81u);
  EXPECT_EQ(WithFlow, 37u);
}

TEST_F(CholskyAnalysis, WholeProgramCounts) {
  const AnalysisResult &R = result();
  unsigned Live = 0, Dead = 0;
  for (const deps::Dependence &D : R.Flow)
    for (const deps::DepSplit &S : D.Splits)
      (S.Dead ? Dead : Live)++;
  EXPECT_EQ(Live, 22u);
  EXPECT_EQ(Dead, 15u);
}
