//===- tests/OracleTest.cpp -----------------------------------------------===//
//
// Unit tests for the oracle library itself: the bounded-model checkers
// on hand-built problems, generator determinism, the metamorphic
// transformations, the delta-debugging shrinkers, and the end-to-end
// "injected kill bug is caught and shrunk" demonstration documented in
// TESTING.md.
//
//===----------------------------------------------------------------------===//

#include "analysis/Driver.h"
#include "ir/Sema.h"
#include "omega/Satisfiability.h"
#include "oracle/CrossCheck.h"
#include "oracle/Generate.h"
#include "oracle/Metamorphic.h"
#include "oracle/ModelOracle.h"
#include "oracle/Shrink.h"
#include "oracle/TraceOracle.h"

#include <gtest/gtest.h>

#include <random>

using namespace omega;

namespace {

Problem boxed(std::initializer_list<std::pair<int64_t, int64_t>> Bounds) {
  Problem P;
  VarId V = 0;
  for (auto [Lo, Hi] : Bounds) {
    P.addVar("x" + std::to_string(V));
    P.addGEQ({{V, 1}}, -Lo);
    P.addGEQ({{V, -1}}, Hi);
    ++V;
  }
  return P;
}

} // namespace

//===----------------------------------------------------------------------===//
// Bounded-model checks on known problems
//===----------------------------------------------------------------------===//

TEST(ModelOracle, AgreesOnKnownProblems) {
  OmegaContext Ctx;
  OmegaContextScope Scope(Ctx);
  oracle::ModelReport Report;

  // Satisfiable: 2 <= x <= 5.
  Problem Sat = boxed({{2, 5}});
  oracle::checkSatisfiability(Sat, /*Box=*/8, Report, Ctx);

  // Unsatisfiable by integrality: 4 <= 3x <= 5.
  Problem Unsat = boxed({{-8, 8}});
  Unsat.addGEQ({{0, 3}}, -4);
  Unsat.addGEQ({{0, -3}}, 5);
  oracle::checkSatisfiability(Unsat, /*Box=*/8, Report, Ctx);

  // Projection of a coupled system.
  Problem Couple = boxed({{0, 6}, {0, 6}});
  Couple.addEQ({{0, 1}, {1, -2}}, 0); // x0 = 2 x1
  oracle::checkProjection(Couple, /*NumKeep=*/1, /*Box=*/6, Report, Ctx);

  // Gist and implication on nested intervals.
  Problem Inner = boxed({{2, 4}});
  Problem Outer = boxed({{0, 6}});
  oracle::checkGist(Inner, Outer, /*Box=*/8, Report, Ctx);
  oracle::checkImplication(Inner, Outer, /*Box=*/8, Report, Ctx);

  EXPECT_GT(Report.Checked, 0u);
  EXPECT_TRUE(Report.ok()) << Report.summary();
}

TEST(ModelOracle, BruteForceMatchesHandEvaluation) {
  Problem P = boxed({{1, 3}});
  EXPECT_TRUE(oracle::bruteForceSat(P, 4));
  P.addGEQ({{0, 1}}, -10); // x0 >= 10 contradicts x0 <= 3
  EXPECT_FALSE(oracle::bruteForceSat(P, 16));
}

//===----------------------------------------------------------------------===//
// Generators
//===----------------------------------------------------------------------===//

TEST(Generate, DeterministicForFixedSeed) {
  std::mt19937 A(99), B(99);
  oracle::RandomProblemConfig Cfg;
  Problem P1 = oracle::randomProblem(A, Cfg);
  Problem P2 = oracle::randomProblem(B, Cfg);
  EXPECT_EQ(P1.toString(), P2.toString());

  oracle::ProgramGenerator G1(7), G2(7);
  EXPECT_EQ(G1.generate(), G2.generate());
}

TEST(Generate, ProgramsAnalyzeAndProblemsStayBoxed) {
  std::mt19937 Rng(oracle::fuzzSeed(11));
  oracle::RandomProblemConfig Cfg;
  for (int I = 0; I != 20; ++I) {
    Problem P = oracle::randomProblem(Rng, Cfg);
    // Box bounds are the exactness contract of the bounded-model oracle:
    // brute force over the box must be decisive, i.e. any point found
    // inside [-Box, Box]^n is genuine and absence means UNSAT.
    for (VarId V = 0; V != static_cast<VarId>(P.getNumVars()); ++V)
      EXPECT_TRUE(P.involves(V)) << oracle::seedMessage(11);
  }
  oracle::ProgramGenerator Gen(oracle::fuzzSeed(11));
  for (int I = 0; I != 10; ++I) {
    std::string Src = Gen.generate();
    EXPECT_TRUE(ir::analyzeSource(Src).ok())
        << oracle::seedMessage(11) << "\n" << Src;
  }
}

//===----------------------------------------------------------------------===//
// Metamorphic transformations
//===----------------------------------------------------------------------===//

TEST(Metamorphic, TransformsPreserveSatisfiability) {
  OmegaContext Ctx;
  OmegaContextScope Scope(Ctx);
  std::mt19937 Rng(oracle::fuzzSeed(5));
  oracle::RandomProblemConfig Cfg;
  oracle::ModelReport Report;
  for (int I = 0; I != 25; ++I) {
    Problem P = oracle::randomProblem(Rng, Cfg);
    oracle::checkProblemMetamorphic(P, Rng, Report, Ctx);
  }
  EXPECT_GT(Report.Checked, 0u);
  EXPECT_TRUE(Report.ok()) << oracle::seedMessage(5) << "\n"
                           << Report.summary();
}

TEST(Metamorphic, WideningIsMonotoneOnRecurrence) {
  const char *Src = "for i := 1 to 4 do\n"
                    "  a(i) := a(i-1);\n"
                    "endfor\n";
  ir::AnalyzedProgram Narrow = ir::analyzeSource(Src);
  ASSERT_TRUE(Narrow.ok());
  std::optional<ir::Program> Wide = oracle::widenLoopBounds(Narrow.Source, 3);
  ASSERT_TRUE(Wide.has_value());
  ir::AnalyzedProgram WideAP = ir::analyze(*Wide);
  ASSERT_TRUE(WideAP.ok());
  oracle::ModelReport Report;
  oracle::checkWidenedMonotone(Narrow, WideAP, Report);
  EXPECT_GT(Report.Checked, 0u);
  EXPECT_TRUE(Report.ok()) << Report.summary();
}

TEST(Metamorphic, WideningRefusesDownwardLoops) {
  ir::AnalyzedProgram AP = ir::analyzeSource("for i := 4 to 1 step -1 do\n"
                                             "  a(i) := 0;\n"
                                             "endfor\n");
  ASSERT_TRUE(AP.ok());
  EXPECT_FALSE(oracle::widenLoopBounds(AP.Source, 2).has_value());
}

//===----------------------------------------------------------------------===//
// Shrinkers
//===----------------------------------------------------------------------===//

TEST(Shrink, ProblemDropsIrrelevantRows) {
  // Failure predicate: "contains the contradiction x0 >= 3 && x0 <= 1".
  Problem P = boxed({{0, 1}, {0, 6}});
  P.addGEQ({{0, 1}}, -3);
  P.addEQ({{1, 1}}, -2); // irrelevant to the contradiction
  OmegaContext Ctx;
  OmegaContextScope Scope(Ctx);
  auto StillFails = [&](const Problem &Cand) {
    return !isSatisfiable(Cand, SatOptions(), Ctx);
  };
  ASSERT_TRUE(StillFails(P));
  Problem Small = oracle::shrinkProblem(P, StillFails);
  EXPECT_TRUE(StillFails(Small));
  EXPECT_LT(Small.constraints().size(), P.constraints().size());
}

TEST(Shrink, ProgramShrinksToCore) {
  // Note: spelled exactly as ir::Program::toString renders (no spaces
  // around operators), since the shrinker re-renders every candidate and
  // the predicate matches on text.
  std::string Source = "for i := 0 to 5 do\n"
                       "  for j := 0 to 3 do\n"
                       "    b(j) := 7;\n"
                       "    a(i) := a(i)+1;\n"
                       "    c(i+j) := b(j);\n"
                       "  endfor\n"
                       "endfor\n";
  // Failure predicate: "statement a(i) := a(i)+1 still present and the
  // program still analyzes" -- everything else should shrink away.
  auto StillFails = [](const std::string &Cand) {
    return Cand.find("a(i)+1") != std::string::npos &&
           ir::analyzeSource(Cand).ok();
  };
  ASSERT_TRUE(StillFails(Source));
  std::string Small = oracle::shrinkProgramSource(Source, StillFails);
  EXPECT_TRUE(StillFails(Small));
  EXPECT_EQ(Small.find("b(j)"), std::string::npos) << Small;
  EXPECT_EQ(Small.find("c(i+j)"), std::string::npos) << Small;
  EXPECT_LT(oracle::lineCount(Small), oracle::lineCount(Source));
}

TEST(Shrink, CalcScriptRoundTrips) {
  Problem P = boxed({{0, 4}});
  P.addGEQ({{0, 2}}, -3); // 2 x0 >= 3
  std::string Script = oracle::problemToCalcScript(P);
  EXPECT_NE(Script.find("sat P;"), std::string::npos);
  EXPECT_NE(Script.find("solution P;"), std::string::npos);
  EXPECT_GE(oracle::lineCount(Script), 3u);
}

//===----------------------------------------------------------------------===//
// The documented oracle demonstration: an injected kill-analysis bug is
// caught by the trace oracle and shrinks to a tiny reproducer.
//===----------------------------------------------------------------------===//

namespace {

/// Simulates the TESTING.md mutation: the analysis marks every live flow
/// split as killed. Returns true when the trace oracle catches it.
bool buggyKillAnalysisCaught(const std::string &Source) {
  ir::AnalyzedProgram AP = ir::analyzeSource(Source);
  if (!AP.ok())
    return false;
  analysis::AnalysisResult R = analysis::analyzeProgram(AP);
  for (deps::Dependence &D : R.Flow)
    for (deps::DepSplit &S : D.Splits)
      if (!S.Dead) {
        S.Dead = true;
        S.DeadReason = 'k';
      }
  deps::DependenceAnalysis DA(AP);
  std::vector<deps::Dependence> UnrefinedFlow =
      DA.computeDependences(deps::DepKind::Flow);
  oracle::TraceReport Trace = oracle::checkTraceWitnesses(AP, R, UnrefinedFlow);
  return !Trace.ExecFailed && !Trace.Truncated && !Trace.Mismatches.empty();
}

} // namespace

TEST(InjectedBug, KillAnalysisBugIsCaughtAndShrunk) {
  // The simplest live flow there is: a written value read one iteration
  // later. Killing it must refuse a value witness.
  std::string Source = "for i := 1 to 4 do\n"
                       "  a(i) := a(i-1);\n"
                       "endfor\n";
  ASSERT_TRUE(buggyKillAnalysisCaught(Source));

  // And the correct analysis passes the same oracle.
  std::vector<std::string> Clean = oracle::crossCheckProgram(Source);
  EXPECT_TRUE(Clean.empty()) << Clean.front();

  // The shrinker keeps the catch while minimizing, and lands within the
  // acceptance bound.
  std::string Padded = "x(9) := 3;\n"
                       "for i := 1 to 4 do\n"
                       "  for j := 0 to 3 do\n"
                       "    b(j) := x(9);\n"
                       "    a(i) := a(i-1);\n"
                       "  endfor\n"
                       "endfor\n";
  ASSERT_TRUE(buggyKillAnalysisCaught(Padded));
  std::string Small =
      oracle::shrinkProgramSource(Padded, buggyKillAnalysisCaught);
  EXPECT_TRUE(buggyKillAnalysisCaught(Small));
  EXPECT_LE(oracle::lineCount(Small), 10u) << Small;
}
