//===- tests/EliminationTest.cpp ------------------------------------------===//
//
// Direct unit tests for the elimination internals: Fourier-Motzkin with
// real/dark shadows and splinters, equality elimination with mod-hat, and
// the elimination-cost heuristics.
//
//===----------------------------------------------------------------------===//

#include "omega/EqElimination.h"
#include "omega/FourierMotzkin.h"

#include "omega/Satisfiability.h"
#include "TestUtils.h"

#include <gtest/gtest.h>

using namespace omega;
using namespace omega::testutil;

//===----------------------------------------------------------------------===//
// Fourier-Motzkin
//===----------------------------------------------------------------------===//

TEST(FourierMotzkin, UnitCoefficientsAreExact) {
  Problem P;
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  P.addGEQ({{Y, 1}, {X, -1}}, 0);  // y >= x
  P.addGEQ({{Y, -1}}, 10);         // y <= 10
  FMResult R = fourierMotzkinEliminate(P, Y);
  EXPECT_TRUE(R.Exact);
  EXPECT_TRUE(R.Splinters.empty());
  // Combination: x <= 10.
  ASSERT_EQ(R.RealShadow.getNumConstraints(), 1u);
  EXPECT_EQ(R.RealShadow.constraints().front().getCoeff(X), -1);
}

TEST(FourierMotzkin, OneSidedBoundsDropCompletely) {
  Problem P;
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  P.addGEQ({{Y, 2}, {X, 1}}, 0); // only a lower bound on y
  P.addGEQ({{X, 1}}, -1);
  FMResult R = fourierMotzkinEliminate(P, Y);
  EXPECT_TRUE(R.Exact);
  EXPECT_EQ(R.RealShadow.getNumConstraints(), 1u); // just x >= 1
}

TEST(FourierMotzkin, DarkShadowTighterThanReal) {
  // 2y >= x and 3y <= x + 3: real shadow 3x <= 2x + 6 (x <= 6); dark
  // shadow subtracts (2-1)(3-1) = 2.
  Problem P;
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  P.addGEQ({{Y, 2}, {X, -1}}, 0);
  P.addGEQ({{Y, -3}, {X, 1}}, 3);
  FMResult R = fourierMotzkinEliminate(P, Y);
  EXPECT_FALSE(R.Exact);
  ASSERT_EQ(R.RealShadow.getNumConstraints(), 1u);
  ASSERT_EQ(R.DarkShadow.getNumConstraints(), 1u);
  int64_t RealConst = R.RealShadow.constraints().front().getConstant();
  int64_t DarkConst = R.DarkShadow.constraints().front().getConstant();
  EXPECT_EQ(RealConst - DarkConst, 2); // (a-1)(b-1)
}

TEST(FourierMotzkin, SplintersCarryEqualities) {
  Problem P;
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  P.addGEQ({{Y, 3}, {X, -1}}, -5);
  P.addGEQ({{Y, -2}, {X, 1}}, 7);
  FMResult R = fourierMotzkinEliminate(P, Y);
  EXPECT_FALSE(R.Exact);
  EXPECT_FALSE(R.Splinters.empty());
  for (const Problem &S : R.Splinters) {
    // Each splinter is the original plus one equality on Y.
    EXPECT_EQ(S.getNumConstraints(), P.getNumConstraints() + 1);
    EXPECT_EQ(S.getNumEQs(), 1u);
    EXPECT_TRUE(S.constraints().back().involves(Y));
  }
}

TEST(FourierMotzkin, UnionOfDarkAndSplintersIsExact) {
  // For every x: integer y with 3y in [x+5, x+6] exists iff x mod 3 != 2.
  Problem P;
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  P.addGEQ({{Y, 3}, {X, -1}}, -5);
  P.addGEQ({{Y, -3}, {X, 1}}, 6);
  FMResult R = fourierMotzkinEliminate(P, Y);
  for (int64_t V = -8; V <= 8; ++V) {
    bool Expected = ((V % 3) + 3) % 3 != 2;
    bool InUnion = false;
    Problem Dark = R.DarkShadow;
    Dark.addEQ({{X, 1}}, -V);
    InUnion |= isSatisfiable(std::move(Dark));
    for (const Problem &S : R.Splinters) {
      Problem Pinned = S;
      Pinned.addEQ({{X, 1}}, -V);
      InUnion |= isSatisfiable(std::move(Pinned));
    }
    EXPECT_EQ(InUnion, Expected) << "x = " << V;
    // And the real shadow over-approximates.
    Problem Real = R.RealShadow;
    Real.addEQ({{X, 1}}, -V);
    if (Expected)
      EXPECT_TRUE(isSatisfiable(std::move(Real)));
  }
}

TEST(FourierMotzkin, CostPrefersExactEliminations) {
  Problem P;
  VarId X = P.addVar("x"); // unit bounds: exact
  VarId Y = P.addVar("y"); // 2/3 coefficients: inexact
  P.addGEQ({{X, 1}, {Y, 2}}, 0);
  P.addGEQ({{X, -1}, {Y, -3}}, 10);
  FMCost CX = estimateEliminationCost(P, X);
  FMCost CY = estimateEliminationCost(P, Y);
  EXPECT_FALSE(CX.Inexact);
  EXPECT_TRUE(CY.Inexact);
  EXPECT_TRUE(CX < CY);
}

TEST(FourierMotzkin, RedTagsPropagateThroughCombination) {
  Problem P;
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  P.addGEQ({{Y, 1}, {X, -1}}, 0, /*Red=*/true);
  P.addGEQ({{Y, -1}}, 10, /*Red=*/false);
  FMResult R = fourierMotzkinEliminate(P, Y);
  ASSERT_EQ(R.RealShadow.getNumConstraints(), 1u);
  EXPECT_TRUE(R.RealShadow.constraints().front().isRed());
}

//===----------------------------------------------------------------------===//
// Equality elimination
//===----------------------------------------------------------------------===//

TEST(EqElimination, UnitSubstitution) {
  Problem P;
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  P.addEQ({{X, 1}, {Y, -2}}, -3); // x == 2y + 3
  P.addGEQ({{X, 1}}, 0);          // x >= 0
  ASSERT_EQ(solveEqualities(P), SolveResult::Ok);
  EXPECT_EQ(P.getNumEQs(), 0u);
  EXPECT_TRUE(P.isDead(X));
  // The inequality became 2y + 3 >= 0, i.e. y >= -1 after tightening.
  ASSERT_EQ(P.getNumConstraints(), 1u);
  EXPECT_EQ(P.constraints().front().getCoeff(Y), 1);
  EXPECT_EQ(P.constraints().front().getConstant(), 1);
}

TEST(EqElimination, ModHatIntroducesWildcard) {
  Problem P;
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  P.addEQ({{X, 3}, {Y, 5}}, -1); // 3x + 5y == 1
  unsigned Before = P.getNumVars();
  ASSERT_EQ(solveEqualities(P), SolveResult::Ok);
  EXPECT_EQ(P.getNumEQs(), 0u);
  EXPECT_GT(P.getNumVars(), Before); // sigma wildcards were minted
}

TEST(EqElimination, DetectsGcdInfeasibility) {
  Problem P;
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  P.addEQ({{X, 6}, {Y, 10}}, -1); // gcd 2 does not divide 1
  EXPECT_EQ(solveEqualities(P), SolveResult::False);
}

TEST(EqElimination, ProtectedVariablesSurvive) {
  Problem P;
  VarId X = P.addVar("x"); // protected
  VarId W = P.addVar("w", /*Protected=*/false);
  P.addEQ({{X, 1}, {W, -2}}, 0); // x == 2w: a stride on x
  auto OnlyWildcards = [&P](VarId V) { return !P.isProtected(V); };
  ASSERT_EQ(solveEqualities(P, OnlyWildcards), SolveResult::Ok);
  // The equality must survive as a residual (w has no unit path that
  // eliminates it without touching x).
  EXPECT_EQ(P.getNumEQs(), 1u);
  EXPECT_FALSE(P.isDead(X));
}

TEST(EqElimination, ChainedSubstitutions) {
  Problem P;
  VarId A = P.addVar("a");
  VarId B = P.addVar("b");
  VarId C = P.addVar("c");
  P.addEQ({{A, 1}, {B, -1}}, 0);
  P.addEQ({{B, 1}, {C, -1}}, 0);
  P.addGEQ({{A, 1}}, -4); // a >= 4
  P.addGEQ({{C, -1}}, 9); // c <= 9
  ASSERT_EQ(solveEqualities(P), SolveResult::Ok);
  EXPECT_EQ(P.getNumEQs(), 0u);
  EXPECT_TRUE(isSatisfiable(P));
}

TEST(EqEliminationProperty, PreservesSatisfiability) {
  std::mt19937 Rng(2024);
  RandomProblemConfig Cfg;
  Cfg.NumVars = 3;
  Cfg.NumEQs = 2;
  Cfg.NumGEQs = 2;
  for (unsigned T = 0; T != 200; ++T) {
    Problem P = randomProblem(Rng, Cfg);
    bool Before = bruteForceSat(P, -Cfg.Box, Cfg.Box);
    Problem Q = P;
    SolveResult R = solveEqualities(Q);
    if (R == SolveResult::False) {
      EXPECT_FALSE(Before) << P.toString();
      continue;
    }
    EXPECT_EQ(isSatisfiable(Q), Before) << P.toString();
  }
}

TEST(EqEliminationProperty, RemovesAllEqualitiesWhenUnrestricted) {
  std::mt19937 Rng(2025);
  RandomProblemConfig Cfg;
  Cfg.NumVars = 4;
  Cfg.NumEQs = 3;
  Cfg.NumGEQs = 1;
  for (unsigned T = 0; T != 200; ++T) {
    Problem P = randomProblem(Rng, Cfg);
    if (solveEqualities(P) == SolveResult::Ok)
      EXPECT_EQ(P.getNumEQs(), 0u) << P.toString();
  }
}
