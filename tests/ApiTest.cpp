//===- tests/ApiTest.cpp - The shared option/response surface -------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
// The api layer's contract: one option table drives the CLI parser, the
// JSON request parser, and the help text (spellings can never drift); the
// response document is schema 4 with a deterministic "result" section.
//
//===----------------------------------------------------------------------===//

#include "api/Json.h"
#include "api/Options.h"
#include "api/Response.h"
#include "kernels/Kernels.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

using namespace omega;
using namespace omega::api;

namespace {

ParsedArgs parsed(std::vector<std::string> Args, unsigned Tool) {
  ParsedArgs Out;
  std::string Err;
  EXPECT_TRUE(parseArgs(Args, Tool, Out, Err)) << Err;
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Option table
//===----------------------------------------------------------------------===//

TEST(ApiOptions, DefaultsMatchStruct) {
  AnalysisOptions O;
  EXPECT_TRUE(O.Refine);
  EXPECT_TRUE(O.Cover);
  EXPECT_TRUE(O.Kill);
  EXPECT_TRUE(O.QuickTests);
  EXPECT_FALSE(O.Terminate);
  EXPECT_TRUE(O.PairQuickTests);
  EXPECT_TRUE(O.Incremental);
  EXPECT_TRUE(O.ShareSnapshots);
  EXPECT_EQ(O.Jobs, 1u);
  EXPECT_TRUE(O.UseQueryCache);

  engine::AnalysisRequest R = O.toEngineRequest();
  EXPECT_TRUE(R.Refine);
  EXPECT_TRUE(R.PairQuickTests);
  EXPECT_TRUE(R.Incremental);
  EXPECT_TRUE(R.ShareSnapshots);
  EXPECT_EQ(R.Jobs, 1u);
}

TEST(ApiOptions, TableHasUniqueSpellings) {
  std::set<std::string> Flags, JsonKeys;
  for (const OptionSpec &S : optionSpecs()) {
    EXPECT_TRUE(Flags.insert(S.Flag).second) << "duplicate flag " << S.Flag;
    if (S.JsonKey)
      EXPECT_TRUE(JsonKeys.insert(S.JsonKey).second)
          << "duplicate JSON key " << S.JsonKey;
    EXPECT_NE(S.Tools & (ToolAnalyze | ToolCalc | ToolServe), 0u) << S.Flag;
    EXPECT_NE(S.Help, nullptr) << S.Flag;
  }
}

TEST(ApiOptions, CliFlagsApply) {
  ParsedArgs P = parsed({"--jobs", "8", "--no-quicktests", "--no-incremental",
                         "--no-snapshot-sharing", "--no-cache", "--json",
                         "--terminate", "--cache-file=/tmp/x.qc", "input.tiny"},
                        ToolAnalyze);
  EXPECT_EQ(P.Options.Jobs, 8u);
  EXPECT_FALSE(P.Options.PairQuickTests);
  EXPECT_FALSE(P.Options.Incremental);
  EXPECT_FALSE(P.Options.ShareSnapshots);
  EXPECT_FALSE(P.Options.UseQueryCache);
  EXPECT_TRUE(P.Options.Json);
  EXPECT_TRUE(P.Options.Terminate);
  EXPECT_EQ(P.Options.CacheFile, "/tmp/x.qc");
  ASSERT_EQ(P.Rest.size(), 1u);
  EXPECT_EQ(P.Rest[0], "input.tiny");
}

TEST(ApiOptions, EqualsAndSpaceValuesAgree) {
  ParsedArgs A = parsed({"--jobs=4"}, ToolAnalyze);
  ParsedArgs B = parsed({"--jobs", "4"}, ToolAnalyze);
  EXPECT_EQ(A.Options.Jobs, B.Options.Jobs);
  EXPECT_EQ(A.Options.Jobs, 4u);
}

TEST(ApiOptions, ProfileSelector) {
  EXPECT_EQ(parsed({"--profile"}, ToolAnalyze).Options.Profile,
            AnalysisOptions::ProfileText);
  EXPECT_EQ(parsed({"--profile=json"}, ToolAnalyze).Options.Profile,
            AnalysisOptions::ProfileJson);
}

TEST(ApiOptions, ToolScopingRoutesUnknownFlagsToRest) {
  // --socket is serve-only: the analyze parser passes it through.
  ParsedArgs P = parsed({"--socket", "/tmp/s"}, ToolAnalyze);
  ASSERT_EQ(P.Rest.size(), 2u);
  EXPECT_EQ(P.Rest[0], "--socket");

  ParsedArgs S = parsed({"--socket", "/tmp/s", "--workers", "9"}, ToolServe);
  EXPECT_EQ(S.Options.SocketPath, "/tmp/s");
  EXPECT_EQ(S.Options.ServeWorkers, 9u);
  EXPECT_TRUE(S.Rest.empty());

  // The calc surface is just the ablations.
  ParsedArgs C = parsed({"--no-quicktests", "script.calc"}, ToolCalc);
  EXPECT_FALSE(C.Options.PairQuickTests);
  ASSERT_EQ(C.Rest.size(), 1u);
}

TEST(ApiOptions, MalformedValuesAreRejected) {
  ParsedArgs Out;
  std::string Err;
  EXPECT_FALSE(parseArgs({"--jobs", "lots"}, ToolAnalyze, Out, Err));
  EXPECT_FALSE(Err.empty());
  EXPECT_FALSE(parseArgs({"--jobs"}, ToolAnalyze, Out, Err));
  EXPECT_FALSE(parseArgs({"--workers", "0"}, ToolServe, Out, Err));
  EXPECT_FALSE(parseArgs({"--all=yes"}, ToolAnalyze, Out, Err));
}

TEST(ApiOptions, PipelineFlagAndJsonKeyAgree) {
  EXPECT_FALSE(AnalysisOptions().Pipeline);
  EXPECT_TRUE(parsed({"--pipeline"}, ToolAnalyze).Options.Pipeline);

  AnalysisOptions FromJson;
  std::string Err;
  json::Value V;
  ASSERT_TRUE(json::parse("{\"pipeline\": true}", V, Err)) << Err;
  ASSERT_TRUE(optionsFromJson(V, FromJson, Err)) << Err;
  EXPECT_TRUE(FromJson.Pipeline);
}

TEST(ApiOptions, LatencyBucketsParseAndValidate) {
  ParsedArgs P =
      parsed({"--latency-buckets-us", "50,500,5000"}, ToolServe);
  EXPECT_EQ(P.Options.LatencyBucketsUs,
            (std::vector<uint64_t>{50, 500, 5000}));
  EXPECT_TRUE(parsed({}, ToolServe).Options.LatencyBucketsUs.empty());

  ParsedArgs Out;
  std::string Err;
  EXPECT_FALSE(
      parseArgs({"--latency-buckets-us", "100,100"}, ToolServe, Out, Err));
  EXPECT_NE(Err.find("strictly increasing"), std::string::npos);
  EXPECT_FALSE(
      parseArgs({"--latency-buckets-us", "500,100"}, ToolServe, Out, Err));
  EXPECT_FALSE(
      parseArgs({"--latency-buckets-us", "1,,2"}, ToolServe, Out, Err));
  EXPECT_FALSE(
      parseArgs({"--latency-buckets-us", "abc"}, ToolServe, Out, Err));
}

TEST(ApiOptions, HelpTextCoversEveryToolFlag) {
  for (unsigned Tool : {unsigned(ToolAnalyze), unsigned(ToolCalc),
                        unsigned(ToolServe)}) {
    std::string Help = optionsHelp(Tool);
    for (const OptionSpec &S : optionSpecs()) {
      bool Applies = (S.Tools & Tool) != 0;
      // Match the flag at a token boundary (space, or '[' for the
      // --profile[=json] spelling) so --no-quick does not count as present
      // just because --no-quicktests is.
      bool Found = false;
      for (std::size_t At = Help.find(S.Flag); At != std::string::npos;
           At = Help.find(S.Flag, At + 1)) {
        char Next = Help[At + std::string(S.Flag).size()];
        if (Next == ' ' || Next == '[') {
          Found = true;
          break;
        }
      }
      EXPECT_EQ(Found, Applies) << "tool " << Tool << " flag " << S.Flag;
    }
  }
}

TEST(ApiOptions, JsonOptionsShareTheTable) {
  json::Value Obj;
  std::string Err;
  ASSERT_TRUE(json::parse("{\"jobs\": 6, \"refine\": false, "
                          "\"quicktests\": false, \"snapshotSharing\": false}",
                          Obj, Err))
      << Err;
  AnalysisOptions O;
  ASSERT_TRUE(optionsFromJson(Obj, O, Err)) << Err;
  EXPECT_EQ(O.Jobs, 6u);
  EXPECT_FALSE(O.Refine);
  EXPECT_FALSE(O.PairQuickTests);
  EXPECT_FALSE(O.ShareSnapshots);

  // Unknown keys and mistyped values are hard errors, not silent noise.
  ASSERT_TRUE(json::parse("{\"refinement\": false}", Obj, Err));
  EXPECT_FALSE(optionsFromJson(Obj, O, Err));
  ASSERT_TRUE(json::parse("{\"jobs\": \"many\"}", Obj, Err));
  EXPECT_FALSE(optionsFromJson(Obj, O, Err));
  ASSERT_TRUE(json::parse("{\"jobs\": -2}", Obj, Err));
  EXPECT_FALSE(optionsFromJson(Obj, O, Err));
}

//===----------------------------------------------------------------------===//
// JSON reader
//===----------------------------------------------------------------------===//

TEST(ApiJson, ParsesTheProtocolSubset) {
  json::Value V;
  std::string Err;
  ASSERT_TRUE(json::parse("{\"id\": 3, \"nested\": {\"a\": [1, 2.5, -4]}, "
                          "\"t\": true, \"n\": null, \"s\": \"x\\n\\\"y\"}",
                          V, Err))
      << Err;
  EXPECT_EQ(V.get("id")->asInt(), 3);
  EXPECT_EQ(V.get("nested")->get("a")->asArray().size(), 3u);
  EXPECT_DOUBLE_EQ(V.get("nested")->get("a")->asArray()[1].asNumber(), 2.5);
  EXPECT_TRUE(V.get("t")->asBool());
  EXPECT_TRUE(V.get("n")->isNull());
  EXPECT_EQ(V.get("s")->asString(), "x\n\"y");
  EXPECT_EQ(V.get("missing"), nullptr);
}

TEST(ApiJson, RejectsMalformedDocuments) {
  json::Value V;
  std::string Err;
  for (const char *Bad :
       {"", "{", "{\"a\": }", "{\"a\": 1,}", "[1 2]", "{\"a\": 1} trailing",
        "\"unterminated", "{\"a\": 01}", "nul"}) {
    EXPECT_FALSE(json::parse(Bad, V, Err)) << Bad;
    EXPECT_FALSE(Err.empty()) << Bad;
  }
}

TEST(ApiJson, EscapeRoundTripsThroughParse) {
  std::string Nasty = "quote\" slash\\ newline\n tab\t ctrl\x01 end";
  json::Value V;
  std::string Err;
  ASSERT_TRUE(json::parse("{\"s\": \"" + json::escape(Nasty) + "\"}", V, Err))
      << Err;
  EXPECT_EQ(V.get("s")->asString(), Nasty);
}

//===----------------------------------------------------------------------===//
// Response documents
//===----------------------------------------------------------------------===//

TEST(ApiResponse, DocumentsAreSchema3AndParse) {
  ir::AnalyzedProgram AP = ir::analyzeSource(kernels::example1());
  ASSERT_TRUE(AP.ok());
  engine::DependenceEngine Engine((engine::AnalysisRequest()));
  engine::AnalysisResult R = Engine.analyze(AP);

  std::string Doc = renderDocument(renderResult(R),
                                   renderMetrics(R, 1, 1.25, "", ""));
  ASSERT_FALSE(Doc.empty());
  EXPECT_EQ(Doc.back(), '\n');

  json::Value V;
  std::string Err;
  ASSERT_TRUE(json::parse(Doc, V, Err)) << Err;
  EXPECT_EQ(V.get("schema")->asInt(), SchemaVersion);
  EXPECT_EQ(SchemaVersion, 4);
  EXPECT_TRUE(V.get("ok")->asBool());
  ASSERT_NE(V.get("result"), nullptr);
  ASSERT_NE(V.get("metrics"), nullptr);

  // The result section is structural only -- no timing keys anywhere.
  EXPECT_EQ(Doc.find("Secs"), std::string::npos);
  EXPECT_EQ(renderResult(R).find("wallMs"), std::string::npos);

  // Metrics carry the run profile: jobs, wall clock, stats, cache.
  const json::Value *M = V.get("metrics");
  EXPECT_EQ(M->get("jobs")->asInt(), 1);
  EXPECT_DOUBLE_EQ(M->get("wallMs")->asNumber(), 1.25);
  ASSERT_NE(M->get("stats"), nullptr);
  ASSERT_NE(M->get("stats")->get("snapshotCacheHits"), nullptr);
  ASSERT_NE(M->get("cache"), nullptr);
}

TEST(ApiResponse, ResultIsDeterministicAcrossJobsAndCache) {
  ir::AnalyzedProgram AP = ir::analyzeSource(kernels::example1());
  ASSERT_TRUE(AP.ok());
  std::string Reference;
  for (unsigned Jobs : {1u, 4u})
    for (bool Cache : {false, true}) {
      engine::AnalysisRequest Req;
      Req.Jobs = Jobs;
      Req.UseQueryCache = Cache;
      engine::DependenceEngine Engine(Req);
      std::string Bytes = renderResult(Engine.analyze(AP));
      if (Reference.empty())
        Reference = Bytes;
      EXPECT_EQ(Bytes, Reference) << "jobs " << Jobs << " cache " << Cache;
    }
}

TEST(ApiResponse, ServerVariantsCarryIdAndTypedErrors) {
  std::string Ok = renderServerOk(7, "{}", "{}");
  EXPECT_NE(Ok.find("\"schema\": 4"), std::string::npos);
  EXPECT_NE(Ok.find("\"id\": 7"), std::string::npos);
  EXPECT_NE(Ok.find("\"ok\": true"), std::string::npos);

  json::Value V;
  std::string Err;
  ASSERT_TRUE(json::parse(
      renderServerError(false, 0, "overloaded", "queue \"full\""), V, Err))
      << Err;
  EXPECT_TRUE(V.get("id")->isNull());
  EXPECT_FALSE(V.get("ok")->asBool());
  EXPECT_EQ(V.get("error")->get("code")->asString(), "overloaded");
  EXPECT_EQ(V.get("error")->get("message")->asString(), "queue \"full\"");
}
