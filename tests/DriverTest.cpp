//===- tests/DriverTest.cpp -----------------------------------------------===//
//
// Unit tests for the whole-program driver's bookkeeping: pair records,
// kill records, table rendering, option toggles, and the Omega-test
// statistics counters the benchmarks rely on.
//
//===----------------------------------------------------------------------===//

#include "analysis/Driver.h"

#include "kernels/Kernels.h"
#include "omega/OmegaContext.h"
#include "omega/Satisfiability.h"

#include <gtest/gtest.h>

using namespace omega;
using namespace omega::analysis;
using omega::ir::analyzeSource;

TEST(Driver, PairRecordsEnumerateSameArrayPairs) {
  ir::AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                         "for i := 1 to n do\n"
                                         "  a(i) := a(i-1);\n"
                                         "  b(i) := b(i) + a(i);\n"
                                         "endfor\n");
  ASSERT_TRUE(AP.ok());
  AnalysisResult R = analyzeProgram(AP);
  // Writes: a(i), b(i). Reads: a(i-1), b(i), a(i).
  // Same-array pairs: a-write x {a(i-1), a(i)} = 2; b-write x {b(i)} = 1.
  EXPECT_EQ(R.Pairs.size(), 3u);
  for (const PairRecord &P : R.Pairs) {
    EXPECT_EQ(P.Write->Array, P.Read->Array);
    EXPECT_GE(P.ExtendedSecs, P.StandardSecs);
  }
}

TEST(Driver, OptionsDisableStages) {
  ir::AnalyzedProgram AP = analyzeSource(kernels::example1());
  ASSERT_TRUE(AP.ok());

  DriverOptions NoKill;
  NoKill.Kill = false;
  AnalysisResult R = analyzeProgram(AP, NoKill);
  EXPECT_TRUE(R.Kills.empty());
  for (const deps::Dependence &D : R.Flow)
    EXPECT_FALSE(D.allDead());

  DriverOptions NoCover;
  NoCover.Cover = false;
  AnalysisResult R2 = analyzeProgram(AP, NoCover);
  for (const deps::Dependence &D : R2.Flow)
    EXPECT_FALSE(D.Covers);
}

TEST(Driver, NoRefineKeepsUnrefinedVectors) {
  ir::AnalyzedProgram AP = analyzeSource(kernels::example3());
  ASSERT_TRUE(AP.ok());
  DriverOptions NoRefine;
  NoRefine.Refine = false;
  AnalysisResult R = analyzeProgram(AP, NoRefine);
  for (const deps::Dependence &D : R.Flow)
    for (const deps::DepSplit &S : D.Splits)
      EXPECT_FALSE(S.Refined);
}

TEST(Driver, TablesIncludeHeadersAndTags) {
  ir::AnalyzedProgram AP = analyzeSource(kernels::example2());
  ASSERT_TRUE(AP.ok());
  AnalysisResult R = analyzeProgram(AP);
  std::string Live = R.liveFlowTable();
  std::string Dead = R.deadFlowTable();
  EXPECT_NE(Live.find("FROM"), std::string::npos);
  EXPECT_NE(Live.find("dir/dist"), std::string::npos);
  EXPECT_NE(Live.find("[C"), std::string::npos);  // the covering write
  EXPECT_NE(Dead.find("[c]"), std::string::npos); // a covered victim
}

TEST(Driver, KillRecordsNameParticipants) {
  ir::AnalyzedProgram AP = analyzeSource(kernels::example1());
  ASSERT_TRUE(AP.ok());
  AnalysisResult R = analyzeProgram(AP);
  ASSERT_FALSE(R.Kills.empty());
  bool SawSuccessfulKill = false;
  for (const KillRecord &K : R.Kills) {
    EXPECT_NE(K.From, nullptr);
    EXPECT_NE(K.Killer, nullptr);
    EXPECT_NE(K.To, nullptr);
    SawSuccessfulKill |= K.Killed;
  }
  EXPECT_TRUE(SawSuccessfulKill);
}

// The legacy analyzeProgram wrapper merges the run's Omega work into the
// calling thread's current context, which is how pre-context callers
// observed the (then-global) counters.
TEST(Driver, StatsCountersAdvance) {
  OmegaContext Ctx;
  OmegaContextScope Scope(Ctx);
  ir::AnalyzedProgram AP = analyzeSource(kernels::example3());
  ASSERT_TRUE(AP.ok());
  (void)analyzeProgram(AP);
  EXPECT_GT(Ctx.Stats.SatisfiabilityCalls, 0u);
  EXPECT_GT(Ctx.Stats.ExactEliminations, 0u);
  uint64_t After = Ctx.Stats.SatisfiabilityCalls;
  Ctx.Stats.reset();
  EXPECT_EQ(Ctx.Stats.SatisfiabilityCalls, 0u);
  EXPECT_LT(Ctx.Stats.SatisfiabilityCalls, After);
}

TEST(Driver, EmptyProgramYieldsEmptyResult) {
  ir::AnalyzedProgram AP = analyzeSource("symbolic n;\n");
  ASSERT_TRUE(AP.ok());
  AnalysisResult R = analyzeProgram(AP);
  EXPECT_TRUE(R.Flow.empty());
  EXPECT_TRUE(R.Anti.empty());
  EXPECT_TRUE(R.Output.empty());
  EXPECT_TRUE(R.Pairs.empty());
}

TEST(Driver, ReadOnlyArraysProduceNoPairs) {
  ir::AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                         "for i := 1 to n do\n"
                                         "  b(i) := a(i) + a(i+1);\n"
                                         "endfor\n");
  ASSERT_TRUE(AP.ok());
  AnalysisResult R = analyzeProgram(AP);
  // a is never written: no flow pairs for it; b is never read.
  EXPECT_TRUE(R.Pairs.empty());
  EXPECT_TRUE(R.Flow.empty());
}
