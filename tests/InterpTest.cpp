//===- tests/InterpTest.cpp -----------------------------------------------===//
//
// Unit tests for the reference interpreter.
//
//===----------------------------------------------------------------------===//

#include "ir/Interp.h"

#include "ir/Parser.h"

#include <gtest/gtest.h>

using namespace omega;
using namespace omega::ir;

namespace {

ExecResult run(const char *Src, std::map<std::string, int64_t> Syms = {}) {
  ParseResult PR = parseProgram(Src);
  EXPECT_TRUE(PR.ok());
  ExecConfig Config;
  Config.Symbols = std::move(Syms);
  return interpret(PR.Prog, Config);
}

} // namespace

TEST(Interp, TraceOrderAndLocations) {
  ExecResult R = run("for i := 1 to 3 do\n"
                     "  a(i) := a(i-1);\n"
                     "endfor\n");
  ASSERT_FALSE(R.Failed);
  // Per iteration: one read, one write.
  ASSERT_EQ(R.Trace.size(), 6u);
  EXPECT_FALSE(R.Trace[0].IsWrite);
  EXPECT_EQ(R.Trace[0].Location, std::vector<int64_t>({0}));
  EXPECT_TRUE(R.Trace[1].IsWrite);
  EXPECT_EQ(R.Trace[1].Location, std::vector<int64_t>({1}));
  EXPECT_EQ(R.Trace[5].Location, std::vector<int64_t>({3}));
  EXPECT_EQ(R.Trace[4].Iters, std::vector<int64_t>({3}));
}

TEST(Interp, SymbolicConstantsBound) {
  ExecResult R = run("for i := 1 to n do a(i) := 0; endfor", {{"n", 4}});
  ASSERT_FALSE(R.Failed);
  EXPECT_EQ(R.Trace.size(), 4u);

  ExecResult Bad = run("for i := 1 to n do a(i) := 0; endfor");
  EXPECT_TRUE(Bad.Failed);
}

TEST(Interp, ValuesFlowThroughArrays) {
  // a(1)=7; a(2)=a(1)+1; b read of a(2) sees 8.
  ExecResult R = run("a(1) := 7;\n"
                     "a(2) := a(1) + 1;\n"
                     "b(0) := a(2);\n");
  ASSERT_FALSE(R.Failed);
  // Entries: write a(1); read a(1), write a(2); read a(2), write b(0).
  ASSERT_EQ(R.Trace.size(), 5u);
  EXPECT_TRUE(R.Trace[0].IsWrite);
  EXPECT_EQ(R.Trace[3].Array, "a");
  EXPECT_EQ(R.Trace[3].Location, std::vector<int64_t>({2}));
}

TEST(Interp, MinMaxBoundsEvaluate) {
  ExecResult R = run("for i := max(2, 0) to min(4, 9) do a(i) := 0; endfor");
  ASSERT_FALSE(R.Failed);
  EXPECT_EQ(R.Trace.size(), 3u); // i = 2, 3, 4
}

TEST(Interp, NegativeStepNormalizedIters) {
  ExecResult R = run("for k := 3 to 1 step -1 do a(k) := 0; endfor");
  ASSERT_FALSE(R.Failed);
  ASSERT_EQ(R.Trace.size(), 3u);
  // Source values 3,2,1; normalized (ascending) -3,-2,-1.
  EXPECT_EQ(R.Trace[0].Iters, std::vector<int64_t>({-3}));
  EXPECT_EQ(R.Trace[0].Location, std::vector<int64_t>({3}));
  EXPECT_EQ(R.Trace[2].Iters, std::vector<int64_t>({-1}));
}

TEST(Interp, StrideLoop) {
  ExecResult R = run("for i := 1 to 9 step 3 do a(i) := 0; endfor");
  ASSERT_FALSE(R.Failed);
  ASSERT_EQ(R.Trace.size(), 3u); // 1, 4, 7
  EXPECT_EQ(R.Trace[1].Location, std::vector<int64_t>({4}));
}

TEST(Interp, IndexArrayReadsRecorded) {
  ExecResult R = run("a(Q(1)) := 0;\n");
  ASSERT_FALSE(R.Failed);
  // One read of Q (inside the LHS subscript), one write of a.
  ASSERT_EQ(R.Trace.size(), 2u);
  EXPECT_EQ(R.Trace[0].Array, "Q");
  EXPECT_FALSE(R.Trace[0].IsWrite);
  EXPECT_TRUE(R.Trace[1].IsWrite);
  // The write location is Q(1)'s (deterministic) value.
  ASSERT_EQ(R.Trace[1].Location.size(), 1u);
}

TEST(Interp, DeterministicDefaultValues) {
  ExecResult R1 = run("x(0) := Q(7);\n");
  ExecResult R2 = run("x(0) := Q(7);\n");
  ASSERT_FALSE(R1.Failed);
  // Same program, same trace (the default-value function is a pure hash).
  ASSERT_EQ(R1.Trace.size(), R2.Trace.size());
}

TEST(Interp, StepCapTruncates) {
  ParseResult PR = parseProgram("for i := 1 to 1000 do a(i) := 0; endfor");
  ASSERT_TRUE(PR.ok());
  ExecConfig Config;
  Config.MaxSteps = 10;
  ExecResult R = interpret(PR.Prog, Config);
  EXPECT_TRUE(R.Truncated);
  EXPECT_LE(R.Trace.size(), 2 * 10u);
}

TEST(Interp, EmptyLoopRuns) {
  ExecResult R = run("for i := 5 to 1 do a(i) := 0; endfor");
  ASSERT_FALSE(R.Failed);
  EXPECT_TRUE(R.Trace.empty());
}

TEST(Interp, ScalarAccumulation) {
  // k := k + 1 three times starting from the hash default.
  ExecResult R = run("for i := 1 to 3 do k(0) := k(0) + 1; endfor");
  ASSERT_FALSE(R.Failed);
  EXPECT_EQ(R.Trace.size(), 6u);
}

TEST(Interp, PipelineScratchArraysExecute) {
  // The "@p" arrays applyPipeline introduces are unparseable from source
  // ('@' is not an identifier character) but must interpret like any
  // other array: build the staged shape by hand and check values flow
  // through the renamed storage.
  //   for i := 1 to 3 do t@p(i,0) := i; endfor
  //   for i := 1 to 3 do b(i) := t@p(i,0); endfor
  Program P;
  ForStmt Produce;
  Produce.Var = "i";
  Produce.Lo = Expr::intLit(1);
  Produce.Hi = Expr::intLit(3);
  AssignStmt Write;
  Write.Array = "t@p";
  Write.Subscripts = {Expr::varRef("i"), Expr::intLit(0)};
  Write.RHS = Expr::varRef("i");
  Write.Label = 1;
  Produce.Body.push_back(Stmt{Write});

  ForStmt Consume;
  Consume.Var = "i";
  Consume.Lo = Expr::intLit(1);
  Consume.Hi = Expr::intLit(3);
  AssignStmt Read;
  Read.Array = "b";
  Read.Subscripts = {Expr::varRef("i")};
  Read.RHS = Expr::read("t@p", {Expr::varRef("i"), Expr::intLit(0)});
  Read.Label = 2;
  Consume.Body.push_back(Stmt{Read});

  P.Body.push_back(Stmt{Produce});
  P.Body.push_back(Stmt{Consume});

  ExecConfig Config;
  ExecResult R = interpret(P, Config);
  ASSERT_FALSE(R.Failed) << R.Error;
  ASSERT_EQ(R.FinalState.count("t@p"), 1u);
  ASSERT_EQ(R.FinalState.count("b"), 1u);
  const auto &B = R.FinalState.at("b");
  for (int64_t I = 1; I <= 3; ++I)
    EXPECT_EQ(B.at({I}), I);
}
