//===- tests/PipelineTest.cpp ---------------------------------------------===//
//
// PDG and pipeline-partition invariants. The PDG must reflect the
// kill-aware dependence table exactly (dead splits become Dead edges,
// carried anti on privatizable arrays becomes Removable); every plan the
// partitioner emits must be a topological ordering of whole SCCs with
// parallel stages free of carried edges; and the Section 4 machinery must
// be load-bearing: with dead edges put back (the --no-cover/--no-kill
// world) partitions get coarser and the showcase parallel stage vanishes.
//
//===----------------------------------------------------------------------===//

#include "transform/Pipeline.h"

#include "analysis/Driver.h"
#include "ir/Sema.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

using namespace omega;
using namespace omega::transform;
namespace fs = std::filesystem;

namespace {

/// Stage index of every statement label, asserting each label appears in
/// exactly one stage.
std::map<unsigned, unsigned> stageOf(const PipelinePlan &Plan) {
  std::map<unsigned, unsigned> Stage;
  for (unsigned S = 0; S != Plan.Stages.size(); ++S)
    for (unsigned Label : Plan.Stages[S].StmtLabels) {
      EXPECT_EQ(Stage.count(Label), 0u)
          << "statement " << Label << " in two stages";
      Stage[Label] = S;
    }
  return Stage;
}

/// All pipeline invariants for one analyzed program under \p Opts.
/// Returns the number of valid plans seen.
unsigned checkInvariants(const ir::AnalyzedProgram &AP,
                         const analysis::AnalysisResult &R,
                         const PipelineOptions &Opts = PipelineOptions()) {
  unsigned ValidPlans = 0;
  for (const auto &L : AP.Loops) {
    Pdg G = buildPdg(AP, R, L.get());

    // Killed flow splits never reach the planner.
    for (const PdgEdge &E : G.Edges) {
      if (E.Dead || E.Removable) {
        EXPECT_FALSE(G.planningEdge(E));
      }
      EXPECT_LT(E.Src, G.StmtLabels.size());
      EXPECT_LT(E.Dst, G.StmtLabels.size());
    }

    PipelinePlan Plan = planPipeline(AP, G, Opts);
    if (!Plan.valid())
      continue;
    ++ValidPlans;
    EXPECT_LE(Plan.Stages.size(), static_cast<std::size_t>(Opts.MaxStages));

    // Every PDG statement lands in exactly one stage; no strangers.
    std::map<unsigned, unsigned> Stage = stageOf(Plan);
    EXPECT_EQ(Stage.size(), G.StmtLabels.size());
    for (unsigned Label : G.StmtLabels)
      EXPECT_EQ(Stage.count(Label), 1u) << "statement " << Label << " lost";

    for (const PdgEdge &E : G.Edges) {
      if (!G.planningEdge(E))
        continue;
      unsigned SrcStage = Stage.at(G.StmtLabels[E.Src]);
      unsigned DstStage = Stage.at(G.StmtLabels[E.Dst]);
      // Topological order: a carried edge may point backward only within
      // one stage (an SCC cycle); loop-independent edges follow program
      // order across stages. Either way stage(src) <= stage(dst) except
      // inside a single stage.
      if (SrcStage != DstStage) {
        EXPECT_LT(SrcStage, DstStage)
            << "live dependence " << G.StmtLabels[E.Src] << "->"
            << G.StmtLabels[E.Dst] << " violated by stage order";
      }
      // A parallel stage contains no carried edge.
      if (E.LoopCarried && SrcStage == DstStage) {
        EXPECT_FALSE(Plan.Stages[SrcStage].Parallel)
            << "carried edge inside parallel stage " << SrcStage;
      }
    }

    // The cost model adds up.
    uint64_t Sum = 0;
    for (const PipelineStage &S : Plan.Stages) {
      EXPECT_FALSE(S.StmtLabels.empty());
      EXPECT_TRUE(std::is_sorted(S.StmtLabels.begin(), S.StmtLabels.end()));
      Sum += S.Weight;
    }
    EXPECT_EQ(Sum, Plan.TotalWeight);
    EXPECT_GE(Plan.EstimatedSpeedup, 1.0);
  }
  return ValidPlans;
}

std::string readFile(const fs::path &P) {
  std::ifstream In(P);
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

} // namespace

TEST(Pipeline, CarriedSelfEdgeForcesSequentialStage) {
  ir::AnalyzedProgram AP = ir::analyzeSource("symbolic n;\n"
                                             "for i := 2 to n do\n"
                                             "  a(i) := a(i-1) + 1;\n"
                                             "  b(i) := a(i) * 2;\n"
                                             "endfor\n");
  ASSERT_TRUE(AP.ok());
  analysis::AnalysisResult R = analysis::analyzeProgram(AP);
  Pdg G = buildPdg(AP, R, AP.Loops[0].get());
  // The recurrence is a carried self-edge on statement 1.
  bool SelfCarried = false;
  for (const PdgEdge &E : G.Edges)
    SelfCarried |= E.Src == E.Dst && E.LoopCarried && G.planningEdge(E);
  EXPECT_TRUE(SelfCarried);

  PipelinePlan Plan = planPipeline(AP, G);
  ASSERT_TRUE(Plan.valid());
  std::map<unsigned, unsigned> Stage = stageOf(Plan);
  EXPECT_FALSE(Plan.Stages[Stage.at(1)].Parallel)
      << "recurrence stage cannot be parallel";
  // The consumer b(i) has no carried edge at all: its stage is parallel.
  EXPECT_TRUE(Plan.Stages[Stage.at(2)].Parallel);
  // Producer before consumer.
  EXPECT_LT(Stage.at(1), Stage.at(2));
}

TEST(Pipeline, EveryStatementInExactlyOneScc) {
  ir::AnalyzedProgram AP =
      ir::analyzeSource("symbolic n;\n"
                        "for i := 1 to n do\n"
                        "  s(0) := s(0) + a(i);\n"
                        "  t(0) := a(i-1) + a(i+1);\n"
                        "  b(i) := t(0) * t(0);\n"
                        "  d(0) := d(0) + b(i);\n"
                        "endfor\n");
  ASSERT_TRUE(AP.ok());
  analysis::AnalysisResult R = analysis::analyzeProgram(AP);
  std::vector<PipelineFacts> Facts = analyzePipelines(AP, R);
  ASSERT_EQ(Facts.size(), 1u);
  EXPECT_EQ(Facts[0].Statements, 4u);
  EXPECT_EQ(Facts[0].Sccs, 4u);
  EXPECT_GE(checkInvariants(AP, R), 1u);
}

TEST(Pipeline, KilledDependencesAbsentFromPlanningGraph) {
  // t is accumulated and overwritten each iteration: the carried flow
  // out of statement 2's write into the next iteration's read is killed
  // by statement 1's fresh write ('k'), and the PDG must carry that edge
  // as Dead -- present for the ablation, never planned over.
  ir::AnalyzedProgram AP =
      ir::analyzeSource("symbolic n;\n"
                        "for i := 1 to n do\n"
                        "  t(0) := a(i);\n"
                        "  t(0) := t(0) + b(i);\n"
                        "  c(i) := t(0);\n"
                        "endfor\n");
  ASSERT_TRUE(AP.ok());
  analysis::AnalysisResult R = analysis::analyzeProgram(AP);
  Pdg G = buildPdg(AP, R, AP.Loops[0].get());
  bool SawKilledCarriedFlow = false;
  for (const PdgEdge &E : G.Edges) {
    if (E.Kind == deps::DepKind::Flow && E.LoopCarried && E.Dead) {
      SawKilledCarriedFlow = true;
      EXPECT_EQ(E.DeadReason, 'k');
      EXPECT_FALSE(G.planningEdge(E));
    }
    // The surviving carried planning edges are all storage self-traffic
    // on t (output, plus any anti not licensed for removal) -- no live
    // carried FLOW crosses iterations.
    if (G.planningEdge(E) && E.LoopCarried) {
      EXPECT_NE(E.Kind, deps::DepKind::Flow)
          << "live carried flow survived on " << E.Array << " ("
          << G.StmtLabels[E.Src] << "->" << G.StmtLabels[E.Dst] << ")";
    }
  }
  EXPECT_TRUE(SawKilledCarriedFlow) << "kill analysis marked nothing dead";
}

TEST(Pipeline, PrivatizableAntiEdgesAreRemovable) {
  // The motivating pattern: t written then read within each iteration.
  // Refinement narrows the flow to loop-independent, and the carried
  // anti edges on t (read iter i -> write iter i+1) become Removable via
  // privatization; the live carried planning traffic that remains is the
  // output self-edge on t's write.
  ir::AnalyzedProgram AP =
      ir::analyzeSource("symbolic n;\n"
                        "for i := 1 to n do\n"
                        "  t(0) := a(i-1) + a(i+1);\n"
                        "  b(i) := t(0) * t(0);\n"
                        "endfor\n");
  ASSERT_TRUE(AP.ok());
  analysis::AnalysisResult R = analysis::analyzeProgram(AP);
  Pdg G = buildPdg(AP, R, AP.Loops[0].get());
  bool SawRemovableAnti = false;
  for (const PdgEdge &E : G.Edges) {
    if (E.Kind == deps::DepKind::Anti && E.LoopCarried) {
      EXPECT_TRUE(E.Removable) << "carried anti on " << E.Array;
      SawRemovableAnti = true;
    }
    if (G.planningEdge(E) && E.LoopCarried) {
      EXPECT_EQ(E.Kind, deps::DepKind::Output)
          << "unexpected live carried edge on " << E.Array;
    }
  }
  EXPECT_TRUE(SawRemovableAnti);
  EXPECT_EQ(G.PrivatizedArrays, std::vector<std::string>{"t"});
}

TEST(Pipeline, AblationWithDeadEdgesIsCoarser) {
  // The four-statement showcase: with Section 4 the partition reaches
  // four stages with a parallel consumer; with dead edges restored the
  // graph collapses into two serial stages.
  ir::AnalyzedProgram AP =
      ir::analyzeSource("symbolic n;\n"
                        "for i := 1 to n do\n"
                        "  s(0) := s(0) + a(i);\n"
                        "  t(0) := a(i-1) + a(i+1);\n"
                        "  b(i) := t(0) * t(0);\n"
                        "  d(0) := d(0) + b(i);\n"
                        "endfor\n");
  ASSERT_TRUE(AP.ok());
  analysis::AnalysisResult R = analysis::analyzeProgram(AP);

  PipelineOptions Live;
  PipelineOptions Dead;
  Dead.IncludeDead = true;
  std::vector<PipelineFacts> WithKills = analyzePipelines(AP, R, Live);
  std::vector<PipelineFacts> Without = analyzePipelines(AP, R, Dead);
  ASSERT_EQ(WithKills.size(), 1u);
  ASSERT_EQ(Without.size(), 1u);

  EXPECT_GE(WithKills[0].Plan.Stages.size(), 3u);
  EXPECT_TRUE(WithKills[0].Plan.hasParallelStage());
  EXPECT_EQ(WithKills[0].Plan.PrivatizedArrays,
            std::vector<std::string>{"t"});
  EXPECT_FALSE(WithKills[0].Plan.EnablingKills.empty());

  EXPECT_LT(Without[0].Plan.Stages.size(),
            WithKills[0].Plan.Stages.size());
  EXPECT_FALSE(Without[0].Plan.hasParallelStage());

  // The same collapse when the Section 4 cover analysis itself is off:
  // the carried t splits stay live and privatization is never licensed.
  analysis::DriverOptions NoCover;
  NoCover.Cover = false;
  NoCover.Kill = false;
  analysis::AnalysisResult RNC = analysis::analyzeProgram(AP, NoCover);
  std::vector<PipelineFacts> Ablated = analyzePipelines(AP, RNC);
  ASSERT_EQ(Ablated.size(), 1u);
  EXPECT_FALSE(Ablated[0].Plan.hasParallelStage());
  EXPECT_LT(Ablated[0].Plan.Stages.size(),
            WithKills[0].Plan.Stages.size());
  checkInvariants(AP, RNC);
}

TEST(Pipeline, ReportIsDeterministicAndNamesEnablers) {
  ir::AnalyzedProgram AP =
      ir::analyzeSource("symbolic n;\n"
                        "for i := 1 to n do\n"
                        "  s(0) := s(0) + a(i);\n"
                        "  t(0) := a(i-1) + a(i+1);\n"
                        "  b(i) := t(0) * t(0);\n"
                        "  d(0) := d(0) + b(i);\n"
                        "endfor\n");
  ASSERT_TRUE(AP.ok());
  analysis::AnalysisResult R = analysis::analyzeProgram(AP);
  std::string Report = pipelineReport(AP, R);
  EXPECT_EQ(Report, pipelineReport(AP, R));
  EXPECT_NE(Report.find("loop i (depth 1): 4 stages"), std::string::npos)
      << Report;
  EXPECT_NE(Report.find("{3}*"), std::string::npos)
      << "parallel consumer stage missing: " << Report;
  EXPECT_NE(Report.find("privatized: t"), std::string::npos) << Report;
  EXPECT_NE(Report.find("(privatization)"), std::string::npos) << Report;
}

TEST(Pipeline, PipelineFourExampleMatchesShippedExpectations) {
  fs::path File = fs::path(OMEGA_EXAMPLES_DIR) / "pipeline4.tiny";
  ASSERT_TRUE(fs::is_regular_file(File)) << "missing " << File;
  ir::AnalyzedProgram AP = ir::analyzeSource(readFile(File));
  ASSERT_TRUE(AP.ok());
  analysis::AnalysisResult R = analysis::analyzeProgram(AP);
  std::vector<PipelineFacts> Facts = analyzePipelines(AP, R);
  ASSERT_EQ(Facts.size(), 1u);
  const PipelinePlan &Plan = Facts[0].Plan;
  ASSERT_TRUE(Plan.valid());
  EXPECT_EQ(Plan.Stages.size(), 4u);
  EXPECT_TRUE(Plan.hasParallelStage());
  EXPECT_DOUBLE_EQ(Plan.EstimatedSpeedup, 4.0);
  checkInvariants(AP, R);
}

TEST(Pipeline, InvariantsHoldAcrossExamplePrograms) {
  fs::path Dir = fs::path(OMEGA_EXAMPLES_DIR);
  ASSERT_TRUE(fs::is_directory(Dir)) << "missing " << Dir;
  unsigned Programs = 0;
  unsigned ValidPlans = 0;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir)) {
    if (!E.is_regular_file() || E.path().extension() != ".tiny")
      continue;
    SCOPED_TRACE(E.path().filename().string());
    ir::AnalyzedProgram AP = ir::analyzeSource(readFile(E.path()));
    ASSERT_TRUE(AP.ok());
    analysis::AnalysisResult R = analysis::analyzeProgram(AP);
    ++Programs;
    ValidPlans += checkInvariants(AP, R);
    PipelineOptions Dead;
    Dead.IncludeDead = true;
    checkInvariants(AP, R, Dead);
  }
  EXPECT_GT(Programs, 0u);
  EXPECT_GT(ValidPlans, 0u) << "no example produced a pipeline at all";
}
