//===- tests/OverflowTest.cpp ---------------------------------------------===//
//
// Tests for the coefficient-overflow containment: saturating arithmetic
// raises the sticky flag, and every decision procedure degrades to its
// conservative answer instead of crashing or lying.
//
//===----------------------------------------------------------------------===//

#include "omega/Gist.h"
#include "omega/Projection.h"
#include "omega/Satisfiability.h"
#include "support/MathUtils.h"

#include <gtest/gtest.h>

using namespace omega;

namespace {

/// Clears the flag for a fresh test.
struct FlagReset {
  FlagReset() { arithOverflowFlag() = false; }
  ~FlagReset() { arithOverflowFlag() = false; }
};

/// A problem whose Fourier-Motzkin elimination chain saturates: large
/// pairwise-coprime coefficients force repeated cross-multiplications.
Problem blowupProblem() {
  Problem P;
  std::vector<VarId> V;
  for (int I = 0; I != 6; ++I)
    V.push_back(P.addVar("v" + std::to_string(I)));
  // Dense rows with large coprime coefficients.
  const int64_t Coeffs[6][6] = {
      {999999937, -888888883, 777777777, -666666667, 555555557, -444444443},
      {-333333333, 999999937, -777777777, 888888883, -555555557, 666666667},
      {123456789, -987654321, 999999937, -111111113, 222222227, -333333331},
      {-444444449, 555555559, -666666671, 999999937, -777777781, 888888893},
      {987654323, -123456791, 345678917, -765432113, 999999937, -135791357},
      {-246813579, 975318643, -864209753, 753197531, -642086421, 999999937},
  };
  for (int R = 0; R != 6; ++R) {
    Constraint &Row = P.addRow(ConstraintKind::GEQ);
    for (int C = 0; C != 6; ++C)
      Row.setCoeff(V[C], Coeffs[R][C]);
    Row.setConstant((R % 2) ? -99999989 : 99999989);
    Constraint &Opp = P.addRow(ConstraintKind::GEQ);
    for (int C = 0; C != 6; ++C)
      Opp.setCoeff(V[C], -Coeffs[R][C] + (C == R ? 3 : 1));
    Opp.setConstant(99999989);
  }
  return P;
}

} // namespace

TEST(Overflow, SaturatingArithmeticSetsFlag) {
  FlagReset Reset;
  int64_t Big = CoeffCap - 1;
  EXPECT_EQ(checkedAdd(Big, Big), CoeffCap);
  EXPECT_TRUE(arithOverflowFlag());
  arithOverflowFlag() = false;
  EXPECT_EQ(checkedMul(Big, -4), -CoeffCap);
  EXPECT_TRUE(arithOverflowFlag());
  arithOverflowFlag() = false;
  EXPECT_EQ(checkedAdd(3, 4), 7);
  EXPECT_FALSE(arithOverflowFlag());
}

TEST(Overflow, OverflowScopeRestoresOuterState) {
  FlagReset Reset;
  arithOverflowFlag() = true; // outer context already overflowed
  {
    OverflowScope Scope;
    EXPECT_FALSE(arithOverflowFlag()); // cleared for the inner computation
    checkedAdd(CoeffCap, CoeffCap);
    EXPECT_TRUE(Scope.overflowed());
  }
  EXPECT_TRUE(arithOverflowFlag()); // outer state preserved

  arithOverflowFlag() = false;
  {
    OverflowScope Scope;
    EXPECT_FALSE(Scope.overflowed());
  }
  EXPECT_FALSE(arithOverflowFlag());
}

TEST(Overflow, SatisfiabilityConservativeOnBlowup) {
  FlagReset Reset;
  Problem P = blowupProblem();
  // Whatever the true answer, the call must terminate and must not leak
  // the flag into the caller's clean scope as a crash.
  EXPECT_TRUE(isSatisfiable(P)); // conservative "maybe" (or genuinely sat)
}

TEST(Overflow, ProjectionPoisonReported) {
  FlagReset Reset;
  Problem P = blowupProblem();
  ProjectionResult R = projectOnto(P, {0});
  if (R.Poisoned)
    EXPECT_FALSE(R.ApproxIsExact);
  // Either way the range of v0 is sound: when poisoned it must be open.
  IntRange Range = computeVarRange(P, 0);
  if (R.Poisoned) {
    EXPECT_FALSE(Range.HasMin);
    EXPECT_FALSE(Range.HasMax);
  }
}

TEST(Overflow, NormalOperationsDoNotPoison) {
  FlagReset Reset;
  Problem P;
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  P.addGEQ({{X, 3}, {Y, 5}}, -7);
  P.addGEQ({{X, -2}, {Y, 9}}, 11);
  P.addGEQ({{Y, -1}}, 30);
  ProjectionResult R = projectOnto(P, {X});
  EXPECT_FALSE(R.Poisoned);
  EXPECT_FALSE(arithOverflowFlag());
}
