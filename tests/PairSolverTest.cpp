//===- tests/PairSolverTest.cpp -------------------------------------------===//
//
// Unit tests for the incremental pair-solving tiers: elimination
// snapshots (states, soundness of delta replay), the ZIV/GCD/bounds
// quick-test pre-filter with its per-class counters, and the counter
// invariants the profile report relies on (quick-test classes sum to
// QuickTestDecided; Figure-6 query classes still sum to
// SatisfiabilityCalls; snapshot reuses never masquerade as cache hits).
//
//===----------------------------------------------------------------------===//

#include "deps/PairSolver.h"
#include "engine/DependenceEngine.h"
#include "ir/Sema.h"
#include "kernels/Kernels.h"
#include "obs/Trace.h"
#include "omega/Satisfiability.h"
#include "omega/Snapshot.h"
#include "oracle/TraceOracle.h"

#include <gtest/gtest.h>

using namespace omega;

namespace {

engine::AnalysisResult analyzeWith(const std::string &Source,
                                   bool QuickTests, bool Incremental,
                                   bool UseCache = false) {
  ir::AnalyzedProgram AP = ir::analyzeSource(Source);
  EXPECT_TRUE(AP.ok()) << Source;
  engine::AnalysisRequest Req;
  Req.Jobs = 1;
  Req.UseQueryCache = UseCache;
  Req.PairQuickTests = QuickTests;
  Req.Incremental = Incremental;
  engine::DependenceEngine Engine(Req);
  return Engine.analyze(AP);
}

} // namespace

//===----------------------------------------------------------------------===//
// EliminationSnapshot
//===----------------------------------------------------------------------===//

TEST(Snapshot, ExactEliminationPreservesSatUnderDeltas) {
  // x is the delta variable; y (equality-bound) and z (inequality-bound)
  // are eliminable. The reduced system answered with an extra delta row
  // must agree with the full system.
  Problem P;
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  VarId Z = P.addVar("z");
  P.addGEQ({{X, 1}}, -1);  // x >= 1
  P.addGEQ({{X, -1}}, 10); // x <= 10
  P.addEQ({{Y, 1}, {X, -1}}, -1); // y == x + 1
  P.addGEQ({{Z, 1}}, 0);          // 0 <= z <= 5
  P.addGEQ({{Z, -1}}, 5);
  P.addGEQ({{Y, -1}, {Z, 1}}, 20); // y <= z + 20

  OmegaContext Ctx;
  std::vector<bool> Keep(P.getNumVars(), false);
  Keep[X] = true;
  EliminationSnapshot Snap(P, Keep, Ctx);
  ASSERT_EQ(Snap.state(), EliminationSnapshot::State::Ready);
  EXPECT_EQ(Ctx.Stats.SnapshotBuilds, 1u);
  EXPECT_TRUE(Snap.eliminated(Y));
  EXPECT_TRUE(Snap.eliminated(Z));

  for (int64_t Lo : {0, 5, 11}) {
    Problem Full = P;
    Full.addGEQ({{X, 1}}, -Lo); // x >= Lo
    Problem Reduced = Snap.reduced();
    Reduced.addGEQ({{X, 1}}, -Lo);
    EXPECT_TRUE(Snap.deltasCompatible(Reduced));
    EXPECT_EQ(isSatisfiable(Reduced, SatOptions(), Ctx),
              isSatisfiable(Full, SatOptions(), Ctx))
        << "x >= " << Lo;
  }
}

TEST(Snapshot, ContradictionAmongEliminatedVarsProvesUnsat) {
  Problem P;
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  P.addGEQ({{X, 1}}, 0);
  P.addGEQ({{Y, 1}}, -10); // y >= 10
  P.addGEQ({{Y, -1}}, 5);  // y <= 5
  OmegaContext Ctx;
  std::vector<bool> Keep(P.getNumVars(), false);
  Keep[X] = true;
  EliminationSnapshot Snap(P, Keep, Ctx);
  EXPECT_EQ(Snap.state(), EliminationSnapshot::State::ProvedUnsat);
}

TEST(Snapshot, SaturatedArithmeticRefusesToServe) {
  // An exact-looking elimination whose combination product overflows the
  // coefficient cap: y has coefficient 1 below and 2^32 above (the unit z
  // keeps the row's gcd at 1 so normalization cannot shrink it), so the
  // FM step multiplies 2^32 * 2^32 past CoeffCap. The snapshot must land
  // in Saturated -- clamped rows are garbage -- and the solver then takes
  // the scratch path (see SaturatedOrIncompatibleDeltasFallBackToScratch).
  constexpr int64_t Big = int64_t(1) << 32;
  Problem P;
  VarId X = P.addVar("x");
  VarId Z = P.addVar("z");
  VarId Y = P.addVar("y");
  P.addGEQ({{Y, 1}, {X, -Big}}, 0);  // y >= Big*x
  P.addGEQ({{Y, -Big}, {Z, -1}}, 1); // Big*y + z <= 1
  P.addGEQ({{X, 1}}, 0);
  P.addGEQ({{X, -1}}, 10);
  P.addGEQ({{Z, 1}}, 0);
  P.addGEQ({{Z, -1}}, 10);
  OmegaContext Ctx;
  std::vector<bool> Keep(P.getNumVars(), false);
  Keep[X] = true;
  Keep[Z] = true;
  EliminationSnapshot Snap(P, Keep, Ctx);
  EXPECT_EQ(Snap.state(), EliminationSnapshot::State::Saturated);
}

TEST(Snapshot, DeltaOnEliminatedVarIsIncompatible) {
  Problem P;
  VarId X = P.addVar("x");
  VarId Z = P.addVar("z");
  P.addGEQ({{X, 1}}, 0);
  P.addGEQ({{Z, 1}}, 0);
  P.addGEQ({{Z, -1}}, 5);
  OmegaContext Ctx;
  std::vector<bool> Keep(P.getNumVars(), false);
  Keep[X] = true;
  EliminationSnapshot Snap(P, Keep, Ctx);
  ASSERT_EQ(Snap.state(), EliminationSnapshot::State::Ready);
  ASSERT_TRUE(Snap.eliminated(Z));
  Problem Case = Snap.reduced();
  Case.addGEQ({{Z, 1}}, -1); // touches the eliminated z
  EXPECT_FALSE(Snap.deltasCompatible(Case));
  Problem Ok = Snap.reduced();
  Ok.addGEQ({{X, 1}}, -1);
  EXPECT_TRUE(Snap.deltasCompatible(Ok));
}

//===----------------------------------------------------------------------===//
// Quick-test pre-filter
//===----------------------------------------------------------------------===//

TEST(PairQuickTests, ZIVDecidesConstantSubscripts) {
  engine::AnalysisResult R = analyzeWith("for i := 0 to 9 do\n"
                                         "  a(0) := a(1) + 1;\n"
                                         "endfor\n",
                                         true, true);
  EXPECT_GT(R.Stats.QuickTestZIV, 0u);
  EXPECT_EQ(R.Stats.QuickTestZIV + R.Stats.QuickTestGCD +
                R.Stats.QuickTestBounds + R.Stats.QuickTestTrivialDep,
            R.Stats.QuickTestDecided);
  // a(0) and a(1) never overlap: no flow or anti dependence at all.
  EXPECT_TRUE(R.Flow.empty());
  EXPECT_TRUE(R.Anti.empty());
}

TEST(PairQuickTests, GCDDecidesParityMismatch) {
  engine::AnalysisResult R = analyzeWith("for i := 0 to 9 do\n"
                                         "  a(2*i) := a(2*i + 1) + 1;\n"
                                         "endfor\n",
                                         true, true);
  EXPECT_GT(R.Stats.QuickTestGCD, 0u);
  EXPECT_TRUE(R.Flow.empty());
  EXPECT_TRUE(R.Anti.empty());
}

TEST(PairQuickTests, BoundsDecideDisjointIntervals) {
  engine::AnalysisResult R = analyzeWith("for i := 0 to 4 do\n"
                                         "  a(i) := a(i + 7) + 1;\n"
                                         "endfor\n",
                                         true, true);
  EXPECT_GT(R.Stats.QuickTestBounds, 0u);
  EXPECT_TRUE(R.Flow.empty());
  EXPECT_TRUE(R.Anti.empty());
}

TEST(PairQuickTests, TrivialDependenceOutsideLoops) {
  engine::AnalysisResult R = analyzeWith("a(3) := 1;\n"
                                         "b(0) := a(3) + 2;\n",
                                         true, true);
  EXPECT_GT(R.Stats.QuickTestTrivialDep, 0u);
  ASSERT_EQ(R.Flow.size(), 1u);
  ASSERT_EQ(R.Flow[0].Splits.size(), 1u);
  EXPECT_EQ(R.Flow[0].Splits[0].Level, 0u);
}

TEST(PairQuickTests, DisabledTierLeavesCountersZero) {
  engine::AnalysisResult R = analyzeWith("for i := 0 to 4 do\n"
                                         "  a(i) := a(i + 7) + 1;\n"
                                         "endfor\n",
                                         false, true);
  EXPECT_EQ(R.Stats.QuickTestDecided, 0u);
  EXPECT_TRUE(R.Flow.empty()); // the Omega test agrees, just slower
}

//===----------------------------------------------------------------------===//
// Counter invariants (the stats-asymmetry satellite)
//===----------------------------------------------------------------------===//

TEST(PairSolverCounters, SnapshotReusesAreNotCacheHits) {
  // With the query cache off, nothing may report a cache hit -- snapshot
  // replays have their own counter.
  engine::AnalysisResult R =
      analyzeWith(kernels::cholsky(), true, true, /*UseCache=*/false);
  EXPECT_GT(R.Stats.SnapshotBuilds, 0u);
  EXPECT_GT(R.Stats.SnapshotReuses, 0u);
  EXPECT_EQ(R.Stats.SatCacheHits, 0u);
  EXPECT_EQ(R.Stats.SatCacheMisses, 0u);
}

TEST(PairSolverCounters, SaturatedOrIncompatibleDeltasFallBackToScratch) {
  // Two distinct symbolic constants scaled by 2^32 - 1: the shared-system
  // elimination cannot serve these queries (the reduction either saturates
  // or leaves the delta rows touching an eliminated column), so every case
  // must take the from-scratch path -- and produce exactly the dependences
  // the non-incremental configuration reports.
  const std::string Source = "for i := 0 to 9 do\n"
                             "  a(4294967295*n + i) := a(4294967295*m + i + 1) + 1;\n"
                             "endfor\n";
  engine::AnalysisResult Inc = analyzeWith(Source, true, true);
  EXPECT_GT(Inc.Stats.SnapshotBuilds, 0u);
  EXPECT_GT(Inc.Stats.SnapshotFallbacks, 0u);
  engine::AnalysisResult Scratch = analyzeWith(Source, true, false);
  EXPECT_EQ(Scratch.Stats.SnapshotFallbacks, 0u);
  EXPECT_EQ(oracle::summarizeDependences(Inc),
            oracle::summarizeDependences(Scratch));
}

TEST(PairSolverCounters, EmptyIterationSpaceShortCircuits) {
  // The inner loop never executes, so the shared pair system is already
  // unsatisfiable before any ordering rows: the snapshot proves unsat once
  // and answers every (kind, level) case by reuse, with no dependences in
  // either configuration.
  const std::string Source = "for i := 0 to 9 do\n"
                             "  for j := 5 to 4 do\n"
                             "    a(i + j) := a(i + j) + 1;\n"
                             "  endfor\n"
                             "endfor\n";
  engine::AnalysisResult Inc = analyzeWith(Source, true, true);
  EXPECT_GT(Inc.Stats.SnapshotBuilds, 0u);
  EXPECT_GT(Inc.Stats.SnapshotReuses, 0u);
  EXPECT_EQ(Inc.Stats.SnapshotFallbacks, 0u);
  EXPECT_TRUE(Inc.Flow.empty());
  EXPECT_TRUE(Inc.Anti.empty());
  EXPECT_TRUE(Inc.Output.empty());
  engine::AnalysisResult Scratch = analyzeWith(Source, true, false);
  EXPECT_EQ(oracle::summarizeDependences(Inc),
            oracle::summarizeDependences(Scratch));
}

TEST(PairSolverCounters, ProfileClassesSumToSatCalls) {
  // Every satisfiability query -- including ones answered on a snapshot --
  // lands in exactly one Figure-6 class of the profile report.
  ir::AnalyzedProgram AP = ir::analyzeSource(kernels::cholsky());
  ASSERT_TRUE(AP.ok());
  obs::Tracer T;
  engine::AnalysisRequest Req;
  Req.Jobs = 1;
  Req.Trace = &T;
  engine::DependenceEngine Engine(Req);
  engine::AnalysisResult R = Engine.analyze(AP);
  EXPECT_GT(R.Stats.SnapshotReuses, 0u);
  obs::ProfileData P = T.profile();
  EXPECT_EQ(P.Classes.total(), P.Stats.SatisfiabilityCalls);
  EXPECT_EQ(P.Stats.SatisfiabilityCalls, R.Stats.SatisfiabilityCalls);
}
