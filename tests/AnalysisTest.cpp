//===- tests/AnalysisTest.cpp ---------------------------------------------===//
//
// Integration tests for the Section 4 analyses, validated against the
// paper's Examples 1-6.
//
//===----------------------------------------------------------------------===//

#include "analysis/Driver.h"

#include "analysis/Kills.h"
#include "analysis/Refine.h"

#include <gtest/gtest.h>

using namespace omega;
using namespace omega::analysis;
using omega::deps::DepKind;
using omega::deps::Dependence;
using omega::deps::DependenceAnalysis;
using omega::ir::Access;
using omega::ir::AnalyzedProgram;
using omega::ir::analyzeSource;

namespace {

const Access *findAccess(const AnalyzedProgram &AP, const std::string &Array,
                         bool IsWrite, unsigned Stmt = 0) {
  for (const Access &A : AP.Accesses)
    if (A.Array == Array && A.IsWrite == IsWrite &&
        (Stmt == 0 || A.StmtLabel == Stmt))
      return &A;
  return nullptr;
}

const Dependence *findFlow(const AnalysisResult &R, unsigned SrcStmt,
                           unsigned DstStmt) {
  for (const Dependence &D : R.Flow)
    if (D.Src->StmtLabel == SrcStmt && D.Dst->StmtLabel == DstStmt)
      return &D;
  return nullptr;
}

std::string refinedDir(const Dependence &D) {
  std::string Out;
  for (const deps::DepSplit &S : D.Splits) {
    if (S.Dead)
      continue;
    if (!Out.empty())
      Out += " ";
    Out += S.dirToString();
  }
  return Out;
}

} // namespace

//===----------------------------------------------------------------------===//
// Example 1: a killed flow dependence.
//===----------------------------------------------------------------------===//

TEST(Section4, Example1KilledFlowDep) {
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "a(n) := 0;\n"            // stmt 1
                                     "for L1 := n to n+10 do\n"
                                     "  a(L1) := 0;\n"         // stmt 2
                                     "endfor\n"
                                     "for L1 := n to n+20 do\n"
                                     "  x(L1) := a(L1);\n"     // stmt 3
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  AnalysisResult R = analyzeProgram(AP);

  // The write a(n) flows to the read a(L1) only apparently: the write
  // loop overwrites a(n) before the read loop runs.
  const Dependence *Killed = findFlow(R, 1, 3);
  ASSERT_NE(Killed, nullptr);
  EXPECT_TRUE(Killed->allDead());
  EXPECT_EQ(Killed->Splits.front().DeadReason, 'k');

  // The loop write's flow survives.
  const Dependence *Live = findFlow(R, 2, 3);
  ASSERT_NE(Live, nullptr);
  EXPECT_FALSE(Live->allDead());
}

TEST(Section4, Example1VariantNotKilled) {
  // With the first write going to a(m) and nothing known about m, the
  // kill cannot be verified (m might exceed n+10).
  AnalyzedProgram AP = analyzeSource("symbolic n, m;\n"
                                     "a(m) := 0;\n"
                                     "for L1 := n to n+10 do\n"
                                     "  a(L1) := 0;\n"
                                     "endfor\n"
                                     "for L1 := n to n+20 do\n"
                                     "  x(L1) := a(L1);\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  AnalysisResult R = analyzeProgram(AP);
  const Dependence *Dep = findFlow(R, 1, 3);
  ASSERT_NE(Dep, nullptr);
  EXPECT_FALSE(Dep->allDead());
}

//===----------------------------------------------------------------------===//
// Example 2: covering plus killed dependences.
//===----------------------------------------------------------------------===//

TEST(Section4, Example2CoveringAndKills) {
  AnalyzedProgram AP = analyzeSource("symbolic n, m;\n"
                                     "a(m) := 0;\n"              // stmt 1
                                     "for L1 := 1 to 100 do\n"
                                     "  a(L1) := 0;\n"           // stmt 2
                                     "  for L2 := 1 to n do\n"
                                     "    a(L2) := 0;\n"         // stmt 3
                                     "    a(L2-1) := 0;\n"       // stmt 4
                                     "  endfor\n"
                                     "  for L2 := 2 to n-1 do\n"
                                     "    x(L2) := a(L2);\n"     // stmt 5
                                     "  endfor\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  AnalysisResult R = analyzeProgram(AP);

  // The write a(L2-1) covers the read a(L2) (paper's worked example),
  // loop-independently in L1.
  const Dependence *Cover = findFlow(R, 4, 5);
  ASSERT_NE(Cover, nullptr);
  EXPECT_TRUE(Cover->Covers);
  EXPECT_TRUE(Cover->CoverLoopIndependent);
  EXPECT_FALSE(Cover->allDead());

  // Writes that completely precede the cover die as covered.
  const Dependence *FromAM = findFlow(R, 1, 5);
  ASSERT_NE(FromAM, nullptr);
  EXPECT_TRUE(FromAM->allDead());
  EXPECT_EQ(FromAM->Splits.front().DeadReason, 'c');

  const Dependence *FromAL1 = findFlow(R, 2, 5);
  ASSERT_NE(FromAL1, nullptr);
  EXPECT_TRUE(FromAL1->allDead());

  // The write a(L2) shares both loops with the cover, so it needs the
  // general pairwise kill, which succeeds.
  const Dependence *FromAL2 = findFlow(R, 3, 5);
  ASSERT_NE(FromAL2, nullptr);
  EXPECT_TRUE(FromAL2->allDead());
}

//===----------------------------------------------------------------------===//
// Examples 3-6: refinement.
//===----------------------------------------------------------------------===//

TEST(Section4, Example3RectangularRefinement) {
  AnalyzedProgram AP = analyzeSource("symbolic n, m;\n"
                                     "for L1 := 1 to n do\n"
                                     "  for L2 := 2 to m do\n"
                                     "    a(L2) := a(L2-1);\n"
                                     "  endfor\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  AnalysisResult R = analyzeProgram(AP);
  const Dependence *Dep = findFlow(R, 1, 1);
  ASSERT_NE(Dep, nullptr);
  // Unrefined (0+,1) refines to (0,1).
  EXPECT_EQ(refinedDir(*Dep), "(0,1)");
  EXPECT_TRUE(Dep->anyRefined());
}

TEST(Section4, Example4TrapezoidalRefinement) {
  AnalyzedProgram AP = analyzeSource("symbolic n, m;\n"
                                     "for L1 := 1 to n do\n"
                                     "  for L2 := n+2-L1 to m do\n"
                                     "    a(L2) := a(L2-1);\n"
                                     "  endfor\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  AnalysisResult R = analyzeProgram(AP);
  const Dependence *Dep = findFlow(R, 1, 1);
  ASSERT_NE(Dep, nullptr);
  EXPECT_EQ(refinedDir(*Dep), "(0,1)");
}

TEST(Section4, Example5PartialRefinement) {
  AnalyzedProgram AP = analyzeSource("symbolic n, m;\n"
                                     "for L1 := 1 to n do\n"
                                     "  for L2 := L1 to m do\n"
                                     "    a(L2) := a(L2-1);\n"
                                     "  endfor\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  AnalysisResult R = analyzeProgram(AP);
  const Dependence *Dep = findFlow(R, 1, 1);
  ASSERT_NE(Dep, nullptr);
  // The paper reports (0:1, 1): refinement to (0,1) alone is impossible
  // because iterations with L1 == L2 receive their flow from
  // (L1-1, L2-1). Our split representation keeps the two cases
  // separately: (1,1) carried at L1 and (0,1) carried at L2.
  EXPECT_EQ(refinedDir(*Dep), "(1,1) (0,1)");
}

TEST(Section4, Example6CoupledRefinement) {
  AnalyzedProgram AP = analyzeSource("symbolic n, m;\n"
                                     "for L1 := 1 to n do\n"
                                     "  for L2 := 2 to m do\n"
                                     "    a(L1-L2) := a(L1-L2);\n"
                                     "  endfor\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  AnalysisResult R = analyzeProgram(AP);
  const Dependence *Dep = findFlow(R, 1, 1);
  ASSERT_NE(Dep, nullptr);
  // Unrefined (a,a) with a >= 1; refined to (1,1).
  EXPECT_EQ(refinedDir(*Dep), "(1,1)");
  EXPECT_TRUE(Dep->anyRefined());
}

//===----------------------------------------------------------------------===//
// Direct predicate tests.
//===----------------------------------------------------------------------===//

TEST(Section4, CoversPredicate) {
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := 0 to n do\n"
                                     "  a(i) := 0;\n"
                                     "endfor\n"
                                     "for i := 2 to n do\n"
                                     "  x(i) := a(i-1);\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  const Access *W = findAccess(AP, "a", true);
  const Access *R = findAccess(AP, "a", false);
  EXPECT_TRUE(covers(AP, *W, *R));

  // Shrink the write loop so location n-1 is never written: no cover.
  AnalyzedProgram AP2 = analyzeSource("symbolic n;\n"
                                      "for i := 0 to n-3 do\n"
                                      "  a(i) := 0;\n"
                                      "endfor\n"
                                      "for i := 2 to n do\n"
                                      "  x(i) := a(i-1);\n"
                                      "endfor\n");
  ASSERT_TRUE(AP2.ok());
  const Access *W2 = findAccess(AP2, "a", true);
  const Access *R2 = findAccess(AP2, "a", false);
  EXPECT_FALSE(covers(AP2, *W2, *R2));
}

TEST(Section4, TerminatesPredicate) {
  // Every location the first loop writes is overwritten by the second.
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := 1 to n do\n"
                                     "  a(i) := 0;\n"
                                     "endfor\n"
                                     "for i := 0 to n do\n"
                                     "  a(i) := 1;\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  const Access *W1 = findAccess(AP, "a", true, 1);
  const Access *W2 = findAccess(AP, "a", true, 2);
  ASSERT_TRUE(W1 && W2);
  EXPECT_TRUE(terminates(AP, *W1, *W2));
  // The reverse is false: the second loop also writes a(0), which the
  // first never overwrites (it runs earlier anyway).
  EXPECT_FALSE(terminates(AP, *W2, *W1));
}

TEST(Section4, TerminateDriverKillsDeadFlow) {
  // Values written by stmt 1 are all overwritten by stmt 2 before the
  // read loop: with the Terminate extension the 1 -> 3 flow dies.
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := 1 to n do\n"
                                     "  a(i) := 0;\n"
                                     "endfor\n"
                                     "for i := 1 to n do\n"
                                     "  a(i) := 1;\n"
                                     "endfor\n"
                                     "for i := 1 to n do\n"
                                     "  x(i) := a(i);\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  DriverOptions Opts;
  Opts.Terminate = true;
  AnalysisResult R = analyzeProgram(AP, Opts);
  const Dependence *Dead = findFlow(R, 1, 3);
  ASSERT_NE(Dead, nullptr);
  EXPECT_TRUE(Dead->allDead());
  const Dependence *Live = findFlow(R, 2, 3);
  ASSERT_NE(Live, nullptr);
  EXPECT_FALSE(Live->allDead());
}

TEST(Section4, KillsPredicateDirect) {
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "a(n) := 0;\n"
                                     "for L1 := n to n+10 do\n"
                                     "  a(L1) := 0;\n"
                                     "endfor\n"
                                     "for L1 := n to n+20 do\n"
                                     "  x(L1) := a(L1);\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  const Access *A = findAccess(AP, "a", true, 1);
  const Access *B = findAccess(AP, "a", true, 2);
  const Access *C = findAccess(AP, "a", false);
  ASSERT_TRUE(A && B && C);
  EXPECT_TRUE(kills(AP, *A, *B, *C, /*Level=*/0));
}

TEST(Section4, QuickTestsDoNotChangeResults) {
  const char *Src = "symbolic n, m;\n"
                    "a(m) := 0;\n"
                    "for L1 := 1 to 100 do\n"
                    "  a(L1) := 0;\n"
                    "  for L2 := 1 to n do\n"
                    "    a(L2) := 0;\n"
                    "    a(L2-1) := 0;\n"
                    "  endfor\n"
                    "  for L2 := 2 to n-1 do\n"
                    "    x(L2) := a(L2);\n"
                    "  endfor\n"
                    "endfor\n";
  AnalyzedProgram AP = analyzeSource(Src);
  ASSERT_TRUE(AP.ok());
  DriverOptions Fast, Slow;
  Slow.QuickTests = false;
  AnalysisResult RF = analyzeProgram(AP, Fast);
  AnalysisResult RS = analyzeProgram(AP, Slow);
  ASSERT_EQ(RF.Flow.size(), RS.Flow.size());
  for (unsigned I = 0; I != RF.Flow.size(); ++I) {
    EXPECT_EQ(RF.Flow[I].allDead(), RS.Flow[I].allDead())
        << RF.Flow[I].Src->Text << " -> " << RF.Flow[I].Dst->Text;
  }
}

TEST(Section4, LiveDeadTablesRender) {
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "a(n) := 0;\n"
                                     "for L1 := n to n+10 do\n"
                                     "  a(L1) := 0;\n"
                                     "endfor\n"
                                     "for L1 := n to n+20 do\n"
                                     "  x(L1) := a(L1);\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  AnalysisResult R = analyzeProgram(AP);
  std::string Live = R.liveFlowTable();
  std::string Dead = R.deadFlowTable();
  EXPECT_NE(Live.find("2: a(L1)"), std::string::npos);
  EXPECT_NE(Dead.find("1: a(n)"), std::string::npos);
  EXPECT_NE(Dead.find("[k]"), std::string::npos);
}

TEST(Section4, StridedNestRefinementKeepsBackwardFlow) {
  // Regression: both loops strided, write subscript with a negative outer
  // coefficient, so the flow's distance vector is (+, -). The refinement
  // snapshot used to drive mod-hat equality elimination into a cycle over
  // the stride wildcards (they never reach a unit coefficient because the
  // protected distance variables stay in the rows), saturate, and then
  // read a bogus unsat off the clamped rows -- silently deleting the
  // dependence. The trace oracle disagrees: b(0) written at (i=1,j=2) is
  // read at (i=3,j=0).
  AnalyzedProgram AP = analyzeSource("for i := 1 to 5 step 2 do\n"
                                     "  for j := 0 to 6 step 2 do\n"
                                     "    b(-i+j-1) := 5;\n"
                                     "    c(0) := b(j);\n"
                                     "  endfor\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  AnalysisResult R = analyzeProgram(AP);
  const Dependence *Dep = findFlow(R, 1, 2);
  ASSERT_NE(Dep, nullptr) << "strided backward flow missed entirely";
  EXPECT_FALSE(Dep->allDead());
  EXPECT_EQ(refinedDir(*Dep), "(2:4,-4:-2)");
}
