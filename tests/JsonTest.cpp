//===- tests/JsonTest.cpp - The request-protocol JSON reader --------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
// Fuzz-style edge cases for api/Json.h: the omega-serve request parser
// faces arbitrary client bytes, so \uXXXX decoding (including surrogate
// pairs), the nesting depth bound, and truncated-input error offsets are
// contract, not nicety.
//
//===----------------------------------------------------------------------===//

#include "api/Json.h"

#include <gtest/gtest.h>

#include <string>

using namespace omega::api;

namespace {

json::Value parseOk(const std::string &Text) {
  json::Value V;
  std::string Err;
  EXPECT_TRUE(json::parse(Text, V, Err)) << Text << " -> " << Err;
  return V;
}

std::string parseErr(const std::string &Text) {
  json::Value V;
  std::string Err;
  EXPECT_FALSE(json::parse(Text, V, Err)) << Text << " parsed unexpectedly";
  return Err;
}

TEST(Json, BasicDocuments) {
  json::Value V = parseOk(R"({"id": 3, "ok": true, "x": null, "a": [1, -2.5]})");
  ASSERT_TRUE(V.isObject());
  EXPECT_EQ(V.get("id")->asInt(), 3);
  EXPECT_TRUE(V.get("ok")->asBool());
  EXPECT_TRUE(V.get("x")->isNull());
  ASSERT_EQ(V.get("a")->asArray().size(), 2u);
  EXPECT_DOUBLE_EQ(V.get("a")->asArray()[1].asNumber(), -2.5);
}

//===----------------------------------------------------------------------===//
// \uXXXX decoding
//===----------------------------------------------------------------------===//

TEST(Json, UnicodeEscapeAscii) {
  EXPECT_EQ(parseOk(R"("\u0041\u007a")").asString(), "Az");
  // Escaped control characters decode like the named escapes do.
  EXPECT_EQ(parseOk(R"("\u0009")").asString(), "\t");
}

TEST(Json, UnicodeEscapeTwoByte) {
  // U+00E9 LATIN SMALL LETTER E WITH ACUTE -> C3 A9.
  EXPECT_EQ(parseOk(R"("caf\u00e9")").asString(), "caf\xc3\xa9");
}

TEST(Json, UnicodeEscapeThreeByte) {
  // U+20AC EURO SIGN -> E2 82 AC.
  EXPECT_EQ(parseOk(R"("\u20ac")").asString(), "\xe2\x82\xac");
  // Case-insensitive hex digits.
  EXPECT_EQ(parseOk(R"("\u20AC")").asString(), "\xe2\x82\xac");
}

TEST(Json, SurrogatePairDecodesToFourByteUtf8) {
  // U+1F600 GRINNING FACE = \uD83D\uDE00 -> F0 9F 98 80.
  EXPECT_EQ(parseOk(R"("\ud83d\ude00")").asString(), "\xf0\x9f\x98\x80");
}

TEST(Json, UnpairedSurrogatesAreRejected) {
  EXPECT_NE(parseErr(R"("\ud83d")").find("unpaired high surrogate"),
            std::string::npos);
  EXPECT_NE(parseErr(R"("\ud83dx")").find("unpaired high surrogate"),
            std::string::npos);
  EXPECT_NE(parseErr(R"("\ud83d\n")").find("unpaired high surrogate"),
            std::string::npos);
  EXPECT_NE(parseErr(R"("\ude00")").find("unpaired low surrogate"),
            std::string::npos);
  // A high surrogate followed by a \u escape that is not a low surrogate.
  EXPECT_NE(parseErr(R"("\ud83d\u0041")").find("invalid low surrogate"),
            std::string::npos);
}

TEST(Json, MalformedUnicodeEscapes) {
  EXPECT_NE(parseErr(R"("\u12")").find("truncated \\u escape"),
            std::string::npos);
  EXPECT_NE(parseErr(R"("\uzzzz")").find("bad \\u escape digit"),
            std::string::npos);
  // The offset points at the offending digit, not the string start.
  EXPECT_EQ(parseErr(R"("\u12g4")"), "bad \\u escape digit at byte 5");
}

TEST(Json, EscapeParseRoundTrip) {
  std::string Raw = "line1\nline2\t\"quoted\" \\slash\x01";
  json::Value V = parseOk("\"" + json::escape(Raw) + "\"");
  EXPECT_EQ(V.asString(), Raw);
}

//===----------------------------------------------------------------------===//
// Depth bound
//===----------------------------------------------------------------------===//

TEST(Json, NestingWithinBoundParses) {
  // 63 arrays around a number: depth 64 at the innermost value.
  std::string Doc(63, '[');
  Doc += "1";
  Doc += std::string(63, ']');
  json::Value V = parseOk(Doc);
  EXPECT_TRUE(V.isArray());
}

TEST(Json, NestingBeyondBoundFailsCleanly) {
  // 200 opening brackets would recurse unboundedly without the limit;
  // the parser must fail with a typed error instead.
  std::string Doc(200, '[');
  EXPECT_NE(parseErr(Doc).find("nesting too deep"), std::string::npos);
  std::string Objs;
  for (int I = 0; I != 100; ++I)
    Objs += "{\"k\":";
  EXPECT_NE(parseErr(Objs).find("nesting too deep"), std::string::npos);
}

//===----------------------------------------------------------------------===//
// Truncated input: typed errors with exact byte offsets
//===----------------------------------------------------------------------===//

TEST(Json, TruncatedInputErrorPositions) {
  EXPECT_EQ(parseErr(""), "unexpected end of input at byte 0");
  EXPECT_EQ(parseErr("\"abc"), "unterminated string at byte 4");
  EXPECT_EQ(parseErr("{\"a\": 1"), "unterminated object at byte 7");
  EXPECT_EQ(parseErr("[1, 2"), "unterminated array at byte 5");
  EXPECT_EQ(parseErr("[1, "), "unexpected end of input at byte 4");
  EXPECT_EQ(parseErr("\"\\"), "unterminated escape at byte 2");
  EXPECT_EQ(parseErr("\"\\u00"), "truncated \\u escape at byte 5");
}

TEST(Json, MalformedDocuments) {
  EXPECT_NE(parseErr("01").find("malformed number"), std::string::npos);
  EXPECT_NE(parseErr("1 2").find("trailing characters"), std::string::npos);
  EXPECT_NE(parseErr("troo").find("bad literal"), std::string::npos);
  EXPECT_NE(parseErr("{\"a\" 1}").find("expected ':'"), std::string::npos);
  EXPECT_NE(parseErr("\"a\nb\"").find("raw control character"),
            std::string::npos);
  EXPECT_NE(parseErr("\"\\q\"").find("unknown escape"), std::string::npos);
}

} // namespace
