//===- tests/MathUtilsTest.cpp --------------------------------------------===//
//
// Unit tests for the arithmetic primitives in support/MathUtils.h.
//
//===----------------------------------------------------------------------===//

#include "support/MathUtils.h"

#include <gtest/gtest.h>

using namespace omega;

TEST(MathUtils, GcdBasics) {
  EXPECT_EQ(gcd64(0, 0), 0);
  EXPECT_EQ(gcd64(0, 7), 7);
  EXPECT_EQ(gcd64(7, 0), 7);
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(-12, 18), 6);
  EXPECT_EQ(gcd64(12, -18), 6);
  EXPECT_EQ(gcd64(-12, -18), 6);
  EXPECT_EQ(gcd64(1, 999999937), 1);
}

TEST(MathUtils, LcmBasics) {
  EXPECT_EQ(lcm64(0, 5), 0);
  EXPECT_EQ(lcm64(4, 6), 12);
  EXPECT_EQ(lcm64(-4, 6), 12);
  EXPECT_EQ(lcm64(7, 13), 91);
}

TEST(MathUtils, FloorDiv) {
  EXPECT_EQ(floorDiv(7, 2), 3);
  EXPECT_EQ(floorDiv(-7, 2), -4);
  EXPECT_EQ(floorDiv(6, 3), 2);
  EXPECT_EQ(floorDiv(-6, 3), -2);
  EXPECT_EQ(floorDiv(0, 5), 0);
}

TEST(MathUtils, CeilDiv) {
  EXPECT_EQ(ceilDiv(7, 2), 4);
  EXPECT_EQ(ceilDiv(-7, 2), -3);
  EXPECT_EQ(ceilDiv(6, 3), 2);
  EXPECT_EQ(ceilDiv(-6, 3), -2);
  EXPECT_EQ(ceilDiv(0, 5), 0);
}

TEST(MathUtils, FloorCeilDivAgreeOnExact) {
  for (int64_t A = -20; A <= 20; ++A)
    for (int64_t B = 1; B <= 7; ++B)
      if (A % B == 0) {
        EXPECT_EQ(floorDiv(A, B), ceilDiv(A, B)) << A << "/" << B;
      }
}

TEST(MathUtils, ModHatCongruentAndSmall) {
  for (int64_t A = -50; A <= 50; ++A) {
    for (int64_t B = 1; B <= 12; ++B) {
      int64_t R = modHat(A, B);
      // R == A (mod B).
      EXPECT_EQ(((A - R) % B + B) % B, 0) << "A=" << A << " B=" << B;
      // |R| <= B / 2.
      EXPECT_LE(2 * absVal(R), B) << "A=" << A << " B=" << B;
    }
  }
}

TEST(MathUtils, ModHatKeyIdentity) {
  // The equality-elimination step relies on modHat(a, |a|+1) == -sign(a).
  for (int64_t A : {2, 3, 5, 17, -2, -3, -5, -17}) {
    int64_t M = absVal(A) + 1;
    EXPECT_EQ(modHat(A, M), -signOf(A)) << "A=" << A;
  }
}

TEST(MathUtils, SignOf) {
  EXPECT_EQ(signOf(5), 1);
  EXPECT_EQ(signOf(-5), -1);
  EXPECT_EQ(signOf(0), 0);
}

TEST(MathUtils, CheckedOpsPassThrough) {
  EXPECT_EQ(checkedAdd(2, 3), 5);
  EXPECT_EQ(checkedSub(2, 3), -1);
  EXPECT_EQ(checkedMul(-4, 5), -20);
}
