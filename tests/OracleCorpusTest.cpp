//===- tests/OracleCorpusTest.cpp -----------------------------------------===//
//
// Runs the trace oracle over the whole evaluation corpus: every kernel
// the Figure 6/7 measurements use plus every example program shipped in
// examples/programs/. Each program is executed with small concrete
// bindings for its symbolic constants and every observed dependence
// witness is checked against the analyzer.
//
//===----------------------------------------------------------------------===//

#include "ir/Sema.h"
#include "kernels/Kernels.h"
#include "oracle/TraceOracle.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace omega;
namespace fs = std::filesystem;

namespace {

/// Small bindings that keep traces short but non-trivial: distinct sizes
/// so rectangular nests are genuinely rectangular.
oracle::TraceOracleOptions corpusOptions(const ir::AnalyzedProgram &AP) {
  oracle::TraceOracleOptions Opts;
  for (const std::string &Sym : AP.Source.SymbolicConsts) {
    if (Sym == "n")
      Opts.Symbols[Sym] = 5;
    else if (Sym == "m")
      Opts.Symbols[Sym] = 4;
    else
      Opts.Symbols[Sym] = 3;
  }
  return Opts;
}

/// Returns the witnesses checked (0 for skipped / trivial programs) so
/// callers can assert the corpus as a whole was not vacuous -- single
/// programs legitimately trace no conflicting pair.
unsigned checkSource(const std::string &Name, const std::string &Source) {
  SCOPED_TRACE(Name);
  ir::AnalyzedProgram AP = ir::analyzeSource(Source);
  if (!AP.ok()) {
    ADD_FAILURE() << Name << " failed analysis";
    return 0;
  }
  oracle::TraceReport R = oracle::checkProgram(AP, corpusOptions(AP));
  if (R.ExecFailed) {
    // A handful of corpus programs read uninitialized scalars or index
    // with runtime array values; the interpreter rejects those rather
    // than fabricate a trace. That is a skip, not a failure.
    GTEST_LOG_(INFO) << Name << ": not interpretable (" << R.ExecError << ")";
    return 0;
  }
  EXPECT_FALSE(R.Truncated) << Name << ": trace budget exhausted";
  EXPECT_TRUE(R.Mismatches.empty()) << R.summary();
  return R.WitnessesChecked;
}

} // namespace

TEST(OracleCorpus, Kernels) {
  unsigned TotalWitnesses = 0;
  for (const kernels::Kernel &K : kernels::corpus())
    TotalWitnesses += checkSource(K.Name, K.Source);
  EXPECT_GT(TotalWitnesses, 0u) << "corpus traced no witnesses at all";
}

TEST(OracleCorpus, ExamplePrograms) {
  fs::path Dir = fs::path(OMEGA_EXAMPLES_DIR);
  ASSERT_TRUE(fs::is_directory(Dir)) << "missing " << Dir;
  unsigned Seen = 0;
  unsigned TotalWitnesses = 0;
  for (const fs::directory_entry &E : fs::directory_iterator(Dir)) {
    if (!E.is_regular_file() || E.path().extension() != ".tiny")
      continue;
    ++Seen;
    std::ifstream In(E.path());
    std::ostringstream OS;
    OS << In.rdbuf();
    TotalWitnesses += checkSource(E.path().filename().string(), OS.str());
  }
  EXPECT_GT(Seen, 0u) << "no .tiny programs under " << Dir;
  EXPECT_GT(TotalWitnesses, 0u) << "examples traced no witnesses at all";
}
