//===- tests/TestUtils.h - Shared helpers for the test suites ------------===//
//
// Brute-force oracles and random-problem generators used by the property
// tests. Generated problems always contain explicit box bounds on every
// variable so that exhaustive enumeration over the box is an exact oracle.
//
//===----------------------------------------------------------------------===//

#ifndef OMEGA_TESTS_TESTUTILS_H
#define OMEGA_TESTS_TESTUTILS_H

#include "omega/Problem.h"

#include <cstdint>
#include <functional>
#include <random>
#include <vector>

namespace omega {
namespace testutil {

/// Evaluates one constraint at a full assignment (indexed by VarId).
inline bool evalConstraint(const Constraint &Row,
                           const std::vector<int64_t> &Point) {
  int64_t Sum = Row.getConstant();
  for (VarId V = 0, E = Row.getNumVars(); V != E; ++V)
    Sum += Row.getCoeff(V) * Point[V];
  return Row.isEquality() ? Sum == 0 : Sum >= 0;
}

/// Evaluates every constraint of \p P at \p Point.
inline bool evalProblem(const Problem &P, const std::vector<int64_t> &Point) {
  for (const Constraint &Row : P.constraints())
    if (!evalConstraint(Row, Point))
      return false;
  return true;
}

/// Enumerates all assignments of [Lo, Hi] to the variables in \p Vars,
/// holding the other coordinates of \p Point fixed, and calls \p Fn with
/// the full assignment; stops early if Fn returns true. Returns whether any
/// call returned true.
inline bool forEachPointFrom(std::vector<int64_t> Point,
                             const std::vector<VarId> &Vars, int64_t Lo,
                             int64_t Hi,
                             const std::function<
                                 bool(const std::vector<int64_t> &)> &Fn) {
  std::function<bool(unsigned)> Rec = [&](unsigned I) -> bool {
    if (I == Vars.size())
      return Fn(Point);
    for (int64_t X = Lo; X <= Hi; ++X) {
      Point[Vars[I]] = X;
      if (Rec(I + 1))
        return true;
    }
    return false;
  };
  return Rec(0);
}

/// Enumerates all points of [Lo, Hi]^|Vars| (other coordinates zero).
inline bool forEachPoint(unsigned NumVars, const std::vector<VarId> &Vars,
                         int64_t Lo, int64_t Hi,
                         const std::function<bool(const std::vector<int64_t> &)>
                             &Fn) {
  return forEachPointFrom(std::vector<int64_t>(NumVars, 0), Vars, Lo, Hi, Fn);
}

/// Exhaustive satisfiability oracle: valid when \p P confines all its
/// variables to [Lo, Hi] (the generators below add explicit box bounds).
inline bool bruteForceSat(const Problem &P, int64_t Lo, int64_t Hi) {
  std::vector<VarId> Vars;
  for (VarId V = 0, E = P.getNumVars(); V != E; ++V)
    Vars.push_back(V);
  return forEachPoint(P.getNumVars(), Vars, Lo, Hi,
                      [&](const std::vector<int64_t> &Pt) {
                        return evalProblem(P, Pt);
                      });
}

/// Configuration for random problem generation.
struct RandomProblemConfig {
  unsigned NumVars = 3;
  unsigned NumEQs = 1;
  unsigned NumGEQs = 3;
  int64_t CoeffRange = 3;  // coefficients in [-CoeffRange, CoeffRange]
  int64_t ConstRange = 8;  // constants in [-ConstRange, ConstRange]
  int64_t Box = 6;         // every variable bounded to [-Box, Box]
};

/// Generates a random conjunction including explicit box bounds.
inline Problem randomProblem(std::mt19937 &Rng,
                             const RandomProblemConfig &Cfg) {
  Problem P;
  std::vector<VarId> Vars;
  for (unsigned I = 0; I != Cfg.NumVars; ++I)
    Vars.push_back(P.addVar("x" + std::to_string(I)));

  std::uniform_int_distribution<int64_t> Coeff(-Cfg.CoeffRange,
                                               Cfg.CoeffRange);
  std::uniform_int_distribution<int64_t> Const(-Cfg.ConstRange,
                                               Cfg.ConstRange);

  auto addRandomRow = [&](ConstraintKind Kind) {
    Constraint &Row = P.addRow(Kind);
    for (VarId V : Vars)
      Row.setCoeff(V, Coeff(Rng));
    Row.setConstant(Const(Rng));
  };
  for (unsigned I = 0; I != Cfg.NumEQs; ++I)
    addRandomRow(ConstraintKind::EQ);
  for (unsigned I = 0; I != Cfg.NumGEQs; ++I)
    addRandomRow(ConstraintKind::GEQ);

  for (VarId V : Vars) {
    P.addGEQ({{V, 1}}, Cfg.Box);  // V >= -Box
    P.addGEQ({{V, -1}}, Cfg.Box); // V <= Box
  }
  return P;
}

} // namespace testutil
} // namespace omega

#endif // OMEGA_TESTS_TESTUTILS_H
