//===- tests/TestUtils.h - Shared helpers for the test suites ------------===//
//
// Thin aliases over the oracle library (src/oracle/): the brute-force
// evaluators and random-problem generator the property tests use are the
// same code the omega-fuzz driver runs, so a seed that fails in CI
// reproduces locally through either entry point (see oracle::fuzzSeed
// and the OMEGA_FUZZ_SEED environment variable).
//
//===----------------------------------------------------------------------===//

#ifndef OMEGA_TESTS_TESTUTILS_H
#define OMEGA_TESTS_TESTUTILS_H

#include "oracle/Generate.h"
#include "oracle/ModelOracle.h"

#include <cstdint>
#include <vector>

namespace omega {
namespace testutil {

using oracle::evalConstraint;
using oracle::evalProblem;
using oracle::forEachPoint;
using oracle::forEachPointFrom;
using oracle::fuzzSeed;
using oracle::RandomProblemConfig;
using oracle::randomProblem;
using oracle::seedMessage;

/// Exhaustive satisfiability oracle over an explicit [Lo, Hi] box on every
/// variable (the historical test-suite signature; oracle::bruteForceSat
/// takes a symmetric box and skips dead columns).
inline bool bruteForceSat(const Problem &P, int64_t Lo, int64_t Hi) {
  std::vector<VarId> Vars;
  for (VarId V = 0, E = P.getNumVars(); V != static_cast<VarId>(E); ++V)
    Vars.push_back(V);
  return forEachPoint(P.getNumVars(), Vars, Lo, Hi,
                      [&](const std::vector<int64_t> &Pt) {
                        return evalProblem(P, Pt);
                      });
}

} // namespace testutil
} // namespace omega

#endif // OMEGA_TESTS_TESTUTILS_H
