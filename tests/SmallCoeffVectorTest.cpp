//===- tests/SmallCoeffVectorTest.cpp -------------------------------------===//
//
// Unit tests for the inline-storage coefficient vector and the
// zero-allocation property of small constraint rows.
//
//===----------------------------------------------------------------------===//

#include "support/SmallCoeffVector.h"

#include "omega/OmegaContext.h"
#include "omega/Problem.h"
#include "omega/Satisfiability.h"

#include <gtest/gtest.h>

#include <utility>

using namespace omega;

namespace {

/// Counts SmallCoeffVector heap buffers allocated while \p Fn runs.
template <typename Fn> uint64_t heapSpills(Fn &&F) {
  uint64_t Before = SmallCoeffVector::heapAllocationsThisThread();
  F();
  return SmallCoeffVector::heapAllocationsThisThread() - Before;
}

} // namespace

TEST(SmallCoeffVector, InlineConstructionIsAllocationFree) {
  EXPECT_EQ(heapSpills([] {
              SmallCoeffVector V(SmallCoeffVector::InlineCapacity);
              for (unsigned I = 0; I != V.size(); ++I)
                V[I] = static_cast<int64_t>(I) - 3;
              SmallCoeffVector Copy(V);
              SmallCoeffVector Moved(std::move(Copy));
              EXPECT_EQ(Moved, V);
            }),
            0u);
}

TEST(SmallCoeffVector, ZeroFilledAndGrowKeepsValues) {
  SmallCoeffVector V(3);
  EXPECT_EQ(V.size(), 3u);
  for (int64_t C : V)
    EXPECT_EQ(C, 0);
  V[0] = 7;
  V[2] = -9;
  V.resize(12); // spills to the heap, preserving prefix, zeroing the rest
  ASSERT_EQ(V.size(), 12u);
  EXPECT_EQ(V[0], 7);
  EXPECT_EQ(V[1], 0);
  EXPECT_EQ(V[2], -9);
  for (unsigned I = 3; I != 12; ++I)
    EXPECT_EQ(V[I], 0);
}

TEST(SmallCoeffVector, SpillCountsAreObservable) {
  EXPECT_GE(heapSpills([] {
              SmallCoeffVector V(SmallCoeffVector::InlineCapacity + 1);
              V[SmallCoeffVector::InlineCapacity] = 1;
            }),
            1u);
}

TEST(SmallCoeffVector, HeapCopyAndMoveSemantics) {
  SmallCoeffVector Big(20);
  for (unsigned I = 0; I != 20; ++I)
    Big[I] = I * I;
  SmallCoeffVector Copy(Big);
  EXPECT_EQ(Copy, Big);

  // Copy-assign into an existing heap buffer of sufficient capacity must
  // not allocate again.
  EXPECT_EQ(heapSpills([&] {
              SmallCoeffVector Dst(20);
              Dst = Big;
              EXPECT_EQ(Dst, Big);
            }),
            1u); // exactly the one allocation for Dst itself

  SmallCoeffVector Moved(std::move(Copy));
  EXPECT_EQ(Moved, Big);
  SmallCoeffVector Target;
  Target = std::move(Moved);
  EXPECT_EQ(Target, Big);
}

TEST(SmallCoeffVector, EqualityComparesSizeAndContents) {
  SmallCoeffVector A(4), B(4), C(5);
  A[1] = 3;
  B[1] = 3;
  EXPECT_TRUE(A == B);
  B[2] = -1;
  EXPECT_FALSE(A == B);
  EXPECT_FALSE(A == C);
}

//===----------------------------------------------------------------------===//
// Zero-allocation property of the Omega core on small problems
//===----------------------------------------------------------------------===//

TEST(SmallCoeffVector, ConstraintRowsStayInlineUpToCapacity) {
  EXPECT_EQ(heapSpills([] {
              Problem P;
              VarId V[SmallCoeffVector::InlineCapacity];
              for (unsigned I = 0; I != SmallCoeffVector::InlineCapacity; ++I)
                V[I] = P.addVar("v" + std::to_string(I));
              for (unsigned I = 0; I + 1 < SmallCoeffVector::InlineCapacity;
                   ++I) {
                P.addGEQ({{V[I], 1}, {V[I + 1], -1}}, 0);
                P.addGEQ({{V[I], -2}, {V[I + 1], 3}}, 11);
              }
              Problem Copy = P;
              Copy.normalize();
            }),
            0u);
}

TEST(SmallCoeffVector, SatisfiabilityOnSmallProblemsIsRowAllocationFree) {
  // A full Omega-test run (equality elimination, Fourier-Motzkin with
  // splinters) over problems that stay within the inline capacity must
  // never spill a coefficient row to the heap. Mod-hat wildcards grow the
  // column count, so leave headroom below the capacity.
  EXPECT_EQ(heapSpills([] {
              OmegaContext Ctx;
              Problem P;
              VarId I = P.addVar("i");
              VarId J = P.addVar("j");
              VarId K = P.addVar("k");
              P.addGEQ({{I, 1}}, 0);
              P.addGEQ({{I, -1}}, 40);
              P.addGEQ({{J, 2}, {I, -1}}, 0);
              P.addGEQ({{J, -3}, {I, 1}}, 50);
              P.addEQ({{K, 1}, {I, -1}, {J, -2}}, 4);
              EXPECT_TRUE(isSatisfiable(P, SatOptions(), Ctx));

              Problem Q = P;
              Q.addGEQ({{K, 5}, {J, -7}}, -3);
              isSatisfiable(std::move(Q), SatOptions(), Ctx);
            }),
            0u);
}
