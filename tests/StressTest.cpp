//===- tests/StressTest.cpp -----------------------------------------------===//
//
// Robustness at size: deep nests, wide programs, long same-array chains.
// These guard against accidental exponential behavior in the front end
// and the analysis driver.
//
//===----------------------------------------------------------------------===//

#include "analysis/Driver.h"
#include "TestUtils.h"

#include "oracle/Generate.h"

#include <gtest/gtest.h>

#include <random>
#include <string>

using namespace omega;
using namespace omega::analysis;
using omega::ir::analyzeSource;

TEST(Stress, FiveDeepRecurrenceNest) {
  std::string Src = oracle::deepRecurrenceNest(5);
  ir::AnalyzedProgram AP = analyzeSource(Src);
  ASSERT_TRUE(AP.ok()) << Src;
  EXPECT_EQ(AP.Loops.size(), 5u);
  AnalysisResult R = analyzeProgram(AP);
  // Identity subscripts: the only flow is the loop-independent... none:
  // the read precedes the write in the same instance and no other
  // instance matches; anti is loop-independent.
  EXPECT_TRUE(R.Flow.empty());
  ASSERT_EQ(R.Anti.size(), 1u);
  ASSERT_EQ(R.Anti.front().Splits.size(), 1u);
  EXPECT_EQ(R.Anti.front().Splits.front().Level, 0u);
}

TEST(Stress, FiveDeepShiftedNest) {
  // A shifted subscript in the innermost dimension: carried at level 5.
  ir::AnalyzedProgram AP = analyzeSource(
      "symbolic n;\n"
      "for i := 2 to n do\n"
      " for j := 2 to n do\n"
      "  for k := 2 to n do\n"
      "   for l := 2 to n do\n"
      "    for m := 2 to n do\n"
      "     a(i,j,k,l,m) := a(i,j,k,l,m-1);\n"
      "    endfor\n"
      "   endfor\n"
      "  endfor\n"
      " endfor\n"
      "endfor\n");
  ASSERT_TRUE(AP.ok());
  AnalysisResult R = analyzeProgram(AP);
  ASSERT_EQ(R.Flow.size(), 1u);
  ASSERT_EQ(R.Flow.front().Splits.size(), 1u);
  EXPECT_EQ(R.Flow.front().Splits.front().Level, 5u);
  EXPECT_EQ(R.Flow.front().Splits.front().dirToString(), "(0,0,0,0,1)");
}

TEST(Stress, WideProgramManyLoops) {
  ir::AnalyzedProgram AP = analyzeSource(oracle::wideProgram(60));
  ASSERT_TRUE(AP.ok());
  EXPECT_EQ(AP.Loops.size(), 60u);
  AnalysisResult R = analyzeProgram(AP);
  // One carried flow per distinct array; no cross-array pairs.
  EXPECT_EQ(R.Flow.size(), 60u);
  EXPECT_EQ(R.Pairs.size(), 60u);
}

TEST(Stress, LongSameArrayChain) {
  // Twelve statements shifting the same array: quadratic pair count with
  // kills; must stay fast and sound.
  ir::AnalyzedProgram AP = analyzeSource(oracle::sameArrayChain(12));
  ASSERT_TRUE(AP.ok());
  AnalysisResult R = analyzeProgram(AP);
  EXPECT_EQ(R.Pairs.size(), 144u);
  // Each statement's write is the last in its iteration... every read
  // a(i-S) is reached only by the LAST write of iteration i-S (statement
  // 12); all other flows are killed.
  unsigned Live = 0, Dead = 0;
  for (const deps::Dependence &D : R.Flow)
    for (const deps::DepSplit &S : D.Splits)
      (S.Dead ? Dead : Live)++;
  EXPECT_GT(Dead, 0u);
  EXPECT_GE(Live, 12u);
}

TEST(Stress, ParserHandlesLargePrograms) {
  std::string Src;
  for (int I = 0; I != 1000; ++I)
    Src += "x" + std::to_string(I) + "(0) := " + std::to_string(I) + ";\n";
  ir::ParseResult PR = ir::parseProgram(Src);
  ASSERT_TRUE(PR.ok());
  EXPECT_EQ(PR.Prog.Body.size(), 1000u);
  ir::AnalyzedProgram AP = ir::analyze(std::move(PR.Prog));
  EXPECT_TRUE(AP.ok());
  EXPECT_EQ(AP.Accesses.size(), 1000u);
}

TEST(Stress, ManySymbolicConstants) {
  ir::AnalyzedProgram AP = analyzeSource(oracle::manySymbolicConstants(40));
  ASSERT_TRUE(AP.ok());
  AnalysisResult R = analyzeProgram(AP);
  // With s1 unconstrained both directions must be assumed.
  EXPECT_FALSE(R.Flow.empty());
}

TEST(Stress, RandomNormalizeHashedMatchesReference) {
  // The hashed normalize must agree with the retained ordered-map
  // reference bit-for-bit -- verdict, rows, emission order, red tags --
  // over a large random population, including problems engineered to
  // collide in the merge buckets (duplicate rows, flipped orientations).
  std::mt19937 Rng(20260806);
  testutil::RandomProblemConfig Cfg;
  Cfg.NumVars = 4;
  Cfg.NumEQs = 2;
  Cfg.NumGEQs = 6;
  for (unsigned Iter = 0; Iter != 500; ++Iter) {
    Problem P = testutil::randomProblem(Rng, Cfg);
    // Inject bucket collisions: re-add some rows verbatim, negated, and
    // with a shifted constant, so the merge passes have real work.
    unsigned NumRows = P.getNumConstraints();
    for (unsigned I = 0; I < NumRows; I += 3) {
      Constraint Row = P.constraints()[I];
      P.addConstraint(Row);
      if (Row.isInequality()) {
        Row.addToConstant(Iter % 5 - 2);
        P.addConstraint(Row);
        Row.negateForm();
        P.addConstraint(std::move(Row));
      }
    }

    Problem Hashed = P;
    Problem Ref = P;
    Problem::NormalizeResult HR = Hashed.normalize();
    Problem::NormalizeResult RR = Ref.normalizeReference();
    ASSERT_EQ(HR, RR) << "iteration " << Iter << ": " << P.toString();
    if (HR != Problem::NormalizeResult::Ok)
      continue;
    ASSERT_EQ(Hashed.getNumConstraints(), Ref.getNumConstraints())
        << "iteration " << Iter << ": " << P.toString();
    for (unsigned I = 0, E = Hashed.getNumConstraints(); I != E; ++I) {
      const Constraint &A = Hashed.constraints()[I];
      const Constraint &B = Ref.constraints()[I];
      ASSERT_TRUE(A.getKind() == B.getKind() && A.isRed() == B.isRed() &&
                  A.sameForm(B))
          << "iteration " << Iter << " row " << I << ": "
          << Hashed.constraintToString(A) << " vs "
          << Ref.constraintToString(B);
    }
  }
}
