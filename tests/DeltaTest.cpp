//===- tests/DeltaTest.cpp - Edit-incremental re-analysis -----------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
// The incremental contract, end to end: canonical pair fingerprints are
// name-free and semantics-sensitive; baselines round-trip through their
// binary format and reject corruption; an analysis replayed against a
// baseline renders byte-identical results while classifying every pair
// group exactly once; the global result store answers structurally-seen
// pairs across unrelated requests (LRU-bounded, sig-gated, thread-safe,
// with checksummed persistence that rejects corruption whole); snapshot
// stores evict LRU under a capacity bound; and the serving stack retains
// per-session baselines, falls back to the global store after eviction,
// and clamps per-request parallelism to the worker pool.
//
//===----------------------------------------------------------------------===//

#include "api/Json.h"
#include "api/Response.h"
#include "api/Serve.h"
#include "deps/Fingerprint.h"
#include "engine/DeltaPlanner.h"
#include "engine/DependenceEngine.h"
#include "engine/ResultStore.h"
#include "ir/Sema.h"
#include "omega/Problem.h"
#include "omega/QueryCache.h"
#include "omega/Snapshot.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace omega;

namespace {

std::string readEdit(const std::string &Name) {
  std::ifstream In(std::string(OMEGA_EDITS_DIR) + "/" + Name + ".tiny");
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

ir::AnalyzedProgram analyzeOk(const std::string &Source) {
  ir::AnalyzedProgram AP = ir::analyzeSource(Source);
  EXPECT_TRUE(AP.ok()) << Source;
  return AP;
}

/// The access-pair group count of \p AP, measured the way the planner
/// counts: a delta run with no baseline to consult classifies every
/// group "new".
uint64_t groupTotal(const ir::AnalyzedProgram &AP) {
  engine::AnalysisRequest Req;
  Req.BuildBaseline = true;
  engine::DependenceEngine Engine(Req);
  engine::AnalysisResult R = Engine.analyze(AP);
  EXPECT_TRUE(R.Delta.Active);
  EXPECT_EQ(R.Delta.PairsReused, 0u);
  EXPECT_EQ(R.Delta.PairsResolved, 0u);
  return R.Delta.PairsNew;
}

/// First access of \p Array with the requested role.
const ir::Access &find(const ir::AnalyzedProgram &AP, const std::string &Array,
                       bool IsWrite) {
  for (const ir::Access &A : AP.Accesses)
    if (A.Array == Array && A.IsWrite == IsWrite)
      return A;
  ADD_FAILURE() << "no " << (IsWrite ? "write" : "read") << " of " << Array;
  return AP.Accesses.front();
}

/// One BuildBaseline run over \p Source; returns the recorded baseline.
std::shared_ptr<const engine::BaselineResult>
recordBaseline(const std::string &Source) {
  engine::AnalysisRequest Req;
  Req.BuildBaseline = true;
  engine::DependenceEngine Engine(Req);
  engine::AnalysisResult R = Engine.analyze(analyzeOk(Source));
  EXPECT_NE(R.Baseline, nullptr);
  return R.Baseline;
}

} // namespace

//===----------------------------------------------------------------------===//
// Fingerprints
//===----------------------------------------------------------------------===//

// Renaming loop variables, arrays, and symbolic constants leaves every
// pair and kill-group fingerprint unchanged: the two baselines carry
// identical key sets.
TEST(Fingerprint, NameFree) {
  std::shared_ptr<const engine::BaselineResult> Base =
      recordBaseline(readEdit("base"));
  std::shared_ptr<const engine::BaselineResult> Renamed =
      recordBaseline(readEdit("rename"));
  ASSERT_NE(Base, nullptr);
  ASSERT_NE(Renamed, nullptr);

  std::vector<std::string> BaseKeys, RenamedKeys;
  for (const auto &KV : Base->Pairs)
    BaseKeys.push_back(KV.first);
  for (const auto &KV : Renamed->Pairs)
    RenamedKeys.push_back(KV.first);
  EXPECT_EQ(BaseKeys, RenamedKeys);

  std::vector<std::string> BaseKills, RenamedKills;
  for (const auto &KV : Base->KillGroups)
    BaseKills.push_back(KV.first);
  for (const auto &KV : Renamed->KillGroups)
    RenamedKills.push_back(KV.first);
  EXPECT_EQ(BaseKills, RenamedKills);
}

// An array rename alone also preserves fingerprints (names never enter
// the serialization), while semantic edits -- a different subscript or a
// different loop bound -- change the affected pair's key.
TEST(Fingerprint, SemanticEditsChangeKeysRenamesDoNot) {
  const std::string Base = "symbolic n;\n"
                           "for i := 1 to n do\n"
                           "  a(i) := a(i-1) + 1;\n"
                           "endfor\n";
  const std::string Renamed = "symbolic m;\n"
                              "for k := 1 to m do\n"
                              "  zz(k) := zz(k-1) + 1;\n"
                              "endfor\n";
  const std::string Subscript = "symbolic n;\n"
                                "for i := 1 to n do\n"
                                "  a(i) := a(i-2) + 1;\n"
                                "endfor\n";
  const std::string Bound = "symbolic n;\n"
                            "for i := 2 to n do\n"
                            "  a(i) := a(i-1) + 1;\n"
                            "endfor\n";

  ir::AnalyzedProgram APBase = analyzeOk(Base);
  deps::FingerprintBuilder FBBase(APBase);
  deps::PairFingerprint Orig =
      FBBase.pair(find(APBase, "a", true), find(APBase, "a", false));

  ir::AnalyzedProgram APRen = analyzeOk(Renamed);
  EXPECT_EQ(Orig.Key, deps::FingerprintBuilder(APRen).pair(
                          find(APRen, "zz", true), find(APRen, "zz", false))
                          .Key);

  ir::AnalyzedProgram APSub = analyzeOk(Subscript);
  EXPECT_NE(Orig.Key, deps::FingerprintBuilder(APSub).pair(
                          find(APSub, "a", true), find(APSub, "a", false))
                          .Key);

  ir::AnalyzedProgram APBound = analyzeOk(Bound);
  EXPECT_NE(Orig.Key, deps::FingerprintBuilder(APBound)
                          .pair(find(APBound, "a", true),
                                find(APBound, "a", false))
                          .Key);
}

// The unordered-pair key is orientation-canonical: both argument orders
// produce the same key, with Swapped recording which order the canonical
// serialization lists. Self pairs are never swapped.
TEST(Fingerprint, OrientationCanonical) {
  ir::AnalyzedProgram AP = analyzeOk("symbolic n;\n"
                                     "for i := 1 to n do\n"
                                     "  a(i) := a(i-1) + 1;\n"
                                     "endfor\n");
  deps::FingerprintBuilder FB(AP);
  const ir::Access &W = find(AP, "a", true);
  const ir::Access &R = find(AP, "a", false);

  deps::PairFingerprint WR = FB.pair(W, R);
  deps::PairFingerprint RW = FB.pair(R, W);
  EXPECT_EQ(WR.Key, RW.Key);
  EXPECT_NE(WR.Swapped, RW.Swapped);

  deps::PairFingerprint Self = FB.pair(W, W);
  EXPECT_FALSE(Self.Swapped);
  EXPECT_NE(Self.Key, WR.Key);
}

//===----------------------------------------------------------------------===//
// Baseline persistence
//===----------------------------------------------------------------------===//

TEST(Baseline, SerializeRoundTrip) {
  std::shared_ptr<const engine::BaselineResult> Base =
      recordBaseline(readEdit("base"));
  ASSERT_NE(Base, nullptr);
  EXPECT_FALSE(Base->Pairs.empty());
  EXPECT_FALSE(Base->Arrays.empty());

  std::string Bytes = Base->serialize();
  engine::BaselineResult Loaded;
  std::string Err;
  ASSERT_TRUE(engine::BaselineResult::deserialize(Bytes, &Loaded, &Err))
      << Err;
  EXPECT_TRUE(Loaded.Sig == Base->Sig);
  EXPECT_EQ(Loaded.Arrays, Base->Arrays);
  ASSERT_EQ(Loaded.Pairs.size(), Base->Pairs.size());
  ASSERT_EQ(Loaded.KillGroups.size(), Base->KillGroups.size());
  // Deterministic serialization: a round-trip reproduces the bytes.
  EXPECT_EQ(Loaded.serialize(), Bytes);
}

TEST(Baseline, CorruptionRejected) {
  std::shared_ptr<const engine::BaselineResult> Base =
      recordBaseline(readEdit("base"));
  ASSERT_NE(Base, nullptr);
  std::string Bytes = Base->serialize();

  engine::BaselineResult Out;
  std::string Err;
  EXPECT_FALSE(engine::BaselineResult::deserialize(
      Bytes.substr(0, Bytes.size() / 2), &Out, &Err));
  EXPECT_FALSE(Err.empty());

  std::string Flipped = Bytes;
  Flipped.back() = static_cast<char>(Flipped.back() ^ 0x40);
  Err.clear();
  EXPECT_FALSE(engine::BaselineResult::deserialize(Flipped, &Out, &Err));
  EXPECT_FALSE(Err.empty());

  std::string BadMagic = Bytes;
  BadMagic.front() = static_cast<char>(BadMagic.front() ^ 0x01);
  Err.clear();
  EXPECT_FALSE(engine::BaselineResult::deserialize(BadMagic, &Out, &Err));
  EXPECT_FALSE(Err.empty());

  Err.clear();
  EXPECT_FALSE(engine::BaselineResult::deserialize(std::string(), &Out, &Err));
  EXPECT_FALSE(Err.empty());
}

TEST(Baseline, SaveLoadFile) {
  std::shared_ptr<const engine::BaselineResult> Base =
      recordBaseline(readEdit("base"));
  ASSERT_NE(Base, nullptr);

  std::string Path = ::testing::TempDir() + "delta_test.baseline";
  std::string Err;
  ASSERT_TRUE(Base->saveFile(Path, &Err)) << Err;

  engine::BaselineResult Loaded;
  ASSERT_TRUE(engine::BaselineResult::loadFile(Path, &Loaded, &Err)) << Err;
  EXPECT_EQ(Loaded.serialize(), Base->serialize());
  std::remove(Path.c_str());

  EXPECT_FALSE(engine::BaselineResult::loadFile(
      ::testing::TempDir() + "delta_test_missing.baseline", &Loaded, &Err));
  EXPECT_FALSE(Err.empty());
}

//===----------------------------------------------------------------------===//
// Global result store
//===----------------------------------------------------------------------===//

namespace {

/// A minimal but non-trivial pair outcome for store unit tests.
engine::PairOutcome samplePair(unsigned Tag) {
  engine::PairOutcome Out;
  engine::PortableDep D;
  D.Kind = static_cast<uint8_t>(Tag & 0x7);
  D.Present = true;
  Out.Queries.push_back(D);
  Out.HasFlowRecord = (Tag & 1) != 0;
  Out.RecHasFlow = Out.HasFlowRecord;
  return Out;
}

engine::KillGroupOutcome sampleKillGroup(unsigned Tag) {
  engine::KillGroupOutcome Out;
  engine::PortableKillRecord Rec;
  Rec.VictimPos = Tag;
  Rec.Killed = true;
  Out.Records.push_back(Rec);
  engine::KillGroupOutcome::DepState St;
  St.WritePos = Tag;
  St.Splits.emplace_back(true, 'K');
  Out.States.push_back(St);
  return Out;
}

} // namespace

// Lookups hit only under the (kind, pipeline signature) they were stored
// with, and every lookup lands on exactly one of the hit/miss counters.
TEST(ResultStore, HitMissSigAndKindSeparation) {
  engine::ResultStore Store(0); // unbounded
  engine::PipelineSig Sig;
  EXPECT_FALSE(Store.lookupPair("fp", Sig).has_value()); // miss 1

  EXPECT_EQ(Store.storePair("fp", Sig, samplePair(1)), 0u);
  EXPECT_EQ(Store.size(), 1u);

  std::optional<engine::PairOutcome> Hit = Store.lookupPair("fp", Sig);
  ASSERT_TRUE(Hit.has_value()); // hit 1
  ASSERT_EQ(Hit->Queries.size(), 1u);
  EXPECT_TRUE(Hit->Queries[0].Present);

  // The pipeline signature is part of the key ...
  engine::PipelineSig Other;
  Other.Kill = false;
  EXPECT_FALSE(Store.lookupPair("fp", Other).has_value()); // miss 2
  // ... and so is the entry kind: a pair entry never answers a
  // kill-group lookup of the same fingerprint.
  EXPECT_FALSE(Store.lookupKillGroup("fp", Sig).has_value()); // miss 3

  EXPECT_EQ(Store.storeKillGroup("fp", Sig, sampleKillGroup(2)), 0u);
  EXPECT_EQ(Store.size(), 2u);
  std::optional<engine::KillGroupOutcome> KHit =
      Store.lookupKillGroup("fp", Sig); // hit 2
  ASSERT_TRUE(KHit.has_value());
  ASSERT_EQ(KHit->Records.size(), 1u);
  EXPECT_TRUE(KHit->Records[0].Killed);

  // Re-storing an existing key refreshes in place, no growth.
  EXPECT_EQ(Store.storePair("fp", Sig, samplePair(3)), 0u);
  EXPECT_EQ(Store.size(), 2u);

  engine::ResultStoreStats St = Store.stats();
  EXPECT_EQ(St.Hits, 2u);
  EXPECT_EQ(St.Misses, 3u);
  EXPECT_EQ(St.Evictions, 0u);
  EXPECT_EQ(St.Entries, 2u);
}

TEST(ResultStore, CapacityBoundAndLRURecency) {
  engine::PipelineSig Sig;

  // Capacity 16 over 16 shards bounds every shard to one entry, so two
  // fingerprints evict each other iff they share a shard. Probe for two
  // fingerprints that collide with "seed".
  auto collides = [&](const std::string &FP) {
    engine::ResultStore Probe(16);
    Probe.storePair("seed", Sig, samplePair(0));
    return Probe.storePair(FP, Sig, samplePair(0)) == 1;
  };
  std::vector<std::string> Colliders;
  for (unsigned I = 0; I != 4096 && Colliders.size() < 2; ++I) {
    std::string FP = "cand" + std::to_string(I);
    if (collides(FP))
      Colliders.push_back(FP);
  }
  ASSERT_EQ(Colliders.size(), 2u) << "no shard colliders found";

  // Per-shard capacity 2 (total 32): seed and the first collider fit. A
  // lookup refreshes seed's recency, so the second collider evicts the
  // first collider, not seed.
  engine::ResultStore Store(32);
  Store.storePair("seed", Sig, samplePair(0));
  Store.storePair(Colliders[0], Sig, samplePair(1));
  EXPECT_TRUE(Store.lookupPair("seed", Sig).has_value());
  EXPECT_EQ(Store.storePair(Colliders[1], Sig, samplePair(2)), 1u);
  EXPECT_TRUE(Store.lookupPair("seed", Sig).has_value());
  EXPECT_FALSE(Store.lookupPair(Colliders[0], Sig).has_value());
  EXPECT_TRUE(Store.lookupPair(Colliders[1], Sig).has_value());
  EXPECT_EQ(Store.stats().Evictions, 1u);

  // The bound holds under churn: 64 distinct entries through capacity
  // 16 leave at most 16 alive, the overflow counted as evictions, and
  // the most recent store always survives.
  engine::ResultStore Small(16);
  for (unsigned I = 0; I != 64; ++I)
    Small.storePair("fp" + std::to_string(I), Sig, samplePair(I));
  EXPECT_LE(Small.size(), 16u);
  EXPECT_EQ(Small.stats().Evictions, 64u - Small.size());
  EXPECT_TRUE(Small.lookupPair("fp63", Sig).has_value());

  // Capacity 0 lifts the bound; shrinking re-imposes it immediately.
  Small.setCapacity(0);
  std::size_t Before = Small.size();
  for (unsigned I = 100; I != 164; ++I)
    Small.storePair("fp" + std::to_string(I), Sig, samplePair(I));
  EXPECT_EQ(Small.size(), Before + 64u);
  Small.setCapacity(16);
  EXPECT_LE(Small.size(), 16u);
}

// The 'OMRS' file: save -> load -> save is bit-identical, loaded entries
// answer under their recorded signature, and every corruption flavor
// (empty, bad magic, version skew, checksum flip, truncation, trailing
// garbage) rejects the whole file and leaves the store empty.
TEST(ResultStore, PersistenceRoundTripAndCorruption) {
  engine::PipelineSig Sig;
  engine::PipelineSig Alt;
  Alt.QuickTests = false;

  engine::ResultStore Store(0);
  for (unsigned I = 0; I != 8; ++I)
    Store.storePair("p" + std::to_string(I), I % 2 ? Sig : Alt,
                    samplePair(I));
  for (unsigned I = 0; I != 4; ++I)
    Store.storeKillGroup("k" + std::to_string(I), Sig, sampleKillGroup(I));

  std::string Bytes = Store.serialize();
  engine::ResultStore Loaded(0);
  std::string Err;
  ASSERT_TRUE(Loaded.deserialize(Bytes, &Err)) << Err;
  EXPECT_EQ(Loaded.size(), Store.size());
  EXPECT_EQ(Loaded.serialize(), Bytes);
  EXPECT_TRUE(Loaded.lookupPair("p1", Sig).has_value());
  EXPECT_TRUE(Loaded.lookupPair("p0", Alt).has_value());
  EXPECT_FALSE(Loaded.lookupPair("p0", Sig).has_value());
  EXPECT_TRUE(Loaded.lookupKillGroup("k3", Sig).has_value());

  struct Corrupt {
    const char *Tag;
    std::string Bytes;
  } Cases[] = {
      {"empty", std::string()},
      {"bad-magic",
       [&] {
         std::string B = Bytes;
         B[0] = static_cast<char>(B[0] ^ 0x20);
         return B;
       }()},
      {"version-skew",
       [&] {
         std::string B = Bytes;
         B[4] = static_cast<char>(B[4] ^ 0x01);
         return B;
       }()},
      {"checksum",
       [&] {
         std::string B = Bytes;
         B.back() = static_cast<char>(B.back() ^ 0x01);
         return B;
       }()},
      {"truncated", Bytes.substr(0, Bytes.size() / 2)},
      {"oversized", Bytes + "x"},
  };
  for (const Corrupt &C : Cases) {
    SCOPED_TRACE(C.Tag);
    engine::ResultStore Victim(0);
    Victim.storePair("stale", Sig, samplePair(9));
    Err.clear();
    EXPECT_FALSE(Victim.deserialize(C.Bytes, &Err));
    EXPECT_FALSE(Err.empty());
    EXPECT_EQ(Victim.size(), 0u);
  }

  std::string Path = ::testing::TempDir() + "delta_test.resultstore";
  ASSERT_TRUE(Store.saveFile(Path, &Err)) << Err;
  engine::ResultStore FromFile(0);
  ASSERT_TRUE(FromFile.loadFile(Path, &Err)) << Err;
  EXPECT_EQ(FromFile.serialize(), Bytes);
  std::remove(Path.c_str());
  EXPECT_FALSE(FromFile.loadFile(Path, &Err));
  EXPECT_FALSE(Err.empty());
}

// N threads hammer one store with mixed lookups, stores, capacity
// changes, and serializations (run under TSan in CI). The at-rest gates:
// exact hit+miss accounting, the capacity bound, and a clean round-trip
// of whatever population survived.
TEST(ResultStore, ConcurrentHammer) {
  engine::ResultStore Store(64);
  engine::PipelineSig Sig;
  constexpr unsigned Threads = 8, Ops = 600, KeySpace = 48;
  std::atomic<uint64_t> Lookups{0};

  std::vector<std::thread> Pool;
  for (unsigned T = 0; T != Threads; ++T)
    Pool.emplace_back([&Store, &Sig, &Lookups, T] {
      for (unsigned I = 0; I != Ops; ++I) {
        std::string FP = "fp" + std::to_string((T * 7 + I) % KeySpace);
        switch (I % 5) {
        case 0:
          Store.storePair(FP, Sig, samplePair(I));
          break;
        case 1:
          Store.lookupPair(FP, Sig);
          Lookups.fetch_add(1);
          break;
        case 2:
          Store.storeKillGroup(FP, Sig, sampleKillGroup(I));
          break;
        case 3:
          Store.lookupKillGroup(FP, Sig);
          Lookups.fetch_add(1);
          break;
        case 4:
          if (I % 100 == 4) {
            Store.serialize();
          } else {
            Store.lookupPair(FP, Sig);
            Lookups.fetch_add(1);
          }
          break;
        }
        if (T == 0 && I % 200 == 199)
          Store.setCapacity(I % 400 == 199 ? 32 : 64);
      }
    });
  for (std::thread &Th : Pool)
    Th.join();

  engine::ResultStoreStats St = Store.stats();
  EXPECT_EQ(St.Hits + St.Misses, Lookups.load());
  Store.setCapacity(64);
  EXPECT_LE(Store.size(), 64u);

  std::string Bytes = Store.serialize();
  engine::ResultStore Copy(0);
  std::string Err;
  ASSERT_TRUE(Copy.deserialize(Bytes, &Err)) << Err;
  EXPECT_EQ(Copy.serialize(), Bytes);
}

//===----------------------------------------------------------------------===//
// Incremental analysis over the edit corpus
//===----------------------------------------------------------------------===//

// The central gate: for every entry of the edit corpus, replaying the
// base program's baseline renders a byte-identical result, reuses at
// least one pair, and classifies every pair group exactly once.
TEST(Delta, CorpusByteIdentityAndAccounting) {
  std::shared_ptr<const engine::BaselineResult> Base =
      recordBaseline(readEdit("base"));
  ASSERT_NE(Base, nullptr);

  const char *Edits[] = {"rename",   "bound",       "stmt-new",
                         "stmt-edit", "loop-del",   "interchange",
                         "rename-reorder"};
  for (const char *Name : Edits) {
    SCOPED_TRACE(Name);
    ir::AnalyzedProgram AP = analyzeOk(readEdit(Name));

    engine::DependenceEngine Scratch;
    std::string Expected = api::renderResult(Scratch.analyze(AP));

    engine::AnalysisRequest Req;
    Req.Baseline = Base.get();
    Req.BuildBaseline = true;
    engine::DependenceEngine Engine(Req);
    engine::AnalysisResult R = Engine.analyze(AP);

    EXPECT_EQ(api::renderResult(R), Expected);
    ASSERT_TRUE(R.Delta.Active);
    EXPECT_GT(R.Delta.PairsReused, 0u);
    EXPECT_EQ(R.Delta.PairsReused + R.Delta.PairsResolved + R.Delta.PairsNew,
              groupTotal(AP));
    // The stats mirror carries the same tallies.
    EXPECT_EQ(R.Stats.DeltaPairsReused, R.Delta.PairsReused);
    EXPECT_EQ(R.Stats.DeltaPairsResolved, R.Delta.PairsResolved);
    EXPECT_EQ(R.Stats.DeltaPairsNew, R.Delta.PairsNew);
  }
}

// Every class has a witness. A structurally novel pair on an unknown
// array is "new" (the corpus itself never produces one: its added pairs
// all structurally match existing fingerprints); an edited pair on a
// known array is "resolved"; its orphaned baseline key is "removed".
TEST(Delta, ClassificationWitnesses) {
  const std::string Base = "symbolic n;\n"
                           "for i := 1 to n do\n"
                           "  a(i) := a(i-1) + 1;\n"
                           "endfor\n";
  std::shared_ptr<const engine::BaselineResult> BP = recordBaseline(Base);
  ASSERT_NE(BP, nullptr);

  // A second nest on a new array, transposed 2-D subscripts: nothing in
  // the baseline matches structurally, and "z" is not a known array.
  const std::string AddsNewArray = Base +
                                   "for i := 1 to n do\n"
                                   "  for j := 1 to n do\n"
                                   "    z(i,j) := z(j,i) + 1;\n"
                                   "  endfor\n"
                                   "endfor\n";
  // Same arrays, different subscript: fingerprints miss on a known array.
  const std::string EditsPair = "symbolic n;\n"
                                "for i := 1 to n do\n"
                                "  a(i) := a(i-2) + 1;\n"
                                "endfor\n";

  struct Case {
    const char *Tag;
    const std::string &Source;
    bool WantNew, WantResolved, WantRemoved;
  } Cases[] = {
      {"new-array", AddsNewArray, true, false, false},
      {"edited-pair", EditsPair, false, true, true},
  };
  for (const Case &C : Cases) {
    SCOPED_TRACE(C.Tag);
    ir::AnalyzedProgram AP = analyzeOk(C.Source);

    engine::DependenceEngine Scratch;
    std::string Expected = api::renderResult(Scratch.analyze(AP));

    engine::AnalysisRequest Req;
    Req.Baseline = BP.get();
    Req.BuildBaseline = true;
    engine::DependenceEngine Engine(Req);
    engine::AnalysisResult R = Engine.analyze(AP);

    EXPECT_EQ(api::renderResult(R), Expected);
    ASSERT_TRUE(R.Delta.Active);
    EXPECT_GT(R.Delta.PairsReused, 0u);
    EXPECT_EQ(R.Delta.PairsNew > 0, C.WantNew);
    EXPECT_EQ(R.Delta.PairsResolved > 0, C.WantResolved);
    EXPECT_EQ(R.Delta.PairsRemoved > 0, C.WantRemoved);
    EXPECT_EQ(R.Delta.PairsReused + R.Delta.PairsResolved + R.Delta.PairsNew,
              groupTotal(AP));
  }
}

// An identical replay reuses every pair and every kill group.
TEST(Delta, IdenticalReplayReusesEverything) {
  std::string Source = readEdit("base");
  std::shared_ptr<const engine::BaselineResult> Base = recordBaseline(Source);
  ASSERT_NE(Base, nullptr);
  ir::AnalyzedProgram AP = analyzeOk(Source);

  engine::AnalysisRequest Req;
  Req.Baseline = Base.get();
  Req.BuildBaseline = true;
  engine::DependenceEngine Engine(Req);
  engine::AnalysisResult R = Engine.analyze(AP);

  ASSERT_TRUE(R.Delta.Active);
  EXPECT_EQ(R.Delta.PairsResolved, 0u);
  EXPECT_EQ(R.Delta.PairsNew, 0u);
  EXPECT_EQ(R.Delta.PairsRemoved, 0u);
  EXPECT_EQ(R.Delta.PairsReused, groupTotal(AP));
  EXPECT_GT(R.Delta.KillGroupsTotal, 0u);
  EXPECT_EQ(R.Delta.KillGroupsReused, R.Delta.KillGroupsTotal);
}

// The rename gate, both tiers: plain renames and renames that reorder
// first mentions are 100% reused per-session (full baseline reuse) AND
// via the global result store with no baseline or session at all.
TEST(Delta, RenameEditsFullyReusedViaStore) {
  std::string BaseSrc = readEdit("base");
  for (const char *Name : {"rename", "rename-reorder"}) {
    SCOPED_TRACE(Name);
    ir::AnalyzedProgram AP = analyzeOk(readEdit(Name));
    uint64_t Pairs = groupTotal(AP);

    // Per-session: replaying base's baseline reuses every pair and
    // every kill group.
    std::shared_ptr<const engine::BaselineResult> Base =
        recordBaseline(BaseSrc);
    ASSERT_NE(Base, nullptr);
    engine::AnalysisRequest SReq;
    SReq.Baseline = Base.get();
    SReq.BuildBaseline = true;
    engine::DependenceEngine Session(SReq);
    engine::AnalysisResult SR = Session.analyze(AP);
    ASSERT_TRUE(SR.Delta.Active);
    EXPECT_EQ(SR.Delta.PairsResolved, 0u);
    EXPECT_EQ(SR.Delta.PairsNew, 0u);
    EXPECT_EQ(SR.Delta.PairsReused, Pairs);
    EXPECT_GT(SR.Delta.KillGroupsTotal, 0u);
    EXPECT_EQ(SR.Delta.KillGroupsReused, SR.Delta.KillGroupsTotal);

    // Global store: feed it with a baseline-less, session-less run of
    // the base program ...
    engine::ResultStore Store;
    engine::AnalysisRequest Feed;
    Feed.Store = &Store;
    engine::DependenceEngine Feeder(Feed);
    engine::AnalysisResult FR = Feeder.analyze(analyzeOk(BaseSrc));
    EXPECT_EQ(FR.Stats.ResultStoreHits, 0u);
    EXPECT_GT(FR.Stats.ResultStoreMisses, 0u);
    // Structurally identical groups share one entry, so the population
    // is at most (and usually below) the miss count.
    EXPECT_GT(Store.size(), 0u);
    EXPECT_LE(Store.size(), FR.Stats.ResultStoreMisses);

    // ... then a fresh engine on the renamed program materializes every
    // pair and every kill group, byte-identical to a from-scratch run.
    engine::AnalysisRequest Use;
    Use.Store = &Store;
    engine::DependenceEngine User(Use);
    engine::AnalysisResult UR = User.analyze(AP);
    EXPECT_EQ(UR.Stats.ResultStoreMisses, 0u);
    EXPECT_EQ(UR.Stats.ResultStoreHits, Pairs + SR.Delta.KillGroupsTotal);

    engine::DependenceEngine Scratch;
    EXPECT_EQ(api::renderResult(UR), api::renderResult(Scratch.analyze(AP)));
  }
}

// Partial structural overlap reuses exactly the overlap: the interchange
// edit re-solves the second nest, and the untouched nests materialize
// from the store -- results still byte-identical to scratch.
TEST(Delta, StorePartialReuseOnInterchange) {
  engine::ResultStore Store;
  engine::AnalysisRequest Feed;
  Feed.Store = &Store;
  engine::DependenceEngine Feeder(Feed);
  Feeder.analyze(analyzeOk(readEdit("base")));

  ir::AnalyzedProgram AP = analyzeOk(readEdit("interchange"));
  engine::AnalysisRequest Use;
  Use.Store = &Store;
  engine::DependenceEngine User(Use);
  engine::AnalysisResult UR = User.analyze(AP);
  EXPECT_GT(UR.Stats.ResultStoreHits, 0u);
  EXPECT_GT(UR.Stats.ResultStoreMisses, 0u);

  engine::DependenceEngine Scratch;
  EXPECT_EQ(api::renderResult(UR), api::renderResult(Scratch.analyze(AP)));
}

// A baseline recorded under a different pipeline signature is unusable;
// Terminate opts out of the delta model entirely.
TEST(Delta, SignatureMismatchAndTerminateDisable) {
  std::string Source = readEdit("base");
  std::shared_ptr<const engine::BaselineResult> Base = recordBaseline(Source);
  ASSERT_NE(Base, nullptr);
  ir::AnalyzedProgram AP = analyzeOk(Source);

  engine::AnalysisRequest Req;
  Req.Baseline = Base.get();
  Req.BuildBaseline = true;
  Req.Refine = false; // signature mismatch: everything classifies new
  engine::DependenceEngine Mismatch(Req);
  engine::AnalysisResult R = Mismatch.analyze(AP);
  ASSERT_TRUE(R.Delta.Active);
  EXPECT_EQ(R.Delta.PairsReused, 0u);

  engine::AnalysisRequest TReq;
  TReq.Baseline = Base.get();
  TReq.BuildBaseline = true;
  TReq.Terminate = true;
  engine::DependenceEngine Terminating(TReq);
  engine::AnalysisResult TR = Terminating.analyze(AP);
  EXPECT_FALSE(TR.Delta.Active);
  EXPECT_EQ(TR.Baseline, nullptr);
}

//===----------------------------------------------------------------------===//
// Snapshot-store capacity
//===----------------------------------------------------------------------===//

// A single-shard cache makes the budget exact: stores beyond the cap
// evict in LRU order (lookups refresh recency), the evictions land on
// both the cache's counter and the passed OmegaStats, and lowering the
// cap evicts immediately.
TEST(SnapshotStore, LRUEvictionAndCounters) {
  Problem P;
  VarId X = P.addVar("x");
  P.addGEQ({{X, 1}}, 0);
  std::vector<bool> Keep(16, true);
  EliminationSnapshot Snap(P, Keep);

  QueryCache Cache(1);
  Cache.setSnapshotCapacity(2);
  OmegaStats Stats;

  Cache.storeSnapshot("k1", Snap, &Stats);
  Cache.storeSnapshot("k2", Snap, &Stats);
  EXPECT_EQ(Cache.snapshotEvictions(), 0u);

  // Refresh k1, then overflow: k2 is now least recent and goes first.
  EXPECT_TRUE(Cache.lookupSnapshot("k1", &Stats).has_value());
  Cache.storeSnapshot("k3", Snap, &Stats);
  EXPECT_EQ(Cache.snapshotEvictions(), 1u);
  EXPECT_EQ(Stats.SnapshotEvictions, 1u);
  EXPECT_FALSE(Cache.lookupSnapshot("k2", &Stats).has_value());
  EXPECT_TRUE(Cache.lookupSnapshot("k1", &Stats).has_value());
  EXPECT_TRUE(Cache.lookupSnapshot("k3", &Stats).has_value());

  // Lowering the cap evicts down to the new bound right away; the
  // most recently touched key survives.
  Cache.setSnapshotCapacity(1);
  EXPECT_EQ(Cache.snapshotEvictions(), 2u);
  EXPECT_TRUE(Cache.lookupSnapshot("k3", &Stats).has_value());
  EXPECT_FALSE(Cache.lookupSnapshot("k1", &Stats).has_value());

  // Re-storing an existing key is an update, not an eviction.
  Cache.storeSnapshot("k3", Snap, &Stats);
  EXPECT_EQ(Cache.snapshotEvictions(), 2u);

  // Capacity 0 is unbounded again.
  Cache.setSnapshotCapacity(0);
  Cache.storeSnapshot("k4", Snap, &Stats);
  Cache.storeSnapshot("k5", Snap, &Stats);
  EXPECT_EQ(Cache.snapshotEvictions(), 2u);
}

//===----------------------------------------------------------------------===//
// Jobs clamp
//===----------------------------------------------------------------------===//

// applyOptions clamps the requested parallelism to the pool built at
// construction; jobs() always reports the effective count.
TEST(JobsClamp, RequestsClampToPool) {
  engine::AnalysisRequest Req;
  Req.Jobs = 2;
  engine::DependenceEngine Engine(Req);
  ASSERT_EQ(Engine.maxJobs(), 2u);
  EXPECT_EQ(Engine.jobs(), 2u);

  engine::AnalysisRequest O = Req;
  O.Jobs = 16;
  Engine.applyOptions(O);
  EXPECT_EQ(Engine.jobs(), 2u);

  O.Jobs = 1;
  Engine.applyOptions(O);
  EXPECT_EQ(Engine.jobs(), 1u);

  O.Jobs = 0; // "ask the hardware" resolves to the pool's capability
  Engine.applyOptions(O);
  EXPECT_EQ(Engine.jobs(), 2u);
}

//===----------------------------------------------------------------------===//
// Serving stack: sessions and per-request jobs
//===----------------------------------------------------------------------===//

namespace {

/// Submits one request line and blocks until its response arrives.
std::string ask(api::Server &Server, const std::string &Line) {
  std::mutex Mu;
  std::condition_variable CV;
  std::string Response;
  bool Done = false;
  Server.submit(Line, [&](std::string R) {
    std::lock_guard<std::mutex> Lock(Mu);
    Response = std::move(R);
    Done = true;
    CV.notify_one();
  });
  std::unique_lock<std::mutex> Lock(Mu);
  CV.wait(Lock, [&] { return Done; });
  return Response;
}

std::string sessionRequest(uint64_t Id, const std::string &Session,
                           const std::string &Source) {
  return "{\"id\": " + std::to_string(Id) + ", \"session\": \"" + Session +
         "\", \"source\": \"" + api::json::escape(Source) + "\"}";
}

/// metrics.delta.<Field> of a response line, or -1 when absent.
int64_t deltaField(const std::string &Response, const std::string &Field) {
  api::json::Value Doc;
  std::string Err;
  if (!api::json::parse(Response, Doc, Err))
    return -1;
  if (const api::json::Value *M = Doc.get("metrics"))
    if (const api::json::Value *D = M->get("delta"))
      if (const api::json::Value *F = D->get(Field))
        return F->asInt();
  return -1;
}

/// metrics.stats.<Field> of a response line, or -1 when absent.
int64_t statsField(const std::string &Response, const std::string &Field) {
  api::json::Value Doc;
  std::string Err;
  if (!api::json::parse(Response, Doc, Err))
    return -1;
  if (const api::json::Value *M = Doc.get("metrics"))
    if (const api::json::Value *S = M->get("stats"))
      if (const api::json::Value *F = S->get(Field))
        return F->asInt();
  return -1;
}

/// The raw bytes of the top-level "result" object of a response line.
std::string resultBytes(const std::string &Response) {
  std::size_t At = Response.find("\"result\": ");
  if (At == std::string::npos)
    return std::string();
  At += 10;
  int Depth = 0;
  bool InString = false;
  for (std::size_t I = At; I != Response.size(); ++I) {
    char C = Response[I];
    if (InString) {
      if (C == '\\')
        ++I;
      else if (C == '"')
        InString = false;
      continue;
    }
    if (C == '"')
      InString = true;
    else if (C == '{')
      ++Depth;
    else if (C == '}' && --Depth == 0)
      return Response.substr(At, I + 1 - At);
  }
  return std::string();
}

} // namespace

// A session's second request reuses the baseline its first request
// recorded, with the result still byte-identical to a one-shot run; the
// session map holds MaxSessions baselines and evicts the least recently
// used one, which then falls back to the global result store instead of
// starting over; sessionless requests consult the store too.
TEST(ServeSessions, RetainReuseAndEvict) {
  api::Server::Config Cfg;
  Cfg.Workers = 1;
  Cfg.Defaults.Jobs = 1;
  Cfg.MaxSessions = 2;
  api::Server Server(Cfg);

  std::string Base = readEdit("base");
  std::string Edit = readEdit("stmt-edit");

  engine::DependenceEngine Reference;
  std::string Expected =
      api::renderResult(Reference.analyze(analyzeOk(Edit)));

  // First request of a session: nothing to reuse, everything new.
  std::string R1 = ask(Server, sessionRequest(1, "s1", Base));
  EXPECT_EQ(deltaField(R1, "pairsReused"), 0);
  int64_t BaseGroups = deltaField(R1, "pairsNew");
  EXPECT_GT(BaseGroups, 0);

  // Second request: the edit reuses the retained baseline.
  std::string R2 = ask(Server, sessionRequest(2, "s1", Edit));
  EXPECT_GT(deltaField(R2, "pairsReused"), 0);
  EXPECT_EQ(resultBytes(R2), resultBytes(
                                 "{\"result\": " + Expected + "}"));

  // Two more sessions overflow MaxSessions = 2 and evict s1 (least
  // recently used). s1's baseline is gone, but every pair of the edit
  // was already solved under this server, so the replay materializes
  // entirely from the global result store: all-reused, nothing
  // re-solved, and still byte-identical.
  ask(Server, sessionRequest(3, "s2", Base));
  ask(Server, sessionRequest(4, "s3", Base));
  std::string R5 = ask(Server, sessionRequest(5, "s1", Edit));
  EXPECT_EQ(deltaField(R5, "pairsReused"),
            deltaField(R2, "pairsReused") + deltaField(R2, "pairsResolved") +
                deltaField(R2, "pairsNew"));
  EXPECT_EQ(deltaField(R5, "pairsResolved"), 0);
  EXPECT_EQ(deltaField(R5, "pairsNew"), 0);
  EXPECT_GT(statsField(R5, "resultStoreHits"), 0);
  EXPECT_EQ(resultBytes(R5), resultBytes(R2));

  // Sessionless requests never activate the delta layer, but they do
  // consult the store: the whole program materializes without a solve.
  std::string R6 = ask(Server, "{\"id\": 6, \"source\": \"" +
                                   api::json::escape(Edit) + "\"}");
  EXPECT_EQ(deltaField(R6, "pairsReused"), -1);
  EXPECT_GT(statsField(R6, "resultStoreHits"), 0);
  EXPECT_EQ(statsField(R6, "resultStoreMisses"), 0);
  EXPECT_EQ(resultBytes(R6), resultBytes(R2));
}

// Per-request jobs are honored but clamped to the worker's pool; the
// effective value is what metrics reports.
TEST(ServeSessions, PerRequestJobsClamped) {
  api::Server::Config Cfg;
  Cfg.Workers = 1;
  Cfg.Defaults.Jobs = 2;
  api::Server Server(Cfg);

  std::string Source = readEdit("base");
  auto jobsOf = [&](const std::string &OptionsJson) {
    std::string Line = "{\"id\": 1, \"source\": \"" +
                       api::json::escape(Source) + "\"";
    if (!OptionsJson.empty())
      Line += ", \"options\": " + OptionsJson;
    Line += "}";
    std::string Response = ask(Server, Line);
    api::json::Value Doc;
    std::string Err;
    EXPECT_TRUE(api::json::parse(Response, Doc, Err)) << Err;
    if (const api::json::Value *M = Doc.get("metrics"))
      if (const api::json::Value *J = M->get("jobs"))
        return J->asInt();
    return int64_t(-1);
  };

  EXPECT_EQ(jobsOf(""), 2);                  // defaults
  EXPECT_EQ(jobsOf("{\"jobs\": 16}"), 2);    // clamped to the pool
  EXPECT_EQ(jobsOf("{\"jobs\": 1}"), 1);     // lower requests honored
}
