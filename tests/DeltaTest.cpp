//===- tests/DeltaTest.cpp - Edit-incremental re-analysis -----------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
// The incremental contract, end to end: canonical pair fingerprints are
// name-free and semantics-sensitive; baselines round-trip through their
// binary format and reject corruption; an analysis replayed against a
// baseline renders byte-identical results while classifying every pair
// group exactly once; snapshot stores evict LRU under a capacity bound;
// and the serving stack retains per-session baselines and clamps
// per-request parallelism to the worker pool.
//
//===----------------------------------------------------------------------===//

#include "api/Json.h"
#include "api/Response.h"
#include "api/Serve.h"
#include "deps/Fingerprint.h"
#include "engine/DeltaPlanner.h"
#include "engine/DependenceEngine.h"
#include "ir/Sema.h"
#include "omega/Problem.h"
#include "omega/QueryCache.h"
#include "omega/Snapshot.h"

#include <gtest/gtest.h>

#include <condition_variable>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

using namespace omega;

namespace {

std::string readEdit(const std::string &Name) {
  std::ifstream In(std::string(OMEGA_EDITS_DIR) + "/" + Name + ".tiny");
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

ir::AnalyzedProgram analyzeOk(const std::string &Source) {
  ir::AnalyzedProgram AP = ir::analyzeSource(Source);
  EXPECT_TRUE(AP.ok()) << Source;
  return AP;
}

/// The access-pair group count of \p AP, measured the way the planner
/// counts: a delta run with no baseline to consult classifies every
/// group "new".
uint64_t groupTotal(const ir::AnalyzedProgram &AP) {
  engine::AnalysisRequest Req;
  Req.BuildBaseline = true;
  engine::DependenceEngine Engine(Req);
  engine::AnalysisResult R = Engine.analyze(AP);
  EXPECT_TRUE(R.Delta.Active);
  EXPECT_EQ(R.Delta.PairsReused, 0u);
  EXPECT_EQ(R.Delta.PairsResolved, 0u);
  return R.Delta.PairsNew;
}

/// First access of \p Array with the requested role.
const ir::Access &find(const ir::AnalyzedProgram &AP, const std::string &Array,
                       bool IsWrite) {
  for (const ir::Access &A : AP.Accesses)
    if (A.Array == Array && A.IsWrite == IsWrite)
      return A;
  ADD_FAILURE() << "no " << (IsWrite ? "write" : "read") << " of " << Array;
  return AP.Accesses.front();
}

/// One BuildBaseline run over \p Source; returns the recorded baseline.
std::shared_ptr<const engine::BaselineResult>
recordBaseline(const std::string &Source) {
  engine::AnalysisRequest Req;
  Req.BuildBaseline = true;
  engine::DependenceEngine Engine(Req);
  engine::AnalysisResult R = Engine.analyze(analyzeOk(Source));
  EXPECT_NE(R.Baseline, nullptr);
  return R.Baseline;
}

} // namespace

//===----------------------------------------------------------------------===//
// Fingerprints
//===----------------------------------------------------------------------===//

// Renaming loop variables, arrays, and symbolic constants leaves every
// pair and kill-group fingerprint unchanged: the two baselines carry
// identical key sets.
TEST(Fingerprint, NameFree) {
  std::shared_ptr<const engine::BaselineResult> Base =
      recordBaseline(readEdit("base"));
  std::shared_ptr<const engine::BaselineResult> Renamed =
      recordBaseline(readEdit("rename"));
  ASSERT_NE(Base, nullptr);
  ASSERT_NE(Renamed, nullptr);

  std::vector<std::string> BaseKeys, RenamedKeys;
  for (const auto &KV : Base->Pairs)
    BaseKeys.push_back(KV.first);
  for (const auto &KV : Renamed->Pairs)
    RenamedKeys.push_back(KV.first);
  EXPECT_EQ(BaseKeys, RenamedKeys);

  std::vector<std::string> BaseKills, RenamedKills;
  for (const auto &KV : Base->KillGroups)
    BaseKills.push_back(KV.first);
  for (const auto &KV : Renamed->KillGroups)
    RenamedKills.push_back(KV.first);
  EXPECT_EQ(BaseKills, RenamedKills);
}

// An array rename alone also preserves fingerprints (names never enter
// the serialization), while semantic edits -- a different subscript or a
// different loop bound -- change the affected pair's key.
TEST(Fingerprint, SemanticEditsChangeKeysRenamesDoNot) {
  const std::string Base = "symbolic n;\n"
                           "for i := 1 to n do\n"
                           "  a(i) := a(i-1) + 1;\n"
                           "endfor\n";
  const std::string Renamed = "symbolic m;\n"
                              "for k := 1 to m do\n"
                              "  zz(k) := zz(k-1) + 1;\n"
                              "endfor\n";
  const std::string Subscript = "symbolic n;\n"
                                "for i := 1 to n do\n"
                                "  a(i) := a(i-2) + 1;\n"
                                "endfor\n";
  const std::string Bound = "symbolic n;\n"
                            "for i := 2 to n do\n"
                            "  a(i) := a(i-1) + 1;\n"
                            "endfor\n";

  ir::AnalyzedProgram APBase = analyzeOk(Base);
  deps::FingerprintBuilder FBBase(APBase);
  deps::PairFingerprint Orig =
      FBBase.pair(find(APBase, "a", true), find(APBase, "a", false));

  ir::AnalyzedProgram APRen = analyzeOk(Renamed);
  EXPECT_EQ(Orig.Key, deps::FingerprintBuilder(APRen).pair(
                          find(APRen, "zz", true), find(APRen, "zz", false))
                          .Key);

  ir::AnalyzedProgram APSub = analyzeOk(Subscript);
  EXPECT_NE(Orig.Key, deps::FingerprintBuilder(APSub).pair(
                          find(APSub, "a", true), find(APSub, "a", false))
                          .Key);

  ir::AnalyzedProgram APBound = analyzeOk(Bound);
  EXPECT_NE(Orig.Key, deps::FingerprintBuilder(APBound)
                          .pair(find(APBound, "a", true),
                                find(APBound, "a", false))
                          .Key);
}

// The unordered-pair key is orientation-canonical: both argument orders
// produce the same key, with Swapped recording which order the canonical
// serialization lists. Self pairs are never swapped.
TEST(Fingerprint, OrientationCanonical) {
  ir::AnalyzedProgram AP = analyzeOk("symbolic n;\n"
                                     "for i := 1 to n do\n"
                                     "  a(i) := a(i-1) + 1;\n"
                                     "endfor\n");
  deps::FingerprintBuilder FB(AP);
  const ir::Access &W = find(AP, "a", true);
  const ir::Access &R = find(AP, "a", false);

  deps::PairFingerprint WR = FB.pair(W, R);
  deps::PairFingerprint RW = FB.pair(R, W);
  EXPECT_EQ(WR.Key, RW.Key);
  EXPECT_NE(WR.Swapped, RW.Swapped);

  deps::PairFingerprint Self = FB.pair(W, W);
  EXPECT_FALSE(Self.Swapped);
  EXPECT_NE(Self.Key, WR.Key);
}

//===----------------------------------------------------------------------===//
// Baseline persistence
//===----------------------------------------------------------------------===//

TEST(Baseline, SerializeRoundTrip) {
  std::shared_ptr<const engine::BaselineResult> Base =
      recordBaseline(readEdit("base"));
  ASSERT_NE(Base, nullptr);
  EXPECT_FALSE(Base->Pairs.empty());
  EXPECT_FALSE(Base->Arrays.empty());

  std::string Bytes = Base->serialize();
  engine::BaselineResult Loaded;
  std::string Err;
  ASSERT_TRUE(engine::BaselineResult::deserialize(Bytes, &Loaded, &Err))
      << Err;
  EXPECT_TRUE(Loaded.Sig == Base->Sig);
  EXPECT_EQ(Loaded.Arrays, Base->Arrays);
  ASSERT_EQ(Loaded.Pairs.size(), Base->Pairs.size());
  ASSERT_EQ(Loaded.KillGroups.size(), Base->KillGroups.size());
  // Deterministic serialization: a round-trip reproduces the bytes.
  EXPECT_EQ(Loaded.serialize(), Bytes);
}

TEST(Baseline, CorruptionRejected) {
  std::shared_ptr<const engine::BaselineResult> Base =
      recordBaseline(readEdit("base"));
  ASSERT_NE(Base, nullptr);
  std::string Bytes = Base->serialize();

  engine::BaselineResult Out;
  std::string Err;
  EXPECT_FALSE(engine::BaselineResult::deserialize(
      Bytes.substr(0, Bytes.size() / 2), &Out, &Err));
  EXPECT_FALSE(Err.empty());

  std::string Flipped = Bytes;
  Flipped.back() = static_cast<char>(Flipped.back() ^ 0x40);
  Err.clear();
  EXPECT_FALSE(engine::BaselineResult::deserialize(Flipped, &Out, &Err));
  EXPECT_FALSE(Err.empty());

  std::string BadMagic = Bytes;
  BadMagic.front() = static_cast<char>(BadMagic.front() ^ 0x01);
  Err.clear();
  EXPECT_FALSE(engine::BaselineResult::deserialize(BadMagic, &Out, &Err));
  EXPECT_FALSE(Err.empty());

  Err.clear();
  EXPECT_FALSE(engine::BaselineResult::deserialize(std::string(), &Out, &Err));
  EXPECT_FALSE(Err.empty());
}

TEST(Baseline, SaveLoadFile) {
  std::shared_ptr<const engine::BaselineResult> Base =
      recordBaseline(readEdit("base"));
  ASSERT_NE(Base, nullptr);

  std::string Path = ::testing::TempDir() + "delta_test.baseline";
  std::string Err;
  ASSERT_TRUE(Base->saveFile(Path, &Err)) << Err;

  engine::BaselineResult Loaded;
  ASSERT_TRUE(engine::BaselineResult::loadFile(Path, &Loaded, &Err)) << Err;
  EXPECT_EQ(Loaded.serialize(), Base->serialize());
  std::remove(Path.c_str());

  EXPECT_FALSE(engine::BaselineResult::loadFile(
      ::testing::TempDir() + "delta_test_missing.baseline", &Loaded, &Err));
  EXPECT_FALSE(Err.empty());
}

//===----------------------------------------------------------------------===//
// Incremental analysis over the edit corpus
//===----------------------------------------------------------------------===//

// The central gate: for every entry of the edit corpus, replaying the
// base program's baseline renders a byte-identical result, reuses at
// least one pair, and classifies every pair group exactly once.
TEST(Delta, CorpusByteIdentityAndAccounting) {
  std::shared_ptr<const engine::BaselineResult> Base =
      recordBaseline(readEdit("base"));
  ASSERT_NE(Base, nullptr);

  const char *Edits[] = {"rename", "bound", "stmt-new", "stmt-edit",
                         "loop-del"};
  for (const char *Name : Edits) {
    SCOPED_TRACE(Name);
    ir::AnalyzedProgram AP = analyzeOk(readEdit(Name));

    engine::DependenceEngine Scratch;
    std::string Expected = api::renderResult(Scratch.analyze(AP));

    engine::AnalysisRequest Req;
    Req.Baseline = Base.get();
    Req.BuildBaseline = true;
    engine::DependenceEngine Engine(Req);
    engine::AnalysisResult R = Engine.analyze(AP);

    EXPECT_EQ(api::renderResult(R), Expected);
    ASSERT_TRUE(R.Delta.Active);
    EXPECT_GT(R.Delta.PairsReused, 0u);
    EXPECT_EQ(R.Delta.PairsReused + R.Delta.PairsResolved + R.Delta.PairsNew,
              groupTotal(AP));
    // The stats mirror carries the same tallies.
    EXPECT_EQ(R.Stats.DeltaPairsReused, R.Delta.PairsReused);
    EXPECT_EQ(R.Stats.DeltaPairsResolved, R.Delta.PairsResolved);
    EXPECT_EQ(R.Stats.DeltaPairsNew, R.Delta.PairsNew);
  }
}

// Every class has a witness. A structurally novel pair on an unknown
// array is "new" (the corpus itself never produces one: its added pairs
// all structurally match existing fingerprints); an edited pair on a
// known array is "resolved"; its orphaned baseline key is "removed".
TEST(Delta, ClassificationWitnesses) {
  const std::string Base = "symbolic n;\n"
                           "for i := 1 to n do\n"
                           "  a(i) := a(i-1) + 1;\n"
                           "endfor\n";
  std::shared_ptr<const engine::BaselineResult> BP = recordBaseline(Base);
  ASSERT_NE(BP, nullptr);

  // A second nest on a new array, transposed 2-D subscripts: nothing in
  // the baseline matches structurally, and "z" is not a known array.
  const std::string AddsNewArray = Base +
                                   "for i := 1 to n do\n"
                                   "  for j := 1 to n do\n"
                                   "    z(i,j) := z(j,i) + 1;\n"
                                   "  endfor\n"
                                   "endfor\n";
  // Same arrays, different subscript: fingerprints miss on a known array.
  const std::string EditsPair = "symbolic n;\n"
                                "for i := 1 to n do\n"
                                "  a(i) := a(i-2) + 1;\n"
                                "endfor\n";

  struct Case {
    const char *Tag;
    const std::string &Source;
    bool WantNew, WantResolved, WantRemoved;
  } Cases[] = {
      {"new-array", AddsNewArray, true, false, false},
      {"edited-pair", EditsPair, false, true, true},
  };
  for (const Case &C : Cases) {
    SCOPED_TRACE(C.Tag);
    ir::AnalyzedProgram AP = analyzeOk(C.Source);

    engine::DependenceEngine Scratch;
    std::string Expected = api::renderResult(Scratch.analyze(AP));

    engine::AnalysisRequest Req;
    Req.Baseline = BP.get();
    Req.BuildBaseline = true;
    engine::DependenceEngine Engine(Req);
    engine::AnalysisResult R = Engine.analyze(AP);

    EXPECT_EQ(api::renderResult(R), Expected);
    ASSERT_TRUE(R.Delta.Active);
    EXPECT_GT(R.Delta.PairsReused, 0u);
    EXPECT_EQ(R.Delta.PairsNew > 0, C.WantNew);
    EXPECT_EQ(R.Delta.PairsResolved > 0, C.WantResolved);
    EXPECT_EQ(R.Delta.PairsRemoved > 0, C.WantRemoved);
    EXPECT_EQ(R.Delta.PairsReused + R.Delta.PairsResolved + R.Delta.PairsNew,
              groupTotal(AP));
  }
}

// An identical replay reuses every pair and every kill group.
TEST(Delta, IdenticalReplayReusesEverything) {
  std::string Source = readEdit("base");
  std::shared_ptr<const engine::BaselineResult> Base = recordBaseline(Source);
  ASSERT_NE(Base, nullptr);
  ir::AnalyzedProgram AP = analyzeOk(Source);

  engine::AnalysisRequest Req;
  Req.Baseline = Base.get();
  Req.BuildBaseline = true;
  engine::DependenceEngine Engine(Req);
  engine::AnalysisResult R = Engine.analyze(AP);

  ASSERT_TRUE(R.Delta.Active);
  EXPECT_EQ(R.Delta.PairsResolved, 0u);
  EXPECT_EQ(R.Delta.PairsNew, 0u);
  EXPECT_EQ(R.Delta.PairsRemoved, 0u);
  EXPECT_EQ(R.Delta.PairsReused, groupTotal(AP));
  EXPECT_GT(R.Delta.KillGroupsTotal, 0u);
  EXPECT_EQ(R.Delta.KillGroupsReused, R.Delta.KillGroupsTotal);
}

// A baseline recorded under a different pipeline signature is unusable;
// Terminate opts out of the delta model entirely.
TEST(Delta, SignatureMismatchAndTerminateDisable) {
  std::string Source = readEdit("base");
  std::shared_ptr<const engine::BaselineResult> Base = recordBaseline(Source);
  ASSERT_NE(Base, nullptr);
  ir::AnalyzedProgram AP = analyzeOk(Source);

  engine::AnalysisRequest Req;
  Req.Baseline = Base.get();
  Req.BuildBaseline = true;
  Req.Refine = false; // signature mismatch: everything classifies new
  engine::DependenceEngine Mismatch(Req);
  engine::AnalysisResult R = Mismatch.analyze(AP);
  ASSERT_TRUE(R.Delta.Active);
  EXPECT_EQ(R.Delta.PairsReused, 0u);

  engine::AnalysisRequest TReq;
  TReq.Baseline = Base.get();
  TReq.BuildBaseline = true;
  TReq.Terminate = true;
  engine::DependenceEngine Terminating(TReq);
  engine::AnalysisResult TR = Terminating.analyze(AP);
  EXPECT_FALSE(TR.Delta.Active);
  EXPECT_EQ(TR.Baseline, nullptr);
}

//===----------------------------------------------------------------------===//
// Snapshot-store capacity
//===----------------------------------------------------------------------===//

// A single-shard cache makes the budget exact: stores beyond the cap
// evict in LRU order (lookups refresh recency), the evictions land on
// both the cache's counter and the passed OmegaStats, and lowering the
// cap evicts immediately.
TEST(SnapshotStore, LRUEvictionAndCounters) {
  Problem P;
  VarId X = P.addVar("x");
  P.addGEQ({{X, 1}}, 0);
  std::vector<bool> Keep(16, true);
  EliminationSnapshot Snap(P, Keep);

  QueryCache Cache(1);
  Cache.setSnapshotCapacity(2);
  OmegaStats Stats;

  Cache.storeSnapshot("k1", Snap, &Stats);
  Cache.storeSnapshot("k2", Snap, &Stats);
  EXPECT_EQ(Cache.snapshotEvictions(), 0u);

  // Refresh k1, then overflow: k2 is now least recent and goes first.
  EXPECT_TRUE(Cache.lookupSnapshot("k1", &Stats).has_value());
  Cache.storeSnapshot("k3", Snap, &Stats);
  EXPECT_EQ(Cache.snapshotEvictions(), 1u);
  EXPECT_EQ(Stats.SnapshotEvictions, 1u);
  EXPECT_FALSE(Cache.lookupSnapshot("k2", &Stats).has_value());
  EXPECT_TRUE(Cache.lookupSnapshot("k1", &Stats).has_value());
  EXPECT_TRUE(Cache.lookupSnapshot("k3", &Stats).has_value());

  // Lowering the cap evicts down to the new bound right away; the
  // most recently touched key survives.
  Cache.setSnapshotCapacity(1);
  EXPECT_EQ(Cache.snapshotEvictions(), 2u);
  EXPECT_TRUE(Cache.lookupSnapshot("k3", &Stats).has_value());
  EXPECT_FALSE(Cache.lookupSnapshot("k1", &Stats).has_value());

  // Re-storing an existing key is an update, not an eviction.
  Cache.storeSnapshot("k3", Snap, &Stats);
  EXPECT_EQ(Cache.snapshotEvictions(), 2u);

  // Capacity 0 is unbounded again.
  Cache.setSnapshotCapacity(0);
  Cache.storeSnapshot("k4", Snap, &Stats);
  Cache.storeSnapshot("k5", Snap, &Stats);
  EXPECT_EQ(Cache.snapshotEvictions(), 2u);
}

//===----------------------------------------------------------------------===//
// Jobs clamp
//===----------------------------------------------------------------------===//

// applyOptions clamps the requested parallelism to the pool built at
// construction; jobs() always reports the effective count.
TEST(JobsClamp, RequestsClampToPool) {
  engine::AnalysisRequest Req;
  Req.Jobs = 2;
  engine::DependenceEngine Engine(Req);
  ASSERT_EQ(Engine.maxJobs(), 2u);
  EXPECT_EQ(Engine.jobs(), 2u);

  engine::AnalysisRequest O = Req;
  O.Jobs = 16;
  Engine.applyOptions(O);
  EXPECT_EQ(Engine.jobs(), 2u);

  O.Jobs = 1;
  Engine.applyOptions(O);
  EXPECT_EQ(Engine.jobs(), 1u);

  O.Jobs = 0; // "ask the hardware" resolves to the pool's capability
  Engine.applyOptions(O);
  EXPECT_EQ(Engine.jobs(), 2u);
}

//===----------------------------------------------------------------------===//
// Serving stack: sessions and per-request jobs
//===----------------------------------------------------------------------===//

namespace {

/// Submits one request line and blocks until its response arrives.
std::string ask(api::Server &Server, const std::string &Line) {
  std::mutex Mu;
  std::condition_variable CV;
  std::string Response;
  bool Done = false;
  Server.submit(Line, [&](std::string R) {
    std::lock_guard<std::mutex> Lock(Mu);
    Response = std::move(R);
    Done = true;
    CV.notify_one();
  });
  std::unique_lock<std::mutex> Lock(Mu);
  CV.wait(Lock, [&] { return Done; });
  return Response;
}

std::string sessionRequest(uint64_t Id, const std::string &Session,
                           const std::string &Source) {
  return "{\"id\": " + std::to_string(Id) + ", \"session\": \"" + Session +
         "\", \"source\": \"" + api::json::escape(Source) + "\"}";
}

/// metrics.delta.<Field> of a response line, or -1 when absent.
int64_t deltaField(const std::string &Response, const std::string &Field) {
  api::json::Value Doc;
  std::string Err;
  if (!api::json::parse(Response, Doc, Err))
    return -1;
  if (const api::json::Value *M = Doc.get("metrics"))
    if (const api::json::Value *D = M->get("delta"))
      if (const api::json::Value *F = D->get(Field))
        return F->asInt();
  return -1;
}

/// The raw bytes of the top-level "result" object of a response line.
std::string resultBytes(const std::string &Response) {
  std::size_t At = Response.find("\"result\": ");
  if (At == std::string::npos)
    return std::string();
  At += 10;
  int Depth = 0;
  bool InString = false;
  for (std::size_t I = At; I != Response.size(); ++I) {
    char C = Response[I];
    if (InString) {
      if (C == '\\')
        ++I;
      else if (C == '"')
        InString = false;
      continue;
    }
    if (C == '"')
      InString = true;
    else if (C == '{')
      ++Depth;
    else if (C == '}' && --Depth == 0)
      return Response.substr(At, I + 1 - At);
  }
  return std::string();
}

} // namespace

// A session's second request reuses the baseline its first request
// recorded, with the result still byte-identical to a one-shot run; the
// session map holds MaxSessions baselines and evicts the least recently
// used one, which then starts over as all-new.
TEST(ServeSessions, RetainReuseAndEvict) {
  api::Server::Config Cfg;
  Cfg.Workers = 1;
  Cfg.Defaults.Jobs = 1;
  Cfg.MaxSessions = 2;
  api::Server Server(Cfg);

  std::string Base = readEdit("base");
  std::string Edit = readEdit("stmt-edit");

  engine::DependenceEngine Reference;
  std::string Expected =
      api::renderResult(Reference.analyze(analyzeOk(Edit)));

  // First request of a session: nothing to reuse, everything new.
  std::string R1 = ask(Server, sessionRequest(1, "s1", Base));
  EXPECT_EQ(deltaField(R1, "pairsReused"), 0);
  int64_t BaseGroups = deltaField(R1, "pairsNew");
  EXPECT_GT(BaseGroups, 0);

  // Second request: the edit reuses the retained baseline.
  std::string R2 = ask(Server, sessionRequest(2, "s1", Edit));
  EXPECT_GT(deltaField(R2, "pairsReused"), 0);
  EXPECT_EQ(resultBytes(R2), resultBytes(
                                 "{\"result\": " + Expected + "}"));

  // Two more sessions overflow MaxSessions = 2 and evict s1 (least
  // recently used); s1 then starts from scratch again.
  ask(Server, sessionRequest(3, "s2", Base));
  ask(Server, sessionRequest(4, "s3", Base));
  std::string R5 = ask(Server, sessionRequest(5, "s1", Edit));
  EXPECT_EQ(deltaField(R5, "pairsReused"), 0);
  EXPECT_EQ(resultBytes(R5), resultBytes(R2));

  // Sessionless requests never activate the delta layer.
  std::string R6 = ask(Server, "{\"id\": 6, \"source\": \"" +
                                   api::json::escape(Edit) + "\"}");
  EXPECT_EQ(deltaField(R6, "pairsReused"), -1);
  EXPECT_EQ(resultBytes(R6), resultBytes(R2));
}

// Per-request jobs are honored but clamped to the worker's pool; the
// effective value is what metrics reports.
TEST(ServeSessions, PerRequestJobsClamped) {
  api::Server::Config Cfg;
  Cfg.Workers = 1;
  Cfg.Defaults.Jobs = 2;
  api::Server Server(Cfg);

  std::string Source = readEdit("base");
  auto jobsOf = [&](const std::string &OptionsJson) {
    std::string Line = "{\"id\": 1, \"source\": \"" +
                       api::json::escape(Source) + "\"";
    if (!OptionsJson.empty())
      Line += ", \"options\": " + OptionsJson;
    Line += "}";
    std::string Response = ask(Server, Line);
    api::json::Value Doc;
    std::string Err;
    EXPECT_TRUE(api::json::parse(Response, Doc, Err)) << Err;
    if (const api::json::Value *M = Doc.get("metrics"))
      if (const api::json::Value *J = M->get("jobs"))
        return J->asInt();
    return int64_t(-1);
  };

  EXPECT_EQ(jobsOf(""), 2);                  // defaults
  EXPECT_EQ(jobsOf("{\"jobs\": 16}"), 2);    // clamped to the pool
  EXPECT_EQ(jobsOf("{\"jobs\": 1}"), 1);     // lower requests honored
}
