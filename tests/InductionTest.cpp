//===- tests/InductionTest.cpp --------------------------------------------===//
//
// Tests for scalar recurrence recognition and its use in symbolic
// dependence analysis (the paper's Example 11 from program s141 of
// [LCD91], which no compiler in that study handled).
//
//===----------------------------------------------------------------------===//

#include "symbolic/Induction.h"

#include "kernels/Kernels.h"
#include "symbolic/SymbolicAnalysis.h"

#include <gtest/gtest.h>

using namespace omega;
using namespace omega::symbolic;
using omega::ir::Access;
using omega::ir::AnalyzedProgram;
using omega::ir::analyzeSource;

namespace {

const Access *findAccess(const AnalyzedProgram &AP, const std::string &Array,
                         bool IsWrite, const std::string &Text = "") {
  for (const Access &A : AP.Accesses)
    if (A.Array == Array && A.IsWrite == IsWrite &&
        (Text.empty() || A.Text == Text))
      return &A;
  return nullptr;
}

} // namespace

TEST(Induction, RecognizesStrictAccumulation) {
  // Example 11's pattern: k := k + j with j >= i >= 1.
  AnalyzedProgram AP = analyzeSource(kernels::example11());
  ASSERT_TRUE(AP.ok());
  InductionInfo Info = recognizeInductions(AP);
  const ScalarRecurrence *Rec = Info.recurrenceOf("k");
  ASSERT_NE(Rec, nullptr);
  EXPECT_EQ(Rec->Direction, Monotonicity::StrictlyIncreasing);
  EXPECT_EQ(Rec->Updates.size(), 1u);
}

TEST(Induction, NonNegativeAddendIsNonStrict) {
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := 0 to n do\n"
                                     "  k := k + i;\n" // i can be 0
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  InductionInfo Info = recognizeInductions(AP);
  const ScalarRecurrence *Rec = Info.recurrenceOf("k");
  ASSERT_NE(Rec, nullptr);
  EXPECT_EQ(Rec->Direction, Monotonicity::Increasing);
}

TEST(Induction, DecreasingRecognized) {
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := 1 to n do\n"
                                     "  k := k - 2;\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  InductionInfo Info = recognizeInductions(AP);
  const ScalarRecurrence *Rec = Info.recurrenceOf("k");
  ASSERT_NE(Rec, nullptr);
  EXPECT_EQ(Rec->Direction, Monotonicity::StrictlyDecreasing);
}

TEST(Induction, MixedSignAddendUnrecognized) {
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := 0-3 to n do\n"
                                     "  k := k + i;\n" // sign varies
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  InductionInfo Info = recognizeInductions(AP);
  EXPECT_EQ(Info.recurrenceOf("k"), nullptr);
}

TEST(Induction, NonAccumulatingWriteUnrecognized) {
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := 1 to n do\n"
                                     "  k := k + 1;\n"
                                     "endfor\n"
                                     "k := 0;\n"); // a reset breaks it
  ASSERT_TRUE(AP.ok());
  InductionInfo Info = recognizeInductions(AP);
  EXPECT_EQ(Info.recurrenceOf("k"), nullptr);
}

TEST(Induction, MultipleConsistentUpdatesMeet) {
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := 1 to n do\n"
                                     "  k := k + 2;\n"
                                     "  k := k + i - 1;\n" // >= 0 only
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  InductionInfo Info = recognizeInductions(AP);
  const ScalarRecurrence *Rec = Info.recurrenceOf("k");
  ASSERT_NE(Rec, nullptr);
  EXPECT_EQ(Rec->Direction, Monotonicity::Increasing);
  EXPECT_EQ(Rec->Updates.size(), 2u);
}

//===----------------------------------------------------------------------===//
// Example 11 end to end.
//===----------------------------------------------------------------------===//

TEST(Induction, Example11KillsCarriedSelfDependences) {
  AnalyzedProgram AP = analyzeSource(kernels::example11());
  ASSERT_TRUE(AP.ok());
  const Access *W = findAccess(AP, "a", true);
  const Access *R = findAccess(AP, "a", false, "a(k)");
  ASSERT_TRUE(W && R);
  AssertionDB DB;

  // k strictly increases between iterations, so a(k) never revisits a
  // location: no carried output or flow dependence at either level.
  EXPECT_FALSE(dependencePossible(AP, *W, *W, 1, DB));
  EXPECT_FALSE(dependencePossible(AP, *W, *W, 2, DB));
  EXPECT_FALSE(dependencePossible(AP, *W, *R, 1, DB));
  EXPECT_FALSE(dependencePossible(AP, *W, *R, 2, DB));

  // The loop-independent anti dependence (read then write of the same
  // instance) is real and must stay.
  EXPECT_TRUE(dependencePossible(AP, *R, *W, 0, DB));
}

TEST(Induction, NonStrictScalarKeepsDependence) {
  // With a possibly-zero addend the location can repeat: the carried
  // dependence must be assumed.
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := 0 to n do\n"
                                     "  a(k) := a(k) + 1;\n"
                                     "  k := k + i;\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  const Access *W = findAccess(AP, "a", true);
  AssertionDB DB;
  EXPECT_TRUE(dependencePossible(AP, *W, *W, 1, DB));
}

TEST(Induction, UpdateNestedDeeperStaysNonStrict) {
  // The update sits inside a further loop that may iterate zero times
  // (m symbolic): between outer iterations k may not change, so the
  // carried dependence survives.
  AnalyzedProgram AP = analyzeSource("symbolic n, m;\n"
                                     "for i := 1 to n do\n"
                                     "  a(k) := a(k) + 1;\n"
                                     "  for j := 1 to m do\n"
                                     "    k := k + 1;\n"
                                     "  endfor\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  const Access *W = findAccess(AP, "a", true);
  AssertionDB DB;
  EXPECT_TRUE(dependencePossible(AP, *W, *W, 1, DB));
}

TEST(Induction, UpdateBeforeReadNotCountedStrict) {
  // The update runs textually before the a(k) statement: between the
  // level-1 instances there IS still an update (the one in the later
  // iteration), but our sound syntactic rule only counts updates after
  // the earlier read, so the dependence survives; importantly it must
  // NOT be reported impossible unless justified.
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := 1 to n do\n"
                                     "  k := k + 1;\n"
                                     "  a(k) := a(k) + 1;\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  const Access *W = findAccess(AP, "a", true);
  AssertionDB DB;
  // Note: this is conservative -- the dependence is in fact impossible,
  // but the syntactic strictness rule doesn't fire here.
  EXPECT_TRUE(dependencePossible(AP, *W, *W, 1, DB));
}
