//===- tests/RestraintTest.cpp --------------------------------------------===//
//
// Tests for restraint-vector computation (Section 2.1.2): the merged
// single restraint for coupled distances, and the per-level fallback.
//
//===----------------------------------------------------------------------===//

#include "deps/DependenceAnalysis.h"

#include "kernels/Kernels.h"
#include "omega/Satisfiability.h"

#include <gtest/gtest.h>

using namespace omega;
using namespace omega::deps;
using omega::ir::Access;
using omega::ir::AnalyzedProgram;
using omega::ir::analyzeSource;

namespace {

const Access *findAccess(const AnalyzedProgram &AP, const std::string &Array,
                         bool IsWrite) {
  for (const Access &A : AP.Accesses)
    if (A.Array == Array && A.IsWrite == IsWrite)
      return &A;
  return nullptr;
}

std::vector<DepSpace::RestraintVector>
restraintsFor(const AnalyzedProgram &AP, const Access &Src,
              const Access &Dst) {
  DepSpace Space(AP, {&Src, &Dst});
  Problem Pair = buildPairProblem(Space);
  return Space.computeRestraintVectors(Pair, 0, 1);
}

} // namespace

TEST(Restraints, CoupledDistancesNeedOneRestraint) {
  // Example 6: distances (a,a) -- the single restraint (0+,*) suffices.
  AnalyzedProgram AP = analyzeSource(kernels::example6());
  ASSERT_TRUE(AP.ok());
  const Access *W = findAccess(AP, "a", true);
  const Access *R = findAccess(AP, "a", false);
  auto Rs = restraintsFor(AP, *W, *R);
  ASSERT_EQ(Rs.size(), 1u);
  EXPECT_EQ(Rs.front().toString(), "(0+,*)");
}

TEST(Restraints, Example7NeedsTwoRestraints) {
  // The paper: "There are two apparent restraint vectors for this
  // dependence: (+,*) and (0,+)."
  AnalyzedProgram AP = analyzeSource(kernels::example7());
  ASSERT_TRUE(AP.ok());
  const Access *W = findAccess(AP, "A", true);
  const Access *R = findAccess(AP, "A", false);
  auto Rs = restraintsFor(AP, *W, *R);
  ASSERT_EQ(Rs.size(), 2u);
  EXPECT_EQ(Rs[0].toString(), "(+,*)");
  EXPECT_EQ(Rs[1].toString(), "(0,+)");
}

TEST(Restraints, RecurrenceSingleRestraint) {
  // a(i) := a(i-1): distance pinned to 1, so Delta_1 >= 0 already rules
  // out everything backward.
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := 2 to n do\n"
                                     "  a(i) := a(i-1);\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  const Access *W = findAccess(AP, "a", true);
  const Access *R = findAccess(AP, "a", false);
  auto Rs = restraintsFor(AP, *W, *R);
  ASSERT_EQ(Rs.size(), 1u);
  EXPECT_EQ(Rs.front().toString(), "(0+)");
}

TEST(Restraints, NoCommonLoopsTextualOrder) {
  AnalyzedProgram AP = analyzeSource("a(1) := 0;\n"
                                     "x(1) := a(1);\n");
  ASSERT_TRUE(AP.ok());
  const Access *W = findAccess(AP, "a", true);
  const Access *R = findAccess(AP, "a", false);
  auto Rs = restraintsFor(AP, *W, *R);
  ASSERT_EQ(Rs.size(), 1u);
  EXPECT_TRUE(Rs.front().MinAtLevel.empty());

  // Reverse direction: the read cannot precede the write.
  auto RsBack = restraintsFor(AP, *R, *W);
  EXPECT_TRUE(RsBack.empty());
}

TEST(Restraints, RestraintsCoverAllForwardSolutions) {
  // Property: adding each restraint in turn, the union of satisfiable
  // ordered pairs equals the per-level union computed by the analysis.
  AnalyzedProgram AP = analyzeSource(kernels::example5());
  ASSERT_TRUE(AP.ok());
  const Access *W = findAccess(AP, "a", true);
  const Access *R = findAccess(AP, "a", false);
  DepSpace Space(AP, {W, R});
  Problem Pair = buildPairProblem(Space);
  auto Rs = Space.computeRestraintVectors(Pair, 0, 1);
  ASSERT_FALSE(Rs.empty());
  for (const auto &RV : Rs) {
    Problem Test = Pair;
    Space.addRestraint(Test, 0, 1, RV);
    EXPECT_TRUE(isSatisfiable(Test)) << RV.toString();
  }
}
