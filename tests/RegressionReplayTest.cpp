//===- tests/RegressionReplayTest.cpp -------------------------------------===//
//
// Replays every shrunk reproducer in tests/corpus/regressions/ through
// the same oracle battery that produced it (see the README there). A
// file that once exposed a bug keeps guarding against its return.
//
//===----------------------------------------------------------------------===//

#include "calc/Calc.h"
#include "omega/Satisfiability.h"
#include "oracle/CrossCheck.h"
#include "oracle/ModelOracle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

using namespace omega;
namespace fs = std::filesystem;

namespace {

fs::path regressionDir() { return fs::path(OMEGA_REGRESSION_DIR); }

std::string readFile(const fs::path &P) {
  std::ifstream In(P);
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

std::vector<fs::path> corpusFiles(const std::string &Ext) {
  std::vector<fs::path> Files;
  for (const fs::directory_entry &E : fs::directory_iterator(regressionDir()))
    if (E.is_regular_file() && E.path().extension() == Ext)
      Files.push_back(E.path());
  std::sort(Files.begin(), Files.end());
  return Files;
}

} // namespace

TEST(RegressionReplay, CorpusIsPresent) {
  ASSERT_TRUE(fs::is_directory(regressionDir()))
      << "missing " << regressionDir();
  // The corpus ships with at least one program and one calc reproducer;
  // an empty glob would make the other tests pass vacuously.
  EXPECT_FALSE(corpusFiles(".tiny").empty());
  EXPECT_FALSE(corpusFiles(".calc").empty());
}

TEST(RegressionReplay, Programs) {
  for (const fs::path &File : corpusFiles(".tiny")) {
    SCOPED_TRACE(File.filename().string());
    std::vector<std::string> Mismatches =
        oracle::crossCheckProgram(readFile(File));
    for (const std::string &M : Mismatches)
      ADD_FAILURE() << M;
  }
}

TEST(RegressionReplay, CalcScripts) {
  for (const fs::path &File : corpusFiles(".calc")) {
    SCOPED_TRACE(File.filename().string());
    calc::Calculator C;
    std::string Out = C.run(readFile(File));
    EXPECT_FALSE(C.hadError()) << Out;

    // Cross-check the reproducer's set (the shrinker always names it P):
    // a satisfiable verdict must surface a verified witness, an
    // unsatisfiable one must survive brute force over a box larger than
    // any shrunk reproducer's coefficients.
    const calc::NamedSet *Set = C.lookup("P");
    ASSERT_NE(Set, nullptr) << "reproducer defines no set named P";
    OmegaContext Ctx;
    OmegaContextScope Scope(Ctx);
    if (isSatisfiable(Set->P, SatOptions(), Ctx)) {
      std::optional<std::vector<int64_t>> Point = findSolution(Set->P, Ctx);
      ASSERT_TRUE(Point.has_value()) << "P is SAT but has no witness";
      EXPECT_TRUE(oracle::evalProblem(Set->P, *Point))
          << "P: witness fails the constraints";
    } else {
      EXPECT_FALSE(oracle::bruteForceSat(Set->P, /*Box=*/12))
          << "P: claimed UNSAT but brute force found a point";
    }
  }
}
