//===- tests/SatisfiabilityTest.cpp ---------------------------------------===//
//
// Unit and property tests for the Omega test satisfiability procedure.
//
//===----------------------------------------------------------------------===//

#include "omega/Satisfiability.h"

#include "TestUtils.h"

#include <gtest/gtest.h>

using namespace omega;
using namespace omega::testutil;

TEST(Satisfiability, EmptyProblemIsSat) {
  Problem P;
  P.addVar("x");
  EXPECT_TRUE(isSatisfiable(P));
}

TEST(Satisfiability, SimpleInterval) {
  Problem P;
  VarId X = P.addVar("x");
  P.addGEQ({{X, 1}}, -2); // x >= 2
  P.addGEQ({{X, -1}}, 5); // x <= 5
  EXPECT_TRUE(isSatisfiable(P));

  Problem Q;
  X = Q.addVar("x");
  Q.addGEQ({{X, 1}}, -6); // x >= 6
  Q.addGEQ({{X, -1}}, 5); // x <= 5
  EXPECT_FALSE(isSatisfiable(Q));
}

TEST(Satisfiability, IntegerGapDetected) {
  // 2 <= 3x <= 4 has the rational solutions [2/3, 4/3] but only x == 1.
  Problem P;
  VarId X = P.addVar("x");
  P.addGEQ({{X, 3}}, -2);
  P.addGEQ({{X, -3}}, 4);
  EXPECT_TRUE(isSatisfiable(P));

  // 4 <= 3x <= 5 contains no integer multiple of 3.
  Problem Q;
  X = Q.addVar("x");
  Q.addGEQ({{X, 3}}, -4);
  Q.addGEQ({{X, -3}}, 5);
  EXPECT_FALSE(isSatisfiable(Q));
}

TEST(Satisfiability, ClassicDarkShadowExample) {
  // The well-known 2-variable example with rational but no integer
  // solutions: 27 <= 11x + 13y <= 45, -10 <= 7x - 9y <= 4 [Pug91].
  Problem P;
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  P.addGEQ({{X, 11}, {Y, 13}}, -27);
  P.addGEQ({{X, -11}, {Y, -13}}, 45);
  P.addGEQ({{X, 7}, {Y, -9}}, 10);
  P.addGEQ({{X, -7}, {Y, 9}}, 4);
  EXPECT_FALSE(isSatisfiable(P));
}

TEST(Satisfiability, RealShadowOnlyIsOptimistic) {
  // The same system is "satisfiable" under the real relaxation.
  Problem P;
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  P.addGEQ({{X, 11}, {Y, 13}}, -27);
  P.addGEQ({{X, -11}, {Y, -13}}, 45);
  P.addGEQ({{X, 7}, {Y, -9}}, 10);
  P.addGEQ({{X, -7}, {Y, 9}}, 4);
  SatOptions Opts;
  Opts.Mode = SatMode::RealShadowOnly;
  EXPECT_TRUE(isSatisfiable(P, Opts));
}

TEST(Satisfiability, EqualityChainSolved) {
  Problem P;
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  VarId Z = P.addVar("z");
  P.addEQ({{X, 1}, {Y, -1}}, 0); // x == y
  P.addEQ({{Y, 1}, {Z, -1}}, 1); // y == z - 1
  P.addGEQ({{X, 1}}, -5);         // x >= 5
  P.addGEQ({{Z, -1}}, 5);         // z <= 5
  EXPECT_FALSE(isSatisfiable(P)); // x >= 5 forces z >= 6
}

TEST(Satisfiability, NonUnitEqualityNeedsModHat) {
  // 3x + 5y == 1 is solvable over Z (e.g. x == 2, y == -1).
  Problem P;
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  P.addEQ({{X, 3}, {Y, 5}}, -1);
  EXPECT_TRUE(isSatisfiable(P));

  // 6x + 10y == 1 is not (gcd 2 does not divide 1).
  Problem Q;
  X = Q.addVar("x");
  Y = Q.addVar("y");
  Q.addEQ({{X, 6}, {Y, 10}}, -1);
  EXPECT_FALSE(isSatisfiable(Q));
}

TEST(Satisfiability, ModHatWithBounds) {
  // 3x + 5y == 1 with 0 <= x, y <= 10: no solution in the box? Check:
  // x=2,y=-1 out; x=7,y=-4 out; y must satisfy 5y == 1-3x; 1-3x in
  // [-29, 1]; need multiple of 5: 1-3x in {-25,-20,-15,-10,-5,0}
  // => 3x in {26,21,16,11,6,1} => x == 2 gives 3x=6, y=-1 < 0. x == 7
  // gives 21, y = -4. None with y >= 0.
  Problem P;
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  P.addEQ({{X, 3}, {Y, 5}}, -1);
  for (VarId V : {X, Y}) {
    P.addGEQ({{V, 1}}, 0);
    P.addGEQ({{V, -1}}, 10);
  }
  EXPECT_FALSE(isSatisfiable(P));

  // Enlarging the box to allow x == 12, y == -7... still y < 0. Instead
  // allow y negative: -5 <= y.
  Problem Q;
  X = Q.addVar("x");
  Y = Q.addVar("y");
  Q.addEQ({{X, 3}, {Y, 5}}, -1);
  Q.addGEQ({{X, 1}}, 0);
  Q.addGEQ({{X, -1}}, 10);
  Q.addGEQ({{Y, 1}}, 5); // y >= -5
  Q.addGEQ({{Y, -1}}, 10);
  EXPECT_TRUE(isSatisfiable(Q)); // x == 2, y == -1
}

TEST(Satisfiability, PaperProjectionExampleFeasible) {
  // {0 <= a <= 5, b < a <= 5b} from Section 3 of the paper.
  Problem P;
  VarId A = P.addVar("a");
  VarId B = P.addVar("b");
  P.addGEQ({{A, 1}}, 0);
  P.addGEQ({{A, -1}}, 5);
  P.addGEQ({{A, 1}, {B, -1}}, -1); // a >= b + 1
  P.addGEQ({{A, -1}, {B, 5}}, 0);  // a <= 5b
  EXPECT_TRUE(isSatisfiable(P));
}

TEST(Satisfiability, UnboundedSystems) {
  Problem P;
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  P.addGEQ({{X, 1}, {Y, 1}}, 0); // x + y >= 0, unbounded
  EXPECT_TRUE(isSatisfiable(P));

  Problem Q;
  X = Q.addVar("x");
  Q.addGEQ({{X, 2}}, -7); // 2x >= 7
  EXPECT_TRUE(isSatisfiable(Q));
}

TEST(Satisfiability, ThreeVarCoupled) {
  // x + y + z == 10, x,y,z in [0,3] -- impossible (max 9).
  Problem P;
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  VarId Z = P.addVar("z");
  P.addEQ({{X, 1}, {Y, 1}, {Z, 1}}, -10);
  for (VarId V : {X, Y, Z}) {
    P.addGEQ({{V, 1}}, 0);
    P.addGEQ({{V, -1}}, 3);
  }
  EXPECT_FALSE(isSatisfiable(P));

  // With bound 4 it becomes possible (4+3+3).
  Problem Q;
  X = Q.addVar("x");
  Y = Q.addVar("y");
  Z = Q.addVar("z");
  Q.addEQ({{X, 1}, {Y, 1}, {Z, 1}}, -10);
  for (VarId V : {X, Y, Z}) {
    Q.addGEQ({{V, 1}}, 0);
    Q.addGEQ({{V, -1}}, 4);
  }
  EXPECT_TRUE(isSatisfiable(Q));
}

//===----------------------------------------------------------------------===//
// Property tests: the Omega test must agree with exhaustive enumeration on
// randomly generated boxed problems.
//===----------------------------------------------------------------------===//

namespace {

struct SatPropertyParam {
  RandomProblemConfig Cfg;
  unsigned Trials;
  unsigned Seed;
};

class SatisfiabilityProperty
    : public ::testing::TestWithParam<SatPropertyParam> {};

} // namespace

TEST_P(SatisfiabilityProperty, AgreesWithBruteForce) {
  const SatPropertyParam &Param = GetParam();
  std::mt19937 Rng(Param.Seed);
  for (unsigned T = 0; T != Param.Trials; ++T) {
    Problem P = randomProblem(Rng, Param.Cfg);
    bool Expected = bruteForceSat(P, -Param.Cfg.Box, Param.Cfg.Box);
    bool Actual = isSatisfiable(P);
    ASSERT_EQ(Actual, Expected)
        << "trial " << T << ": " << P.toString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomBoxes, SatisfiabilityProperty,
    ::testing::Values(
        // Small dense systems with equalities: exercises mod-hat.
        SatPropertyParam{{/*NumVars=*/2, /*NumEQs=*/1, /*NumGEQs=*/2,
                          /*CoeffRange=*/3, /*ConstRange=*/8, /*Box=*/6},
                         200, 1},
        // Pure inequalities with larger coefficients: exercises dark
        // shadow and splintering.
        SatPropertyParam{{/*NumVars=*/2, /*NumEQs=*/0, /*NumGEQs=*/4,
                          /*CoeffRange=*/5, /*ConstRange=*/12, /*Box=*/8},
                         200, 2},
        // Three variables, mixed rows.
        SatPropertyParam{{/*NumVars=*/3, /*NumEQs=*/1, /*NumGEQs=*/3,
                          /*CoeffRange=*/3, /*ConstRange=*/8, /*Box=*/5},
                         150, 3},
        // Three variables, inequality-heavy.
        SatPropertyParam{{/*NumVars=*/3, /*NumEQs=*/0, /*NumGEQs=*/6,
                          /*CoeffRange=*/4, /*ConstRange=*/10, /*Box=*/4},
                         150, 4},
        // Four variables, small box.
        SatPropertyParam{{/*NumVars=*/4, /*NumEQs=*/1, /*NumGEQs=*/4,
                          /*CoeffRange=*/2, /*ConstRange=*/6, /*Box=*/3},
                         100, 5},
        // Two equalities: chained substitutions.
        SatPropertyParam{{/*NumVars=*/3, /*NumEQs=*/2, /*NumGEQs=*/2,
                          /*CoeffRange=*/3, /*ConstRange=*/6, /*Box=*/5},
                         150, 6}));
