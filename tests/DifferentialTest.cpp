//===- tests/DifferentialTest.cpp -----------------------------------------===//
//
// Ground-truth differential testing over the kernel corpus: run each
// kernel through the reference interpreter with pinned symbolic
// constants, derive the *actual* dependences from the execution trace,
// and check the whole analysis stack against them (see DiffHarness.h):
//
//  * soundness of the memory-based analysis: every executed pair of
//    conflicting accesses must be covered by a computed dependence split
//    whose carried level and distance ranges admit the observed distance;
//  * soundness of the Section 4 kill/cover/refine machinery: every
//    *value-based* flow (last write before a read) must be admitted by a
//    split that is still alive.
//
// A false kill, a wrong refinement, or a dropped dependence anywhere in
// the stack shows up here as a concrete witness.
//
//===----------------------------------------------------------------------===//

#include "DiffHarness.h"

#include "kernels/Kernels.h"

#include <gtest/gtest.h>

using namespace omega;
using namespace omega::testutil;

namespace {

struct DiffCase {
  const char *Name;
  const char *Source;
  std::map<std::string, int64_t> Symbols;
};

class DifferentialTest : public ::testing::TestWithParam<DiffCase> {};

} // namespace

TEST_P(DifferentialTest, TraceWitnessesAreAdmitted) {
  const DiffCase &Case = GetParam();
  ir::AnalyzedProgram AP = ir::analyzeSource(Case.Source);
  ASSERT_TRUE(AP.ok()) << Case.Name;
  unsigned Checked = checkTraceWitnesses(AP, Case.Symbols, Case.Name);
  EXPECT_GT(Checked, 0u) << Case.Name;
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, DifferentialTest,
    ::testing::Values(
        DiffCase{"example1", kernels::example1(), {{"n", 3}}},
        DiffCase{"example2", kernels::example2(), {{"n", 5}, {"m", 3}}},
        DiffCase{"example3", kernels::example3(), {{"n", 4}, {"m", 5}}},
        DiffCase{"example4", kernels::example4(), {{"n", 4}, {"m", 7}}},
        DiffCase{"example5", kernels::example5(), {{"n", 4}, {"m", 6}}},
        DiffCase{"example6", kernels::example6(), {{"n", 5}, {"m", 4}}},
        DiffCase{"example7",
                 kernels::example7(),
                 {{"n", 6}, {"m", 3}, {"x", 2}, {"y", 1}}},
        DiffCase{"example8", kernels::example8(), {{"n", 5}}},
        DiffCase{"example10", kernels::example10(), {{"n", 3}}},
        DiffCase{"example11", kernels::example11(), {{"n", 3}}},
        DiffCase{"wavefront",
                 "symbolic n, m;\n"
                 "for i := 2 to n do\n"
                 "  for j := 2 to m do\n"
                 "    a(i,j) := a(i-1,j) + a(i,j-1);\n"
                 "  endfor\n"
                 "endfor\n",
                 {{"n", 5}, {"m", 5}}},
        DiffCase{"lu",
                 "symbolic n;\n"
                 "for k := 1 to n do\n"
                 "  for i := k+1 to n do\n"
                 "    a(i,k) := a(i,k) + a(k,k);\n"
                 "  endfor\n"
                 "  for i := k+1 to n do\n"
                 "    for j := k+1 to n do\n"
                 "      a(i,j) := a(i,j) - a(i,k) * a(k,j);\n"
                 "    endfor\n"
                 "  endfor\n"
                 "endfor\n",
                 {{"n", 4}}},
        DiffCase{"double_buffer",
                 "symbolic n;\n"
                 "for t := 1 to 6 do\n"
                 "  for i := 1 to n do\n"
                 "    b(i) := a(i);\n"
                 "  endfor\n"
                 "  for i := 1 to n do\n"
                 "    a(i) := b(i) + 1;\n"
                 "  endfor\n"
                 "endfor\n",
                 {{"n", 4}}},
        DiffCase{"privatizable",
                 "symbolic n;\n"
                 "for i := 1 to n do\n"
                 "  t(0) := a(i);\n"
                 "  b(i) := t(0) + t(0);\n"
                 "endfor\n",
                 {{"n", 6}}},
        DiffCase{"inplace_stencil",
                 "symbolic n;\n"
                 "for t := 1 to 5 do\n"
                 "  for i := 2 to n-1 do\n"
                 "    a(i) := a(i-1) + a(i+1);\n"
                 "  endfor\n"
                 "endfor\n",
                 {{"n", 6}}},
        DiffCase{"strides",
                 "symbolic n;\n"
                 "for i := 1 to n step 2 do\n"
                 "  a(i) := a(i-2);\n"
                 "endfor\n"
                 "for i := 1 to n do\n"
                 "  c(i) := a(i);\n"
                 "endfor\n",
                 {{"n", 9}}},
        DiffCase{"downward",
                 "symbolic n;\n"
                 "for k := n to 1 step -1 do\n"
                 "  a(k) := a(k+1);\n"
                 "endfor\n",
                 {{"n", 6}}},
        DiffCase{"cholsky",
                 kernels::cholsky(),
                 {{"N", 3},
                  {"M", 2},
                  {"NMAT", 1},
                  {"NRHS", 1},
                  {"EPS", 1}}}));

namespace {

/// The corpus entries past the hand-listed ones run with one shared
/// symbol binding; kernels whose symbols are absent simply skip.
const std::map<std::string, int64_t> CorpusSymbols = {
    {"n", 4}, {"m", 4}, {"p", 3}, {"w", 2}, {"k", 1},
    {"N", 2}, {"M", 2}, {"NMAT", 1}, {"NRHS", 1}, {"EPS", 1},
    {"x", 1}, {"y", 1}, {"maxB", 3},
};

class CorpusSweepTest : public ::testing::Test {};

} // namespace

TEST_F(CorpusSweepTest, EveryKernelPassesDifferentialCheck) {
  for (const kernels::Kernel &K : kernels::corpus()) {
    ir::AnalyzedProgram AP = ir::analyzeSource(K.Source);
    ASSERT_TRUE(AP.ok()) << K.Name;
    checkTraceWitnesses(AP, CorpusSymbols, K.Name);
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "kernel: " << K.Name;
      return;
    }
  }
}
