//===- tests/TransformsTest.cpp -------------------------------------------===//
//
// Tests for the transformation legality queries: parallelization,
// interchange, privatization -- the consumers the paper's introduction
// motivates.
//
//===----------------------------------------------------------------------===//

#include "analysis/Transforms.h"

#include "kernels/Kernels.h"

#include <gtest/gtest.h>

using namespace omega;
using namespace omega::analysis;
using omega::ir::AnalyzedProgram;
using omega::ir::analyzeSource;
using omega::ir::LoopInfo;

namespace {

const LoopInfo *loopNamed(const AnalyzedProgram &AP, const std::string &V) {
  for (const auto &L : AP.Loops)
    if (L->SourceVar == V)
      return L.get();
  return nullptr;
}

const LoopFacts *factsOf(const std::vector<LoopFacts> &Fs,
                         const LoopInfo *L) {
  for (const LoopFacts &F : Fs)
    if (F.Loop == L)
      return &F;
  return nullptr;
}

} // namespace

TEST(Transforms, IndependentLoopIsParallel) {
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := 1 to n do\n"
                                     "  b(i) := a(i) + 1;\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  AnalysisResult R = analyzeProgram(AP);
  std::vector<LoopFacts> Facts = analyzeLoops(AP, R);
  const LoopFacts *F = factsOf(Facts, loopNamed(AP, "i"));
  ASSERT_NE(F, nullptr);
  EXPECT_TRUE(F->Parallelizable);
  EXPECT_FALSE(F->ParallelizableOnlyAfterKills);
}

TEST(Transforms, RecurrenceLoopIsSerial) {
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := 2 to n do\n"
                                     "  a(i) := a(i-1);\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  AnalysisResult R = analyzeProgram(AP);
  std::vector<LoopFacts> Facts = analyzeLoops(AP, R);
  const LoopFacts *F = factsOf(Facts, loopNamed(AP, "i"));
  ASSERT_NE(F, nullptr);
  EXPECT_FALSE(F->Parallelizable);
  EXPECT_FALSE(F->FlowParallelizable); // a real value recurrence
  EXPECT_FALSE(F->Blockers.empty());
}

TEST(Transforms, Example3OuterLoopFlowParallelAfterRefinement) {
  // Example 3's outer loop carries only FALSE flow dependences:
  // refinement moves the flow to (0,1). What remains carried by L1 is
  // storage traffic (anti/output), removable by renaming or expansion --
  // which is exactly why the paper insists on separating flow from
  // storage dependences.
  AnalyzedProgram AP = analyzeSource(kernels::example3());
  ASSERT_TRUE(AP.ok());
  AnalysisResult R = analyzeProgram(AP);
  std::vector<LoopFacts> Facts = analyzeLoops(AP, R);
  const LoopFacts *L1 = factsOf(Facts, loopNamed(AP, "L1"));
  ASSERT_NE(L1, nullptr);
  EXPECT_TRUE(L1->FlowParallelizable);
  EXPECT_FALSE(L1->Parallelizable); // anti (+,-1) remains: storage only
  const LoopFacts *L2 = factsOf(Facts, loopNamed(AP, "L2"));
  ASSERT_NE(L2, nullptr);
  EXPECT_FALSE(L2->FlowParallelizable); // the (0,1) recurrence is real

  // Without refinement L1 appears to carry a value flow too.
  DriverOptions NoRefine;
  NoRefine.Refine = false;
  AnalysisResult R2 = analyzeProgram(AP, NoRefine);
  std::vector<LoopFacts> Facts2 = analyzeLoops(AP, R2);
  const LoopFacts *L1Un = factsOf(Facts2, loopNamed(AP, "L1"));
  ASSERT_NE(L1Un, nullptr);
  EXPECT_FALSE(L1Un->FlowParallelizable);
}

TEST(Transforms, WavefrontInterchangeLegal) {
  // (1,0) and (0,1) dependences permit interchange.
  AnalyzedProgram AP = analyzeSource("symbolic n, m;\n"
                                     "for i := 2 to n do\n"
                                     "  for j := 2 to m do\n"
                                     "    a(i,j) := a(i-1,j) + a(i,j-1);\n"
                                     "  endfor\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  AnalysisResult R = analyzeProgram(AP);
  EXPECT_TRUE(canInterchange(R, loopNamed(AP, "i"), loopNamed(AP, "j")));
}

TEST(Transforms, AntiDiagonalInterchangeIllegal) {
  // a(i,j) := a(i-1,j+1): dependence (1,-1) blocks interchange.
  AnalyzedProgram AP = analyzeSource("symbolic n, m;\n"
                                     "for i := 2 to n do\n"
                                     "  for j := 2 to m do\n"
                                     "    a(i,j) := a(i-1,j+1);\n"
                                     "  endfor\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  AnalysisResult R = analyzeProgram(AP);
  EXPECT_FALSE(canInterchange(R, loopNamed(AP, "i"), loopNamed(AP, "j")));
}

TEST(Transforms, PrivatizableTemporary) {
  // The paper's motivating pattern: t is written then read in each
  // iteration; only kill analysis sees it is private.
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := 1 to n do\n"
                                     "  t(0) := a(i);\n"
                                     "  b(i) := t(0) + t(0);\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  AnalysisResult R = analyzeProgram(AP);
  const LoopInfo *I = loopNamed(AP, "i");
  EXPECT_TRUE(isPrivatizable(AP, R, "t", I));

  // With privatization t's output/anti deps vanish, so i parallelizes
  // conceptually -- but as-is, the loop still carries t's storage deps.
  std::vector<LoopFacts> Facts = analyzeLoops(AP, R);
  const LoopFacts *F = factsOf(Facts, I);
  ASSERT_NE(F, nullptr);
  EXPECT_FALSE(F->Parallelizable);
}

TEST(Transforms, NotPrivatizableWhenCarried) {
  // t's value crosses iterations: not privatizable.
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := 1 to n do\n"
                                     "  b(i) := t(0) + 1;\n"
                                     "  t(0) := a(i);\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  AnalysisResult R = analyzeProgram(AP);
  EXPECT_FALSE(isPrivatizable(AP, R, "t", loopNamed(AP, "i")));
}

TEST(Transforms, UpwardExposedReadNotPrivatizable) {
  // t is only read: the value comes from outside the loop.
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := 1 to n do\n"
                                     "  b(i) := t(0);\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  AnalysisResult R = analyzeProgram(AP);
  EXPECT_FALSE(isPrivatizable(AP, R, "t", loopNamed(AP, "i")));
}

TEST(Transforms, PartialWriteNotPrivatizable) {
  // The covering write only runs for even i-like subsets... here: the
  // write covers only elements 2..n, the read touches 1..n: some reads
  // get values from the previous iteration's write: not privatizable.
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := 1 to n do\n"
                                     "  for j := 2 to n do\n"
                                     "    t(j) := a(i,j);\n"
                                     "  endfor\n"
                                     "  for j := 1 to n do\n"
                                     "    b(i,j) := t(j);\n"
                                     "  endfor\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  AnalysisResult R = analyzeProgram(AP);
  EXPECT_FALSE(isPrivatizable(AP, R, "t", loopNamed(AP, "i")));
}

TEST(Transforms, FullWritePrivatizable) {
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := 1 to n do\n"
                                     "  for j := 1 to n do\n"
                                     "    t(j) := a(i,j);\n"
                                     "  endfor\n"
                                     "  for j := 1 to n do\n"
                                     "    b(i,j) := t(j);\n"
                                     "  endfor\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  AnalysisResult R = analyzeProgram(AP);
  EXPECT_TRUE(isPrivatizable(AP, R, "t", loopNamed(AP, "i")));
}

//===----------------------------------------------------------------------===//
// Loop distribution.
//===----------------------------------------------------------------------===//

TEST(Transforms, DistributionSplitsIndependentStatements) {
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := 1 to n do\n"
                                     "  a(i) := x(i);\n"
                                     "  b(i) := y(i);\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  AnalysisResult R = analyzeProgram(AP);
  auto Groups = distributeLoop(AP, R, loopNamed(AP, "i"));
  ASSERT_EQ(Groups.size(), 2u);
  EXPECT_FALSE(Groups[0].Cyclic);
  EXPECT_FALSE(Groups[1].Cyclic);
}

TEST(Transforms, DistributionKeepsCyclesTogether) {
  // s1 feeds s2 in the same iteration; s2 feeds s1 in the next: a cycle.
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := 2 to n do\n"
                                     "  a(i) := b(i-1);\n"
                                     "  b(i) := a(i);\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  AnalysisResult R = analyzeProgram(AP);
  auto Groups = distributeLoop(AP, R, loopNamed(AP, "i"));
  ASSERT_EQ(Groups.size(), 1u);
  EXPECT_TRUE(Groups[0].Cyclic);
  EXPECT_EQ(Groups[0].StmtLabels, (std::vector<unsigned>{1, 2}));
}

TEST(Transforms, DistributionOrdersForwardChain) {
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := 2 to n do\n"
                                     "  a(i) := x(i);\n"
                                     "  c(i) := a(i-1);\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  AnalysisResult R = analyzeProgram(AP);
  auto Groups = distributeLoop(AP, R, loopNamed(AP, "i"));
  ASSERT_EQ(Groups.size(), 2u);
  EXPECT_EQ(Groups[0].StmtLabels, (std::vector<unsigned>{1}));
  EXPECT_EQ(Groups[1].StmtLabels, (std::vector<unsigned>{2}));
  EXPECT_FALSE(Groups[0].Cyclic);
}

TEST(Transforms, DistributionReordersBackwardEdge) {
  // The (textually later) producer must come first after distribution.
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := 2 to n do\n"
                                     "  c(i) := b(i-1);\n"
                                     "  b(i) := x(i);\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  AnalysisResult R = analyzeProgram(AP);
  auto Groups = distributeLoop(AP, R, loopNamed(AP, "i"));
  ASSERT_EQ(Groups.size(), 2u);
  EXPECT_EQ(Groups[0].StmtLabels, (std::vector<unsigned>{2})); // b first
  EXPECT_EQ(Groups[1].StmtLabels, (std::vector<unsigned>{1}));
}

TEST(Transforms, DistributionSelfRecurrenceCyclic) {
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := 2 to n do\n"
                                     "  a(i) := a(i-1);\n"
                                     "  b(i) := x(i);\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  AnalysisResult R = analyzeProgram(AP);
  auto Groups = distributeLoop(AP, R, loopNamed(AP, "i"));
  ASSERT_EQ(Groups.size(), 2u);
  unsigned CyclicCount = 0;
  for (const auto &G : Groups)
    CyclicCount += G.Cyclic;
  EXPECT_EQ(CyclicCount, 1u);
}

TEST(Transforms, DistributionIgnoresOuterCarriedEdges) {
  // The t-carried dependence between the two statements orders whole
  // i-iterations; inside i they are independent, so i distributes.
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for t := 1 to 5 do\n"
                                     "  for i := 1 to n do\n"
                                     "    a(i) := b(i);\n"
                                     "    c(i) := d(i);\n"
                                     "  endfor\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  AnalysisResult R = analyzeProgram(AP);
  auto Groups = distributeLoop(AP, R, loopNamed(AP, "i"));
  EXPECT_EQ(Groups.size(), 2u);
}

TEST(Transforms, ReportRenders) {
  AnalyzedProgram AP = analyzeSource(kernels::example3());
  ASSERT_TRUE(AP.ok());
  AnalysisResult R = analyzeProgram(AP);
  std::string Report = transformReport(AP, R);
  EXPECT_NE(Report.find("loop L1"), std::string::npos);
  EXPECT_NE(Report.find("interchange(L1, L2)"), std::string::npos);
}
