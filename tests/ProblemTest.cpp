//===- tests/ProblemTest.cpp ----------------------------------------------===//
//
// Unit tests for the Problem representation and its normalization.
//
//===----------------------------------------------------------------------===//

#include "omega/Problem.h"

#include <gtest/gtest.h>

using namespace omega;

namespace {

Problem makeXY(VarId &X, VarId &Y) {
  Problem P;
  X = P.addVar("x");
  Y = P.addVar("y");
  return P;
}

} // namespace

TEST(Problem, AddVarResizesRows) {
  Problem P;
  VarId X = P.addVar("x");
  P.addGEQ({{X, 1}}, -2);
  VarId Y = P.addVar("y");
  EXPECT_EQ(P.constraints().front().getNumVars(), 2u);
  EXPECT_EQ(P.constraints().front().getCoeff(Y), 0);
}

TEST(Problem, ToStringRendersReadably) {
  VarId X, Y;
  Problem P = makeXY(X, Y);
  P.addGEQ({{X, 1}, {Y, 2}}, -3);
  P.addEQ({{X, 1}, {Y, -1}}, 0);
  EXPECT_EQ(P.toString(), "{ x + 2*y >= 3; x - y = 0 }");
}

TEST(Problem, ToStringEmptyIsTrue) {
  Problem P;
  P.addVar("x");
  EXPECT_EQ(P.toString(), "{ TRUE }");
}

TEST(Problem, NormalizeGcdReducesInequalityTightly) {
  VarId X, Y;
  Problem P = makeXY(X, Y);
  // 2x >= 3  =>  x >= 2 (integer tightening).
  P.addGEQ({{X, 2}}, -3);
  ASSERT_EQ(P.normalize(), Problem::NormalizeResult::Ok);
  ASSERT_EQ(P.getNumConstraints(), 1u);
  const Constraint &Row = P.constraints().front();
  EXPECT_EQ(Row.getCoeff(X), 1);
  EXPECT_EQ(Row.getConstant(), -2);
}

TEST(Problem, NormalizeDetectsUnsatisfiableEquality) {
  VarId X, Y;
  Problem P = makeXY(X, Y);
  // 2x == 3 has no integer solution.
  P.addEQ({{X, 2}}, -3);
  EXPECT_EQ(P.normalize(), Problem::NormalizeResult::False);
}

TEST(Problem, NormalizeDropsTrivialRows) {
  VarId X, Y;
  Problem P = makeXY(X, Y);
  P.addGEQ({}, 5); // 0 >= -5, trivially true
  P.addEQ({}, 0);  // 0 == 0
  ASSERT_EQ(P.normalize(), Problem::NormalizeResult::Ok);
  EXPECT_EQ(P.getNumConstraints(), 0u);
}

TEST(Problem, NormalizeDetectsConstantContradictions) {
  Problem P;
  P.addVar("x");
  P.addGEQ({}, -1); // 0 >= 1
  EXPECT_EQ(P.normalize(), Problem::NormalizeResult::False);

  Problem Q;
  Q.addVar("x");
  Q.addEQ({}, 2); // 0 == -2
  EXPECT_EQ(Q.normalize(), Problem::NormalizeResult::False);
}

TEST(Problem, NormalizeMergesDuplicateInequalities) {
  VarId X, Y;
  Problem P = makeXY(X, Y);
  P.addGEQ({{X, 1}}, -2); // x >= 2
  P.addGEQ({{X, 1}}, -5); // x >= 5 (tighter)
  P.addGEQ({{X, 1}}, 0);  // x >= 0 (looser)
  ASSERT_EQ(P.normalize(), Problem::NormalizeResult::Ok);
  ASSERT_EQ(P.getNumConstraints(), 1u);
  EXPECT_EQ(P.constraints().front().getConstant(), -5);
}

TEST(Problem, NormalizeFormsEqualityFromOpposedPair) {
  VarId X, Y;
  Problem P = makeXY(X, Y);
  P.addGEQ({{X, 1}, {Y, 1}}, -4); // x + y >= 4
  P.addGEQ({{X, -1}, {Y, -1}}, 4); // x + y <= 4
  ASSERT_EQ(P.normalize(), Problem::NormalizeResult::Ok);
  ASSERT_EQ(P.getNumConstraints(), 1u);
  EXPECT_TRUE(P.constraints().front().isEquality());
}

TEST(Problem, NormalizeDetectsOpposedContradiction) {
  VarId X, Y;
  Problem P = makeXY(X, Y);
  P.addGEQ({{X, 1}}, -5); // x >= 5
  P.addGEQ({{X, -1}}, 4); // x <= 4
  EXPECT_EQ(P.normalize(), Problem::NormalizeResult::False);
}

TEST(Problem, NormalizeEqualityAbsorbsImpliedInequality) {
  VarId X, Y;
  Problem P = makeXY(X, Y);
  P.addEQ({{X, 1}}, -3);  // x == 3
  P.addGEQ({{X, 1}}, -1); // x >= 1, implied
  ASSERT_EQ(P.normalize(), Problem::NormalizeResult::Ok);
  ASSERT_EQ(P.getNumConstraints(), 1u);
  EXPECT_TRUE(P.constraints().front().isEquality());
}

TEST(Problem, NormalizeEqualityVsContradictingInequality) {
  VarId X, Y;
  Problem P = makeXY(X, Y);
  P.addEQ({{X, 1}}, -3);  // x == 3
  P.addGEQ({{X, 1}}, -7); // x >= 7
  EXPECT_EQ(P.normalize(), Problem::NormalizeResult::False);
}

TEST(Problem, NormalizeConflictingEqualities) {
  VarId X, Y;
  Problem P = makeXY(X, Y);
  P.addEQ({{X, 1}, {Y, 1}}, -3);
  P.addEQ({{X, 1}, {Y, 1}}, -4);
  EXPECT_EQ(P.normalize(), Problem::NormalizeResult::False);

  // Same equality written with both orientations is consistent.
  Problem Q = makeXY(X, Y);
  Q.addEQ({{X, 1}, {Y, 1}}, -3);
  Q.addEQ({{X, -1}, {Y, -1}}, 3);
  ASSERT_EQ(Q.normalize(), Problem::NormalizeResult::Ok);
  EXPECT_EQ(Q.getNumConstraints(), 1u);
}

TEST(Problem, SubstituteReplacesVariable) {
  VarId X, Y;
  Problem P = makeXY(X, Y);
  P.addGEQ({{X, 2}, {Y, 1}}, -1); // 2x + y >= 1
  // x := y + 3.
  Constraint Def(ConstraintKind::EQ, P.getNumVars());
  Def.setCoeff(Y, 1);
  Def.setConstant(3);
  P.substitute(X, Def);
  ASSERT_EQ(P.getNumConstraints(), 1u);
  const Constraint &Row = P.constraints().front();
  EXPECT_EQ(Row.getCoeff(X), 0);
  EXPECT_EQ(Row.getCoeff(Y), 3);  // 2*1 + 1
  EXPECT_EQ(Row.getConstant(), 5); // 2*3 - 1
  EXPECT_TRUE(P.isDead(X));
}

TEST(Problem, CloneLayoutSharesVariables) {
  VarId X, Y;
  Problem P = makeXY(X, Y);
  P.addGEQ({{X, 1}}, 0);
  Problem Q = P.cloneLayout();
  EXPECT_EQ(Q.getNumVars(), 2u);
  EXPECT_EQ(Q.getNumConstraints(), 0u);
  EXPECT_EQ(Q.getVarName(Y), "y");
}

TEST(Problem, RedFlagSurvivesNormalize) {
  VarId X, Y;
  Problem P = makeXY(X, Y);
  P.addGEQ({{X, 1}}, 0, /*Red=*/true);
  P.addGEQ({{Y, 1}}, 0, /*Red=*/false);
  ASSERT_EQ(P.normalize(), Problem::NormalizeResult::Ok);
  unsigned RedCount = 0;
  for (const Constraint &Row : P.constraints())
    RedCount += Row.isRed();
  EXPECT_EQ(RedCount, 1u);
}

TEST(Problem, RedDuplicateOfBlackBecomesBlack) {
  VarId X, Y;
  Problem P = makeXY(X, Y);
  P.addGEQ({{X, 1}}, -2, /*Red=*/true);  // x >= 2 (red)
  P.addGEQ({{X, 1}}, -2, /*Red=*/false); // x >= 2 (black)
  ASSERT_EQ(P.normalize(), Problem::NormalizeResult::Ok);
  ASSERT_EQ(P.getNumConstraints(), 1u);
  EXPECT_FALSE(P.constraints().front().isRed());
}

TEST(Problem, WildcardsAreUnprotected) {
  Problem P;
  VarId W = P.addWildcard();
  EXPECT_FALSE(P.isProtected(W));
  VarId X = P.addVar("x");
  EXPECT_TRUE(P.isProtected(X));
}
