//===- tests/ProblemTest.cpp ----------------------------------------------===//
//
// Unit tests for the Problem representation and its normalization.
//
//===----------------------------------------------------------------------===//

#include "omega/Problem.h"

#include <gtest/gtest.h>

using namespace omega;

namespace {

Problem makeXY(VarId &X, VarId &Y) {
  Problem P;
  X = P.addVar("x");
  Y = P.addVar("y");
  return P;
}

} // namespace

TEST(Problem, AddVarResizesRows) {
  Problem P;
  VarId X = P.addVar("x");
  P.addGEQ({{X, 1}}, -2);
  VarId Y = P.addVar("y");
  EXPECT_EQ(P.constraints().front().getNumVars(), 2u);
  EXPECT_EQ(P.constraints().front().getCoeff(Y), 0);
}

TEST(Problem, ToStringRendersReadably) {
  VarId X, Y;
  Problem P = makeXY(X, Y);
  P.addGEQ({{X, 1}, {Y, 2}}, -3);
  P.addEQ({{X, 1}, {Y, -1}}, 0);
  EXPECT_EQ(P.toString(), "{ x + 2*y >= 3; x - y = 0 }");
}

TEST(Problem, ToStringEmptyIsTrue) {
  Problem P;
  P.addVar("x");
  EXPECT_EQ(P.toString(), "{ TRUE }");
}

TEST(Problem, NormalizeGcdReducesInequalityTightly) {
  VarId X, Y;
  Problem P = makeXY(X, Y);
  // 2x >= 3  =>  x >= 2 (integer tightening).
  P.addGEQ({{X, 2}}, -3);
  ASSERT_EQ(P.normalize(), Problem::NormalizeResult::Ok);
  ASSERT_EQ(P.getNumConstraints(), 1u);
  const Constraint &Row = P.constraints().front();
  EXPECT_EQ(Row.getCoeff(X), 1);
  EXPECT_EQ(Row.getConstant(), -2);
}

TEST(Problem, NormalizeDetectsUnsatisfiableEquality) {
  VarId X, Y;
  Problem P = makeXY(X, Y);
  // 2x == 3 has no integer solution.
  P.addEQ({{X, 2}}, -3);
  EXPECT_EQ(P.normalize(), Problem::NormalizeResult::False);
}

TEST(Problem, NormalizeDropsTrivialRows) {
  VarId X, Y;
  Problem P = makeXY(X, Y);
  P.addGEQ({}, 5); // 0 >= -5, trivially true
  P.addEQ({}, 0);  // 0 == 0
  ASSERT_EQ(P.normalize(), Problem::NormalizeResult::Ok);
  EXPECT_EQ(P.getNumConstraints(), 0u);
}

TEST(Problem, NormalizeDetectsConstantContradictions) {
  Problem P;
  P.addVar("x");
  P.addGEQ({}, -1); // 0 >= 1
  EXPECT_EQ(P.normalize(), Problem::NormalizeResult::False);

  Problem Q;
  Q.addVar("x");
  Q.addEQ({}, 2); // 0 == -2
  EXPECT_EQ(Q.normalize(), Problem::NormalizeResult::False);
}

TEST(Problem, NormalizeMergesDuplicateInequalities) {
  VarId X, Y;
  Problem P = makeXY(X, Y);
  P.addGEQ({{X, 1}}, -2); // x >= 2
  P.addGEQ({{X, 1}}, -5); // x >= 5 (tighter)
  P.addGEQ({{X, 1}}, 0);  // x >= 0 (looser)
  ASSERT_EQ(P.normalize(), Problem::NormalizeResult::Ok);
  ASSERT_EQ(P.getNumConstraints(), 1u);
  EXPECT_EQ(P.constraints().front().getConstant(), -5);
}

TEST(Problem, NormalizeFormsEqualityFromOpposedPair) {
  VarId X, Y;
  Problem P = makeXY(X, Y);
  P.addGEQ({{X, 1}, {Y, 1}}, -4); // x + y >= 4
  P.addGEQ({{X, -1}, {Y, -1}}, 4); // x + y <= 4
  ASSERT_EQ(P.normalize(), Problem::NormalizeResult::Ok);
  ASSERT_EQ(P.getNumConstraints(), 1u);
  EXPECT_TRUE(P.constraints().front().isEquality());
}

TEST(Problem, NormalizeDetectsOpposedContradiction) {
  VarId X, Y;
  Problem P = makeXY(X, Y);
  P.addGEQ({{X, 1}}, -5); // x >= 5
  P.addGEQ({{X, -1}}, 4); // x <= 4
  EXPECT_EQ(P.normalize(), Problem::NormalizeResult::False);
}

TEST(Problem, NormalizeEqualityAbsorbsImpliedInequality) {
  VarId X, Y;
  Problem P = makeXY(X, Y);
  P.addEQ({{X, 1}}, -3);  // x == 3
  P.addGEQ({{X, 1}}, -1); // x >= 1, implied
  ASSERT_EQ(P.normalize(), Problem::NormalizeResult::Ok);
  ASSERT_EQ(P.getNumConstraints(), 1u);
  EXPECT_TRUE(P.constraints().front().isEquality());
}

TEST(Problem, NormalizeEqualityVsContradictingInequality) {
  VarId X, Y;
  Problem P = makeXY(X, Y);
  P.addEQ({{X, 1}}, -3);  // x == 3
  P.addGEQ({{X, 1}}, -7); // x >= 7
  EXPECT_EQ(P.normalize(), Problem::NormalizeResult::False);
}

TEST(Problem, NormalizeConflictingEqualities) {
  VarId X, Y;
  Problem P = makeXY(X, Y);
  P.addEQ({{X, 1}, {Y, 1}}, -3);
  P.addEQ({{X, 1}, {Y, 1}}, -4);
  EXPECT_EQ(P.normalize(), Problem::NormalizeResult::False);

  // Same equality written with both orientations is consistent.
  Problem Q = makeXY(X, Y);
  Q.addEQ({{X, 1}, {Y, 1}}, -3);
  Q.addEQ({{X, -1}, {Y, -1}}, 3);
  ASSERT_EQ(Q.normalize(), Problem::NormalizeResult::Ok);
  EXPECT_EQ(Q.getNumConstraints(), 1u);
}

TEST(Problem, SubstituteReplacesVariable) {
  VarId X, Y;
  Problem P = makeXY(X, Y);
  P.addGEQ({{X, 2}, {Y, 1}}, -1); // 2x + y >= 1
  // x := y + 3.
  Constraint Def(ConstraintKind::EQ, P.getNumVars());
  Def.setCoeff(Y, 1);
  Def.setConstant(3);
  P.substitute(X, Def);
  ASSERT_EQ(P.getNumConstraints(), 1u);
  const Constraint &Row = P.constraints().front();
  EXPECT_EQ(Row.getCoeff(X), 0);
  EXPECT_EQ(Row.getCoeff(Y), 3);  // 2*1 + 1
  EXPECT_EQ(Row.getConstant(), 5); // 2*3 - 1
  EXPECT_TRUE(P.isDead(X));
}

TEST(Problem, CloneLayoutSharesVariables) {
  VarId X, Y;
  Problem P = makeXY(X, Y);
  P.addGEQ({{X, 1}}, 0);
  Problem Q = P.cloneLayout();
  EXPECT_EQ(Q.getNumVars(), 2u);
  EXPECT_EQ(Q.getNumConstraints(), 0u);
  EXPECT_EQ(Q.getVarName(Y), "y");
}

TEST(Problem, RedFlagSurvivesNormalize) {
  VarId X, Y;
  Problem P = makeXY(X, Y);
  P.addGEQ({{X, 1}}, 0, /*Red=*/true);
  P.addGEQ({{Y, 1}}, 0, /*Red=*/false);
  ASSERT_EQ(P.normalize(), Problem::NormalizeResult::Ok);
  unsigned RedCount = 0;
  for (const Constraint &Row : P.constraints())
    RedCount += Row.isRed();
  EXPECT_EQ(RedCount, 1u);
}

TEST(Problem, RedDuplicateOfBlackBecomesBlack) {
  VarId X, Y;
  Problem P = makeXY(X, Y);
  P.addGEQ({{X, 1}}, -2, /*Red=*/true);  // x >= 2 (red)
  P.addGEQ({{X, 1}}, -2, /*Red=*/false); // x >= 2 (black)
  ASSERT_EQ(P.normalize(), Problem::NormalizeResult::Ok);
  ASSERT_EQ(P.getNumConstraints(), 1u);
  EXPECT_FALSE(P.constraints().front().isRed());
}

TEST(Problem, WildcardsAreUnprotected) {
  Problem P;
  VarId W = P.addWildcard();
  EXPECT_FALSE(P.isProtected(W));
  VarId X = P.addVar("x");
  EXPECT_TRUE(P.isProtected(X));
}

//===----------------------------------------------------------------------===//
// Hashed normalize vs the retained reference implementation
//===----------------------------------------------------------------------===//

namespace {

/// Runs normalize() on one copy and normalizeReference() on another and
/// requires bit-identical results: same verdict, same rows, same order,
/// same kinds and red tags.
void expectNormalizeMatchesReference(const Problem &P) {
  Problem Hashed = P;
  Problem Ref = P;
  Problem::NormalizeResult HR = Hashed.normalize();
  Problem::NormalizeResult RR = Ref.normalizeReference();
  ASSERT_EQ(HR, RR) << "verdicts diverge for " << P.toString();
  if (HR != Problem::NormalizeResult::Ok)
    return;
  ASSERT_EQ(Hashed.getNumConstraints(), Ref.getNumConstraints())
      << "row counts diverge for " << P.toString();
  for (unsigned I = 0, E = Hashed.getNumConstraints(); I != E; ++I) {
    const Constraint &A = Hashed.constraints()[I];
    const Constraint &B = Ref.constraints()[I];
    EXPECT_EQ(A.getKind(), B.getKind()) << "row " << I;
    EXPECT_EQ(A.isRed(), B.isRed()) << "row " << I;
    EXPECT_TRUE(A.sameForm(B))
        << "row " << I << ": " << Hashed.constraintToString(A) << " vs "
        << Ref.constraintToString(B);
  }
  EXPECT_EQ(Hashed.toString(), Ref.toString());
}

} // namespace

TEST(NormalizeDifferential, DuplicatesKeepTightestConstant) {
  VarId X, Y;
  Problem P = makeXY(X, Y);
  P.addGEQ({{X, 1}, {Y, -2}}, -2);
  P.addGEQ({{X, 1}, {Y, -2}}, -7); // tighter duplicate
  P.addGEQ({{X, 1}, {Y, -2}}, 3);  // looser duplicate
  P.addGEQ({{X, -1}, {Y, 2}}, 9);  // opposite orientation, distinct bucket
  expectNormalizeMatchesReference(P);
}

TEST(NormalizeDifferential, OpposedPairsBecomeEqualities) {
  VarId X, Y;
  Problem P = makeXY(X, Y);
  P.addGEQ({{X, 2}, {Y, 3}}, -6); // 2x + 3y >= 6
  P.addGEQ({{X, -2}, {Y, -3}}, 6); // 2x + 3y <= 6
  P.addGEQ({{Y, 1}}, 0);
  expectNormalizeMatchesReference(P);
}

TEST(NormalizeDifferential, EqualityAbsorbsImpliedInequalities) {
  VarId X, Y;
  Problem P = makeXY(X, Y);
  P.addEQ({{X, 1}, {Y, 1}}, -5);
  P.addGEQ({{X, 1}, {Y, 1}}, -3); // implied by the equality
  P.addGEQ({{X, -1}, {Y, -1}}, 8); // also implied
  expectNormalizeMatchesReference(P);
}

TEST(NormalizeDifferential, ManyBucketsEmitInReferenceOrder) {
  // Enough distinct buckets that the hashed path's sort actually has to
  // reproduce the ordered map's lexicographic emission order.
  Problem P;
  VarId V[4];
  for (int I = 0; I != 4; ++I)
    V[I] = P.addVar("v" + std::to_string(I));
  for (int A = -2; A <= 2; ++A)
    for (int B = -2; B <= 2; ++B) {
      if (A == 0 && B == 0)
        continue;
      P.addGEQ({{V[0], A}, {V[1], B}, {V[2], A - B}}, A + 3 * B);
      P.addGEQ({{V[3], B}, {V[1], -A}}, B - A, /*Red=*/(A + B) % 2 == 0);
    }
  expectNormalizeMatchesReference(P);
}

TEST(NormalizeDifferential, GcdReductionAndContradictions) {
  VarId X, Y;
  Problem P = makeXY(X, Y);
  P.addGEQ({{X, 4}, {Y, 6}}, -7); // gcd 2, tightens
  P.addGEQ({{X, -2}, {Y, -3}}, 2);
  expectNormalizeMatchesReference(P);

  Problem Q = makeXY(X, Y);
  Q.addGEQ({{X, 1}}, -5);
  Q.addGEQ({{X, -1}}, 4); // contradiction
  expectNormalizeMatchesReference(Q);
}

//===----------------------------------------------------------------------===//
// Dead-column compaction
//===----------------------------------------------------------------------===//

TEST(Problem, CompactDeadColumnsDropsOnlyDeadUninvolved) {
  Problem P;
  VarId X = P.addVar("x");
  VarId W1 = P.addWildcard();
  VarId W2 = P.addWildcard();
  P.addGEQ({{X, 1}, {W2, 2}}, 0);
  P.markDead(W1); // dead and uninvolved: compactable
  P.markDead(W2); // dead but still involved: must stay

  std::vector<int> Remap;
  EXPECT_EQ(P.compactDeadColumns(0, &Remap), 1u);
  EXPECT_EQ(P.getNumVars(), 2u);
  EXPECT_EQ(Remap[X], 0);
  EXPECT_EQ(Remap[W1], -1);
  EXPECT_EQ(Remap[W2], 1);
  // The surviving row kept its coefficients under the new numbering.
  EXPECT_EQ(P.constraints().front().getCoeff(0), 1);
  EXPECT_EQ(P.constraints().front().getCoeff(1), 2);
  EXPECT_EQ(P.getVarName(0), "x");
}

TEST(Problem, CompactDeadColumnsHonorsKeepBelow) {
  Problem P;
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  P.markDead(X); // dead and uninvolved, but below KeepBelow
  VarId W = P.addWildcard();
  P.markDead(W);
  P.addGEQ({{Y, 1}}, 0);

  EXPECT_EQ(P.compactDeadColumns(/*KeepBelow=*/2), 1u);
  EXPECT_EQ(P.getNumVars(), 2u); // x retained, wildcard dropped
  EXPECT_EQ(P.getVarName(0), "x");
  EXPECT_EQ(P.getVarName(1), "y");
}

TEST(Problem, CompactDeadColumnsNoOpReturnsZero) {
  Problem P;
  VarId X = P.addVar("x");
  P.addGEQ({{X, 1}}, 0);
  std::vector<int> Remap;
  EXPECT_EQ(P.compactDeadColumns(0, &Remap), 0u);
  EXPECT_EQ(P.getNumVars(), 1u);
  ASSERT_EQ(Remap.size(), 1u);
  EXPECT_EQ(Remap[0], 0);
}
