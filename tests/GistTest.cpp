//===- tests/GistTest.cpp -------------------------------------------------===//
//
// Unit and property tests for gist computation and implication checks
// (Section 3.3 of the paper).
//
//===----------------------------------------------------------------------===//

#include "omega/Gist.h"

#include "omega/Projection.h"
#include "omega/Satisfiability.h"
#include "TestUtils.h"

#include <gtest/gtest.h>

using namespace omega;
using namespace omega::testutil;

namespace {

/// Shared two-variable layout for p and q.
struct Space {
  Problem Layout;
  VarId X, Y;
  Space() {
    X = Layout.addVar("x");
    Y = Layout.addVar("y");
  }
  Problem fresh() const { return Layout.cloneLayout(); }
};

} // namespace

TEST(Gist, TrueWhenImplied) {
  Space S;
  Problem P = S.fresh();
  P.addGEQ({{S.X, 1}}, 0); // x >= 0
  Problem Q = S.fresh();
  Q.addGEQ({{S.X, 1}}, -5); // x >= 5
  Problem G = gist(P, Q);
  EXPECT_EQ(G.getNumConstraints(), 0u) << G.toString();
  EXPECT_TRUE(implies(Q, P));
}

TEST(Gist, KeepsNewInformation) {
  Space S;
  Problem P = S.fresh();
  P.addGEQ({{S.X, 1}}, -5); // x >= 5
  Problem Q = S.fresh();
  Q.addGEQ({{S.X, 1}}, 0); // x >= 0
  Problem G = gist(P, Q);
  ASSERT_EQ(G.getNumConstraints(), 1u);
  EXPECT_EQ(G.toString(), "{ x >= 5 }");
  EXPECT_FALSE(implies(Q, P));
}

TEST(Gist, DropsOnlyRedundantParts) {
  Space S;
  Problem P = S.fresh();
  P.addGEQ({{S.X, 1}}, 0);  // x >= 0 (implied by q)
  P.addGEQ({{S.Y, -1}}, 9); // y <= 9 (new)
  Problem Q = S.fresh();
  Q.addGEQ({{S.X, 1}}, -3); // x >= 3
  Problem G = gist(P, Q);
  ASSERT_EQ(G.getNumConstraints(), 1u);
  EXPECT_EQ(G.toString(), "{ -y >= -9 }");
}

TEST(Gist, EqualitySplitAndRemerged) {
  Space S;
  Problem P = S.fresh();
  P.addEQ({{S.X, 1}, {S.Y, -1}}, 0); // x == y
  Problem Q = S.fresh();
  Q.addGEQ({{S.X, 1}, {S.Y, -1}}, 0); // x >= y
  Problem G = gist(P, Q);
  // Only the half "x <= y" is new; together with q it restores x == y.
  ASSERT_EQ(G.getNumConstraints(), 1u);
  EXPECT_TRUE(G.constraints().front().isInequality());

  Problem Check = Q;
  for (const Constraint &Row : G.constraints())
    Check.addConstraint(Row);
  ASSERT_EQ(Check.normalize(), Problem::NormalizeResult::Ok);
  EXPECT_EQ(Check.getNumEQs(), 1u);
}

TEST(Gist, InconsistentCombinationIsFalse) {
  Space S;
  Problem P = S.fresh();
  P.addGEQ({{S.X, 1}}, -5); // x >= 5
  Problem Q = S.fresh();
  Q.addGEQ({{S.X, -1}}, 2); // x <= 2
  Problem G = gist(P, Q);
  // p && q is unsatisfiable: the gist is False.
  EXPECT_FALSE(isSatisfiable(G));
}

TEST(Gist, PairImpliedConstraintDropped) {
  Space S;
  Problem P = S.fresh();
  P.addGEQ({{S.X, 1}, {S.Y, 1}}, -2); // x + y >= 2: implied by pair below
  Problem Q = S.fresh();
  Q.addGEQ({{S.X, 1}}, -1); // x >= 1
  Q.addGEQ({{S.Y, 1}}, -1); // y >= 1
  Problem G = gist(P, Q);
  EXPECT_EQ(G.getNumConstraints(), 0u) << G.toString();
}

TEST(Gist, FastChecksMatchNaive) {
  // The fast checks are an optimization only: results must agree.
  std::mt19937 Rng(77);
  RandomProblemConfig Cfg;
  Cfg.NumVars = 2;
  Cfg.NumEQs = 0;
  Cfg.NumGEQs = 3;
  for (unsigned T = 0; T != 100; ++T) {
    Problem P = randomProblem(Rng, Cfg);
    Problem Q = P.cloneLayout();
    // Reuse half of P's rows as q, the rest as p.
    Problem PPart = P.cloneLayout();
    unsigned I = 0;
    for (const Constraint &Row : P.constraints())
      ((I++ % 2) ? Q : PPart).addConstraint(Row);

    GistOptions Fast, Slow;
    Slow.UseFastChecks = false;
    Problem GFast = gist(PPart, Q, Fast);
    Problem GSlow = gist(PPart, Q, Slow);
    // Both must satisfy the gist equation; sizes may differ only if both
    // are minimal in different ways, so compare semantics, not syntax.
    for (int64_t X = -8; X <= 8; ++X)
      for (int64_t Y = -8; Y <= 8; ++Y) {
        std::vector<int64_t> Pt = {X, Y};
        bool QV = evalProblem(Q, Pt);
        if (!QV)
          continue;
        EXPECT_EQ(evalProblem(GFast, Pt), evalProblem(PPart, Pt))
            << "fast gist broke the gist equation";
        EXPECT_EQ(evalProblem(GSlow, Pt), evalProblem(PPart, Pt))
            << "naive gist broke the gist equation";
      }
  }
}

TEST(Implies, BasicDirections) {
  Space S;
  Problem Narrow = S.fresh();
  Narrow.addGEQ({{S.X, 1}}, -2);
  Narrow.addGEQ({{S.X, -1}}, 4); // 2 <= x <= 4
  Problem Wide = S.fresh();
  Wide.addGEQ({{S.X, 1}}, 0);
  Wide.addGEQ({{S.X, -1}}, 10); // 0 <= x <= 10
  EXPECT_TRUE(implies(Narrow, Wide));
  EXPECT_FALSE(implies(Wide, Narrow));
}

TEST(Implies, WithEqualityOnRight) {
  Space S;
  Problem Q = S.fresh();
  Q.addGEQ({{S.X, 1}, {S.Y, -1}}, 0);  // x >= y
  Q.addGEQ({{S.X, -1}, {S.Y, 1}}, 0);  // x <= y
  Problem P = S.fresh();
  P.addEQ({{S.X, 1}, {S.Y, -1}}, 0);   // x == y
  EXPECT_TRUE(implies(Q, P));
}

TEST(Implies, UnsatisfiableLeftImpliesAnything) {
  Space S;
  Problem Q = S.fresh();
  Q.addGEQ({{S.X, 1}}, -5);
  Q.addGEQ({{S.X, -1}}, 2); // empty
  Problem P = S.fresh();
  P.addEQ({{S.Y, 1}}, -77);
  EXPECT_TRUE(implies(Q, P));
}

TEST(Implies, IntegerReasoningRequired) {
  Space S;
  // q: x == 2y (x even). p: x != 1 is not expressible; instead check
  // q => {0 <= x - 2y <= 0} trivially and a parity-sensitive case:
  // q2: 2 <= 2y <= 4 implies 1 <= y <= 2.
  Problem Q = S.fresh();
  Q.addGEQ({{S.Y, 2}}, -2);
  Q.addGEQ({{S.Y, -2}}, 4);
  Problem P = S.fresh();
  P.addGEQ({{S.Y, 1}}, -1);
  P.addGEQ({{S.Y, -1}}, 2);
  EXPECT_TRUE(implies(Q, P));
}

TEST(ImpliesUnion, CoversByCases) {
  Space S;
  // p: 0 <= x <= 5. q1: x <= 2. q2: x >= 3. Union covers p.
  Problem P = S.fresh();
  P.addGEQ({{S.X, 1}}, 0);
  P.addGEQ({{S.X, -1}}, 5);
  Problem Q1 = S.fresh();
  Q1.addGEQ({{S.X, -1}}, 2);
  Problem Q2 = S.fresh();
  Q2.addGEQ({{S.X, 1}}, -3);
  EXPECT_TRUE(impliesUnion(P, {Q1, Q2}));
  // Neither disjunct alone suffices.
  EXPECT_FALSE(impliesUnion(P, {Q1}));
  EXPECT_FALSE(impliesUnion(P, {Q2}));
}

TEST(ImpliesUnion, GapBreaksCover) {
  Space S;
  Problem P = S.fresh();
  P.addGEQ({{S.X, 1}}, 0);
  P.addGEQ({{S.X, -1}}, 5);
  Problem Q1 = S.fresh();
  Q1.addGEQ({{S.X, -1}}, 1); // x <= 1
  Problem Q2 = S.fresh();
  Q2.addGEQ({{S.X, 1}}, -3); // x >= 3; x == 2 uncovered
  EXPECT_FALSE(impliesUnion(P, {Q1, Q2}));
}

TEST(ImpliesUnion, EmptyUnionOnlyFromFalse) {
  Space S;
  Problem P = S.fresh();
  P.addGEQ({{S.X, 1}}, 0);
  EXPECT_FALSE(impliesUnion(P, {}));
  Problem Empty = S.fresh();
  Empty.addGEQ({}, -1); // 0 >= 1
  EXPECT_TRUE(impliesUnion(Empty, {}));
}

TEST(ImpliesUnion, EqualityDisjuncts) {
  Space S;
  // p: 1 <= x <= 2 implies (x == 1 or x == 2).
  Problem P = S.fresh();
  P.addGEQ({{S.X, 1}}, -1);
  P.addGEQ({{S.X, -1}}, 2);
  Problem Q1 = S.fresh();
  Q1.addEQ({{S.X, 1}}, -1);
  Problem Q2 = S.fresh();
  Q2.addEQ({{S.X, 1}}, -2);
  EXPECT_TRUE(impliesUnion(P, {Q1, Q2}));
}

TEST(ProjectAndGist, CombinedRedBlack) {
  // Red: 1 <= x <= 10 && y == x. Black: 3 <= x && exists y' context.
  // After projecting y away, the red news relative to black x >= 3 is
  // x >= 1 dropped, x <= 10 kept.
  Problem C;
  VarId X = C.addVar("x");
  VarId Y = C.addVar("y");
  C.addGEQ({{X, 1}}, -1, /*Red=*/true);
  C.addGEQ({{X, -1}}, 10, /*Red=*/true);
  C.addEQ({{Y, 1}, {X, -1}}, 0, /*Red=*/true);
  C.addGEQ({{X, 1}}, -3, /*Red=*/false);

  std::vector<bool> Keep(C.getNumVars(), false);
  Keep[X] = true;
  RedGistResult R = projectAndGist(C, Keep);
  EXPECT_TRUE(R.Exact);
  EXPECT_EQ(R.Gist.toString(), "{ [red] -x >= -10 }");
}

//===----------------------------------------------------------------------===//
// Property test: the defining equation (gist p given q) && q == p && q.
//===----------------------------------------------------------------------===//

namespace {

struct GistPropertyParam {
  RandomProblemConfig Cfg;
  unsigned Trials;
  unsigned Seed;
};

class GistProperty : public ::testing::TestWithParam<GistPropertyParam> {};

} // namespace

TEST_P(GistProperty, GistEquationHolds) {
  const GistPropertyParam &Param = GetParam();
  std::mt19937 Rng(Param.Seed);
  for (unsigned T = 0; T != Param.Trials; ++T) {
    Problem P = randomProblem(Rng, Param.Cfg);
    Problem Q = randomProblem(Rng, Param.Cfg);
    // Rebuild q in p's layout (randomProblem uses fresh layouts of the
    // same shape, so rows carry over directly).
    Problem QShared = P.cloneLayout();
    for (const Constraint &Row : Q.constraints())
      QShared.addConstraint(Row);

    Problem G = gist(P, QShared);

    std::vector<VarId> Vars;
    for (VarId V = 0; V != static_cast<VarId>(Param.Cfg.NumVars); ++V)
      Vars.push_back(V);
    bool Failed = forEachPoint(
        P.getNumVars(), Vars, -Param.Cfg.Box, Param.Cfg.Box,
        [&](const std::vector<int64_t> &Pt) {
          if (!evalProblem(QShared, Pt))
            return false;
          if (evalProblem(G, Pt) != evalProblem(P, Pt)) {
            ADD_FAILURE() << "gist equation violated at trial " << T
                          << "\n p = " << P.toString()
                          << "\n q = " << QShared.toString()
                          << "\n g = " << G.toString();
            return true;
          }
          return false;
        });
    if (Failed)
      return;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomBoxes, GistProperty,
    ::testing::Values(
        GistPropertyParam{{/*NumVars=*/2, /*NumEQs=*/0, /*NumGEQs=*/3,
                           /*CoeffRange=*/3, /*ConstRange=*/8, /*Box=*/6},
                          100, 31},
        GistPropertyParam{{/*NumVars=*/2, /*NumEQs=*/1, /*NumGEQs=*/2,
                           /*CoeffRange=*/3, /*ConstRange=*/6, /*Box=*/5},
                          100, 32},
        GistPropertyParam{{/*NumVars=*/3, /*NumEQs=*/1, /*NumGEQs=*/3,
                           /*CoeffRange=*/2, /*ConstRange=*/6, /*Box=*/4},
                          60, 33}));

namespace {

class ImpliesProperty : public ::testing::TestWithParam<GistPropertyParam> {};

} // namespace

TEST_P(ImpliesProperty, AgreesWithBruteForce) {
  const GistPropertyParam &Param = GetParam();
  std::mt19937 Rng(Param.Seed);
  for (unsigned T = 0; T != Param.Trials; ++T) {
    Problem Q = randomProblem(Rng, Param.Cfg);
    Problem P0 = randomProblem(Rng, Param.Cfg);
    Problem P = Q.cloneLayout();
    // Use a weaker p half the time so both outcomes occur.
    unsigned I = 0;
    for (const Constraint &Row : P0.constraints())
      if (T % 2 == 0 || (I++ % 2) == 0)
        P.addConstraint(Row);

    bool Actual = implies(Q, P);

    std::vector<VarId> Vars;
    for (VarId V = 0; V != static_cast<VarId>(Param.Cfg.NumVars); ++V)
      Vars.push_back(V);
    bool Counterexample = forEachPoint(
        Q.getNumVars(), Vars, -Param.Cfg.Box, Param.Cfg.Box,
        [&](const std::vector<int64_t> &Pt) {
          return evalProblem(Q, Pt) && !evalProblem(P, Pt);
        });
    ASSERT_EQ(Actual, !Counterexample)
        << "trial " << T << "\n q = " << Q.toString()
        << "\n p = " << P.toString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomBoxes, ImpliesProperty,
    ::testing::Values(
        GistPropertyParam{{/*NumVars=*/2, /*NumEQs=*/0, /*NumGEQs=*/3,
                           /*CoeffRange=*/3, /*ConstRange=*/8, /*Box=*/6},
                          100, 41},
        GistPropertyParam{{/*NumVars=*/3, /*NumEQs=*/1, /*NumGEQs=*/2,
                           /*CoeffRange=*/2, /*ConstRange=*/6, /*Box=*/4},
                          60, 42}));
