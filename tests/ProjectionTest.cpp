//===- tests/ProjectionTest.cpp -------------------------------------------===//
//
// Unit and property tests for exact integer projection.
//
//===----------------------------------------------------------------------===//

#include "omega/Projection.h"

#include "omega/Satisfiability.h"
#include "TestUtils.h"

#include <gtest/gtest.h>

using namespace omega;
using namespace omega::testutil;

namespace {

/// Membership of a partial point (over kept variables) in a projected
/// piece: pin the kept variables and ask for satisfiability (stride
/// wildcards remain existential).
bool pieceContains(const Problem &Piece, const std::vector<VarId> &Kept,
                   const std::vector<int64_t> &Point) {
  Problem Pinned = Piece;
  for (VarId V : Kept)
    Pinned.addEQ({{V, 1}}, -Point[V]);
  return isSatisfiable(std::move(Pinned));
}

bool unionContains(const ProjectionResult &R, const std::vector<VarId> &Kept,
                   const std::vector<int64_t> &Point) {
  for (const Problem &Piece : R.Pieces)
    if (pieceContains(Piece, Kept, Point))
      return true;
  return false;
}

} // namespace

TEST(Projection, PaperSectionThreeExample) {
  // Projecting {0 <= a <= 5; b < a <= 5b} onto a gives {2 <= a <= 5}.
  Problem P;
  VarId A = P.addVar("a");
  VarId B = P.addVar("b");
  P.addGEQ({{A, 1}}, 0);
  P.addGEQ({{A, -1}}, 5);
  P.addGEQ({{A, 1}, {B, -1}}, -1); // a >= b + 1
  P.addGEQ({{A, -1}, {B, 5}}, 0);  // a <= 5b

  ProjectionResult R = projectOnto(P, {A});
  ASSERT_EQ(R.Pieces.size(), 1u);
  const Problem &Piece = R.Pieces.front();
  EXPECT_EQ(Piece.toString(), "{ a >= 2; -a >= -5 }");
}

TEST(Projection, UnconstrainedVariableDrops) {
  Problem P;
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  P.addGEQ({{X, 1}}, 0);
  ProjectionResult R = projectOnto(P, {X});
  ASSERT_EQ(R.Pieces.size(), 1u);
  EXPECT_FALSE(R.Pieces.front().involves(Y));
  EXPECT_TRUE(R.ApproxIsExact);
}

TEST(Projection, EmptyProjectionOfInfeasible) {
  Problem P;
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  P.addGEQ({{Y, 1}}, -3); // y >= 3
  P.addGEQ({{Y, -1}}, 1); // y <= 1
  (void)X;
  ProjectionResult R = projectOnto(P, {X});
  EXPECT_TRUE(R.isEmpty());
}

TEST(Projection, StrideSurvivesAsWildcardEquality) {
  // project {x == 2y} onto x: x must be even.
  Problem P;
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  P.addEQ({{X, 1}, {Y, -2}}, 0);
  ProjectionResult R = projectOnto(P, {X});
  ASSERT_EQ(R.Pieces.size(), 1u);
  const Problem &Piece = R.Pieces.front();
  EXPECT_EQ(Piece.getNumEQs(), 1u);
  EXPECT_TRUE(pieceContains(Piece, {X}, {2, 0}));
  EXPECT_TRUE(pieceContains(Piece, {X}, {-4, 0}));
  EXPECT_FALSE(pieceContains(Piece, {X}, {3, 0}));
}

TEST(Projection, StrideWithCoupledInequality) {
  // project {2x + 3y == 0, y >= 0} onto x: x <= 0 and x == 0 (mod 3).
  Problem P;
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  P.addEQ({{X, 2}, {Y, 3}}, 0);
  P.addGEQ({{Y, 1}}, 0);
  ProjectionResult R = projectOnto(P, {X});
  ASSERT_FALSE(R.isEmpty());
  for (int64_t V = -12; V <= 12; ++V) {
    bool Expected = V <= 0 && V % 3 == 0;
    EXPECT_EQ(unionContains(R, {X}, {V, 0}), Expected) << "x = " << V;
  }
}

TEST(Projection, SplinteringExample) {
  // project {1 <= x, 5 <= 3y - x <= 7} onto ... eliminate y:
  // 3y in [x+5, x+7]; an integer y exists iff the window [x+5, x+7]
  // contains a multiple of 3, which is always true (window width 3). So
  // the projection onto x is just {x >= 1}.
  Problem P;
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  P.addGEQ({{X, 1}}, -1);
  P.addGEQ({{Y, 3}, {X, -1}}, -5);
  P.addGEQ({{Y, -3}, {X, 1}}, 7);
  ProjectionResult R = projectOnto(P, {X});
  for (int64_t V = -3; V <= 10; ++V)
    EXPECT_EQ(unionContains(R, {X}, {V, 0}), V >= 1) << "x = " << V;
}

TEST(Projection, SplinteringNarrowWindow) {
  // 3y in [x+5, x+6]: a multiple of 3 exists iff x == 0 or 1 (mod 3).
  Problem P;
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  P.addGEQ({{Y, 3}, {X, -1}}, -5);
  P.addGEQ({{Y, -3}, {X, 1}}, 6);
  ProjectionResult R = projectOnto(P, {X});
  EXPECT_FALSE(R.ApproxIsExact);
  for (int64_t V = -9; V <= 9; ++V) {
    bool Expected = ((V % 3) + 3) % 3 != 2;
    EXPECT_EQ(unionContains(R, {X}, {V, 0}), Expected) << "x = " << V;
  }
}

TEST(Projection, ComputeVarRangeSimple) {
  Problem P;
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  P.addGEQ({{X, 1}, {Y, -1}}, 0);  // x >= y
  P.addGEQ({{Y, 1}}, -2);          // y >= 2
  P.addGEQ({{X, -1}}, 9);          // x <= 9
  IntRange RX = computeVarRange(P, X);
  EXPECT_TRUE(RX.HasMin);
  EXPECT_TRUE(RX.HasMax);
  EXPECT_EQ(RX.Min, 2);
  EXPECT_EQ(RX.Max, 9);

  IntRange RY = computeVarRange(P, Y);
  EXPECT_EQ(RY.Min, 2);
  EXPECT_EQ(RY.Max, 9);
}

TEST(Projection, ComputeVarRangeOpenEnds) {
  Problem P;
  VarId X = P.addVar("x");
  P.addGEQ({{X, 1}}, -4); // x >= 4
  IntRange R = computeVarRange(P, X);
  EXPECT_TRUE(R.HasMin);
  EXPECT_FALSE(R.HasMax);
  EXPECT_EQ(R.Min, 4);
  EXPECT_EQ(R.toString(), "[4, +inf]");
}

TEST(Projection, ComputeVarRangeEmpty) {
  Problem P;
  VarId X = P.addVar("x");
  P.addGEQ({{X, 1}}, -4);
  P.addGEQ({{X, -1}}, 2);
  IntRange R = computeVarRange(P, X);
  EXPECT_TRUE(R.Empty);
}

TEST(Projection, RemoveRedundantConstraints) {
  Problem P;
  VarId X = P.addVar("x");
  P.addGEQ({{X, 1}}, -2); // x >= 2
  P.addGEQ({{X, 1}}, 0);  // x >= 0, redundant
  // normalize would also catch that; make a multi-variable case instead.
  VarId Y = P.addVar("y");
  P.addGEQ({{Y, 1}}, -1);          // y >= 1
  P.addGEQ({{X, 1}, {Y, 1}}, -2);  // x + y >= 2, implied by x>=2, y>=1
  removeRedundantConstraints(P);
  EXPECT_EQ(P.getNumConstraints(), 2u);
}

//===----------------------------------------------------------------------===//
// Property tests: a point is in the projection iff the original problem has
// an extension, and the union of pieces is contained in the approximation.
//===----------------------------------------------------------------------===//

namespace {

struct ProjPropertyParam {
  RandomProblemConfig Cfg;
  unsigned KeepCount;
  unsigned Trials;
  unsigned Seed;
};

class ProjectionProperty : public ::testing::TestWithParam<ProjPropertyParam> {
};

} // namespace

TEST_P(ProjectionProperty, MatchesBruteForce) {
  const ProjPropertyParam &Param = GetParam();
  std::mt19937 Rng(Param.Seed);
  for (unsigned T = 0; T != Param.Trials; ++T) {
    Problem P = randomProblem(Rng, Param.Cfg);
    std::vector<VarId> Kept, Dropped;
    for (VarId V = 0; V != static_cast<VarId>(Param.Cfg.NumVars); ++V)
      (static_cast<unsigned>(V) < Param.KeepCount ? Kept : Dropped)
          .push_back(V);

    ProjectionResult R = projectOnto(P, Kept);

    // For every point over the kept variables within the box, membership
    // in the union of pieces must equal existence of an extension, and
    // membership must imply membership in the approximation.
    bool OK = true;
    forEachPoint(P.getNumVars(), Kept, -Param.Cfg.Box, Param.Cfg.Box,
                 [&](const std::vector<int64_t> &Point) {
                   bool Expected = forEachPointFrom(
                       Point, Dropped, -Param.Cfg.Box, Param.Cfg.Box,
                       [&](const std::vector<int64_t> &Full) {
                         return evalProblem(P, Full);
                       });
                   bool Actual = unionContains(R, Kept, Point);
                   if (Actual != Expected) {
                     ADD_FAILURE()
                         << "projection mismatch at trial " << T << " for "
                         << P.toString();
                     OK = false;
                     return true;
                   }
                   if (Actual && !pieceContains(R.Approx, Kept, Point)) {
                     ADD_FAILURE() << "approximation not a superset, trial "
                                   << T << " for " << P.toString();
                     OK = false;
                     return true;
                   }
                   return false;
                 });
    if (!OK)
      return;
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomBoxes, ProjectionProperty,
    ::testing::Values(
        ProjPropertyParam{{/*NumVars=*/2, /*NumEQs=*/0, /*NumGEQs=*/3,
                           /*CoeffRange=*/4, /*ConstRange=*/8, /*Box=*/5},
                          /*KeepCount=*/1, 60, 11},
        ProjPropertyParam{{/*NumVars=*/2, /*NumEQs=*/1, /*NumGEQs=*/2,
                           /*CoeffRange=*/3, /*ConstRange=*/6, /*Box=*/5},
                          /*KeepCount=*/1, 60, 12},
        ProjPropertyParam{{/*NumVars=*/3, /*NumEQs=*/0, /*NumGEQs=*/4,
                           /*CoeffRange=*/3, /*ConstRange=*/6, /*Box=*/4},
                          /*KeepCount=*/1, 40, 13},
        ProjPropertyParam{{/*NumVars=*/3, /*NumEQs=*/1, /*NumGEQs=*/3,
                           /*CoeffRange=*/2, /*ConstRange=*/6, /*Box=*/4},
                          /*KeepCount=*/2, 40, 14},
        ProjPropertyParam{{/*NumVars=*/4, /*NumEQs=*/1, /*NumGEQs=*/3,
                           /*CoeffRange=*/2, /*ConstRange=*/5, /*Box=*/3},
                          /*KeepCount=*/2, 25, 15}));

namespace {

class VarRangeProperty : public ::testing::TestWithParam<ProjPropertyParam> {};

} // namespace

TEST_P(VarRangeProperty, RangeMatchesBruteForce) {
  const ProjPropertyParam &Param = GetParam();
  std::mt19937 Rng(Param.Seed + 1000);
  for (unsigned T = 0; T != Param.Trials; ++T) {
    Problem P = randomProblem(Rng, Param.Cfg);
    std::vector<VarId> All;
    for (VarId V = 0; V != static_cast<VarId>(Param.Cfg.NumVars); ++V)
      All.push_back(V);

    VarId Target = 0;
    IntRange R = computeVarRange(P, Target);

    bool Any = false;
    int64_t Min = 0, Max = 0;
    forEachPoint(P.getNumVars(), All, -Param.Cfg.Box, Param.Cfg.Box,
                 [&](const std::vector<int64_t> &Pt) {
                   if (!evalProblem(P, Pt))
                     return false;
                   if (!Any) {
                     Min = Max = Pt[Target];
                     Any = true;
                   } else {
                     Min = std::min(Min, Pt[Target]);
                     Max = std::max(Max, Pt[Target]);
                   }
                   return false;
                 });

    ASSERT_EQ(!R.Empty, Any) << "trial " << T << ": " << P.toString();
    if (!Any)
      continue;
    // The generated problems box every variable, so both ends are closed.
    ASSERT_TRUE(R.HasMin && R.HasMax) << P.toString();
    EXPECT_EQ(R.Min, Min) << "trial " << T << ": " << P.toString();
    EXPECT_EQ(R.Max, Max) << "trial " << T << ": " << P.toString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomBoxes, VarRangeProperty,
    ::testing::Values(
        ProjPropertyParam{{/*NumVars=*/2, /*NumEQs=*/0, /*NumGEQs=*/3,
                           /*CoeffRange=*/3, /*ConstRange=*/6, /*Box=*/5},
                          1, 60, 21},
        ProjPropertyParam{{/*NumVars=*/3, /*NumEQs=*/1, /*NumGEQs=*/2,
                           /*CoeffRange=*/2, /*ConstRange=*/5, /*Box=*/4},
                          1, 40, 22}));
