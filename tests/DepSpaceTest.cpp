//===- tests/DepSpaceTest.cpp ---------------------------------------------===//
//
// Unit tests for the DepSpace layout and constraint builders underneath
// every dependence question.
//
//===----------------------------------------------------------------------===//

#include "deps/DepSpace.h"

#include "omega/Projection.h"
#include "omega/Satisfiability.h"

#include <gtest/gtest.h>

using namespace omega;
using namespace omega::deps;
using omega::ir::Access;
using omega::ir::AnalyzedProgram;
using omega::ir::analyzeSource;

namespace {

const Access *findAccess(const AnalyzedProgram &AP, const std::string &Array,
                         bool IsWrite) {
  for (const Access &A : AP.Accesses)
    if (A.Array == Array && A.IsWrite == IsWrite)
      return &A;
  return nullptr;
}

} // namespace

TEST(DepSpace, LayoutHasIterAndSymbolVars) {
  AnalyzedProgram AP = analyzeSource("symbolic n, m;\n"
                                     "for i := 1 to n do\n"
                                     "  for j := 1 to m do\n"
                                     "    a(i+j) := a(i);\n"
                                     "  endfor\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  const Access *W = findAccess(AP, "a", true);
  const Access *R = findAccess(AP, "a", false);
  DepSpace Space(AP, {W, R});
  // 2 iter vars per instance + n + m.
  EXPECT_EQ(Space.base().getNumVars(), 6u);
  EXPECT_EQ(Space.symConstVars().size(), 2u);
  EXPECT_NE(Space.iterVar(0, 0), Space.iterVar(1, 0));
  EXPECT_NE(Space.iterVar(0, 1), Space.iterVar(1, 1));
}

TEST(DepSpace, IterationSpaceEncodesBounds) {
  AnalyzedProgram AP = analyzeSource("for i := 3 to 7 do\n"
                                     "  a(i) := 0;\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  const Access *W = findAccess(AP, "a", true);
  DepSpace Space(AP, {W});
  Problem P = Space.base();
  Space.addIterationSpace(P, 0);
  IntRange R = computeVarRange(P, Space.iterVar(0, 0));
  EXPECT_EQ(R.Min, 3);
  EXPECT_EQ(R.Max, 7);
}

TEST(DepSpace, StrideAddsExistential) {
  AnalyzedProgram AP = analyzeSource("for i := 1 to 9 step 4 do\n"
                                     "  a(i) := 0;\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  const Access *W = findAccess(AP, "a", true);
  DepSpace Space(AP, {W});
  Problem P = Space.base();
  Space.addIterationSpace(P, 0);
  // i in {1, 5, 9}: pin and test.
  for (int64_t V = 0; V <= 10; ++V) {
    Problem Pinned = P;
    Pinned.addEQ({{Space.iterVar(0, 0), 1}}, -V);
    EXPECT_EQ(isSatisfiable(std::move(Pinned)), V == 1 || V == 5 || V == 9)
        << "i = " << V;
  }
}

TEST(DepSpace, SubscriptEqualityCouplesInstances) {
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := 1 to n do\n"
                                     "  a(2*i) := a(i+3);\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  const Access *W = findAccess(AP, "a", true);
  const Access *R = findAccess(AP, "a", false);
  DepSpace Space(AP, {W, R});
  Problem P = Space.base();
  Space.addIterationSpace(P, 0);
  Space.addIterationSpace(P, 1);
  Space.addSubscriptsEqual(P, 0, 1);
  // 2*i == j + 3: pin i = 4 => j = 5.
  P.addEQ({{Space.iterVar(0, 0), 1}}, -4);
  IntRange R2 = computeVarRange(P, Space.iterVar(1, 0));
  EXPECT_EQ(R2.Min, 5);
  EXPECT_EQ(R2.Max, 5);
}

TEST(DepSpace, PrecedesCasesCountAndShape) {
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := 1 to n do\n"
                                     "  for j := 1 to n do\n"
                                     "    a(i,j) := a(i,j) + 1;\n"
                                     "  endfor\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  const Access *W = findAccess(AP, "a", true);
  const Access *R = findAccess(AP, "a", false);

  // Read -> write: two carried levels plus the loop-independent case
  // (the read textually precedes the write).
  DepSpace SpaceRW(AP, {R, W});
  std::vector<Problem> Cases =
      SpaceRW.precedesCases(SpaceRW.base(), 0, 1);
  EXPECT_EQ(Cases.size(), 3u);

  // Write -> read: only the two carried levels.
  DepSpace SpaceWR(AP, {W, R});
  EXPECT_EQ(SpaceWR.precedesCases(SpaceWR.base(), 0, 1).size(), 2u);
}

TEST(DepSpace, DistanceVarsMeasureDifferences) {
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := 1 to n do\n"
                                     "  a(i) := a(i-3);\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  const Access *W = findAccess(AP, "a", true);
  const Access *R = findAccess(AP, "a", false);
  DepSpace Space(AP, {W, R});
  Problem P = Space.base();
  Space.addIterationSpace(P, 0);
  Space.addIterationSpace(P, 1);
  Space.addSubscriptsEqual(P, 0, 1);
  std::vector<VarId> Deltas = Space.addDistanceVars(P, 0, 1);
  ASSERT_EQ(Deltas.size(), 1u);
  IntRange R2 = computeVarRange(P, Deltas.front());
  EXPECT_EQ(R2.Min, 3);
  EXPECT_EQ(R2.Max, 3);
}

TEST(DepSpace, SharedAndPerInstanceTerms) {
  // Q is read-only and loop-invariant, so its subscript term is shared;
  // the i*j term depends on loop variables, so it is per-instance.
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := 1 to n do\n"
                                     "  for j := 1 to n do\n"
                                     "    a(i*j + Q(0)) := a(i*j + Q(0));\n"
                                     "  endfor\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  const Access *W = findAccess(AP, "a", true);
  const Access *R = findAccess(AP, "a", false);
  DepSpace Space(AP, {W, R});
  unsigned Shared = 0, PerInstance = 0;
  for (const DepSpace::TermVar &T : Space.termVars())
    (T.Inst < 0 ? Shared : PerInstance)++;
  EXPECT_EQ(Shared, 2u);      // Q(0): one per textual occurrence, shared
  EXPECT_EQ(PerInstance, 2u); // i*j per instance
}

TEST(DepSpace, ThreeInstanceSpaces) {
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := 1 to n do\n"
                                     "  a(i) := a(i-1);\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  const Access *W = findAccess(AP, "a", true);
  const Access *R = findAccess(AP, "a", false);
  DepSpace Space(AP, {W, W, R});
  EXPECT_EQ(Space.getNumInstances(), 3u);
  // Three distinct iteration variables.
  EXPECT_NE(Space.iterVar(0, 0), Space.iterVar(1, 0));
  EXPECT_NE(Space.iterVar(1, 0), Space.iterVar(2, 0));
}
