//===- tests/PipelineDifferentialTest.cpp ---------------------------------===//
//
// The pipeline tier's differential battery. Two independent referees:
//
//  * the interpreter-backed schedule oracle (oracle/ScheduleOracle.h)
//    executes every pipelined schedule the planner emits -- for the whole
//    kernel/example corpus and for hundreds of seeded random programs --
//    and requires final memory to match the original program;
//  * the schema-4 "pipeline" response block must be byte-identical across
//    jobs 1 vs 4, with and without the cross-request result store, and
//    invariant under label-preserving source reformatting (comments and
//    blank lines), the same determinism gate the rest of "result" obeys.
//
// Seeds follow the fuzz convention: OMEGA_FUZZ_SEED overrides the base.
//
//===----------------------------------------------------------------------===//

#include "api/Response.h"
#include "engine/DependenceEngine.h"
#include "engine/ResultStore.h"
#include "ir/Sema.h"
#include "kernels/Kernels.h"
#include "oracle/Generate.h"
#include "oracle/ScheduleOracle.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

using namespace omega;
namespace fs = std::filesystem;

namespace {

std::string readFile(const fs::path &P) {
  std::ifstream In(P);
  std::ostringstream OS;
  OS << In.rdbuf();
  return OS.str();
}

/// The schedule oracle over one source; returns plans checked.
unsigned checkSchedules(const std::string &Name, const std::string &Source) {
  SCOPED_TRACE(Name);
  oracle::ScheduleReport R = oracle::checkPipelineSchedules(Source);
  for (const std::string &M : R.Mismatches)
    ADD_FAILURE() << Name << ": " << M;
  return R.PlansChecked;
}

/// Renders the full schema-4 result (pipeline block included) from a
/// fresh engine run with \p Jobs workers and optional result store.
std::string renderWithPipeline(const ir::AnalyzedProgram &AP, unsigned Jobs,
                               engine::ResultStore *Store = nullptr) {
  engine::AnalysisRequest Req;
  Req.Jobs = Jobs;
  Req.UseQueryCache = false;
  Req.Store = Store;
  engine::DependenceEngine Engine(Req);
  engine::AnalysisResult R = Engine.analyze(AP);
  return api::renderResult(R, &AP);
}

} // namespace

TEST(PipelineDifferential, CorpusSchedulesExecuteEquivalently) {
  unsigned Plans = 0;
  for (const kernels::Kernel &K : kernels::corpus())
    Plans += checkSchedules(K.Name, K.Source);
  fs::path Dir = fs::path(OMEGA_EXAMPLES_DIR);
  ASSERT_TRUE(fs::is_directory(Dir));
  for (const fs::directory_entry &E : fs::directory_iterator(Dir)) {
    if (!E.is_regular_file() || E.path().extension() != ".tiny")
      continue;
    Plans += checkSchedules(E.path().filename().string(),
                            readFile(E.path()));
  }
  EXPECT_GT(Plans, 0u) << "corpus produced no executable pipeline plans";
}

TEST(PipelineDifferential, RandomProgramsSchedulesExecuteEquivalently) {
  // The acceptance bar: hundreds of seeded random programs, zero
  // schedule-oracle mismatches. Each failure message carries the seed.
  const unsigned Base = oracle::fuzzSeed(12345);
  unsigned Plans = 0;
  unsigned Parallel = 0;
  for (unsigned I = 0; I != 200; ++I) {
    oracle::ProgramGenerator Gen(Base + 4000000 + I);
    std::string Source = Gen.generate();
    SCOPED_TRACE("program " + std::to_string(I) + " (" +
                 oracle::seedMessage(Base) + ")\n" + Source);
    oracle::ScheduleReport R = oracle::checkPipelineSchedules(Source);
    for (const std::string &M : R.Mismatches)
      ADD_FAILURE() << M;
    Plans += R.PlansChecked;
    Parallel += R.ParallelPlans;
  }
  EXPECT_GT(Plans, 0u) << "no random program pipelined at all";
  EXPECT_GT(Parallel, 0u) << "no random plan had a parallel stage";
}

TEST(PipelineDifferential, ResponseBlockIdenticalAcrossJobs) {
  for (const kernels::Kernel &K : kernels::corpus()) {
    SCOPED_TRACE(K.Name);
    ir::AnalyzedProgram AP = ir::analyzeSource(K.Source);
    ASSERT_TRUE(AP.ok());
    EXPECT_EQ(renderWithPipeline(AP, 1), renderWithPipeline(AP, 4));
  }
}

TEST(PipelineDifferential, ResponseBlockIdenticalWithResultStore) {
  // A cold store run, a warm store run (second pass materializes pairs
  // from the store), and a no-store run must all render the same bytes.
  fs::path File = fs::path(OMEGA_EXAMPLES_DIR) / "pipeline4.tiny";
  ir::AnalyzedProgram AP = ir::analyzeSource(readFile(File));
  ASSERT_TRUE(AP.ok());
  std::string Bare = renderWithPipeline(AP, 1);
  engine::ResultStore Store(64);
  std::string Cold = renderWithPipeline(AP, 1, &Store);
  std::string Warm = renderWithPipeline(AP, 2, &Store);
  EXPECT_EQ(Bare, Cold);
  EXPECT_EQ(Bare, Warm);
  EXPECT_NE(Bare.find("\"pipeline\": "), std::string::npos);
}

TEST(PipelineDifferential, ResponseBlockInvariantUnderReformatting) {
  // Labels come from statement order, never from source positions:
  // comments and blank lines cannot perturb the pipeline block.
  const unsigned Base = oracle::fuzzSeed(12345);
  for (unsigned I = 0; I != 25; ++I) {
    oracle::ProgramGenerator Gen(Base + 4000000 + I);
    std::string Source = Gen.generate();
    std::string Reformatted = "# metamorphic reformat\n\n" + Source + "\n\n";
    ir::AnalyzedProgram A = ir::analyzeSource(Source);
    ir::AnalyzedProgram B = ir::analyzeSource(Reformatted);
    if (!A.ok() || !B.ok())
      continue;
    SCOPED_TRACE("program " + std::to_string(I) + " (" +
                 oracle::seedMessage(Base) + ")");
    EXPECT_EQ(renderWithPipeline(A, 1), renderWithPipeline(B, 1));
  }
}

TEST(PipelineDifferential, PipelineOptInOnlyAppends) {
  // Requesting the pipeline block must not perturb the base result: the
  // schema-4 document with the block is the one without it, extended.
  ir::AnalyzedProgram AP = ir::analyzeSource(kernels::cholsky());
  ASSERT_TRUE(AP.ok());
  engine::AnalysisRequest Req;
  Req.UseQueryCache = false;
  engine::DependenceEngine Engine(Req);
  engine::AnalysisResult R = Engine.analyze(AP);
  std::string Without = api::renderResult(R);
  std::string With = api::renderResult(R, &AP);
  ASSERT_EQ(Without.back(), '}');
  EXPECT_EQ(With.compare(0, Without.size() - 1, Without, 0,
                         Without.size() - 1),
            0)
      << "pipeline opt-in rewrote the base result";
  EXPECT_NE(With.find(", \"pipeline\": ["), std::string::npos);
}
