//===- tests/ServeTest.cpp - The analysis server's contract ---------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
// omega-serve's core promises, exercised in-process: concurrent clients
// over the whole corpus get responses whose "result" section is
// byte-identical to a one-shot engine run (any jobs value, warm or cold
// cache); admission control sheds with typed errors; per-request metrics
// attribute cache traffic to the request that caused it.
//
//===----------------------------------------------------------------------===//

#include "api/Json.h"
#include "api/Response.h"
#include "api/Serve.h"
#include "kernels/Kernels.h"
#include "omega/QueryCache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

using namespace omega;

namespace {

/// Submits one request and blocks until its response arrives.
std::string ask(api::Server &Server, const std::string &Line) {
  std::mutex Mu;
  std::condition_variable CV;
  std::string Response;
  bool Done = false;
  Server.submit(Line, [&](std::string R) {
    std::lock_guard<std::mutex> Lock(Mu);
    Response = std::move(R);
    Done = true;
    CV.notify_one();
  });
  std::unique_lock<std::mutex> Lock(Mu);
  CV.wait(Lock, [&] { return Done; });
  return Response;
}

std::string requestLine(uint64_t Id, const std::string &Source,
                        const std::string &OptionsJson = std::string()) {
  std::string Line = "{\"id\": " + std::to_string(Id) + ", \"source\": \"" +
                     api::json::escape(Source) + "\"";
  if (!OptionsJson.empty())
    Line += ", \"options\": " + OptionsJson;
  return Line + "}";
}

/// Extracts the raw bytes of the top-level "result" object from a
/// response line -- the section the bit-identity gate diffs.
std::string resultBytes(const std::string &Response) {
  std::size_t At = Response.find("\"result\": ");
  if (At == std::string::npos)
    return std::string();
  At += 10;
  // Balance braces; response strings never embed unescaped '{' or '}'.
  int Depth = 0;
  bool InString = false;
  for (std::size_t I = At; I != Response.size(); ++I) {
    char C = Response[I];
    if (InString) {
      if (C == '\\')
        ++I;
      else if (C == '"')
        InString = false;
      continue;
    }
    if (C == '"')
      InString = true;
    else if (C == '{')
      ++Depth;
    else if (C == '}' && --Depth == 0)
      return Response.substr(At, I + 1 - At);
  }
  return std::string();
}

std::string errorCode(const std::string &Response) {
  api::json::Value Doc;
  std::string Err;
  if (!api::json::parse(Response, Doc, Err))
    return "<unparseable: " + Err + ">";
  if (const api::json::Value *E = Doc.get("error"))
    if (const api::json::Value *C = E->get("code"))
      return C->asString();
  return std::string();
}

/// One-shot reference: a fresh engine run rendered through the same
/// schema-3 result renderer (what `omega-analyze --json` emits).
std::string oneShotResult(const ir::AnalyzedProgram &AP, unsigned Jobs,
                          bool Cache) {
  engine::AnalysisRequest Req;
  Req.Jobs = Jobs;
  Req.UseQueryCache = Cache;
  engine::DependenceEngine Engine(Req);
  return api::renderResult(Engine.analyze(AP));
}

api::Server::Config basicConfig(unsigned Workers = 4) {
  api::Server::Config Cfg;
  Cfg.Workers = Workers;
  Cfg.Defaults.Jobs = 1;
  return Cfg;
}

} // namespace

// The tentpole gate: concurrent clients hammering the full corpus receive
// responses byte-identical (in "result") to one-shot runs -- cold cache,
// warm cache, and different per-request jobs values all interleaved.
TEST(Serve, ConcurrentClientsMatchOneShotByteForByte) {
  std::vector<std::string> Sources;
  std::vector<std::string> Expected;
  for (const kernels::Kernel &K : kernels::corpus()) {
    ir::AnalyzedProgram AP = ir::analyzeSource(K.Source);
    if (!AP.ok())
      continue;
    Sources.push_back(K.Source);
    Expected.push_back(oneShotResult(AP, /*Jobs=*/1, /*Cache=*/false));
  }
  ASSERT_GE(Sources.size(), 10u);

  api::Server Server(basicConfig(4));
  constexpr unsigned Clients = 4;
  constexpr unsigned Rounds = 2; // round 2 is fully warm
  std::atomic<unsigned> Mismatches{0}, Responses{0};
  std::vector<std::thread> Threads;
  for (unsigned C = 0; C != Clients; ++C) {
    Threads.emplace_back([&, C] {
      for (unsigned R = 0; R != Rounds; ++R)
        for (std::size_t I = 0; I != Sources.size(); ++I) {
          std::size_t Pick = (I + C) % Sources.size();
          // Vary jobs across clients; results must not.
          std::string Opts = "{\"jobs\": " + std::to_string(1 + C % 3) + "}";
          std::string Resp = ask(
              Server, requestLine(C * 1000 + I, Sources[Pick], Opts));
          Responses.fetch_add(1);
          if (resultBytes(Resp) != Expected[Pick])
            Mismatches.fetch_add(1);
        }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Mismatches.load(), 0u);
  EXPECT_EQ(Responses.load(), Clients * Rounds * Sources.size());

  // The shared cache really was shared: the second round hit it.
  ASSERT_NE(Server.cache(), nullptr);
  EXPECT_GT(Server.cache()->stats().SatHits, 0u);
  Server.stop();
}

// Per-request metrics attribute cache traffic to the requesting client;
// summed over every response they reconstruct the shared cache's global
// counters exactly, even with interleaved concurrent clients.
TEST(Serve, MetricsAttributeCacheTrafficPerRequest) {
  std::vector<std::string> Sources;
  for (const kernels::Kernel &K : kernels::corpus()) {
    if (ir::analyzeSource(K.Source).ok())
      Sources.push_back(K.Source);
    if (Sources.size() == 8)
      break;
  }
  ASSERT_GE(Sources.size(), 4u);

  api::Server Server(basicConfig(4));
  std::atomic<uint64_t> SatHits{0}, SatMisses{0}, GistHits{0}, GistMisses{0};
  std::atomic<unsigned> BadResponses{0};
  std::vector<std::thread> Threads;
  for (unsigned C = 0; C != 4; ++C) {
    Threads.emplace_back([&, C] {
      for (unsigned R = 0; R != 3; ++R)
        for (std::size_t I = 0; I != Sources.size(); ++I) {
          std::string Resp = ask(
              Server, requestLine(1, Sources[(I + C) % Sources.size()]));
          api::json::Value Doc;
          std::string Err;
          const api::json::Value *Cache = nullptr;
          if (api::json::parse(Resp, Doc, Err))
            if (const api::json::Value *M = Doc.get("metrics"))
              Cache = M->get("cache");
          if (!Cache) {
            BadResponses.fetch_add(1);
            continue;
          }
          SatHits += Cache->get("satHits")->asInt();
          SatMisses += Cache->get("satMisses")->asInt();
          GistHits += Cache->get("gistHits")->asInt();
          GistMisses += Cache->get("gistMisses")->asInt();
        }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(BadResponses.load(), 0u);

  QueryCacheStats Global = Server.cache()->stats();
  EXPECT_EQ(SatHits.load(), Global.SatHits);
  EXPECT_EQ(SatMisses.load(), Global.SatMisses);
  EXPECT_EQ(GistHits.load(), Global.GistHits);
  EXPECT_EQ(GistMisses.load(), Global.GistMisses);
  EXPECT_GT(SatHits.load(), 0u);
  Server.stop();
}

// Typed protocol errors: malformed JSON, bad fields, analysis failures.
TEST(Serve, TypedErrorsForBadRequests) {
  api::Server Server(basicConfig(1));
  EXPECT_EQ(errorCode(ask(Server, "not json at all")), "parse_error");
  EXPECT_EQ(errorCode(ask(Server, "[1, 2]")), "parse_error");
  EXPECT_EQ(errorCode(ask(Server, "{\"id\": 1}")), "bad_request");
  EXPECT_EQ(errorCode(ask(Server, "{\"id\": 1, \"source\": 7}")),
            "bad_request");
  EXPECT_EQ(errorCode(ask(Server, "{\"id\": 1, \"op\": \"frobnicate\", "
                                  "\"source\": \"x\"}")),
            "bad_request");
  EXPECT_EQ(errorCode(ask(Server,
                          "{\"id\": 1, \"source\": \"a := 1;\", "
                          "\"options\": {\"nonsense\": true}}")),
            "bad_request");
  EXPECT_EQ(errorCode(ask(Server,
                          "{\"id\": 1, \"source\": \"for broken {\"}")),
            "analysis_error");

  // Responses carry the request id back; unparseable ids become null.
  std::string WithId = ask(Server, "{\"id\": 42}");
  EXPECT_NE(WithId.find("\"id\": 42"), std::string::npos);
  std::string NoId = ask(Server, "{\"source\": 3}");
  EXPECT_NE(NoId.find("\"id\": null"), std::string::npos);
  Server.stop();
}

// Admission control: with one worker wedged on real work and the queue
// bounded at 2, a burst beyond capacity is shed with "overloaded" --
// and the admitted requests still complete correctly.
TEST(Serve, OverloadShedsWithTypedError) {
  api::Server::Config Cfg = basicConfig(1);
  Cfg.MaxQueue = 2;
  api::Server Server(Cfg);

  const std::string Source = kernels::corpus().front().Source;
  constexpr unsigned Burst = 16;
  std::mutex Mu;
  std::condition_variable CV;
  unsigned Done = 0, Overloaded = 0, Ok = 0;
  for (unsigned I = 0; I != Burst; ++I) {
    Server.submit(requestLine(I, Source), [&](std::string Resp) {
      std::lock_guard<std::mutex> Lock(Mu);
      ++Done;
      std::string Code = errorCode(Resp);
      if (Code == "overloaded")
        ++Overloaded;
      else if (Code.empty() && !resultBytes(Resp).empty())
        ++Ok;
      CV.notify_one();
    });
  }
  std::unique_lock<std::mutex> Lock(Mu);
  CV.wait(Lock, [&] { return Done == Burst; });
  // The burst was synchronous, so at most 1 (running) + 2 (queued) + a
  // race margin of nothing can succeed; everything else shed.
  EXPECT_GT(Overloaded, 0u);
  EXPECT_GT(Ok, 0u);
  EXPECT_EQ(Ok + Overloaded, Burst);
  Lock.unlock();
  Server.stop();
}

// A request whose deadline expires while queued is answered with
// "deadline_exceeded" instead of being run.
TEST(Serve, ExpiredDeadlinesAreShed) {
  api::Server::Config Cfg = basicConfig(1);
  Cfg.MaxQueue = 64;
  api::Server Server(Cfg);
  const std::string Source = kernels::corpus().front().Source;

  // Wedge the single worker behind a pile of work, then enqueue a request
  // that can only be reached after its 1ms deadline has long passed.
  std::mutex Mu;
  std::condition_variable CV;
  unsigned Done = 0;
  std::string DeadlineCode;
  auto Count = [&](std::string) {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Done;
    CV.notify_one();
  };
  for (unsigned I = 0; I != 8; ++I)
    Server.submit(requestLine(I, Source), Count);
  Server.submit(requestLine(99, Source) , Count); // placeholder keeps order
  std::string Line = requestLine(100, Source);
  Line.insert(Line.size() - 1, ", \"deadlineMs\": 1");
  Server.submit(Line, [&](std::string Resp) {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Done;
    DeadlineCode = errorCode(Resp);
    CV.notify_one();
  });
  std::unique_lock<std::mutex> Lock(Mu);
  CV.wait(Lock, [&] { return Done == 10; });
  // Some earlier requests may themselves be shed only if overloaded -- the
  // queue is large enough that they are not; the deadlined one must be.
  EXPECT_EQ(DeadlineCode, "deadline_exceeded");
  Lock.unlock();
  Server.stop();
}

// After stop(), new submissions are refused with the "shutdown" code.
TEST(Serve, SubmitAfterStopIsRefused) {
  api::Server Server(basicConfig(1));
  Server.stop();
  EXPECT_EQ(errorCode(ask(Server, requestLine(1, "a := 1;"))), "shutdown");
}

// Per-request option ablations are honored and still result-identical.
TEST(Serve, PerRequestOptionsAreHonored) {
  api::Server Server(basicConfig(2));
  const std::string Source = kernels::corpus().front().Source;
  ir::AnalyzedProgram AP = ir::analyzeSource(Source);
  ASSERT_TRUE(AP.ok());
  std::string Expected = oneShotResult(AP, 1, false);

  for (const char *Opts :
       {"{\"quicktests\": false}", "{\"incremental\": false}",
        "{\"snapshotSharing\": false}", "{\"jobs\": 3}",
        "{\"quicktests\": false, \"incremental\": false}"}) {
    std::string Resp = ask(Server, requestLine(7, Source, Opts));
    EXPECT_EQ(resultBytes(Resp), Expected) << Opts;
  }

  // Ablations do change the reported work profile: with quick tests off
  // the solver answers every pair the hard way.
  api::json::Value Doc;
  std::string Err;
  std::string Ablated =
      ask(Server, requestLine(8, Source, "{\"quicktests\": false}"));
  ASSERT_TRUE(api::json::parse(Ablated, Doc, Err)) << Err;
  EXPECT_EQ(Doc.get("metrics")
                ->get("stats")
                ->get("quicktestDecided")
                ->asInt(),
            0);
  Server.stop();
}

// A warm server and a cold server produce identical result bytes (the
// determinism guarantee behind response caching across requests).
TEST(Serve, WarmAndColdServersAgree) {
  const std::string Source = kernels::corpus().front().Source;
  std::string First, Warm, Cold;
  {
    api::Server Server(basicConfig(2));
    First = resultBytes(ask(Server, requestLine(1, Source)));
    Warm = resultBytes(ask(Server, requestLine(2, Source)));
    Server.stop();
  }
  {
    api::Server Server(basicConfig(2));
    Cold = resultBytes(ask(Server, requestLine(3, Source)));
    Server.stop();
  }
  ASSERT_FALSE(First.empty());
  EXPECT_EQ(First, Warm);
  EXPECT_EQ(First, Cold);
}
