//===- tests/ServeTest.cpp - The analysis server's contract ---------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
// omega-serve's core promises, exercised in-process: concurrent clients
// over the whole corpus get responses whose "result" section is
// byte-identical to a one-shot engine run (any jobs value, warm or cold
// cache); admission control sheds with typed errors; per-request metrics
// attribute cache traffic to the request that caused it; identical
// concurrent sessionless requests coalesce onto one solve; the global
// result store persists across server restarts (corruption degrades to
// a cold start); metrics reset on request; the access log rotates by
// size without tearing records.
//
//===----------------------------------------------------------------------===//

#include "api/Json.h"
#include "api/Response.h"
#include "api/Serve.h"
#include "kernels/Kernels.h"
#include "omega/QueryCache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

using namespace omega;

namespace {

/// Submits one request and blocks until its response arrives.
std::string ask(api::Server &Server, const std::string &Line) {
  std::mutex Mu;
  std::condition_variable CV;
  std::string Response;
  bool Done = false;
  Server.submit(Line, [&](std::string R) {
    std::lock_guard<std::mutex> Lock(Mu);
    Response = std::move(R);
    Done = true;
    CV.notify_one();
  });
  std::unique_lock<std::mutex> Lock(Mu);
  CV.wait(Lock, [&] { return Done; });
  return Response;
}

std::string requestLine(uint64_t Id, const std::string &Source,
                        const std::string &OptionsJson = std::string()) {
  std::string Line = "{\"id\": " + std::to_string(Id) + ", \"source\": \"" +
                     api::json::escape(Source) + "\"";
  if (!OptionsJson.empty())
    Line += ", \"options\": " + OptionsJson;
  return Line + "}";
}

/// Extracts the raw bytes of the top-level "result" object from a
/// response line -- the section the bit-identity gate diffs.
std::string resultBytes(const std::string &Response) {
  std::size_t At = Response.find("\"result\": ");
  if (At == std::string::npos)
    return std::string();
  At += 10;
  // Balance braces; response strings never embed unescaped '{' or '}'.
  int Depth = 0;
  bool InString = false;
  for (std::size_t I = At; I != Response.size(); ++I) {
    char C = Response[I];
    if (InString) {
      if (C == '\\')
        ++I;
      else if (C == '"')
        InString = false;
      continue;
    }
    if (C == '"')
      InString = true;
    else if (C == '{')
      ++Depth;
    else if (C == '}' && --Depth == 0)
      return Response.substr(At, I + 1 - At);
  }
  return std::string();
}

std::string errorCode(const std::string &Response) {
  api::json::Value Doc;
  std::string Err;
  if (!api::json::parse(Response, Doc, Err))
    return "<unparseable: " + Err + ">";
  if (const api::json::Value *E = Doc.get("error"))
    if (const api::json::Value *C = E->get("code"))
      return C->asString();
  return std::string();
}

/// One-shot reference: a fresh engine run rendered through the same
/// schema-4 result renderer (what `omega-analyze --json` emits).
std::string oneShotResult(const ir::AnalyzedProgram &AP, unsigned Jobs,
                          bool Cache) {
  engine::AnalysisRequest Req;
  Req.Jobs = Jobs;
  Req.UseQueryCache = Cache;
  engine::DependenceEngine Engine(Req);
  return api::renderResult(Engine.analyze(AP));
}

api::Server::Config basicConfig(unsigned Workers = 4) {
  api::Server::Config Cfg;
  Cfg.Workers = Workers;
  Cfg.Defaults.Jobs = 1;
  return Cfg;
}

/// metrics.counters.<Name> of a metrics-op response, or -1 when absent.
int64_t counterOf(const std::string &Response, const std::string &Name) {
  api::json::Value Doc;
  std::string Err;
  if (!api::json::parse(Response, Doc, Err))
    return -1;
  if (const api::json::Value *M = Doc.get("metrics"))
    if (const api::json::Value *C = M->get("counters"))
      if (const api::json::Value *V = C->get(Name))
        return V->asInt();
  return -1;
}

/// metrics.stats.<Field> of an analyze response, or -1 when absent.
int64_t statsOf(const std::string &Response, const std::string &Field) {
  api::json::Value Doc;
  std::string Err;
  if (!api::json::parse(Response, Doc, Err))
    return -1;
  if (const api::json::Value *M = Doc.get("metrics"))
    if (const api::json::Value *S = M->get("stats"))
      if (const api::json::Value *F = S->get(Field))
        return F->asInt();
  return -1;
}

std::string readFileBytes(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  return Buf.str();
}

} // namespace

// The tentpole gate: concurrent clients hammering the full corpus receive
// responses byte-identical (in "result") to one-shot runs -- cold cache,
// warm cache, and different per-request jobs values all interleaved.
TEST(Serve, ConcurrentClientsMatchOneShotByteForByte) {
  std::vector<std::string> Sources;
  std::vector<std::string> Expected;
  for (const kernels::Kernel &K : kernels::corpus()) {
    ir::AnalyzedProgram AP = ir::analyzeSource(K.Source);
    if (!AP.ok())
      continue;
    Sources.push_back(K.Source);
    Expected.push_back(oneShotResult(AP, /*Jobs=*/1, /*Cache=*/false));
  }
  ASSERT_GE(Sources.size(), 10u);

  api::Server Server(basicConfig(4));
  constexpr unsigned Clients = 4;
  constexpr unsigned Rounds = 2; // round 2 is fully warm
  std::atomic<unsigned> Mismatches{0}, Responses{0};
  std::vector<std::thread> Threads;
  for (unsigned C = 0; C != Clients; ++C) {
    Threads.emplace_back([&, C] {
      for (unsigned R = 0; R != Rounds; ++R)
        for (std::size_t I = 0; I != Sources.size(); ++I) {
          std::size_t Pick = (I + C) % Sources.size();
          // Vary jobs across clients; results must not.
          std::string Opts = "{\"jobs\": " + std::to_string(1 + C % 3) + "}";
          std::string Resp = ask(
              Server, requestLine(C * 1000 + I, Sources[Pick], Opts));
          Responses.fetch_add(1);
          if (resultBytes(Resp) != Expected[Pick])
            Mismatches.fetch_add(1);
        }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Mismatches.load(), 0u);
  EXPECT_EQ(Responses.load(), Clients * Rounds * Sources.size());

  // The shared cache really was shared: the second round hit it.
  ASSERT_NE(Server.cache(), nullptr);
  EXPECT_GT(Server.cache()->stats().SatHits, 0u);
  Server.stop();
}

// Per-request metrics attribute cache traffic to the requesting client;
// summed over every response they reconstruct the shared cache's global
// counters exactly, even with interleaved concurrent clients.
TEST(Serve, MetricsAttributeCacheTrafficPerRequest) {
  std::vector<std::string> Sources;
  for (const kernels::Kernel &K : kernels::corpus()) {
    if (ir::analyzeSource(K.Source).ok())
      Sources.push_back(K.Source);
    if (Sources.size() == 8)
      break;
  }
  ASSERT_GE(Sources.size(), 4u);

  api::Server Server(basicConfig(4));
  std::atomic<uint64_t> SatHits{0}, SatMisses{0}, GistHits{0}, GistMisses{0};
  std::atomic<unsigned> BadResponses{0};
  std::vector<std::thread> Threads;
  for (unsigned C = 0; C != 4; ++C) {
    Threads.emplace_back([&, C] {
      for (unsigned R = 0; R != 3; ++R)
        for (std::size_t I = 0; I != Sources.size(); ++I) {
          std::string Resp = ask(
              Server, requestLine(1, Sources[(I + C) % Sources.size()]));
          api::json::Value Doc;
          std::string Err;
          const api::json::Value *Cache = nullptr;
          if (api::json::parse(Resp, Doc, Err))
            if (const api::json::Value *M = Doc.get("metrics"))
              Cache = M->get("cache");
          if (!Cache) {
            BadResponses.fetch_add(1);
            continue;
          }
          SatHits += Cache->get("satHits")->asInt();
          SatMisses += Cache->get("satMisses")->asInt();
          GistHits += Cache->get("gistHits")->asInt();
          GistMisses += Cache->get("gistMisses")->asInt();
        }
    });
  }
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(BadResponses.load(), 0u);

  QueryCacheStats Global = Server.cache()->stats();
  EXPECT_EQ(SatHits.load(), Global.SatHits);
  EXPECT_EQ(SatMisses.load(), Global.SatMisses);
  EXPECT_EQ(GistHits.load(), Global.GistHits);
  EXPECT_EQ(GistMisses.load(), Global.GistMisses);
  EXPECT_GT(SatHits.load(), 0u);
  Server.stop();
}

// Typed protocol errors: malformed JSON, bad fields, analysis failures.
TEST(Serve, TypedErrorsForBadRequests) {
  api::Server Server(basicConfig(1));
  EXPECT_EQ(errorCode(ask(Server, "not json at all")), "parse_error");
  EXPECT_EQ(errorCode(ask(Server, "[1, 2]")), "parse_error");
  EXPECT_EQ(errorCode(ask(Server, "{\"id\": 1}")), "bad_request");
  EXPECT_EQ(errorCode(ask(Server, "{\"id\": 1, \"source\": 7}")),
            "bad_request");
  EXPECT_EQ(errorCode(ask(Server, "{\"id\": 1, \"op\": \"frobnicate\", "
                                  "\"source\": \"x\"}")),
            "bad_request");
  EXPECT_EQ(errorCode(ask(Server,
                          "{\"id\": 1, \"source\": \"a := 1;\", "
                          "\"options\": {\"nonsense\": true}}")),
            "bad_request");
  EXPECT_EQ(errorCode(ask(Server,
                          "{\"id\": 1, \"source\": \"for broken {\"}")),
            "analysis_error");

  // Responses carry the request id back; unparseable ids become null.
  std::string WithId = ask(Server, "{\"id\": 42}");
  EXPECT_NE(WithId.find("\"id\": 42"), std::string::npos);
  std::string NoId = ask(Server, "{\"source\": 3}");
  EXPECT_NE(NoId.find("\"id\": null"), std::string::npos);
  Server.stop();
}

// Admission control: with one worker wedged on real work and the queue
// bounded at 2, a burst beyond capacity is shed with "overloaded" --
// and the admitted requests still complete correctly.
TEST(Serve, OverloadShedsWithTypedError) {
  api::Server::Config Cfg = basicConfig(1);
  Cfg.MaxQueue = 2;
  api::Server Server(Cfg);

  const std::string Source = kernels::corpus().front().Source;
  constexpr unsigned Burst = 16;
  std::mutex Mu;
  std::condition_variable CV;
  unsigned Done = 0, Overloaded = 0, Ok = 0;
  for (unsigned I = 0; I != Burst; ++I) {
    Server.submit(requestLine(I, Source), [&](std::string Resp) {
      std::lock_guard<std::mutex> Lock(Mu);
      ++Done;
      std::string Code = errorCode(Resp);
      if (Code == "overloaded")
        ++Overloaded;
      else if (Code.empty() && !resultBytes(Resp).empty())
        ++Ok;
      CV.notify_one();
    });
  }
  std::unique_lock<std::mutex> Lock(Mu);
  CV.wait(Lock, [&] { return Done == Burst; });
  // The burst was synchronous, so at most 1 (running) + 2 (queued) + a
  // race margin of nothing can succeed; everything else shed.
  EXPECT_GT(Overloaded, 0u);
  EXPECT_GT(Ok, 0u);
  EXPECT_EQ(Ok + Overloaded, Burst);
  Lock.unlock();
  Server.stop();
}

// A request whose deadline expires while queued is answered with
// "deadline_exceeded" instead of being run.
TEST(Serve, ExpiredDeadlinesAreShed) {
  api::Server::Config Cfg = basicConfig(1);
  Cfg.MaxQueue = 64;
  api::Server Server(Cfg);
  const std::string Source = kernels::corpus().front().Source;

  // Wedge the single worker behind a pile of work, then enqueue a request
  // that can only be reached after its 1ms deadline has long passed.
  std::mutex Mu;
  std::condition_variable CV;
  unsigned Done = 0;
  std::string DeadlineCode;
  auto Count = [&](std::string) {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Done;
    CV.notify_one();
  };
  for (unsigned I = 0; I != 8; ++I)
    Server.submit(requestLine(I, Source), Count);
  Server.submit(requestLine(99, Source) , Count); // placeholder keeps order
  std::string Line = requestLine(100, Source);
  Line.insert(Line.size() - 1, ", \"deadlineMs\": 1");
  Server.submit(Line, [&](std::string Resp) {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Done;
    DeadlineCode = errorCode(Resp);
    CV.notify_one();
  });
  std::unique_lock<std::mutex> Lock(Mu);
  CV.wait(Lock, [&] { return Done == 10; });
  // Some earlier requests may themselves be shed only if overloaded -- the
  // queue is large enough that they are not; the deadlined one must be.
  EXPECT_EQ(DeadlineCode, "deadline_exceeded");
  Lock.unlock();
  Server.stop();
}

// After stop(), new submissions are refused with the "shutdown" code.
TEST(Serve, SubmitAfterStopIsRefused) {
  api::Server Server(basicConfig(1));
  Server.stop();
  EXPECT_EQ(errorCode(ask(Server, requestLine(1, "a := 1;"))), "shutdown");
}

// Per-request option ablations are honored and still result-identical.
TEST(Serve, PerRequestOptionsAreHonored) {
  api::Server Server(basicConfig(2));
  const std::string Source = kernels::corpus().front().Source;
  ir::AnalyzedProgram AP = ir::analyzeSource(Source);
  ASSERT_TRUE(AP.ok());
  std::string Expected = oneShotResult(AP, 1, false);

  for (const char *Opts :
       {"{\"quicktests\": false}", "{\"incremental\": false}",
        "{\"snapshotSharing\": false}", "{\"jobs\": 3}",
        "{\"quicktests\": false, \"incremental\": false}"}) {
    std::string Resp = ask(Server, requestLine(7, Source, Opts));
    EXPECT_EQ(resultBytes(Resp), Expected) << Opts;
  }

  // Ablations do change the reported work profile: with quick tests off
  // the solver answers every pair the hard way.
  api::json::Value Doc;
  std::string Err;
  std::string Ablated =
      ask(Server, requestLine(8, Source, "{\"quicktests\": false}"));
  ASSERT_TRUE(api::json::parse(Ablated, Doc, Err)) << Err;
  EXPECT_EQ(Doc.get("metrics")
                ->get("stats")
                ->get("quicktestDecided")
                ->asInt(),
            0);
  Server.stop();
}

// In-flight coalescing: identical sessionless requests submitted while
// the pool is wedged collapse onto one engine solve. Every client's
// "result" bytes are identical, at least one follower coalesced, and
// the accounting witness holds exactly: engine analyses performed plus
// requests coalesced equals analyze_ok.
TEST(Serve, CoalescingSharesOneSolve) {
  api::Server::Config Cfg = basicConfig(2);
  Cfg.MaxQueue = 64;
  api::Server Server(Cfg);

  // A deliberately expensive burst program (four 3-D nests, quick tests
  // disabled per-request): its solve takes tens of milliseconds,
  // dwarfing the cheap wedge below.
  std::string Heavy = "symbolic n, m, p;\n";
  for (int K = 0; K != 4; ++K) {
    std::string S = std::to_string(K);
    Heavy += "for i := 2 to n do\n"
             "  for j := 2 to m do\n"
             "    for k := 2 to p do\n"
             "      a" + S + "(i,j,k) := a" + S + "(i-1,j,k) + a" + S +
             "(i,j-1,k) + b" + S + "(i-1,j-1,k) + c" + S + "(i,j,k-1);\n"
             "      b" + S + "(i,j,k) := a" + S + "(i,j,k) + b" + S +
             "(i-1,j,k-1) + c" + S + "(i,j-1,k);\n"
             "      c" + S + "(i,j,k) := b" + S + "(i,j-1,k) + c" + S +
             "(i-1,j,k) + a" + S + "(i-1,j,k-1);\n"
             "      d" + S + "(i,j,k) := d" + S + "(i-1,j-1,k-1) + c" + S +
             "(i,j,k) + b" + S + "(i,j,k);\n"
             "    endfor\n"
             "  endfor\n"
             "endfor\n";
  }
  ASSERT_TRUE(ir::analyzeSource(Heavy).ok());

  std::mutex Mu;
  std::condition_variable CV;
  unsigned Done = 0;
  // Wedge exactly one of the two workers with a trivial session request
  // (sessions never coalesce). The other worker picks up the first
  // heavy request and becomes its leader; the wedge clears in well
  // under a millisecond, and its worker then dequeues the rest of the
  // burst while the leader is deep in its tens-of-milliseconds solve,
  // so every remaining request parks on the leader.
  const std::string Wedge =
      "for i := 1 to 8 do\n  t(i) := t(i-1) + 1;\nendfor\n";
  ASSERT_TRUE(ir::analyzeSource(Wedge).ok());
  Server.submit("{\"id\": 100, \"session\": \"w\", \"source\": \"" +
                    api::json::escape(Wedge) + "\"}",
                [&](std::string) {
                  std::lock_guard<std::mutex> Lock(Mu);
                  ++Done;
                  CV.notify_one();
                });

  constexpr unsigned K = 8;
  std::vector<std::string> Resps(K);
  for (unsigned I = 0; I != K; ++I)
    Server.submit(requestLine(I, Heavy, "{\"quicktests\": false}"),
                  [&, I](std::string R) {
                    std::lock_guard<std::mutex> Lock(Mu);
                    Resps[I] = std::move(R);
                    ++Done;
                    CV.notify_one();
                  });
  {
    std::unique_lock<std::mutex> Lock(Mu);
    CV.wait(Lock, [&] { return Done == K + 1; });
  }

  std::string First = resultBytes(Resps[0]);
  ASSERT_FALSE(First.empty());
  for (unsigned I = 1; I != K; ++I)
    EXPECT_EQ(resultBytes(Resps[I]), First) << "response " << I;

  std::string M = ask(Server, "{\"id\": 9, \"op\": \"metrics\"}");
  int64_t Analyses = counterOf(M, "omega_engine_analyses_total");
  int64_t Coalesced = counterOf(M, "omega_serve_requests_coalesced_total");
  int64_t Ok = counterOf(M, "omega_serve_analyze_ok_total");
  EXPECT_GT(Coalesced, 0);
  EXPECT_EQ(Analyses + Coalesced, Ok);
  EXPECT_EQ(Ok, int64_t(K + 1));
  Server.stop();
}

// With coalescing disabled, every request is its own solve: nothing
// coalesces and engine analyses equal analyze_ok.
TEST(Serve, CoalescingDisabledByConfig) {
  api::Server::Config Cfg = basicConfig(2);
  Cfg.MaxQueue = 64;
  Cfg.Coalesce = false;
  api::Server Server(Cfg);
  const std::string Source = kernels::corpus().front().Source;

  std::mutex Mu;
  std::condition_variable CV;
  unsigned Done = 0;
  constexpr unsigned K = 6;
  for (unsigned I = 0; I != K; ++I)
    Server.submit(requestLine(I, Source), [&](std::string) {
      std::lock_guard<std::mutex> Lock(Mu);
      ++Done;
      CV.notify_one();
    });
  {
    std::unique_lock<std::mutex> Lock(Mu);
    CV.wait(Lock, [&] { return Done == K; });
  }
  std::string M = ask(Server, "{\"id\": 9, \"op\": \"metrics\"}");
  EXPECT_EQ(counterOf(M, "omega_serve_requests_coalesced_total"), 0);
  EXPECT_EQ(counterOf(M, "omega_engine_analyses_total"),
            counterOf(M, "omega_serve_analyze_ok_total"));
  Server.stop();
}

// The metrics op with "reset": true answers with the pre-reset snapshot,
// then zeroes counters and histograms; a non-bool "reset" is rejected.
TEST(Serve, MetricsResetOp) {
  api::Server Server(basicConfig(1));
  const std::string Source = kernels::corpus().front().Source;
  ask(Server, requestLine(1, Source));

  std::string Pre =
      ask(Server, "{\"id\": 2, \"op\": \"metrics\", \"reset\": true}");
  EXPECT_EQ(counterOf(Pre, "omega_engine_analyses_total"), 1);
  EXPECT_GE(counterOf(Pre, "omega_serve_requests_total"), 2);

  std::string Post = ask(Server, "{\"id\": 3, \"op\": \"metrics\"}");
  EXPECT_EQ(counterOf(Post, "omega_engine_analyses_total"), 0);
  EXPECT_EQ(counterOf(Post, "omega_serve_analyze_ok_total"), 0);
  // The post-reset metrics request itself is the only one on record.
  EXPECT_EQ(counterOf(Post, "omega_serve_requests_total"), 1);

  EXPECT_EQ(errorCode(ask(
                Server, "{\"id\": 4, \"op\": \"metrics\", \"reset\": 1}")),
            "bad_request");
  Server.stop();
}

// The global result store survives a restart through the versioned
// checksummed --result-cache-file: the second server warm-starts and
// materializes every pair from the store, saving again is bit-identical,
// and a corrupted file degrades to a warned cold start -- never a wrong
// answer.
TEST(Serve, ResultStorePersistsAcrossRestart) {
  std::string Path = ::testing::TempDir() + "serve_test.resultstore";
  std::remove(Path.c_str());
  const std::string Source = kernels::corpus().front().Source;

  std::string First;
  {
    api::Server::Config Cfg = basicConfig(1);
    Cfg.ResultCacheFile = Path;
    api::Server Server(Cfg);
    EXPECT_NE(Server.startupNote().find("result store cold start"),
              std::string::npos)
        << Server.startupNote();
    std::string R1 = ask(Server, requestLine(1, Source));
    First = resultBytes(R1);
    ASSERT_FALSE(First.empty());
    EXPECT_EQ(statsOf(R1, "resultStoreHits"), 0);
    EXPECT_GT(statsOf(R1, "resultStoreMisses"), 0);
    Server.stop(); // persists the store
  }
  std::string Saved = readFileBytes(Path);
  ASSERT_FALSE(Saved.empty());

  {
    api::Server::Config Cfg = basicConfig(1);
    Cfg.ResultCacheFile = Path;
    api::Server Server(Cfg);
    EXPECT_NE(Server.startupNote().find("result store warm start"),
              std::string::npos)
        << Server.startupNote();
    EXPECT_GT(Server.resultStore().size(), 0u);
    std::string R2 = ask(Server, requestLine(2, Source));
    EXPECT_EQ(resultBytes(R2), First);
    EXPECT_GT(statsOf(R2, "resultStoreHits"), 0);
    EXPECT_EQ(statsOf(R2, "resultStoreMisses"), 0);
    Server.stop();
  }
  // Same population, same sorted dump: save -> load -> save is
  // bit-identical.
  EXPECT_EQ(readFileBytes(Path), Saved);

  // Corruption: truncate the file; the next server cold-starts with a
  // warning and still answers correctly from scratch.
  {
    std::ofstream Out(Path, std::ios::binary | std::ios::trunc);
    Out.write(Saved.data(),
              static_cast<std::streamsize>(Saved.size() / 2));
  }
  {
    api::Server::Config Cfg = basicConfig(1);
    Cfg.ResultCacheFile = Path;
    api::Server Server(Cfg);
    EXPECT_NE(Server.startupNote().find("result store cold start"),
              std::string::npos)
        << Server.startupNote();
    EXPECT_EQ(Server.resultStore().size(), 0u);
    EXPECT_EQ(resultBytes(ask(Server, requestLine(3, Source))), First);
    Server.stop();
  }
  std::remove(Path.c_str());
}

// Size-based access-log rotation: once the live file crosses the bound
// it is renamed to ".1" and a fresh file is started. Every record lands
// in exactly one of the two files, and each is a complete JSON line --
// flushed records are never torn.
TEST(Serve, AccessLogRotatesBySize) {
  std::string Path = ::testing::TempDir() + "serve_test.access.log";
  std::string Rolled = Path + ".1";
  std::remove(Path.c_str());
  std::remove(Rolled.c_str());

  api::Server::Config Cfg = basicConfig(1);
  Cfg.AccessLog = Path;
  Cfg.AccessLogMaxMB = 1;
  api::Server Server(Cfg);

  // Inflate each record with a ~120 KB session name: record 9 crosses
  // the 1 MB bound and rotates; records 10..13 land in the fresh file.
  const std::string Source = kernels::corpus().front().Source;
  std::string Session(120 * 1024, 's');
  constexpr unsigned N = 13;
  for (unsigned I = 0; I != N; ++I)
    ask(Server, "{\"id\": " + std::to_string(I) + ", \"session\": \"" +
                    Session + "\", \"source\": \"" +
                    api::json::escape(Source) + "\"}");
  Server.stop();

  std::ifstream Old(Rolled), Live(Path);
  ASSERT_TRUE(Old.is_open()) << "no rotation happened";
  ASSERT_TRUE(Live.is_open());
  unsigned Count = 0;
  for (std::ifstream *F : {&Old, &Live}) {
    std::string Line;
    while (std::getline(*F, Line)) {
      api::json::Value Doc;
      std::string Err;
      ASSERT_TRUE(api::json::parse(Line, Doc, Err)) << Err;
      const api::json::Value *S = Doc.get("session");
      ASSERT_NE(S, nullptr);
      EXPECT_EQ(S->asString(), Session);
      ++Count;
    }
  }
  EXPECT_EQ(Count, N);
  std::remove(Path.c_str());
  std::remove(Rolled.c_str());
}

// A warm server and a cold server produce identical result bytes (the
// determinism guarantee behind response caching across requests).
TEST(Serve, WarmAndColdServersAgree) {
  const std::string Source = kernels::corpus().front().Source;
  std::string First, Warm, Cold;
  {
    api::Server Server(basicConfig(2));
    First = resultBytes(ask(Server, requestLine(1, Source)));
    Warm = resultBytes(ask(Server, requestLine(2, Source)));
    Server.stop();
  }
  {
    api::Server Server(basicConfig(2));
    Cold = resultBytes(ask(Server, requestLine(3, Source)));
    Server.stop();
  }
  ASSERT_FALSE(First.empty());
  EXPECT_EQ(First, Warm);
  EXPECT_EQ(First, Cold);
}
