//===- tests/PresburgerTest.cpp -------------------------------------------===//
//
// Unit and property tests for the Presburger formula layer (Section 3.2).
//
//===----------------------------------------------------------------------===//

#include "presburger/Decision.h"

#include "omega/Gist.h"
#include "TestUtils.h"

#include <gtest/gtest.h>

using namespace omega;
using namespace omega::pres;

namespace {

/// Brute-force evaluation of a formula at an assignment; quantifiers range
/// over [Lo, Hi] only, so the formulas under test must bound their
/// quantified variables to that window themselves.
bool evalFormula(const Formula &F, std::vector<int64_t> &Point, int64_t Lo,
                 int64_t Hi) {
  switch (F.getKind()) {
  case Formula::Kind::True:
    return true;
  case Formula::Kind::False:
    return false;
  case Formula::Kind::AtomK: {
    const Atom &A = F.getAtom();
    int64_t Sum = A.Constant;
    for (const Term &T : A.Terms)
      Sum += T.second * Point[T.first];
    return A.Kind == ConstraintKind::EQ ? Sum == 0 : Sum >= 0;
  }
  case Formula::Kind::And:
    for (const Formula &C : F.children())
      if (!evalFormula(C, Point, Lo, Hi))
        return false;
    return true;
  case Formula::Kind::Or:
    for (const Formula &C : F.children())
      if (evalFormula(C, Point, Lo, Hi))
        return true;
    return false;
  case Formula::Kind::Not:
    return !evalFormula(F.children().front(), Point, Lo, Hi);
  case Formula::Kind::Exists:
  case Formula::Kind::Forall: {
    bool IsExists = F.getKind() == Formula::Kind::Exists;
    std::function<bool(unsigned)> Rec = [&](unsigned I) -> bool {
      if (I == F.boundVars().size())
        return evalFormula(F.children().front(), Point, Lo, Hi);
      for (int64_t X = Lo; X <= Hi; ++X) {
        Point[F.boundVars()[I]] = X;
        bool V = Rec(I + 1);
        if (V == IsExists)
          return IsExists;
      }
      return !IsExists;
    };
    return Rec(0);
  }
  }
  return false;
}

} // namespace

TEST(Presburger, AtomSatisfiability) {
  FormulaContext Ctx;
  VarId X = Ctx.addVar("x");
  Formula F = Formula::conj({Formula::geq({{X, 1}}, -3),   // x >= 3
                             Formula::leq({{X, 1}}, -5)}); // x <= 5... wait
  // leq({{x,1}}, -5) is x - 5 <= 0, i.e. x <= 5.
  EXPECT_EQ(isSatisfiable(F, Ctx), std::optional<bool>(true));

  Formula G = Formula::conj({Formula::geq({{X, 1}}, -6),  // x >= 6
                             Formula::leq({{X, 1}}, -5)}); // x <= 5
  EXPECT_EQ(isSatisfiable(G, Ctx), std::optional<bool>(false));
}

TEST(Presburger, NeqSplitsCorrectly) {
  FormulaContext Ctx;
  VarId X = Ctx.addVar("x");
  // 0 <= x <= 1 && x != 0 && x != 1 is unsatisfiable.
  Formula F = Formula::conj({
      Formula::geq({{X, 1}}, 0),
      Formula::leq({{X, 1}}, -1),
      Formula::neq({{X, 1}}, 0),
      Formula::neq({{X, 1}}, -1),
  });
  EXPECT_EQ(isSatisfiable(F, Ctx), std::optional<bool>(false));
}

TEST(Presburger, ForallExistsPattern) {
  // forall x: 0 <= x <= 100 implies exists y: 2y == x or 2y == x + 1.
  FormulaContext Ctx;
  VarId X = Ctx.addVar("x");
  VarId Y = Ctx.addVar("y");
  Formula Range = Formula::conj({Formula::geq({{X, 1}}, 0),
                                 Formula::leq({{X, 1}}, -100)});
  Formula Body = Formula::disj({Formula::eq({{Y, 2}, {X, -1}}, 0),
                                Formula::eq({{Y, 2}, {X, -1}}, -1)});
  Formula F = Formula::forall(
      {X}, Formula::implies(Range, Formula::exists({Y}, Body)));
  EXPECT_EQ(isValid(F, Ctx), std::optional<bool>(true));

  // Without the "+1" disjunct the claim fails for odd x.
  Formula Bad = Formula::forall(
      {X}, Formula::implies(
               Range, Formula::exists(
                          {Y}, Formula::eq({{Y, 2}, {X, -1}}, 0))));
  EXPECT_EQ(isValid(Bad, Ctx), std::optional<bool>(false));
}

TEST(Presburger, PaperImplicationForm) {
  // forall x: (exists y: p) => (exists z: q) with
  // p: x == 2y, 0 <= y <= 10   (x even in [0, 20])
  // q: x == z, 0 <= z <= 20    (x in [0, 20])
  FormulaContext Ctx;
  VarId X = Ctx.addVar("x");
  VarId Y = Ctx.addVar("y");
  VarId Z = Ctx.addVar("z");
  Formula P = Formula::conj({Formula::eq({{X, 1}, {Y, -2}}, 0),
                             Formula::geq({{Y, 1}}, 0),
                             Formula::leq({{Y, 1}}, -10)});
  Formula Q = Formula::conj({Formula::eq({{X, 1}, {Z, -1}}, 0),
                             Formula::geq({{Z, 1}}, 0),
                             Formula::leq({{Z, 1}}, -20)});
  Formula F = Formula::forall(
      {X}, Formula::implies(Formula::exists({Y}, P),
                            Formula::exists({Z}, Q)));
  EXPECT_EQ(isValid(F, Ctx), std::optional<bool>(true));

  // The converse fails (odd x in [0,20] satisfy q but not p).
  Formula G = Formula::forall(
      {X}, Formula::implies(Formula::exists({Z}, Q),
                            Formula::exists({Y}, P)));
  EXPECT_EQ(isValid(G, Ctx), std::optional<bool>(false));
}

TEST(Presburger, TautologyDisjunctionForm) {
  // forall x: not p or q with p: x >= 5, q: x >= 3 -- a tautology.
  FormulaContext Ctx;
  VarId X = Ctx.addVar("x");
  Formula F = Formula::forall(
      {X}, Formula::disj({Formula::negate(Formula::geq({{X, 1}}, -5)),
                          Formula::geq({{X, 1}}, -3)}));
  EXPECT_EQ(isValid(F, Ctx), std::optional<bool>(true));

  Formula G = Formula::forall(
      {X}, Formula::disj({Formula::negate(Formula::geq({{X, 1}}, -3)),
                          Formula::geq({{X, 1}}, -5)}));
  EXPECT_EQ(isValid(G, Ctx), std::optional<bool>(false));
}

TEST(Presburger, StrideNegation) {
  // "x is even or x is odd" is valid; needs negation of a stride.
  FormulaContext Ctx;
  VarId X = Ctx.addVar("x");
  VarId Y = Ctx.addVar("y");
  Formula Even = Formula::exists({Y}, Formula::eq({{X, 1}, {Y, -2}}, 0));
  Formula Odd = Formula::exists({Y}, Formula::eq({{X, 1}, {Y, -2}}, -1));
  EXPECT_EQ(isValid(Formula::disj({Even, Odd}), Ctx),
            std::optional<bool>(true));
  EXPECT_EQ(isValid(Even, Ctx), std::optional<bool>(false));
}

TEST(Presburger, NNFRemovesNots) {
  FormulaContext Ctx;
  VarId X = Ctx.addVar("x");
  Formula F = Formula::negate(Formula::conj(
      {Formula::geq({{X, 1}}, 0),
       Formula::negate(Formula::eq({{X, 1}}, -2))}));
  Formula N = F.toNNF();
  std::function<void(const Formula &)> CheckNoNot = [&](const Formula &G) {
    EXPECT_NE(G.getKind(), Formula::Kind::Not);
    for (const Formula &C : G.children())
      CheckNoNot(C);
  };
  CheckNoNot(N);
}

TEST(Presburger, ToStringReadable) {
  FormulaContext Ctx;
  VarId X = Ctx.addVar("x");
  VarId Y = Ctx.addVar("y");
  Formula F = Formula::exists(
      {Y}, Formula::conj({Formula::eq({{X, 1}, {Y, -2}}, 0),
                          Formula::geq({{Y, 1}}, 0)}));
  EXPECT_EQ(F.toString(Ctx), "exists y: (x - 2*y = 0 && y >= 0)");
}

//===----------------------------------------------------------------------===//
// Property tests against brute-force evaluation.
//===----------------------------------------------------------------------===//

namespace {

struct FormulaPropertyParam {
  unsigned Trials;
  unsigned Seed;
  int64_t Box;
};

class FormulaProperty : public ::testing::TestWithParam<FormulaPropertyParam> {
protected:
  /// Random quantifier-free formula over vars [0, NumVars) with small
  /// coefficients; atoms keep everything inside the box.
  Formula randomBody(std::mt19937 &Rng, const std::vector<VarId> &Vars,
                     int64_t Box, unsigned Depth) {
    std::uniform_int_distribution<int> Shape(0, Depth == 0 ? 1 : 3);
    std::uniform_int_distribution<int64_t> Coeff(-2, 2);
    std::uniform_int_distribution<int64_t> Const(-2 * Box, 2 * Box);
    switch (Shape(Rng)) {
    case 0:
    case 1: {
      std::vector<Term> Terms;
      for (VarId V : Vars)
        Terms.push_back({V, Coeff(Rng)});
      bool IsEq = std::uniform_int_distribution<int>(0, 3)(Rng) == 0;
      return IsEq ? Formula::eq(std::move(Terms), Const(Rng))
                  : Formula::geq(std::move(Terms), Const(Rng));
    }
    case 2:
      return Formula::conj({randomBody(Rng, Vars, Box, Depth - 1),
                            randomBody(Rng, Vars, Box, Depth - 1)});
    default:
      return Formula::disj({randomBody(Rng, Vars, Box, Depth - 1),
                            randomBody(Rng, Vars, Box, Depth - 1)});
    }
  }

  /// Bounds var to [-Box, Box] as a formula.
  Formula boxed(VarId V, int64_t Box) {
    return Formula::conj(
        {Formula::geq({{V, 1}}, Box), Formula::geq({{V, -1}}, Box)});
  }
};

} // namespace

TEST_P(FormulaProperty, QuantifierFreeSatisfiability) {
  const FormulaPropertyParam &Param = GetParam();
  std::mt19937 Rng(Param.Seed);
  for (unsigned T = 0; T != Param.Trials; ++T) {
    FormulaContext Ctx;
    std::vector<VarId> Vars = {Ctx.addVar("a"), Ctx.addVar("b")};
    Formula Body = Formula::conj({boxed(Vars[0], Param.Box),
                                  boxed(Vars[1], Param.Box),
                                  randomBody(Rng, Vars, Param.Box, 2)});
    std::optional<bool> Actual = isSatisfiable(Body, Ctx);
    ASSERT_TRUE(Actual.has_value());

    std::vector<int64_t> Point(Ctx.getNumVars(), 0);
    bool Expected = false;
    for (int64_t A = -Param.Box; A <= Param.Box && !Expected; ++A)
      for (int64_t B = -Param.Box; B <= Param.Box && !Expected; ++B) {
        Point[Vars[0]] = A;
        Point[Vars[1]] = B;
        Expected = evalFormula(Body, Point, -Param.Box, Param.Box);
      }
    ASSERT_EQ(*Actual, Expected)
        << "trial " << T << ": " << Body.toString(Ctx);
  }
}

TEST_P(FormulaProperty, ExistsForallValidity) {
  const FormulaPropertyParam &Param = GetParam();
  std::mt19937 Rng(Param.Seed + 500);
  for (unsigned T = 0; T != Param.Trials; ++T) {
    FormulaContext Ctx;
    VarId X = Ctx.addVar("x");
    VarId Y = Ctx.addVar("y");
    // forall x: boxed(x) => exists y: boxed(y) && body(x, y).
    Formula Body = randomBody(Rng, {X, Y}, Param.Box, 2);
    Formula F = Formula::forall(
        {X},
        Formula::implies(
            boxed(X, Param.Box),
            Formula::exists({Y}, Formula::conj({boxed(Y, Param.Box),
                                                std::move(Body)}))));
    std::optional<bool> Actual = isValid(F, Ctx);
    ASSERT_TRUE(Actual.has_value()) << F.toString(Ctx);

    std::vector<int64_t> Point(Ctx.getNumVars(), 0);
    bool Expected = evalFormula(F, Point, -Param.Box, Param.Box);
    ASSERT_EQ(*Actual, Expected)
        << "trial " << T << ": " << F.toString(Ctx);
  }
}

INSTANTIATE_TEST_SUITE_P(
    RandomFormulas, FormulaProperty,
    ::testing::Values(FormulaPropertyParam{120, 91, 4},
                      FormulaPropertyParam{120, 92, 3},
                      FormulaPropertyParam{80, 93, 5}));

//===----------------------------------------------------------------------===//
// Equivalence and assignment extraction.
//===----------------------------------------------------------------------===//

TEST(Presburger, EquivalenceBasics) {
  FormulaContext Ctx;
  VarId X = Ctx.addVar("x");
  // 2 <= x <= 4 is equivalent to (x = 2 or x = 3 or x = 4).
  Formula Range = Formula::conj(
      {Formula::geq({{X, 1}}, -2), Formula::leq({{X, 1}}, -4)});
  Formula Cases = Formula::disj({Formula::eq({{X, 1}}, -2),
                                 Formula::eq({{X, 1}}, -3),
                                 Formula::eq({{X, 1}}, -4)});
  EXPECT_EQ(isEquivalent(Range, Cases, Ctx), std::optional<bool>(true));

  Formula Narrower = Formula::conj(
      {Formula::geq({{X, 1}}, -2), Formula::leq({{X, 1}}, -3)});
  EXPECT_EQ(isEquivalent(Range, Narrower, Ctx), std::optional<bool>(false));
}

TEST(Presburger, EquivalenceWithQuantifiers) {
  FormulaContext Ctx;
  VarId X = Ctx.addVar("x");
  VarId Y = Ctx.addVar("y");
  // "x even" expressed with two different witnesses.
  Formula EvenA = Formula::exists({Y}, Formula::eq({{X, 1}, {Y, -2}}, 0));
  Formula EvenB = Formula::exists(
      {Y}, Formula::eq({{X, 1}, {Y, -2}}, -4)); // x = 2y + 4: still even
  EXPECT_EQ(isEquivalent(EvenA, EvenB, Ctx), std::optional<bool>(true));
}

TEST(Presburger, FindAssignmentReturnsWitness) {
  FormulaContext Ctx;
  VarId X = Ctx.addVar("x");
  VarId Y = Ctx.addVar("y");
  Formula F = Formula::conj({Formula::eq({{X, 1}, {Y, 1}}, -9),
                             Formula::geq({{X, 1}}, -4),
                             Formula::leq({{X, 1}}, -6)});
  auto Result = findAssignment(F, Ctx);
  ASSERT_TRUE(Result.has_value());
  ASSERT_TRUE(Result->has_value());
  const std::vector<int64_t> &Sol = **Result;
  EXPECT_EQ(Sol[X] + Sol[Y], 9);
  EXPECT_GE(Sol[X], 4);
  EXPECT_LE(Sol[X], 6);

  Formula Unsat = Formula::conj(
      {Formula::geq({{X, 1}}, -4), Formula::leq({{X, 1}}, -2)});
  auto None = findAssignment(Unsat, Ctx);
  ASSERT_TRUE(None.has_value());
  EXPECT_FALSE(None->has_value());
}

//===----------------------------------------------------------------------===//
// Cross-layer consistency: the formula layer and the direct gist-based
// implication must agree.
//===----------------------------------------------------------------------===//

TEST(Presburger, ImplicationAgreesWithOmegaImplies) {
  std::mt19937 Rng(321);
  for (unsigned T = 0; T != 80; ++T) {
    FormulaContext Ctx;
    VarId A = Ctx.addVar("a");
    VarId B = Ctx.addVar("b");

    std::uniform_int_distribution<int64_t> Coeff(-2, 2);
    std::uniform_int_distribution<int64_t> Const(-6, 6);
    auto randomRows = [&](Problem &P, unsigned N) {
      for (unsigned I = 0; I != N; ++I) {
        Constraint &Row = P.addRow(ConstraintKind::GEQ);
        Row.setCoeff(A, Coeff(Rng));
        Row.setCoeff(B, Coeff(Rng));
        Row.setConstant(Const(Rng));
      }
      // Box so both layers see the same bounded world.
      for (VarId V : {A, B}) {
        P.addGEQ({{V, 1}}, 6);
        P.addGEQ({{V, -1}}, 6);
      }
    };

    Problem PQ = Ctx.makeProblem();
    randomRows(PQ, 3);
    Problem PP = Ctx.makeProblem();
    randomRows(PP, 2);

    bool Direct = omega::implies(PQ, PP);

    auto toFormula = [&](const Problem &P) {
      std::vector<Formula> Atoms;
      for (const Constraint &Row : P.constraints()) {
        std::vector<Term> Terms;
        for (VarId V : {A, B})
          if (Row.getCoeff(V) != 0)
            Terms.push_back({V, Row.getCoeff(V)});
        Atoms.push_back(Row.isEquality()
                            ? Formula::eq(Terms, Row.getConstant())
                            : Formula::geq(Terms, Row.getConstant()));
      }
      return Formula::conj(std::move(Atoms));
    };
    std::optional<bool> ViaFormulas = isValid(
        Formula::forall({A, B},
                        Formula::implies(toFormula(PQ), toFormula(PP))),
        Ctx);
    ASSERT_TRUE(ViaFormulas.has_value());
    EXPECT_EQ(*ViaFormulas, Direct)
        << "q = " << PQ.toString() << "\np = " << PP.toString();
  }
}
