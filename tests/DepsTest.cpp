//===- tests/DepsTest.cpp -------------------------------------------------===//
//
// Unit tests for memory-based dependence computation (the "standard
// analysis" layer).
//
//===----------------------------------------------------------------------===//

#include "deps/DependenceAnalysis.h"

#include "omega/Satisfiability.h"

#include <gtest/gtest.h>

using namespace omega;
using namespace omega::deps;
using omega::ir::Access;
using omega::ir::AnalyzedProgram;
using omega::ir::analyzeSource;

namespace {

const Access *findAccess(const AnalyzedProgram &AP, const std::string &Array,
                         bool IsWrite, unsigned Stmt = 0) {
  for (const Access &A : AP.Accesses)
    if (A.Array == Array && A.IsWrite == IsWrite &&
        (Stmt == 0 || A.StmtLabel == Stmt))
      return &A;
  return nullptr;
}

std::string splitsToString(const Dependence &Dep) {
  std::string Out;
  for (const DepSplit &S : Dep.Splits) {
    if (!Out.empty())
      Out += " ";
    Out += (S.Level == 0 ? std::string("indep") :
                           "L" + std::to_string(S.Level)) +
           S.dirToString();
  }
  return Out;
}

} // namespace

TEST(Deps, SimpleRecurrence) {
  // Example 3's inner pattern: a(L2) := a(L2-1) in a rectangular nest.
  AnalyzedProgram AP = analyzeSource("symbolic n, m;\n"
                                     "for L1 := 1 to n do\n"
                                     "  for L2 := 2 to m do\n"
                                     "    a(L2) := a(L2-1);\n"
                                     "  endfor\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  const Access *W = findAccess(AP, "a", true);
  const Access *R = findAccess(AP, "a", false);
  ASSERT_TRUE(W && R);

  DependenceAnalysis DA(AP);
  auto Flow = DA.computeDependence(*W, *R, DepKind::Flow);
  ASSERT_TRUE(Flow.has_value());
  // Unrefined: carried at L1 with (+,1) and at L2 with (0,1); together the
  // paper's (0+,1).
  EXPECT_EQ(splitsToString(*Flow), "L1(+,1) L2(0,1)");
}

TEST(Deps, AntiDependenceSameStatement) {
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := 1 to n do\n"
                                     "  a(i) := a(i);\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  const Access *W = findAccess(AP, "a", true);
  const Access *R = findAccess(AP, "a", false);
  DependenceAnalysis DA(AP);

  // Read before write in the same instance: loop-independent anti dep.
  auto Anti = DA.computeDependence(*R, *W, DepKind::Anti);
  ASSERT_TRUE(Anti.has_value());
  EXPECT_EQ(splitsToString(*Anti), "indep(0)");

  // No flow dependence: the write never reaches a later read.
  auto Flow = DA.computeDependence(*W, *R, DepKind::Flow);
  EXPECT_FALSE(Flow.has_value());
}

TEST(Deps, CoupledSubscripts) {
  // Example 6: a(L1-L2) := a(L1-L2): distances are coupled (d1 == d2).
  AnalyzedProgram AP = analyzeSource("symbolic n, m;\n"
                                     "for L1 := 1 to n do\n"
                                     "  for L2 := 2 to m do\n"
                                     "    a(L1-L2) := a(L1-L2);\n"
                                     "  endfor\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  const Access *W = findAccess(AP, "a", true);
  const Access *R = findAccess(AP, "a", false);
  DependenceAnalysis DA(AP);
  auto Flow = DA.computeDependence(*W, *R, DepKind::Flow);
  ASSERT_TRUE(Flow.has_value());
  // Only the L1-carried split exists, with d1 == d2 (both "+").
  ASSERT_EQ(Flow->Splits.size(), 1u);
  EXPECT_EQ(Flow->Splits[0].Level, 1u);
  EXPECT_EQ(Flow->Splits[0].dirToString(), "(+,+)");
}

TEST(Deps, SelfOutputDependence) {
  AnalyzedProgram AP = analyzeSource("symbolic n, m;\n"
                                     "for i := 1 to n do\n"
                                     "  for j := 1 to m do\n"
                                     "    a(j) := 0;\n"
                                     "  endfor\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  const Access *W = findAccess(AP, "a", true);
  DependenceAnalysis DA(AP);
  auto Out = DA.computeDependence(*W, *W, DepKind::Output);
  ASSERT_TRUE(Out.has_value());
  // Carried by i with equal j (distance (+, 0)).
  ASSERT_EQ(Out->Splits.size(), 1u);
  EXPECT_EQ(Out->Splits[0].dirToString(), "(+,0)");
}

TEST(Deps, DisjointLoopsTextualOrder) {
  // Example 1 structure: write loop then read loop, no common loops.
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for L1 := n to n+10 do\n"
                                     "  a(L1) := 0;\n"
                                     "endfor\n"
                                     "for L1 := n to n+20 do\n"
                                     "  x(L1) := a(L1);\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  const Access *W = findAccess(AP, "a", true);
  const Access *R = findAccess(AP, "a", false);
  DependenceAnalysis DA(AP);
  auto Flow = DA.computeDependence(*W, *R, DepKind::Flow);
  ASSERT_TRUE(Flow.has_value());
  ASSERT_EQ(Flow->Splits.size(), 1u);
  EXPECT_EQ(Flow->Splits[0].Level, 0u);
  EXPECT_TRUE(Flow->Splits[0].Dir.empty());

  // No dependence in the reverse direction (read runs after the writes).
  EXPECT_FALSE(DA.computeDependence(*R, *W, DepKind::Anti).has_value());
}

TEST(Deps, SubscriptMismatchNoDependence) {
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := 1 to n do\n"
                                     "  a(2*i) := a(2*i+1);\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  const Access *W = findAccess(AP, "a", true);
  const Access *R = findAccess(AP, "a", false);
  DependenceAnalysis DA(AP);
  // Even locations written, odd locations read: no flow either way.
  EXPECT_FALSE(DA.computeDependence(*W, *R, DepKind::Flow).has_value());
  EXPECT_FALSE(DA.computeDependence(*R, *W, DepKind::Anti).has_value());
}

TEST(Deps, SymbolicBoundsAffectFeasibility) {
  // Write loop covers [n, n+10], read loop [n+15, n+20]: no overlap.
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := n to n+10 do\n"
                                     "  a(i) := 0;\n"
                                     "endfor\n"
                                     "for i := n+15 to n+20 do\n"
                                     "  x(i) := a(i);\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  const Access *W = findAccess(AP, "a", true);
  const Access *R = findAccess(AP, "a", false);
  DependenceAnalysis DA(AP);
  EXPECT_FALSE(DA.computeDependence(*W, *R, DepKind::Flow).has_value());
}

TEST(Deps, StrideLoopsInteract) {
  // Writes to even locations (stride 2), reads every location: flow only
  // to even reads -- the dependence exists.
  AnalyzedProgram AP = analyzeSource("for i := 0 to 20 step 2 do\n"
                                     "  a(i) := 0;\n"
                                     "endfor\n"
                                     "for j := 0 to 20 do\n"
                                     "  x(j) := a(j);\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  const Access *W = findAccess(AP, "a", true);
  const Access *R = findAccess(AP, "a", false);
  DependenceAnalysis DA(AP);
  EXPECT_TRUE(DA.computeDependence(*W, *R, DepKind::Flow).has_value());

  // Writes at odd stride offsets never meet reads at even-only positions.
  AnalyzedProgram AP2 = analyzeSource("for i := 1 to 19 step 2 do\n"
                                      "  a(i) := 0;\n"
                                      "endfor\n"
                                      "for j := 0 to 20 step 2 do\n"
                                      "  x(j) := a(j);\n"
                                      "endfor\n");
  ASSERT_TRUE(AP2.ok());
  const Access *W2 = findAccess(AP2, "a", true);
  const Access *R2 = findAccess(AP2, "a", false);
  DependenceAnalysis DA2(AP2);
  EXPECT_FALSE(DA2.computeDependence(*W2, *R2, DepKind::Flow).has_value());
}

TEST(Deps, NegativeStepLoopDependences) {
  // for k := n to 1 step -1: a(k) := a(k+1): reads the value written by
  // the previous (larger-k) iteration: a carried flow dependence.
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for k := n to 1 step -1 do\n"
                                     "  a(k) := a(k+1);\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  const Access *W = findAccess(AP, "a", true);
  const Access *R = findAccess(AP, "a", false);
  DependenceAnalysis DA(AP);
  auto Flow = DA.computeDependence(*W, *R, DepKind::Flow);
  ASSERT_TRUE(Flow.has_value());
  ASSERT_EQ(Flow->Splits.size(), 1u);
  EXPECT_EQ(Flow->Splits[0].Level, 1u);
  // In normalized (ascending) iteration counts the distance is 1.
  EXPECT_EQ(Flow->Splits[0].dirToString(), "(1)");

  // a(k) := a(k-1) in a downward loop is an anti pattern instead: the
  // "previous" value is only read after it was overwritten -- no flow.
  AnalyzedProgram AP2 = analyzeSource("symbolic n;\n"
                                      "for k := n to 1 step -1 do\n"
                                      "  a(k) := a(k-1);\n"
                                      "endfor\n");
  ASSERT_TRUE(AP2.ok());
  const Access *W2 = findAccess(AP2, "a", true);
  const Access *R2 = findAccess(AP2, "a", false);
  DependenceAnalysis DA2(AP2);
  EXPECT_FALSE(DA2.computeDependence(*W2, *R2, DepKind::Flow).has_value());
  EXPECT_TRUE(DA2.computeDependence(*R2, *W2, DepKind::Anti).has_value());
}

TEST(Deps, NonAffineSubscriptConservative) {
  // a(i*j) references: the term is opaque, so a dependence is assumed.
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := 1 to n do\n"
                                     "  for j := 1 to n do\n"
                                     "    a(i*j) := a(i*j) + 1;\n"
                                     "  endfor\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  const Access *W = findAccess(AP, "a", true);
  const Access *R = findAccess(AP, "a", false);
  DependenceAnalysis DA(AP);
  EXPECT_TRUE(DA.computeDependence(*W, *R, DepKind::Flow).has_value());
}

TEST(Deps, ComputeAllDependencesCounts) {
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := 2 to n do\n"
                                     "  a(i) := a(i-1);\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  DependenceAnalysis DA(AP);
  std::vector<Dependence> All = DA.computeAllDependences();
  // flow a(i)->a(i-1), anti a(i-1)->a(i)? read a(i-1) then write a(i):
  // write overwrites a location previously read two iterations later?
  // a(i-1) read at iteration i; a(i) written at iteration i-1... anti
  // means read before write of same location: read a(i-1)@i, write
  // a(j)@j with j == i-1 > ... j > i impossible since j == i-1 < i. But
  // read@i of location i-1, write@i-1 of location i-1 happens EARLIER, so
  // no anti. Self-output: a(i) vs a(i) same location only when i == i'.
  unsigned Flows = 0, Antis = 0, Outputs = 0;
  for (const Dependence &D : All) {
    Flows += D.Kind == DepKind::Flow;
    Antis += D.Kind == DepKind::Anti;
    Outputs += D.Kind == DepKind::Output;
  }
  EXPECT_EQ(Flows, 1u);
  EXPECT_EQ(Antis, 0u);
  EXPECT_EQ(Outputs, 0u);
}
