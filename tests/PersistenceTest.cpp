//===- tests/PersistenceTest.cpp - QueryCache save/load contract ----------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
// The warm-start file contract: save -> load -> save round-trips
// bit-identically, canonical keys are stable across engine lifetimes (a
// warm-started engine re-misses nothing), and a corrupted file is
// rejected into a cold start -- never into wrong answers.
//
//===----------------------------------------------------------------------===//

#include "engine/DependenceEngine.h"
#include "kernels/Kernels.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

using namespace omega;

namespace {

/// Analyzes the first few corpus kernels on \p Engine (warming its cache)
/// and returns the number analyzed.
unsigned warm(engine::DependenceEngine &Engine, unsigned MaxKernels = 5) {
  unsigned Analyzed = 0;
  for (const kernels::Kernel &K : kernels::corpus()) {
    ir::AnalyzedProgram AP = ir::analyzeSource(K.Source);
    if (!AP.ok())
      continue;
    (void)Engine.analyze(AP);
    if (++Analyzed == MaxKernels)
      break;
  }
  return Analyzed;
}

std::string saved(QueryCache &Cache) {
  std::ostringstream Out(std::ios::binary);
  EXPECT_TRUE(Cache.save(Out));
  return Out.str();
}

engine::AnalysisRequest cachedSerialRequest() {
  engine::AnalysisRequest Req;
  Req.Jobs = 1;
  Req.UseQueryCache = true;
  return Req;
}

} // namespace

// save -> load -> save must be byte-identical: entries are emitted sorted
// by key, so the file is independent of hash-map iteration order.
TEST(Persistence, RoundTripIsBitIdentical) {
  engine::DependenceEngine Engine(cachedSerialRequest());
  ASSERT_GT(warm(Engine), 0u);
  ASSERT_NE(Engine.cache(), nullptr);
  ASSERT_GT(Engine.cache()->size(), 0u);

  std::string First = saved(*Engine.cache());
  ASSERT_FALSE(First.empty());

  QueryCache Restored;
  std::istringstream In(First, std::ios::binary);
  std::string Err;
  ASSERT_TRUE(Restored.load(In, Err)) << Err;
  EXPECT_EQ(saved(Restored), First);
}

// Cache keys are derived purely from the problems, so two fresh engines
// given the same programs persist the same bytes -- which is what makes a
// warm-start file from one server lifetime valid in the next.
TEST(Persistence, KeysAreStableAcrossEngineLifetimes) {
  engine::DependenceEngine A(cachedSerialRequest());
  engine::DependenceEngine B(cachedSerialRequest());
  ASSERT_GT(warm(A), 0u);
  ASSERT_GT(warm(B), 0u);
  EXPECT_EQ(saved(*A.cache()), saved(*B.cache()));
}

// A warm-started engine answers repeat queries from the loaded entries
// and returns the exact structural result a cold engine computes.
TEST(Persistence, WarmStartHitsAndMatchesColdResults) {
  engine::DependenceEngine Cold(cachedSerialRequest());
  ir::AnalyzedProgram AP = ir::analyzeSource(kernels::example1());
  ASSERT_TRUE(AP.ok());
  engine::AnalysisResult ColdResult = Cold.analyze(AP);
  std::string File = saved(*Cold.cache());

  engine::DependenceEngine Warm(cachedSerialRequest());
  std::istringstream In(File, std::ios::binary);
  std::string Err;
  ASSERT_TRUE(Warm.cache()->load(In, Err)) << Err;
  engine::AnalysisResult WarmResult = Warm.analyze(AP);

  EXPECT_EQ(ColdResult.liveFlowTable(), WarmResult.liveFlowTable());
  EXPECT_EQ(ColdResult.deadFlowTable(), WarmResult.deadFlowTable());
  EXPECT_EQ(WarmResult.Cache.SatMisses, 0u)
      << "a warm start must re-miss nothing example1 already answered";
  EXPECT_GT(WarmResult.Cache.SatHits, 0u);
}

// Corruption in any region -- magic, version, payload, checksum, length
// fields, truncation -- must be rejected, leaving the cache empty (cold
// start), and analysis afterwards still produces correct results.
TEST(Persistence, CorruptFilesAreRejectedToColdStart) {
  engine::DependenceEngine Engine(cachedSerialRequest());
  ir::AnalyzedProgram AP = ir::analyzeSource(kernels::example1());
  ASSERT_TRUE(AP.ok());
  engine::AnalysisResult Expect = Engine.analyze(AP);
  std::string Good = saved(*Engine.cache());
  ASSERT_GT(Good.size(), 24u);

  std::vector<std::pair<const char *, std::string>> Corruptions;
  std::string T = Good;
  T[0] = 'X'; // magic
  Corruptions.push_back({"bad magic", T});
  T = Good;
  T[4] = static_cast<char>(T[4] + 1); // version
  Corruptions.push_back({"bad version", T});
  T = Good;
  T[Good.size() / 2] = static_cast<char>(T[Good.size() / 2] ^ 0x5a);
  Corruptions.push_back({"payload bit flip", T});
  T = Good;
  T.back() = static_cast<char>(T.back() ^ 0x01);
  Corruptions.push_back({"checksum flip", T});
  Corruptions.push_back({"truncated", Good.substr(0, Good.size() - 9)});
  Corruptions.push_back({"empty", std::string()});
  Corruptions.push_back({"trailing garbage", Good + "zzzz"});

  for (const auto &[Name, Bytes] : Corruptions) {
    QueryCache Victim;
    std::istringstream In(Bytes, std::ios::binary);
    std::string Err;
    EXPECT_FALSE(Victim.load(In, Err)) << Name;
    EXPECT_FALSE(Err.empty()) << Name;
    EXPECT_EQ(Victim.size(), 0u) << Name << ": must degrade to cold start";

    // Cold-started analysis is still correct.
    engine::AnalysisRequest Req = cachedSerialRequest();
    Req.SharedCache = &Victim;
    engine::DependenceEngine Recovered(Req);
    engine::AnalysisResult R = Recovered.analyze(AP);
    EXPECT_EQ(Expect.liveFlowTable(), R.liveFlowTable()) << Name;
    EXPECT_EQ(Expect.deadFlowTable(), R.deadFlowTable()) << Name;
  }

  // And the untouched file still loads.
  QueryCache Fine;
  std::istringstream In(Good, std::ios::binary);
  std::string Err;
  EXPECT_TRUE(Fine.load(In, Err)) << Err;
  EXPECT_GT(Fine.size(), 0u);
}

// load() replaces earlier contents (the persisted set, nothing else) and
// snapshots never persist: a loaded cache holds only sat/gist entries.
TEST(Persistence, LoadReplacesAndSnapshotsStayInMemory) {
  engine::DependenceEngine Engine(cachedSerialRequest());
  ASSERT_GT(warm(Engine), 0u);
  QueryCache &Cache = *Engine.cache();
  std::size_t Live = Cache.size();
  std::string File = saved(Cache);

  QueryCache Other;
  std::istringstream In1(File, std::ios::binary);
  std::string Err;
  ASSERT_TRUE(Other.load(In1, Err)) << Err;
  std::size_t Persisted = Other.size();
  // The engine's cache also holds shared snapshots; those are in-memory
  // only, so the persisted entry count is strictly smaller.
  EXPECT_LT(Persisted, Live);
  EXPECT_GT(Persisted, 0u);

  // Re-loading on top of existing contents replaces, not merges.
  std::istringstream In2(File, std::ios::binary);
  ASSERT_TRUE(Other.load(In2, Err)) << Err;
  EXPECT_EQ(Other.size(), Persisted);
}
