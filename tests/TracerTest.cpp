//===- tests/TracerTest.cpp - Observability layer contracts ---------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
// The tracer's three contracts: a disabled tracer is invisible (no events,
// no allocations on the hot path); span nesting mirrors the call structure
// of the decision procedures; and the merged event stream is independent
// of the worker count.
//
//===----------------------------------------------------------------------===//

#include "calc/Calc.h"
#include "engine/DependenceEngine.h"
#include "kernels/Kernels.h"
#include "obs/Trace.h"
#include "omega/Gist.h"
#include "omega/Satisfiability.h"
#include "support/SmallCoeffVector.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace omega;

namespace {

/// A small query pair exercising gist -> sat -> FM nesting: P has the
/// redundant bound i <= 20 relative to Given's i <= 10.
struct GistFixture {
  Problem P, Given;
  GistFixture() {
    VarId I = P.addVar("i");
    P.addGEQ({{I, 1}}, 0);    // i >= 0
    P.addGEQ({{I, -1}}, 20);  // i <= 20
    VarId J = Given.addVar("i");
    Given.addGEQ({{J, 1}}, 0);  // i >= 0
    Given.addGEQ({{J, -1}}, 10); // i <= 10
  }
};

} // namespace

// With no tracer attached, the instrumented entry points record nothing
// and allocate nothing: the same thread-local-counter trick that pins
// SmallCoeffVector's zero-allocation property pins the tracer's
// zero-overhead claim.
TEST(Tracer, DisabledTracerRecordsNothing) {
  OmegaContext Ctx;
  ASSERT_EQ(Ctx.Trace, nullptr);

  Problem P;
  VarId X = P.addVar("x");
  VarId Y = P.addVar("y");
  P.addGEQ({{X, 11}, {Y, 13}}, -27);
  P.addGEQ({{X, -11}, {Y, -13}}, 45);
  P.addGEQ({{X, 7}, {Y, -9}}, 10);
  P.addGEQ({{X, -7}, {Y, 9}}, 4);

  // Warm anything lazily initialized, then measure.
  (void)isSatisfiable(P, SatOptions(), Ctx);

  uint64_t EventsBefore = obs::TraceBuffer::eventsRecordedThisThread();
  uint64_t AllocsBefore = SmallCoeffVector::heapAllocationsThisThread();
  EXPECT_FALSE(isSatisfiable(P, SatOptions(), Ctx));
  EXPECT_EQ(obs::TraceBuffer::eventsRecordedThisThread(), EventsBefore);
  EXPECT_EQ(SmallCoeffVector::heapAllocationsThisThread(), AllocsBefore);
}

// An attached tracer records spans whose nesting mirrors the call
// structure: the gist entry is the single root, everything else nests
// strictly inside it, and parent/child time accounting is consistent.
TEST(Tracer, SpanNestingMatchesCallStructure) {
  obs::Tracer T;
  OmegaContext Ctx;
  Ctx.Trace = &T.registerBuffer("test", &Ctx.Stats);

  GistFixture F;
  Problem G = gist(F.P, F.Given, GistOptions(), Ctx);
  Ctx.Trace = nullptr;
  EXPECT_EQ(G.constraints().size(), 0u) << "Given implies P";

  const std::vector<obs::TraceEvent> Events = T.mergedEvents();
  ASSERT_FALSE(Events.empty());
  EXPECT_EQ(Events.front().Kind, obs::SpanKind::Gist);
  EXPECT_EQ(Events.front().Depth, 0u);

  // All other events happened inside the gist call.
  unsigned SatSpans = 0;
  for (std::size_t I = 1; I != Events.size(); ++I) {
    EXPECT_GE(Events[I].Depth, 1u) << "event " << I << " escaped the root";
    if (Events[I].Kind == obs::SpanKind::Sat)
      ++SatSpans;
  }
  EXPECT_GT(SatSpans, 0u) << "gist never consulted the sat procedure";
  EXPECT_EQ(SatSpans, Ctx.Stats.SatisfiabilityCalls)
      << "every isSatisfiable call records exactly one Sat span";

  // Reconstruct the nesting from recorded depths (events are appended in
  // begin order) and check each child lies within its parent's interval
  // and that ChildNs sums the direct children exactly.
  std::vector<std::size_t> Stack;
  std::vector<uint64_t> ChildSum(Events.size(), 0);
  for (std::size_t I = 0; I != Events.size(); ++I) {
    const obs::TraceEvent &E = Events[I];
    while (!Stack.empty() && Events[Stack.back()].Depth >= E.Depth)
      Stack.pop_back();
    ASSERT_EQ(Stack.size(), E.Depth) << "depth gap at event " << I;
    if (!Stack.empty()) {
      const obs::TraceEvent &Parent = Events[Stack.back()];
      EXPECT_GE(E.StartNs, Parent.StartNs);
      EXPECT_LE(E.StartNs + E.DurNs, Parent.StartNs + Parent.DurNs);
      if (E.Kind != obs::SpanKind::Decision)
        ChildSum[Stack.back()] += E.DurNs;
    }
    if (E.Kind != obs::SpanKind::Decision)
      Stack.push_back(I);
  }
  for (std::size_t I = 0; I != Events.size(); ++I)
    if (Events[I].Kind != obs::SpanKind::Decision)
      EXPECT_EQ(Events[I].ChildNs, ChildSum[I]) << "event " << I;

  // The Figure-6 classification partitions the satisfiability calls.
  obs::ProfileData PD = T.profile();
  EXPECT_EQ(PD.Classes.total(), Ctx.Stats.SatisfiabilityCalls);
  EXPECT_EQ(PD.Classes.CacheHit, 0u) << "no cache attached";
  EXPECT_EQ(PD.Stats.SatisfiabilityCalls, Ctx.Stats.SatisfiabilityCalls)
      << "top-level span deltas sum to the context counters";
}

namespace {

/// The jobs-independent part of an event (no times, no counter deltas).
std::string structuralSignature(const std::vector<obs::TraceEvent> &Events) {
  std::string Out;
  for (const obs::TraceEvent &E : Events) {
    Out += obs::spanKindName(E.Kind);
    Out += ' ';
    Out += std::to_string(E.TaskKey) + ":" + std::to_string(E.Seq);
    Out += " d" + std::to_string(E.Depth);
    Out += " v" + std::to_string(E.Vars) + "r" + std::to_string(E.Rows);
    Out += " c" + std::to_string(static_cast<int>(E.Cache));
    Out += " " + E.Label + "\n";
  }
  return Out;
}

} // namespace

// The merged trace of a 4-worker run is event-for-event identical to the
// serial run's: task keys follow the serial enumeration order, not the
// racing workers. (The query cache is off: hits depend on cross-worker
// timing and are the one legitimately nondeterministic tag.)
TEST(Tracer, MergedOrderIndependentOfJobs) {
  unsigned Compared = 0;
  for (const kernels::Kernel &K : kernels::corpus()) {
    ir::AnalyzedProgram AP = ir::analyzeSource(K.Source);
    if (!AP.ok())
      continue;

    auto runWith = [&](unsigned Jobs, obs::Tracer &T) {
      engine::AnalysisRequest Req;
      Req.Jobs = Jobs;
      Req.UseQueryCache = false;
      Req.Terminate = true; // cover the phase-4 task keys too
      Req.Trace = &T;
      engine::DependenceEngine Engine(Req);
      (void)Engine.analyze(AP);
    };
    obs::Tracer Serial, Parallel;
    runWith(1, Serial);
    runWith(4, Parallel);

    EXPECT_EQ(structuralSignature(Serial.mergedEvents()),
              structuralSignature(Parallel.mergedEvents()))
        << "kernel " << K.Name;
    ++Compared;
  }
  EXPECT_GT(Compared, 0u);
}

// The sinks stay well-formed on a real engine run, and the calc directive
// round-trips: `trace on` ... `trace off` prints a profile.
TEST(Tracer, SinksAndCalcDirective) {
  obs::Tracer T;
  engine::AnalysisRequest Req;
  Req.Trace = &T;
  engine::DependenceEngine Engine(Req);
  ir::AnalyzedProgram AP = ir::analyzeSource(kernels::example1());
  ASSERT_TRUE(AP.ok());
  (void)Engine.analyze(AP);

  std::string Chrome = T.chromeTraceJson();
  EXPECT_EQ(Chrome.front(), '{');
  EXPECT_NE(Chrome.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(Chrome.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(T.explainLog().find("->"), std::string::npos);
  EXPECT_NE(T.profileReport(/*Json=*/true).find("\"classes\""),
            std::string::npos);

  calc::Calculator C;
  std::string Out = C.run("P := {[i] : 0 <= i && i <= 10};\n"
                          "trace on;\n"
                          "sat P;\n"
                          "trace off;\n");
  EXPECT_FALSE(C.hadError()) << Out;
  EXPECT_NE(Out.find("tracing on"), std::string::npos);
  EXPECT_NE(Out.find("sat"), std::string::npos) << Out;
  EXPECT_FALSE(C.tracing());
  // A second `trace off` is a polite no-op, not an error.
  Out = C.run("trace off;\n");
  EXPECT_FALSE(C.hadError());
  EXPECT_NE(Out.find("already off"), std::string::npos);
}
