//===- tests/CorpusGoldenTest.cpp -----------------------------------------===//
//
// Golden-number regression over the whole kernel corpus: live/dead flow
// split counts, refinements, covers, and anti/output split counts per
// kernel. Any behavioral drift anywhere in the stack (front end,
// dependence computation, Section 4 analyses) shows up here first.
//
// When a change intentionally improves precision, regenerate the table
// and explain the delta in the commit.
//
//===----------------------------------------------------------------------===//

#include "analysis/Driver.h"
#include "kernels/Kernels.h"

#include <gtest/gtest.h>

using namespace omega;

namespace {

struct Golden {
  const char *Name;
  unsigned LiveFlow;
  unsigned DeadFlow;
  unsigned RefinedSplits;
  unsigned Covers;
  unsigned AntiSplits;
  unsigned OutputSplits;
};

const Golden Expected[] = {
    {"cholsky", 22, 15, 9, 13, 25, 13},
    {"example1", 1, 1, 0, 0, 0, 1},
    {"example2", 1, 4, 2, 2, 3, 15},
    {"example3", 1, 0, 1, 0, 1, 1},
    {"example4", 1, 0, 1, 0, 1, 1},
    {"example5", 2, 0, 2, 0, 1, 1},
    {"example6", 1, 0, 1, 0, 2, 1},
    {"example7", 2, 0, 0, 0, 3, 0},
    {"example8", 1, 0, 0, 0, 2, 1},
    {"example9", 0, 0, 0, 0, 0, 0},
    {"example10", 0, 0, 0, 0, 0, 2},
    {"example11", 8, 0, 6, 0, 12, 4},
    {"lu", 5, 1, 5, 1, 4, 2},
    {"wavefront", 2, 0, 0, 0, 0, 0},
    {"skewed_wavefront", 2, 0, 0, 0, 0, 0},
    {"cholesky_dense", 6, 3, 6, 3, 6, 3},
    {"privatizable", 2, 0, 2, 2, 2, 1},
    {"inplace_stencil", 2, 0, 2, 0, 3, 1},
    {"reduction_chain", 4, 0, 1, 2, 2, 2},
    {"double_buffer", 2, 0, 2, 1, 3, 2},
    {"triangles_strides", 3, 0, 1, 0, 2, 1},
    {"matmul", 2, 0, 1, 1, 2, 2},
    {"transpose_copy", 1, 0, 0, 1, 1, 0},
    {"gauss_seidel", 4, 0, 4, 0, 6, 1},
    {"jacobi_two_array", 3, 0, 3, 1, 5, 2},
    {"prefix_sums", 5, 0, 0, 1, 0, 0},
    {"banded_solve", 2, 0, 1, 0, 2, 1},
    {"convolution", 2, 0, 1, 1, 2, 2},
    {"odd_even_phases", 4, 0, 4, 0, 7, 2},
    {"diagonal_sweep", 2, 0, 0, 0, 0, 0},
};

} // namespace

TEST(CorpusGolden, AnalysisCountsStable) {
  const std::vector<kernels::Kernel> &Corpus = kernels::corpus();
  ASSERT_EQ(Corpus.size(), std::size(Expected));

  for (unsigned I = 0; I != Corpus.size(); ++I) {
    const kernels::Kernel &K = Corpus[I];
    const Golden &G = Expected[I];
    ASSERT_STREQ(K.Name, G.Name);

    ir::AnalyzedProgram AP = ir::analyzeSource(K.Source);
    ASSERT_TRUE(AP.ok()) << K.Name;
    analysis::AnalysisResult R = analysis::analyzeProgram(AP);

    unsigned Live = 0, Dead = 0, Refined = 0, Covers = 0;
    for (const deps::Dependence &D : R.Flow) {
      Covers += D.Covers;
      for (const deps::DepSplit &S : D.Splits) {
        (S.Dead ? Dead : Live)++;
        Refined += S.Refined;
      }
    }
    unsigned Anti = 0, Output = 0;
    for (const deps::Dependence &D : R.Anti)
      Anti += D.Splits.size();
    for (const deps::Dependence &D : R.Output)
      Output += D.Splits.size();

    EXPECT_EQ(Live, G.LiveFlow) << K.Name;
    EXPECT_EQ(Dead, G.DeadFlow) << K.Name;
    EXPECT_EQ(Refined, G.RefinedSplits) << K.Name;
    EXPECT_EQ(Covers, G.Covers) << K.Name;
    EXPECT_EQ(Anti, G.AntiSplits) << K.Name;
    EXPECT_EQ(Output, G.OutputSplits) << K.Name;
  }
}

TEST(CorpusGolden, QuickTestsPreserveOutcomes) {
  // Disabling the Section 4.5 quick screens may only change cost, never
  // liveness.
  analysis::DriverOptions Slow;
  Slow.QuickTests = false;
  for (const kernels::Kernel &K : kernels::corpus()) {
    ir::AnalyzedProgram AP = ir::analyzeSource(K.Source);
    ASSERT_TRUE(AP.ok()) << K.Name;
    analysis::AnalysisResult Fast = analysis::analyzeProgram(AP);
    analysis::AnalysisResult Full = analysis::analyzeProgram(AP, Slow);
    ASSERT_EQ(Fast.Flow.size(), Full.Flow.size()) << K.Name;
    for (unsigned I = 0; I != Fast.Flow.size(); ++I)
      EXPECT_EQ(Fast.Flow[I].allDead(), Full.Flow[I].allDead())
          << K.Name << " " << Fast.Flow[I].Src->Text << " -> "
          << Fast.Flow[I].Dst->Text;
  }
}
