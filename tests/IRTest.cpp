//===- tests/IRTest.cpp ---------------------------------------------------===//
//
// Unit tests for the tiny-style front end: lexer, parser, and semantic
// lowering.
//
//===----------------------------------------------------------------------===//

#include "ir/Sema.h"

#include "ir/Lexer.h"

#include <gtest/gtest.h>

using namespace omega;
using namespace omega::ir;

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

namespace {

std::vector<Token> lexAll(std::string_view Src) {
  Lexer L(Src);
  std::vector<Token> Out;
  while (true) {
    Token T = L.next();
    Out.push_back(T);
    if (T.Kind == TokenKind::Eof)
      break;
  }
  return Out;
}

} // namespace

TEST(Lexer, BasicTokens) {
  auto Toks = lexAll("for L1 := 1 to n do a(L1) := 0; endfor");
  std::vector<TokenKind> Kinds;
  for (const Token &T : Toks)
    Kinds.push_back(T.Kind);
  std::vector<TokenKind> Expected = {
      TokenKind::KwFor,   TokenKind::Ident,  TokenKind::Assign,
      TokenKind::IntLit,  TokenKind::KwTo,   TokenKind::Ident,
      TokenKind::KwDo,    TokenKind::Ident,  TokenKind::LParen,
      TokenKind::Ident,   TokenKind::RParen, TokenKind::Assign,
      TokenKind::IntLit,  TokenKind::Semi,   TokenKind::KwEndfor,
      TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(Lexer, KeywordsCaseInsensitive) {
  auto Toks = lexAll("FOR For for ENDFOR MiN");
  EXPECT_EQ(Toks[0].Kind, TokenKind::KwFor);
  EXPECT_EQ(Toks[1].Kind, TokenKind::KwFor);
  EXPECT_EQ(Toks[2].Kind, TokenKind::KwFor);
  EXPECT_EQ(Toks[3].Kind, TokenKind::KwEndfor);
  EXPECT_EQ(Toks[4].Kind, TokenKind::KwMin);
}

TEST(Lexer, CommentsSkipped) {
  auto Toks = lexAll("x // trailing\n# whole line\ny");
  ASSERT_EQ(Toks.size(), 3u);
  EXPECT_EQ(Toks[0].Text, "x");
  EXPECT_EQ(Toks[1].Text, "y");
}

TEST(Lexer, LocationsTracked) {
  auto Toks = lexAll("a\n  b");
  EXPECT_EQ(Toks[0].Loc.Line, 1u);
  EXPECT_EQ(Toks[1].Loc.Line, 2u);
  EXPECT_EQ(Toks[1].Loc.Col, 3u);
}

TEST(Lexer, ErrorToken) {
  auto Toks = lexAll("a ? b");
  EXPECT_EQ(Toks[1].Kind, TokenKind::Error);
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST(Parser, RoundTripSimpleLoop) {
  const char *Src = "symbolic n, m;\n"
                    "for L1 := 1 to n do\n"
                    "  for L2 := 2 to m do\n"
                    "    a(L2) := a(L2-1);\n"
                    "  endfor\n"
                    "endfor\n";
  ParseResult R = parseProgram(Src);
  ASSERT_TRUE(R.ok()) << R.Diags.front().toString();
  EXPECT_EQ(R.Prog.toString(), "symbolic n, m;\n"
                               "for L1 := 1 to n do\n"
                               "  for L2 := 2 to m do\n"
                               "    a(L2) := a(L2-1);\n"
                               "  endfor\n"
                               "endfor\n");
}

TEST(Parser, StatementLabelsInProgramOrder) {
  const char *Src = "a(1) := 0;\n"
                    "for i := 1 to 10 do\n"
                    "  b(i) := a(i);\n"
                    "  c(i) := b(i);\n"
                    "endfor\n"
                    "d(2) := 1;\n";
  ParseResult R = parseProgram(Src);
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Prog.Body[0].asAssign().Label, 1u);
  const ForStmt &F = R.Prog.Body[1].asFor();
  EXPECT_EQ(F.Body[0].asAssign().Label, 2u);
  EXPECT_EQ(F.Body[1].asAssign().Label, 3u);
  EXPECT_EQ(R.Prog.Body[2].asAssign().Label, 4u);
}

TEST(Parser, MinMaxBounds) {
  const char *Src = "for i := max(1, n-2) to min(m, 100) do\n"
                    "  a(i) := 0;\n"
                    "endfor\n";
  ParseResult R = parseProgram(Src);
  ASSERT_TRUE(R.ok());
  const ForStmt &F = R.Prog.Body[0].asFor();
  EXPECT_EQ(F.Lo.getKind(), Expr::Kind::Max);
  EXPECT_EQ(F.Hi.getKind(), Expr::Kind::Min);
}

TEST(Parser, NegativeStep) {
  ParseResult R = parseProgram("for k := n to 1 step -1 do a(k) := 0; endfor");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Prog.Body[0].asFor().Step, -1);
}

TEST(Parser, ScalarAssignment) {
  ParseResult R = parseProgram("k := k + j;");
  ASSERT_TRUE(R.ok());
  const AssignStmt &A = R.Prog.Body[0].asAssign();
  EXPECT_EQ(A.Array, "k");
  EXPECT_TRUE(A.Subscripts.empty());
}

TEST(Parser, PrecedenceAndParens) {
  ParseResult R = parseProgram("x := 2*i + j*(k - 1);");
  ASSERT_TRUE(R.ok());
  EXPECT_EQ(R.Prog.Body[0].asAssign().RHS.toString(), "2*i+j*(k-1)");
}

TEST(Parser, ErrorRecovery) {
  // The bad statement is reported and skipped; the next parses fine.
  ParseResult R = parseProgram("a( := 1;\nb(1) := 2;\n");
  EXPECT_FALSE(R.ok());
  ASSERT_EQ(R.Prog.Body.size(), 1u);
  EXPECT_EQ(R.Prog.Body[0].asAssign().Array, "b");
}

TEST(Parser, MissingEndforDiagnosed) {
  ParseResult R = parseProgram("for i := 1 to 10 do a(i) := 0;");
  EXPECT_FALSE(R.ok());
}

TEST(Parser, NestedReads) {
  ParseResult R = parseProgram("a(Q(L1)) := a(Q(L1+1)-1) + c(L1);");
  ASSERT_TRUE(R.ok());
  const AssignStmt &A = R.Prog.Body[0].asAssign();
  EXPECT_EQ(A.Subscripts[0].getKind(), Expr::Kind::Read);
}

//===----------------------------------------------------------------------===//
// AffineExpr
//===----------------------------------------------------------------------===//

TEST(AffineExpr, Arithmetic) {
  AffineExpr A = AffineExpr::symbol(0, 2) + AffineExpr(3); // 2*s0 + 3
  AffineExpr B = AffineExpr::symbol(0, -2) + AffineExpr::symbol(1);
  AffineExpr C = A + B; // s1 + 3
  EXPECT_EQ(C.coeffOf(0), 0);
  EXPECT_EQ(C.coeffOf(1), 1);
  EXPECT_EQ(C.getConstant(), 3);
  EXPECT_EQ(C.toString({"a", "b"}), "b + 3");
}

TEST(AffineExpr, SubstituteAndScale) {
  // E = 3*s0 + s1; substitute s0 := s2 - 1 => 3*s2 + s1 - 3.
  AffineExpr E = AffineExpr::symbol(0, 3) + AffineExpr::symbol(1);
  AffineExpr R = AffineExpr::symbol(2) + AffineExpr(-1);
  AffineExpr S = E.substituted(0, R);
  EXPECT_EQ(S.coeffOf(0), 0);
  EXPECT_EQ(S.coeffOf(1), 1);
  EXPECT_EQ(S.coeffOf(2), 3);
  EXPECT_EQ(S.getConstant(), -3);
  EXPECT_EQ(S.scaled(-2).coeffOf(2), -6);
}

//===----------------------------------------------------------------------===//
// Sema
//===----------------------------------------------------------------------===//

TEST(Sema, CollectsAccessesInOrder) {
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := 1 to n do\n"
                                     "  a(i) := a(i-1) + b(i);\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  ASSERT_EQ(AP.Accesses.size(), 3u);
  // Reads first, then the write.
  EXPECT_FALSE(AP.Accesses[0].IsWrite);
  EXPECT_EQ(AP.Accesses[0].Text, "a(i-1)");
  EXPECT_FALSE(AP.Accesses[1].IsWrite);
  EXPECT_EQ(AP.Accesses[1].Text, "b(i)");
  EXPECT_TRUE(AP.Accesses[2].IsWrite);
  EXPECT_EQ(AP.Accesses[2].Text, "a(i)");
  EXPECT_EQ(AP.Accesses[2].Loops.size(), 1u);
}

TEST(Sema, SubscriptAffineForm) {
  AnalyzedProgram AP = analyzeSource("for i := 1 to 10 do\n"
                                     "  a(2*i - 3) := 0;\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  const Access &W = AP.Accesses.front();
  SymId Iter = AP.Loops.front()->IterSym;
  EXPECT_EQ(W.Subscripts[0].coeffOf(Iter), 2);
  EXPECT_EQ(W.Subscripts[0].getConstant(), -3);
}

TEST(Sema, MaxLowerBoundBecomesTwoBounds) {
  AnalyzedProgram AP = analyzeSource("symbolic n, m;\n"
                                     "for i := max(1, n-2) to m do\n"
                                     "  a(i) := 0;\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  EXPECT_EQ(AP.Loops.front()->Lower.size(), 2u);
  EXPECT_EQ(AP.Loops.front()->Upper.size(), 1u);
}

TEST(Sema, NegativeStepNormalized) {
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for k := n to 1 step -1 do\n"
                                     "  a(k) := 0;\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  const LoopInfo &L = *AP.Loops.front();
  EXPECT_TRUE(L.Reversed);
  EXPECT_EQ(L.Stride, 1);
  // Normalized iterator n' runs from -n to -1; the source variable is -n'.
  SymId N = AP.Symbols.lookup("n");
  EXPECT_EQ(L.Lower.front().coeffOf(N), -1);
  EXPECT_EQ(L.Upper.front().getConstant(), -1);
  const Access &W = AP.Accesses.front();
  EXPECT_EQ(W.Subscripts[0].coeffOf(L.IterSym), -1);
}

TEST(Sema, StrideLoop) {
  AnalyzedProgram AP = analyzeSource("for i := 1 to 100 step 3 do\n"
                                     "  a(i) := 0;\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  EXPECT_EQ(AP.Loops.front()->Stride, 3);
}

TEST(Sema, ImplicitSymbolicConstants) {
  AnalyzedProgram AP = analyzeSource("for i := x to y do a(i) := 0; endfor");
  ASSERT_TRUE(AP.ok());
  EXPECT_GE(AP.Symbols.lookup("x"), 0);
  EXPECT_GE(AP.Symbols.lookup("y"), 0);
}

TEST(Sema, NonAffineSubscriptBecomesTerm) {
  AnalyzedProgram AP = analyzeSource("for i := 1 to n do\n"
                                     "  for j := 1 to n do\n"
                                     "    a(i*j) := 0;\n"
                                     "  endfor\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  const Access &W = AP.Accesses.front();
  ASSERT_EQ(W.Subscripts[0].terms().size(), 1u);
  SymId T = W.Subscripts[0].terms().front().first;
  EXPECT_EQ(AP.Symbols.info(T).Kind, SymKind::Term);
  EXPECT_EQ(AP.Symbols.info(T).SourceText, "i*j");
  EXPECT_EQ(AP.Symbols.info(T).LoopParams.size(), 2u);
}

TEST(Sema, IndexArrayReadsAreAccessesAndTerms) {
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := 1 to n do\n"
                                     "  a(Q(i)) := a(Q(i+1)-1) + c(i);\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  // Accesses: reads a(Q(i+1)-1), Q(i+1), c(i), Q(i); write a(Q(i)).
  unsigned QReads = 0, AReads = 0, Writes = 0;
  for (const Access &A : AP.Accesses) {
    if (A.Array == "Q" && !A.IsWrite)
      ++QReads;
    if (A.Array == "a" && !A.IsWrite)
      ++AReads;
    Writes += A.IsWrite;
  }
  EXPECT_EQ(QReads, 2u);
  EXPECT_EQ(AReads, 1u);
  EXPECT_EQ(Writes, 1u);

  // The write's subscript is a Term symbol wrapping Q(i).
  const Access *W = nullptr;
  for (const Access &A : AP.Accesses)
    if (A.IsWrite)
      W = &A;
  ASSERT_NE(W, nullptr);
  ASSERT_EQ(W->Subscripts[0].terms().size(), 1u);
  const SymbolInfo &T =
      AP.Symbols.info(W->Subscripts[0].terms().front().first);
  EXPECT_TRUE(T.IsIndexArrayRead);
  EXPECT_EQ(T.IndexArray, "Q");
}

TEST(Sema, CommonLoopsAndTextualOrder) {
  AnalyzedProgram AP = analyzeSource("symbolic n;\n"
                                     "for i := 1 to n do\n"
                                     "  a(i) := 0;\n"
                                     "  for j := 1 to n do\n"
                                     "    b(j) := a(i);\n"
                                     "  endfor\n"
                                     "endfor\n"
                                     "for k := 1 to n do\n"
                                     "  c(k) := a(k);\n"
                                     "endfor\n");
  ASSERT_TRUE(AP.ok());
  const Access *WriteA = nullptr, *ReadA1 = nullptr, *ReadA2 = nullptr;
  for (const Access &A : AP.Accesses) {
    if (A.Array == "a" && A.IsWrite)
      WriteA = &A;
    else if (A.Array == "a" && A.StmtLabel == 2)
      ReadA1 = &A;
    else if (A.Array == "a" && A.StmtLabel == 3)
      ReadA2 = &A;
  }
  ASSERT_TRUE(WriteA && ReadA1 && ReadA2);
  EXPECT_EQ(AnalyzedProgram::numCommonLoops(*WriteA, *ReadA1), 1u);
  EXPECT_EQ(AnalyzedProgram::numCommonLoops(*WriteA, *ReadA2), 0u);
  EXPECT_TRUE(AnalyzedProgram::textuallyBefore(*WriteA, *ReadA1));
  EXPECT_FALSE(AnalyzedProgram::textuallyBefore(*ReadA1, *WriteA));
  EXPECT_TRUE(AnalyzedProgram::textuallyBefore(*WriteA, *ReadA2));
}

TEST(Sema, ShadowingDiagnosed) {
  AnalyzedProgram AP = analyzeSource("for i := 1 to 9 do\n"
                                     "  for i := 1 to 9 do\n"
                                     "    a(i) := 0;\n"
                                     "  endfor\n"
                                     "endfor\n");
  EXPECT_FALSE(AP.ok());
}

TEST(Sema, SiblingLoopsMayReuseNames) {
  AnalyzedProgram AP = analyzeSource("for i := 1 to 9 do a(i) := 0; endfor\n"
                                     "for i := 1 to 9 do b(i) := a(i); endfor\n");
  EXPECT_TRUE(AP.ok());
  EXPECT_EQ(AP.Loops.size(), 2u);
  EXPECT_NE(AP.Loops[0]->IterSym, AP.Loops[1]->IterSym);
}

TEST(Sema, DownwardLoopWithMaxBoundDiagnosed) {
  AnalyzedProgram AP = analyzeSource(
      "for i := max(1, n) to 1 step -1 do a(i) := 0; endfor");
  EXPECT_FALSE(AP.ok());
}
