//===- tests/MetricsTest.cpp - Telemetry registry and server accounting ---===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
// Two layers under test. The obs/Metrics.h registry itself: exact bucket
// counts, deterministic snapshot/merge, and the zero-overhead disabled
// path (no samples, no allocations -- TracerTest's property, proven here
// with a counting global operator new). And the serving stack's
// accounting invariants, in the spirit of the paper's Figure 6: per-op
// counters sum to requests_total, histogram counts match the request
// counters that feed them, per-request engine attribution sums to the
// shared cache's global counters, and none of it varies with the worker
// count.
//
//===----------------------------------------------------------------------===//

#include "api/Json.h"
#include "api/Serve.h"
#include "kernels/Kernels.h"
#include "obs/Metrics.h"
#include "omega/QueryCache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <new>
#include <sstream>
#include <string>
#include <thread>

using namespace omega;

//===----------------------------------------------------------------------===//
// Counting allocator: every global new/delete in this binary is tallied,
// so a test can prove a code path allocates nothing.
//===----------------------------------------------------------------------===//

namespace {
std::atomic<uint64_t> GAllocCount{0};
uint64_t allocationsNow() {
  return GAllocCount.load(std::memory_order_relaxed);
}
} // namespace

void *operator new(std::size_t N) {
  GAllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(N ? N : 1))
    return P;
  throw std::bad_alloc();
}
void *operator new[](std::size_t N) { return ::operator new(N); }
void operator delete(void *P) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }

namespace {

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(Metrics, CounterGaugeBasics) {
  obs::MetricsRegistry R;
  obs::Counter *C = R.counter("c_total", "a counter");
  obs::Gauge *G = R.gauge("g", "a gauge");
  C->add();
  C->add(41);
  EXPECT_EQ(C->value(), 42u);
  G->add(5);
  G->sub(2);
  EXPECT_EQ(G->value(), 3);
  G->set(-7);
  EXPECT_EQ(G->value(), -7);
}

TEST(Metrics, HistogramExactBucketCounts) {
  obs::MetricsRegistry R;
  obs::Histogram *H = R.histogram("h_us", "latency", {10, 100, 1000});
  // Boundaries are inclusive upper bounds; beyond the last is overflow.
  H->observe(0);
  H->observe(10);   // still bucket 0
  H->observe(11);   // bucket 1
  H->observe(100);  // bucket 1
  H->observe(999);  // bucket 2
  H->observe(5000); // overflow
  EXPECT_EQ(H->bucketCount(0), 2u);
  EXPECT_EQ(H->bucketCount(1), 2u);
  EXPECT_EQ(H->bucketCount(2), 1u);
  EXPECT_EQ(H->bucketCount(3), 1u);
  EXPECT_EQ(H->count(), 6u);
  EXPECT_EQ(H->sum(), 0u + 10 + 11 + 100 + 999 + 5000);
}

TEST(Metrics, SnapshotIsDeterministicAndMergeable) {
  auto Populate = [](obs::MetricsRegistry &R) {
    obs::Counter *C = R.counter("requests_total", "requests");
    obs::Gauge *G = R.gauge("depth", "queue depth");
    obs::Histogram *H = R.histogram("lat_us", "latency", {100, 1000});
    C->add(3);
    G->set(2);
    H->observe(50);
    H->observe(500);
  };
  obs::MetricsRegistry A, B;
  Populate(A);
  Populate(B);
  obs::MetricsSnapshot SA = A.snapshot(), SB = B.snapshot();

  // Identical registration + identical traffic -> field-for-field equal.
  ASSERT_EQ(SA.Counters.size(), SB.Counters.size());
  EXPECT_EQ(SA.Counters[0].Name, "requests_total");
  EXPECT_EQ(SA.Counters[0].Value, SB.Counters[0].Value);
  EXPECT_EQ(SA.Gauges[0].Value, SB.Gauges[0].Value);
  EXPECT_EQ(SA.Histograms[0].Buckets, SB.Histograms[0].Buckets);

  // Merge doubles every number.
  ASSERT_TRUE(SA.merge(SB));
  EXPECT_EQ(SA.counter("requests_total")->Value, 6u);
  EXPECT_EQ(SA.gauge("depth")->Value, 4);
  EXPECT_EQ(SA.histogram("lat_us")->Count, 4u);
  EXPECT_EQ(SA.histogram("lat_us")->Sum, 1100u);

  // Shape mismatches refuse to merge.
  obs::MetricsRegistry C2;
  C2.counter("other_total", "different");
  obs::MetricsSnapshot SC = C2.snapshot();
  EXPECT_FALSE(SA.merge(SC));
}

TEST(Metrics, PrometheusTextFormat) {
  obs::MetricsRegistry R;
  R.counter("reqs_total", "requests")->add(7);
  R.gauge("depth", "queue depth")->set(-2);
  obs::Histogram *H = R.histogram("lat_us", "latency", {100, 250000});
  H->observe(100);
  H->observe(400000);
  std::string Text = obs::prometheusText(R.snapshot());
  EXPECT_NE(Text.find("# HELP reqs_total requests\n"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE reqs_total counter\n"), std::string::npos);
  EXPECT_NE(Text.find("\nreqs_total 7\n"), std::string::npos);
  EXPECT_NE(Text.find("\ndepth -2\n"), std::string::npos);
  // le labels are seconds, trailing zeros stripped; buckets cumulative.
  EXPECT_NE(Text.find("lat_us_bucket{le=\"0.0001\"} 1\n"), std::string::npos);
  EXPECT_NE(Text.find("lat_us_bucket{le=\"0.25\"} 1\n"), std::string::npos);
  EXPECT_NE(Text.find("lat_us_bucket{le=\"+Inf\"} 2\n"), std::string::npos);
  EXPECT_NE(Text.find("lat_us_count 2\n"), std::string::npos);
  EXPECT_NE(Text.find("lat_us_sum 0.4001\n"), std::string::npos);
}

TEST(Metrics, JsonRenderingParses) {
  obs::MetricsRegistry R;
  R.counter("c_total", "c")->add(1);
  R.gauge("g", "g")->set(9);
  R.histogram("h_us", "h", {100})->observe(42);
  std::string S = obs::metricsJson(R.snapshot());
  api::json::Value V;
  std::string Err;
  ASSERT_TRUE(api::json::parse(S, V, Err)) << Err;
  EXPECT_EQ(V.get("counters")->get("c_total")->asInt(), 1);
  EXPECT_EQ(V.get("gauges")->get("g")->asInt(), 9);
  const api::json::Value *H = V.get("histograms")->get("h_us");
  ASSERT_NE(H, nullptr);
  EXPECT_EQ(H->get("count")->asInt(), 1);
  EXPECT_EQ(H->get("sumUs")->asInt(), 42);
  EXPECT_EQ(H->get("boundsUs")->asArray().size(), 1u);
  EXPECT_EQ(H->get("buckets")->asArray().size(), 2u);
}

//===----------------------------------------------------------------------===//
// The zero-overhead disabled path
//===----------------------------------------------------------------------===//

TEST(Metrics, DisabledPathRecordsNothingAndAllocatesNothing) {
  uint64_t SamplesBefore = obs::detail::samplesRecordedThisThread();
  uint64_t AllocsBefore = allocationsNow();
  for (int I = 0; I != 1000; ++I) {
    obs::inc(nullptr);
    obs::inc(nullptr, 5);
    obs::observe(nullptr, 123);
    obs::set(nullptr, 7);
    obs::add(nullptr, -1);
  }
  EXPECT_EQ(obs::detail::samplesRecordedThisThread(), SamplesBefore);
  EXPECT_EQ(allocationsNow(), AllocsBefore);
}

TEST(Metrics, EnabledHotPathAllocatesNothing) {
  obs::MetricsRegistry R;
  obs::Counter *C = R.counter("c_total", "c");
  obs::Gauge *G = R.gauge("g", "g");
  obs::Histogram *H =
      R.histogram("h_us", "h", {100, 250, 500, 1000, 10000, 100000});
  // Warm the thread-shard assignment, then measure.
  C->add(0);
  uint64_t AllocsBefore = allocationsNow();
  for (uint64_t I = 0; I != 1000; ++I) {
    C->add(1);
    G->add(1);
    H->observe(I * 37 % 200000);
  }
  EXPECT_EQ(allocationsNow(), AllocsBefore);
  EXPECT_EQ(C->value(), 1000u);
}

//===----------------------------------------------------------------------===//
// Server accounting invariants
//===----------------------------------------------------------------------===//

/// Submits one request line and blocks until its response arrives.
std::string ask(api::Server &Server, const std::string &Line) {
  std::mutex Mu;
  std::condition_variable CV;
  std::string Response;
  bool Done = false;
  Server.submit(Line, [&](std::string R) {
    std::lock_guard<std::mutex> Lock(Mu);
    Response = std::move(R);
    Done = true;
    CV.notify_one();
  });
  std::unique_lock<std::mutex> Lock(Mu);
  CV.wait(Lock, [&] { return Done; });
  return Response;
}

std::string analyzeLine(uint64_t Id, const std::string &Source) {
  return "{\"id\": " + std::to_string(Id) + ", \"source\": \"" +
         api::json::escape(Source) + "\"}";
}

uint64_t counterOf(const obs::MetricsSnapshot &S, const std::string &Name) {
  const obs::MetricsSnapshot::CounterView *C = S.counter(Name);
  EXPECT_NE(C, nullptr) << Name;
  return C ? C->Value : 0;
}

const obs::MetricsSnapshot::HistogramView &
histOf(const obs::MetricsSnapshot &S, const std::string &Name) {
  const obs::MetricsSnapshot::HistogramView *H = S.histogram(Name);
  EXPECT_NE(H, nullptr) << Name;
  static obs::MetricsSnapshot::HistogramView Empty;
  return H ? *H : Empty;
}

/// Runs a mixed workload -- analyses, a parse error, a bad request, ops --
/// and returns the server's quiesced snapshot.
void runMixedWorkload(api::Server &Server, uint64_t &AnalyzeOkWant,
                      uint64_t &AnalysisErrWant) {
  uint64_t Id = 1;
  AnalyzeOkWant = 0;
  AnalysisErrWant = 0;
  for (const kernels::Kernel &K : kernels::corpus()) {
    ask(Server, analyzeLine(Id++, K.Source));
    ++AnalyzeOkWant;
  }
  // Re-analyze the first kernel: warm-cache traffic for the attribution
  // invariant.
  ask(Server, analyzeLine(Id++, kernels::corpus().front().Source));
  ++AnalyzeOkWant;
  ask(Server, analyzeLine(Id++, "for i := broken"));
  ++AnalysisErrWant;
  ask(Server, "this is not json");
  ask(Server, "{\"id\": 99, \"op\": \"reticulate\"}");
  ask(Server, "{\"id\": 100, \"op\": \"health\"}");
  ask(Server, "{\"id\": 101, \"op\": \"metrics\"}");
}

TEST(ServeTelemetry, AccountingInvariantsHold) {
  api::Server::Config Cfg;
  Cfg.Workers = 2;
  api::Server Server(Cfg);
  uint64_t OkWant = 0, ErrWant = 0;
  runMixedWorkload(Server, OkWant, ErrWant);
  obs::MetricsSnapshot S = Server.metricsSnapshot();

  uint64_t Total = counterOf(S, "omega_serve_requests_total");
  // Every submit dispatched to exactly one op bucket.
  EXPECT_EQ(Total, counterOf(S, "omega_serve_requests_analyze_total") +
                       counterOf(S, "omega_serve_requests_health_total") +
                       counterOf(S, "omega_serve_requests_metrics_total") +
                       counterOf(S, "omega_serve_requests_shutdown_total") +
                       counterOf(S, "omega_serve_requests_invalid_total"));
  // Every submit produced exactly one coded response.
  EXPECT_EQ(Total,
            counterOf(S, "omega_serve_responses_ok_total") +
                counterOf(S, "omega_serve_responses_parse_error_total") +
                counterOf(S, "omega_serve_responses_bad_request_total") +
                counterOf(S, "omega_serve_responses_analysis_error_total") +
                counterOf(S, "omega_serve_responses_overloaded_total") +
                counterOf(S, "omega_serve_responses_deadline_exceeded_total") +
                counterOf(S, "omega_serve_responses_shutdown_total"));
  EXPECT_EQ(counterOf(S, "omega_serve_analyze_ok_total"), OkWant);
  EXPECT_EQ(counterOf(S, "omega_serve_responses_analysis_error_total"),
            ErrWant);

  // Histogram counts == the request counters that feed them.
  EXPECT_EQ(histOf(S, "omega_serve_solve_us").Count, OkWant);
  EXPECT_EQ(histOf(S, "omega_serve_serialize_us").Count, OkWant);
  EXPECT_EQ(histOf(S, "omega_serve_request_us").Count, OkWant + ErrWant);
  EXPECT_EQ(histOf(S, "omega_serve_parse_us").Count, OkWant + ErrWant);
  EXPECT_EQ(histOf(S, "omega_serve_queue_wait_us").Count, OkWant + ErrWant);

  // Exact bucket accounting: buckets sum to the count, for every
  // histogram in the snapshot.
  for (const obs::MetricsSnapshot::HistogramView &H : S.Histograms) {
    uint64_t Sum = 0;
    for (uint64_t B : H.Buckets)
      Sum += B;
    EXPECT_EQ(Sum, H.Count) << H.Name;
    EXPECT_EQ(H.Buckets.size(), H.Bounds.size() + 1) << H.Name;
  }

  // Engine attribution sums to the shared cache's global counters (all
  // cache traffic in this process came from the server's own engines).
  ASSERT_NE(Server.cache(), nullptr);
  QueryCacheStats CS = Server.cache()->stats();
  EXPECT_EQ(counterOf(S, "omega_engine_sat_cache_hits_total"), CS.SatHits);
  EXPECT_EQ(counterOf(S, "omega_engine_sat_cache_misses_total"),
            CS.SatMisses);
  EXPECT_EQ(counterOf(S, "omega_engine_gist_cache_hits_total"), CS.GistHits);
  EXPECT_EQ(counterOf(S, "omega_engine_gist_cache_misses_total"),
            CS.GistMisses);
  // The warm re-analysis must actually have hit.
  EXPECT_GT(CS.SatHits + CS.GistHits, 0u);

  // Quiesced gauges. The response callback fires before the worker
  // returns to its loop and decrements active_workers, so give the
  // worker a moment to get there.
  for (int Spin = 0;
       Spin != 200 && S.gauge("omega_serve_active_workers")->Value != 0;
       ++Spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    S = Server.metricsSnapshot();
  }
  EXPECT_EQ(S.gauge("omega_serve_queue_depth")->Value, 0);
  EXPECT_EQ(S.gauge("omega_serve_active_workers")->Value, 0);
  EXPECT_EQ(S.gauge("omega_serve_cache_entries")->Value,
            static_cast<int64_t>(Server.cache()->size()));
}

TEST(ServeTelemetry, DeterministicCountersMatchAcrossWorkerCounts) {
  auto Run = [](unsigned Workers) {
    api::Server::Config Cfg;
    Cfg.Workers = Workers;
    api::Server Server(Cfg);
    uint64_t OkWant = 0, ErrWant = 0;
    runMixedWorkload(Server, OkWant, ErrWant);
    return Server.metricsSnapshot();
  };
  obs::MetricsSnapshot S1 = Run(1);
  obs::MetricsSnapshot S4 = Run(4);

  // A sequential workload's deterministic counters cannot depend on the
  // worker count: same counters, same gauges, same histogram *counts*
  // (durations, the Sum fields, naturally differ).
  ASSERT_EQ(S1.Counters.size(), S4.Counters.size());
  for (std::size_t I = 0; I != S1.Counters.size(); ++I) {
    EXPECT_EQ(S1.Counters[I].Name, S4.Counters[I].Name);
    EXPECT_EQ(S1.Counters[I].Value, S4.Counters[I].Value)
        << S1.Counters[I].Name;
  }
  ASSERT_EQ(S1.Gauges.size(), S4.Gauges.size());
  for (std::size_t I = 0; I != S1.Gauges.size(); ++I)
    EXPECT_EQ(S1.Gauges[I].Value, S4.Gauges[I].Value) << S1.Gauges[I].Name;
  ASSERT_EQ(S1.Histograms.size(), S4.Histograms.size());
  for (std::size_t I = 0; I != S1.Histograms.size(); ++I)
    EXPECT_EQ(S1.Histograms[I].Count, S4.Histograms[I].Count)
        << S1.Histograms[I].Name;
}

//===----------------------------------------------------------------------===//
// Ops, access log, slow traces
//===----------------------------------------------------------------------===//

TEST(ServeTelemetry, HealthAndMetricsOpDocuments) {
  api::Server::Config Cfg;
  Cfg.Workers = 1;
  api::Server Server(Cfg);
  ask(Server, analyzeLine(1, kernels::corpus().front().Source));

  api::json::Value H;
  std::string Err;
  ASSERT_TRUE(
      api::json::parse(ask(Server, "{\"id\": 2, \"op\": \"health\"}"), H, Err))
      << Err;
  EXPECT_TRUE(H.get("ok")->asBool());
  EXPECT_EQ(H.get("op")->asString(), "health");
  const api::json::Value *HB = H.get("health");
  ASSERT_NE(HB, nullptr);
  EXPECT_EQ(HB->get("status")->asString(), "ok");
  EXPECT_EQ(HB->get("workers")->asInt(), 1);
  EXPECT_EQ(HB->get("queueDepth")->asInt(), 0);
  EXPECT_GT(HB->get("requestsTotal")->asInt(), 0);
  EXPECT_GT(HB->get("cacheEntries")->asInt(), 0);

  api::json::Value M;
  ASSERT_TRUE(
      api::json::parse(ask(Server, "{\"id\": 3, \"op\": \"metrics\"}"), M,
                       Err))
      << Err;
  EXPECT_TRUE(M.get("ok")->asBool());
  EXPECT_EQ(M.get("op")->asString(), "metrics");
  const api::json::Value *MB = M.get("metrics");
  ASSERT_NE(MB, nullptr);
  // The snapshot the op returns counts the op itself: per-op counters sum
  // to requests_total *inside the document*.
  const api::json::Value *Counters = MB->get("counters");
  ASSERT_NE(Counters, nullptr);
  int64_t Total = Counters->get("omega_serve_requests_total")->asInt();
  int64_t PerOp =
      Counters->get("omega_serve_requests_analyze_total")->asInt() +
      Counters->get("omega_serve_requests_health_total")->asInt() +
      Counters->get("omega_serve_requests_metrics_total")->asInt() +
      Counters->get("omega_serve_requests_shutdown_total")->asInt() +
      Counters->get("omega_serve_requests_invalid_total")->asInt();
  EXPECT_EQ(Total, PerOp);
  ASSERT_NE(MB->get("cache"), nullptr);
  EXPECT_EQ(MB->get("cache")->get("satHits")->asInt() +
                MB->get("cache")->get("satMisses")->asInt(),
            Counters->get("omega_engine_sat_cache_hits_total")->asInt() +
                Counters->get("omega_engine_sat_cache_misses_total")->asInt());
}

TEST(ServeTelemetry, ShutdownAckCarriesFinalSnapshot) {
  api::Server::Config Cfg;
  Cfg.Workers = 1;
  api::Server Server(Cfg);
  ask(Server, analyzeLine(1, kernels::corpus().front().Source));
  api::json::Value A;
  std::string Err;
  ASSERT_TRUE(api::json::parse(
      ask(Server, "{\"id\": 2, \"op\": \"shutdown\"}"), A, Err))
      << Err;
  EXPECT_TRUE(A.get("ok")->asBool());
  EXPECT_EQ(A.get("op")->asString(), "shutdown");
  ASSERT_NE(A.get("metrics"), nullptr);
  EXPECT_EQ(A.get("metrics")
                ->get("counters")
                ->get("omega_serve_requests_shutdown_total")
                ->asInt(),
            1);
  EXPECT_TRUE(Server.stopRequested());
  // Post-shutdown admissions still answer with the typed refusal.
  api::json::Value R;
  ASSERT_TRUE(
      api::json::parse(ask(Server, analyzeLine(3, "x")), R, Err));
  EXPECT_EQ(R.get("error")->get("code")->asString(), "shutdown");
}

TEST(ServeTelemetry, AccessLogDecomposesLatency) {
  std::string Log = testing::TempDir() + "metrics_test_access.jsonl";
  std::remove(Log.c_str());
  {
    api::Server::Config Cfg;
    Cfg.Workers = 2;
    Cfg.AccessLog = Log;
    api::Server Server(Cfg);
    ask(Server, analyzeLine(1, kernels::corpus().front().Source));
    ask(Server, analyzeLine(2, "for i := broken"));
    Server.stop();
  }
  std::ifstream In(Log);
  ASSERT_TRUE(In.is_open());
  std::string Line;
  unsigned Lines = 0;
  while (std::getline(In, Line)) {
    ++Lines;
    api::json::Value V;
    std::string Err;
    ASSERT_TRUE(api::json::parse(Line, V, Err)) << Line << " -> " << Err;
    double Parts = V.get("queueWaitMs")->asNumber() +
                   V.get("parseMs")->asNumber() +
                   V.get("solveMs")->asNumber() +
                   V.get("serializeMs")->asNumber();
    // The decomposition covers disjoint sub-intervals of the total, and
    // every field truncates microseconds, so the sum can never exceed it.
    EXPECT_LE(Parts, V.get("totalMs")->asNumber() + 1e-9) << Line;
    EXPECT_FALSE(V.get("slow")->asBool());
    ASSERT_NE(V.get("code"), nullptr);
  }
  EXPECT_EQ(Lines, 2u);
  std::remove(Log.c_str());
}

TEST(ServeTelemetry, SlowRequestsAreTracedAndFlagged) {
  std::string Dir = testing::TempDir() + "metrics_test_traces";
  std::string Log = testing::TempDir() + "metrics_test_slow.jsonl";
  std::remove(Log.c_str());
  std::string Cmd = "rm -rf '" + Dir + "' && mkdir -p '" + Dir + "'";
  ASSERT_EQ(std::system(Cmd.c_str()), 0);
  std::string TraceFile;
  {
    api::Server::Config Cfg;
    Cfg.Workers = 1;
    Cfg.AccessLog = Log;
    Cfg.SlowMs = 1; // a cold CHOLSKY analysis takes well over 1ms
    Cfg.SlowTraceDir = Dir;
    api::Server Server(Cfg);
    ask(Server, analyzeLine(1, kernels::corpus().front().Source));
    Server.stop();
  }
  std::ifstream In(Log);
  ASSERT_TRUE(In.is_open());
  std::string Line;
  ASSERT_TRUE(std::getline(In, Line));
  api::json::Value V;
  std::string Err;
  ASSERT_TRUE(api::json::parse(Line, V, Err)) << Err;
  EXPECT_TRUE(V.get("slow")->asBool());
  ASSERT_NE(V.get("traceFile"), nullptr) << Line;
  TraceFile = V.get("traceFile")->asString();
  std::ifstream Trace(TraceFile);
  ASSERT_TRUE(Trace.is_open()) << TraceFile;
  std::stringstream Buf;
  Buf << Trace.rdbuf();
  EXPECT_NE(Buf.str().find("traceEvents"), std::string::npos);
  std::remove(Log.c_str());
  ASSERT_EQ(std::system(("rm -rf '" + Dir + "'").c_str()), 0);
}

TEST(ServeTelemetry, MetricsFileIsWrittenAtomically) {
  std::string File = testing::TempDir() + "metrics_test.prom";
  std::remove(File.c_str());
  {
    api::Server::Config Cfg;
    Cfg.Workers = 1;
    Cfg.MetricsFile = File;
    api::Server Server(Cfg);
    ask(Server, analyzeLine(1, kernels::corpus().front().Source));
    ask(Server, "{\"id\": 2, \"op\": \"metrics\"}");
    // The metrics op rewrote the exposition synchronously.
    std::ifstream In(File);
    ASSERT_TRUE(In.is_open());
    std::stringstream Buf;
    Buf << In.rdbuf();
    EXPECT_NE(Buf.str().find("omega_serve_requests_total 2\n"),
              std::string::npos);
    EXPECT_EQ(Buf.str().find(".tmp"), std::string::npos);
    Server.stop();
  }
  // stop() leaves a final exposition reflecting the drained state.
  std::ifstream In(File);
  ASSERT_TRUE(In.is_open());
  std::stringstream Buf;
  Buf << In.rdbuf();
  EXPECT_NE(Buf.str().find("omega_serve_active_workers 0\n"),
            std::string::npos);
  std::remove(File.c_str());
}

TEST(ServeTelemetry, CustomLatencyBucketsReplaceDefaults) {
  // --latency-buckets-us: every latency histogram adopts the configured
  // boundaries (plus the implied overflow bucket), and observations land
  // in them exactly.
  api::Server::Config Cfg;
  Cfg.Workers = 1;
  Cfg.LatencyBoundsUs = {50, 500, 5000};
  api::Server Server(Cfg);
  ask(Server, analyzeLine(1, kernels::corpus().front().Source));
  obs::MetricsSnapshot S = Server.metricsSnapshot();
  for (const char *Name :
       {"omega_serve_queue_wait_us", "omega_serve_parse_us",
        "omega_serve_solve_us", "omega_serve_serialize_us",
        "omega_serve_request_us"}) {
    const obs::MetricsSnapshot::HistogramView &H = histOf(S, Name);
    EXPECT_EQ(H.Bounds, (std::vector<uint64_t>{50, 500, 5000})) << Name;
    EXPECT_EQ(H.Buckets.size(), 4u) << Name;
  }
  const obs::MetricsSnapshot::HistogramView &Req =
      histOf(S, "omega_serve_request_us");
  EXPECT_EQ(Req.Count, 1u);
  uint64_t InBuckets = 0;
  for (uint64_t B : Req.Buckets)
    InBuckets += B;
  EXPECT_EQ(InBuckets, 1u);

  // Empty bounds keep the built-in boundaries.
  api::Server::Config DefCfg;
  DefCfg.Workers = 1;
  api::Server DefServer(DefCfg);
  obs::MetricsSnapshot DS = DefServer.metricsSnapshot();
  EXPECT_EQ(histOf(DS, "omega_serve_request_us").Bounds.front(), 100u);
  EXPECT_EQ(histOf(DS, "omega_serve_request_us").Bounds.back(), 1000000u);
}

} // namespace
