//===- tests/RandomProgramTest.cpp ----------------------------------------===//
//
// Fuzzing the whole stack: generate random loop nests with random affine
// accesses, interpret them, and check every executed dependence witness
// against the analysis (via DiffHarness). Catches soundness bugs --
// missing dependences, wrong distance ranges, false kills -- anywhere
// between the parser and the Section 4 engine.
//
// The generator lives in the oracle library (oracle::ProgramGenerator) so
// this test, the stress suite, and the omega-fuzz driver draw from the
// same program distribution. Set OMEGA_FUZZ_SEED to shift the whole batch
// when reproducing a CI failure.
//
//===----------------------------------------------------------------------===//

#include "DiffHarness.h"

#include "ir/Sema.h"
#include "oracle/Generate.h"

#include <gtest/gtest.h>

#include <string>

using namespace omega;
using namespace omega::testutil;

namespace {
class RandomProgramTest : public ::testing::TestWithParam<unsigned> {};
} // namespace

TEST_P(RandomProgramTest, WitnessesAdmitted) {
  unsigned Seed = oracle::fuzzSeed(0) + GetParam();
  oracle::ProgramGenerator Gen(Seed);
  unsigned TotalChecked = 0;
  for (unsigned T = 0; T != 12; ++T) {
    std::string Source = Gen.generate();
    ir::AnalyzedProgram AP = ir::analyzeSource(Source);
    ASSERT_TRUE(AP.ok()) << Source;
    TotalChecked += checkTraceWitnesses(AP, {}, "random");
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << oracle::seedMessage(Seed) << "; failing program:\n"
                    << Source;
      return;
    }
  }
  // The batch must have exercised real dependences.
  EXPECT_GT(TotalChecked, 50u) << oracle::seedMessage(Seed);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u,
                                           9u, 10u, 11u, 12u, 13u, 14u, 15u,
                                           16u));
