//===- tests/RandomProgramTest.cpp ----------------------------------------===//
//
// Fuzzing the whole stack: generate random loop nests with random affine
// accesses, interpret them, and check every executed dependence witness
// against the analysis (via DiffHarness). Catches soundness bugs --
// missing dependences, wrong distance ranges, false kills -- anywhere
// between the parser and the Section 4 engine.
//
//===----------------------------------------------------------------------===//

#include "DiffHarness.h"

#include <gtest/gtest.h>

#include <random>
#include <string>

using namespace omega;
using namespace omega::testutil;

namespace {

class ProgramGenerator {
public:
  explicit ProgramGenerator(unsigned Seed) : Rng(Seed) {}

  std::string generate() {
    Src.clear();
    Loops.clear();
    NumArrays = pick(1, 2);
    unsigned Depth = pick(1, 3);
    openLoops(Depth);
    unsigned Stmts = pick(1, 3);
    for (unsigned I = 0; I != Stmts; ++I)
      emitAssignment();
    closeLoops();
    // Sometimes a second, shallower nest to exercise cross-nest deps.
    if (chance(2)) {
      openLoops(pick(1, 2));
      emitAssignment();
      closeLoops();
    }
    return Src;
  }

private:
  int64_t pick(int64_t Lo, int64_t Hi) {
    return std::uniform_int_distribution<int64_t>(Lo, Hi)(Rng);
  }
  bool chance(int OneIn) { return pick(1, OneIn) == 1; }

  void indent() { Src.append(Loops.size() * 2, ' '); }

  void openLoops(unsigned Depth) {
    for (unsigned D = 0; D != Depth; ++D) {
      std::string Var(1, static_cast<char>('i' + Loops.size()));
      indent();
      // Rectangular or triangular lower bound; small constant ranges.
      std::string Lo = std::to_string(pick(0, 2));
      if (!Loops.empty() && chance(3))
        Lo = Loops.back(); // triangular: starts at the outer variable
      std::string Hi = std::to_string(pick(4, 7));
      std::string Step = chance(4) ? " step 2" : "";
      Src += "for " + Var + " := " + Lo + " to " + Hi + Step + " do\n";
      Loops.push_back(Var);
    }
  }

  void closeLoops() {
    while (!Loops.empty()) {
      Loops.pop_back();
      indent();
      Src += "endfor\n";
    }
  }

  std::string affineSubscript() {
    std::string Out;
    bool Any = false;
    for (const std::string &Var : Loops) {
      int64_t C = pick(-1, 2);
      if (C == 0)
        continue;
      if (Any)
        Out += C < 0 ? " - " : " + ";
      else if (C < 0)
        Out += "-";
      if (C != 1 && C != -1)
        Out += std::to_string(C < 0 ? -C : C) + "*";
      Out += Var;
      Any = true;
    }
    int64_t K = pick(-2, 2);
    if (!Any)
      return std::to_string(K);
    if (K != 0)
      Out += (K < 0 ? " - " : " + ") + std::to_string(K < 0 ? -K : K);
    return Out;
  }

  std::string arrayRef(bool TwoDims) {
    std::string Name(1, static_cast<char>('a' + pick(0, NumArrays - 1)));
    std::string Out = Name + "(" + affineSubscript();
    if (TwoDims)
      Out += ", " + affineSubscript();
    Out += ")";
    return Out;
  }

  void emitAssignment() {
    indent();
    bool TwoDims = chance(3);
    Src += arrayRef(TwoDims) + " := ";
    unsigned Reads = pick(0, 2);
    for (unsigned I = 0; I != Reads; ++I)
      Src += arrayRef(TwoDims) + " + ";
    Src += std::to_string(pick(0, 9)) + ";\n";
  }

  std::mt19937 Rng;
  std::string Src;
  std::vector<std::string> Loops;
  unsigned NumArrays = 1;
};

class RandomProgramTest : public ::testing::TestWithParam<unsigned> {};

} // namespace

TEST_P(RandomProgramTest, WitnessesAdmitted) {
  ProgramGenerator Gen(GetParam());
  unsigned TotalChecked = 0;
  for (unsigned T = 0; T != 12; ++T) {
    std::string Source = Gen.generate();
    ir::AnalyzedProgram AP = ir::analyzeSource(Source);
    ASSERT_TRUE(AP.ok()) << Source;
    TotalChecked += checkTraceWitnesses(AP, {}, "random");
    if (::testing::Test::HasFailure()) {
      ADD_FAILURE() << "failing program:\n" << Source;
      return;
    }
  }
  // The batch must have exercised real dependences.
  EXPECT_GT(TotalChecked, 50u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u,
                                           9u, 10u, 11u, 12u, 13u, 14u, 15u,
                                           16u));
