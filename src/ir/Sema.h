//===- ir/Sema.h - Semantic analysis and access collection ----------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers a parsed program into the analysis model:
///
///  * every loop is normalized to an ascending iteration variable with
///    step 1 (negative steps are reversed, the way the paper's authors
///    hand-normalized CHOLSKY; strides > 1 carry an existential stride),
///  * loop bounds become conjunctions of affine lower/upper bounds
///    (max(...) lower bounds and min(...) upper bounds),
///  * every array reference becomes an Access with affine subscripts over
///    the program's symbols; non-affine subexpressions and index-array
///    reads become uninterpreted Term symbols (Section 5),
///  * each access records its enclosing loops and a schedule path that
///    decides textual execution order.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_IR_SEMA_H
#define OMEGA_IR_SEMA_H

#include "ir/AST.h"
#include "ir/AffineExpr.h"
#include "ir/Parser.h"

#include <map>
#include <memory>
#include <string_view>
#include <vector>

namespace omega {
namespace ir {

struct SymbolInfo {
  std::string Name;
  SymKind Kind = SymKind::SymConst;
  /// Term symbols: source rendering for user dialogs ("i*j", "Q(L1+1)").
  std::string SourceText;
  /// Term symbols: loop iteration symbols the term's value depends on.
  std::vector<SymId> LoopParams;
  /// Term symbols that are index-array reads: the array and its subscripts.
  bool IsIndexArrayRead = false;
  std::string IndexArray;
  std::vector<AffineExpr> IndexSubs;
};

class SymbolTable {
public:
  SymId create(SymbolInfo Info);
  /// Finds a LoopIter/SymConst by name; -1 if absent.
  SymId lookup(const std::string &Name) const;
  const SymbolInfo &info(SymId S) const { return Syms[S]; }
  unsigned size() const { return Syms.size(); }
  /// Names indexed by SymId (for AffineExpr::toString).
  std::vector<std::string> names() const;

private:
  std::vector<SymbolInfo> Syms;
  std::map<std::string, SymId> ByName;
};

struct LoopInfo {
  std::string SourceVar; ///< variable name in the source
  SymId IterSym = -1;    ///< normalized ascending iteration symbol
  bool Reversed = false; ///< source variable == -IterSym (negative step)
  std::vector<AffineExpr> Lower; ///< IterSym >= each (max semantics)
  std::vector<AffineExpr> Upper; ///< IterSym <= each (min semantics)
  int64_t Stride = 1; ///< >1: IterSym == Lower[0] + Stride * q, q >= 0
  unsigned Depth = 0; ///< 0-based nesting depth
  std::vector<unsigned> Path; ///< body indices from the program root

  /// The source variable as an affine expression of IterSym.
  AffineExpr sourceVarExpr() const {
    return AffineExpr::symbol(IterSym, Reversed ? -1 : 1);
  }
};

struct Access {
  unsigned Id = 0;        ///< dense index into AnalyzedProgram::Accesses
  unsigned StmtLabel = 0; ///< 1-based statement number
  std::string Array;
  bool IsWrite = false;
  std::vector<AffineExpr> Subscripts;
  std::vector<const LoopInfo *> Loops; ///< enclosing, outermost first
  /// Schedule: body indices from the root to the statement, with a final
  /// entry ordering accesses within the statement (reads 0, write 1).
  std::vector<unsigned> Path;
  std::string Text; ///< source rendering, e.g. "A(L,I+JJ,J)"

  unsigned depth() const { return Loops.size(); }
};

struct AnalyzedProgram {
  Program Source;
  SymbolTable Symbols;
  std::vector<std::unique_ptr<LoopInfo>> Loops;
  std::vector<Access> Accesses;
  std::vector<Diagnostic> Diags;

  bool ok() const { return Diags.empty(); }

  /// Number of loops enclosing both accesses (shared ancestors).
  static unsigned numCommonLoops(const Access &A, const Access &B);
  /// True if A executes before B when all common loop variables are equal.
  static bool textuallyBefore(const Access &A, const Access &B);
};

/// Lowers a parsed program. Errors are appended to the result's Diags.
AnalyzedProgram analyze(Program P);

/// Parses and lowers in one step; parse errors carry over into Diags.
AnalyzedProgram analyzeSource(std::string_view Source);

} // namespace ir
} // namespace omega

#endif // OMEGA_IR_SEMA_H
