//===- ir/Lexer.cpp -------------------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "ir/Lexer.h"

#include <cctype>

using namespace omega;
using namespace omega::ir;

char Lexer::advance() {
  char C = Source[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

void Lexer::skipTrivia() {
  while (Pos < Source.size()) {
    char C = peek();
    if (std::isspace(static_cast<unsigned char>(C))) {
      advance();
      continue;
    }
    if (C == '#') {
      while (Pos < Source.size() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && Pos + 1 < Source.size() && Source[Pos + 1] == '/') {
      while (Pos < Source.size() && peek() != '\n')
        advance();
      continue;
    }
    break;
  }
}

namespace {

std::string toLower(std::string S) {
  for (char &C : S)
    C = static_cast<char>(std::tolower(static_cast<unsigned char>(C)));
  return S;
}

} // namespace

Token Lexer::next() {
  skipTrivia();
  Token T;
  T.Loc = SourceLoc{Line, Col};
  if (Pos >= Source.size()) {
    T.Kind = TokenKind::Eof;
    return T;
  }

  char C = advance();
  switch (C) {
  case '(':
    T.Kind = TokenKind::LParen;
    return T;
  case ')':
    T.Kind = TokenKind::RParen;
    return T;
  case ',':
    T.Kind = TokenKind::Comma;
    return T;
  case ';':
    T.Kind = TokenKind::Semi;
    return T;
  case '+':
    T.Kind = TokenKind::Plus;
    return T;
  case '-':
    T.Kind = TokenKind::Minus;
    return T;
  case '*':
    T.Kind = TokenKind::Star;
    return T;
  case ':':
    if (peek() == '=') {
      advance();
      T.Kind = TokenKind::Assign;
      return T;
    }
    T.Kind = TokenKind::Error;
    T.Text = ":";
    return T;
  default:
    break;
  }

  if (std::isdigit(static_cast<unsigned char>(C))) {
    int64_t V = C - '0';
    while (Pos < Source.size() &&
           std::isdigit(static_cast<unsigned char>(peek())))
      V = V * 10 + (advance() - '0');
    T.Kind = TokenKind::IntLit;
    T.IntValue = V;
    return T;
  }

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    std::string Name(1, C);
    while (Pos < Source.size() &&
           (std::isalnum(static_cast<unsigned char>(peek())) ||
            peek() == '_'))
      Name += advance();
    std::string Lower = toLower(Name);
    if (Lower == "for")
      T.Kind = TokenKind::KwFor;
    else if (Lower == "to")
      T.Kind = TokenKind::KwTo;
    else if (Lower == "do")
      T.Kind = TokenKind::KwDo;
    else if (Lower == "endfor")
      T.Kind = TokenKind::KwEndfor;
    else if (Lower == "step")
      T.Kind = TokenKind::KwStep;
    else if (Lower == "min")
      T.Kind = TokenKind::KwMin;
    else if (Lower == "max")
      T.Kind = TokenKind::KwMax;
    else if (Lower == "symbolic")
      T.Kind = TokenKind::KwSymbolic;
    else
      T.Kind = TokenKind::Ident;
    T.Text = std::move(Name);
    return T;
  }

  T.Kind = TokenKind::Error;
  T.Text = std::string(1, C);
  return T;
}

const char *ir::tokenKindName(TokenKind K) {
  switch (K) {
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Error:
    return "invalid character";
  case TokenKind::Ident:
    return "identifier";
  case TokenKind::IntLit:
    return "integer literal";
  case TokenKind::Assign:
    return "':='";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwTo:
    return "'to'";
  case TokenKind::KwDo:
    return "'do'";
  case TokenKind::KwEndfor:
    return "'endfor'";
  case TokenKind::KwStep:
    return "'step'";
  case TokenKind::KwMin:
    return "'min'";
  case TokenKind::KwMax:
    return "'max'";
  case TokenKind::KwSymbolic:
    return "'symbolic'";
  }
  return "token";
}
