//===- ir/AffineExpr.h - Affine forms over program symbols ----------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Affine expressions over the analysis symbols of a program: normalized
/// loop iteration variables, symbolic constants, and uninterpreted terms
/// (non-affine subexpressions and index-array reads, handled per Section 5
/// of the paper as opaque symbols).
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_IR_AFFINEEXPR_H
#define OMEGA_IR_AFFINEEXPR_H

#include "support/MathUtils.h"

#include <cstdint>
#include <string>
#include <vector>

namespace omega {
namespace ir {

/// Index into a SymbolTable.
using SymId = int;

enum class SymKind : uint8_t {
  LoopIter, ///< normalized iteration variable of one loop
  SymConst, ///< loop-invariant symbolic constant (paper's Sym)
  Term,     ///< uninterpreted term: non-affine expression or index array read
};

class AffineExpr {
public:
  AffineExpr() = default;
  explicit AffineExpr(int64_t Constant) : Const(Constant) {}
  static AffineExpr symbol(SymId S, int64_t Coeff = 1) {
    AffineExpr E;
    if (Coeff != 0)
      E.TermList.push_back({S, Coeff});
    return E;
  }

  int64_t getConstant() const { return Const; }
  void setConstant(int64_t C) { Const = C; }

  /// (symbol, coefficient) pairs, sorted by symbol, no zero coefficients.
  const std::vector<std::pair<SymId, int64_t>> &terms() const {
    return TermList;
  }

  int64_t coeffOf(SymId S) const;
  bool isConstant() const { return TermList.empty(); }
  bool references(SymId S) const { return coeffOf(S) != 0; }

  AffineExpr &operator+=(const AffineExpr &O);
  AffineExpr &operator-=(const AffineExpr &O);
  AffineExpr operator+(const AffineExpr &O) const;
  AffineExpr operator-(const AffineExpr &O) const;
  AffineExpr scaled(int64_t K) const;
  AffineExpr negated() const { return scaled(-1); }

  /// Replaces symbol \p S with \p Replacement.
  AffineExpr substituted(SymId S, const AffineExpr &Replacement) const;

  bool operator==(const AffineExpr &O) const {
    return Const == O.Const && TermList == O.TermList;
  }

  /// Renders with a name lookup callback.
  std::string toString(
      const std::vector<std::string> &SymNames) const;

private:
  void addTerm(SymId S, int64_t Coeff);

  std::vector<std::pair<SymId, int64_t>> TermList;
  int64_t Const = 0;
};

} // namespace ir
} // namespace omega

#endif // OMEGA_IR_AFFINEEXPR_H
