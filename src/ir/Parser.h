//===- ir/Parser.h - Recursive-descent parser ------------------------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#ifndef OMEGA_IR_PARSER_H
#define OMEGA_IR_PARSER_H

#include "ir/AST.h"

#include <string>
#include <string_view>
#include <vector>

namespace omega {
namespace ir {

struct Diagnostic {
  SourceLoc Loc;
  std::string Message;

  std::string toString() const {
    return std::to_string(Loc.Line) + ":" + std::to_string(Loc.Col) + ": " +
           Message;
  }
};

struct ParseResult {
  Program Prog;
  std::vector<Diagnostic> Diags;

  bool ok() const { return Diags.empty(); }
};

/// Parses a whole tiny-style program. Parse errors are collected (with
/// panic-mode recovery to the next ';' or 'endfor') rather than aborting,
/// so a driver can report them all at once.
ParseResult parseProgram(std::string_view Source);

} // namespace ir
} // namespace omega

#endif // OMEGA_IR_PARSER_H
