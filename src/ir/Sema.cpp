//===- ir/Sema.cpp --------------------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "ir/Sema.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <set>

using namespace omega;
using namespace omega::ir;

SymId SymbolTable::create(SymbolInfo Info) {
  SymId S = static_cast<SymId>(Syms.size());
  // Only symbolic constants resolve by name; loop iterators are scoped
  // dynamically (two sibling loops may reuse a variable name) and terms
  // are per-occurrence.
  if (Info.Kind == SymKind::SymConst)
    ByName[Info.Name] = S;
  Syms.push_back(std::move(Info));
  return S;
}

SymId SymbolTable::lookup(const std::string &Name) const {
  auto It = ByName.find(Name);
  return It == ByName.end() ? -1 : It->second;
}

std::vector<std::string> SymbolTable::names() const {
  std::vector<std::string> Out;
  Out.reserve(Syms.size());
  for (const SymbolInfo &S : Syms)
    Out.push_back(S.Name);
  return Out;
}

unsigned AnalyzedProgram::numCommonLoops(const Access &A, const Access &B) {
  unsigned N = 0;
  while (N < A.Loops.size() && N < B.Loops.size() &&
         A.Loops[N] == B.Loops[N])
    ++N;
  return N;
}

bool AnalyzedProgram::textuallyBefore(const Access &A, const Access &B) {
  // Lexicographic comparison of schedule paths. Equal paths cannot happen:
  // the final path entry distinguishes reads from the write, and two reads
  // of one statement are never compared (input dependences are ignored).
  return A.Path < B.Path;
}

namespace {

class Sema {
public:
  explicit Sema(Program P) { Out.Source = std::move(P); }

  AnalyzedProgram run() {
    normalizeScalarReads();
    for (const std::string &Name : Out.Source.SymbolicConsts)
      getOrCreateSymConst(Name);
    std::vector<unsigned> Path;
    std::vector<const LoopInfo *> LoopStack;
    walk(Out.Source.Body, Path, LoopStack);
    return std::move(Out);
  }

private:
  void error(SourceLoc Loc, std::string Message) {
    Out.Diags.push_back(Diagnostic{Loc, std::move(Message)});
  }

  /// A name assigned as a scalar ("k := k + j") denotes a mutable
  /// zero-dimensional array, so bare references to it are reads, not
  /// symbolic constants. Rewrite VarRef(k) into Read(k, {}) throughout
  /// (the interpreter and access collection then agree on the program).
  void normalizeScalarReads() {
    std::set<std::string> Scalars;
    std::function<void(const std::vector<Stmt> &)> Collect =
        [&](const std::vector<Stmt> &Body) {
          for (const Stmt &S : Body) {
            if (S.isFor())
              Collect(S.asFor().Body);
            else if (S.asAssign().Subscripts.empty())
              Scalars.insert(S.asAssign().Array);
          }
        };
    Collect(Out.Source.Body);
    if (Scalars.empty())
      return;

    std::function<void(Expr &)> Rewrite = [&](Expr &E) {
      if (E.getKind() == Expr::Kind::VarRef && Scalars.count(E.getName())) {
        E = Expr::read(E.getName(), {}, E.getLoc());
        return;
      }
      for (Expr &Arg : E.mutableArgs())
        Rewrite(Arg);
    };
    std::function<void(std::vector<Stmt> &)> Walk =
        [&](std::vector<Stmt> &Body) {
          for (Stmt &S : Body) {
            if (S.isFor()) {
              ForStmt &F = S.asFor();
              if (Scalars.count(F.Var))
                error(F.Loc, "loop variable '" + F.Var +
                                 "' collides with an assigned scalar");
              Rewrite(F.Lo);
              Rewrite(F.Hi);
              Walk(F.Body);
            } else {
              AssignStmt &A = S.asAssign();
              for (Expr &Sub : A.Subscripts)
                Rewrite(Sub);
              Rewrite(A.RHS);
            }
          }
        };
    Walk(Out.Source.Body);
  }

  SymId getOrCreateSymConst(const std::string &Name) {
    SymId S = Out.Symbols.lookup(Name);
    if (S >= 0)
      return S;
    SymbolInfo Info;
    Info.Name = Name;
    Info.Kind = SymKind::SymConst;
    return Out.Symbols.create(std::move(Info));
  }

  const LoopInfo *findLoop(const std::string &Var,
                           const std::vector<const LoopInfo *> &Stack) {
    for (auto It = Stack.rbegin(); It != Stack.rend(); ++It)
      if ((*It)->SourceVar == Var)
        return *It;
    return nullptr;
  }

  /// Creates a Term symbol for a non-affine or index-array expression.
  SymId makeTerm(const Expr &E, const std::vector<const LoopInfo *> &Stack) {
    SymbolInfo Info;
    Info.Kind = SymKind::Term;
    Info.SourceText = E.toString();
    Info.Name = "_t" + std::to_string(NextTermId++) + "<" + Info.SourceText +
                ">";
    // Record which loop iterators parameterize the term.
    std::set<SymId> Params;
    collectLoopParams(E, Stack, Params);
    Info.LoopParams.assign(Params.begin(), Params.end());
    if (E.getKind() == Expr::Kind::Read) {
      Info.IsIndexArrayRead = true;
      Info.IndexArray = E.getName();
      for (const Expr &Sub : E.args())
        Info.IndexSubs.push_back(lowerExpr(Sub, Stack));
    }
    return Out.Symbols.create(std::move(Info));
  }

  void collectLoopParams(const Expr &E,
                         const std::vector<const LoopInfo *> &Stack,
                         std::set<SymId> &Params) {
    if (E.getKind() == Expr::Kind::VarRef) {
      if (const LoopInfo *L = findLoop(E.getName(), Stack))
        Params.insert(L->IterSym);
      return;
    }
    for (const Expr &Arg : E.args())
      collectLoopParams(Arg, Stack, Params);
  }

  /// Lowers an expression to an affine form. Non-affine subexpressions
  /// become Term symbols (Section 5 of the paper).
  AffineExpr lowerExpr(const Expr &E,
                       const std::vector<const LoopInfo *> &Stack) {
    switch (E.getKind()) {
    case Expr::Kind::IntLit:
      return AffineExpr(E.getIntValue());
    case Expr::Kind::VarRef: {
      if (const LoopInfo *L = findLoop(E.getName(), Stack))
        return L->sourceVarExpr();
      return AffineExpr::symbol(getOrCreateSymConst(E.getName()));
    }
    case Expr::Kind::Add:
      return lowerExpr(E.args()[0], Stack) + lowerExpr(E.args()[1], Stack);
    case Expr::Kind::Sub:
      return lowerExpr(E.args()[0], Stack) - lowerExpr(E.args()[1], Stack);
    case Expr::Kind::Neg:
      return lowerExpr(E.args()[0], Stack).negated();
    case Expr::Kind::Mul: {
      AffineExpr L = lowerExpr(E.args()[0], Stack);
      AffineExpr R = lowerExpr(E.args()[1], Stack);
      if (L.isConstant())
        return R.scaled(L.getConstant());
      if (R.isConstant())
        return L.scaled(R.getConstant());
      // Non-linear: an uninterpreted term (e.g. i*j, Example 10).
      return AffineExpr::symbol(makeTerm(E, Stack));
    }
    case Expr::Kind::Read:
      // An array value used as data: an uninterpreted term (Example 8).
      return AffineExpr::symbol(makeTerm(E, Stack));
    case Expr::Kind::Min:
    case Expr::Kind::Max:
      // min/max outside a loop-bound position is opaque.
      return AffineExpr::symbol(makeTerm(E, Stack));
    }
    assert(false && "unknown expression kind");
    return AffineExpr();
  }

  /// Decomposes a bound expression into the list of affine pieces whose
  /// max (WantMax) or min (!WantMax) it denotes, distributing arithmetic
  /// over min/max: max(a,b)+c == max(a+c,b+c), -max(a,b) == min(-a,-b),
  /// and so on. The wrong combinator for the position (a min inside a
  /// max-decomposition) is not conjunctively expressible and is an error.
  bool flattenBound(const Expr &E, bool WantMax,
                    const std::vector<const LoopInfo *> &Stack,
                    std::vector<AffineExpr> &Out) {
    switch (E.getKind()) {
    case Expr::Kind::Max:
    case Expr::Kind::Min: {
      bool IsMax = E.getKind() == Expr::Kind::Max;
      if (IsMax != WantMax) {
        error(E.getLoc(), WantMax
                              ? "min() is not expressible in this bound "
                                "position (lower bounds take max)"
                              : "max() is not expressible in this bound "
                                "position (upper bounds take min)");
        return false;
      }
      for (const Expr &Arg : E.args())
        if (!flattenBound(Arg, WantMax, Stack, Out))
          return false;
      return true;
    }
    case Expr::Kind::Neg: {
      std::vector<AffineExpr> Inner;
      if (!flattenBound(E.args()[0], !WantMax, Stack, Inner))
        return false;
      for (const AffineExpr &A : Inner)
        Out.push_back(A.negated());
      return true;
    }
    case Expr::Kind::Add:
    case Expr::Kind::Sub: {
      bool IsAdd = E.getKind() == Expr::Kind::Add;
      std::vector<AffineExpr> L, R;
      if (!flattenBound(E.args()[0], WantMax, Stack, L) ||
          !flattenBound(E.args()[1], IsAdd ? WantMax : !WantMax, Stack, R))
        return false;
      for (const AffineExpr &A : L)
        for (const AffineExpr &B : R)
          Out.push_back(IsAdd ? A + B : A - B);
      return true;
    }
    case Expr::Kind::Mul: {
      // Constant scaling distributes, flipping polarity for negatives.
      const Expr *Lit = nullptr, *Other = nullptr;
      if (E.args()[0].getKind() == Expr::Kind::IntLit) {
        Lit = &E.args()[0];
        Other = &E.args()[1];
      } else if (E.args()[1].getKind() == Expr::Kind::IntLit) {
        Lit = &E.args()[1];
        Other = &E.args()[0];
      }
      if (Lit) {
        int64_t K = Lit->getIntValue();
        if (K == 0) {
          Out.push_back(AffineExpr(0));
          return true;
        }
        std::vector<AffineExpr> Inner;
        if (!flattenBound(*Other, K > 0 ? WantMax : !WantMax, Stack, Inner))
          return false;
        for (const AffineExpr &A : Inner)
          Out.push_back(A.scaled(K));
        return true;
      }
      Out.push_back(lowerExpr(E, Stack));
      return true;
    }
    default:
      Out.push_back(lowerExpr(E, Stack));
      return true;
    }
  }

  void lowerBoundList(const Expr &E, bool IsLower,
                      const std::vector<const LoopInfo *> &Stack,
                      std::vector<AffineExpr> &Bounds) {
    if (!flattenBound(E, /*WantMax=*/IsLower, Stack, Bounds) &&
        Bounds.empty())
      Bounds.push_back(AffineExpr(0)); // recovery placeholder after error
  }

  void walk(const std::vector<Stmt> &Body, std::vector<unsigned> &Path,
            std::vector<const LoopInfo *> &Stack) {
    for (unsigned I = 0; I != Body.size(); ++I) {
      Path.push_back(I);
      const Stmt &S = Body[I];
      if (S.isFor())
        handleFor(S.asFor(), Path, Stack);
      else
        handleAssign(S.asAssign(), Path, Stack);
      Path.pop_back();
    }
  }

  void handleFor(const ForStmt &F, std::vector<unsigned> &Path,
                 std::vector<const LoopInfo *> &Stack) {
    if (findLoop(F.Var, Stack))
      error(F.Loc, "loop variable '" + F.Var + "' shadows an outer loop");
    if (Out.Symbols.lookup(F.Var) >= 0)
      error(F.Loc,
            "loop variable '" + F.Var + "' collides with a symbolic name");

    auto L = std::make_unique<LoopInfo>();
    L->SourceVar = F.Var;
    L->Reversed = F.Step < 0;
    L->Stride = F.Step < 0 ? -F.Step : F.Step;
    L->Depth = Stack.size();
    L->Path = Path;

    SymbolInfo IterInfo;
    IterInfo.Kind = SymKind::LoopIter;
    IterInfo.Name = L->Reversed ? F.Var + "'" : F.Var;
    L->IterSym = Out.Symbols.create(std::move(IterInfo));

    // Normalize: for Var := Lo to Hi step S. With S > 0 the iteration
    // symbol is Var itself; with S < 0 let n := -Var so that n ascends
    // from -Lo (stride |S|) to -Hi... i.e. lower bound -Lo, upper -Hi.
    if (!L->Reversed) {
      lowerBoundList(F.Lo, /*IsLower=*/true, Stack, L->Lower);
      lowerBoundList(F.Hi, /*IsLower=*/false, Stack, L->Upper);
    } else {
      // n >= -Lo: Lo was the (largest) starting value. A max() starting
      // point becomes min() after negation, which is not conjunctive.
      if (F.Lo.getKind() == Expr::Kind::Max ||
          F.Lo.getKind() == Expr::Kind::Min ||
          F.Hi.getKind() == Expr::Kind::Max ||
          F.Hi.getKind() == Expr::Kind::Min)
        error(F.Loc, "min/max bounds are not supported on downward loops; "
                     "normalize the loop first");
      L->Lower.push_back(lowerExpr(F.Lo, Stack).negated());
      L->Upper.push_back(lowerExpr(F.Hi, Stack).negated());
    }
    if (L->Stride != 1 && L->Lower.size() != 1)
      error(F.Loc, "a stride requires a single lower bound");

    Stack.push_back(L.get());
    Out.Loops.push_back(std::move(L));
    walk(F.Body, Path, Stack);
    Stack.pop_back();
  }

  void handleAssign(const AssignStmt &A, std::vector<unsigned> &Path,
                    std::vector<const LoopInfo *> &Stack) {
    // Reads first (they execute before the write of the same instance),
    // in the canonical order shared with the interpreter.
    for (const Expr *Read : readsInCanonicalOrder(A))
      addReadAccess(*Read, A, Path, Stack);

    Access W;
    W.StmtLabel = A.Label;
    W.Array = A.Array;
    W.IsWrite = true;
    for (const Expr &Sub : A.Subscripts)
      W.Subscripts.push_back(lowerExpr(Sub, Stack));
    W.Loops.assign(Stack.begin(), Stack.end());
    W.Path = Path;
    W.Path.push_back(1); // the write follows the statement's reads
    W.Text = A.lhsToString();
    W.Id = Out.Accesses.size();
    Out.Accesses.push_back(std::move(W));
  }

  /// Adds one Read node as a read access (reads nested inside subscripts
  /// of other reads are separate accesses, per Example 8).
  void addReadAccess(const Expr &E, const AssignStmt &Stmt,
                     std::vector<unsigned> &Path,
                     const std::vector<const LoopInfo *> &Stack) {
    assert(E.getKind() == Expr::Kind::Read && "read access expected");
    Access R;
    R.StmtLabel = Stmt.Label;
    R.Array = E.getName();
    R.IsWrite = false;
    for (const Expr &Sub : E.args())
      R.Subscripts.push_back(lowerExpr(Sub, Stack));
    R.Loops.assign(Stack.begin(), Stack.end());
    R.Path = Path;
    R.Path.push_back(0); // reads precede the statement's write
    R.Text = E.toString();
    R.Id = Out.Accesses.size();
    Out.Accesses.push_back(std::move(R));
  }

  AnalyzedProgram Out;
  unsigned NextTermId = 0;
};

} // namespace

AnalyzedProgram ir::analyze(Program P) { return Sema(std::move(P)).run(); }

AnalyzedProgram ir::analyzeSource(std::string_view Source) {
  ParseResult PR = parseProgram(Source);
  AnalyzedProgram AP = analyze(std::move(PR.Prog));
  AP.Diags.insert(AP.Diags.begin(), PR.Diags.begin(), PR.Diags.end());
  return AP;
}
