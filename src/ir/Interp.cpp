//===- ir/Interp.cpp ------------------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "ir/Interp.h"

#include "support/MathUtils.h"

#include <algorithm>
#include <functional>

using namespace omega;
using namespace omega::ir;

namespace {

// Numeric programs (CHOLSKY!) grow values exponentially; dependence
// ground truth only needs values where they feed subscripts, so the
// interpreter clamps arithmetic to a wide deterministic band instead of
// trapping on overflow.
constexpr int64_t ValueCap = int64_t(1) << 40;

int64_t clampValue(__int128 V) {
  if (V > ValueCap)
    return ValueCap;
  if (V < -ValueCap)
    return -ValueCap;
  return static_cast<int64_t>(V);
}

int64_t satAdd(int64_t A, int64_t B) { return clampValue(__int128(A) + B); }
int64_t satSub(int64_t A, int64_t B) { return clampValue(__int128(A) - B); }
int64_t satMul(int64_t A, int64_t B) { return clampValue(__int128(A) * B); }

class Interpreter {
public:
  Interpreter(const Program &P, const ExecConfig &Config)
      : Prog(P), Config(Config) {}

  ExecResult run() {
    execBody(Prog.Body);
    // Final memory: only the elements some write produced (reads of
    // never-written elements materialize default values in Arrays and
    // are filtered out here).
    for (const TraceEntry &T : Result.Trace)
      if (T.IsWrite)
        Result.FinalState[T.Array][T.Location] = Arrays[T.Array][T.Location];
    return std::move(Result);
  }

private:
  struct LoopFrame {
    const ForStmt *Loop;
    int64_t Value; ///< current source-variable value
  };

  void fail(const std::string &Message) {
    if (!Result.Failed) {
      Result.Failed = true;
      Result.Error = Message;
    }
  }

  bool done() const {
    return Result.Failed || Result.Truncated;
  }

  /// Deterministic value for a never-written array element.
  int64_t defaultValue(const std::string &Array,
                       const std::vector<int64_t> &Loc) {
    uint64_t H = std::hash<std::string>()(Array);
    for (int64_t V : Loc)
      H = H * 1099511628211ULL + static_cast<uint64_t>(V) + 0x9e3779b9;
    return static_cast<int64_t>(H % 5) + 1; // small positive values
  }

  int64_t lookupVar(const std::string &Name) {
    for (auto It = Loops.rbegin(); It != Loops.rend(); ++It)
      if (It->Loop->Var == Name)
        return It->Value;
    auto Sym = Config.Symbols.find(Name);
    if (Sym != Config.Symbols.end())
      return Sym->second;
    fail("unbound symbol '" + Name + "'");
    return 0;
  }

  int64_t readArray(const std::string &Array, std::vector<int64_t> Loc) {
    auto &Store = Arrays[Array];
    auto It = Store.find(Loc);
    if (It != Store.end())
      return It->second;
    int64_t V = defaultValue(Array, Loc);
    Store.emplace(std::move(Loc), V);
    return V;
  }

  int64_t eval(const Expr &E) {
    switch (E.getKind()) {
    case Expr::Kind::IntLit:
      return E.getIntValue();
    case Expr::Kind::VarRef:
      return lookupVar(E.getName());
    case Expr::Kind::Read: {
      std::vector<int64_t> Loc;
      for (const Expr &Sub : E.args())
        Loc.push_back(eval(Sub));
      return readArray(E.getName(), std::move(Loc));
    }
    case Expr::Kind::Add:
      return satAdd(eval(E.args()[0]), eval(E.args()[1]));
    case Expr::Kind::Sub:
      return satSub(eval(E.args()[0]), eval(E.args()[1]));
    case Expr::Kind::Mul:
      return satMul(eval(E.args()[0]), eval(E.args()[1]));
    case Expr::Kind::Neg:
      return satMul(eval(E.args()[0]), -1);
    case Expr::Kind::Min:
    case Expr::Kind::Max: {
      int64_t Best = eval(E.args()[0]);
      for (unsigned I = 1; I != E.args().size(); ++I) {
        int64_t V = eval(E.args()[I]);
        Best = E.getKind() == Expr::Kind::Min ? std::min(Best, V)
                                              : std::max(Best, V);
      }
      return Best;
    }
    }
    fail("unknown expression kind");
    return 0;
  }

  std::vector<int64_t> currentIters() const {
    std::vector<int64_t> Out;
    for (const LoopFrame &F : Loops)
      Out.push_back(F.Loop->Step < 0 ? -F.Value : F.Value);
    return Out;
  }

  void execBody(const std::vector<Stmt> &Body) {
    for (const Stmt &S : Body) {
      if (done())
        return;
      if (S.isFor())
        execFor(S.asFor());
      else
        execAssign(S.asAssign());
    }
  }

  void execFor(const ForStmt &F) {
    int64_t Lo = eval(F.Lo);
    int64_t Hi = eval(F.Hi);
    if (done())
      return;
    Loops.push_back(LoopFrame{&F, Lo});
    for (int64_t V = Lo; F.Step > 0 ? V <= Hi : V >= Hi; V += F.Step) {
      Loops.back().Value = V;
      execBody(F.Body);
      if (done())
        break;
    }
    Loops.pop_back();
  }

  void execAssign(const AssignStmt &A) {
    if (++Steps > Config.MaxSteps) {
      Result.Truncated = true;
      return;
    }
    std::vector<int64_t> Iters = currentIters();

    // Record every read in the canonical order shared with Sema.
    unsigned Ordinal = 0;
    for (const Expr *Read : readsInCanonicalOrder(A)) {
      TraceEntry T;
      T.StmtLabel = A.Label;
      T.IsWrite = false;
      T.ReadOrdinal = Ordinal++;
      T.Array = Read->getName();
      for (const Expr &Sub : Read->args())
        T.Location.push_back(eval(Sub));
      T.Iters = Iters;
      Result.Trace.push_back(std::move(T));
      if (done())
        return;
    }

    int64_t Value = eval(A.RHS);
    std::vector<int64_t> Loc;
    for (const Expr &Sub : A.Subscripts)
      Loc.push_back(eval(Sub));
    if (done())
      return;

    TraceEntry W;
    W.StmtLabel = A.Label;
    W.IsWrite = true;
    W.Array = A.Array;
    W.Location = Loc;
    W.Iters = std::move(Iters);
    Result.Trace.push_back(std::move(W));

    Arrays[A.Array][std::move(Loc)] = Value;
  }

  const Program &Prog;
  const ExecConfig &Config;
  ExecResult Result;
  std::vector<LoopFrame> Loops;
  std::map<std::string, std::map<std::vector<int64_t>, int64_t>> Arrays;
  uint64_t Steps = 0;
};

} // namespace

ExecResult ir::interpret(const Program &P, const ExecConfig &Config) {
  return Interpreter(P, Config).run();
}
