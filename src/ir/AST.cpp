//===- ir/AST.cpp ---------------------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "ir/AST.h"

#include <cassert>

using namespace omega;
using namespace omega::ir;

Expr Expr::intLit(int64_t V, SourceLoc Loc) {
  Expr E(Kind::IntLit);
  E.IntValue = V;
  E.Loc = Loc;
  return E;
}

Expr Expr::varRef(std::string Name, SourceLoc Loc) {
  Expr E(Kind::VarRef);
  E.Name = std::move(Name);
  E.Loc = Loc;
  return E;
}

Expr Expr::read(std::string Array, std::vector<Expr> Subs, SourceLoc Loc) {
  Expr E(Kind::Read);
  E.Name = std::move(Array);
  E.Args = std::move(Subs);
  E.Loc = Loc;
  return E;
}

Expr Expr::add(Expr L, Expr R) {
  Expr E(Kind::Add);
  E.Loc = L.Loc;
  E.Args.push_back(std::move(L));
  E.Args.push_back(std::move(R));
  return E;
}

Expr Expr::sub(Expr L, Expr R) {
  Expr E(Kind::Sub);
  E.Loc = L.Loc;
  E.Args.push_back(std::move(L));
  E.Args.push_back(std::move(R));
  return E;
}

Expr Expr::mul(Expr L, Expr R) {
  Expr E(Kind::Mul);
  E.Loc = L.Loc;
  E.Args.push_back(std::move(L));
  E.Args.push_back(std::move(R));
  return E;
}

Expr Expr::neg(Expr Inner) {
  Expr E(Kind::Neg);
  E.Loc = Inner.Loc;
  E.Args.push_back(std::move(Inner));
  return E;
}

Expr Expr::min(std::vector<Expr> Args, SourceLoc Loc) {
  assert(!Args.empty() && "min() needs arguments");
  Expr E(Kind::Min);
  E.Args = std::move(Args);
  E.Loc = Loc;
  return E;
}

Expr Expr::max(std::vector<Expr> Args, SourceLoc Loc) {
  assert(!Args.empty() && "max() needs arguments");
  Expr E(Kind::Max);
  E.Args = std::move(Args);
  E.Loc = Loc;
  return E;
}

namespace {

/// Operator precedence for parenthesization while printing.
int precedenceOf(Expr::Kind K) {
  switch (K) {
  case Expr::Kind::Add:
  case Expr::Kind::Sub:
    return 1;
  case Expr::Kind::Mul:
    return 2;
  case Expr::Kind::Neg:
    return 3;
  default:
    return 4;
  }
}

void printExpr(const Expr &E, int ParentPrec, std::string &Out) {
  int Prec = precedenceOf(E.getKind());
  bool Parens = Prec < ParentPrec;
  if (Parens)
    Out += "(";
  switch (E.getKind()) {
  case Expr::Kind::IntLit:
    Out += std::to_string(E.getIntValue());
    break;
  case Expr::Kind::VarRef:
    Out += E.getName();
    break;
  case Expr::Kind::Read:
  case Expr::Kind::Min:
  case Expr::Kind::Max: {
    if (E.getKind() == Expr::Kind::Min)
      Out += "min";
    else if (E.getKind() == Expr::Kind::Max)
      Out += "max";
    else
      Out += E.getName();
    if (E.getKind() == Expr::Kind::Read && E.args().empty())
      break; // scalar read: just the name
    Out += "(";
    for (unsigned I = 0; I != E.args().size(); ++I) {
      if (I)
        Out += ",";
      printExpr(E.args()[I], 0, Out);
    }
    Out += ")";
    break;
  }
  case Expr::Kind::Add:
  case Expr::Kind::Sub:
    printExpr(E.args()[0], Prec, Out);
    Out += E.getKind() == Expr::Kind::Add ? "+" : "-";
    printExpr(E.args()[1], Prec + 1, Out);
    break;
  case Expr::Kind::Mul:
    printExpr(E.args()[0], Prec, Out);
    Out += "*";
    printExpr(E.args()[1], Prec + 1, Out);
    break;
  case Expr::Kind::Neg:
    Out += "-";
    printExpr(E.args()[0], Prec, Out);
    break;
  }
  if (Parens)
    Out += ")";
}

void printStmt(const Stmt &S, unsigned Indent, std::string &Out) {
  Out.append(Indent, ' ');
  if (S.isFor()) {
    const ForStmt &F = S.asFor();
    Out += "for " + F.Var + " := " + F.Lo.toString() + " to " +
           F.Hi.toString();
    if (F.Step != 1)
      Out += " step " + std::to_string(F.Step);
    Out += " do\n";
    for (const Stmt &Child : F.Body)
      printStmt(Child, Indent + 2, Out);
    Out.append(Indent, ' ');
    Out += "endfor\n";
    return;
  }
  Out += S.asAssign().toString() + "\n";
}

} // namespace

std::string Expr::toString() const {
  std::string Out;
  printExpr(*this, 0, Out);
  return Out;
}

std::string AssignStmt::lhsToString() const {
  std::string Out = Array;
  if (!Subscripts.empty()) {
    Out += "(";
    for (unsigned I = 0; I != Subscripts.size(); ++I) {
      if (I)
        Out += ",";
      Out += Subscripts[I].toString();
    }
    Out += ")";
  }
  return Out;
}

std::string AssignStmt::toString() const {
  return lhsToString() + " := " + RHS.toString() + ";";
}

static void collectReadsPreOrder(const Expr &E,
                                 std::vector<const Expr *> &Out) {
  if (E.getKind() == Expr::Kind::Read)
    Out.push_back(&E);
  for (const Expr &Arg : E.args())
    collectReadsPreOrder(Arg, Out);
}

std::vector<const Expr *> ir::readsInCanonicalOrder(const AssignStmt &A) {
  std::vector<const Expr *> Out;
  collectReadsPreOrder(A.RHS, Out);
  for (const Expr &Sub : A.Subscripts)
    collectReadsPreOrder(Sub, Out);
  return Out;
}

std::string Program::toString() const {
  std::string Out;
  if (!SymbolicConsts.empty()) {
    Out += "symbolic ";
    for (unsigned I = 0; I != SymbolicConsts.size(); ++I) {
      if (I)
        Out += ", ";
      Out += SymbolicConsts[I];
    }
    Out += ";\n";
  }
  for (const Stmt &S : Body)
    printStmt(S, 0, Out);
  return Out;
}
