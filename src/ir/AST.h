//===- ir/AST.h - Syntax tree for the tiny-style loop language -----------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The abstract syntax tree for the loop language the analyses consume --
/// a close cousin of Michael Wolfe's `tiny` tool, which the paper's
/// implementation extended. Programs are nests of `for` loops with affine
/// (min/max) bounds and constant steps around array assignments with
/// affine subscripts; scalars are zero-dimensional arrays. Example:
///
/// \code
///   symbolic n, m;
///   for L1 := 1 to n do
///     for L2 := 2 to m do
///       a(L2) := a(L2 - 1);
///     endfor
///   endfor
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_IR_AST_H
#define OMEGA_IR_AST_H

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

namespace omega {
namespace ir {

struct SourceLoc {
  unsigned Line = 0;
  unsigned Col = 0;
};

/// Expression tree with value semantics.
class Expr {
public:
  enum class Kind : uint8_t {
    IntLit, ///< integer literal
    VarRef, ///< loop variable or symbolic constant
    Read,   ///< array element read: Name(Args...)
    Add,
    Sub,
    Mul,
    Neg,
    Min, ///< min(Args...)
    Max, ///< max(Args...)
  };

  static Expr intLit(int64_t V, SourceLoc Loc = {});
  static Expr varRef(std::string Name, SourceLoc Loc = {});
  static Expr read(std::string Array, std::vector<Expr> Subs,
                   SourceLoc Loc = {});
  static Expr add(Expr L, Expr R);
  static Expr sub(Expr L, Expr R);
  static Expr mul(Expr L, Expr R);
  static Expr neg(Expr E);
  static Expr min(std::vector<Expr> Args, SourceLoc Loc = {});
  static Expr max(std::vector<Expr> Args, SourceLoc Loc = {});

  Kind getKind() const { return K; }
  int64_t getIntValue() const { return IntValue; }
  const std::string &getName() const { return Name; }
  const std::vector<Expr> &args() const { return Args; }
  std::vector<Expr> &mutableArgs() { return Args; }
  SourceLoc getLoc() const { return Loc; }

  std::string toString() const;

private:
  explicit Expr(Kind K) : K(K) {}

  Kind K;
  int64_t IntValue = 0;
  std::string Name;       // VarRef / Read
  std::vector<Expr> Args; // Read subscripts, operator operands, min/max args
  SourceLoc Loc;
};

struct Stmt;

/// `Array(Subscripts) := RHS;` -- Subscripts empty for a scalar.
struct AssignStmt {
  std::string Array;
  std::vector<Expr> Subscripts;
  Expr RHS = Expr::intLit(0);
  unsigned Label = 0; ///< 1-based statement number in program order
  SourceLoc Loc;

  std::string lhsToString() const;
  std::string toString() const;
};

/// `for Var := Lo to Hi [step K] do Body endfor`.
struct ForStmt {
  std::string Var;
  Expr Lo = Expr::intLit(0);
  Expr Hi = Expr::intLit(0);
  int64_t Step = 1; ///< non-zero; negative steps count down
  std::vector<Stmt> Body;
  SourceLoc Loc;
};

struct Stmt {
  std::variant<ForStmt, AssignStmt> Node;

  bool isFor() const { return std::holds_alternative<ForStmt>(Node); }
  const ForStmt &asFor() const { return std::get<ForStmt>(Node); }
  ForStmt &asFor() { return std::get<ForStmt>(Node); }
  const AssignStmt &asAssign() const { return std::get<AssignStmt>(Node); }
  AssignStmt &asAssign() { return std::get<AssignStmt>(Node); }
};

/// `symbolic n, m;` introduces symbolic constants; array declarations are
/// implicit (any name used with subscripts or assigned).
struct Program {
  std::vector<std::string> SymbolicConsts;
  std::vector<Stmt> Body;

  std::string toString() const;
};

/// The Read expressions of one assignment in canonical order (RHS first,
/// then the LHS subscripts, each pre-order). Semantic lowering and the
/// interpreter both use this, so trace entries line up with Access ids.
std::vector<const Expr *> readsInCanonicalOrder(const AssignStmt &A);

} // namespace ir
} // namespace omega

#endif // OMEGA_IR_AST_H
