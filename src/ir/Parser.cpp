//===- ir/Parser.cpp ------------------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "ir/Parser.h"

#include "ir/Lexer.h"

#include <functional>
#include <optional>

using namespace omega;
using namespace omega::ir;

namespace {

class Parser {
public:
  explicit Parser(std::string_view Source) : Lex(Source) { bump(); }

  ParseResult run() {
    ParseResult Result;
    while (Tok.Kind != TokenKind::Eof) {
      if (Tok.Kind == TokenKind::KwSymbolic) {
        parseSymbolicDecl(Result.Prog);
        continue;
      }
      if (Tok.Kind == TokenKind::KwEndfor) {
        // Error recovery stops at 'endfor' so loop bodies can resync; at
        // the top level it must be consumed or parsing cannot progress.
        error("'endfor' without a matching 'for'");
        bump();
        continue;
      }
      if (auto S = parseStmt())
        Result.Prog.Body.push_back(std::move(*S));
    }
    number(Result.Prog.Body);
    Result.Diags = std::move(Diags);
    return Result;
  }

private:
  void bump() { Tok = Lex.next(); }

  bool expect(TokenKind K, const char *What) {
    if (Tok.Kind == K) {
      bump();
      return true;
    }
    error(std::string("expected ") + tokenKindName(K) + " " + What +
          ", found " + tokenKindName(Tok.Kind));
    return false;
  }

  void error(std::string Message) {
    Diags.push_back(Diagnostic{Tok.Loc, std::move(Message)});
  }

  /// Panic-mode recovery: skip to just past the next ';' or to 'endfor'.
  void recover() {
    while (Tok.Kind != TokenKind::Eof && Tok.Kind != TokenKind::Semi &&
           Tok.Kind != TokenKind::KwEndfor)
      bump();
    if (Tok.Kind == TokenKind::Semi)
      bump();
  }

  void parseSymbolicDecl(Program &Prog) {
    bump(); // 'symbolic'
    while (true) {
      if (Tok.Kind != TokenKind::Ident) {
        error("expected identifier in symbolic declaration");
        recover();
        return;
      }
      Prog.SymbolicConsts.push_back(Tok.Text);
      bump();
      if (Tok.Kind == TokenKind::Comma) {
        bump();
        continue;
      }
      break;
    }
    expect(TokenKind::Semi, "after symbolic declaration");
  }

  std::optional<Stmt> parseStmt() {
    if (Tok.Kind == TokenKind::KwFor)
      return parseFor();
    if (Tok.Kind == TokenKind::Ident)
      return parseAssign();
    error(std::string("expected statement, found ") +
          tokenKindName(Tok.Kind));
    recover();
    return std::nullopt;
  }

  std::optional<Stmt> parseFor() {
    ForStmt F;
    F.Loc = Tok.Loc;
    bump(); // 'for'
    if (Tok.Kind != TokenKind::Ident) {
      error("expected loop variable after 'for'");
      recover();
      return std::nullopt;
    }
    F.Var = Tok.Text;
    bump();
    if (!expect(TokenKind::Assign, "after loop variable")) {
      recover();
      return std::nullopt;
    }
    F.Lo = parseExpr();
    if (!expect(TokenKind::KwTo, "after loop lower bound")) {
      recover();
      return std::nullopt;
    }
    F.Hi = parseExpr();
    if (Tok.Kind == TokenKind::KwStep) {
      bump();
      int64_t Sign = 1;
      if (Tok.Kind == TokenKind::Minus) {
        Sign = -1;
        bump();
      }
      if (Tok.Kind != TokenKind::IntLit) {
        error("expected integer step");
        recover();
        return std::nullopt;
      }
      F.Step = Sign * Tok.IntValue;
      if (F.Step == 0) {
        error("loop step must be non-zero");
        F.Step = 1;
      }
      bump();
    }
    expect(TokenKind::KwDo, "after loop bounds");
    while (Tok.Kind != TokenKind::KwEndfor && Tok.Kind != TokenKind::Eof) {
      if (Tok.Kind == TokenKind::KwSymbolic) {
        error("symbolic declarations must precede statements");
        recover();
        continue;
      }
      if (auto S = parseStmt())
        F.Body.push_back(std::move(*S));
    }
    expect(TokenKind::KwEndfor, "to close loop body");
    return Stmt{std::move(F)};
  }

  std::optional<Stmt> parseAssign() {
    AssignStmt A;
    A.Loc = Tok.Loc;
    A.Array = Tok.Text;
    bump();
    if (Tok.Kind == TokenKind::LParen) {
      bump();
      while (true) {
        A.Subscripts.push_back(parseExpr());
        if (Tok.Kind == TokenKind::Comma) {
          bump();
          continue;
        }
        break;
      }
      if (!expect(TokenKind::RParen, "to close subscript list")) {
        recover();
        return std::nullopt;
      }
    }
    if (!expect(TokenKind::Assign, "in assignment")) {
      recover();
      return std::nullopt;
    }
    A.RHS = parseExpr();
    expect(TokenKind::Semi, "after assignment");
    return Stmt{std::move(A)};
  }

  // expr := term (('+' | '-') term)*
  Expr parseExpr() {
    Expr E = parseTerm();
    while (Tok.Kind == TokenKind::Plus || Tok.Kind == TokenKind::Minus) {
      bool IsAdd = Tok.Kind == TokenKind::Plus;
      bump();
      Expr R = parseTerm();
      E = IsAdd ? Expr::add(std::move(E), std::move(R))
                : Expr::sub(std::move(E), std::move(R));
    }
    return E;
  }

  // term := factor ('*' factor)*
  Expr parseTerm() {
    Expr E = parseFactor();
    while (Tok.Kind == TokenKind::Star) {
      bump();
      E = Expr::mul(std::move(E), parseFactor());
    }
    return E;
  }

  // factor := int | ident | ident '(' exprlist ')' | '-' factor
  //         | '(' expr ')' | ('min' | 'max') '(' exprlist ')'
  Expr parseFactor() {
    SourceLoc Loc = Tok.Loc;
    switch (Tok.Kind) {
    case TokenKind::IntLit: {
      int64_t V = Tok.IntValue;
      bump();
      return Expr::intLit(V, Loc);
    }
    case TokenKind::Minus:
      bump();
      return Expr::neg(parseFactor());
    case TokenKind::LParen: {
      bump();
      Expr E = parseExpr();
      expect(TokenKind::RParen, "to close parenthesized expression");
      return E;
    }
    case TokenKind::KwMin:
    case TokenKind::KwMax: {
      bool IsMin = Tok.Kind == TokenKind::KwMin;
      bump();
      expect(TokenKind::LParen, IsMin ? "after 'min'" : "after 'max'");
      std::vector<Expr> Args;
      while (true) {
        Args.push_back(parseExpr());
        if (Tok.Kind == TokenKind::Comma) {
          bump();
          continue;
        }
        break;
      }
      expect(TokenKind::RParen, "to close min/max");
      return IsMin ? Expr::min(std::move(Args), Loc)
                   : Expr::max(std::move(Args), Loc);
    }
    case TokenKind::Ident: {
      std::string Name = Tok.Text;
      bump();
      if (Tok.Kind != TokenKind::LParen)
        return Expr::varRef(std::move(Name), Loc);
      bump();
      std::vector<Expr> Subs;
      while (true) {
        Subs.push_back(parseExpr());
        if (Tok.Kind == TokenKind::Comma) {
          bump();
          continue;
        }
        break;
      }
      expect(TokenKind::RParen, "to close array subscripts");
      return Expr::read(std::move(Name), std::move(Subs), Loc);
    }
    default:
      error(std::string("expected expression, found ") +
            tokenKindName(Tok.Kind));
      bump();
      return Expr::intLit(0, Loc);
    }
  }

  /// Assigns 1-based labels to assignments in program order.
  void number(std::vector<Stmt> &Body) {
    unsigned Next = 1;
    std::function<void(std::vector<Stmt> &)> Walk =
        [&](std::vector<Stmt> &Stmts) {
          for (Stmt &S : Stmts) {
            if (S.isFor())
              Walk(S.asFor().Body);
            else
              S.asAssign().Label = Next++;
          }
        };
    Walk(Body);
  }

  Lexer Lex;
  Token Tok;
  std::vector<Diagnostic> Diags;
};

} // namespace

ParseResult ir::parseProgram(std::string_view Source) {
  return Parser(Source).run();
}
