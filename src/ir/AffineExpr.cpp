//===- ir/AffineExpr.cpp --------------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "ir/AffineExpr.h"

#include <algorithm>
#include <cassert>

using namespace omega;
using namespace omega::ir;

int64_t AffineExpr::coeffOf(SymId S) const {
  for (const auto &[Sym, Coeff] : TermList)
    if (Sym == S)
      return Coeff;
  return 0;
}

void AffineExpr::addTerm(SymId S, int64_t Coeff) {
  if (Coeff == 0)
    return;
  auto It = std::lower_bound(
      TermList.begin(), TermList.end(), S,
      [](const std::pair<SymId, int64_t> &T, SymId V) { return T.first < V; });
  if (It != TermList.end() && It->first == S) {
    It->second = checkedAdd(It->second, Coeff);
    if (It->second == 0)
      TermList.erase(It);
    return;
  }
  TermList.insert(It, {S, Coeff});
}

AffineExpr &AffineExpr::operator+=(const AffineExpr &O) {
  for (const auto &[Sym, Coeff] : O.TermList)
    addTerm(Sym, Coeff);
  Const = checkedAdd(Const, O.Const);
  return *this;
}

AffineExpr &AffineExpr::operator-=(const AffineExpr &O) {
  for (const auto &[Sym, Coeff] : O.TermList)
    addTerm(Sym, checkedMul(Coeff, -1));
  Const = checkedSub(Const, O.Const);
  return *this;
}

AffineExpr AffineExpr::operator+(const AffineExpr &O) const {
  AffineExpr R = *this;
  R += O;
  return R;
}

AffineExpr AffineExpr::operator-(const AffineExpr &O) const {
  AffineExpr R = *this;
  R -= O;
  return R;
}

AffineExpr AffineExpr::scaled(int64_t K) const {
  AffineExpr R;
  if (K == 0)
    return R;
  R.Const = checkedMul(Const, K);
  R.TermList = TermList;
  for (auto &[Sym, Coeff] : R.TermList)
    Coeff = checkedMul(Coeff, K);
  return R;
}

AffineExpr AffineExpr::substituted(SymId S,
                                   const AffineExpr &Replacement) const {
  int64_t C = coeffOf(S);
  if (C == 0)
    return *this;
  AffineExpr R = *this;
  R.addTerm(S, checkedMul(C, -1));
  R += Replacement.scaled(C);
  return R;
}

std::string AffineExpr::toString(
    const std::vector<std::string> &SymNames) const {
  std::string Out;
  for (const auto &[Sym, Coeff] : TermList) {
    assert(static_cast<size_t>(Sym) < SymNames.size());
    if (Out.empty()) {
      if (Coeff == -1)
        Out += "-";
      else if (Coeff != 1)
        Out += std::to_string(Coeff) + "*";
    } else {
      Out += Coeff < 0 ? " - " : " + ";
      if (Coeff != 1 && Coeff != -1)
        Out += std::to_string(absVal(Coeff)) + "*";
    }
    Out += SymNames[Sym];
  }
  if (Const != 0 || Out.empty()) {
    if (Out.empty())
      Out = std::to_string(Const);
    else
      Out += (Const < 0 ? " - " : " + ") + std::to_string(absVal(Const));
  }
  return Out;
}
