//===- ir/Interp.h - Concrete interpreter for the tiny language ----------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A reference interpreter: executes a program with concrete values for
/// the symbolic constants and records the trace of array accesses. The
/// trace is the ground truth the differential tests compare dependence
/// analysis against -- a value-based flow dependence exists from W to R
/// exactly when W is the last write to R's location before R executes.
///
/// Uninitialized array reads yield deterministic pseudo-random values, so
/// index-array programs execute reproducibly.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_IR_INTERP_H
#define OMEGA_IR_INTERP_H

#include "ir/AST.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace omega {
namespace ir {

/// One executed array access.
struct TraceEntry {
  unsigned StmtLabel = 0;
  bool IsWrite = false;
  /// 0-based position among the statement's reads (canonical order);
  /// unused for writes.
  unsigned ReadOrdinal = 0;
  std::string Array;
  std::vector<int64_t> Location; ///< concrete subscript values
  /// Normalized iteration values of the enclosing loops, outermost first
  /// (matches Access::Loops and the analysis' distance convention).
  std::vector<int64_t> Iters;
};

struct ExecConfig {
  std::map<std::string, int64_t> Symbols;
  uint64_t MaxSteps = 1u << 20; ///< executed-assignment cap
};

struct ExecResult {
  std::vector<TraceEntry> Trace;
  /// Final memory: per array, the written elements and their values
  /// (elements only ever read do not appear).
  std::map<std::string, std::map<std::vector<int64_t>, int64_t>> FinalState;
  bool Truncated = false; ///< MaxSteps was hit
  bool Failed = false;    ///< unbound symbol or similar
  std::string Error;
};

/// Runs \p P to completion (or the step cap) under \p Config.
ExecResult interpret(const Program &P, const ExecConfig &Config);

} // namespace ir
} // namespace omega

#endif // OMEGA_IR_INTERP_H
