//===- ir/Lexer.h - Tokenizer for the tiny-style loop language -----------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//

#ifndef OMEGA_IR_LEXER_H
#define OMEGA_IR_LEXER_H

#include "ir/AST.h"

#include <cstdint>
#include <string>
#include <string_view>

namespace omega {
namespace ir {

enum class TokenKind : uint8_t {
  Eof,
  Error,
  Ident,
  IntLit,
  Assign, // :=
  LParen,
  RParen,
  Comma,
  Semi,
  Plus,
  Minus,
  Star,
  KwFor,
  KwTo,
  KwDo,
  KwEndfor,
  KwStep,
  KwMin,
  KwMax,
  KwSymbolic,
};

struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string Text;
  int64_t IntValue = 0;
  SourceLoc Loc;
};

/// Hand-written scanner. Keywords are case-insensitive (the language has a
/// FORTRAN heritage); identifiers keep their spelling. Comments run from
/// "//" or "#" to end of line.
class Lexer {
public:
  explicit Lexer(std::string_view Source) : Source(Source) {}

  Token next();

private:
  char peek() const { return Pos < Source.size() ? Source[Pos] : '\0'; }
  char advance();
  void skipTrivia();

  std::string_view Source;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Col = 1;
};

const char *tokenKindName(TokenKind K);

} // namespace ir
} // namespace omega

#endif // OMEGA_IR_LEXER_H
