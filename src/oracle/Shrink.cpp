//===- oracle/Shrink.cpp --------------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "oracle/Shrink.h"

#include "ir/Parser.h"

#include <cctype>
#include <sstream>

using namespace omega;
using namespace omega::oracle;

//===----------------------------------------------------------------------===//
// Problem shrinking
//===----------------------------------------------------------------------===//

namespace {

Problem withoutRow(const Problem &P, unsigned Drop) {
  Problem Q = P.cloneLayout();
  unsigned I = 0;
  for (const Constraint &Row : P.constraints())
    if (I++ != Drop)
      Q.addConstraint(Row);
  return Q;
}

Problem withEditedRow(const Problem &P, unsigned Edit,
                      const std::function<void(Constraint &)> &Fn) {
  Problem Q = P.cloneLayout();
  unsigned I = 0;
  for (const Constraint &Row : P.constraints()) {
    Constraint Copy = Row;
    if (I++ == Edit)
      Fn(Copy);
    Q.addConstraint(std::move(Copy));
  }
  return Q;
}

} // namespace

Problem oracle::shrinkProblem(Problem P, const ProblemPredicate &StillFails) {
  bool Progress = true;
  while (Progress) {
    Progress = false;

    // Pass 1: drop whole rows.
    for (unsigned I = 0; I < P.getNumConstraints();) {
      Problem Cand = withoutRow(P, I);
      if (StillFails(Cand)) {
        P = std::move(Cand);
        Progress = true;
      } else {
        ++I;
      }
    }

    // Pass 2: zero individual coefficients.
    for (unsigned I = 0; I != P.getNumConstraints(); ++I) {
      for (VarId V = 0, E = static_cast<VarId>(P.getNumVars()); V != E; ++V) {
        unsigned RowIdx = 0;
        int64_t C = 0;
        for (const Constraint &Row : P.constraints())
          if (RowIdx++ == I)
            C = Row.getCoeff(V);
        if (C == 0)
          continue;
        Problem Cand = withEditedRow(
            P, I, [&](Constraint &Row) { Row.setCoeff(V, 0); });
        if (StillFails(Cand)) {
          P = std::move(Cand);
          Progress = true;
        }
      }
    }

    // Pass 3: shrink constants toward zero (halving, then zero).
    for (unsigned I = 0; I != P.getNumConstraints(); ++I) {
      while (true) {
        unsigned RowIdx = 0;
        int64_t C = 0;
        for (const Constraint &Row : P.constraints())
          if (RowIdx++ == I)
            C = Row.getConstant();
        if (C == 0)
          break;
        int64_t Smaller = C / 2; // toward zero; last step reaches 0
        Problem Cand = withEditedRow(
            P, I, [&](Constraint &Row) { Row.setConstant(Smaller); });
        if (!StillFails(Cand))
          break;
        P = std::move(Cand);
        Progress = true;
      }
    }
  }
  return P;
}

//===----------------------------------------------------------------------===//
// Program shrinking
//===----------------------------------------------------------------------===//

namespace {

/// Enumerates single-edit candidate programs, one round's worth.
struct ProgramMutator {
  std::vector<ir::Program> Candidates;

  void run(const ir::Program &P) {
    // Drop a symbolic constant (sema rejects if it is still used).
    for (unsigned I = 0; I != P.SymbolicConsts.size(); ++I) {
      ir::Program Cand = P;
      Cand.SymbolicConsts.erase(Cand.SymbolicConsts.begin() + I);
      Candidates.push_back(std::move(Cand));
    }
    // Walk every statement list in the nest.
    walk(P, P.Body, {});
  }

private:
  /// \p Path is the sequence of body indices from the program root to the
  /// statement list being mutated.
  void walk(const ir::Program &Root, const std::vector<ir::Stmt> &Body,
            std::vector<unsigned> Path) {
    for (unsigned I = 0; I != Body.size(); ++I) {
      std::vector<unsigned> Here = Path;
      Here.push_back(I);

      // Remove the statement (loop nests drop whole subtrees first, which
      // is what makes shrinking fast).
      emit(Root, Here, [](ir::Stmt &) { return false; });

      const ir::Stmt &S = Body[I];
      if (S.isFor()) {
        const ir::ForStmt &F = S.asFor();
        // Unwrap: replace the loop with its body.
        emitReplaceWithBody(Root, Here);
        // Reset a non-unit step.
        if (F.Step != 1)
          emit(Root, Here, [](ir::Stmt &S2) {
            S2.asFor().Step = 1;
            return true;
          });
        // Tighten the upper bound to a small literal.
        int64_t Cur = F.Hi.getKind() == ir::Expr::Kind::IntLit
                          ? F.Hi.getIntValue()
                          : INT64_MAX;
        for (int64_t Hi : {int64_t(1), int64_t(2), int64_t(4), Cur - 1})
          if (Hi >= 0 && Hi < Cur)
            emit(Root, Here, [Hi](ir::Stmt &S2) {
              S2.asFor().Hi = ir::Expr::intLit(Hi);
              return true;
            });
        // Lower bound to zero.
        if (F.Lo.getKind() != ir::Expr::Kind::IntLit ||
            F.Lo.getIntValue() != 0)
          emit(Root, Here, [](ir::Stmt &S2) {
            S2.asFor().Lo = ir::Expr::intLit(0);
            return true;
          });
        walk(Root, F.Body, Here);
      } else {
        const ir::AssignStmt &A = S.asAssign();
        // RHS to a constant.
        if (A.RHS.getKind() != ir::Expr::Kind::IntLit)
          emit(Root, Here, [](ir::Stmt &S2) {
            S2.asAssign().RHS = ir::Expr::intLit(0);
            return true;
          });
        // RHS to one of its operands.
        if (A.RHS.getKind() == ir::Expr::Kind::Add ||
            A.RHS.getKind() == ir::Expr::Kind::Sub)
          for (unsigned Op = 0; Op != A.RHS.args().size(); ++Op)
            emit(Root, Here, [Op](ir::Stmt &S2) {
              ir::Expr Arg = S2.asAssign().RHS.args()[Op];
              S2.asAssign().RHS = std::move(Arg);
              return true;
            });
        // Subscripts to zero.
        for (unsigned Sub = 0; Sub != A.Subscripts.size(); ++Sub)
          if (A.Subscripts[Sub].getKind() != ir::Expr::Kind::IntLit)
            emit(Root, Here, [Sub](ir::Stmt &S2) {
              S2.asAssign().Subscripts[Sub] = ir::Expr::intLit(0);
              return true;
            });
      }
    }
  }

  /// Applies \p Fn to the statement at \p Path in a fresh copy of \p Root;
  /// when Fn returns false the statement is removed instead.
  void emit(const ir::Program &Root, const std::vector<unsigned> &Path,
            const std::function<bool(ir::Stmt &)> &Fn) {
    ir::Program Cand = Root;
    std::vector<ir::Stmt> *Body = &Cand.Body;
    for (unsigned D = 0; D + 1 < Path.size(); ++D)
      Body = &(*Body)[Path[D]].asFor().Body;
    ir::Stmt &Target = (*Body)[Path.back()];
    if (!Fn(Target))
      Body->erase(Body->begin() + Path.back());
    Candidates.push_back(std::move(Cand));
  }

  /// Replaces the for-loop at \p Path with its body, spliced in place.
  void emitReplaceWithBody(const ir::Program &Root,
                           const std::vector<unsigned> &Path) {
    ir::Program Cand = Root;
    std::vector<ir::Stmt> *Body = &Cand.Body;
    for (unsigned D = 0; D + 1 < Path.size(); ++D)
      Body = &(*Body)[Path[D]].asFor().Body;
    unsigned I = Path.back();
    std::vector<ir::Stmt> Inner = std::move((*Body)[I].asFor().Body);
    Body->erase(Body->begin() + I);
    Body->insert(Body->begin() + I,
                 std::make_move_iterator(Inner.begin()),
                 std::make_move_iterator(Inner.end()));
    Candidates.push_back(std::move(Cand));
  }
};

} // namespace

std::string
oracle::shrinkProgramSource(const std::string &Source,
                            const SourcePredicate &StillFails) {
  ir::ParseResult Parsed = ir::parseProgram(Source);
  if (!Parsed.ok())
    return Source; // unparseable input: nothing we can do safely
  ir::Program Cur = std::move(Parsed.Prog);
  std::string Best = Source;

  bool Progress = true;
  while (Progress) {
    Progress = false;
    ProgramMutator M;
    M.run(Cur);
    for (ir::Program &Cand : M.Candidates) {
      std::string Text = Cand.toString();
      if (Text == Best || !StillFails(Text))
        continue;
      Cur = std::move(Cand);
      Best = std::move(Text);
      Progress = true;
      break; // restart mutation from the smaller program
    }
  }
  return Best;
}

//===----------------------------------------------------------------------===//
// Calc rendering
//===----------------------------------------------------------------------===//

std::string oracle::problemToCalcScript(const Problem &P) {
  std::ostringstream OS;
  OS << "P := {[";
  bool First = true;
  std::vector<VarId> Unprotected;
  for (VarId V = 0, E = static_cast<VarId>(P.getNumVars()); V != E; ++V) {
    if (P.isDead(V))
      continue;
    if (!P.isProtected(V)) {
      Unprotected.push_back(V);
      continue;
    }
    OS << (First ? "" : ",") << P.getVarName(V);
    First = false;
  }
  OS << "]";

  bool AnyRows = P.getNumConstraints() != 0;
  if (AnyRows || !Unprotected.empty()) {
    OS << " : ";
    if (!Unprotected.empty()) {
      OS << "exists ";
      for (unsigned I = 0; I != Unprotected.size(); ++I)
        OS << (I ? "," : "") << P.getVarName(Unprotected[I]);
      OS << " : (";
    }
    bool FirstRow = true;
    for (const Constraint &Row : P.constraints()) {
      if (!FirstRow)
        OS << " && ";
      FirstRow = false;
      bool AnyTerm = false;
      for (VarId V = 0, E = static_cast<VarId>(P.getNumVars()); V != E; ++V) {
        int64_t C = Row.getCoeff(V);
        if (C == 0)
          continue;
        if (AnyTerm)
          OS << (C < 0 ? " - " : " + ");
        else if (C < 0)
          OS << "-";
        int64_t A = C < 0 ? -C : C;
        if (A != 1)
          OS << A << "*";
        OS << P.getVarName(V);
        AnyTerm = true;
      }
      int64_t K = Row.getConstant();
      if (!AnyTerm)
        OS << K;
      else if (K != 0)
        OS << (K < 0 ? " - " : " + ") << (K < 0 ? -K : K);
      OS << (Row.isEquality() ? " = 0" : " >= 0");
    }
    if (FirstRow)
      OS << "0 >= 0"; // exists block with no rows: keep the script valid
    if (!Unprotected.empty())
      OS << ")";
  }
  OS << "};\nsat P;\nsolution P;\n";
  return OS.str();
}

unsigned oracle::lineCount(const std::string &Text) {
  unsigned Lines = 0;
  bool NonEmpty = false;
  for (char C : Text) {
    if (C == '\n') {
      if (NonEmpty)
        ++Lines;
      NonEmpty = false;
    } else if (!std::isspace(static_cast<unsigned char>(C))) {
      NonEmpty = true;
    }
  }
  return Lines + (NonEmpty ? 1 : 0);
}
