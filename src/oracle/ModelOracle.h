//===- oracle/ModelOracle.h - Bounded-model ground truth for the core -----===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A brute-force oracle for the Omega core: satisfiability, projection,
/// gist, and implication of small Problems -- and satisfiability of small
/// Presburger formulas -- decided by exhaustive enumeration over a box.
/// Exact whenever the input confines every variable to the box, which the
/// generators in Generate.h guarantee by construction.
///
/// Every check appends human-readable mismatch descriptions to a
/// ModelReport instead of asserting, so the fuzz driver can shrink and
/// persist a reproducer. Satisfiable verdicts are additionally re-verified
/// with a concrete witness point (findSolution / findAssignment)
/// substituted back into the constraints -- a second, independent
/// refutation channel for a wrong "satisfiable".
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_ORACLE_MODELORACLE_H
#define OMEGA_ORACLE_MODELORACLE_H

#include "omega/OmegaContext.h"
#include "omega/Problem.h"
#include "presburger/Formula.h"

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace omega {
namespace oracle {

/// Accumulated verdict of one or more oracle checks.
struct ModelReport {
  unsigned Checked = 0;
  std::vector<std::string> Mismatches;

  bool ok() const { return Mismatches.empty(); }
  std::string summary() const;
};

//===----------------------------------------------------------------------===//
// Point evaluation
//===----------------------------------------------------------------------===//

/// Evaluates one constraint at a full assignment (indexed by VarId).
bool evalConstraint(const Constraint &Row, const std::vector<int64_t> &Point);

/// Evaluates every constraint of \p P at \p Point.
bool evalProblem(const Problem &P, const std::vector<int64_t> &Point);

/// Enumerates all assignments of [Lo, Hi] to the variables in \p Vars,
/// holding the other coordinates of \p Point fixed; stops early when \p Fn
/// returns true. Returns whether any call returned true.
bool forEachPointFrom(std::vector<int64_t> Point,
                      const std::vector<VarId> &Vars, int64_t Lo, int64_t Hi,
                      const std::function<bool(const std::vector<int64_t> &)>
                          &Fn);

/// Enumerates all points of [Lo, Hi]^|Vars| (other coordinates zero).
bool forEachPoint(unsigned NumVars, const std::vector<VarId> &Vars, int64_t Lo,
                  int64_t Hi,
                  const std::function<bool(const std::vector<int64_t> &)> &Fn);

/// Exhaustive satisfiability: enumerates every live variable of \p P over
/// [-Box, Box]. Exact when \p P confines all its variables to the box.
bool bruteForceSat(const Problem &P, int64_t Box);

/// Evaluates a Presburger formula at \p Point, deciding quantifiers by
/// enumerating the bound variable over [-Box, Box]. Exact for the
/// box-guarded formulas Generate.h produces. \p Point must have one entry
/// per context variable and is scribbled on during evaluation.
bool evalFormula(const pres::Formula &F, std::vector<int64_t> &Point,
                 int64_t Box);

//===----------------------------------------------------------------------===//
// Cross-checks against the decision procedures
//===----------------------------------------------------------------------===//

/// isSatisfiable (exact mode) against the bounded model, the witness check
/// on findSolution, and the real-shadow-relaxation monotonicity invariant
/// (a satisfiable system must stay satisfiable under SatMode::RealShadowOnly).
void checkSatisfiability(const Problem &P, int64_t Box, ModelReport &Out,
                         OmegaContext &Ctx = OmegaContext::current());

/// projectOnto the first \p NumKeep variables against the model: a point of
/// the box belongs to some output piece iff it extends to a full solution.
/// Piece membership is decided by pinning the kept variables and asking
/// isSatisfiable (whose own verdicts checkSatisfiability validates
/// independently). Also checks the real-shadow approximation is a superset.
void checkProjection(const Problem &P, unsigned NumKeep, int64_t Box,
                     ModelReport &Out,
                     OmegaContext &Ctx = OmegaContext::current());

/// gist(P given Given) against the model: (gist && Given) must have exactly
/// the box points of (P && Given). Layouts of \p P and \p Given must match.
void checkGist(const Problem &P, const Problem &Given, int64_t Box,
               ModelReport &Out, OmegaContext &Ctx = OmegaContext::current());

/// implies(Given, P) against the model (forall box points: Given => P).
/// Exact when \p Given confines every variable to the box.
void checkImplication(const Problem &Given, const Problem &P, int64_t Box,
                      ModelReport &Out,
                      OmegaContext &Ctx = OmegaContext::current());

/// pres::isSatisfiable / findAssignment against formula evaluation over the
/// box. Formulas the decision procedure reports outside its subclass are
/// skipped (not counted as checked).
void checkFormula(const pres::Formula &F, const pres::FormulaContext &Ctx,
                  int64_t Box, ModelReport &Out);

} // namespace oracle
} // namespace omega

#endif // OMEGA_ORACLE_MODELORACLE_H
