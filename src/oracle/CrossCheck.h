//===- oracle/CrossCheck.h - Whole-program oracle cross-checks ------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The full battery of checks run against one tiny-language program:
/// the Section 4 engine under every ablation combination (pair quick
/// tests on/off, incremental snapshots on/off, jobs 1 vs N) with
/// structural results required identical, the trace oracle on each run,
/// and loop-bound-widening monotonicity. Shared by the omega-fuzz tool
/// and the regression-replay test so a shrunk reproducer is replayed by
/// exactly the checks that produced it.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_ORACLE_CROSSCHECK_H
#define OMEGA_ORACLE_CROSSCHECK_H

#include "oracle/TraceOracle.h"

#include <string>
#include <vector>

namespace omega {
namespace oracle {

/// One engine configuration for the ablation cross-product.
struct AblationConfig {
  bool QuickTests;
  bool Incremental;
  unsigned Jobs;
};

/// The configurations every program is checked under: all four
/// quick-test x incremental toggles single-threaded, plus both extremes
/// again at Jobs=4 to exercise the parallel scheduler.
const std::vector<AblationConfig> &defaultAblations();

/// Runs the whole battery on \p Source: analyze, engine under every
/// ablation (summaries must be structurally identical), trace oracle per
/// run, and widening monotonicity. Returns one human-readable string per
/// mismatch; empty means the program passed (programs the front end
/// rejects also pass vacuously — the generator occasionally emits them).
std::vector<std::string>
crossCheckProgram(const std::string &Source,
                  const TraceOracleOptions &Opts = TraceOracleOptions());

} // namespace oracle
} // namespace omega

#endif // OMEGA_ORACLE_CROSSCHECK_H
