//===- oracle/Generate.cpp ------------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "oracle/Generate.h"

#include <cstdlib>

using namespace omega;
using namespace omega::oracle;

unsigned oracle::fuzzSeed(unsigned Fallback) {
  if (const char *Env = std::getenv("OMEGA_FUZZ_SEED"))
    if (*Env)
      return static_cast<unsigned>(std::strtoul(Env, nullptr, 10));
  return Fallback;
}

std::string oracle::seedMessage(unsigned Seed) {
  return "seed " + std::to_string(Seed) + " (re-run with OMEGA_FUZZ_SEED=" +
         std::to_string(Seed) + ")";
}

//===----------------------------------------------------------------------===//
// Random constraint problems
//===----------------------------------------------------------------------===//

Problem oracle::randomProblem(std::mt19937 &Rng,
                              const RandomProblemConfig &Cfg) {
  Problem P;
  std::vector<VarId> Vars;
  for (unsigned I = 0; I != Cfg.NumVars; ++I)
    Vars.push_back(P.addVar("x" + std::to_string(I)));

  std::uniform_int_distribution<int64_t> Coeff(-Cfg.CoeffRange,
                                               Cfg.CoeffRange);
  std::uniform_int_distribution<int64_t> Const(-Cfg.ConstRange,
                                               Cfg.ConstRange);

  auto addRandomRow = [&](ConstraintKind Kind) {
    Constraint &Row = P.addRow(Kind);
    for (VarId V : Vars)
      Row.setCoeff(V, Coeff(Rng));
    Row.setConstant(Const(Rng));
  };
  for (unsigned I = 0; I != Cfg.NumEQs; ++I)
    addRandomRow(ConstraintKind::EQ);
  for (unsigned I = 0; I != Cfg.NumGEQs; ++I)
    addRandomRow(ConstraintKind::GEQ);

  for (VarId V : Vars) {
    P.addGEQ({{V, 1}}, Cfg.Box);  // V >= -Box
    P.addGEQ({{V, -1}}, Cfg.Box); // V <= Box
  }
  return P;
}

//===----------------------------------------------------------------------===//
// Random tiny-language programs
//===----------------------------------------------------------------------===//

ProgramGenerator::ProgramGenerator(unsigned Seed, RandomProgramConfig Cfg)
    : Rng(Seed), Cfg(Cfg) {}

int64_t ProgramGenerator::pick(int64_t Lo, int64_t Hi) {
  return std::uniform_int_distribution<int64_t>(Lo, Hi)(Rng);
}

bool ProgramGenerator::chance(int OneIn) { return pick(1, OneIn) == 1; }

void ProgramGenerator::indent() { Src.append(Loops.size() * 2, ' '); }

void ProgramGenerator::openLoops(unsigned Depth) {
  for (unsigned D = 0; D != Depth; ++D) {
    std::string Var(1, static_cast<char>('i' + Loops.size()));
    indent();
    // Rectangular or triangular lower bound; small constant ranges.
    std::string Lo = std::to_string(pick(0, Cfg.LoMax));
    if (!Loops.empty() && Cfg.AllowTriangular && chance(3))
      Lo = Loops.back(); // triangular: starts at the outer variable
    std::string Hi = std::to_string(pick(Cfg.HiMin, Cfg.HiMax));
    std::string Step = Cfg.AllowStride2 && chance(4) ? " step 2" : "";
    Src += "for " + Var + " := " + Lo + " to " + Hi + Step + " do\n";
    Loops.push_back(Var);
  }
}

void ProgramGenerator::closeLoops() {
  while (!Loops.empty()) {
    Loops.pop_back();
    indent();
    Src += "endfor\n";
  }
}

std::string ProgramGenerator::affineSubscript() {
  std::string Out;
  bool Any = false;
  for (const std::string &Var : Loops) {
    int64_t C = pick(-1, 2);
    if (C == 0)
      continue;
    if (Any)
      Out += C < 0 ? " - " : " + ";
    else if (C < 0)
      Out += "-";
    if (C != 1 && C != -1)
      Out += std::to_string(C < 0 ? -C : C) + "*";
    Out += Var;
    Any = true;
  }
  int64_t K = pick(-2, 2);
  if (!Any)
    return std::to_string(K);
  if (K != 0)
    Out += (K < 0 ? " - " : " + ") + std::to_string(K < 0 ? -K : K);
  return Out;
}

std::string ProgramGenerator::arrayRef(bool TwoDims) {
  std::string Name(
      1, static_cast<char>('a' + pick(0, static_cast<int64_t>(NumArrays) - 1)));
  std::string Out = Name + "(" + affineSubscript();
  if (TwoDims)
    Out += ", " + affineSubscript();
  Out += ")";
  return Out;
}

void ProgramGenerator::emitAssignment() {
  indent();
  bool TwoDims = chance(3);
  Src += arrayRef(TwoDims) + " := ";
  unsigned Reads = static_cast<unsigned>(pick(0, 2));
  for (unsigned I = 0; I != Reads; ++I)
    Src += arrayRef(TwoDims) + " + ";
  Src += std::to_string(pick(0, 9)) + ";\n";
}

std::string ProgramGenerator::generate() {
  Src.clear();
  Loops.clear();
  NumArrays = static_cast<unsigned>(pick(1, Cfg.MaxArrays));
  unsigned Depth = static_cast<unsigned>(pick(Cfg.MinDepth, Cfg.MaxDepth));
  openLoops(Depth);
  unsigned Stmts = static_cast<unsigned>(pick(Cfg.MinStmts, Cfg.MaxStmts));
  for (unsigned I = 0; I != Stmts; ++I)
    emitAssignment();
  closeLoops();
  // Sometimes a second, shallower nest to exercise cross-nest deps.
  if (Cfg.AllowSecondNest && chance(2)) {
    openLoops(static_cast<unsigned>(pick(1, 2)));
    emitAssignment();
    closeLoops();
  }
  return Src;
}

//===----------------------------------------------------------------------===//
// Structured stress programs
//===----------------------------------------------------------------------===//

std::string oracle::deepRecurrenceNest(unsigned Depth) {
  std::string Src = "symbolic n;\n";
  std::string Sub;
  for (unsigned D = 0; D != Depth; ++D) {
    std::string Var(1, static_cast<char>('i' + D));
    Src += std::string(2 * D, ' ') + "for " + Var + " := 2 to n do\n";
    Sub += (D ? "," : "") + Var;
  }
  Src += std::string(2 * Depth, ' ') + "a(" + Sub + ") := a(" + Sub +
         ") + 1;\n";
  for (unsigned D = Depth; D-- != 0;)
    Src += std::string(2 * D, ' ') + "endfor\n";
  return Src;
}

std::string oracle::wideProgram(unsigned NumLoops) {
  std::string Src = "symbolic n;\n";
  for (unsigned I = 0; I != NumLoops; ++I) {
    std::string A = "a" + std::to_string(I);
    Src += "for i := 1 to n do\n  " + A + "(i) := " + A + "(i-1);\nendfor\n";
  }
  return Src;
}

std::string oracle::sameArrayChain(unsigned NumStmts) {
  std::string Src = "symbolic n;\n"
                    "for i := " +
                    std::to_string(NumStmts + 1) + " to n do\n";
  for (unsigned S = 1; S <= NumStmts; ++S)
    Src += "  a(i) := a(i-" + std::to_string(S) + ");\n";
  Src += "endfor\n";
  return Src;
}

std::string oracle::manySymbolicConstants(unsigned NumSyms) {
  std::string Src = "symbolic s0";
  for (unsigned I = 1; I != NumSyms; ++I)
    Src += ", s" + std::to_string(I);
  Src += ";\nfor i := s0 to s" + std::to_string(NumSyms - 1) + " do\n  a(i";
  Src += ") := a(i - s1) + a(i + s2);\nendfor\n";
  return Src;
}

//===----------------------------------------------------------------------===//
// Random Presburger formulas
//===----------------------------------------------------------------------===//

namespace {

struct FormulaGen {
  std::mt19937 &Rng;
  pres::FormulaContext &Ctx;
  const RandomFormulaConfig &Cfg;
  std::vector<VarId> Scope; ///< free vars plus quantified vars in scope
  unsigned QuantifiersLeft;

  int64_t pick(int64_t Lo, int64_t Hi) {
    return std::uniform_int_distribution<int64_t>(Lo, Hi)(Rng);
  }

  pres::Formula atom() {
    std::vector<Term> Terms;
    for (VarId V : Scope) {
      int64_t C = pick(-Cfg.CoeffRange, Cfg.CoeffRange);
      if (C != 0)
        Terms.push_back({V, C});
    }
    int64_t K = pick(-Cfg.ConstRange, Cfg.ConstRange);
    switch (pick(0, 3)) {
    case 0:
      return pres::Formula::eq(std::move(Terms), K);
    case 1:
      return pres::Formula::lt(std::move(Terms), K);
    case 2:
      return pres::Formula::neq(std::move(Terms), K);
    default:
      return pres::Formula::geq(std::move(Terms), K);
    }
  }

  /// -Box <= V <= Box as a conjunction.
  pres::Formula boxGuard(VarId V) {
    return pres::Formula::conj(
        {pres::Formula::geq({{V, 1}}, Cfg.Box),    // V >= -Box
         pres::Formula::geq({{V, -1}}, Cfg.Box)}); // V <= Box
  }

  pres::Formula gen(unsigned Depth) {
    if (Depth == 0 || pick(0, 3) == 0)
      return atom();
    switch (pick(0, QuantifiersLeft != 0 ? 4 : 2)) {
    case 0:
      return pres::Formula::conj({gen(Depth - 1), gen(Depth - 1)});
    case 1:
      return pres::Formula::disj({gen(Depth - 1), gen(Depth - 1)});
    case 2:
      return pres::Formula::negate(gen(Depth - 1));
    default: {
      // exists q: box(q) && body   /   forall q: box(q) => body. Guarding
      // the bound variable keeps bounded-model evaluation exact: any
      // exists-witness must satisfy its guard, and points outside the box
      // satisfy a guarded forall vacuously.
      --QuantifiersLeft;
      VarId Q = Ctx.addVar("q" + std::to_string(Ctx.getNumVars()));
      Scope.push_back(Q);
      pres::Formula Body = gen(Depth - 1);
      Scope.pop_back();
      if (pick(0, 1) == 0)
        return pres::Formula::exists(
            {Q}, pres::Formula::conj({boxGuard(Q), std::move(Body)}));
      return pres::Formula::forall(
          {Q}, pres::Formula::implies(boxGuard(Q), std::move(Body)));
    }
    }
  }
};

} // namespace

pres::Formula oracle::randomFormula(std::mt19937 &Rng,
                                    pres::FormulaContext &Ctx,
                                    const RandomFormulaConfig &Cfg) {
  std::vector<VarId> Free;
  for (unsigned I = 0; I != Cfg.NumFreeVars; ++I)
    Free.push_back(Ctx.addVar("x" + std::to_string(I)));

  FormulaGen Gen{Rng, Ctx, Cfg, Free, Cfg.MaxQuantifiers};
  pres::Formula Body = Gen.gen(Cfg.MaxDepth);

  // Conjoin box guards on the free variables so satisfiability over the
  // integers coincides with satisfiability over the box.
  std::vector<pres::Formula> Parts;
  for (VarId V : Free)
    Parts.push_back(Gen.boxGuard(V));
  Parts.push_back(std::move(Body));
  return pres::Formula::conj(std::move(Parts));
}
