//===- oracle/TraceOracle.h - Execution-trace dependence ground truth -----===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Ground truth for the dependence analyzer derived from real execution:
/// interpret the tiny program, record every array read and write with its
/// iteration vector, and reconstruct the exact dependence set from the
/// memory trace. Two classes of witnesses are checked against the analyzer:
///
///  * memory-based: every ordered conflicting pair (at least one write to
///    the same location) must be admitted by some split -- dead or alive --
///    of the corresponding unrefined flow / anti / output dependence. A
///    miss here means the core dependence test lost a real dependence.
///
///  * value-based: every (last write before a read of the same location)
///    pair must be admitted by a LIVE split of the Section-4 flow result.
///    A miss here is a false kill -- exactly the soundness property the
///    paper's kill/cover/refine engine must preserve.
///
/// Reports collect mismatch strings instead of asserting, so the fuzz
/// driver can shrink failures; the GTest harness in tests/DiffHarness.h is
/// a thin EXPECT wrapper over this API.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_ORACLE_TRACEORACLE_H
#define OMEGA_ORACLE_TRACEORACLE_H

#include "analysis/Driver.h"
#include "ir/Interp.h"

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

namespace omega {
namespace oracle {

/// Identifies one access site: statement label, read/write, read ordinal.
using AccessKey = std::tuple<unsigned, bool, unsigned>;

/// Maps every access site of \p AP to its Access record, with read
/// ordinals assigned in canonical (source) order per statement.
std::map<AccessKey, const ir::Access *>
buildAccessMap(const ir::AnalyzedProgram &AP);

/// The Access record a trace entry executed, or null if unmapped.
const ir::Access *accessOf(const std::map<AccessKey, const ir::Access *> &Map,
                           const ir::TraceEntry &T);

/// Witness distance vector over the common loops of (Src, Dst), and its
/// carried level (0 == loop-independent).
void witnessShape(const ir::Access *Src, const ir::Access *Dst,
                  const ir::TraceEntry &A, const ir::TraceEntry &B,
                  std::vector<int64_t> &Dist, unsigned &Level);

/// Does some split of the dependence (Src -> Dst) admit the observed
/// distance vector? With \p RequireLive only living splits count.
bool witnessAdmitted(const std::vector<deps::Dependence> &Deps,
                     const ir::Access *Src, const ir::Access *Dst,
                     const std::vector<int64_t> &Dist, unsigned Level,
                     bool RequireLive);

struct TraceOracleOptions {
  std::map<std::string, int64_t> Symbols; ///< symbolic constant bindings
  uint64_t MaxSteps = 1u << 20;           ///< interpreter step budget
};

struct TraceReport {
  bool ExecFailed = false;
  bool Truncated = false;
  std::string ExecError;
  unsigned WitnessesChecked = 0;
  std::vector<std::string> Mismatches;

  /// True when the program executed to completion and every witness was
  /// admitted. A trivial trace (WitnessesChecked == 0) still counts as ok.
  bool ok() const { return !ExecFailed && !Truncated && Mismatches.empty(); }
  std::string summary() const;
};

/// Checks every executed witness of \p AP against an analysis result the
/// caller already computed: memory witnesses against \p UnrefinedFlow /
/// R.Anti / R.Output, value witnesses against the live splits of R.Flow.
TraceReport checkTraceWitnesses(const ir::AnalyzedProgram &AP,
                                const analysis::AnalysisResult &R,
                                const std::vector<deps::Dependence>
                                    &UnrefinedFlow,
                                const TraceOracleOptions &Opts =
                                    TraceOracleOptions());

/// Convenience entry: runs the Section 4 pipeline (and an unrefined flow
/// computation) itself, then checks the trace.
TraceReport checkProgram(const ir::AnalyzedProgram &AP,
                         const TraceOracleOptions &Opts = TraceOracleOptions(),
                         const analysis::DriverOptions &Driver =
                             analysis::DriverOptions());

/// Deterministic structural rendering of an analysis result (kinds, access
/// texts, per-split level/direction/liveness/refinement, cover flags).
/// Two results describe the same dependences iff their summaries are
/// string-equal -- the cross-ablation identity check in omega-fuzz.
std::string summarizeDependences(const analysis::AnalysisResult &R);

} // namespace oracle
} // namespace omega

#endif // OMEGA_ORACLE_TRACEORACLE_H
