//===- oracle/CrossCheck.cpp ----------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "oracle/CrossCheck.h"

#include "engine/DependenceEngine.h"
#include "oracle/Metamorphic.h"
#include "oracle/ScheduleOracle.h"

using namespace omega;
using namespace omega::oracle;

const std::vector<AblationConfig> &oracle::defaultAblations() {
  static const std::vector<AblationConfig> Configs = {
      {true, true, 1},  {true, false, 1}, {false, true, 1},
      {false, false, 1}, {true, true, 4}, {false, false, 4},
  };
  return Configs;
}

static engine::AnalysisResult runEngine(const ir::AnalyzedProgram &AP,
                                        const AblationConfig &A) {
  engine::AnalysisRequest Req;
  Req.PairQuickTests = A.QuickTests;
  Req.Incremental = A.Incremental;
  Req.Jobs = A.Jobs;
  Req.UseQueryCache = false;
  engine::DependenceEngine Engine(Req);
  return Engine.analyze(AP);
}

std::vector<std::string>
oracle::crossCheckProgram(const std::string &Source,
                          const TraceOracleOptions &Opts) {
  std::vector<std::string> Mismatches;
  ir::AnalyzedProgram AP = ir::analyzeSource(Source);
  if (!AP.ok())
    return Mismatches; // rejected program: vacuously passes

  deps::DependenceAnalysis DA(AP);
  std::vector<deps::Dependence> UnrefinedFlow =
      DA.computeDependences(deps::DepKind::Flow);

  std::string Reference;
  for (const AblationConfig &A : defaultAblations()) {
    engine::AnalysisResult R = runEngine(AP, A);
    std::string Summary = summarizeDependences(R);
    if (Reference.empty())
      Reference = Summary;
    else if (Summary != Reference)
      Mismatches.push_back(
          "ablation divergence: quicktests=" + std::to_string(A.QuickTests) +
          " incremental=" + std::to_string(A.Incremental) +
          " jobs=" + std::to_string(A.Jobs) +
          " produced structurally different dependences");
    TraceReport Trace = checkTraceWitnesses(AP, R, UnrefinedFlow, Opts);
    if (!Trace.ok())
      for (const std::string &M : Trace.Mismatches)
        Mismatches.push_back(
            "trace oracle (quicktests=" + std::to_string(A.QuickTests) +
            " incremental=" + std::to_string(A.Incremental) +
            " jobs=" + std::to_string(A.Jobs) + "): " + M);
  }

  // Every pipelined schedule the planner proposes must be
  // interpreter-equivalent to the original program.
  ScheduleReport Schedules = checkPipelineSchedules(Source, Opts);
  for (const std::string &M : Schedules.Mismatches)
    Mismatches.push_back("schedule oracle: " + M);

  // Widening monotonicity for memory-based dependences.
  if (std::optional<ir::Program> Wide = widenLoopBounds(AP.Source, 2)) {
    ir::AnalyzedProgram WideAP = ir::analyze(*Wide);
    if (WideAP.ok()) {
      ModelReport Mono;
      checkWidenedMonotone(AP, WideAP, Mono);
      for (const std::string &M : Mono.Mismatches)
        Mismatches.push_back(M);
    }
  }
  return Mismatches;
}
