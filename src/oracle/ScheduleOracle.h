//===- oracle/ScheduleOracle.h - Pipelined-schedule equivalence oracle ----===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executable ground truth for the pipeline partitioner: every plan
/// transform::planPipeline proposes is applied to a fresh copy of the
/// program (transform::applyPipeline) and both versions are run under the
/// reference interpreter. Final memory must agree on every array except
/// the "@p" scratch copies privatization introduces -- a disagreement
/// means the partition ordered two dependent statements wrongly, i.e. the
/// kill/privatization reasoning that licensed the schedule was unsound.
///
/// The same machinery powers the omega-fuzz canary: injectPipelineBug
/// deletes one live loop-carried edge from the PDG (a deliberately
/// unsound "kill"), re-plans, and requires the interpreter to catch the
/// resulting misordering.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_ORACLE_SCHEDULEORACLE_H
#define OMEGA_ORACLE_SCHEDULEORACLE_H

#include "oracle/TraceOracle.h"
#include "transform/Pipeline.h"

#include <string>
#include <vector>

namespace omega {
namespace oracle {

/// Outcome of proving a program's pipeline plans schedule-equivalent.
struct ScheduleReport {
  unsigned LoopsConsidered = 0;  ///< loops the planner looked at
  unsigned PlansChecked = 0;     ///< valid plans executed and compared
  unsigned ParallelPlans = 0;    ///< checked plans with a parallel stage
  std::vector<std::string> Mismatches;

  bool ok() const { return Mismatches.empty(); }
};

/// Symbol bindings for executing \p AP: any symbolic constant unbound in
/// \p Base gets the corpus convention (n=5, m=4, everything else 3), so
/// generated programs always execute.
std::map<std::string, int64_t>
scheduleSymbols(const ir::AnalyzedProgram &AP,
                const std::map<std::string, int64_t> &Base);

/// Applies \p Plan to a fresh copy of AP.Source and interprets both
/// versions, comparing final memory outside the "@p" scratch arrays.
/// Appends one string per disagreement to \p Mismatches. Returns false
/// when the comparison was vacuous (plan failed to apply is NOT vacuous
/// -- that is reported as a mismatch -- but a base program that fails or
/// exceeds the step budget is).
bool checkPlanEquivalence(const ir::AnalyzedProgram &AP,
                          const transform::PipelinePlan &Plan,
                          const TraceOracleOptions &Opts,
                          std::vector<std::string> &Mismatches);

/// Plans a pipeline for every loop of \p Source (Section 4 analysis fully
/// enabled) and proves each valid plan equivalent under the interpreter.
/// Programs the front end rejects pass vacuously.
ScheduleReport
checkPipelineSchedules(const std::string &Source,
                       const TraceOracleOptions &Opts = TraceOracleOptions());

/// Fuzz canary: for each live loop-carried edge of each loop's PDG in
/// turn, deletes it (simulating an unsound kill), re-plans, applies, and
/// interprets. Returns true as soon as one deletion yields a plan the
/// interpreter refutes (final-state mismatch), filling \p Mismatches with
/// the evidence; false when no deletion produces a catchable misordering.
bool injectPipelineBug(const std::string &Source,
                       const TraceOracleOptions &Opts,
                       std::vector<std::string> &Mismatches);

} // namespace oracle
} // namespace omega

#endif // OMEGA_ORACLE_SCHEDULEORACLE_H
