//===- oracle/TraceOracle.cpp ---------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "oracle/TraceOracle.h"

#include <algorithm>
#include <sstream>

using namespace omega;
using namespace omega::oracle;

std::string TraceReport::summary() const {
  std::ostringstream OS;
  if (ExecFailed)
    OS << "execution failed: " << ExecError << "; ";
  if (Truncated)
    OS << "execution truncated; ";
  OS << WitnessesChecked << " witnesses, " << Mismatches.size()
     << " mismatches";
  for (const std::string &M : Mismatches)
    OS << "\n  " << M;
  return OS.str();
}

std::map<AccessKey, const ir::Access *>
oracle::buildAccessMap(const ir::AnalyzedProgram &AP) {
  std::map<AccessKey, const ir::Access *> Map;
  std::map<unsigned, unsigned> NextOrdinal;
  for (const ir::Access &A : AP.Accesses) {
    unsigned Ordinal = A.IsWrite ? 0 : NextOrdinal[A.StmtLabel]++;
    Map[{A.StmtLabel, A.IsWrite, Ordinal}] = &A;
  }
  return Map;
}

const ir::Access *
oracle::accessOf(const std::map<AccessKey, const ir::Access *> &Map,
                 const ir::TraceEntry &T) {
  auto It = Map.find({T.StmtLabel, T.IsWrite, T.IsWrite ? 0 : T.ReadOrdinal});
  return It == Map.end() ? nullptr : It->second;
}

void oracle::witnessShape(const ir::Access *Src, const ir::Access *Dst,
                          const ir::TraceEntry &A, const ir::TraceEntry &B,
                          std::vector<int64_t> &Dist, unsigned &Level) {
  unsigned Common = ir::AnalyzedProgram::numCommonLoops(*Src, *Dst);
  Dist.clear();
  Level = 0;
  for (unsigned K = 0; K != Common; ++K) {
    Dist.push_back(B.Iters[K] - A.Iters[K]);
    if (Level == 0 && Dist.back() != 0)
      Level = K + 1;
  }
}

bool oracle::witnessAdmitted(const std::vector<deps::Dependence> &Deps,
                             const ir::Access *Src, const ir::Access *Dst,
                             const std::vector<int64_t> &Dist, unsigned Level,
                             bool RequireLive) {
  for (const deps::Dependence &D : Deps) {
    if (D.Src != Src || D.Dst != Dst)
      continue;
    for (const deps::DepSplit &S : D.Splits) {
      if (S.Level != Level || (RequireLive && S.Dead))
        continue;
      bool Fits = S.Dir.size() == Dist.size();
      for (unsigned K = 0; Fits && K != Dist.size(); ++K) {
        const IntRange &R = S.Dir[K].Range;
        Fits = !R.Empty && (!R.HasMin || Dist[K] >= R.Min) &&
               (!R.HasMax || Dist[K] <= R.Max);
      }
      if (Fits)
        return true;
    }
  }
  return false;
}

namespace {

std::string distToString(const std::vector<int64_t> &Dist) {
  std::string Out = "(";
  for (unsigned K = 0; K != Dist.size(); ++K)
    Out += (K ? "," : "") + std::to_string(Dist[K]);
  return Out + ")";
}

} // namespace

TraceReport oracle::checkTraceWitnesses(const ir::AnalyzedProgram &AP,
                                        const analysis::AnalysisResult &R,
                                        const std::vector<deps::Dependence>
                                            &UnrefinedFlow,
                                        const TraceOracleOptions &Opts) {
  TraceReport Out;
  ir::ExecConfig Config;
  Config.Symbols = Opts.Symbols;
  Config.MaxSteps = Opts.MaxSteps;
  ir::ExecResult Exec = interpret(AP.Source, Config);
  if (Exec.Failed || Exec.Truncated) {
    Out.ExecFailed = Exec.Failed;
    Out.Truncated = Exec.Truncated;
    Out.ExecError = Exec.Error;
    return Out;
  }

  std::map<AccessKey, const ir::Access *> Map = buildAccessMap(AP);

  // Group the trace by memory location; within a group, trace order is
  // execution order, so dependence witnesses are the ordered pairs.
  std::map<std::pair<std::string, std::vector<int64_t>>,
           std::vector<const ir::TraceEntry *>>
      ByLoc;
  for (const ir::TraceEntry &T : Exec.Trace)
    ByLoc[{T.Array, T.Location}].push_back(&T);

  for (const auto &[Loc, Entries] : ByLoc) {
    (void)Loc;
    const ir::TraceEntry *LastWrite = nullptr;
    for (unsigned J = 0; J != Entries.size(); ++J) {
      const ir::TraceEntry &B = *Entries[J];
      const ir::Access *DstAcc = accessOf(Map, B);
      if (!DstAcc) {
        Out.Mismatches.push_back("internal: trace entry has no access site");
        return Out;
      }

      for (unsigned I = 0; I != J; ++I) {
        const ir::TraceEntry &A = *Entries[I];
        if (!A.IsWrite && !B.IsWrite)
          continue; // read-read: no dependence
        const ir::Access *SrcAcc = accessOf(Map, A);
        if (!SrcAcc) {
          Out.Mismatches.push_back("internal: trace entry has no access site");
          return Out;
        }

        std::vector<int64_t> Dist;
        unsigned Level;
        witnessShape(SrcAcc, DstAcc, A, B, Dist, Level);
        const char *Kind;
        const std::vector<deps::Dependence> *Deps;
        if (A.IsWrite && !B.IsWrite) {
          Kind = "flow";
          Deps = &UnrefinedFlow;
        } else if (!A.IsWrite && B.IsWrite) {
          Kind = "anti";
          Deps = &R.Anti;
        } else {
          Kind = "output";
          Deps = &R.Output;
        }
        ++Out.WitnessesChecked;
        if (!witnessAdmitted(*Deps, SrcAcc, DstAcc, Dist, Level,
                             /*RequireLive=*/false))
          Out.Mismatches.push_back(
              std::string("memory ") + Kind + " witness " + SrcAcc->Text +
              " -> " + DstAcc->Text + " dist " + distToString(Dist) +
              " level " + std::to_string(Level) + " not admitted");
      }

      // Value-based flow: the read's value comes from the last write to
      // this location, so that pair must survive the kill analysis.
      if (!B.IsWrite && LastWrite) {
        const ir::Access *SrcAcc = accessOf(Map, *LastWrite);
        std::vector<int64_t> Dist;
        unsigned Level;
        witnessShape(SrcAcc, DstAcc, *LastWrite, B, Dist, Level);
        ++Out.WitnessesChecked;
        if (!witnessAdmitted(R.Flow, SrcAcc, DstAcc, Dist, Level,
                             /*RequireLive=*/true))
          Out.Mismatches.push_back(
              "VALUE witness " + SrcAcc->Text + " -> " + DstAcc->Text +
              " dist " + distToString(Dist) + " level " +
              std::to_string(Level) +
              " only admitted by dead splits (false kill!)");
      }
      if (B.IsWrite)
        LastWrite = &B;
    }
  }
  return Out;
}

TraceReport oracle::checkProgram(const ir::AnalyzedProgram &AP,
                                 const TraceOracleOptions &Opts,
                                 const analysis::DriverOptions &Driver) {
  analysis::AnalysisResult R = analysis::analyzeProgram(AP, Driver);
  deps::DependenceAnalysis DA(AP);
  std::vector<deps::Dependence> UnrefinedFlow =
      DA.computeDependences(deps::DepKind::Flow);
  return checkTraceWitnesses(AP, R, UnrefinedFlow, Opts);
}

std::string oracle::summarizeDependences(const analysis::AnalysisResult &R) {
  std::ostringstream OS;
  auto Render = [&](const char *Title,
                    const std::vector<deps::Dependence> &Deps) {
    // Deterministic order regardless of computation schedule.
    std::vector<const deps::Dependence *> Sorted;
    for (const deps::Dependence &D : Deps)
      Sorted.push_back(&D);
    std::sort(Sorted.begin(), Sorted.end(),
              [](const deps::Dependence *A, const deps::Dependence *B) {
                return std::tie(A->Src->Id, A->Dst->Id) <
                       std::tie(B->Src->Id, B->Dst->Id);
              });
    OS << Title << ":\n";
    for (const deps::Dependence *D : Sorted) {
      OS << "  " << D->Src->Text << " -> " << D->Dst->Text;
      if (D->Covers)
        OS << (D->CoverLoopIndependent ? " [C/li]" : " [C]");
      OS << "\n";
      for (const deps::DepSplit &S : D->Splits) {
        OS << "    level " << S.Level << " " << S.dirToString();
        if (S.Refined)
          OS << " refined";
        if (S.Dead)
          OS << " dead(" << (S.DeadReason ? S.DeadReason : '?') << ")";
        OS << "\n";
      }
    }
  };
  Render("flow", R.Flow);
  Render("anti", R.Anti);
  Render("output", R.Output);
  return OS.str();
}
