//===- oracle/Shrink.h - Delta-debugging reproducer minimization ----------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Greedy delta debugging for the two fuzz input shapes. Given a failing
/// input and a predicate "does it still fail?", the shrinkers repeatedly
/// try single simplifying edits and keep any edit that preserves the
/// failure, iterating to a fixpoint. The result is 1-minimal with respect
/// to the edit set: no single remaining edit keeps the failure.
///
/// Problems shrink by row removal, coefficient zeroing, and constant
/// shrinking toward zero; programs shrink by statement/loop removal, loop
/// unwrapping, bound tightening, step reset, and right-hand-side / subscript
/// simplification over a mutable AST (re-rendered through
/// ir::Program::toString, so the reproducer is always valid source text).
///
/// problemToCalcScript renders a shrunk Problem as an omega-calc script so
/// the reproducer in tests/corpus/regressions/ replays through the public
/// calc surface.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_ORACLE_SHRINK_H
#define OMEGA_ORACLE_SHRINK_H

#include "ir/AST.h"
#include "omega/Problem.h"

#include <functional>
#include <string>

namespace omega {
namespace oracle {

/// Returns true when the candidate input still reproduces the failure.
using ProblemPredicate = std::function<bool(const Problem &)>;
using SourcePredicate = std::function<bool(const std::string &)>;

/// Shrinks \p P while \p StillFails holds. \p StillFails(P) must be true
/// on entry; the result still fails and no single further edit does.
Problem shrinkProblem(Problem P, const ProblemPredicate &StillFails);

/// Shrinks tiny-language \p Source while \p StillFails holds. The
/// predicate receives rendered source text and is expected to return false
/// for programs that no longer parse/analyze. \p StillFails(Source) must
/// be true on entry.
std::string shrinkProgramSource(const std::string &Source,
                                const SourcePredicate &StillFails);

/// Renders \p P as an omega-calc script: a set definition over the
/// protected variables (unprotected ones become an exists block), then
/// `sat P;` and `solution P;` so replaying exercises both the decision and
/// the witness path.
std::string problemToCalcScript(const Problem &P);

/// Number of non-empty lines -- the "<= 10-line reproducer" metric.
unsigned lineCount(const std::string &Text);

} // namespace oracle
} // namespace omega

#endif // OMEGA_ORACLE_SHRINK_H
