//===- oracle/ModelOracle.cpp ---------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "oracle/ModelOracle.h"

#include "omega/Gist.h"
#include "omega/Projection.h"
#include "omega/Satisfiability.h"
#include "presburger/Decision.h"
#include "support/MathUtils.h"

#include <sstream>

using namespace omega;
using namespace omega::oracle;

std::string ModelReport::summary() const {
  std::ostringstream OS;
  OS << Checked << " checks, " << Mismatches.size() << " mismatches";
  for (const std::string &M : Mismatches)
    OS << "\n  " << M;
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Point evaluation
//===----------------------------------------------------------------------===//

bool oracle::evalConstraint(const Constraint &Row,
                            const std::vector<int64_t> &Point) {
  int64_t Sum = Row.getConstant();
  for (VarId V = 0, E = Row.getNumVars(); V != static_cast<VarId>(E); ++V)
    Sum += Row.getCoeff(V) * Point[V];
  return Row.isEquality() ? Sum == 0 : Sum >= 0;
}

bool oracle::evalProblem(const Problem &P, const std::vector<int64_t> &Point) {
  for (const Constraint &Row : P.constraints())
    if (!evalConstraint(Row, Point))
      return false;
  return true;
}

bool oracle::forEachPointFrom(
    std::vector<int64_t> Point, const std::vector<VarId> &Vars, int64_t Lo,
    int64_t Hi, const std::function<bool(const std::vector<int64_t> &)> &Fn) {
  std::function<bool(unsigned)> Rec = [&](unsigned I) -> bool {
    if (I == Vars.size())
      return Fn(Point);
    for (int64_t X = Lo; X <= Hi; ++X) {
      Point[Vars[I]] = X;
      if (Rec(I + 1))
        return true;
    }
    return false;
  };
  return Rec(0);
}

bool oracle::forEachPoint(
    unsigned NumVars, const std::vector<VarId> &Vars, int64_t Lo, int64_t Hi,
    const std::function<bool(const std::vector<int64_t> &)> &Fn) {
  return forEachPointFrom(std::vector<int64_t>(NumVars, 0), Vars, Lo, Hi, Fn);
}

bool oracle::bruteForceSat(const Problem &P, int64_t Box) {
  std::vector<VarId> Vars;
  for (VarId V = 0, E = P.getNumVars(); V != static_cast<VarId>(E); ++V)
    if (!P.isDead(V))
      Vars.push_back(V);
  return forEachPoint(P.getNumVars(), Vars, -Box, Box,
                      [&](const std::vector<int64_t> &Pt) {
                        return evalProblem(P, Pt);
                      });
}

bool oracle::evalFormula(const pres::Formula &F, std::vector<int64_t> &Point,
                         int64_t Box) {
  using Kind = pres::Formula::Kind;
  switch (F.getKind()) {
  case Kind::True:
    return true;
  case Kind::False:
    return false;
  case Kind::AtomK: {
    const pres::Atom &A = F.getAtom();
    int64_t Sum = A.Constant;
    for (const Term &T : A.Terms)
      Sum += T.second * Point[T.first];
    return A.Kind == ConstraintKind::EQ ? Sum == 0 : Sum >= 0;
  }
  case Kind::And:
    for (const pres::Formula &C : F.children())
      if (!evalFormula(C, Point, Box))
        return false;
    return true;
  case Kind::Or:
    for (const pres::Formula &C : F.children())
      if (evalFormula(C, Point, Box))
        return true;
    return false;
  case Kind::Not:
    return !evalFormula(F.children().front(), Point, Box);
  case Kind::Exists:
  case Kind::Forall: {
    bool IsExists = F.getKind() == Kind::Exists;
    // One bound variable at a time keeps the recursion simple; multi-var
    // binders recurse on a formula re-bound over the tail.
    const std::vector<VarId> &Bound = F.boundVars();
    std::function<bool(unsigned)> Rec = [&](unsigned I) -> bool {
      if (I == Bound.size())
        return evalFormula(F.children().front(), Point, Box);
      for (int64_t X = -Box; X <= Box; ++X) {
        Point[Bound[I]] = X;
        bool Inner = Rec(I + 1);
        if (Inner == IsExists)
          return IsExists;
      }
      return !IsExists;
    };
    return Rec(0);
  }
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Cross-checks
//===----------------------------------------------------------------------===//

namespace {

/// Guard for arithmetic saturation: verdicts computed under overflow are
/// intentionally conservative and must not be reported as mismatches.
class SaturationGuard {
public:
  SaturationGuard() : Before(arithOverflowFlag()) {}
  bool saturated() const { return !Before && arithOverflowFlag(); }

private:
  bool Before;
};

std::vector<VarId> liveVars(const Problem &P) {
  std::vector<VarId> Vars;
  for (VarId V = 0, E = P.getNumVars(); V != static_cast<VarId>(E); ++V)
    if (!P.isDead(V))
      Vars.push_back(V);
  return Vars;
}

/// Membership of a kept-variable point in \p Piece, decided by pinning.
bool pieceContains(const Problem &Piece, unsigned NumKeep,
                   const std::vector<int64_t> &Point, OmegaContext &Ctx) {
  Problem Pinned = Piece;
  for (unsigned V = 0; V != NumKeep; ++V)
    Pinned.addEQ({{static_cast<VarId>(V), 1}}, -Point[V]);
  return isSatisfiable(std::move(Pinned), SatOptions(), Ctx);
}

} // namespace

void oracle::checkSatisfiability(const Problem &P, int64_t Box,
                                 ModelReport &Out, OmegaContext &Ctx) {
  ++Out.Checked;
  bool Model = bruteForceSat(P, Box);

  SaturationGuard Guard;
  bool Exact = isSatisfiable(P, SatOptions(), Ctx);
  if (Guard.saturated())
    return; // saturated arithmetic: the conservative answer is by design
  if (Exact != Model) {
    Out.Mismatches.push_back("satisfiability: omega says " +
                             std::string(Exact ? "SAT" : "UNSAT") +
                             ", model says " +
                             std::string(Model ? "SAT" : "UNSAT") + " for " +
                             P.toString());
    return;
  }

  std::optional<std::vector<int64_t>> Witness = findSolution(P, Ctx);
  if (Witness.has_value() != Exact) {
    Out.Mismatches.push_back(
        "witness: findSolution " +
        std::string(Witness ? "produced a point" : "found nothing") +
        " but isSatisfiable says " + (Exact ? "SAT" : "UNSAT") + " for " +
        P.toString());
  } else if (Witness && !evalProblem(P, *Witness)) {
    Out.Mismatches.push_back(
        "witness: findSolution's point violates the constraints of " +
        P.toString());
  }

  if (Model) {
    // The real-shadow relaxation over-approximates: it may answer SAT for
    // integer-infeasible systems but never UNSAT for feasible ones.
    SatOptions Relaxed;
    Relaxed.Mode = SatMode::RealShadowOnly;
    if (!isSatisfiable(P, Relaxed, Ctx))
      Out.Mismatches.push_back(
          "relaxation: real-shadow mode refutes a satisfiable system " +
          P.toString());
  }
}

void oracle::checkProjection(const Problem &P, unsigned NumKeep, int64_t Box,
                             ModelReport &Out, OmegaContext &Ctx) {
  ++Out.Checked;
  std::vector<VarId> Keep;
  for (unsigned V = 0; V != NumKeep; ++V)
    Keep.push_back(static_cast<VarId>(V));

  SaturationGuard Guard;
  ProjectionResult R = projectOnto(P, Keep, ProjectOptions(), Ctx);
  if (R.Poisoned || Guard.saturated())
    return;

  std::vector<VarId> Rest;
  for (VarId V = static_cast<VarId>(NumKeep),
             E = static_cast<VarId>(P.getNumVars());
       V != E; ++V)
    Rest.push_back(V);

  std::vector<int64_t> Point(P.getNumVars(), 0);
  std::function<bool(unsigned)> Walk = [&](unsigned I) -> bool {
    if (I == NumKeep) {
      bool Ground = forEachPointFrom(Point, Rest, -Box, Box,
                                     [&](const std::vector<int64_t> &Pt) {
                                       return evalProblem(P, Pt);
                                     });
      bool Claimed = false;
      for (const Problem &Piece : R.Pieces)
        if ((Claimed = pieceContains(Piece, NumKeep, Point, Ctx)))
          break;
      if (Claimed != Ground) {
        std::string Pt;
        for (unsigned V = 0; V != NumKeep; ++V)
          Pt += (V ? "," : "(") + std::to_string(Point[V]);
        Out.Mismatches.push_back("projection: point " + Pt +
                                 ") is in the " +
                                 (Ground ? "model" : "pieces") +
                                 " but not the " +
                                 (Ground ? "pieces" : "model") + " for " +
                                 P.toString());
        return true;
      }
      if (Ground && !pieceContains(R.Approx, NumKeep, Point, Ctx)) {
        Out.Mismatches.push_back(
            "projection: real-shadow approximation excludes a projected "
            "point of " +
            P.toString());
        return true;
      }
      return false;
    }
    for (int64_t X = -Box; X <= Box; ++X) {
      Point[I] = X;
      if (Walk(I + 1))
        return true;
    }
    return false;
  };
  Walk(0);
}

void oracle::checkGist(const Problem &P, const Problem &Given, int64_t Box,
                       ModelReport &Out, OmegaContext &Ctx) {
  ++Out.Checked;
  SaturationGuard Guard;
  Problem G = gist(P, Given, GistOptions(), Ctx);
  if (Guard.saturated())
    return;

  std::vector<int64_t> Point(P.getNumVars(), 0);
  forEachPointFrom(Point, liveVars(P), -Box, Box,
                   [&](const std::vector<int64_t> &Pt) {
                     if (!evalProblem(Given, Pt))
                       return false;
                     bool WithGist = evalProblem(G, Pt);
                     bool WithP = evalProblem(P, Pt);
                     if (WithGist != WithP) {
                       Out.Mismatches.push_back(
                           "gist: (gist && given) disagrees with "
                           "(p && given) at a box point; p = " +
                           P.toString() + ", given = " + Given.toString() +
                           ", gist = " + G.toString());
                       return true;
                     }
                     return false;
                   });
}

void oracle::checkImplication(const Problem &Given, const Problem &P,
                              int64_t Box, ModelReport &Out,
                              OmegaContext &Ctx) {
  ++Out.Checked;
  SaturationGuard Guard;
  bool Claimed = implies(Given, P, Ctx);
  if (Guard.saturated())
    return;

  std::vector<int64_t> Point(Given.getNumVars(), 0);
  bool Counterexample =
      forEachPointFrom(Point, liveVars(Given), -Box, Box,
                       [&](const std::vector<int64_t> &Pt) {
                         return evalProblem(Given, Pt) && !evalProblem(P, Pt);
                       });
  if (Claimed == Counterexample)
    Out.Mismatches.push_back("implication: implies() says " +
                             std::string(Claimed ? "yes" : "no") +
                             " but the model " +
                             (Counterexample ? "has a counterexample"
                                             : "has none") +
                             "; given = " + Given.toString() +
                             ", p = " + P.toString());
}

void oracle::checkFormula(const pres::Formula &F,
                          const pres::FormulaContext &Ctx, int64_t Box,
                          ModelReport &Out) {
  std::optional<bool> Decided = pres::isSatisfiable(F, Ctx);
  if (!Decided)
    return; // outside the decidable subclass: nothing to compare

  ++Out.Checked;
  std::vector<VarId> All;
  for (VarId V = 0, E = Ctx.getNumVars(); V != static_cast<VarId>(E); ++V)
    All.push_back(V);
  // Free variables are box-guarded by construction, so enumerating every
  // context variable (bound ones get overwritten during evaluation) is an
  // exact existential model.
  bool Model = forEachPoint(Ctx.getNumVars(), All, -Box, Box,
                            [&](const std::vector<int64_t> &Pt) {
                              std::vector<int64_t> Scratch = Pt;
                              return evalFormula(F, Scratch, Box);
                            });
  if (*Decided != Model) {
    Out.Mismatches.push_back("formula sat: decision says " +
                             std::string(*Decided ? "SAT" : "UNSAT") +
                             ", model says " +
                             std::string(Model ? "SAT" : "UNSAT") + " for " +
                             F.toString(Ctx));
    return;
  }

  std::optional<std::optional<std::vector<int64_t>>> Assignment =
      pres::findAssignment(F, Ctx);
  if (!Assignment)
    return;
  if (Assignment->has_value() != *Decided) {
    Out.Mismatches.push_back(
        "formula witness: findAssignment disagrees with isSatisfiable for " +
        F.toString(Ctx));
    return;
  }
  if (*Assignment) {
    std::vector<int64_t> Scratch = **Assignment;
    Scratch.resize(Ctx.getNumVars(), 0);
    if (!evalFormula(F, Scratch, Box))
      Out.Mismatches.push_back(
          "formula witness: findAssignment's point falsifies " +
          F.toString(Ctx));
  }
}
