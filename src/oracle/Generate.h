//===- oracle/Generate.h - Shared random-input generators -----------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Seeded random generators for everything the correctness oracles consume:
/// constraint Problems (with explicit box bounds so brute-force enumeration
/// is an exact oracle), tiny-language programs (loop nests with affine
/// accesses), Presburger formulas (quantified, but with every variable
/// box-guarded so bounded-model evaluation is exact), and the structured
/// stress-program builders. The test suites and the omega-fuzz driver share
/// this one API so any failure is reproducible from a single seed.
///
/// Seed plumbing: fuzzSeed() reads OMEGA_FUZZ_SEED from the environment, so
/// a CI failure log that prints the seed is locally reproducible with
/// `OMEGA_FUZZ_SEED=<seed> ctest -R <test>`.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_ORACLE_GENERATE_H
#define OMEGA_ORACLE_GENERATE_H

#include "omega/Problem.h"
#include "presburger/Formula.h"

#include <random>
#include <string>
#include <vector>

namespace omega {
namespace oracle {

/// The run's base seed: OMEGA_FUZZ_SEED from the environment when set,
/// otherwise \p Fallback. Failure messages should include seedMessage() so
/// the run is reproducible.
unsigned fuzzSeed(unsigned Fallback);

/// "seed 12345 (re-run with OMEGA_FUZZ_SEED=12345)" -- append to any
/// randomized failure message.
std::string seedMessage(unsigned Seed);

//===----------------------------------------------------------------------===//
// Random constraint problems
//===----------------------------------------------------------------------===//

/// Configuration for random problem generation. Generated problems always
/// contain explicit box bounds on every variable so that exhaustive
/// enumeration over [-Box, Box]^n is an exact oracle.
struct RandomProblemConfig {
  unsigned NumVars = 3;
  unsigned NumEQs = 1;
  unsigned NumGEQs = 3;
  int64_t CoeffRange = 3; // coefficients in [-CoeffRange, CoeffRange]
  int64_t ConstRange = 8; // constants in [-ConstRange, ConstRange]
  int64_t Box = 6;        // every variable bounded to [-Box, Box]
};

/// Generates a random conjunction including explicit box bounds.
Problem randomProblem(std::mt19937 &Rng, const RandomProblemConfig &Cfg);

//===----------------------------------------------------------------------===//
// Random tiny-language programs
//===----------------------------------------------------------------------===//

/// Shape of the random loop nests ProgramGenerator emits. All loop bounds
/// are small constants, so the interpreter's trace is short and complete.
struct RandomProgramConfig {
  unsigned MinDepth = 1, MaxDepth = 3;  ///< loops around the first nest
  unsigned MinStmts = 1, MaxStmts = 3;  ///< assignments per nest
  unsigned MaxArrays = 2;               ///< distinct array names
  int64_t LoMax = 2;                    ///< lower bounds in [0, LoMax]
  int64_t HiMin = 4, HiMax = 7;         ///< upper bounds in [HiMin, HiMax]
  bool AllowTriangular = true;          ///< lower bound = outer variable
  bool AllowStride2 = true;             ///< occasional `step 2`
  bool AllowSecondNest = true;          ///< shallower second nest sometimes
};

/// Generates random loop nests with random affine accesses (the generator
/// previously private to tests/RandomProgramTest.cpp). Deterministic for a
/// given seed and config.
class ProgramGenerator {
public:
  explicit ProgramGenerator(unsigned Seed,
                            RandomProgramConfig Cfg = RandomProgramConfig());

  /// One random program as tiny-language source text.
  std::string generate();

private:
  int64_t pick(int64_t Lo, int64_t Hi);
  bool chance(int OneIn);
  void indent();
  void openLoops(unsigned Depth);
  void closeLoops();
  std::string affineSubscript();
  std::string arrayRef(bool TwoDims);
  void emitAssignment();

  std::mt19937 Rng;
  RandomProgramConfig Cfg;
  std::string Src;
  std::vector<std::string> Loops;
  unsigned NumArrays = 1;
};

//===----------------------------------------------------------------------===//
// Structured stress programs (previously ad hoc in tests/StressTest.cpp)
//===----------------------------------------------------------------------===//

/// `Depth` perfectly nested loops (2..n each) around a(i,j,...) += 1.
std::string deepRecurrenceNest(unsigned Depth);

/// \p NumLoops independent single loops, each a carried recurrence on its
/// own array a<k>(i) := a<k>(i-1).
std::string wideProgram(unsigned NumLoops);

/// One loop containing \p NumStmts statements a(i) := a(i - s), s = 1..N:
/// a quadratic pair count with kills.
std::string sameArrayChain(unsigned NumStmts);

/// `symbolic s0, ..., s<N-1>;` with a loop bounded and subscripted by them.
std::string manySymbolicConstants(unsigned NumSyms);

//===----------------------------------------------------------------------===//
// Random Presburger formulas
//===----------------------------------------------------------------------===//

struct RandomFormulaConfig {
  unsigned NumFreeVars = 2;
  unsigned MaxDepth = 3;    ///< connective nesting depth
  unsigned MaxQuantifiers = 2;
  int64_t CoeffRange = 2;
  int64_t ConstRange = 4;
  int64_t Box = 3; ///< every variable (free and bound) guarded to [-Box, Box]
};

/// A random formula over \p Ctx. Free variables are created in \p Ctx
/// before generation; every quantified variable is guarded inside the
/// quantifier (exists x: -Box <= x <= Box && ...; forall x: box => ...), and
/// the whole formula is conjoined with box guards on the free variables, so
/// evaluating over [-Box, Box]^vars is an exact model (see ModelOracle.h).
pres::Formula randomFormula(std::mt19937 &Rng, pres::FormulaContext &Ctx,
                            const RandomFormulaConfig &Cfg);

} // namespace oracle
} // namespace omega

#endif // OMEGA_ORACLE_GENERATE_H
