//===- oracle/ScheduleOracle.cpp ------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "oracle/ScheduleOracle.h"

#include "engine/DependenceEngine.h"
#include "transform/Apply.h"

#include <set>

using namespace omega;
using namespace omega::oracle;

std::map<std::string, int64_t>
oracle::scheduleSymbols(const ir::AnalyzedProgram &AP,
                        const std::map<std::string, int64_t> &Base) {
  std::map<std::string, int64_t> Symbols = Base;
  for (const std::string &S : AP.Source.SymbolicConsts) {
    if (Symbols.count(S))
      continue;
    Symbols[S] = S == "n" ? 5 : S == "m" ? 4 : 3;
  }
  return Symbols;
}

namespace {

using FinalState = std::map<std::string, std::map<std::vector<int64_t>, int64_t>>;

std::string renderElement(const std::string &Array,
                          const std::vector<int64_t> &Loc) {
  std::string Out = Array + "(";
  for (unsigned I = 0; I != Loc.size(); ++I) {
    if (I)
      Out += ",";
    Out += std::to_string(Loc[I]);
  }
  return Out + ")";
}

/// First disagreement between the two final states, or "" when equal.
std::string diffStates(const FinalState &Base, const FinalState &Staged) {
  std::set<std::string> Arrays;
  for (const auto &KV : Base)
    Arrays.insert(KV.first);
  for (const auto &KV : Staged)
    Arrays.insert(KV.first);
  for (const std::string &A : Arrays) {
    auto BIt = Base.find(A);
    auto SIt = Staged.find(A);
    if (BIt == Base.end())
      return "array " + A + " written only by the staged schedule";
    if (SIt == Staged.end())
      return "array " + A + " never written by the staged schedule";
    for (const auto &KV : BIt->second) {
      auto Elt = SIt->second.find(KV.first);
      if (Elt == SIt->second.end())
        return renderElement(A, KV.first) + " never written by the staged "
                                            "schedule";
      if (Elt->second != KV.second)
        return renderElement(A, KV.first) + " = " +
               std::to_string(KV.second) + " originally but " +
               std::to_string(Elt->second) + " staged";
    }
    for (const auto &KV : SIt->second)
      if (!BIt->second.count(KV.first))
        return renderElement(A, KV.first) + " written only by the staged "
                                            "schedule";
  }
  return "";
}

engine::AnalysisResult runFullEngine(const ir::AnalyzedProgram &AP) {
  engine::AnalysisRequest Req;
  Req.UseQueryCache = false;
  engine::DependenceEngine Engine(Req);
  return Engine.analyze(AP);
}

} // namespace

bool oracle::checkPlanEquivalence(const ir::AnalyzedProgram &AP,
                                  const transform::PipelinePlan &Plan,
                                  const TraceOracleOptions &Opts,
                                  std::vector<std::string> &Mismatches) {
  ir::ExecConfig Cfg;
  Cfg.Symbols = scheduleSymbols(AP, Opts.Symbols);
  Cfg.MaxSteps = Opts.MaxSteps;
  ir::ExecResult Base = ir::interpret(AP.Source, Cfg);
  if (Base.Failed || Base.Truncated)
    return false; // nothing trustworthy to compare against

  std::string LoopName =
      Plan.Loop ? Plan.Loop->SourceVar : std::string("?");
  ir::Program Staged = AP.Source;
  transform::ApplyResult AR = transform::applyPipeline(Staged, Plan);
  if (AR != transform::ApplyResult::Applied) {
    Mismatches.push_back("pipeline plan for loop " + LoopName +
                         " failed to apply: " +
                         transform::applyResultName(AR));
    return true;
  }

  // The staged program re-runs loop headers per stage and duplicates
  // privatized writes; give it headroom so a budget artifact is never
  // mistaken for a semantic divergence.
  ir::ExecConfig StagedCfg = Cfg;
  StagedCfg.MaxSteps = Cfg.MaxSteps * 4;
  ir::ExecResult After = ir::interpret(Staged, StagedCfg);
  if (After.Failed) {
    Mismatches.push_back("staged schedule for loop " + LoopName +
                         " failed to execute: " + After.Error);
    return true;
  }
  if (After.Truncated)
    return false;

  FinalState Masked;
  for (const auto &KV : After.FinalState)
    if (!transform::isPipelineTempArray(KV.first))
      Masked.insert(KV);

  std::string Diff = diffStates(Base.FinalState, Masked);
  if (!Diff.empty())
    Mismatches.push_back("staged schedule for loop " + LoopName + " (" +
                         std::to_string(Plan.Stages.size()) +
                         " stages) diverges: " + Diff);
  return true;
}

ScheduleReport
oracle::checkPipelineSchedules(const std::string &Source,
                               const TraceOracleOptions &Opts) {
  ScheduleReport Rep;
  ir::AnalyzedProgram AP = ir::analyzeSource(Source);
  if (!AP.ok())
    return Rep; // rejected program: vacuously passes

  engine::AnalysisResult R = runFullEngine(AP);
  std::vector<transform::PipelineFacts> Facts =
      transform::analyzePipelines(AP, R);
  Rep.LoopsConsidered = Facts.size();
  for (const transform::PipelineFacts &F : Facts) {
    if (!F.Plan.valid())
      continue;
    if (checkPlanEquivalence(AP, F.Plan, Opts, Rep.Mismatches)) {
      ++Rep.PlansChecked;
      if (F.Plan.hasParallelStage())
        ++Rep.ParallelPlans;
    }
  }
  return Rep;
}

bool oracle::injectPipelineBug(const std::string &Source,
                               const TraceOracleOptions &Opts,
                               std::vector<std::string> &Mismatches) {
  ir::AnalyzedProgram AP = ir::analyzeSource(Source);
  if (!AP.ok())
    return false;

  engine::AnalysisResult R = runFullEngine(AP);
  for (const std::unique_ptr<ir::LoopInfo> &L : AP.Loops) {
    transform::Pdg G = transform::buildPdg(AP, R, L.get());
    for (unsigned I = 0; I != G.Edges.size(); ++I) {
      const transform::PdgEdge &E = G.Edges[I];
      if (!E.LoopCarried || !G.planningEdge(E))
        continue;
      // Delete this one carried edge -- the unsound kill under test --
      // and see whether the planner now proposes a schedule the
      // interpreter refutes.
      transform::Pdg Buggy = G;
      Buggy.Edges[I].Dead = true;
      Buggy.Edges[I].DeadReason = 'b';
      transform::PipelinePlan Plan = transform::planPipeline(AP, Buggy);
      if (!Plan.valid())
        continue;
      std::vector<std::string> Local;
      if (checkPlanEquivalence(AP, Plan, Opts, Local) && !Local.empty()) {
        for (std::string &M : Local)
          Mismatches.push_back("injected unsound kill " +
                               std::to_string(G.StmtLabels[E.Src]) + "->" +
                               std::to_string(G.StmtLabels[E.Dst]) + ": " +
                               M);
        return true;
      }
    }
  }
  return false;
}
