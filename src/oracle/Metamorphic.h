//===- oracle/Metamorphic.h - Invariance and monotonicity checks ----------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Metamorphic relations the Omega core and the dependence analyzer must
/// respect, checkable without any ground truth:
///
///  * Problem satisfiability is invariant under renaming (permuting the
///    variable columns), reordering the constraint rows, and multiplying
///    any row by a positive integer.
///
///  * Widening a loop's upper bound can only add iterations, so every
///    memory-based dependence level present before widening must still be
///    present after. (Value-based kills are deliberately NOT checked for
///    monotonicity: new interleaved iterations can kill flows that were
///    live in the narrower nest.)
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_ORACLE_METAMORPHIC_H
#define OMEGA_ORACLE_METAMORPHIC_H

#include "ir/Sema.h"
#include "oracle/ModelOracle.h"

#include <optional>
#include <random>

namespace omega {
namespace oracle {

/// Returns \p P with variable columns permuted: coefficient of old
/// variable V moves to column Perm[V]. \p Perm must be a permutation of
/// 0..NumVars-1. Names and protected flags move with the columns.
Problem permuteVariables(const Problem &P, const std::vector<VarId> &Perm);

/// Returns \p P with the constraint rows in a random order.
Problem shuffleRows(const Problem &P, std::mt19937 &Rng);

/// Returns \p P with every row multiplied by a random factor in
/// [1, MaxFactor] (equalities occasionally by a negative factor, which is
/// also satisfiability-preserving).
Problem scaleRows(const Problem &P, std::mt19937 &Rng, int64_t MaxFactor = 3);

/// Applies all three Problem transformations and checks isSatisfiable
/// agrees with the untransformed verdict on each. Appends mismatches to
/// \p Out.
void checkProblemMetamorphic(const Problem &P, std::mt19937 &Rng,
                             ModelReport &Out,
                             OmegaContext &Ctx = OmegaContext::current());

/// Returns \p P with every loop's upper bound increased by \p Extra, or
/// nullopt when the program has a downward-counting loop (widening the
/// textual upper bound would shrink those).
std::optional<ir::Program> widenLoopBounds(const ir::Program &P,
                                           int64_t Extra);

/// Checks memory-based dependence monotonicity between a program and its
/// widened variant: for matching access pairs, every (kind, level) present
/// in \p Narrow must be present in \p Wide. Accesses are matched by
/// (statement label, read/write, read ordinal). Appends mismatches to
/// \p Out.Mismatches and counts comparisons in \p Out.Checked.
void checkWidenedMonotone(const ir::AnalyzedProgram &Narrow,
                          const ir::AnalyzedProgram &Wide, ModelReport &Out);

} // namespace oracle
} // namespace omega

#endif // OMEGA_ORACLE_METAMORPHIC_H
