//===- oracle/Metamorphic.cpp ---------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "oracle/Metamorphic.h"

#include "deps/DependenceAnalysis.h"
#include "omega/Satisfiability.h"
#include "oracle/TraceOracle.h"
#include "support/MathUtils.h"

#include <algorithm>
#include <map>
#include <set>

using namespace omega;
using namespace omega::oracle;

Problem oracle::permuteVariables(const Problem &P,
                                 const std::vector<VarId> &Perm) {
  Problem Q;
  // Column Perm[V] of Q carries old variable V; invert to lay out names.
  std::vector<VarId> Inv(Perm.size());
  for (VarId V = 0, E = static_cast<VarId>(Perm.size()); V != E; ++V)
    Inv[Perm[V]] = V;
  for (VarId NewV = 0, E = static_cast<VarId>(Perm.size()); NewV != E; ++NewV)
    Q.addVar(P.getVarName(Inv[NewV]), P.isProtected(Inv[NewV]));
  for (const Constraint &Row : P.constraints()) {
    Constraint &Out = Q.addRow(Row.getKind(), Row.isRed());
    for (VarId V = 0, E = static_cast<VarId>(Perm.size()); V != E; ++V)
      Out.setCoeff(Perm[V], Row.getCoeff(V));
    Out.setConstant(Row.getConstant());
  }
  return Q;
}

Problem oracle::shuffleRows(const Problem &P, std::mt19937 &Rng) {
  Problem Q = P.cloneLayout();
  std::vector<const Constraint *> Rows;
  for (const Constraint &Row : P.constraints())
    Rows.push_back(&Row);
  std::shuffle(Rows.begin(), Rows.end(), Rng);
  for (const Constraint *Row : Rows)
    Q.addConstraint(*Row);
  return Q;
}

Problem oracle::scaleRows(const Problem &P, std::mt19937 &Rng,
                          int64_t MaxFactor) {
  Problem Q = P.cloneLayout();
  std::uniform_int_distribution<int64_t> Factor(1, MaxFactor);
  for (const Constraint &Row : P.constraints()) {
    Constraint Scaled = Row;
    int64_t F = Factor(Rng);
    if (Scaled.isEquality() && Factor(Rng) == 1)
      F = -F; // an equality survives negation too
    Scaled.scale(F);
    Q.addConstraint(std::move(Scaled));
  }
  return Q;
}

void oracle::checkProblemMetamorphic(const Problem &P, std::mt19937 &Rng,
                                     ModelReport &Out, OmegaContext &Ctx) {
  bool Before = arithOverflowFlag();
  bool Base = isSatisfiable(P, SatOptions(), Ctx);
  if (!Before && arithOverflowFlag())
    return; // saturated verdicts are conservative by design

  std::vector<VarId> Perm;
  for (VarId V = 0, E = static_cast<VarId>(P.getNumVars()); V != E; ++V)
    Perm.push_back(V);
  std::shuffle(Perm.begin(), Perm.end(), Rng);

  struct Variant {
    const char *Name;
    Problem Transformed;
  } Variants[] = {
      {"variable permutation", permuteVariables(P, Perm)},
      {"row shuffle", shuffleRows(P, Rng)},
      {"positive row scaling", scaleRows(P, Rng)},
  };
  for (Variant &V : Variants) {
    ++Out.Checked;
    bool Pre = arithOverflowFlag();
    bool Got = isSatisfiable(V.Transformed, SatOptions(), Ctx);
    if (!Pre && arithOverflowFlag())
      continue; // the transform (e.g. scaling) pushed a row into saturation
    if (Got != Base)
      Out.Mismatches.push_back(std::string("metamorphic: ") + V.Name +
                               " flipped satisfiability from " +
                               (Base ? "SAT" : "UNSAT") + " for " +
                               P.toString());
  }
}

//===----------------------------------------------------------------------===//
// Loop-bound widening
//===----------------------------------------------------------------------===//

namespace {

bool widenStmt(ir::Stmt &S, int64_t Extra) {
  if (!S.isFor())
    return true;
  ir::ForStmt &F = S.asFor();
  if (F.Step < 0)
    return false; // widening Hi would shrink a downward loop
  F.Hi = ir::Expr::add(F.Hi, ir::Expr::intLit(Extra));
  for (ir::Stmt &Child : F.Body)
    if (!widenStmt(Child, Extra))
      return false;
  return true;
}

} // namespace

std::optional<ir::Program> oracle::widenLoopBounds(const ir::Program &P,
                                                   int64_t Extra) {
  ir::Program Wide = P;
  for (ir::Stmt &S : Wide.Body)
    if (!widenStmt(S, Extra))
      return std::nullopt;
  return Wide;
}

void oracle::checkWidenedMonotone(const ir::AnalyzedProgram &Narrow,
                                  const ir::AnalyzedProgram &Wide,
                                  ModelReport &Out) {
  deps::DependenceAnalysis NarrowDA(Narrow), WideDA(Wide);
  std::vector<deps::Dependence> NarrowDeps = NarrowDA.computeAllDependences();
  std::vector<deps::Dependence> WideDeps = WideDA.computeAllDependences();
  std::map<AccessKey, const ir::Access *> WideMap = buildAccessMap(Wide);

  // Wide access-pair dependence levels, keyed by matched source/dest sites.
  auto keyOf = [](const ir::Access &A, unsigned Ordinal) {
    return AccessKey{A.StmtLabel, A.IsWrite, Ordinal};
  };
  std::map<const ir::Access *, unsigned> Ordinals;
  {
    std::map<unsigned, unsigned> Next;
    for (const ir::Access &A : Narrow.Accesses)
      Ordinals[&A] = A.IsWrite ? 0 : Next[A.StmtLabel]++;
  }
  std::map<const ir::Access *, unsigned> WideOrdinals;
  {
    std::map<unsigned, unsigned> Next;
    for (const ir::Access &A : Wide.Accesses)
      WideOrdinals[&A] = A.IsWrite ? 0 : Next[A.StmtLabel]++;
  }
  std::set<std::tuple<AccessKey, AccessKey, deps::DepKind, unsigned>>
      WidePresent;
  for (const deps::Dependence &D : WideDeps)
    for (const deps::DepSplit &S : D.Splits)
      WidePresent.insert({keyOf(*D.Src, WideOrdinals[D.Src]),
                          keyOf(*D.Dst, WideOrdinals[D.Dst]), D.Kind,
                          S.Level});

  for (const deps::Dependence &D : NarrowDeps) {
    AccessKey SrcKey = keyOf(*D.Src, Ordinals[D.Src]);
    AccessKey DstKey = keyOf(*D.Dst, Ordinals[D.Dst]);
    if (!WideMap.count(SrcKey) || !WideMap.count(DstKey))
      continue; // structurally different program; nothing to compare
    for (const deps::DepSplit &S : D.Splits) {
      ++Out.Checked;
      if (!WidePresent.count({SrcKey, DstKey, D.Kind, S.Level}))
        Out.Mismatches.push_back(
            std::string("widening: ") + deps::depKindName(D.Kind) +
            " dependence " + D.Src->Text + " -> " + D.Dst->Text +
            " at level " + std::to_string(S.Level) +
            " disappeared when loop bounds were widened");
    }
  }
}
