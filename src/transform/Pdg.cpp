//===- transform/Pdg.cpp --------------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "transform/Pdg.h"

#include "analysis/Transforms.h"

#include <algorithm>
#include <map>
#include <set>

using namespace omega;
using namespace omega::transform;
using omega::deps::Dependence;
using omega::deps::DepKind;
using omega::deps::DepSplit;

int Pdg::nodeOf(unsigned Label) const {
  for (unsigned I = 0; I != StmtLabels.size(); ++I)
    if (StmtLabels[I] == Label)
      return static_cast<int>(I);
  return -1;
}

namespace {

/// Classifies the splits of one dependence relative to loop L and emits
/// at most one edge per (LoopCarried, Dead) class -- several splits of
/// the same class would duplicate an identical edge.
void edgesOf(const Dependence &D, DepKind Kind, const ir::LoopInfo *L,
             const std::map<unsigned, unsigned> &NodeOf,
             std::vector<PdgEdge> &Out) {
  auto SrcIt = NodeOf.find(D.Src->StmtLabel);
  auto DstIt = NodeOf.find(D.Dst->StmtLabel);
  if (SrcIt == NodeOf.end() || DstIt == NodeOf.end())
    return;
  int Depth = analysis::commonLoopDepth(D, L);
  if (Depth < 0)
    return;
  // (LoopCarried, Dead) -> DeadReason of the first such split.
  bool Seen[2][2] = {{false, false}, {false, false}};
  char Reason[2][2] = {{0, 0}, {0, 0}};
  for (const DepSplit &S : D.Splits) {
    // Splits carried outside L order whole L-instances; they do not
    // constrain the partition of L's body.
    if (S.Level >= 1 && S.Level <= static_cast<unsigned>(Depth))
      continue;
    bool Carried = S.Level == static_cast<unsigned>(Depth) + 1;
    if (!Seen[Carried][S.Dead]) {
      Seen[Carried][S.Dead] = true;
      Reason[Carried][S.Dead] = S.Dead ? S.DeadReason : static_cast<char>(0);
    }
  }
  for (int Carried = 0; Carried != 2; ++Carried)
    for (int Dead = 0; Dead != 2; ++Dead) {
      if (!Seen[Carried][Dead])
        continue;
      PdgEdge E;
      E.Src = SrcIt->second;
      E.Dst = DstIt->second;
      E.Kind = Kind;
      E.LoopCarried = Carried != 0;
      E.Dead = Dead != 0;
      E.DeadReason = Reason[Carried][Dead];
      E.Array = D.Src->Array;
      Out.push_back(std::move(E));
    }
}

} // namespace

Pdg transform::buildPdg(const ir::AnalyzedProgram &AP,
                        const analysis::AnalysisResult &R,
                        const ir::LoopInfo *L) {
  Pdg G;
  G.Loop = L;

  // Nodes: statements (by label, program order) whose nests include L.
  std::map<unsigned, unsigned> NodeOf;
  for (const ir::Access &A : AP.Accesses) {
    if (std::find(A.Loops.begin(), A.Loops.end(), L) == A.Loops.end())
      continue;
    if (!NodeOf.count(A.StmtLabel)) {
      NodeOf[A.StmtLabel] = G.StmtLabels.size();
      G.StmtLabels.push_back(A.StmtLabel);
    }
  }

  for (const Dependence &D : R.Flow)
    edgesOf(D, DepKind::Flow, L, NodeOf, G.Edges);
  for (const Dependence &D : R.Anti)
    edgesOf(D, DepKind::Anti, L, NodeOf, G.Edges);
  for (const Dependence &D : R.Output)
    edgesOf(D, DepKind::Output, L, NodeOf, G.Edges);

  // Loop-carried anti dependences are storage artifacts: when every read
  // of the array inside L is satisfied within its own iteration (the
  // kill-powered privatizability test), per-iteration renaming removes
  // them. Decide once per array that actually has such an edge.
  std::map<std::string, bool> Privatizable;
  for (PdgEdge &E : G.Edges) {
    if (E.Kind != DepKind::Anti || !E.LoopCarried || E.Dead)
      continue;
    auto It = Privatizable.find(E.Array);
    if (It == Privatizable.end())
      It = Privatizable
               .emplace(E.Array, analysis::isPrivatizable(AP, R, E.Array, L))
               .first;
    E.Removable = It->second;
  }
  std::set<std::string> Names;
  for (const PdgEdge &E : G.Edges)
    if (E.Removable)
      Names.insert(E.Array);
  G.PrivatizedArrays.assign(Names.begin(), Names.end());
  return G;
}
