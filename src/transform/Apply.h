//===- transform/Apply.h - Applying loop transformations ------------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "apply" side of the transformations Section 1 motivates: given the
/// legality verdicts from analysis/Transforms.h, actually rewrite the AST
/// (loop interchange) or render the parallel schedule. The test suite
/// verifies semantic preservation by interpreting the program before and
/// after and comparing final memory.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_TRANSFORM_APPLY_H
#define OMEGA_TRANSFORM_APPLY_H

#include "analysis/Driver.h"
#include "ir/AST.h"

#include <string>

namespace omega {
namespace transform {

/// Result of attempting an AST rewrite.
enum class ApplyResult {
  Applied,
  NotPerfectlyNested, ///< the outer loop's body is not exactly the inner
  BoundsDependOnOuter, ///< triangular bounds: a pure header swap is wrong
  NoSuchLoops,
};

const char *applyResultName(ApplyResult R);

/// Swaps the headers of the perfectly nested pair (OuterVar directly
/// containing InnerVar). Rectangular bounds only; legality (dependence
/// directions) is the caller's job -- pair with
/// analysis::canInterchange().
ApplyResult interchange(ir::Program &P, const std::string &OuterVar,
                        const std::string &InnerVar);

/// Renders the program with "parallel for" on every loop the analysis
/// proves carries no live dependence (the DOALL schedule).
std::string renderParallelSchedule(const ir::AnalyzedProgram &AP,
                                   const analysis::AnalysisResult &R);

} // namespace transform
} // namespace omega

#endif // OMEGA_TRANSFORM_APPLY_H
