//===- transform/Apply.h - Applying loop transformations ------------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "apply" side of the transformations Section 1 motivates: given the
/// legality verdicts from analysis/Transforms.h, actually rewrite the AST
/// (loop interchange) or render the parallel schedule. The test suite
/// verifies semantic preservation by interpreting the program before and
/// after and comparing final memory.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_TRANSFORM_APPLY_H
#define OMEGA_TRANSFORM_APPLY_H

#include "analysis/Driver.h"
#include "ir/AST.h"
#include "transform/Pipeline.h"

#include <string>

namespace omega {
namespace transform {

/// Result of attempting an AST rewrite.
enum class ApplyResult {
  Applied,
  NotPerfectlyNested, ///< the outer loop's body is not exactly the inner
  BoundsDependOnOuter, ///< triangular bounds: a pure header swap is wrong
  NoSuchLoops,
  BadPlan, ///< pipeline plan invalid or temp names collide
};

const char *applyResultName(ApplyResult R);

/// Swaps the headers of the perfectly nested pair (OuterVar directly
/// containing InnerVar). Rectangular bounds only; legality (dependence
/// directions) is the caller's job -- pair with
/// analysis::canInterchange().
ApplyResult interchange(ir::Program &P, const std::string &OuterVar,
                        const std::string &InnerVar);

/// Renders the program with "parallel for" on every loop the analysis
/// proves carries no live dependence (the DOALL schedule).
std::string renderParallelSchedule(const ir::AnalyzedProgram &AP,
                                   const analysis::AnalysisResult &R);

/// Suffix of the per-iteration expanded copies applyPipeline introduces
/// for privatized arrays ("t" becomes "t@p"). '@' cannot appear in a
/// parsed identifier, so transformed programs can never collide with
/// source arrays; equivalence checks compare final memory on every array
/// except these scratch copies.
inline constexpr const char PipelineTempSuffix[] = "@p";

/// True for the scratch arrays applyPipeline introduces.
bool isPipelineTempArray(const std::string &Name);

/// Rewrites loop \p Plan.Loop of \p P (a fresh parse of the analyzed
/// source) into the staged schedule: one consecutive loop per stage, each
/// keeping exactly its stage's statements (nested loops are filtered per
/// stage and dropped when emptied). Arrays in Plan.PrivatizedArrays are
/// expanded per-iteration -- every access X(subs) becomes
/// X@p(loopvar, subs) -- and each write additionally keeps a duplicate
/// store to the original array so final memory outside the scratch copies
/// is byte-identical to the unstaged program. Stage order is topological
/// over every live dependence, so executing the staged program preserves
/// the original semantics; oracle/ScheduleOracle.h proves it by running
/// both under the interpreter.
ApplyResult applyPipeline(ir::Program &P, const PipelinePlan &Plan);

/// Renders every loop's pipeline plan as executable staged loops, with
/// "stage k (parallel xN | sequential):" headers (omega-analyze
/// --pipeline). Loops without a valid plan are listed as such.
std::string renderPipelineSchedule(const ir::AnalyzedProgram &AP,
                                   const analysis::AnalysisResult &R);

} // namespace transform
} // namespace omega

#endif // OMEGA_TRANSFORM_APPLY_H
