//===- transform/Apply.cpp ------------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "transform/Apply.h"

#include "analysis/Transforms.h"

#include <cstdio>
#include <functional>
#include <iterator>
#include <set>

using namespace omega;
using namespace omega::transform;

const char *transform::applyResultName(ApplyResult R) {
  switch (R) {
  case ApplyResult::Applied:
    return "applied";
  case ApplyResult::NotPerfectlyNested:
    return "not perfectly nested";
  case ApplyResult::BoundsDependOnOuter:
    return "bounds depend on the outer variable";
  case ApplyResult::NoSuchLoops:
    return "no such loop pair";
  case ApplyResult::BadPlan:
    return "invalid pipeline plan";
  }
  return "?";
}

bool transform::isPipelineTempArray(const std::string &Name) {
  std::string Suffix = PipelineTempSuffix;
  return Name.size() > Suffix.size() &&
         Name.compare(Name.size() - Suffix.size(), Suffix.size(), Suffix) ==
             0;
}

namespace {

bool referencesVar(const ir::Expr &E, const std::string &Var) {
  if (E.getKind() == ir::Expr::Kind::VarRef && E.getName() == Var)
    return true;
  for (const ir::Expr &Arg : E.args())
    if (referencesVar(Arg, Var))
      return true;
  return false;
}

ir::ForStmt *findLoop(std::vector<ir::Stmt> &Body, const std::string &Var) {
  for (ir::Stmt &S : Body) {
    if (!S.isFor())
      continue;
    if (S.asFor().Var == Var)
      return &S.asFor();
    if (ir::ForStmt *Found = findLoop(S.asFor().Body, Var))
      return Found;
  }
  return nullptr;
}

//===--------------------------------------------------------------------===//
// Pipeline application
//===--------------------------------------------------------------------===//

/// Rebuilds \p E with every access of a privatized array X renamed to
/// X@p and the partitioned loop's variable prepended to its subscripts
/// (per-iteration expansion).
ir::Expr rewriteExpr(const ir::Expr &E, const std::set<std::string> &Priv,
                     const std::string &LoopVar) {
  using Kind = ir::Expr::Kind;
  auto rewriteAll = [&](const std::vector<ir::Expr> &In) {
    std::vector<ir::Expr> Out;
    Out.reserve(In.size());
    for (const ir::Expr &A : In)
      Out.push_back(rewriteExpr(A, Priv, LoopVar));
    return Out;
  };
  switch (E.getKind()) {
  case Kind::IntLit:
    return ir::Expr::intLit(E.getIntValue(), E.getLoc());
  case Kind::VarRef:
    return ir::Expr::varRef(E.getName(), E.getLoc());
  case Kind::Read: {
    std::vector<ir::Expr> Subs = rewriteAll(E.args());
    if (Priv.count(E.getName())) {
      std::vector<ir::Expr> All;
      All.reserve(Subs.size() + 1);
      All.push_back(ir::Expr::varRef(LoopVar, E.getLoc()));
      for (ir::Expr &S : Subs)
        All.push_back(std::move(S));
      return ir::Expr::read(E.getName() + PipelineTempSuffix,
                            std::move(All), E.getLoc());
    }
    return ir::Expr::read(E.getName(), std::move(Subs), E.getLoc());
  }
  case Kind::Add:
    return ir::Expr::add(rewriteExpr(E.args()[0], Priv, LoopVar),
                         rewriteExpr(E.args()[1], Priv, LoopVar));
  case Kind::Sub:
    return ir::Expr::sub(rewriteExpr(E.args()[0], Priv, LoopVar),
                         rewriteExpr(E.args()[1], Priv, LoopVar));
  case Kind::Mul:
    return ir::Expr::mul(rewriteExpr(E.args()[0], Priv, LoopVar),
                         rewriteExpr(E.args()[1], Priv, LoopVar));
  case Kind::Neg:
    return ir::Expr::neg(rewriteExpr(E.args()[0], Priv, LoopVar));
  case Kind::Min:
    return ir::Expr::min(rewriteAll(E.args()), E.getLoc());
  case Kind::Max:
    return ir::Expr::max(rewriteAll(E.args()), E.getLoc());
  }
  return E;
}

/// One stage's view of a statement list: keeps assignments whose label is
/// in the stage, filters nested loops recursively (dropping emptied
/// ones), renames privatized arrays, and mirrors each privatized write
/// into the original array so final memory outside the scratch copies
/// matches the unstaged program.
std::vector<ir::Stmt> filterStmts(const std::vector<ir::Stmt> &In,
                                  const std::set<unsigned> &Keep,
                                  const std::set<std::string> &Priv,
                                  const std::string &LoopVar) {
  std::vector<ir::Stmt> Out;
  for (const ir::Stmt &S : In) {
    if (S.isFor()) {
      const ir::ForStmt &F = S.asFor();
      ir::ForStmt Copy;
      Copy.Var = F.Var;
      Copy.Lo = rewriteExpr(F.Lo, Priv, LoopVar);
      Copy.Hi = rewriteExpr(F.Hi, Priv, LoopVar);
      Copy.Step = F.Step;
      Copy.Loc = F.Loc;
      Copy.Body = filterStmts(F.Body, Keep, Priv, LoopVar);
      if (Copy.Body.empty())
        continue;
      ir::Stmt W;
      W.Node = std::move(Copy);
      Out.push_back(std::move(W));
      continue;
    }
    const ir::AssignStmt &A = S.asAssign();
    if (!Keep.count(A.Label))
      continue;
    ir::AssignStmt B;
    B.Array = A.Array;
    B.RHS = rewriteExpr(A.RHS, Priv, LoopVar);
    for (const ir::Expr &Sub : A.Subscripts)
      B.Subscripts.push_back(rewriteExpr(Sub, Priv, LoopVar));
    B.Label = A.Label;
    B.Loc = A.Loc;
    if (Priv.count(A.Array)) {
      // Renamed store first, then the duplicate into the original array.
      // Both evaluate the same rewritten RHS at the same point, so the
      // original array sees exactly the values the source program wrote.
      ir::AssignStmt Dup = B;
      B.Array = A.Array + PipelineTempSuffix;
      B.Subscripts.insert(B.Subscripts.begin(),
                          ir::Expr::varRef(LoopVar, A.Loc));
      ir::Stmt WB;
      WB.Node = std::move(B);
      Out.push_back(std::move(WB));
      ir::Stmt WD;
      WD.Node = std::move(Dup);
      Out.push_back(std::move(WD));
    } else {
      ir::Stmt W;
      W.Node = std::move(B);
      Out.push_back(std::move(W));
    }
  }
  return Out;
}

/// Does any statement of \p Body access an array that looks like one of
/// our scratch copies? Such programs cannot be transformed safely.
bool usesTempNames(const ir::Expr &E) {
  if (E.getKind() == ir::Expr::Kind::Read &&
      transform::isPipelineTempArray(E.getName()))
    return true;
  for (const ir::Expr &A : E.args())
    if (usesTempNames(A))
      return true;
  return false;
}

bool usesTempNames(const std::vector<ir::Stmt> &Body) {
  for (const ir::Stmt &S : Body) {
    if (S.isFor()) {
      const ir::ForStmt &F = S.asFor();
      if (usesTempNames(F.Lo) || usesTempNames(F.Hi) ||
          usesTempNames(F.Body))
        return true;
      continue;
    }
    const ir::AssignStmt &A = S.asAssign();
    if (transform::isPipelineTempArray(A.Array) || usesTempNames(A.RHS))
      return true;
    for (const ir::Expr &Sub : A.Subscripts)
      if (usesTempNames(Sub))
        return true;
  }
  return false;
}

/// Builds the staged loops for \p Plan from the original loop \p Orig.
std::vector<ir::Stmt> buildStagedLoops(const ir::ForStmt &Orig,
                                       const transform::PipelinePlan &Plan) {
  std::set<std::string> Priv(Plan.PrivatizedArrays.begin(),
                             Plan.PrivatizedArrays.end());
  std::vector<ir::Stmt> Staged;
  for (const transform::PipelineStage &Stage : Plan.Stages) {
    std::set<unsigned> Keep(Stage.StmtLabels.begin(),
                            Stage.StmtLabels.end());
    ir::ForStmt F;
    F.Var = Orig.Var;
    F.Lo = rewriteExpr(Orig.Lo, Priv, Orig.Var);
    F.Hi = rewriteExpr(Orig.Hi, Priv, Orig.Var);
    F.Step = Orig.Step;
    F.Loc = Orig.Loc;
    F.Body = filterStmts(Orig.Body, Keep, Priv, Orig.Var);
    if (F.Body.empty())
      return {};
    ir::Stmt W;
    W.Node = std::move(F);
    Staged.push_back(std::move(W));
  }
  return Staged;
}

/// Renders one statement like the source, two-space indent per level.
void printStmt(const ir::Stmt &S, unsigned Indent, std::string &Out) {
  Out.append(Indent, ' ');
  if (S.isFor()) {
    const ir::ForStmt &F = S.asFor();
    Out += "for " + F.Var + " := " + F.Lo.toString() + " to " +
           F.Hi.toString();
    if (F.Step != 1)
      Out += " step " + std::to_string(F.Step);
    Out += " do\n";
    for (const ir::Stmt &C : F.Body)
      printStmt(C, Indent + 2, Out);
    Out.append(Indent, ' ');
    Out += "endfor\n";
  } else {
    Out += S.asAssign().toString() + "\n";
  }
}

/// Walks \p LoopInfo::Path (body indices from the root, the last one
/// indexing the for itself) and returns the matching loop, or null when
/// the program does not match the analysis (stale Path).
const ir::ForStmt *loopAtPath(const ir::Program &P, const ir::LoopInfo *L) {
  if (!L || L->Path.empty())
    return nullptr;
  const std::vector<ir::Stmt> *Body = &P.Body;
  for (size_t I = 0; I + 1 < L->Path.size(); ++I) {
    if (L->Path[I] >= Body->size() || !(*Body)[L->Path[I]].isFor())
      return nullptr;
    Body = &(*Body)[L->Path[I]].asFor().Body;
  }
  if (L->Path.back() >= Body->size())
    return nullptr;
  const ir::Stmt &S = (*Body)[L->Path.back()];
  if (!S.isFor() || S.asFor().Var != L->SourceVar)
    return nullptr;
  return &S.asFor();
}

} // namespace

ApplyResult transform::applyPipeline(ir::Program &P,
                                     const PipelinePlan &Plan) {
  if (!Plan.valid() || !Plan.Loop || Plan.Loop->Path.empty())
    return ApplyResult::BadPlan;
  // A source program already using our scratch suffix would collide with
  // the expanded copies; refuse rather than silently alias.
  if (usesTempNames(P.Body))
    return ApplyResult::BadPlan;

  std::vector<ir::Stmt> *Body = &P.Body;
  const std::vector<unsigned> &Path = Plan.Loop->Path;
  for (size_t I = 0; I + 1 < Path.size(); ++I) {
    if (Path[I] >= Body->size() || !(*Body)[Path[I]].isFor())
      return ApplyResult::NoSuchLoops;
    Body = &(*Body)[Path[I]].asFor().Body;
  }
  unsigned Idx = Path.back();
  if (Idx >= Body->size() || !(*Body)[Idx].isFor() ||
      (*Body)[Idx].asFor().Var != Plan.Loop->SourceVar)
    return ApplyResult::NoSuchLoops;

  ir::ForStmt Orig = std::move((*Body)[Idx].asFor());
  std::vector<ir::Stmt> Staged = buildStagedLoops(Orig, Plan);
  if (Staged.size() != Plan.Stages.size()) {
    (*Body)[Idx].Node = std::move(Orig);
    return ApplyResult::BadPlan;
  }
  Body->erase(Body->begin() + Idx);
  Body->insert(Body->begin() + Idx,
               std::make_move_iterator(Staged.begin()),
               std::make_move_iterator(Staged.end()));
  return ApplyResult::Applied;
}

std::string
transform::renderPipelineSchedule(const ir::AnalyzedProgram &AP,
                                  const analysis::AnalysisResult &R) {
  std::string Out;
  for (const PipelineFacts &F : analyzePipelines(AP, R)) {
    Out += "loop " + F.Loop->SourceVar + " (depth " +
           std::to_string(F.Loop->Depth + 1) + "): ";
    const ir::ForStmt *Orig = loopAtPath(AP.Source, F.Loop);
    std::vector<ir::Stmt> Staged;
    if (F.Plan.valid() && Orig)
      Staged = buildStagedLoops(*Orig, F.Plan);
    if (Staged.size() != F.Plan.Stages.size() || Staged.empty()) {
      Out += "no pipeline\n";
      continue;
    }
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.2f", F.Plan.EstimatedSpeedup);
    Out += std::to_string(F.Plan.Stages.size()) + " stages, est speedup " +
           Buf + "\n";
    for (unsigned I = 0; I != Staged.size(); ++I) {
      const PipelineStage &S = F.Plan.Stages[I];
      Out += "stage " + std::to_string(I + 1) + " (" +
             (S.Parallel ? "parallel" : "sequential") + "), weight " +
             std::to_string(S.Weight) + ":\n";
      printStmt(Staged[I], 2, Out);
    }
  }
  return Out;
}

ApplyResult transform::interchange(ir::Program &P,
                                   const std::string &OuterVar,
                                   const std::string &InnerVar) {
  ir::ForStmt *Outer = findLoop(P.Body, OuterVar);
  if (!Outer)
    return ApplyResult::NoSuchLoops;
  if (Outer->Body.size() != 1 || !Outer->Body.front().isFor() ||
      Outer->Body.front().asFor().Var != InnerVar)
    return ApplyResult::NotPerfectlyNested;
  ir::ForStmt &Inner = Outer->Body.front().asFor();

  // A pure header swap is only correct when neither loop's bounds
  // reference the other's variable (rectangular nests). Triangular
  // interchange needs bound rewriting, which we do not attempt.
  if (referencesVar(Inner.Lo, OuterVar) || referencesVar(Inner.Hi, OuterVar) ||
      referencesVar(Outer->Lo, InnerVar) || referencesVar(Outer->Hi, InnerVar))
    return ApplyResult::BoundsDependOnOuter;

  std::swap(Outer->Var, Inner.Var);
  std::swap(Outer->Lo, Inner.Lo);
  std::swap(Outer->Hi, Inner.Hi);
  std::swap(Outer->Step, Inner.Step);
  return ApplyResult::Applied;
}

std::string
transform::renderParallelSchedule(const ir::AnalyzedProgram &AP,
                                  const analysis::AnalysisResult &R) {
  std::vector<analysis::LoopFacts> Facts = analysis::analyzeLoops(AP, R);
  enum class Verdict { Serial, Parallel, FlowParallel };
  auto parallel = [&](const std::string &Var,
                      const std::vector<unsigned> &Path) {
    for (const analysis::LoopFacts &F : Facts)
      if (F.Loop->SourceVar == Var && F.Loop->Path == Path) {
        if (F.Parallelizable)
          return Verdict::Parallel;
        if (F.FlowParallelizable)
          return Verdict::FlowParallel;
        return Verdict::Serial;
      }
    return Verdict::Serial;
  };

  std::string Out;
  std::vector<unsigned> Path;
  std::function<void(const std::vector<ir::Stmt> &, unsigned)> Walk =
      [&](const std::vector<ir::Stmt> &Body, unsigned Indent) {
        for (unsigned I = 0; I != Body.size(); ++I) {
          Path.push_back(I);
          const ir::Stmt &S = Body[I];
          if (S.isFor()) {
            const ir::ForStmt &F = S.asFor();
            Out.append(Indent, ' ');
            switch (parallel(F.Var, Path)) {
            case Verdict::Parallel:
              Out += "parallel ";
              break;
            case Verdict::FlowParallel:
              Out += "parallel(after renaming) ";
              break;
            case Verdict::Serial:
              break;
            }
            Out += "for " + F.Var + " := " + F.Lo.toString() + " to " +
                   F.Hi.toString();
            if (F.Step != 1)
              Out += " step " + std::to_string(F.Step);
            Out += " do\n";
            Walk(F.Body, Indent + 2);
            Out.append(Indent, ' ');
            Out += "endfor\n";
          } else {
            Out.append(Indent, ' ');
            Out += S.asAssign().toString() + "\n";
          }
          Path.pop_back();
        }
      };
  Walk(AP.Source.Body, 0);
  return Out;
}
