//===- transform/Apply.cpp ------------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "transform/Apply.h"

#include "analysis/Transforms.h"

#include <functional>

using namespace omega;
using namespace omega::transform;

const char *transform::applyResultName(ApplyResult R) {
  switch (R) {
  case ApplyResult::Applied:
    return "applied";
  case ApplyResult::NotPerfectlyNested:
    return "not perfectly nested";
  case ApplyResult::BoundsDependOnOuter:
    return "bounds depend on the outer variable";
  case ApplyResult::NoSuchLoops:
    return "no such loop pair";
  }
  return "?";
}

namespace {

bool referencesVar(const ir::Expr &E, const std::string &Var) {
  if (E.getKind() == ir::Expr::Kind::VarRef && E.getName() == Var)
    return true;
  for (const ir::Expr &Arg : E.args())
    if (referencesVar(Arg, Var))
      return true;
  return false;
}

ir::ForStmt *findLoop(std::vector<ir::Stmt> &Body, const std::string &Var) {
  for (ir::Stmt &S : Body) {
    if (!S.isFor())
      continue;
    if (S.asFor().Var == Var)
      return &S.asFor();
    if (ir::ForStmt *Found = findLoop(S.asFor().Body, Var))
      return Found;
  }
  return nullptr;
}

} // namespace

ApplyResult transform::interchange(ir::Program &P,
                                   const std::string &OuterVar,
                                   const std::string &InnerVar) {
  ir::ForStmt *Outer = findLoop(P.Body, OuterVar);
  if (!Outer)
    return ApplyResult::NoSuchLoops;
  if (Outer->Body.size() != 1 || !Outer->Body.front().isFor() ||
      Outer->Body.front().asFor().Var != InnerVar)
    return ApplyResult::NotPerfectlyNested;
  ir::ForStmt &Inner = Outer->Body.front().asFor();

  // A pure header swap is only correct when neither loop's bounds
  // reference the other's variable (rectangular nests). Triangular
  // interchange needs bound rewriting, which we do not attempt.
  if (referencesVar(Inner.Lo, OuterVar) || referencesVar(Inner.Hi, OuterVar) ||
      referencesVar(Outer->Lo, InnerVar) || referencesVar(Outer->Hi, InnerVar))
    return ApplyResult::BoundsDependOnOuter;

  std::swap(Outer->Var, Inner.Var);
  std::swap(Outer->Lo, Inner.Lo);
  std::swap(Outer->Hi, Inner.Hi);
  std::swap(Outer->Step, Inner.Step);
  return ApplyResult::Applied;
}

std::string
transform::renderParallelSchedule(const ir::AnalyzedProgram &AP,
                                  const analysis::AnalysisResult &R) {
  std::vector<analysis::LoopFacts> Facts = analysis::analyzeLoops(AP, R);
  enum class Verdict { Serial, Parallel, FlowParallel };
  auto parallel = [&](const std::string &Var,
                      const std::vector<unsigned> &Path) {
    for (const analysis::LoopFacts &F : Facts)
      if (F.Loop->SourceVar == Var && F.Loop->Path == Path) {
        if (F.Parallelizable)
          return Verdict::Parallel;
        if (F.FlowParallelizable)
          return Verdict::FlowParallel;
        return Verdict::Serial;
      }
    return Verdict::Serial;
  };

  std::string Out;
  std::vector<unsigned> Path;
  std::function<void(const std::vector<ir::Stmt> &, unsigned)> Walk =
      [&](const std::vector<ir::Stmt> &Body, unsigned Indent) {
        for (unsigned I = 0; I != Body.size(); ++I) {
          Path.push_back(I);
          const ir::Stmt &S = Body[I];
          if (S.isFor()) {
            const ir::ForStmt &F = S.asFor();
            Out.append(Indent, ' ');
            switch (parallel(F.Var, Path)) {
            case Verdict::Parallel:
              Out += "parallel ";
              break;
            case Verdict::FlowParallel:
              Out += "parallel(after renaming) ";
              break;
            case Verdict::Serial:
              break;
            }
            Out += "for " + F.Var + " := " + F.Lo.toString() + " to " +
                   F.Hi.toString();
            if (F.Step != 1)
              Out += " step " + std::to_string(F.Step);
            Out += " do\n";
            Walk(F.Body, Indent + 2);
            Out.append(Indent, ' ');
            Out += "endfor\n";
          } else {
            Out.append(Indent, ' ');
            Out += S.asAssign().toString() + "\n";
          }
          Path.pop_back();
        }
      };
  Walk(AP.Source.Body, 0);
  return Out;
}
