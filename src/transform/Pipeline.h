//===- transform/Pipeline.h - PS-DSWP pipeline partitioning ---------------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pipeline-stage partitioning of one loop over the SCC-DAG of its PDG,
/// in the PS-DSWP style: condense the live dependence graph with Tarjan's
/// algorithm, mark each SCC parallel when it contains no loop-carried
/// edge (`IsParallel`), pick the heaviest parallel SCC as the pivot,
/// grow the parallel stage into an antichain of mutually unreachable
/// parallel SCCs, then place every remaining SCC before or after it
/// (flexible SCCs join the before side when nothing must run after the
/// parallel stage, the after side otherwise -- the `pivot()` rule).
/// Sequential sides are re-split at topological prefix points while their
/// weight exceeds the parallel stage's per-replica share, bounding the
/// pipeline's bottleneck.
///
/// The cost model is a simple performance estimator: each statement
/// weighs the product of the estimated trip counts of the loops nested
/// inside the partitioned loop around it (constant bounds count exactly,
/// symbolic bounds default to 10), and a stage weighs the sum of its
/// statements.
///
/// Every plan is an executable claim: transform::applyPipeline rewrites
/// the AST into the staged schedule and the oracle in
/// oracle/ScheduleOracle.h interprets it against the original program.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_TRANSFORM_PIPELINE_H
#define OMEGA_TRANSFORM_PIPELINE_H

#include "transform/Pdg.h"

#include <string>
#include <vector>

namespace omega {
namespace transform {

/// One pipeline stage: a set of whole SCCs, executed as its own loop.
struct PipelineStage {
  std::vector<unsigned> StmtLabels; ///< statement labels, ascending
  bool Parallel = false; ///< no loop-carried edge inside the stage
  uint64_t Weight = 0;   ///< estimated work per outer iteration
};

/// A dead or removed dependence edge whose absence the partition relies
/// on: putting it back would coarsen the plan (merge the parallel stage
/// into a cycle or serialize it). Reasons: 'k' killed, 'c' covered
/// (Section 4 flow kills), 'p' privatization (removed carried anti).
struct EnablingKill {
  unsigned SrcLabel = 0;
  unsigned DstLabel = 0;
  deps::DepKind Kind = deps::DepKind::Flow;
  char Reason = 0;
};

/// Options for the partitioner.
struct PipelineOptions {
  /// Ablation: treat dead (killed/covered) flow edges and removable anti
  /// edges as live -- the partition the analyzer would produce without
  /// the paper's Section 4 machinery.
  bool IncludeDead = false;
  /// Replicas assumed for the parallel stage in the cost model.
  unsigned ReplicationFactor = 4;
  /// Upper bound on emitted stages (rebalancing stops at this count).
  unsigned MaxStages = 8;
};

/// The partition of one loop. `valid()` plans have >= 2 stages in a
/// topological order of the SCC-DAG: executing the stages as consecutive
/// loops (fission) preserves every live dependence.
struct PipelinePlan {
  const ir::LoopInfo *Loop = nullptr;
  std::vector<PipelineStage> Stages;
  /// Arrays renamed per-iteration when the plan is applied (from the PDG).
  std::vector<std::string> PrivatizedArrays;
  /// The kills/removals that enabled the partition's parallel stage.
  std::vector<EnablingKill> EnablingKills;
  uint64_t TotalWeight = 0;
  /// TotalWeight / bottleneck stage weight (parallel stages contribute
  /// Weight / ReplicationFactor), the classic DSWP speedup estimate.
  double EstimatedSpeedup = 1.0;

  bool valid() const { return Stages.size() >= 2; }
  bool hasParallelStage() const {
    for (const PipelineStage &S : Stages)
      if (S.Parallel)
        return true;
    return false;
  }
};

/// Partitions loop \p L's PDG \p G into pipeline stages.
PipelinePlan planPipeline(const ir::AnalyzedProgram &AP, const Pdg &G,
                          const PipelineOptions &Opts = PipelineOptions());

/// Per-loop pipeline facts: the PDG summary plus the plan.
struct PipelineFacts {
  const ir::LoopInfo *Loop = nullptr;
  unsigned Statements = 0; ///< PDG nodes
  unsigned Sccs = 0;       ///< SCCs of the live planning graph
  PipelinePlan Plan;
};

/// Builds the PDG and plans a pipeline for every loop of the program.
std::vector<PipelineFacts>
analyzePipelines(const ir::AnalyzedProgram &AP,
                 const analysis::AnalysisResult &R,
                 const PipelineOptions &Opts = PipelineOptions());

/// Deterministic one-line-per-loop text report (omega-analyze
/// --pipeline).
std::string pipelineReport(const ir::AnalyzedProgram &AP,
                           const analysis::AnalysisResult &R);

} // namespace transform
} // namespace omega

#endif // OMEGA_TRANSFORM_PIPELINE_H
