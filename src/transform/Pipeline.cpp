//===- transform/Pipeline.cpp ---------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "transform/Pipeline.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

using namespace omega;
using namespace omega::transform;

namespace {

/// Iterative Tarjan SCC (the same shape analysis/Transforms.cpp uses for
/// loop distribution). Components are numbered in *reverse* topological
/// order; callers convert with NextComp - 1 - Comp[V].
struct SCCFinder {
  const std::vector<std::vector<unsigned>> &Adj;
  std::vector<int> Index, Low, Comp;
  std::vector<bool> OnStack;
  std::vector<unsigned> Stack;
  int NextIndex = 0, NextComp = 0;

  explicit SCCFinder(const std::vector<std::vector<unsigned>> &Adj)
      : Adj(Adj), Index(Adj.size(), -1), Low(Adj.size(), 0),
        Comp(Adj.size(), -1), OnStack(Adj.size(), false) {
    for (unsigned V = 0; V != Adj.size(); ++V)
      if (Index[V] < 0)
        strongConnect(V);
  }

  void strongConnect(unsigned Root) {
    std::vector<std::pair<unsigned, unsigned>> Work{{Root, 0}};
    while (!Work.empty()) {
      auto &[V, Child] = Work.back();
      if (Child == 0) {
        Index[V] = Low[V] = NextIndex++;
        Stack.push_back(V);
        OnStack[V] = true;
      }
      if (Child < Adj[V].size()) {
        unsigned W = Adj[V][Child++];
        if (Index[W] < 0) {
          Work.push_back({W, 0});
        } else if (OnStack[W]) {
          Low[V] = std::min(Low[V], Index[W]);
        }
        continue;
      }
      if (Low[V] == Index[V]) {
        while (true) {
          unsigned W = Stack.back();
          Stack.pop_back();
          OnStack[W] = false;
          Comp[W] = NextComp;
          if (W == V)
            break;
        }
        ++NextComp;
      }
      unsigned Done = V;
      Work.pop_back();
      if (!Work.empty())
        Low[Work.back().first] =
            std::min(Low[Work.back().first], Low[Done]);
    }
  }
};

/// Estimated iterations of one loop: exact for constant rectangular
/// bounds, a default of 10 for symbolic ones.
uint64_t tripEstimate(const ir::LoopInfo &L) {
  if (L.Lower.size() == 1 && L.Upper.size() == 1 &&
      L.Lower[0].isConstant() && L.Upper[0].isConstant()) {
    int64_t Lo = L.Lower[0].getConstant();
    int64_t Hi = L.Upper[0].getConstant();
    int64_t Stride = L.Stride > 0 ? L.Stride : 1;
    if (Hi < Lo)
      return 1; // zero-trip loops still weigh their body once
    return static_cast<uint64_t>((Hi - Lo) / Stride + 1);
  }
  return 10;
}

/// Statement weight: the product of the trip estimates of the loops
/// nested inside the partitioned loop around the statement (1 when the
/// statement sits directly in the loop body).
uint64_t stmtWeight(const ir::AnalyzedProgram &AP, const ir::LoopInfo *L,
                    unsigned Label) {
  for (const ir::Access &A : AP.Accesses) {
    if (A.StmtLabel != Label)
      continue;
    auto It = std::find(A.Loops.begin(), A.Loops.end(), L);
    if (It == A.Loops.end())
      continue;
    uint64_t W = 1;
    for (++It; It != A.Loops.end(); ++It)
      W *= tripEstimate(**It);
    return W == 0 ? 1 : W;
  }
  return 1;
}

/// Whether the live planning graph uses edge \p E under \p Opts: the
/// ablation folds dead and removable edges back in.
bool liveEdge(const PdgEdge &E, const PipelineOptions &Opts) {
  if (Opts.IncludeDead)
    return true;
  return !E.Dead && !E.Removable;
}

struct Condensation {
  unsigned NumComps = 0;
  std::vector<unsigned> CompOf;               ///< node -> topo comp index
  std::vector<std::vector<unsigned>> Members; ///< comp -> nodes
  std::vector<std::vector<bool>> Reach; ///< Reach[A][B]: path A -> B, A != B
  std::vector<bool> Parallel;           ///< no internal loop-carried edge
  std::vector<uint64_t> Weight;
};

Condensation condense(const ir::AnalyzedProgram &AP, const Pdg &G,
                      const PipelineOptions &Opts) {
  unsigned N = G.StmtLabels.size();
  std::vector<std::vector<unsigned>> Adj(N);
  for (const PdgEdge &E : G.Edges)
    if (liveEdge(E, Opts))
      Adj[E.Src].push_back(E.Dst);

  SCCFinder SCC(Adj);
  Condensation C;
  C.NumComps = SCC.NextComp;
  C.CompOf.resize(N);
  C.Members.resize(C.NumComps);
  for (unsigned V = 0; V != N; ++V) {
    C.CompOf[V] = SCC.NextComp - 1 - SCC.Comp[V];
    C.Members[C.CompOf[V]].push_back(V);
  }

  C.Parallel.assign(C.NumComps, true);
  for (const PdgEdge &E : G.Edges)
    if (liveEdge(E, Opts) && E.LoopCarried &&
        C.CompOf[E.Src] == C.CompOf[E.Dst])
      C.Parallel[C.CompOf[E.Src]] = false;

  C.Weight.assign(C.NumComps, 0);
  for (unsigned V = 0; V != N; ++V)
    C.Weight[C.CompOf[V]] += stmtWeight(AP, G.Loop, G.StmtLabels[V]);

  // Reachability over the comp DAG, walking topological order backwards:
  // Reach[A] = union over comp successors S of {S} + Reach[S].
  std::vector<std::set<unsigned>> Succs(C.NumComps);
  for (const PdgEdge &E : G.Edges)
    if (liveEdge(E, Opts) && C.CompOf[E.Src] != C.CompOf[E.Dst])
      Succs[C.CompOf[E.Src]].insert(C.CompOf[E.Dst]);
  C.Reach.assign(C.NumComps, std::vector<bool>(C.NumComps, false));
  for (unsigned A = C.NumComps; A-- > 0;)
    for (unsigned S : Succs[A]) {
      C.Reach[A][S] = true;
      for (unsigned B = 0; B != C.NumComps; ++B)
        if (C.Reach[S][B])
          C.Reach[A][B] = true;
    }
  return C;
}

/// Splits the topologically ordered comp list \p Comps into consecutive
/// stages whose weights approach \p Target, never exceeding
/// \p MaxNewStages stages. Any prefix of a topological order is closed
/// under the DAG's edges, so every cut point is legal.
std::vector<std::vector<unsigned>>
balanceSequential(const std::vector<unsigned> &Comps,
                  const std::vector<uint64_t> &Weight, uint64_t Target,
                  unsigned MaxNewStages) {
  std::vector<std::vector<unsigned>> Out;
  if (Comps.empty())
    return Out;
  Out.push_back(Comps);
  auto weightOf = [&](const std::vector<unsigned> &S) {
    uint64_t W = 0;
    for (unsigned Cmp : S)
      W += Weight[Cmp];
    return W;
  };
  bool Changed = true;
  while (Changed && Out.size() < MaxNewStages) {
    Changed = false;
    // Heaviest over-target stage with at least two comps.
    unsigned Best = Out.size();
    uint64_t BestW = Target;
    for (unsigned I = 0; I != Out.size(); ++I) {
      uint64_t W = weightOf(Out[I]);
      if (Out[I].size() >= 2 && W > BestW) {
        Best = I;
        BestW = W;
      }
    }
    if (Best == Out.size())
      break;
    // Cut at the prefix point minimizing the heavier half (earliest cut
    // on ties, for determinism).
    const std::vector<unsigned> &S = Out[Best];
    uint64_t Total = weightOf(S), Prefix = 0, BestMax = Total;
    unsigned Cut = 0;
    for (unsigned I = 0; I + 1 < S.size(); ++I) {
      Prefix += Weight[S[I]];
      uint64_t Max = std::max(Prefix, Total - Prefix);
      if (Max < BestMax) {
        BestMax = Max;
        Cut = I + 1;
      }
    }
    if (Cut == 0)
      break; // a single comp dominates: no cut improves the bottleneck
    std::vector<unsigned> Tail(S.begin() + Cut, S.end());
    Out[Best].resize(Cut);
    Out.insert(Out.begin() + Best + 1, std::move(Tail));
    Changed = true;
  }
  return Out;
}

} // namespace

PipelinePlan transform::planPipeline(const ir::AnalyzedProgram &AP,
                                     const Pdg &G,
                                     const PipelineOptions &Opts) {
  PipelinePlan Plan;
  Plan.Loop = G.Loop;
  if (!Opts.IncludeDead)
    Plan.PrivatizedArrays = G.PrivatizedArrays;
  if (G.StmtLabels.empty())
    return Plan;

  Condensation C = condense(AP, G, Opts);
  for (uint64_t W : C.Weight)
    Plan.TotalWeight += W;

  // The stage skeleton as comp-index lists, in execution order.
  std::vector<std::vector<unsigned>> StageComps;
  int ParallelStageIdx = -1;

  // Pivot: the heaviest parallel SCC (smallest topo index on ties).
  unsigned Pivot = C.NumComps;
  for (unsigned Cmp = 0; Cmp != C.NumComps; ++Cmp)
    if (C.Parallel[Cmp] &&
        (Pivot == C.NumComps || C.Weight[Cmp] > C.Weight[Pivot]))
      Pivot = Cmp;

  unsigned Repl = std::max(1u, Opts.ReplicationFactor);
  unsigned MaxStages = std::max(2u, Opts.MaxStages);

  if (Pivot == C.NumComps) {
    // No parallel SCC: fall back to a 2-stage balanced DSWP split.
    std::vector<unsigned> All(C.NumComps);
    for (unsigned Cmp = 0; Cmp != C.NumComps; ++Cmp)
      All[Cmp] = Cmp;
    StageComps = balanceSequential(All, C.Weight,
                                   std::max<uint64_t>(1, Plan.TotalWeight / 2),
                                   2);
  } else {
    // Grow the parallel stage: an antichain of mutually unreachable
    // parallel SCCs around the pivot (unreachable implies no edges, so
    // no loop-carried edge can join the stage).
    std::vector<unsigned> Stage{Pivot};
    for (unsigned Cmp = 0; Cmp != C.NumComps; ++Cmp) {
      if (Cmp == Pivot || !C.Parallel[Cmp])
        continue;
      bool Compatible = true;
      for (unsigned M : Stage)
        if (C.Reach[Cmp][M] || C.Reach[M][Cmp]) {
          Compatible = false;
          break;
        }
      if (Compatible)
        Stage.push_back(Cmp);
    }
    std::sort(Stage.begin(), Stage.end());
    std::set<unsigned> InStage(Stage.begin(), Stage.end());

    // pivot(): every other SCC is before (reaches the stage), after
    // (reached from it), or flexible. Flexible SCCs join the before side
    // when nothing must follow the parallel stage, the after side
    // otherwise.
    std::vector<unsigned> Before, After, Flexible;
    for (unsigned Cmp = 0; Cmp != C.NumComps; ++Cmp) {
      if (InStage.count(Cmp))
        continue;
      bool ReachesStage = false, ReachedFromStage = false;
      for (unsigned M : Stage) {
        ReachesStage |= C.Reach[Cmp][M];
        ReachedFromStage |= C.Reach[M][Cmp];
      }
      if (ReachesStage)
        Before.push_back(Cmp);
      else if (ReachedFromStage)
        After.push_back(Cmp);
      else
        Flexible.push_back(Cmp);
    }
    std::vector<unsigned> &Side = After.empty() ? Before : After;
    Side.insert(Side.end(), Flexible.begin(), Flexible.end());
    std::sort(Before.begin(), Before.end());
    std::sort(After.begin(), After.end());

    uint64_t ParallelWeight = 0;
    for (unsigned M : Stage)
      ParallelWeight += C.Weight[M];
    uint64_t Target = std::max<uint64_t>(1, (ParallelWeight + Repl - 1) /
                                                Repl);

    std::vector<std::vector<unsigned>> BeforeStages =
        balanceSequential(Before, C.Weight, Target, MaxStages);
    std::vector<std::vector<unsigned>> AfterStages = balanceSequential(
        After, C.Weight, Target,
        MaxStages > BeforeStages.size() + 1
            ? MaxStages - BeforeStages.size() - 1
            : 1);
    for (std::vector<unsigned> &S : BeforeStages)
      StageComps.push_back(std::move(S));
    ParallelStageIdx = StageComps.size();
    StageComps.push_back(Stage);
    for (std::vector<unsigned> &S : AfterStages)
      StageComps.push_back(std::move(S));
  }

  // Materialize stages: labels ascending, weights summed.
  for (unsigned I = 0; I != StageComps.size(); ++I) {
    PipelineStage S;
    S.Parallel = static_cast<int>(I) == ParallelStageIdx;
    for (unsigned Cmp : StageComps[I]) {
      S.Weight += C.Weight[Cmp];
      for (unsigned V : C.Members[Cmp])
        S.StmtLabels.push_back(G.StmtLabels[V]);
    }
    std::sort(S.StmtLabels.begin(), S.StmtLabels.end());
    Plan.Stages.push_back(std::move(S));
  }

  // Bottleneck and speedup estimate.
  uint64_t Bottleneck = 1;
  for (const PipelineStage &S : Plan.Stages) {
    uint64_t W = S.Parallel ? std::max<uint64_t>(1, (S.Weight + Repl - 1) /
                                                        Repl)
                            : S.Weight;
    Bottleneck = std::max(Bottleneck, W);
  }
  Plan.EstimatedSpeedup =
      static_cast<double>(std::max<uint64_t>(1, Plan.TotalWeight)) /
      static_cast<double>(Bottleneck);

  // Which kills/removals enabled the parallel stage: a dead or removable
  // edge is enabling when restoring it would serialize a parallel stage
  // (an internal loop-carried edge) or merge a parallel-stage SCC into a
  // larger cycle.
  if (Plan.hasParallelStage() && !Opts.IncludeDead) {
    std::set<unsigned> ParallelLabels;
    for (const PipelineStage &S : Plan.Stages)
      if (S.Parallel)
        ParallelLabels.insert(S.StmtLabels.begin(), S.StmtLabels.end());
    unsigned N = G.StmtLabels.size();
    std::vector<std::vector<unsigned>> LiveAdj(N);
    for (const PdgEdge &E : G.Edges)
      if (G.planningEdge(E))
        LiveAdj[E.Src].push_back(E.Dst);
    for (const PdgEdge &E : G.Edges) {
      if (G.planningEdge(E))
        continue;
      bool SrcPar = ParallelLabels.count(G.StmtLabels[E.Src]) != 0;
      bool DstPar = ParallelLabels.count(G.StmtLabels[E.Dst]) != 0;
      bool Enabling = E.LoopCarried && SrcPar && DstPar;
      if (!Enabling && (SrcPar || DstPar)) {
        // Would the edge merge a parallel statement into a larger SCC?
        std::vector<std::vector<unsigned>> Adj = LiveAdj;
        Adj[E.Src].push_back(E.Dst);
        SCCFinder SCC(Adj);
        for (unsigned V = 0; V != N && !Enabling; ++V) {
          if (!ParallelLabels.count(G.StmtLabels[V]))
            continue;
          for (unsigned W = 0; W != N; ++W)
            if (W != V && SCC.Comp[W] == SCC.Comp[V] &&
                C.CompOf[W] != C.CompOf[V]) {
              Enabling = true;
              break;
            }
        }
      }
      if (Enabling) {
        EnablingKill K;
        K.SrcLabel = G.StmtLabels[E.Src];
        K.DstLabel = G.StmtLabels[E.Dst];
        K.Kind = E.Kind;
        K.Reason = E.Removable ? 'p' : (E.DeadReason ? E.DeadReason : 'k');
        bool Dup = false;
        for (const EnablingKill &Prev : Plan.EnablingKills)
          Dup = Dup || (Prev.SrcLabel == K.SrcLabel &&
                        Prev.DstLabel == K.DstLabel && Prev.Kind == K.Kind &&
                        Prev.Reason == K.Reason);
        if (!Dup)
          Plan.EnablingKills.push_back(K);
      }
    }
  }
  return Plan;
}

std::vector<PipelineFacts>
transform::analyzePipelines(const ir::AnalyzedProgram &AP,
                            const analysis::AnalysisResult &R,
                            const PipelineOptions &Opts) {
  std::vector<PipelineFacts> Out;
  for (const std::unique_ptr<ir::LoopInfo> &L : AP.Loops) {
    Pdg G = buildPdg(AP, R, L.get());
    PipelineFacts F;
    F.Loop = L.get();
    F.Statements = G.StmtLabels.size();
    F.Plan = planPipeline(AP, G, Opts);
    // SCC count of the live planning graph == stage comp total; recompute
    // cheaply from the plan's stages only when the plan exists.
    F.Sccs = 0;
    {
      unsigned N = G.StmtLabels.size();
      std::vector<std::vector<unsigned>> Adj(N);
      for (const PdgEdge &E : G.Edges)
        if (G.planningEdge(E))
          Adj[E.Src].push_back(E.Dst);
      SCCFinder SCC(Adj);
      F.Sccs = SCC.NextComp;
    }
    Out.push_back(std::move(F));
  }
  return Out;
}

std::string transform::pipelineReport(const ir::AnalyzedProgram &AP,
                                      const analysis::AnalysisResult &R) {
  std::string Out;
  for (const PipelineFacts &F : analyzePipelines(AP, R)) {
    Out += "loop " + F.Loop->SourceVar + " (depth " +
           std::to_string(F.Loop->Depth + 1) + "): ";
    if (!F.Plan.valid()) {
      Out += std::to_string(F.Statements) + " statement" +
             (F.Statements == 1 ? "" : "s") + ", " +
             std::to_string(F.Sccs) + " scc" + (F.Sccs == 1 ? "" : "s") +
             ": no pipeline\n";
      continue;
    }
    Out += std::to_string(F.Plan.Stages.size()) + " stages";
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.2f", F.Plan.EstimatedSpeedup);
    Out += ", est speedup " + std::string(Buf) + ":";
    for (const PipelineStage &S : F.Plan.Stages) {
      Out += " {";
      for (unsigned I = 0; I != S.StmtLabels.size(); ++I)
        Out += (I ? "," : "") + std::to_string(S.StmtLabels[I]);
      Out += "}";
      if (S.Parallel)
        Out += "*";
    }
    if (!F.Plan.PrivatizedArrays.empty()) {
      Out += " privatized:";
      for (const std::string &A : F.Plan.PrivatizedArrays)
        Out += " " + A;
    }
    if (!F.Plan.EnablingKills.empty()) {
      Out += " enabled by:";
      for (const EnablingKill &K : F.Plan.EnablingKills) {
        Out += " " + std::to_string(K.SrcLabel) + "->" +
               std::to_string(K.DstLabel) + "(";
        Out += K.Reason == 'p' ? "privatization" : "kill";
        Out += ")";
      }
    }
    Out += "\n";
  }
  return Out;
}
