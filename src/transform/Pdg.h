//===- transform/Pdg.h - Statement-level program dependence graph ---------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The statement-level program dependence graph (PDG) of one loop, built
/// over the kill-aware dependence table -- the input the PS-DSWP pipeline
/// partitioner (transform/Pipeline.h) condenses into an SCC-DAG.
///
/// Nodes are the statements whose access nests include the loop L. One
/// edge is emitted per dependence whose endpoints are both inside L,
/// classified relative to L:
///
///  * splits carried by a loop *outside* L (level in [1, depth(L)]) order
///    whole L-instances and are dropped, exactly as distributeLoop does;
///  * a split at level depth(L)+1 is carried by L (`LoopCarried`);
///  * level 0 and deeper levels stay within one L-iteration.
///
/// Edges keep their liveness: killed flow splits become `Dead` edges
/// (present for the --no-kills ablation, absent from the live graph), and
/// loop-carried anti dependences on privatizable arrays become
/// `Removable` edges -- per-iteration renaming (what applyPipeline
/// performs) eliminates them, which is the paper's "false data
/// dependence" thesis applied to storage. The partitioner plans over
/// live, non-removable edges only.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_TRANSFORM_PDG_H
#define OMEGA_TRANSFORM_PDG_H

#include "analysis/Driver.h"

#include <string>
#include <vector>

namespace omega {
namespace transform {

/// One PDG edge (one contributing dependence split class).
struct PdgEdge {
  unsigned Src = 0; ///< node index into Pdg::StmtLabels
  unsigned Dst = 0; ///< node index into Pdg::StmtLabels
  deps::DepKind Kind = deps::DepKind::Flow;
  bool LoopCarried = false; ///< carried by the PDG's loop itself
  bool Dead = false;        ///< killed/covered flow split ('k'/'c')
  char DeadReason = 0;      ///< 'k' killed, 'c' covered (when Dead)
  bool Removable = false;   ///< carried anti on a privatizable array
  std::string Array;        ///< the array the dependence is on
};

/// The PDG of one loop. Nodes are statement labels in program order;
/// edges carry their liveness/removability classification.
struct Pdg {
  const ir::LoopInfo *Loop = nullptr;
  std::vector<unsigned> StmtLabels; ///< node -> 1-based statement label
  std::vector<PdgEdge> Edges;       ///< all edges, including dead/removable
  /// Arrays whose loop-carried anti dependences are removable: every read
  /// inside the loop is covered in the same iteration (isPrivatizable),
  /// so per-iteration expansion renames the storage apart. Sorted.
  std::vector<std::string> PrivatizedArrays;

  /// Node index of \p Label, or -1 when the statement is not in the loop.
  int nodeOf(unsigned Label) const;
  /// Edges the partitioner plans over: live and not removable.
  bool planningEdge(const PdgEdge &E) const {
    return !E.Dead && !E.Removable;
  }
};

/// Builds the PDG of loop \p L from the analysis result \p R.
Pdg buildPdg(const ir::AnalyzedProgram &AP, const analysis::AnalysisResult &R,
             const ir::LoopInfo *L);

} // namespace transform
} // namespace omega

#endif // OMEGA_TRANSFORM_PDG_H
