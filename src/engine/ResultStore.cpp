//===- engine/ResultStore.cpp ---------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "engine/ResultStore.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <utility>
#include <vector>

using namespace omega;
using namespace omega::engine;
using namespace omega::engine::detail;

namespace {

const char StoreMagic[4] = {'O', 'M', 'R', 'S'};

/// Qualifies a fingerprint with the entry kind and the pipeline
/// signature: an outcome recorded under one pipeline is invisible under
/// another, mirroring DeltaPlanner's sig gate.
std::string makeKey(char Kind, const PipelineSig &Sig,
                    const std::string &Fingerprint) {
  std::string Key;
  Key.reserve(Fingerprint.size() + 6);
  Key.push_back(Kind);
  Key.push_back(Sig.Refine ? '1' : '0');
  Key.push_back(Sig.Cover ? '1' : '0');
  Key.push_back(Sig.Kill ? '1' : '0');
  Key.push_back(Sig.QuickTests ? '1' : '0');
  Key.push_back('|');
  Key += Fingerprint;
  return Key;
}

} // namespace

ResultStore::ResultStore(std::size_t Capacity) : Capacity(Capacity) {}

ResultStore::Shard &ResultStore::shardFor(const std::string &Key) {
  return Shards[std::hash<std::string>{}(Key) % NumShards];
}

const ResultStore::Shard &ResultStore::shardFor(const std::string &Key) const {
  return Shards[std::hash<std::string>{}(Key) % NumShards];
}

std::size_t ResultStore::perShardCap() const {
  std::size_t Cap = Capacity.load(std::memory_order_relaxed);
  if (Cap == 0)
    return 0;
  return std::max<std::size_t>(1, (Cap + NumShards - 1) / NumShards);
}

std::optional<std::string> ResultStore::lookupBytes(const std::string &Key) {
  Shard &S = shardFor(Key);
  std::lock_guard<std::mutex> Lock(S.Mu);
  auto It = S.Map.find(Key);
  if (It == S.Map.end())
    return std::nullopt;
  S.LRU.splice(S.LRU.begin(), S.LRU, It->second.LRUPos);
  return It->second.Bytes;
}

std::size_t ResultStore::storeBytes(const std::string &Key,
                                    std::string Bytes) {
  Shard &S = shardFor(Key);
  std::size_t Cap = perShardCap();
  std::lock_guard<std::mutex> Lock(S.Mu);
  auto It = S.Map.find(Key);
  if (It != S.Map.end()) {
    It->second.Bytes = std::move(Bytes);
    S.LRU.splice(S.LRU.begin(), S.LRU, It->second.LRUPos);
    return 0;
  }
  S.LRU.push_front(Key);
  S.Map.emplace(Key, Shard::Entry{std::move(Bytes), S.LRU.begin()});
  std::size_t Evicted = 0;
  while (Cap != 0 && S.Map.size() > Cap) {
    S.Map.erase(S.LRU.back());
    S.LRU.pop_back();
    ++Evicted;
  }
  EvictionCount.fetch_add(Evicted, std::memory_order_relaxed);
  return Evicted;
}

std::optional<PairOutcome>
ResultStore::lookupPair(const std::string &Fingerprint,
                        const PipelineSig &Sig) {
  std::string Key = makeKey('P', Sig, Fingerprint);
  std::optional<std::string> Bytes = lookupBytes(Key);
  if (Bytes) {
    ByteReader R(*Bytes);
    PairOutcome P = readPairOutcome(R);
    if (R.Ok && R.Pos == Bytes->size()) {
      HitCount.fetch_add(1, std::memory_order_relaxed);
      return P;
    }
  }
  MissCount.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

std::size_t ResultStore::storePair(const std::string &Fingerprint,
                                   const PipelineSig &Sig,
                                   const PairOutcome &Outcome) {
  std::string Bytes;
  appendPairOutcome(Bytes, Outcome);
  return storeBytes(makeKey('P', Sig, Fingerprint), std::move(Bytes));
}

std::optional<KillGroupOutcome>
ResultStore::lookupKillGroup(const std::string &Fingerprint,
                             const PipelineSig &Sig) {
  std::string Key = makeKey('K', Sig, Fingerprint);
  std::optional<std::string> Bytes = lookupBytes(Key);
  if (Bytes) {
    ByteReader R(*Bytes);
    KillGroupOutcome G = readKillGroup(R);
    if (R.Ok && R.Pos == Bytes->size()) {
      HitCount.fetch_add(1, std::memory_order_relaxed);
      return G;
    }
  }
  MissCount.fetch_add(1, std::memory_order_relaxed);
  return std::nullopt;
}

std::size_t ResultStore::storeKillGroup(const std::string &Fingerprint,
                                        const PipelineSig &Sig,
                                        const KillGroupOutcome &Outcome) {
  std::string Bytes;
  appendKillGroup(Bytes, Outcome);
  return storeBytes(makeKey('K', Sig, Fingerprint), std::move(Bytes));
}

void ResultStore::setCapacity(std::size_t NewCapacity) {
  Capacity.store(NewCapacity, std::memory_order_relaxed);
  std::size_t Cap = perShardCap();
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    std::size_t Evicted = 0;
    while (Cap != 0 && S.Map.size() > Cap) {
      S.Map.erase(S.LRU.back());
      S.LRU.pop_back();
      ++Evicted;
    }
    EvictionCount.fetch_add(Evicted, std::memory_order_relaxed);
  }
}

std::size_t ResultStore::size() const {
  std::size_t N = 0;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    N += S.Map.size();
  }
  return N;
}

ResultStoreStats ResultStore::stats() const {
  ResultStoreStats St;
  St.Hits = HitCount.load(std::memory_order_relaxed);
  St.Misses = MissCount.load(std::memory_order_relaxed);
  St.Evictions = EvictionCount.load(std::memory_order_relaxed);
  St.Entries = size();
  return St;
}

void ResultStore::clear() {
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    S.Map.clear();
    S.LRU.clear();
  }
}

//===----------------------------------------------------------------------===//
// Persistence
//===----------------------------------------------------------------------===//

std::string ResultStore::serialize() const {
  std::vector<std::pair<std::string, std::string>> Entries;
  for (const Shard &S : Shards) {
    std::lock_guard<std::mutex> Lock(S.Mu);
    for (const auto &[Key, E] : S.Map)
      Entries.emplace_back(Key, E.Bytes);
  }
  std::sort(Entries.begin(), Entries.end());

  std::string Payload;
  appendU64(Payload, Entries.size());
  for (const auto &[Key, Bytes] : Entries) {
    appendLenString(Payload, Key);
    appendLenString(Payload, Bytes);
  }

  std::string Out(StoreMagic, sizeof(StoreMagic));
  appendU32(Out, PersistFormatVersion);
  appendU64(Out, checksum64(Payload));
  Out += Payload;
  return Out;
}

bool ResultStore::deserialize(const std::string &Bytes, std::string *Err) {
  clear();
  auto Reject = [&](const char *Why) {
    clear();
    if (Err)
      *Err = Why;
    return false;
  };
  ByteReader R(Bytes);
  char Magic[4];
  if (!R.take(Magic, 4) || std::memcmp(Magic, StoreMagic, 4) != 0)
    return Reject("not a result-store file (bad magic)");
  if (R.u32() != PersistFormatVersion)
    return Reject("unsupported result-store format version");
  uint64_t Sum = R.u64();
  if (!R.Ok || checksum64(Bytes.substr(R.Pos)) != Sum)
    return Reject("result-store checksum mismatch");

  uint64_t N = R.u64();
  for (uint64_t I = 0; R.Ok && I != N; ++I) {
    std::string Key = R.lenString();
    std::string Value = R.lenString();
    if (R.Ok)
      storeBytes(std::move(Key), std::move(Value));
  }
  if (!R.Ok || R.Pos != Bytes.size())
    return Reject("result-store payload truncated or oversized");
  return true;
}

bool ResultStore::saveFile(const std::string &Path, std::string *Err) const {
  std::string Bytes = serialize();
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    if (Err)
      *Err = "cannot open " + Path + " for writing";
    return false;
  }
  bool Ok = std::fwrite(Bytes.data(), 1, Bytes.size(), F) == Bytes.size();
  Ok &= std::fclose(F) == 0;
  if (!Ok && Err)
    *Err = "short write to " + Path;
  return Ok;
}

bool ResultStore::loadFile(const std::string &Path, std::string *Err) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    if (Err)
      *Err = "cannot open " + Path;
    return false;
  }
  std::string Bytes;
  char Buf[1 << 16];
  std::size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Bytes.append(Buf, N);
  std::fclose(F);
  return deserialize(Bytes, Err);
}
