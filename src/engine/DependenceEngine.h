//===- engine/DependenceEngine.h - Parallel, cached analysis facade ------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The DependenceEngine is the public entry point for whole-program
/// dependence analysis. It runs the paper's Section 4 pipeline --
/// pairwise dependences, refinement, coverage, kill analysis -- sharded
/// across a fixed worker pool, with Omega satisfiability and gist answers
/// memoized in a shared QueryCache.
///
/// Determinism guarantee: for a given program and AnalysisRequest flags,
/// the structural content of the AnalysisResult (dependences, splits,
/// pair/kill record fields other than timings) is identical for every
/// Jobs value and cache setting. Work is enumerated in the serial
/// driver's order into index-addressed slots and merged in index order;
/// the cache only ever returns answers the solver would have computed.
/// Timings, and stats counters when the cache elides work, are the only
/// run-to-run variation.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_ENGINE_DEPENDENCEENGINE_H
#define OMEGA_ENGINE_DEPENDENCEENGINE_H

#include "analysis/Driver.h"
#include "engine/DeltaPlanner.h"
#include "omega/QueryCache.h"

#include <cstdint>
#include <memory>

namespace omega {

namespace obs {
class Tracer;
} // namespace obs

namespace engine {

class ResultStore;
class WorkerPool;

/// What analyzeProgram-style runs should do and how to execute them.
struct AnalysisRequest {
  bool QuickTests = true; ///< Section 4.5 screens
  bool Refine = true;     ///< Section 4.4 distance refinement
  bool Cover = true;      ///< Section 4.2 coverage
  bool Kill = true;       ///< Section 4.1/4.2 kill analysis
  /// Section 4.3 terminating analysis (an extension the paper describes
  /// but its implementation did not enable).
  bool Terminate = false;
  /// Worker threads; 1 runs inline on the caller, 0 asks the hardware.
  unsigned Jobs = 1;
  /// Memoize satisfiability and gist queries across the whole engine
  /// lifetime (repeat analyses reuse earlier answers).
  bool UseQueryCache = true;
  /// ZIV/GCD/bounds pre-filter: decide provably independent or trivially
  /// dependent pairs with no Omega call (ablation: --no-quicktests).
  bool PairQuickTests = true;
  /// Per-pair elimination snapshots: reduce each pair's shared system once
  /// and replay only the per-query ordering rows (--no-incremental).
  bool Incremental = true;
  /// Share elimination snapshots across pair solvers through the query
  /// cache, so repeat analyses -- and concurrent server requests over the
  /// same kernels -- adopt snapshots instead of rebuilding them
  /// (--no-snapshot-sharing). Requires a cache; result-identical either
  /// way.
  bool ShareSnapshots = true;
  /// Use this externally owned cache instead of constructing one. The
  /// serving stack points every worker engine at one cache, which is what
  /// makes warmth survive across requests and clients. Must outlive the
  /// engine; overrides UseQueryCache when non-null.
  QueryCache *SharedCache = nullptr;
  /// Optional tracer: each worker context gets a registered trace buffer
  /// and every work item is recorded as an engine-task span keyed by its
  /// serial enumeration order, so merged traces are identical for every
  /// Jobs value. Null disables tracing (the zero-overhead path). Not
  /// owned; must outlive the engine.
  obs::Tracer *Trace = nullptr;
  /// Prior-version results keyed by canonical pair fingerprint: groups
  /// whose fingerprints match are materialized from the baseline instead
  /// of solved. Result-identical by construction (equal fingerprints
  /// imply equal solves). Not owned; must outlive the analyze() call.
  /// Ignored when Terminate is set (phase 4 mutates across group
  /// boundaries, outside the per-group reuse model).
  const BaselineResult *Baseline = nullptr;
  /// Record a BaselineResult for this run into AnalysisResult::Baseline,
  /// for a future incremental run (or --save-baseline). Also ignored
  /// under Terminate.
  bool BuildBaseline = false;
  /// Global cross-request result store (engine/ResultStore.h): consulted
  /// for every pair and kill group the baseline above did not already
  /// cover, and fed every outcome this run solves. Independent of
  /// Baseline/BuildBaseline -- stateless requests benefit too -- and
  /// gated identically (sig-qualified exact fingerprint match, shape
  /// re-validation, byte-identical materialization). Not owned; must be
  /// thread-safe (it is) and outlive the analyze() call. Ignored when
  /// Terminate is set, for the same reason Baseline is.
  ResultStore *Store = nullptr;

  static AnalysisRequest fromDriverOptions(const analysis::DriverOptions &O) {
    AnalysisRequest R;
    R.QuickTests = O.QuickTests;
    R.Refine = O.Refine;
    R.Cover = O.Cover;
    R.Kill = O.Kill;
    R.Terminate = O.Terminate;
    return R;
  }
};

/// The legacy result plus per-run execution metrics.
struct AnalysisResult : analysis::AnalysisResult {
  /// Omega work done by this run, merged over the worker contexts.
  OmegaStats Stats;
  /// Cache traffic of this run alone (all zero when the cache is off).
  QueryCacheStats Cache;
  /// Entries resident in the engine's cache after the run.
  std::uint64_t CacheEntries = 0;
  /// Cross-version reuse accounting (Active only when a baseline was
  /// consulted or recorded).
  DeltaMetrics Delta;
  /// This run's recorded baseline (null unless BuildBaseline was set).
  /// Shared so the serving stack can retain it per session while the
  /// result itself is dropped.
  std::shared_ptr<const BaselineResult> Baseline;
};

class DependenceEngine {
public:
  explicit DependenceEngine(const AnalysisRequest &Req = AnalysisRequest());
  ~DependenceEngine();

  DependenceEngine(const DependenceEngine &) = delete;
  DependenceEngine &operator=(const DependenceEngine &) = delete;

  /// Runs the full pipeline over \p AP. May be called repeatedly; the
  /// query cache persists across calls, so re-analyses hit it.
  AnalysisResult analyze(const ir::AnalyzedProgram &AP);

  /// Re-points the pipeline and tier toggles (QuickTests, Refine, Cover,
  /// Kill, Terminate, PairQuickTests, Incremental, ShareSnapshots), the
  /// reuse fields (Baseline, BuildBaseline, Store), and the active worker
  /// count (Jobs, clamped to the pool built at construction) at \p O's values
  /// without rebuilding the pool or cache. The serving stack uses this
  /// to honor per-request options on a long-lived engine; the remaining
  /// structural fields (UseQueryCache, SharedCache, Trace) are fixed at
  /// construction and ignored here.
  void applyOptions(const AnalysisRequest &O);

  /// Attaches \p T (null detaches) for subsequent analyze() calls:
  /// re-points the request's Trace and registers per-worker buffers on
  /// the long-lived pool. This is the one exception to "Trace is fixed at
  /// construction" -- omega-serve's slow-request capture traces a single
  /// request on an otherwise trace-disabled engine. Each engine is owned
  /// by exactly one server worker, so attach/analyze/detach never races.
  /// Must not be called while analyze() is in flight.
  void setTracer(obs::Tracer *T);

  /// Effective worker count: Jobs resolved against the hardware and
  /// clamped to the pool's capability.
  unsigned jobs() const;

  /// The pool's capability: the most workers a request can ask for.
  unsigned maxJobs() const;

  const AnalysisRequest &request() const { return Req; }

  /// The engine's cache (owned or shared), or null when caching is off.
  QueryCache *cache() { return Cache; }

private:
  AnalysisRequest Req;
  std::unique_ptr<QueryCache> OwnedCache;
  QueryCache *Cache = nullptr;
  std::unique_ptr<WorkerPool> Pool;
};

} // namespace engine
} // namespace omega

#endif // OMEGA_ENGINE_DEPENDENCEENGINE_H
