//===- engine/ResultStore.h - Global fingerprint-keyed result store -------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A global, content-addressed store of solved pair and kill-group
/// outcomes, keyed by the canonical name-free fingerprints of
/// src/deps/Fingerprint.h. Where a BaselineResult carries one program
/// version's answers across edits of that program, the ResultStore
/// generalizes it to "everything any request ever solved": every
/// analysis — stateless requests and fresh sessions included — consults
/// the store before solving a pair group, and a structurally-seen pair
/// is materialized instead of solved.
///
/// Soundness is gated exactly like the delta planner's reuse: a stored
/// outcome is only consulted under the pipeline signature it was
/// recorded with (the signature is part of the key), equal fingerprints
/// imply byte-identical solver inputs, and the engine re-validates the
/// outcome's shape against the current group before materializing. A
/// hit can therefore never change results, only skip work.
///
/// The store is sharded (per-shard mutex + LRU list) so N worker
/// engines can consult it concurrently, LRU-bounded with eviction
/// accounting, and persists to a versioned checksummed file ('OMRS')
/// with the same conventions as the query-cache file: corruption or
/// version skew rejects the whole file (warned cold start, never a
/// wrong answer), and save -> load -> save is bit-identical.
///
/// Entries hold the serialized wire form of the outcome (the same
/// encoding BaselineResult persists with) rather than the structured
/// form: lookups deserialize a private copy, so a returned outcome is
/// immune to concurrent eviction, and persistence is a sorted dump of
/// the map with no re-encoding.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_ENGINE_RESULTSTORE_H
#define OMEGA_ENGINE_RESULTSTORE_H

#include "engine/DeltaPlanner.h"

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace omega {
namespace engine {

/// Point-in-time counters for one store (monotonic over its lifetime).
struct ResultStoreStats {
  uint64_t Hits = 0;
  uint64_t Misses = 0;
  uint64_t Evictions = 0;
  uint64_t Entries = 0;
};

/// Sharded LRU map: pipeline-sig-qualified fingerprint -> serialized
/// outcome. Thread-safe; one instance is shared by every engine of a
/// server (and may also back a CLI run via --result-cache-file).
class ResultStore {
public:
  /// Default entry bound; generous for whole-corpus workloads while
  /// keeping the worst-case footprint bounded.
  static constexpr std::size_t DefaultCapacity = 1 << 16;

  /// \p Capacity 0 means unbounded.
  explicit ResultStore(std::size_t Capacity = DefaultCapacity);

  ResultStore(const ResultStore &) = delete;
  ResultStore &operator=(const ResultStore &) = delete;

  /// Fetches a stored pair outcome by fingerprint under \p Sig. A hit
  /// refreshes LRU recency and returns a private copy. Nullopt on miss
  /// (or on an undecodable entry, which is dropped).
  std::optional<PairOutcome> lookupPair(const std::string &Fingerprint,
                                        const PipelineSig &Sig);

  /// Inserts (or refreshes) a pair outcome. Returns the number of
  /// entries evicted to make room.
  std::size_t storePair(const std::string &Fingerprint,
                        const PipelineSig &Sig, const PairOutcome &Outcome);

  /// Kill-group flavors of the two calls above.
  std::optional<KillGroupOutcome>
  lookupKillGroup(const std::string &Fingerprint, const PipelineSig &Sig);
  std::size_t storeKillGroup(const std::string &Fingerprint,
                             const PipelineSig &Sig,
                             const KillGroupOutcome &Outcome);

  /// Re-bounds the store; 0 means unbounded. Shrinking evicts LRU
  /// entries immediately (counted as evictions).
  void setCapacity(std::size_t Capacity);

  std::size_t size() const;
  ResultStoreStats stats() const;
  void clear();

  //===--------------------------------------------------------------------===//
  // Persistence ('OMRS': magic, version, checksum; sorted entry dump)
  //===--------------------------------------------------------------------===//

  static constexpr uint32_t PersistFormatVersion = 1;

  std::string serialize() const;
  /// Replaces the contents on success; on any corruption (bad magic,
  /// version skew, checksum mismatch, truncation) leaves the store
  /// empty and reports why via \p Err.
  bool deserialize(const std::string &Bytes, std::string *Err);
  bool saveFile(const std::string &Path, std::string *Err) const;
  bool loadFile(const std::string &Path, std::string *Err);

private:
  static constexpr unsigned NumShards = 16;

  struct Shard {
    mutable std::mutex Mu;
    /// Key -> (serialized outcome, LRU position).
    struct Entry {
      std::string Bytes;
      std::list<std::string>::iterator LRUPos;
    };
    std::unordered_map<std::string, Entry> Map;
    /// Front = most recent. Holds keys; splice-based refresh.
    std::list<std::string> LRU;
  };

  Shard &shardFor(const std::string &Key);
  const Shard &shardFor(const std::string &Key) const;
  std::size_t perShardCap() const;

  std::optional<std::string> lookupBytes(const std::string &Key);
  std::size_t storeBytes(const std::string &Key, std::string Bytes);

  Shard Shards[NumShards];
  std::atomic<std::size_t> Capacity;
  std::atomic<uint64_t> HitCount{0};
  std::atomic<uint64_t> MissCount{0};
  std::atomic<uint64_t> EvictionCount{0};
};

} // namespace engine
} // namespace omega

#endif // OMEGA_ENGINE_RESULTSTORE_H
