//===- engine/DependenceEngine.cpp ----------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "engine/DependenceEngine.h"

#include "analysis/Kills.h"
#include "analysis/Refine.h"
#include "deps/PairSolver.h"
#include "engine/WorkerPool.h"
#include "obs/Trace.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>
#include <string>

using namespace omega;
using namespace omega::engine;
using omega::deps::DepKind;
using omega::deps::Dependence;
using omega::deps::DepSplit;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// Quick-test database built from the output dependences.
struct OutputDepInfo {
  /// Pairs of write access ids with an output dependence.
  std::map<std::pair<unsigned, unsigned>, bool> HasOutputDep;
  /// Writes with a self-output dependence carried by some loop.
  std::map<unsigned, bool> HasCarriedSelfOutput;

  bool outputDep(const ir::Access &A, const ir::Access &B) const {
    auto It = HasOutputDep.find({A.Id, B.Id});
    return It != HasOutputDep.end() && It->second;
  }
  bool carriedSelfOutput(const ir::Access &A) const {
    auto It = HasCarriedSelfOutput.find(A.Id);
    return It != HasCarriedSelfOutput.end() && It->second;
  }
};

OutputDepInfo buildOutputInfo(const std::vector<Dependence> &Output) {
  OutputDepInfo Info;
  for (const Dependence &Dep : Output) {
    Info.HasOutputDep[{Dep.Src->Id, Dep.Dst->Id}] = true;
    if (Dep.Src == Dep.Dst)
      for (const DepSplit &S : Dep.Splits)
        if (S.Level != 0)
          Info.HasCarriedSelfOutput[Dep.Src->Id] = true;
  }
  return Info;
}

/// "W completely precedes the cover A": every execution of W that can
/// source the covered read runs before the covering instance. Two sound
/// syntactic cases (Section 4.2):
///  * W is textually before A and shares no loops with it (it runs wholly
///    before A's nest), or
///  * the cover is loop-independent (the covering instance shares the
///    common A/B iteration) and W is textually before A without being
///    nested more deeply with A than B is -- otherwise W could run after
///    the covering instance inside the extra shared loops, and the
///    general pairwise kill test must decide.
bool completelyPrecedesCover(const ir::Access &W, const Dependence &Cover) {
  const ir::Access &A = *Cover.Src;
  if (!ir::AnalyzedProgram::textuallyBefore(W, A))
    return false;
  unsigned CommonWA = ir::AnalyzedProgram::numCommonLoops(W, A);
  if (CommonWA == 0)
    return true;
  return Cover.CoverLoopIndependent &&
         CommonWA <= ir::AnalyzedProgram::numCommonLoops(A, *Cover.Dst);
}

/// Work-item keys: phase in the top byte below the non-task marker, serial
/// enumeration index in the low bits. Identical for every Jobs value, so
/// the tracer's (key, seq) merge order is jobs-independent.
uint64_t taskKey(unsigned Phase, std::size_t Index) {
  return (static_cast<uint64_t>(Phase) << 48) | Index;
}

/// "s3 A(I,J)": statement number plus the source rendering.
std::string accessLabel(const ir::Access &A) {
  return "s" + std::to_string(A.StmtLabel) + " " + A.Text;
}

} // namespace

DependenceEngine::DependenceEngine(const AnalysisRequest &Req) : Req(Req) {
  if (Req.SharedCache)
    Cache = Req.SharedCache;
  else if (Req.UseQueryCache) {
    OwnedCache = std::make_unique<QueryCache>();
    Cache = OwnedCache.get();
  }
  Pool = std::make_unique<WorkerPool>(Req.Jobs, Cache, Req.Trace);
  // The pair-solver tiers read their toggles off the worker's context, so
  // deep call chains (and the calc/CLI ablations) all steer one switch.
  applyOptions(Req);
}

DependenceEngine::~DependenceEngine() = default;

void DependenceEngine::applyOptions(const AnalysisRequest &O) {
  Req.QuickTests = O.QuickTests;
  Req.Refine = O.Refine;
  Req.Cover = O.Cover;
  Req.Kill = O.Kill;
  Req.Terminate = O.Terminate;
  Req.PairQuickTests = O.PairQuickTests;
  Req.Incremental = O.Incremental;
  Req.ShareSnapshots = O.ShareSnapshots;
  Pool->forEachContext([&](OmegaContext &Ctx) {
    Ctx.PairQuickTests = Req.PairQuickTests;
    Ctx.IncrementalSnapshots = Req.Incremental;
    Ctx.SnapshotSharing = Req.ShareSnapshots;
  });
}

unsigned DependenceEngine::jobs() const { return Pool->jobs(); }

AnalysisResult DependenceEngine::analyze(const ir::AnalyzedProgram &AP) {
  AnalysisResult Result;
  Pool->resetStats();

  // Phase 1: every unrefined dependence query -- output, anti, and the
  // flow computations phase 2 consumes -- scheduled per *pair* rather than
  // per query. Queries are enumerated exactly as the serial analysis does,
  // then grouped by unordered reference pair in first-appearance order:
  // one task per group builds one PairSolver (quick tests once, one
  // elimination snapshot living on one worker) and answers all of the
  // pair's kinds, directions and levels on it. Results still land in
  // index-addressed per-query slots and merge in enumeration order, so the
  // output is identical to per-query scheduling.
  struct PairQuery {
    const ir::Access *Src;
    const ir::Access *Dst;
    DepKind Kind;
  };
  std::vector<PairQuery> Queries;
  auto enumeratePairs = [&](DepKind Kind) {
    for (const ir::Access &Src : AP.Accesses) {
      bool SrcIsWrite = Kind == DepKind::Flow || Kind == DepKind::Output;
      if (Src.IsWrite != SrcIsWrite)
        continue;
      for (const ir::Access &Dst : AP.Accesses) {
        bool DstIsWrite = Kind == DepKind::Anti || Kind == DepKind::Output;
        if (Dst.IsWrite != DstIsWrite || Dst.Array != Src.Array)
          continue;
        if (&Src == &Dst && Kind != DepKind::Output)
          continue; // a reference cannot flow to itself except write/write
        Queries.push_back({&Src, &Dst, Kind});
      }
    }
  };
  enumeratePairs(DepKind::Output);
  std::size_t NumOutputQueries = Queries.size();
  enumeratePairs(DepKind::Anti);
  std::size_t NumOrderedQueries = Queries.size();

  // Flow queries in phase 2's read-major order; FlowTasks[I] is query
  // NumOrderedQueries + I.
  std::vector<const ir::Access *> Writes, Reads;
  for (const ir::Access &A : AP.Accesses)
    (A.IsWrite ? Writes : Reads).push_back(&A);

  struct FlowTask {
    const ir::Access *Write;
    const ir::Access *Read;
  };
  std::vector<FlowTask> FlowTasks;
  for (const ir::Access *Read : Reads)
    for (const ir::Access *Write : Writes)
      if (Write->Array == Read->Array) {
        FlowTasks.push_back({Write, Read});
        Queries.push_back({Write, Read, DepKind::Flow});
      }

  // Group by unordered pair (the flow and anti questions about one
  // read/write pair share a solver, as do both output directions of a
  // write/write pair). Group order is the serial first-appearance order,
  // so task keys -- and with them the merged trace -- stay deterministic.
  std::vector<std::vector<std::size_t>> Groups;
  {
    std::map<std::pair<unsigned, unsigned>, std::size_t> GroupOf;
    for (std::size_t I = 0; I != Queries.size(); ++I) {
      auto Key = std::minmax(Queries[I].Src->Id, Queries[I].Dst->Id);
      auto [It, New] = GroupOf.try_emplace({Key.first, Key.second},
                                           Groups.size());
      if (New)
        Groups.emplace_back();
      Groups[It->second].push_back(I);
    }
  }

  std::vector<std::optional<Dependence>> QueryDeps(Queries.size());
  std::vector<double> QuerySecs(Queries.size(), 0.0);
  Pool->parallelFor(Groups.size(), [&](std::size_t GI, OmegaContext &Ctx) {
    const std::vector<std::size_t> &Group = Groups[GI];
    const PairQuery &First = Queries[Group.front()];
    obs::TaskScope Task(Ctx.Trace, taskKey(1, GI),
                        Ctx.Trace ? "pair " + accessLabel(*First.Src) +
                                        " <-> " + accessLabel(*First.Dst)
                                  : std::string());
    deps::PairSolver Solver(AP, *First.Src, *First.Dst, Ctx);
    for (std::size_t QI : Group) {
      const PairQuery &Q = Queries[QI];
      auto Start = std::chrono::steady_clock::now();
      QueryDeps[QI] = Solver.computeDependence(*Q.Src, *Q.Dst, Q.Kind);
      QuerySecs[QI] = secondsSince(Start);
    }
  });
  for (std::size_t I = 0; I != NumOrderedQueries; ++I)
    if (QueryDeps[I])
      (I < NumOutputQueries ? Result.Output : Result.Anti)
          .push_back(std::move(*QueryDeps[I]));
  OutputDepInfo OutInfo = buildOutputInfo(Result.Output);

  // Phase 2: per (read, write) pair, refinement and coverage on top of the
  // flow dependence phase 1 computed. Tasks enumerate read-major like the
  // serial driver; each touches only its own slot.
  struct FlowSlot {
    analysis::PairRecord Record;
    std::optional<Dependence> Dep;
  };
  std::vector<FlowSlot> Slots(FlowTasks.size());
  Pool->parallelFor(FlowTasks.size(), [&](std::size_t I, OmegaContext &Ctx) {
    const ir::Access *Write = FlowTasks[I].Write;
    const ir::Access *Read = FlowTasks[I].Read;
    obs::TaskScope Task(Ctx.Trace, taskKey(2, I),
                        Ctx.Trace ? "flow " + accessLabel(*Write) + " -> " +
                                        accessLabel(*Read)
                                  : std::string());
    FlowSlot &Slot = Slots[I];
    Slot.Record.Write = Write;
    Slot.Record.Read = Read;

    Slot.Dep = std::move(QueryDeps[NumOrderedQueries + I]);
    Slot.Record.StandardSecs = QuerySecs[NumOrderedQueries + I];

    auto ExtStart = std::chrono::steady_clock::now();
    if (Slot.Dep) {
      Slot.Record.HasFlow = true;
      // Refinement first (Section 4.4); a quick screen: refinement can
      // only help when the write has a carried self-output dependence.
      if (Req.Refine &&
          (!Req.QuickTests || OutInfo.carriedSelfOutput(*Write))) {
        analysis::RefineResult RR =
            analysis::refineDependence(AP, *Write, *Read, *Slot.Dep);
        Slot.Record.UsedGeneralTest |= RR.UsedGeneralTest;
        Slot.Record.SplitVectors |=
            Slot.Dep->Splits.size() > 1 && RR.UsedGeneralTest;
        if (Ctx.Trace && RR.Refined)
          Ctx.Trace->decision("refinement: tightened distance vector (" +
                              std::to_string(RR.LoopsFixed) + " loops fixed)");
      }
      // Coverage next (Section 4.2).
      if (Req.Cover &&
          (!Req.QuickTests || analysis::coverQuickTestPasses(*Slot.Dep))) {
        Slot.Record.UsedGeneralTest = true;
        Slot.Record.SplitVectors |= Slot.Dep->Splits.size() > 1;
        if (analysis::covers(AP, *Write, *Read)) {
          Slot.Dep->Covers = true;
          Slot.Dep->CoverLoopIndependent =
              analysis::covers(AP, *Write, *Read, /*LoopIndependentOnly=*/true);
          if (Ctx.Trace)
            Ctx.Trace->decision("cover: write covers every read instance");
        }
      }
    }
    Slot.Record.ExtendedSecs = Slot.Record.StandardSecs + secondsSince(ExtStart);
  });

  std::map<unsigned, std::vector<unsigned>> FlowByRead; // read id -> indices
  for (FlowSlot &Slot : Slots) {
    if (Slot.Dep) {
      FlowByRead[Slot.Record.Read->Id].push_back(Result.Flow.size());
      Result.Flow.push_back(std::move(*Slot.Dep));
    }
    Result.Pairs.push_back(Slot.Record);
  }

  // Phase 3: covers kill dependences from writes that completely precede
  // them, then pairwise kill tests on what remains. Kill groups (one per
  // read) touch disjoint Flow entries, so they shard cleanly; each
  // group's records merge back in FlowByRead (read-id) order.
  if (Req.Kill) {
    struct KillGroup {
      const std::vector<unsigned> *DepIndices;
      std::vector<analysis::KillRecord> Records;
    };
    std::vector<KillGroup> Groups;
    Groups.reserve(FlowByRead.size());
    for (auto &[ReadId, DepIndices] : FlowByRead) {
      (void)ReadId;
      Groups.push_back({&DepIndices, {}});
    }
    Pool->parallelFor(Groups.size(), [&](std::size_t GI, OmegaContext &Ctx) {
      KillGroup &G = Groups[GI];
      const std::vector<unsigned> &DepIndices = *G.DepIndices;
      obs::TaskScope Task(
          Ctx.Trace, taskKey(3, GI),
          Ctx.Trace ? "kills into " +
                          accessLabel(*Result.Flow[DepIndices.front()].Dst)
                    : std::string());
      // Kill by cover.
      for (unsigned CoverIdx : DepIndices) {
        const Dependence &Cover = Result.Flow[CoverIdx];
        if (!Cover.Covers)
          continue;
        for (unsigned Idx : DepIndices) {
          if (Idx == CoverIdx)
            continue;
          Dependence &Victim = Result.Flow[Idx];
          if (!completelyPrecedesCover(*Victim.Src, Cover))
            continue;
          for (DepSplit &S : Victim.Splits)
            if (!S.Dead) {
              S.Dead = true;
              S.DeadReason = 'c';
            }
          if (Ctx.Trace)
            Ctx.Trace->decision("killed by cover: " + accessLabel(*Cover.Src) +
                                " supersedes " + accessLabel(*Victim.Src));
        }
      }
      // Pairwise killing.
      for (unsigned VictimIdx : DepIndices) {
        Dependence &Victim = Result.Flow[VictimIdx];
        for (unsigned KillerIdx : DepIndices) {
          if (KillerIdx == VictimIdx || Victim.allDead())
            continue;
          const Dependence &KillerDep = Result.Flow[KillerIdx];
          const ir::Access &Killer = *KillerDep.Src;
          if (&Killer == Victim.Src)
            continue;
          analysis::KillRecord KR;
          KR.From = Victim.Src;
          KR.Killer = &Killer;
          KR.To = Victim.Dst;
          auto Start = std::chrono::steady_clock::now();
          // Quick test: the killer must overwrite what the victim wrote,
          // i.e. there must be an output dependence victim -> killer.
          bool Plausible =
              !Req.QuickTests || OutInfo.outputDep(*Victim.Src, Killer);
          if (Plausible) {
            KR.UsedOmega = true;
            for (DepSplit &S : Victim.Splits) {
              if (S.Dead)
                continue;
              if (analysis::kills(AP, *Victim.Src, Killer, *Victim.Dst,
                                  S.Level)) {
                S.Dead = true;
                S.DeadReason = 'k';
                KR.Killed = true;
              }
            }
          }
          KR.Secs = secondsSince(Start);
          if (Ctx.Trace && KR.Killed)
            Ctx.Trace->decision("killed by write: " + accessLabel(Killer) +
                                " overwrites " + accessLabel(*Victim.Src));
          G.Records.push_back(KR);
        }
      }
    });
    for (KillGroup &G : Groups)
      for (analysis::KillRecord &KR : G.Records)
        Result.Kills.push_back(KR);
  }

  // Phase 4 (optional extension): terminating analysis (Section 4.3). If
  // some write B overwrites everything A wrote (B terminates A) and every
  // execution of B precedes every execution of the destination, nothing
  // can flow from A past B, so the dependence is dead. Each dependence is
  // independent of the others.
  if (Req.Terminate) {
    Pool->parallelFor(Result.Flow.size(), [&](std::size_t I,
                                              OmegaContext &Ctx) {
      Dependence &Dep = Result.Flow[I];
      obs::TaskScope Task(Ctx.Trace, taskKey(4, I),
                          Ctx.Trace ? "terminate " + accessLabel(*Dep.Src) +
                                          " -> " + accessLabel(*Dep.Dst)
                                    : std::string());
      if (Dep.allDead())
        return;
      for (const ir::Access *B : Writes) {
        if (B == Dep.Src || B->Array != Dep.Src->Array)
          continue;
        // Sound syntactic "wholly before the read" case.
        if (ir::AnalyzedProgram::numCommonLoops(*B, *Dep.Dst) != 0 ||
            !ir::AnalyzedProgram::textuallyBefore(*B, *Dep.Dst))
          continue;
        if (Req.QuickTests && !OutInfo.outputDep(*Dep.Src, *B))
          continue;
        if (!analysis::terminates(AP, *Dep.Src, *B))
          continue;
        for (DepSplit &S : Dep.Splits)
          if (!S.Dead) {
            S.Dead = true;
            S.DeadReason = 'k';
          }
        if (Ctx.Trace)
          Ctx.Trace->decision("terminated by: " + accessLabel(*B));
        break;
      }
    });
  }

  Result.Stats = Pool->mergedStats();
  if (Cache) {
    // This run's cache traffic comes from the merged per-context counters,
    // not global before/after deltas: several engines may share one cache
    // (the serving stack does), and a delta would charge this request with
    // every concurrent request's traffic.
    Result.Cache.SatHits = Result.Stats.SatCacheHits;
    Result.Cache.SatMisses = Result.Stats.SatCacheMisses;
    Result.Cache.GistHits = Result.Stats.GistCacheHits;
    Result.Cache.GistMisses = Result.Stats.GistCacheMisses;
    Result.CacheEntries = Cache->size();
  }
  return Result;
}

// Legacy entry point, preserved on top of the engine: serial, uncached,
// stats merged into the caller's current context so code (and tests) that
// watch the old global counters keep seeing them advance.
analysis::AnalysisResult
analysis::analyzeProgram(const ir::AnalyzedProgram &AP,
                         const DriverOptions &Opts) {
  AnalysisRequest Req = AnalysisRequest::fromDriverOptions(Opts);
  Req.Jobs = 1;
  Req.UseQueryCache = false;
  DependenceEngine Engine(Req);
  engine::AnalysisResult R = Engine.analyze(AP);
  OmegaContext::current().Stats.merge(R.Stats);
  return std::move(static_cast<analysis::AnalysisResult &>(R));
}
