//===- engine/DependenceEngine.cpp ----------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "engine/DependenceEngine.h"

#include "analysis/Kills.h"
#include "analysis/Refine.h"
#include "deps/Fingerprint.h"
#include "deps/PairSolver.h"
#include "engine/ResultStore.h"
#include "engine/WorkerPool.h"
#include "obs/Trace.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <optional>
#include <string>

using namespace omega;
using namespace omega::engine;
using omega::deps::DepKind;
using omega::deps::Dependence;
using omega::deps::DepSplit;

namespace {

double secondsSince(std::chrono::steady_clock::time_point Start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       Start)
      .count();
}

/// Quick-test database built from the output dependences.
struct OutputDepInfo {
  /// Pairs of write access ids with an output dependence.
  std::map<std::pair<unsigned, unsigned>, bool> HasOutputDep;
  /// Writes with a self-output dependence carried by some loop.
  std::map<unsigned, bool> HasCarriedSelfOutput;

  bool outputDep(const ir::Access &A, const ir::Access &B) const {
    auto It = HasOutputDep.find({A.Id, B.Id});
    return It != HasOutputDep.end() && It->second;
  }
  bool carriedSelfOutput(const ir::Access &A) const {
    auto It = HasCarriedSelfOutput.find(A.Id);
    return It != HasCarriedSelfOutput.end() && It->second;
  }
};

OutputDepInfo buildOutputInfo(const std::vector<Dependence> &Output) {
  OutputDepInfo Info;
  for (const Dependence &Dep : Output) {
    Info.HasOutputDep[{Dep.Src->Id, Dep.Dst->Id}] = true;
    if (Dep.Src == Dep.Dst)
      for (const DepSplit &S : Dep.Splits)
        if (S.Level != 0)
          Info.HasCarriedSelfOutput[Dep.Src->Id] = true;
  }
  return Info;
}

/// "W completely precedes the cover A": every execution of W that can
/// source the covered read runs before the covering instance. Two sound
/// syntactic cases (Section 4.2):
///  * W is textually before A and shares no loops with it (it runs wholly
///    before A's nest), or
///  * the cover is loop-independent (the covering instance shares the
///    common A/B iteration) and W is textually before A without being
///    nested more deeply with A than B is -- otherwise W could run after
///    the covering instance inside the extra shared loops, and the
///    general pairwise kill test must decide.
bool completelyPrecedesCover(const ir::Access &W, const Dependence &Cover) {
  const ir::Access &A = *Cover.Src;
  if (!ir::AnalyzedProgram::textuallyBefore(W, A))
    return false;
  unsigned CommonWA = ir::AnalyzedProgram::numCommonLoops(W, A);
  if (CommonWA == 0)
    return true;
  return Cover.CoverLoopIndependent &&
         CommonWA <= ir::AnalyzedProgram::numCommonLoops(A, *Cover.Dst);
}

/// Work-item keys: phase in the top byte below the non-task marker, serial
/// enumeration index in the low bits. Identical for every Jobs value, so
/// the tracer's (key, seq) merge order is jobs-independent.
uint64_t taskKey(unsigned Phase, std::size_t Index) {
  return (static_cast<uint64_t>(Phase) << 48) | Index;
}

/// "s3 A(I,J)": statement number plus the source rendering.
std::string accessLabel(const ir::Access &A) {
  return "s" + std::to_string(A.StmtLabel) + " " + A.Text;
}

} // namespace

DependenceEngine::DependenceEngine(const AnalysisRequest &Req) : Req(Req) {
  if (Req.SharedCache)
    Cache = Req.SharedCache;
  else if (Req.UseQueryCache) {
    OwnedCache = std::make_unique<QueryCache>();
    Cache = OwnedCache.get();
  }
  Pool = std::make_unique<WorkerPool>(Req.Jobs, Cache, Req.Trace);
  // The pair-solver tiers read their toggles off the worker's context, so
  // deep call chains (and the calc/CLI ablations) all steer one switch.
  applyOptions(Req);
}

DependenceEngine::~DependenceEngine() = default;

void DependenceEngine::applyOptions(const AnalysisRequest &O) {
  Req.QuickTests = O.QuickTests;
  Req.Refine = O.Refine;
  Req.Cover = O.Cover;
  Req.Kill = O.Kill;
  Req.Terminate = O.Terminate;
  Req.PairQuickTests = O.PairQuickTests;
  Req.Incremental = O.Incremental;
  Req.ShareSnapshots = O.ShareSnapshots;
  Req.Baseline = O.Baseline;
  Req.BuildBaseline = O.BuildBaseline;
  Req.Store = O.Store;
  // Per-request parallelism: clamp to the pool built at construction (0
  // asks for the full pool). Threads are reused, never respawned.
  Req.Jobs = O.Jobs;
  Pool->setActiveWorkers(O.Jobs);
  Pool->forEachContext([&](OmegaContext &Ctx) {
    Ctx.PairQuickTests = Req.PairQuickTests;
    Ctx.IncrementalSnapshots = Req.Incremental;
    Ctx.SnapshotSharing = Req.ShareSnapshots;
  });
}

void DependenceEngine::setTracer(obs::Tracer *T) {
  Req.Trace = T;
  Pool->setTracer(T);
}

unsigned DependenceEngine::jobs() const { return Pool->jobs(); }

unsigned DependenceEngine::maxJobs() const { return Pool->maxJobs(); }

AnalysisResult DependenceEngine::analyze(const ir::AnalyzedProgram &AP) {
  AnalysisResult Result;
  Pool->resetStats();

  // Phase 1: every unrefined dependence query -- output, anti, and the
  // flow computations phase 2 consumes -- scheduled per *pair* rather than
  // per query. Queries are enumerated exactly as the serial analysis does,
  // then grouped by unordered reference pair in first-appearance order:
  // one task per group builds one PairSolver (quick tests once, one
  // elimination snapshot living on one worker) and answers all of the
  // pair's kinds, directions and levels on it. Results still land in
  // index-addressed per-query slots and merge in enumeration order, so the
  // output is identical to per-query scheduling.
  struct PairQuery {
    const ir::Access *Src;
    const ir::Access *Dst;
    DepKind Kind;
  };
  std::vector<PairQuery> Queries;
  auto enumeratePairs = [&](DepKind Kind) {
    for (const ir::Access &Src : AP.Accesses) {
      bool SrcIsWrite = Kind == DepKind::Flow || Kind == DepKind::Output;
      if (Src.IsWrite != SrcIsWrite)
        continue;
      for (const ir::Access &Dst : AP.Accesses) {
        bool DstIsWrite = Kind == DepKind::Anti || Kind == DepKind::Output;
        if (Dst.IsWrite != DstIsWrite || Dst.Array != Src.Array)
          continue;
        if (&Src == &Dst && Kind != DepKind::Output)
          continue; // a reference cannot flow to itself except write/write
        Queries.push_back({&Src, &Dst, Kind});
      }
    }
  };
  enumeratePairs(DepKind::Output);
  std::size_t NumOutputQueries = Queries.size();
  enumeratePairs(DepKind::Anti);
  std::size_t NumOrderedQueries = Queries.size();

  // Flow queries in phase 2's read-major order; FlowTasks[I] is query
  // NumOrderedQueries + I.
  std::vector<const ir::Access *> Writes, Reads;
  for (const ir::Access &A : AP.Accesses)
    (A.IsWrite ? Writes : Reads).push_back(&A);

  struct FlowTask {
    const ir::Access *Write;
    const ir::Access *Read;
  };
  std::vector<FlowTask> FlowTasks;
  for (const ir::Access *Read : Reads)
    for (const ir::Access *Write : Writes)
      if (Write->Array == Read->Array) {
        FlowTasks.push_back({Write, Read});
        Queries.push_back({Write, Read, DepKind::Flow});
      }

  // Group by unordered pair (the flow and anti questions about one
  // read/write pair share a solver, as do both output directions of a
  // write/write pair). Group order is the serial first-appearance order,
  // so task keys -- and with them the merged trace -- stay deterministic.
  std::vector<std::vector<std::size_t>> Groups;
  std::vector<std::size_t> QueryGroup(Queries.size());
  {
    std::map<std::pair<unsigned, unsigned>, std::size_t> GroupOf;
    for (std::size_t I = 0; I != Queries.size(); ++I) {
      auto Key = std::minmax(Queries[I].Src->Id, Queries[I].Dst->Id);
      auto [It, New] = GroupOf.try_emplace({Key.first, Key.second},
                                           Groups.size());
      if (New)
        Groups.emplace_back();
      Groups[It->second].push_back(I);
      QueryGroup[I] = It->second;
    }
  }

  // Delta planning (cross-version incrementality). Disabled entirely
  // under Terminate: phase 4 kills across group boundaries, outside the
  // per-group reuse model. A baseline recorded under other pipeline
  // switches is ignored by the planner.
  const bool DeltaActive =
      (Req.Baseline != nullptr || Req.BuildBaseline) && !Req.Terminate;
  const bool BuildBL = Req.BuildBaseline && !Req.Terminate;
  // The global cross-request store is a second reuse tier below the
  // session baseline: consulted for every group the baseline missed, fed
  // every outcome this run produces. It never activates delta accounting
  // by itself (stateless requests keep reporting no delta section); its
  // traffic lands in the ResultStore* stats instead.
  ResultStore *Store = Req.Terminate ? nullptr : Req.Store;
  const bool FPActive = DeltaActive || Store != nullptr;
  PipelineSig Sig;
  Sig.Refine = Req.Refine;
  Sig.Cover = Req.Cover;
  Sig.Kill = Req.Kill;
  Sig.QuickTests = Req.QuickTests;
  DeltaPlanner Planner(DeltaActive ? Req.Baseline : nullptr, Sig);
  DeltaMetrics Delta;
  Delta.Active = DeltaActive;
  uint64_t StoreHits = 0, StoreMisses = 0, StoreEvictions = 0;

  std::optional<deps::FingerprintBuilder> FPB;
  std::vector<deps::PairFingerprint> GroupFP;
  // Reused group -> its baseline outcome; per-query pointers into it.
  std::vector<const PairOutcome *> GroupReuse(Groups.size(), nullptr);
  std::vector<const PortableDep *> QueryReuse(Queries.size(), nullptr);

  // Role of an access within its group's canonical pair orientation:
  // 0 == the fingerprint's first instance. For write/read and write/write
  // groups the two accesses always differ in role (their serializations
  // differ in the read/write or textual-order bits), so roles address the
  // stored queries unambiguously; self pairs use (0, 0).
  auto roleOf = [&](std::size_t GI, const ir::Access *A) -> uint8_t {
    const PairQuery &First = Queries[Groups[GI].front()];
    const ir::Access *CanonFirst =
        GroupFP[GI].Swapped ? First.Dst : First.Src;
    return A == CanonFirst ? 0 : 1;
  };

  // Store-materialized groups own their outcome copies here so the
  // QueryReuse pointers stay stable (resized once, never reallocated).
  std::vector<PairOutcome> StoreOutcomes;
  std::vector<char> GroupFromStore;
  if (FPActive) {
    FPB.emplace(AP);
    GroupFP.resize(Groups.size());
    StoreOutcomes.resize(Groups.size());
    GroupFromStore.assign(Groups.size(), 0);
    // Pure string building; parallel and trace-silent.
    Pool->parallelFor(Groups.size(), [&](std::size_t GI, OmegaContext &) {
      const PairQuery &First = Queries[Groups[GI].front()];
      GroupFP[GI] = FPB->pair(*First.Src, *First.Dst);
    });
    // Classification (serial: planner bookkeeping + reuse binding).
    // Tier order per group: session baseline first (free, already
    // validated against this program lineage), then the global store.
    for (std::size_t GI = 0; GI != Groups.size(); ++GI) {
      const PairOutcome *O =
          DeltaActive ? Planner.matchPair(GroupFP[GI].Key) : nullptr;
      bool Consulted = false; // this group asked the global store
      if (!O && Store) {
        Consulted = true;
        if (std::optional<PairOutcome> SO =
                Store->lookupPair(GroupFP[GI].Key, Sig)) {
          StoreOutcomes[GI] = std::move(*SO);
          O = &StoreOutcomes[GI];
          GroupFromStore[GI] = 1;
        }
      }
      bool Reusable = O && O->Queries.size() == Groups[GI].size();
      if (Reusable) {
        // Bind every query to a distinct stored answer by (kind, roles).
        std::vector<bool> Used(O->Queries.size(), false);
        for (std::size_t QI : Groups[GI]) {
          const PairQuery &Q = Queries[QI];
          uint8_t SrcRole = roleOf(GI, Q.Src), DstRole = roleOf(GI, Q.Dst);
          const PortableDep *Found = nullptr;
          for (std::size_t J = 0; J != O->Queries.size(); ++J) {
            const PortableDep &P = O->Queries[J];
            if (!Used[J] && P.Kind == static_cast<uint8_t>(Q.Kind) &&
                P.SrcRole == SrcRole && P.DstRole == DstRole) {
              Used[J] = true;
              Found = &P;
              break;
            }
          }
          if (!Found) {
            Reusable = false;
            break;
          }
          QueryReuse[QI] = Found;
          if (Q.Kind == DepKind::Flow && !O->HasFlowRecord)
            Reusable = false;
        }
      }
      if (Reusable) {
        GroupReuse[GI] = O;
        if (GroupFromStore[GI])
          ++StoreHits;
        if (DeltaActive)
          ++Delta.PairsReused;
      } else {
        // A fingerprint miss (or, defensively, a malformed match) is an
        // edited pair when its array was in the baseline, new data
        // otherwise. Metrics-only distinction; both solve from scratch.
        GroupFromStore[GI] = 0;
        if (Consulted)
          ++StoreMisses;
        for (std::size_t QI : Groups[GI])
          QueryReuse[QI] = nullptr;
        if (DeltaActive) {
          const PairQuery &First = Queries[Groups[GI].front()];
          if (O || Planner.knownArray(First.Src->Array))
            ++Delta.PairsResolved;
          else
            ++Delta.PairsNew;
        }
      }
    }
  }

  std::vector<std::optional<Dependence>> QueryDeps(Queries.size());
  std::vector<double> QuerySecs(Queries.size(), 0.0);

  // Materialize reused groups before scheduling the rest: their stored
  // answers (post-refinement, post-cover) land in the same per-query
  // slots a solve would fill, so the merges below cannot tell the
  // difference. Trace decisions go to the first context from this
  // coordinating thread (workers are idle between parallelFor calls).
  std::vector<std::size_t> RunGroups;
  if (FPActive) {
    obs::TraceBuffer *TB = Req.Trace ? Pool->firstContext().Trace : nullptr;
    for (std::size_t GI = 0; GI != Groups.size(); ++GI) {
      if (!GroupReuse[GI]) {
        RunGroups.push_back(GI);
        continue;
      }
      for (std::size_t QI : Groups[GI]) {
        const PairQuery &Q = Queries[QI];
        const PortableDep &P = *QueryReuse[QI];
        if (P.Present)
          QueryDeps[QI] = materializeDep(P, Q.Src, Q.Dst);
      }
      if (TB) {
        const PairQuery &First = Queries[Groups[GI].front()];
        obs::TaskScope Task(TB, taskKey(1, GI),
                            "pair " + accessLabel(*First.Src) + " <-> " +
                                accessLabel(*First.Dst));
        TB->decision(GroupFromStore[GI]
                         ? "delta: pair reused from result store"
                         : "delta: pair reused from baseline");
      }
    }
  } else {
    RunGroups.resize(Groups.size());
    for (std::size_t GI = 0; GI != Groups.size(); ++GI)
      RunGroups[GI] = GI;
  }

  Pool->parallelFor(RunGroups.size(), [&](std::size_t RI, OmegaContext &Ctx) {
    std::size_t GI = RunGroups[RI];
    const std::vector<std::size_t> &Group = Groups[GI];
    const PairQuery &First = Queries[Group.front()];
    obs::TaskScope Task(Ctx.Trace, taskKey(1, GI),
                        Ctx.Trace ? "pair " + accessLabel(*First.Src) +
                                        " <-> " + accessLabel(*First.Dst)
                                  : std::string());
    deps::PairSolver Solver(AP, *First.Src, *First.Dst, Ctx);
    for (std::size_t QI : Group) {
      const PairQuery &Q = Queries[QI];
      auto Start = std::chrono::steady_clock::now();
      QueryDeps[QI] = Solver.computeDependence(*Q.Src, *Q.Dst, Q.Kind);
      QuerySecs[QI] = secondsSince(Start);
    }
  });
  // Positions of each query's final record, for baseline capture: index
  // into Result.Output/Anti (ordered kinds) or Result.Flow, -1 if absent.
  std::vector<std::ptrdiff_t> QueryLoc(Queries.size(), -1);
  for (std::size_t I = 0; I != NumOrderedQueries; ++I)
    if (QueryDeps[I]) {
      std::vector<Dependence> &Into =
          I < NumOutputQueries ? Result.Output : Result.Anti;
      QueryLoc[I] = static_cast<std::ptrdiff_t>(Into.size());
      Into.push_back(std::move(*QueryDeps[I]));
    }
  OutputDepInfo OutInfo = buildOutputInfo(Result.Output);

  // Phase 2: per (read, write) pair, refinement and coverage on top of the
  // flow dependence phase 1 computed. Tasks enumerate read-major like the
  // serial driver; each touches only its own slot. Reused pairs skip the
  // refine/cover work entirely: their stored flow answers already carry
  // the post-phase-2 splits and cover flags.
  struct FlowSlot {
    analysis::PairRecord Record;
    std::optional<Dependence> Dep;
  };
  std::vector<FlowSlot> Slots(FlowTasks.size());
  Pool->parallelFor(FlowTasks.size(), [&](std::size_t I, OmegaContext &Ctx) {
    const ir::Access *Write = FlowTasks[I].Write;
    const ir::Access *Read = FlowTasks[I].Read;
    obs::TaskScope Task(Ctx.Trace, taskKey(2, I),
                        Ctx.Trace ? "flow " + accessLabel(*Write) + " -> " +
                                        accessLabel(*Read)
                                  : std::string());
    FlowSlot &Slot = Slots[I];
    Slot.Record.Write = Write;
    Slot.Record.Read = Read;

    if (const PairOutcome *O = GroupReuse[QueryGroup[NumOrderedQueries + I]]) {
      Slot.Dep = std::move(QueryDeps[NumOrderedQueries + I]);
      Slot.Record.HasFlow = O->RecHasFlow;
      Slot.Record.UsedGeneralTest = O->RecUsedGeneralTest;
      Slot.Record.SplitVectors = O->RecSplitVectors;
      if (Ctx.Trace)
        Ctx.Trace->decision(
            GroupFromStore[QueryGroup[NumOrderedQueries + I]]
                ? "delta: flow record reused from result store"
                : "delta: flow record reused from baseline");
      return;
    }

    Slot.Dep = std::move(QueryDeps[NumOrderedQueries + I]);
    Slot.Record.StandardSecs = QuerySecs[NumOrderedQueries + I];

    auto ExtStart = std::chrono::steady_clock::now();
    if (Slot.Dep) {
      Slot.Record.HasFlow = true;
      // Refinement first (Section 4.4); a quick screen: refinement can
      // only help when the write has a carried self-output dependence.
      if (Req.Refine &&
          (!Req.QuickTests || OutInfo.carriedSelfOutput(*Write))) {
        analysis::RefineResult RR =
            analysis::refineDependence(AP, *Write, *Read, *Slot.Dep);
        Slot.Record.UsedGeneralTest |= RR.UsedGeneralTest;
        Slot.Record.SplitVectors |=
            Slot.Dep->Splits.size() > 1 && RR.UsedGeneralTest;
        if (Ctx.Trace && RR.Refined)
          Ctx.Trace->decision("refinement: tightened distance vector (" +
                              std::to_string(RR.LoopsFixed) + " loops fixed)");
      }
      // Coverage next (Section 4.2).
      if (Req.Cover &&
          (!Req.QuickTests || analysis::coverQuickTestPasses(*Slot.Dep))) {
        Slot.Record.UsedGeneralTest = true;
        Slot.Record.SplitVectors |= Slot.Dep->Splits.size() > 1;
        if (analysis::covers(AP, *Write, *Read)) {
          Slot.Dep->Covers = true;
          Slot.Dep->CoverLoopIndependent =
              analysis::covers(AP, *Write, *Read, /*LoopIndependentOnly=*/true);
          if (Ctx.Trace)
            Ctx.Trace->decision("cover: write covers every read instance");
        }
      }
    }
    Slot.Record.ExtendedSecs = Slot.Record.StandardSecs + secondsSince(ExtStart);
  });

  std::map<unsigned, std::vector<unsigned>> FlowByRead; // read id -> indices
  for (std::size_t I = 0; I != Slots.size(); ++I) {
    FlowSlot &Slot = Slots[I];
    if (Slot.Dep) {
      QueryLoc[NumOrderedQueries + I] =
          static_cast<std::ptrdiff_t>(Result.Flow.size());
      FlowByRead[Slot.Record.Read->Id].push_back(Result.Flow.size());
      Result.Flow.push_back(std::move(*Slot.Dep));
    }
    Result.Pairs.push_back(Slot.Record);
  }

  // Baseline capture point: output/anti records are final here, and flow
  // records hold their post-refinement, post-cover, pre-kill state -- the
  // exact state a future reuse must restore before its own kill phase.
  std::shared_ptr<BaselineResult> NewBL;
  if (BuildBL || Store) {
    if (BuildBL) {
      NewBL = std::make_shared<BaselineResult>();
      NewBL->Sig = Sig;
      for (const ir::Access &A : AP.Accesses)
        NewBL->Arrays.insert(A.Array);
    }
    for (std::size_t GI = 0; GI != Groups.size(); ++GI) {
      PairOutcome O;
      for (std::size_t QI : Groups[GI]) {
        const PairQuery &Q = Queries[QI];
        const Dependence *D = nullptr;
        if (QueryLoc[QI] >= 0) {
          const std::vector<Dependence> &From =
              Q.Kind == DepKind::Flow
                  ? Result.Flow
                  : (QI < NumOutputQueries ? Result.Output : Result.Anti);
          D = &From[QueryLoc[QI]];
        }
        O.Queries.push_back(portableDep(D, static_cast<uint8_t>(Q.Kind),
                                        roleOf(GI, Q.Src),
                                        roleOf(GI, Q.Dst)));
        if (Q.Kind == DepKind::Flow) {
          const analysis::PairRecord &Rec =
              Slots[QI - NumOrderedQueries].Record;
          O.HasFlowRecord = true;
          O.RecHasFlow = Rec.HasFlow;
          O.RecUsedGeneralTest = Rec.UsedGeneralTest;
          O.RecSplitVectors = Rec.SplitVectors;
        }
      }
      // Feed the global store everything this run did not take from it
      // (solves and baseline-reused groups alike; a re-insert of an
      // equal key only refreshes recency).
      if (Store && !GroupFromStore[GI])
        StoreEvictions += Store->storePair(GroupFP[GI].Key, Sig, O);
      // emplace: duplicate fingerprints keep the first outcome (equal
      // keys imply equal outcomes, so either would do).
      if (BuildBL)
        NewBL->Pairs.emplace(GroupFP[GI].Key, std::move(O));
    }
  }

  // Phase 3: covers kill dependences from writes that completely precede
  // them, then pairwise kill tests on what remains. Kill groups (one per
  // read) touch disjoint Flow entries, so they shard cleanly; each
  // group's records merge back in FlowByRead (read-id) order.
  if (Req.Kill) {
    struct KillGroup {
      const std::vector<unsigned> *DepIndices;
      std::vector<analysis::KillRecord> Records;
    };
    std::vector<KillGroup> KGroups;
    KGroups.reserve(FlowByRead.size());
    for (auto &[ReadId, DepIndices] : FlowByRead) {
      (void)ReadId;
      KGroups.push_back({&DepIndices, {}});
    }

    // Write positions within each array's write list (enumeration
    // order): the portable identity kill records travel under.
    std::map<std::string, std::vector<const ir::Access *>> WritesOf;
    std::map<unsigned, uint32_t> WritePosOfId;
    std::vector<std::string> KillFP(KGroups.size());
    std::vector<char> KillReused(KGroups.size(), 0);
    std::vector<KillGroupOutcome> KillStoreOutcomes(KGroups.size());
    std::vector<char> KillFromStore(KGroups.size(), 0);
    if (FPActive) {
      for (const ir::Access *W : Writes) {
        std::vector<const ir::Access *> &V = WritesOf[W->Array];
        WritePosOfId[W->Id] = static_cast<uint32_t>(V.size());
        V.push_back(W);
      }
      for (std::size_t GI = 0; GI != KGroups.size(); ++GI) {
        const ir::Access *Read =
            Result.Flow[KGroups[GI].DepIndices->front()].Dst;
        KillFP[GI] = FPB->killGroup(*Read, WritesOf[Read->Array]);
      }
      if (DeltaActive)
        Delta.KillGroupsTotal = KGroups.size();
    }

    // Reuse pass (serial): a matching kill-group fingerprint covers the
    // footprints and pairwise schedule of the read and every write of
    // its array, which determines the whole group's pre-kill state and
    // therefore every phase-3 decision -- even for members that were
    // themselves re-solved this run. Validation failures fall back to
    // running the group (correct either way; the KillGroupsReused
    // counter is what would expose a fingerprint bug).
    for (std::size_t GI = 0; GI != KGroups.size(); ++GI) {
      const KillGroupOutcome *O =
          DeltaActive ? Planner.matchKillGroup(KillFP[GI]) : nullptr;
      bool Consulted = false;
      if (!O && Store && FPActive) {
        Consulted = true;
        if (std::optional<KillGroupOutcome> SO =
                Store->lookupKillGroup(KillFP[GI], Sig)) {
          KillStoreOutcomes[GI] = std::move(*SO);
          O = &KillStoreOutcomes[GI];
          KillFromStore[GI] = 1;
        }
      }
      if (!O) {
        if (Consulted)
          ++StoreMisses;
        continue;
      }
      KillGroup &G = KGroups[GI];
      const std::vector<unsigned> &DepIndices = *G.DepIndices;
      const ir::Access *Read = Result.Flow[DepIndices.front()].Dst;
      const std::vector<const ir::Access *> &AW = WritesOf[Read->Array];
      bool Valid = O->States.size() == DepIndices.size();
      for (std::size_t I = 0; Valid && I != DepIndices.size(); ++I) {
        const KillGroupOutcome::DepState &S = O->States[I];
        const Dependence &Dep = Result.Flow[DepIndices[I]];
        Valid = S.WritePos == WritePosOfId[Dep.Src->Id] &&
                S.Splits.size() == Dep.Splits.size();
      }
      for (const PortableKillRecord &KR : O->Records)
        Valid = Valid && KR.VictimPos < AW.size() && KR.KillerPos < AW.size();
      if (!Valid) {
        KillFromStore[GI] = 0;
        if (Consulted)
          ++StoreMisses;
        continue;
      }
      for (std::size_t I = 0; I != DepIndices.size(); ++I) {
        Dependence &Dep = Result.Flow[DepIndices[I]];
        for (std::size_t S = 0; S != Dep.Splits.size(); ++S) {
          Dep.Splits[S].Dead = O->States[I].Splits[S].first;
          Dep.Splits[S].DeadReason = O->States[I].Splits[S].second;
        }
      }
      for (const PortableKillRecord &PKR : O->Records) {
        analysis::KillRecord KR;
        KR.From = AW[PKR.VictimPos];
        KR.Killer = AW[PKR.KillerPos];
        KR.To = Read;
        KR.UsedOmega = PKR.UsedOmega;
        KR.Killed = PKR.Killed;
        G.Records.push_back(KR);
      }
      KillReused[GI] = 1;
      if (KillFromStore[GI])
        ++StoreHits;
      if (DeltaActive)
        ++Delta.KillGroupsReused;
      if (Req.Trace) {
        obs::TraceBuffer *TB = Pool->firstContext().Trace;
        obs::TaskScope Task(TB, taskKey(3, GI),
                            "kills into " + accessLabel(*Read));
        TB->decision(KillFromStore[GI]
                         ? "delta: kill group reused from result store"
                         : "delta: kill group reused from baseline");
      }
    }

    std::vector<std::size_t> RunKills;
    for (std::size_t GI = 0; GI != KGroups.size(); ++GI)
      if (!KillReused[GI])
        RunKills.push_back(GI);

    Pool->parallelFor(RunKills.size(), [&](std::size_t RI, OmegaContext &Ctx) {
      std::size_t GI = RunKills[RI];
      KillGroup &G = KGroups[GI];
      const std::vector<unsigned> &DepIndices = *G.DepIndices;
      obs::TaskScope Task(
          Ctx.Trace, taskKey(3, GI),
          Ctx.Trace ? "kills into " +
                          accessLabel(*Result.Flow[DepIndices.front()].Dst)
                    : std::string());
      // Kill by cover.
      for (unsigned CoverIdx : DepIndices) {
        const Dependence &Cover = Result.Flow[CoverIdx];
        if (!Cover.Covers)
          continue;
        for (unsigned Idx : DepIndices) {
          if (Idx == CoverIdx)
            continue;
          Dependence &Victim = Result.Flow[Idx];
          if (!completelyPrecedesCover(*Victim.Src, Cover))
            continue;
          for (DepSplit &S : Victim.Splits)
            if (!S.Dead) {
              S.Dead = true;
              S.DeadReason = 'c';
            }
          if (Ctx.Trace)
            Ctx.Trace->decision("killed by cover: " + accessLabel(*Cover.Src) +
                                " supersedes " + accessLabel(*Victim.Src));
        }
      }
      // Pairwise killing.
      for (unsigned VictimIdx : DepIndices) {
        Dependence &Victim = Result.Flow[VictimIdx];
        for (unsigned KillerIdx : DepIndices) {
          if (KillerIdx == VictimIdx || Victim.allDead())
            continue;
          const Dependence &KillerDep = Result.Flow[KillerIdx];
          const ir::Access &Killer = *KillerDep.Src;
          if (&Killer == Victim.Src)
            continue;
          analysis::KillRecord KR;
          KR.From = Victim.Src;
          KR.Killer = &Killer;
          KR.To = Victim.Dst;
          auto Start = std::chrono::steady_clock::now();
          // Quick test: the killer must overwrite what the victim wrote,
          // i.e. there must be an output dependence victim -> killer.
          bool Plausible =
              !Req.QuickTests || OutInfo.outputDep(*Victim.Src, Killer);
          if (Plausible) {
            KR.UsedOmega = true;
            for (DepSplit &S : Victim.Splits) {
              if (S.Dead)
                continue;
              if (analysis::kills(AP, *Victim.Src, Killer, *Victim.Dst,
                                  S.Level)) {
                S.Dead = true;
                S.DeadReason = 'k';
                KR.Killed = true;
              }
            }
          }
          KR.Secs = secondsSince(Start);
          if (Ctx.Trace && KR.Killed)
            Ctx.Trace->decision("killed by write: " + accessLabel(Killer) +
                                " overwrites " + accessLabel(*Victim.Src));
          G.Records.push_back(KR);
        }
      }
    });
    for (KillGroup &G : KGroups)
      for (analysis::KillRecord &KR : G.Records)
        Result.Kills.push_back(KR);

    // Kill outcomes captured post-phase-3; the reused groups' rebound
    // records re-serialize the same way, so a chained baseline (edit of
    // an edit) is as complete as a cold one.
    if (BuildBL || Store) {
      for (std::size_t GI = 0; GI != KGroups.size(); ++GI) {
        const KillGroup &G = KGroups[GI];
        const std::vector<unsigned> &DepIndices = *G.DepIndices;
        KillGroupOutcome KG;
        for (const analysis::KillRecord &KR : G.Records) {
          PortableKillRecord PKR;
          PKR.VictimPos = WritePosOfId[KR.From->Id];
          PKR.KillerPos = WritePosOfId[KR.Killer->Id];
          PKR.UsedOmega = KR.UsedOmega;
          PKR.Killed = KR.Killed;
          KG.Records.push_back(PKR);
        }
        for (unsigned Idx : DepIndices) {
          const Dependence &Dep = Result.Flow[Idx];
          KillGroupOutcome::DepState S;
          S.WritePos = WritePosOfId[Dep.Src->Id];
          for (const DepSplit &Split : Dep.Splits)
            S.Splits.emplace_back(Split.Dead, Split.DeadReason);
          KG.States.push_back(std::move(S));
        }
        if (Store && !KillFromStore[GI])
          StoreEvictions += Store->storeKillGroup(KillFP[GI], Sig, KG);
        if (BuildBL)
          NewBL->KillGroups.emplace(KillFP[GI], std::move(KG));
      }
    }
  }

  // Phase 4 (optional extension): terminating analysis (Section 4.3). If
  // some write B overwrites everything A wrote (B terminates A) and every
  // execution of B precedes every execution of the destination, nothing
  // can flow from A past B, so the dependence is dead. Each dependence is
  // independent of the others.
  if (Req.Terminate) {
    Pool->parallelFor(Result.Flow.size(), [&](std::size_t I,
                                              OmegaContext &Ctx) {
      Dependence &Dep = Result.Flow[I];
      obs::TaskScope Task(Ctx.Trace, taskKey(4, I),
                          Ctx.Trace ? "terminate " + accessLabel(*Dep.Src) +
                                          " -> " + accessLabel(*Dep.Dst)
                                    : std::string());
      if (Dep.allDead())
        return;
      for (const ir::Access *B : Writes) {
        if (B == Dep.Src || B->Array != Dep.Src->Array)
          continue;
        // Sound syntactic "wholly before the read" case.
        if (ir::AnalyzedProgram::numCommonLoops(*B, *Dep.Dst) != 0 ||
            !ir::AnalyzedProgram::textuallyBefore(*B, *Dep.Dst))
          continue;
        if (Req.QuickTests && !OutInfo.outputDep(*Dep.Src, *B))
          continue;
        if (!analysis::terminates(AP, *Dep.Src, *B))
          continue;
        for (DepSplit &S : Dep.Splits)
          if (!S.Dead) {
            S.Dead = true;
            S.DeadReason = 'k';
          }
        if (Ctx.Trace)
          Ctx.Trace->decision("terminated by: " + accessLabel(*B));
        break;
      }
    });
  }

  Result.Stats = Pool->mergedStats();
  if (DeltaActive) {
    Delta.PairsRemoved = Planner.removedCount();
    Result.Stats.DeltaPairsReused = Delta.PairsReused;
    Result.Stats.DeltaPairsResolved = Delta.PairsResolved;
    Result.Stats.DeltaPairsNew = Delta.PairsNew;
  }
  if (Store) {
    Result.Stats.ResultStoreHits = StoreHits;
    Result.Stats.ResultStoreMisses = StoreMisses;
    Result.Stats.ResultStoreEvictions = StoreEvictions;
  }
  Result.Delta = Delta;
  Result.Baseline = std::move(NewBL);
  if (Cache) {
    // This run's cache traffic comes from the merged per-context counters,
    // not global before/after deltas: several engines may share one cache
    // (the serving stack does), and a delta would charge this request with
    // every concurrent request's traffic.
    Result.Cache.SatHits = Result.Stats.SatCacheHits;
    Result.Cache.SatMisses = Result.Stats.SatCacheMisses;
    Result.Cache.GistHits = Result.Stats.GistCacheHits;
    Result.Cache.GistMisses = Result.Stats.GistCacheMisses;
    Result.CacheEntries = Cache->size();
  }
  return Result;
}

// Legacy entry point, preserved on top of the engine: serial, uncached,
// stats merged into the caller's current context so code (and tests) that
// watch the old global counters keep seeing them advance.
analysis::AnalysisResult
analysis::analyzeProgram(const ir::AnalyzedProgram &AP,
                         const DriverOptions &Opts) {
  AnalysisRequest Req = AnalysisRequest::fromDriverOptions(Opts);
  Req.Jobs = 1;
  Req.UseQueryCache = false;
  DependenceEngine Engine(Req);
  engine::AnalysisResult R = Engine.analyze(AP);
  OmegaContext::current().Stats.merge(R.Stats);
  return std::move(static_cast<analysis::AnalysisResult &>(R));
}
