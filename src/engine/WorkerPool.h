//===- engine/WorkerPool.h - Fixed worker pool with Omega contexts -------===//
//
// Part of the omega-deps project: a reproduction of Pugh & Wonnacott,
// "Eliminating False Data Dependences using the Omega Test" (PLDI 1992).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed pool of worker threads for the dependence engine. Each worker
/// owns a persistent OmegaContext (stats sink plus a handle on the shared
/// QueryCache) and installs it as the thread's current context for its
/// whole lifetime, so arbitrarily deep Omega call chains reached from a
/// task default to the right context without explicit plumbing.
///
/// Scheduling is dynamic (workers claim task indices from an atomic
/// counter) but the engine stays deterministic because tasks write into
/// pre-sized, index-addressed result slots that the caller merges in task
/// order -- which worker ran which task never shows in the output.
///
//===----------------------------------------------------------------------===//

#ifndef OMEGA_ENGINE_WORKERPOOL_H
#define OMEGA_ENGINE_WORKERPOOL_H

#include "omega/OmegaContext.h"

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace omega {

class QueryCache;

namespace obs {
class Tracer;
} // namespace obs

namespace engine {

class WorkerPool {
public:
  /// A task body: called with the task index and the claiming worker's
  /// context. Bodies for distinct indices must touch disjoint state.
  using TaskFn = std::function<void(std::size_t, OmegaContext &)>;

  /// Spawns \p Jobs workers (0 means the hardware concurrency). Jobs <= 1
  /// spawns no thread at all: parallelFor then runs inline on the caller,
  /// still under a pool-owned context. \p Cache (may be null) is shared by
  /// every worker context. A non-null \p Tracer gets one "worker-N" trace
  /// buffer registered per context, so recording is lock-free (one writer
  /// per buffer) and the tracer merges deterministically afterwards.
  explicit WorkerPool(unsigned Jobs, QueryCache *Cache = nullptr,
                      obs::Tracer *Tracer = nullptr);
  ~WorkerPool();

  WorkerPool(const WorkerPool &) = delete;
  WorkerPool &operator=(const WorkerPool &) = delete;

  /// Effective parallelism: the active worker count (1 for the inline
  /// pool), after any setActiveWorkers clamp.
  unsigned jobs() const { return ActiveWorkers; }

  /// The pool's capability: the worker count it was built with.
  unsigned maxJobs() const { return NumWorkers; }

  /// Limits how many workers participate in subsequent parallelFor calls
  /// (0 restores the full pool; values clamp to [1, maxJobs()]). Threads
  /// are never spawned or joined -- excess workers skip the generation --
  /// so per-request `jobs` can shrink a long-lived pool cheaply. Only
  /// call while no parallelFor is in flight.
  void setActiveWorkers(unsigned Wanted);

  /// Runs Fn(I, Ctx) for every I in [0, NumTasks) and returns when all
  /// calls have finished. Not reentrant; call from one thread at a time.
  void parallelFor(std::size_t NumTasks, const TaskFn &Fn);

  /// The first worker context (the inline-execution context). For
  /// single-threaded bookkeeping between parallelFor calls (e.g. trace
  /// decisions recorded by the coordinating thread); never touch while a
  /// parallelFor is in flight.
  OmegaContext &firstContext() { return *Contexts.front(); }

  /// Sum of every worker's stats, merged in worker-index order. Only
  /// meaningful while no parallelFor is in flight.
  OmegaStats mergedStats() const;

  /// Zeroes every worker's stats (between analyses).
  void resetStats();

  /// Applies \p Fn to every worker context (e.g. to set the solver-tier
  /// toggles before a run). Contexts are single-threaded: only call while
  /// no parallelFor is in flight.
  void forEachContext(const std::function<void(OmegaContext &)> &Fn) {
    for (const std::unique_ptr<OmegaContext> &C : Contexts)
      Fn(*C);
  }

  /// Points every worker context at \p Tracer (null detaches), registering
  /// one "worker-N" buffer per context exactly like the constructor does.
  /// Lets a long-lived pool trace selected runs only -- omega-serve's
  /// slow-request capture attaches a tracer for one request and detaches
  /// it after. Only call while no parallelFor is in flight.
  void setTracer(obs::Tracer *Tracer);

private:
  void workerMain(std::stop_token St, unsigned WorkerIdx);

  unsigned NumWorkers = 1;
  unsigned ActiveWorkers = 1;
  std::vector<std::unique_ptr<OmegaContext>> Contexts;
  std::vector<std::jthread> Threads;

  // Work-dispatch protocol: parallelFor publishes {Task, TaskCount,
  // GenWorkers} under the mutex and bumps Generation; workers wake on the
  // bump, the first GenWorkers of them drain the atomic index (the rest
  // skip the generation), and the last participant out signals DoneCV.
  std::mutex M;
  std::condition_variable_any WorkCV;
  std::condition_variable DoneCV;
  std::uint64_t Generation = 0;
  std::size_t TaskCount = 0;
  unsigned GenWorkers = 0;
  const TaskFn *Task = nullptr;
  std::atomic<std::size_t> Next{0};
  std::atomic<unsigned> Active{0};
};

} // namespace engine
} // namespace omega

#endif // OMEGA_ENGINE_WORKERPOOL_H
