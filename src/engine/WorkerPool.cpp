//===- engine/WorkerPool.cpp ----------------------------------------------===//
//
// Part of the omega-deps project.
//
//===----------------------------------------------------------------------===//

#include "engine/WorkerPool.h"

#include "obs/Trace.h"
#include "omega/QueryCache.h"

#include <string>

using namespace omega;
using namespace omega::engine;

WorkerPool::WorkerPool(unsigned Jobs, QueryCache *Cache, obs::Tracer *Tracer) {
  if (Jobs == 0) {
    Jobs = std::thread::hardware_concurrency();
    if (Jobs == 0)
      Jobs = 1;
  }
  NumWorkers = Jobs;
  ActiveWorkers = Jobs;
  Contexts.reserve(NumWorkers);
  for (unsigned I = 0; I != NumWorkers; ++I) {
    Contexts.push_back(std::make_unique<OmegaContext>(Cache));
    if (Tracer)
      Contexts.back()->Trace = &Tracer->registerBuffer(
          "worker-" + std::to_string(I), &Contexts.back()->Stats);
  }
  if (NumWorkers > 1) {
    Threads.reserve(NumWorkers);
    for (unsigned I = 0; I != NumWorkers; ++I)
      Threads.emplace_back(
          [this, I](std::stop_token St) { workerMain(St, I); });
  }
}

void WorkerPool::setActiveWorkers(unsigned Wanted) {
  if (Wanted == 0 || Wanted > NumWorkers)
    Wanted = NumWorkers;
  ActiveWorkers = Wanted;
}

WorkerPool::~WorkerPool() {
  for (std::jthread &T : Threads)
    T.request_stop(); // wakes the stop-token-aware WorkCV waits
  // ~jthread joins.
}

void WorkerPool::workerMain(std::stop_token St, unsigned WorkerIdx) {
  // The thread's current context for its entire lifetime: deep call chains
  // (refine, kill, coverage) reach it through OmegaContext::current().
  OmegaContextScope Scope(*Contexts[WorkerIdx]);
  std::uint64_t SeenGen = 0;
  while (true) {
    const TaskFn *Fn;
    std::size_t N;
    {
      std::unique_lock<std::mutex> L(M);
      WorkCV.wait(L, St, [&] { return Generation != SeenGen; });
      if (St.stop_requested())
        return;
      SeenGen = Generation;
      // Per-request jobs clamp: workers beyond the generation's count sit
      // it out entirely -- they neither claim indices nor join the Active
      // countdown, so the participants' final decrement still reaches 0.
      if (WorkerIdx >= GenWorkers)
        continue;
      Fn = Task;
      N = TaskCount;
    }
    for (std::size_t I = Next.fetch_add(1, std::memory_order_relaxed); I < N;
         I = Next.fetch_add(1, std::memory_order_relaxed))
      (*Fn)(I, *Contexts[WorkerIdx]);
    if (Active.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> G(M);
      DoneCV.notify_one();
    }
  }
}

void WorkerPool::parallelFor(std::size_t NumTasks, const TaskFn &Fn) {
  if (NumTasks == 0)
    return;
  if (Threads.empty() || ActiveWorkers <= 1) {
    // Inline pool, or a request clamped to one job: same context
    // discipline as a worker thread. Safe while threads exist -- idle
    // workers wait on WorkCV and never touch Contexts[0], and
    // parallelFor is not reentrant.
    OmegaContextScope Scope(*Contexts[0]);
    for (std::size_t I = 0; I != NumTasks; ++I)
      Fn(I, *Contexts[0]);
    return;
  }
  unsigned Act = ActiveWorkers;
  {
    std::lock_guard<std::mutex> G(M);
    Task = &Fn;
    TaskCount = NumTasks;
    GenWorkers = Act;
    Next.store(0, std::memory_order_relaxed);
    Active.store(Act, std::memory_order_relaxed);
    ++Generation;
  }
  WorkCV.notify_all();
  std::unique_lock<std::mutex> L(M);
  // The acquire load pairs with each worker's acq_rel decrement, so every
  // task's writes happen-before the merge that follows this return.
  DoneCV.wait(L, [&] { return Active.load(std::memory_order_acquire) == 0; });
  Task = nullptr;
}

void WorkerPool::setTracer(obs::Tracer *Tracer) {
  for (unsigned I = 0; I != NumWorkers; ++I)
    Contexts[I]->Trace = Tracer
                             ? &Tracer->registerBuffer(
                                   "worker-" + std::to_string(I),
                                   &Contexts[I]->Stats)
                             : nullptr;
}

OmegaStats WorkerPool::mergedStats() const {
  OmegaStats S;
  for (const std::unique_ptr<OmegaContext> &Ctx : Contexts)
    S.merge(Ctx->Stats);
  return S;
}

void WorkerPool::resetStats() {
  for (std::unique_ptr<OmegaContext> &Ctx : Contexts)
    Ctx->Stats = OmegaStats();
}
